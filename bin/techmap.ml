(* techmap: command-line driver for the DAG-covering technology
   mapper. Subcommands: map, fpga, retime, libs, circuits, and the
   serve/client pair for the techmapd daemon. *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_timing
open Dagmap_flowmap
open Dagmap_sim
open Dagmap_circuits
open Dagmap_retime
open Dagmap_super
open Dagmap_obs
open Dagmap_serve

let named_circuits () =
  [ ("c432", Iscas_like.c432_like);
    ("c880", Iscas_like.c880_like);
    ("c1355", Iscas_like.c1355_like);
    ("c1908", Iscas_like.c1908_like);
    ("c2670", Iscas_like.c2670_like);
    ("c3540", Iscas_like.c3540_like);
    ("c5315", Iscas_like.c5315_like);
    ("c6288", Iscas_like.c6288_like);
    ("c7552", Iscas_like.c7552_like);
    ("adder16", fun () -> Generators.ripple_adder 16);
    ("adder32", fun () -> Generators.carry_lookahead_adder 32);
    ("ks32", fun () -> Generators.kogge_stone_adder 32);
    ("wmult16", fun () -> Generators.wallace_multiplier 16);
    ("bshift64", fun () -> Generators.barrel_shifter 64);
    ("mult8", fun () -> Generators.array_multiplier 8);
    ("mult16", fun () -> Generators.array_multiplier 16);
    ("alu16", fun () -> Generators.alu 16);
    ("parity64", fun () -> Generators.parity 64);
    ("lfsr16", fun () -> Generators.lfsr 16);
    ("pparity32", fun () -> Generators.pipelined_parity 32 4) ]

(* Sized generator specs: "chain:<n>" and "soc:<n>[:seed]". Checked
   before the file-system fallback, so the huge-tier workloads are
   reachable from every subcommand without writing a BLIF first. *)
let generated_circuit spec =
  let size what s =
    match int_of_string_opt s with
    | Some n when n > 0 -> n
    | _ -> failwith (Printf.sprintf "bad %s in circuit spec %S" what spec)
  in
  match String.split_on_char ':' spec with
  | [ "chain"; n ] -> Some (Generators.nand_chain (size "length" n))
  | [ "soc"; n ] -> Some (Generators.synthetic_soc ~nodes:(size "size" n) ())
  | [ "soc"; n; seed ] ->
    Some
      (Generators.synthetic_soc ~seed:(size "seed" seed)
         ~nodes:(size "size" n) ())
  | _ -> None

let load_circuit ?(stream = false) spec =
  match List.assoc_opt spec (named_circuits ()) with
  | Some f -> f ()
  | None ->
    (match generated_circuit spec with
     | Some net -> net
     | None ->
       if Sys.file_exists spec then
         if stream then Dagmap_blif.Blif_stream.read_file spec
         else Dagmap_blif.Blif.read_file spec
       else
         failwith
           (Printf.sprintf
              "unknown circuit %S (not a named benchmark, not chain:<n> or \
               soc:<n>[:seed], not a file)"
              spec))

let load_library spec =
  match Libraries.by_name spec with
  | Some lib -> lib
  | None ->
    if Sys.file_exists spec then
      Libraries.make (Filename.basename spec) (Genlib_parser.parse_file spec)
    else
      failwith
        (Printf.sprintf "unknown library %S (try %s, or a genlib file)" spec
           (String.concat "/" Libraries.names))

type any_mode = Pattern_mode of Mapper.mode | Cut_mode

let resolve_jobs = function
  | Some 0 -> Parmap.recommended_jobs ()
  | Some j when j >= 1 -> j
  | Some j -> failwith (Printf.sprintf "--jobs %d: want >= 1 (0 = auto)" j)
  | None -> 1

let mode_of_string = function
  | "tree" -> Pattern_mode Mapper.Tree
  | "dag" -> Pattern_mode Mapper.Dag
  | "dag-extended" -> Pattern_mode Mapper.Dag_extended
  | "cut" -> Cut_mode
  | m -> failwith (Printf.sprintf "unknown mode %S (tree/dag/dag-extended/cut)" m)

(* ------------------------------------------------------------------ *)
(* map                                                                 *)
(* ------------------------------------------------------------------ *)

let print_mapper_stats ~cache_enabled (run : Mapper.stats)
    (par : Parmap.par_stats option) =
  Printf.printf "stats: label %.3fs, cover %.3fs, %d matches tried\n"
    run.Mapper.label_seconds run.Mapper.cover_seconds run.Mapper.matches_tried;
  if run.Mapper.super_matches_tried > 0 || run.Mapper.super_gates_used > 0 then
    Printf.printf
      "stats: supergates: %d matches tried, %d instances in cover\n"
      run.Mapper.super_matches_tried run.Mapper.super_gates_used;
  (* With --no-cache there are no counters to report; print nothing
     rather than a row of zeros. *)
  if cache_enabled then begin
    if run.Mapper.cache_lookups > 0 then
      Printf.printf
        "stats: match cache %d lookups, %d hits, %d misses (%.1f%% hit rate)\n"
        run.Mapper.cache_lookups run.Mapper.cache_hits run.Mapper.cache_misses
        (100.0
        *. float_of_int run.Mapper.cache_hits
        /. float_of_int run.Mapper.cache_lookups)
    else Printf.printf "stats: match cache idle (no lookups recorded)\n"
  end;
  match par with
  | None -> ()
  | Some p ->
    Printf.printf "stats: %d domains, %d levels (widest %d nodes)\n"
      p.Parmap.domains p.Parmap.levels p.Parmap.widest_level;
    Printf.printf
      "stats: %d levels ran parallel, %d work-steal chunks claimed\n"
      p.Parmap.parallel_levels p.Parmap.chunks;
    let slowest = ref 0 in
    Array.iteri
      (fun i dt ->
        if dt > p.Parmap.level_seconds.(!slowest) then slowest := i;
        ignore dt)
      p.Parmap.level_seconds;
    Printf.printf "stats: slowest level %d at %.4fs of %.4fs total label time\n"
      !slowest
      p.Parmap.level_seconds.(!slowest)
      (Array.fold_left ( +. ) 0.0 p.Parmap.level_seconds)

(* Cut-mode per-node budget the CLI defaults to: on one core the
   wall-clock cost is linear in the budget, and 8 priority cuts per
   node is the classic sweet spot (the bench sweeps the trade-off). *)
let default_cut_priority = 8

let run_map circuit lib_spec super_file mode_s opt recover buffer out_file verilog_file show_path verify jobs priority show_stats no_cache trace_out metrics_json arena stream =
  if trace_out <> None then begin
    Span.reset ();
    Span.set_enabled true
  end;
  if metrics_json <> None then Metrics.reset_all ();
  (* A batch run killed by SIGINT/SIGTERM still flushes its
     observability output: these hooks run from the handler installed
     in main before the process exits. [flushed] keeps a late signal
     from clobbering output already written normally. *)
  let flushed = ref false in
  Option.iter
    (fun path ->
      Signals.add_cleanup (fun () ->
          if not !flushed then begin
            Span.write_chrome path;
            Printf.eprintf "techmap: interrupted; partial trace in %s\n%!" path
          end))
    trace_out;
  Option.iter
    (fun path ->
      Signals.add_cleanup (fun () ->
          if !flushed then ()
          else
          let doc =
            Json.Obj
              [ ("generated", Json.String (Clock.stamp ()));
                ("circuit", Json.String circuit);
                ("interrupted", Json.Bool true);
                ("metrics", Metrics.to_json ()) ]
          in
          let oc = open_out path in
          output_string oc (Json.to_string ~pretty:true doc);
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "techmap: interrupted; partial metrics in %s\n%!" path))
    metrics_json;
  let net = load_circuit ~stream circuit in
  let net =
    if opt then begin
      let optimized, stats = Dagmap_opt.Netopt.optimize net in
      Format.printf "cleanup: %a@." Dagmap_opt.Netopt.pp_stats stats;
      optimized
    end
    else net
  in
  let lib = load_library lib_spec in
  let lib =
    match super_file with
    | None -> lib
    | Some path ->
      let sgl = Superlib.read_file path in
      let augmented = Superlib.augment lib sgl in
      Printf.printf "superlib %s: +%d supergates (base %s, bounds depth=%d)\n"
        path
        (List.length sgl.Superlib.supergates)
        sgl.Superlib.base_name sgl.Superlib.bounds.Superenum.depth;
      augmented
  in
  let db = Matchdb.prepare lib in
  let mode = mode_of_string mode_s in
  let sg = Subject.of_network net in
  Printf.printf "circuit %s: %s\n" circuit (Subject.stats sg);
  Printf.printf "library %s: %d gates, %d patterns\n" lib.Libraries.lib_name
    (List.length lib.Libraries.gates)
    (List.length lib.Libraries.patterns);
  let jobs = resolve_jobs jobs in
  let cache = not no_cache in
  let t0 = Clock.now () in
  let mode_name, nl, pattern_result, par_stats =
    match mode with
    | Pattern_mode m when arena ->
      let a = Arena.of_subject sg in
      Printf.printf "%s\n" (Arena.stats a);
      if jobs > 1 then
        let result, par = Parmap.map_arena ~jobs ~cache ~subject:sg m db a in
        (Mapper.mode_name m, result.Mapper.netlist, Some (m, result), Some par)
      else
        let result = Arena_map.map ~cache ~subject:sg m db a in
        (Mapper.mode_name m, result.Mapper.netlist, Some (m, result), None)
    | Pattern_mode m ->
      let result, par =
        if jobs > 1 then
          let result, par = Parmap.map ~jobs ~cache m db sg in
          (result, Some par)
        else (Mapper.map ~cache m db sg, None)
      in
      (Mapper.mode_name m, result.Mapper.netlist, Some (m, result), par)
    | Cut_mode ->
      if jobs > 1 && not arena then
        failwith
          "--jobs with --mode cut needs --arena (the boxed cut mapper is \
           sequential; the arena enumerator parallelizes level slices)";
      let bdb = Matchdb.boolean db in
      let r, par =
        if arena then begin
          let a = Arena.of_subject sg in
          Printf.printf "%s\n" (Arena.stats a);
          let r, par =
            Dagmap_cutmap.Arena_cuts.map ~jobs ~priority ~subject:sg bdb a
          in
          (r, Some par)
        end
        else (Dagmap_cutmap.Cut_mapper.map ~priority bdb sg, None)
      in
      Printf.printf
        "cut: %d priority cuts/node, %d nodes matched, %d matches evaluated\n"
        priority r.Dagmap_cutmap.Cut_mapper.matched_nodes
        r.Dagmap_cutmap.Cut_mapper.matches_evaluated;
      ("cut", r.Dagmap_cutmap.Cut_mapper.netlist, None, par)
  in
  let dt = Clock.now () -. t0 in
  (match trace_out with
   | None -> ()
   | Some path ->
     Span.write_chrome path;
     Span.set_enabled false;
     Printf.printf "wrote %s (%d trace events)\n" path
       (List.length (Span.events ())));
  (match metrics_json with
   | None -> ()
   | Some path ->
     let doc =
       Json.Obj
         [ ("generated", Json.String (Clock.stamp ()));
           ("circuit", Json.String circuit);
           ("library", Json.String lib.Libraries.lib_name);
           ("mode", Json.String mode_name);
           ("jobs", Json.Int jobs);
           ("cache", Json.Bool cache);
           ("metrics", Metrics.to_json ()) ]
     in
     let oc = open_out path in
     output_string oc (Json.to_string ~pretty:true doc);
     output_char oc '\n';
     close_out oc;
     Printf.printf "wrote %s\n" path);
  flushed := true;
  Printf.printf "%s mapping: delay=%.2f area=%.0f gates=%d duplicated=%d (%.2fs)\n"
    mode_name (Netlist.delay nl) (Netlist.area nl)
    (Netlist.num_gates nl) (Netlist.duplication nl) dt;
  if show_stats then begin
    match pattern_result with
    | Some (_, result) ->
      print_mapper_stats ~cache_enabled:cache result.Mapper.run par_stats
    | None -> begin
      match par_stats with
      | Some p ->
        Printf.printf "stats: %d domains, %d levels (widest %d nodes)\n"
          p.Parmap.domains p.Parmap.levels p.Parmap.widest_level;
        Printf.printf
          "stats: %d levels ran parallel, %d work-steal chunks claimed\n"
          p.Parmap.parallel_levels p.Parmap.chunks
      | None ->
        Printf.printf "stats: sequential cut mapping (no labeler stats)\n"
    end
  end;
  let nl =
    match recover, pattern_result with
    | true, Some (m, result) ->
      let recovered = Area_recovery.recover db m sg result in
      Printf.printf "area recovery: delay=%.2f area=%.0f gates=%d\n"
        (Netlist.delay recovered) (Netlist.area recovered)
        (Netlist.num_gates recovered);
      recovered
    | true, None ->
      Printf.printf "area recovery: only available for pattern modes\n";
      nl
    | false, _ -> nl
  in
  let nl =
    match buffer with
    | None -> nl
    | Some max_fanout ->
      let buffered = Buffering.buffer_fanouts lib ~max_fanout nl in
      Printf.printf
        "buffered to fanout<=%d: gates=%d loaded-delay %.2f -> %.2f\n"
        max_fanout (Netlist.num_gates buffered)
        (Buffering.loaded_delay nl) (Buffering.loaded_delay buffered);
      buffered
  in
  if show_path then begin
    let report = Sta.analyze nl in
    Format.printf "%a@?" Sta.pp_path report
  end;
  if verify then begin
    let n_inputs = List.length (Subject.pi_ids sg) in
    let verdict =
      Equiv.compare_sims ~n_inputs
        (fun words -> Simulate.subject sg words)
        (fun words -> Simulate.netlist nl words)
    in
    Format.printf "equivalence: %a@." Equiv.pp_verdict verdict;
    if not (Equiv.is_equivalent verdict) then exit 2
  end;
  (match out_file with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     output_string oc (Dagmap_blif.Blif.write_netlist nl);
     close_out oc;
     Printf.printf "wrote %s\n" path);
  match verilog_file with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Dagmap_blif.Verilog.write_netlist nl);
    close_out oc;
    Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* check / fuzz                                                        *)
(* ------------------------------------------------------------------ *)

open Dagmap_check

let run_check circuit lib_spec super_file mode_s jobs no_cache =
  let net = load_circuit circuit in
  let lib = load_library lib_spec in
  let lib =
    match super_file with
    | None -> lib
    | Some path -> Superlib.augment lib (Superlib.read_file path)
  in
  let db = Matchdb.prepare lib in
  let mode = mode_of_string mode_s in
  let jobs = resolve_jobs jobs in
  let cache = not no_cache in
  let sg = Subject.of_network net in
  Printf.printf "circuit %s: %s\n" circuit (Subject.stats sg);
  let mode_name, nl, predicted =
    match mode with
    | Pattern_mode m ->
      let result =
        if jobs > 1 then fst (Parmap.map ~jobs ~cache m db sg)
        else Mapper.map ~cache m db sg
      in
      ( Mapper.mode_name m,
        result.Mapper.netlist,
        Mapper.predicted_arrivals result )
    | Cut_mode ->
      let bdb = Matchdb.boolean db in
      let r =
        if jobs > 1 then
          fst
            (Dagmap_cutmap.Arena_cuts.map ~jobs ~priority:default_cut_priority
               ~subject:sg bdb (Arena.of_subject sg))
        else Dagmap_cutmap.Cut_mapper.map ~priority:default_cut_priority bdb sg
      in
      ( "cut",
        r.Dagmap_cutmap.Cut_mapper.netlist,
        Dagmap_cutmap.Cut_mapper.predicted_arrivals r )
  in
  Printf.printf "%s mapping: delay=%.2f area=%.0f gates=%d\n" mode_name
    (Netlist.delay nl) (Netlist.area nl) (Netlist.num_gates nl);
  let failed = ref false in
  let section name issues =
    match issues with
    | [] -> Printf.printf "%-10s ok\n" name
    | issues ->
      failed := true;
      List.iter
        (fun i ->
          Printf.printf "%-10s %s\n" name
            (Format.asprintf "%a" Check.pp_issue i))
        issues
  in
  let s = Check.structural nl in
  section "structural" s;
  if s = [] then begin
    (* Timing and simulation are undefined on a malformed netlist. *)
    section "delay" (Check.delay ~predicted nl);
    section "functional" (Check.functional sg nl)
  end
  else Printf.printf "delay/functional audits skipped (structural failure)\n";
  if !failed then exit 2

let fuzz_super_bounds =
  { Superenum.default_bounds with
    Superenum.depth = 2;
    max_pins = 4;
    max_size = 3;
    max_gates = 48 }

let run_fuzz count seed nodes lib_spec no_super max_failures repro_dir
    inject verbose =
  let base = load_library lib_spec in
  let libs =
    if no_super then [ ("base", base) ]
    else begin
      let sgl, _ = Superlib.make ~bounds:fuzz_super_bounds ~jobs:2 base in
      Printf.printf "fuzz: +%d supergates over %s for the super cases\n"
        (List.length sgl.Superlib.supergates)
        base.Libraries.lib_name;
      [ ("base", base); ("super", Superlib.augment base sgl) ]
    end
  in
  let cfg =
    { (Fuzz.default_config base) with
      Fuzz.count; seed; max_nodes = nodes; libs; max_failures }
  in
  if inject then Mapper.test_pin_delay_skew := 1.0;
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Mapper.test_pin_delay_skew := 0.0)
      (fun () ->
        Fuzz.run
          ~log:(fun line ->
            if verbose || contains line "FAIL" then print_endline line)
          cfg)
  in
  Printf.printf
    "fuzz: %d circuits, %d (circuit, config) cases audited in %.2fs (%.1f \
     cases/s)\n"
    outcome.Fuzz.circuits outcome.Fuzz.cases outcome.Fuzz.seconds
    outcome.Fuzz.cases_per_second;
  match outcome.Fuzz.failures with
  | [] -> Printf.printf "fuzz: all audits passed\n"
  | failures ->
    List.iteri
      (fun k f ->
        let path =
          Filename.concat repro_dir
            (Printf.sprintf "fuzz_repro_%d_%d.blif" cfg.Fuzz.seed k)
        in
        Fuzz.write_repro path f;
        Printf.printf
          "fuzz: circuit %d under %s FAILED (shrunk %d -> %d nodes), repro \
           %s\n"
          f.Fuzz.circuit f.Fuzz.case_name f.Fuzz.original_nodes
          f.Fuzz.shrunk_nodes path;
        List.iter
          (fun i ->
            Printf.printf "  %s\n" (Format.asprintf "%a" Check.pp_issue i))
          f.Fuzz.issues)
      failures;
    exit 2

(* ------------------------------------------------------------------ *)
(* superlib                                                            *)
(* ------------------------------------------------------------------ *)

let run_superlib lib_spec out depth pins size cap fusion class_cap jobs
    show_stats =
  let base = load_library lib_spec in
  let bounds =
    { Superenum.depth;
      max_pins = pins;
      max_size = size;
      max_gates = cap;
      fusion;
      class_cap }
  in
  let jobs = resolve_jobs jobs in
  let sgl, stats = Superlib.make ~bounds ~jobs base in
  Superlib.write_file out sgl;
  Printf.printf "superlib: %d supergates from %s (%d base gates) -> %s\n"
    stats.Superenum.emitted base.Libraries.lib_name
    (List.length base.Libraries.gates)
    out;
  if show_stats then
    Printf.printf
      "stats: %d compositions considered, %d NPN classes, %.2fs on %d domain%s\n"
      stats.Superenum.considered stats.Superenum.distinct_classes
      stats.Superenum.seconds jobs
      (if jobs = 1 then "" else "s")

(* ------------------------------------------------------------------ *)
(* fpga                                                                *)
(* ------------------------------------------------------------------ *)

let run_fpga circuit k out_file verify =
  let net = load_circuit circuit in
  let sg = Subject.of_network net in
  Printf.printf "circuit %s: %s\n" circuit (Subject.stats sg);
  let t0 = Clock.now () in
  let cover = Flowmap.map ~k sg in
  let dt = Clock.now () -. t0 in
  Printf.printf "FlowMap k=%d: depth=%d luts=%d (%.2fs)\n" k
    (Flowmap.depth cover) (Flowmap.num_luts cover) dt;
  (match out_file with
   | None -> ()
   | Some path ->
     let lut_net = Flowmap.to_network cover in
     let oc = open_out path in
     output_string oc (Dagmap_blif.Blif.write_network lut_net);
     close_out oc;
     Printf.printf "wrote %s\n" path);
  if verify then begin
    let n_inputs = List.length (Subject.pi_ids sg) in
    let verdict =
      Equiv.compare_sims ~n_inputs
        (fun words -> Simulate.subject sg words)
        (fun words ->
          (* Bit-level fallback: FlowMap eval is bool-based. *)
          let lanes = Array.make 64 [] in
          for lane = 0 to 63 do
            let asg =
              Array.map
                (fun w ->
                  Int64.logand (Int64.shift_right_logical w lane) 1L <> 0L)
                words
            in
            lanes.(lane) <- Flowmap.eval cover asg
          done;
          List.mapi
            (fun _ (name, _) ->
              let w = ref 0L in
              for lane = 0 to 63 do
                if List.assoc name lanes.(lane) then
                  w := Int64.logor !w (Int64.shift_left 1L lane)
              done;
              (name, !w))
            lanes.(0))
    in
    Format.printf "equivalence: %a@." Equiv.pp_verdict verdict;
    if not (Equiv.is_equivalent verdict) then exit 2
  end

(* ------------------------------------------------------------------ *)
(* retime                                                              *)
(* ------------------------------------------------------------------ *)

let run_retime circuit lib_spec mode_s =
  let net = load_circuit circuit in
  if Network.latches net = [] then
    failwith "retime requires a sequential circuit (try lfsr16 or pparity32)";
  let lib = load_library lib_spec in
  let db = Matchdb.prepare lib in
  let mode =
    match mode_of_string mode_s with
    | Pattern_mode m -> m
    | Cut_mode -> failwith "retime supports pattern modes only"
  in
  let r = Seq_map.run db mode net in
  Printf.printf "%s: mapped comb delay %.2f\n" circuit r.Seq_map.comb_delay;
  Printf.printf "cycle time: %.2f before retiming, %.2f after\n"
    r.Seq_map.period_before r.Seq_map.period_after;
  Printf.printf "latches: %d before, %d after\n" r.Seq_map.latches_before
    r.Seq_map.latches_after

(* ------------------------------------------------------------------ *)
(* compare                                                             *)
(* ------------------------------------------------------------------ *)

let run_compare circuit lib_spec =
  let net = load_circuit circuit in
  let lib = load_library lib_spec in
  let db = Matchdb.prepare lib in
  let bdb = Matchdb.boolean db in
  let sg = Subject.of_network net in
  Printf.printf "circuit %s: %s\n" circuit (Subject.stats sg);
  Printf.printf "library %s: %d gates\n\n" lib.Libraries.lib_name
    (List.length lib.Libraries.gates);
  Printf.printf "%-13s | %8s | %10s | %6s | %5s | %7s\n" "engine" "delay"
    "area" "gates" "dup" "seconds";
  let report name nl dt =
    Printf.printf "%-13s | %8.2f | %10.0f | %6d | %5d | %7.2f\n" name
      (Netlist.delay nl) (Netlist.area nl) (Netlist.num_gates nl)
      (Netlist.duplication nl) dt
  in
  List.iter
    (fun mode ->
      let t0 = Clock.now () in
      let r = Mapper.map mode db sg in
      let dt = Clock.now () -. t0 in
      report (Mapper.mode_name mode) r.Mapper.netlist dt;
      if mode = Mapper.Dag then begin
        let t1 = Clock.now () in
        let recovered = Area_recovery.recover db mode sg r in
        report "dag+recover" recovered (Clock.now () -. t1)
      end)
    [ Mapper.Tree; Mapper.Dag; Mapper.Dag_extended ];
  List.iter
    (fun priority ->
      let t0 = Clock.now () in
      let rc = Dagmap_cutmap.Cut_mapper.map ~priority bdb sg in
      report
        (Printf.sprintf "cut p=%d" priority)
        rc.Dagmap_cutmap.Cut_mapper.netlist
        (Clock.now () -. t0))
    [ default_cut_priority; 50 ]

(* ------------------------------------------------------------------ *)
(* libs / circuits listings                                            *)
(* ------------------------------------------------------------------ *)

let run_libs dump =
  List.iter
    (fun name ->
      match Libraries.by_name name with
      | None -> ()
      | Some lib ->
        Printf.printf "%-8s %4d gates %5d patterns %6d pattern nodes\n" name
          (List.length lib.Libraries.gates)
          (List.length lib.Libraries.patterns)
          (Libraries.num_pattern_nodes lib);
        if dump then
          print_string (Genlib_parser.to_string lib.Libraries.gates))
    Libraries.names

let run_circuits () =
  List.iter
    (fun (name, f) ->
      let net = f () in
      let sg = Subject.of_network net in
      Printf.printf "%-10s %s | %s\n" name (Network.stats net)
        (Subject.stats sg))
    (named_circuits ())

(* ------------------------------------------------------------------ *)
(* serve / client (the techmapd daemon)                                *)
(* ------------------------------------------------------------------ *)

let write_json_file path doc =
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc

let run_serve socket libs supers jobs queue metrics_json quiet io_timeout
    idle_timeout job_budget faults_spec =
  let faults =
    match Faultplan.parse faults_spec with
    | Ok f -> f
    | Error m -> failwith ("--faults: " ^ m)
  in
  let base =
    match libs with
    | [] ->
      List.filter_map
        (fun n -> Option.map (fun l -> (n, l)) (Libraries.by_name n))
        Libraries.names
    | specs ->
      List.map
        (fun s ->
          let l = load_library s in
          (l.Libraries.lib_name, l))
        specs
  in
  let supered =
    List.map
      (fun path ->
        let sgl = Superlib.read_file path in
        let base_lib =
          match List.assoc_opt sgl.Superlib.base_name base with
          | Some l -> l
          | None -> load_library sgl.Superlib.base_name
        in
        (sgl.Superlib.base_name ^ "+super", Superlib.augment base_lib sgl))
      supers
  in
  Metrics.reset_all ();
  let srv =
    Server.create
      { Server.socket_path = socket;
        jobs = resolve_jobs (Some jobs);
        queue_max = queue;
        libraries = base @ supered;
        resolve_circuit = Some (fun spec -> load_circuit spec);
        verbose = not quiet;
        io_timeout_s = io_timeout;
        idle_timeout_s = idle_timeout;
        job_budget_s = job_budget;
        faults }
  in
  (* SIGTERM/SIGINT become a graceful drain, not an exit: run returns
     only after in-flight jobs finish and every thread is joined. *)
  Signals.install (fun _ -> Server.stop srv);
  Server.run srv;
  (match metrics_json with
   | None -> ()
   | Some path ->
     write_json_file path
       (Json.Obj
          [ ("generated", Json.String (Clock.stamp ()));
            ("served", Json.Int (Server.requests_served srv));
            ("metrics", Metrics.to_json ()) ]);
     Printf.printf "wrote %s\n" path);
  Printf.printf "techmapd: drained after %d requests\n"
    (Server.requests_served srv)

let run_client socket verb_s id circuit blif_file lib mode no_cache audit
    reply_blif metrics timeout retries =
  let verb =
    match Proto.verb_of_string verb_s with
    | Some v -> v
    | None ->
      failwith
        (Printf.sprintf "unknown verb %S (ping/map/check/sta/stats/shutdown)"
           verb_s)
  in
  let payload =
    Option.map
      (fun path ->
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s)
      blif_file
  in
  let deadline_ms =
    (* The client-side timeout doubles as the request's end-to-end
       deadline, so the server stops working on it when we stop
       waiting for it. *)
    match verb with
    | Proto.Map | Proto.Check | Proto.Sta when timeout > 0.0 ->
      Some (int_of_float (timeout *. 1e3))
    | _ -> None
  in
  let req =
    { (Proto.request verb) with
      Proto.id;
      circuit;
      lib;
      mode;
      cache = not no_cache;
      audit;
      want_blif = reply_blif;
      metrics;
      deadline_ms }
  in
  let reply =
    if retries > 1 then begin
      let s =
        Client.session ~timeout_s:timeout
          ~retry:{ Client.default_retry with Client.attempts = retries }
          socket
      in
      Fun.protect
        ~finally:(fun () -> Client.end_session s)
        (fun () ->
          match Client.call s ?payload req with
          | Ok j -> j
          | Error m -> failwith m)
    end
    else begin
      let c =
        try Client.connect ~timeout_s:timeout socket
        with Unix.Unix_error (e, _, _) ->
          failwith
            (Printf.sprintf "%s: %s (is techmapd running?)" socket
               (Unix.error_message e))
      in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          try Client.request c ?payload req
          with Client.Timeout ->
            failwith
              (Printf.sprintf "no reply within %.3gs (--timeout)" timeout))
    end
  in
  print_endline (Json.to_string reply);
  let status =
    Option.value ~default:"?"
      (Option.bind (Json.member "status" reply) Json.to_string_value)
  in
  match status with "ok" -> () | "busy" -> exit 3 | _ -> exit 2

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let circuit_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"CIRCUIT" ~doc:"Named benchmark or BLIF file.")

let lib_arg =
  Arg.(
    value & opt string "lib2"
    & info [ "l"; "lib" ] ~docv:"LIB"
        ~doc:"Gate library: lib2, 44-1, 44-3, minimal, or a genlib file.")

let mode_arg =
  Arg.(
    value & opt string "dag"
    & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"tree, dag, or dag-extended.")

let wrap f =
  try `Ok (f ()) with
  | Failure m | Invalid_argument m -> `Error (false, m)
  | Genlib_parser.Syntax_error _ as e ->
    `Error (false, Genlib_parser.describe e)
  | Dagmap_blif.Blif.Parse_error _ as e ->
    `Error (false, Dagmap_blif.Blif.describe e)
  | Superlib.Format_error m -> `Error (false, m)
  | Sys_error m -> `Error (false, m)

let map_cmd =
  let recover =
    Arg.(value & flag & info [ "recover-area" ] ~doc:"Run area recovery.")
  in
  let opt =
    Arg.(
      value & flag
      & info [ "opt" ] ~doc:"Clean the network before decomposition.")
  in
  let buffer =
    Arg.(
      value
      & opt (some int) None
      & info [ "buffer" ] ~docv:"K" ~doc:"Buffer fanouts above K.")
  in
  let out_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write mapped BLIF.")
  in
  let verilog_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "verilog" ] ~docv:"FILE" ~doc:"Write mapped Verilog.")
  in
  let show_path =
    Arg.(value & flag & info [ "path" ] ~doc:"Print the critical path.")
  in
  let verify =
    Arg.(value & flag & info [ "verify" ] ~doc:"Random-simulation check.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Label with N domains in parallel (0 = one per core). Results \
             are bit-identical to the sequential mapper.")
  in
  let priority =
    Arg.(
      value
      & opt int default_cut_priority
      & info [ "priority" ] ~docv:"P"
          ~doc:
            "Cut budget for $(b,--mode cut): keep the P best cuts per node \
             (ranked by realized arrival). Quality converges to the \
             structural mapper's as P grows; ignored by pattern modes.")
  in
  let show_stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print labeling statistics (timings, cache hit rate, domains).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Disable the structural match cache.")
  in
  let super_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "super" ] ~docv:"FILE"
          ~doc:
            "Augment the library with the supergates of an .sglib file \
             (generated by $(b,techmap superlib) from the same base \
             library).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record phase spans (label, cover, per-level parallel work) \
             and write them as Chrome trace-event JSON — open in \
             chrome://tracing or Perfetto. Tracing never changes the \
             mapping result.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Write the observability counter/gauge/histogram registry \
             (cache hit rates, phase timings, work-steal chunks) as JSON \
             after mapping. The registry is reset first, so the file \
             covers exactly this run.")
  in
  let arena =
    Arg.(
      value & flag
      & info [ "arena" ]
          ~doc:
            "Label and cover on the flat struct-of-arrays arena core \
             instead of the boxed subject graph. Bit-identical results; \
             with $(b,--jobs) N the labeling sweep fans dense \
             level slices across N domains (the million-node hot \
             path).")
  in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Parse BLIF circuit files with the streaming reader \
             (constant-memory line handling; identical networks and \
             diagnostics to the default reader).")
  in
  let term =
    Term.(
      ret
        (const (fun c l sf m op r b o vf p v j pr st nc tr mj ar sr ->
             wrap (fun () ->
                 run_map c l sf m op r b o vf p v j pr st nc tr mj ar sr))
        $ circuit_arg $ lib_arg $ super_file $ mode_arg $ opt $ recover
        $ buffer $ out_file $ verilog_file $ show_path $ verify $ jobs
        $ priority $ show_stats $ no_cache $ trace_out $ metrics_json $ arena
        $ stream))
  in
  Cmd.v (Cmd.info "map" ~doc:"Map a circuit onto a gate library.") term

let check_cmd =
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Label with N domains in parallel (0 = one per core).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Disable the structural match cache.")
  in
  let super_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "super" ] ~docv:"FILE"
          ~doc:"Augment the library with an .sglib supergate file.")
  in
  let term =
    Term.(
      ret
        (const (fun c l sf m j nc -> wrap (fun () -> run_check c l sf m j nc))
        $ circuit_arg $ lib_arg $ super_file $ mode_arg $ jobs $ no_cache))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Map a circuit and run the full verification layer on the result: \
          structural lint, per-output delay audit against the mapper's \
          predicted labels, and random-simulation equivalence. Exits 2 on \
          any audit failure.")
    term

let fuzz_cmd =
  let count =
    Arg.(
      value & opt int 25
      & info [ "count" ] ~docv:"N" ~doc:"Number of random circuits.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"S" ~doc:"Base seed (deterministic sweep).")
  in
  let nodes =
    Arg.(
      value & opt int 60
      & info [ "nodes" ] ~docv:"K" ~doc:"Circuit sizes cycle below K nodes.")
  in
  let no_super =
    Arg.(
      value & flag
      & info [ "no-super" ]
          ~doc:
            "Skip the supergate-augmented library cases (by default a small \
             depth-2 supergate library is generated in-process).")
  in
  let max_failures =
    Arg.(
      value & opt int 4
      & info [ "max-failures" ] ~docv:"N"
          ~doc:"Stop after N failing cases have been shrunk.")
  in
  let repro_dir =
    Arg.(
      value & opt string "."
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:"Where to write fuzz_repro_*.blif files.")
  in
  let inject =
    Arg.(
      value & flag
      & info [ "inject-delay-bug" ]
          ~doc:
            "Testing hook: skew every pin delay seen by the labeling pass \
             by +1.0 so the delay audit must fail — proves the harness \
             catches and shrinks a labeling bug.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Print one progress line per circuit.")
  in
  let term =
    Term.(
      ret
        (const (fun c s n l ns mf rd i v ->
             wrap (fun () -> run_fuzz c s n l ns mf rd i v))
        $ count $ seed $ nodes $ lib_arg $ no_super $ max_failures
        $ repro_dir $ inject $ verbose))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzz of the whole mapper: map seeded random \
          circuits under every mode x jobs x cache x library \
          configuration, run the three audits on each result, and shrink \
          any failure to a minimal BLIF repro. Exits 2 when a failure is \
          found.")
    term

let superlib_cmd =
  let lib_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LIB"
          ~doc:"Base library: lib2, 44-1, 44-3, minimal, or a genlib file.")
  in
  let out_file =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the supergate library (.sglib).")
  in
  let depth =
    Arg.(
      value & opt int Superenum.default_bounds.Superenum.depth
      & info [ "depth" ] ~docv:"D" ~doc:"Max composition levels (>= 2).")
  in
  let pins =
    Arg.(
      value & opt int Superenum.default_bounds.Superenum.max_pins
      & info [ "pins" ] ~docv:"P" ~doc:"Max supergate pins (2..6).")
  in
  let size =
    Arg.(
      value & opt int Superenum.default_bounds.Superenum.max_size
      & info [ "size" ] ~docv:"S" ~doc:"Max member gates per supergate.")
  in
  let cap =
    Arg.(
      value & opt int Superenum.default_bounds.Superenum.max_gates
      & info [ "cap" ] ~docv:"N" ~doc:"Max supergates emitted.")
  in
  let fusion =
    Arg.(
      value & opt float Superenum.default_bounds.Superenum.fusion
      & info [ "fusion" ] ~docv:"F"
          ~doc:
            "Child-delay discount in (0,1]: a fused composition's leaf \
             delay is root delay + F * child delay. 1.0 makes supergates \
             purely additive (never faster than chaining).")
  in
  let class_cap =
    Arg.(
      value & opt int Superenum.default_bounds.Superenum.class_cap
      & info [ "class-cap" ] ~docv:"K"
          ~doc:"Max supergates kept per NPN class.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Enumerate with N domains (0 = one per core). Output bytes are \
             identical for every N.")
  in
  let show_stats =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print enumeration statistics.")
  in
  let term =
    Term.(
      ret
        (const (fun l o d p s c f k j st ->
             wrap (fun () -> run_superlib l o d p s c f k j st))
        $ lib_pos $ out_file $ depth $ pins $ size $ cap $ fusion $ class_cap
        $ jobs $ show_stats))
  in
  Cmd.v
    (Cmd.info "superlib"
       ~doc:
         "Generate a supergate library: enumerate bounded gate \
          compositions, deduplicate by NPN class keeping delay-dominant \
          representatives, and persist them as a checksummed .sglib file \
          for $(b,techmap map --super).")
    term

let fpga_cmd =
  let k_arg =
    Arg.(value & opt int 5 & info [ "k" ] ~docv:"K" ~doc:"LUT input count.")
  in
  let verify =
    Arg.(value & flag & info [ "verify" ] ~doc:"Random-simulation check.")
  in
  let out_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the LUT cover as BLIF.")
  in
  let term =
    Term.(
      ret
        (const (fun c k o v -> wrap (fun () -> run_fpga c k o v))
        $ circuit_arg $ k_arg $ out_file $ verify))
  in
  Cmd.v (Cmd.info "fpga" ~doc:"Depth-optimal k-LUT mapping (FlowMap).") term

let retime_cmd =
  let term =
    Term.(
      ret
        (const (fun c l m -> wrap (fun () -> run_retime c l m))
        $ circuit_arg $ lib_arg $ mode_arg))
  in
  Cmd.v
    (Cmd.info "retime" ~doc:"Map a sequential circuit and retime it.")
    term

let compare_cmd =
  let term =
    Term.(
      ret
        (const (fun c l -> wrap (fun () -> run_compare c l))
        $ circuit_arg $ lib_arg))
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run every mapping engine on one circuit.")
    term

let libs_cmd =
  let dump = Arg.(value & flag & info [ "dump" ] ~doc:"Print genlib text.") in
  let term = Term.(ret (const (fun d -> wrap (fun () -> run_libs d)) $ dump)) in
  Cmd.v (Cmd.info "libs" ~doc:"List the built-in gate libraries.") term

let circuits_cmd =
  let term = Term.(ret (const (fun () -> wrap run_circuits) $ const ())) in
  Cmd.v (Cmd.info "circuits" ~doc:"List the named benchmark circuits.") term

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/techmapd.sock"
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let libs =
    Arg.(
      value & opt_all string []
      & info [ "l"; "lib" ] ~docv:"LIB"
          ~doc:
            "Load a library at startup (repeatable; first is the default \
             for requests that name none). With no $(b,--lib), every \
             built-in library is loaded.")
  in
  let supers =
    Arg.(
      value & opt_all string []
      & info [ "super" ] ~docv:"FILE"
          ~doc:
            "Load an .sglib supergate file (repeatable): its base library \
             is augmented and registered as $(i,base)+super.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains mapping requests in parallel (0 = one per core).")
  in
  let queue =
    Arg.(
      value & opt int 32
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "In-flight request cap (queued + running); past it the daemon \
             replies $(i,busy) instead of queueing.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Write the serve.* metrics registry (per-verb counters, \
             latency histogram) as JSON after the drain.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No per-lifecycle stderr lines.")
  in
  let io_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "io-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-read/-write progress bound once a request is in flight \
             (partial header, payload, reply). 0 disables.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 300.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Reap connections with no request in progress after this long. \
             0 disables.")
  in
  let job_budget =
    Arg.(
      value & opt float 0.0
      & info [ "job-budget" ] ~docv:"SECONDS"
          ~doc:
            "Watchdog wall budget per mapping job: past it the request \
             fails with $(i,watchdog_timeout) and the worker pool is \
             restarted (degraded inline service meanwhile). 0 disables.")
  in
  let faults =
    Arg.(
      value & opt string ""
      & info [ "faults" ] ~docv:"PLAN"
          ~doc:
            "Inject faults for chaos testing: comma-separated \
             $(i,crash_job:p), $(i,delay_job:ms:p), $(i,drop_conn:p), \
             $(i,garble_reply:p), $(i,stall_read:ms:p), $(i,seed:n).")
  in
  let term =
    Term.(
      ret
        (const (fun s l su j q mj qt iot idt jb f ->
             wrap (fun () -> run_serve s l su j q mj qt iot idt jb f))
        $ socket_arg $ libs $ supers $ jobs $ queue $ metrics_json $ quiet
        $ io_timeout $ idle_timeout $ job_budget $ faults))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run techmapd: a mapping-as-a-service daemon on a Unix socket. \
          Libraries and pattern databases load once; concurrent \
          map/check/sta/stats requests are scheduled onto a persistent \
          domain pool with bounded-queue backpressure. SIGTERM/SIGINT \
          drain gracefully.")
    term

let client_cmd =
  let verb_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"VERB" ~doc:"ping, map, check, sta, stats or shutdown.")
  in
  let id =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"ID" ~doc:"Client tag echoed in the reply.")
  in
  let circuit =
    Arg.(
      value
      & opt (some string) None
      & info [ "c"; "circuit" ] ~docv:"SPEC"
          ~doc:"Server-side circuit spec (named benchmark, chain:<n>, ...).")
  in
  let blif_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "blif" ] ~docv:"FILE" ~doc:"Ship this BLIF file as the payload.")
  in
  let lib =
    Arg.(
      value
      & opt (some string) None
      & info [ "l"; "lib" ] ~docv:"LIB" ~doc:"Library name loaded in the daemon.")
  in
  let mode =
    Arg.(
      value
      & opt (some string) None
      & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"tree, dag, or dag-extended.")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the match cache.")
  in
  let audit =
    Arg.(
      value & flag
      & info [ "audit" ] ~doc:"Run the full lib/check audit server-side.")
  in
  let reply_blif =
    Arg.(
      value & flag
      & info [ "reply-blif" ] ~doc:"Include the mapped netlist BLIF in the reply.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Include the metrics registry (stats verb).")
  in
  let timeout =
    Arg.(
      value & opt float 30.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Give up if the exchange has not completed in this long; for \
             map/check/sta the value also rides along as the request's \
             $(i,deadline_ms) so the server abandons it too. 0 disables.")
  in
  let retries =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Total attempts: past 1, $(i,busy) replies and transient \
             transport failures are retried with jittered exponential \
             backoff.")
  in
  let term =
    Term.(
      ret
        (const (fun s v i c b l m nc a rb mt to_ rt ->
             wrap (fun () -> run_client s v i c b l m nc a rb mt to_ rt))
        $ socket_arg $ verb_arg $ id $ circuit $ blif_file $ lib $ mode
        $ no_cache $ audit $ reply_blif $ metrics $ timeout $ retries))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running techmapd and print its JSON reply. \
          Exit 0 on ok, 3 on busy, 2 on error.")
    term

let () =
  (* Interrupted batch runs flush trace/metrics output through the
     cleanup hooks; writes to vanished pipes fail with EPIPE instead
     of killing the process. The serve command replaces the handler
     with a graceful drain. *)
  Signals.ignore_sigpipe ();
  Signals.install_default ();
  let doc = "delay-optimal technology mapping by DAG covering" in
  let info = Cmd.info "techmap" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
          [ map_cmd; check_cmd; fuzz_cmd; superlib_cmd; fpga_cmd; retime_cmd;
            compare_cmd; libs_cmd; circuits_cmd; serve_cmd; client_cmd ]))
