(* Boolean network construction, traversal and validation. *)

open Dagmap_logic

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let v = Bexpr.var

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let small_net () =
  let net = Network.create ~name:"small" () in
  let a = Network.add_pi net "a" in
  let b = Network.add_pi net "b" in
  let g1 = Network.add_logic net ~name:"g1" (Bexpr.and2 (v 0) (v 1)) [| a; b |] in
  let g2 = Network.add_logic net ~name:"g2" (Bexpr.not_ (v 0)) [| g1 |] in
  Network.add_po net "f" g2;
  (net, a, b, g1, g2)

let test_construction () =
  let net, a, b, g1, g2 = small_net () in
  check tint "node count" 4 (Network.num_nodes net);
  check (Alcotest.list tint) "pis" [ a; b ] (Network.pis net);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string tint))
    "pos" [ ("f", g2) ] (Network.pos net);
  check tbool "g1 kind" true ((Network.node net g1).Network.kind = Network.Logic);
  Network.validate net

let test_bad_fanin_rejected () =
  let net = Network.create () in
  Alcotest.check_raises "bad fanin"
    (Invalid_argument "Network.add_logic: bad fanin") (fun () ->
      ignore (Network.add_logic net (v 0) [| 5 |]))

let test_expr_exceeds_fanins () =
  let net = Network.create () in
  let a = Network.add_pi net "a" in
  Alcotest.check_raises "expr exceeds fanins"
    (Invalid_argument "Network.add_logic: expression references missing fanin")
    (fun () -> ignore (Network.add_logic net (Bexpr.and2 (v 0) (v 1)) [| a |]))

let test_topological_order () =
  let net, _, _, _, _ = small_net () in
  let order = Network.topological_order net in
  check tint "order covers all" (Network.num_nodes net) (List.length order);
  let position = Hashtbl.create 8 in
  List.iteri (fun i id -> Hashtbl.replace position id i) order;
  Network.iter_nodes net (fun n ->
      Array.iter
        (fun f ->
          check tbool "fanin precedes user" true
            (Hashtbl.find position f < Hashtbl.find position n.Network.id))
        n.Network.fanins)

let test_levels_and_depth () =
  let net, a, b, g1, g2 = small_net () in
  let levels = Network.level net in
  check tint "pi level" 0 levels.(a);
  check tint "pi level" 0 levels.(b);
  check tint "g1 level" 1 levels.(g1);
  check tint "g2 level" 2 levels.(g2);
  check tint "depth" 2 (Network.depth net)

let test_fanout_counts () =
  let net = Network.create () in
  let a = Network.add_pi net "a" in
  let g1 = Network.add_logic net (Bexpr.not_ (v 0)) [| a |] in
  let g2 = Network.add_logic net (Bexpr.and2 (v 0) (v 1)) [| a; g1 |] in
  Network.add_po net "f" g2;
  Network.add_po net "g" g1;
  let counts = Network.fanout_counts net in
  check tint "a fanout" 2 counts.(a);
  check tint "g1 fanout" 2 counts.(g1);
  check tint "g2 fanout" 1 counts.(g2)

let test_node_truth () =
  let net, _, _, g1, _ = small_net () in
  check tbool "g1 is and" true
    (Truth.equal (Network.node_truth net g1)
       (Truth.logand (Truth.var 2 0) (Truth.var 2 1)))

let test_latches () =
  let net = Network.create () in
  let a = Network.add_pi net "a" in
  let q = Network.add_latch_output net ~name:"q" () in
  let d = Network.add_logic net (Bexpr.xor2 (v 0) (v 1)) [| a; q |] in
  (match Network.validate net with
   | exception Failure _ -> ()
   | () -> Alcotest.fail "unbound latch accepted");
  Network.set_latch_input net ~latch_output:q d;
  Network.add_po net "o" d;
  Network.validate net;
  check tint "one latch" 1 (List.length (Network.latches net));
  let l = List.hd (Network.latches net) in
  check tint "latch input" d l.Network.latch_input;
  check tint "latch output" q l.Network.latch_output;
  check tint "depth stops at latch" 1 (Network.depth net)

let test_deep_chain_traversals () =
  (* Regression: [topological_order] was recursive. The explicit
     stack must survive chains far deeper than any fixed-size call
     stack (bytecode builds) would allow. *)
  let depth = 100_000 in
  let net = Network.create ~name:"deep" () in
  let x = Network.add_pi net "x" in
  let prev = ref x in
  for _ = 1 to depth do
    prev := Network.add_logic net (Bexpr.not_ (v 0)) [| !prev |]
  done;
  Network.add_po net "o" !prev;
  let order = Network.topological_order net in
  check tint "order covers all" (depth + 1) (List.length order);
  (* Fanins precede users even at this depth. *)
  (match order with
   | first :: _ -> check tint "PI first" x first
   | [] -> Alcotest.fail "empty order");
  check tint "depth" depth (Network.depth net);
  Network.validate net

let test_is_k_bounded () =
  let net = Network.create () in
  let pis = Array.init 5 (fun i -> Network.add_pi net (Printf.sprintf "x%d" i)) in
  let wide = Network.add_logic net (Bexpr.and_list (List.init 5 v)) pis in
  Network.add_po net "f" wide;
  check tbool "5-bounded" true (Network.is_k_bounded net 5);
  check tbool "not 4-bounded" false (Network.is_k_bounded net 4)

let test_find_by_name () =
  let net, _, _, g1, _ = small_net () in
  check (Alcotest.option tint) "find g1" (Some g1) (Network.find_by_name net "g1");
  check (Alcotest.option tint) "find missing" None
    (Network.find_by_name net "nope")

let test_to_dot () =
  let net, _, _, _, _ = small_net () in
  let dot = Network.to_dot net in
  check tbool "digraph" true (contains dot "digraph");
  check tbool "output node" true (contains dot "out_f")

let test_stats () =
  let net, _, _, _, _ = small_net () in
  check tbool "stats mention counts" true
    (contains (Network.stats net) "pi=2 po=1 logic=2 latch=0 depth=2")

let () =
  Alcotest.run "network"
    [ ( "construction",
        [ Alcotest.test_case "basic" `Quick test_construction;
          Alcotest.test_case "bad fanin" `Quick test_bad_fanin_rejected;
          Alcotest.test_case "expr exceeds fanins" `Quick test_expr_exceeds_fanins ] );
      ( "traversal",
        [ Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "levels and depth" `Quick test_levels_and_depth;
          Alcotest.test_case "fanout counts" `Quick test_fanout_counts;
          Alcotest.test_case "node truth" `Quick test_node_truth;
          Alcotest.test_case "100k-deep chain" `Quick
            test_deep_chain_traversals ] );
      ( "latches", [ Alcotest.test_case "two-phase latch" `Quick test_latches ] );
      ( "misc",
        [ Alcotest.test_case "k-bounded" `Quick test_is_k_bounded;
          Alcotest.test_case "find by name" `Quick test_find_by_name;
          Alcotest.test_case "dot export" `Quick test_to_dot;
          Alcotest.test_case "stats" `Quick test_stats ] ) ]
