(* techmapd: wire-protocol round-trips, the malformed-request
   catalog (the daemon must answer with a structured error and stay
   alive), end-to-end mapping equality against the in-process
   mapper, backpressure, and graceful drain. Every live test runs a
   real Server.t on its own temp socket. *)

open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_circuits
open Dagmap_obs
open Dagmap_serve

let check = Alcotest.check
let tbool = Alcotest.bool
let tstr = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Protocol: parse/encode                                              *)
(* ------------------------------------------------------------------ *)

let value_gen =
  QCheck.Gen.(
    string_size ~gen:
      (oneof
         [ char_range 'a' 'z';
           char_range 'A' 'Z';
           char_range '0' '9';
           oneofl [ '_'; '-'; ':'; '.'; '=' ] ])
      (int_range 1 12))

let request_gen =
  QCheck.Gen.(
    let* verb =
      oneofl
        [ Proto.Ping; Proto.Map; Proto.Check; Proto.Sta; Proto.Stats;
          Proto.Shutdown ]
    in
    let* id = opt value_gen in
    let* circuit = opt value_gen in
    let* payload = opt (int_range 0 Proto.max_payload) in
    let* lib = opt value_gen in
    let* mode = opt value_gen in
    let* cache = bool in
    let* audit = bool in
    let* want_blif = bool in
    let* metrics = bool in
    let+ deadline_ms = opt (int_range 1 3_600_000) in
    { Proto.verb; id; circuit; payload; lib; mode; cache; audit;
      want_blif; metrics; deadline_ms })

let qc_roundtrip =
  QCheck.Test.make ~count:500 ~name:"encode/parse round-trip"
    (QCheck.make request_gen) (fun req ->
      let line = Proto.encode_request req in
      match Proto.parse_request line with
      | Ok parsed -> parsed = req
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e.Proto.message)

let test_parse_errors () =
  let fatal line =
    match Proto.parse_request line with
    | Error e -> Some e.Proto.fatal
    | Ok _ -> None
  in
  check (Alcotest.option tbool) "empty line" (Some false) (fatal "");
  check (Alcotest.option tbool) "malformed pair" (Some false)
    (fatal "map foo");
  check (Alcotest.option tbool) "unknown verb, no payload" (Some false)
    (fatal "frobnicate id=1");
  check (Alcotest.option tbool) "unknown verb with payload" (Some true)
    (fatal "frobnicate payload=12");
  check (Alcotest.option tbool) "payload not a number" (Some true)
    (fatal "map payload=banana");
  check (Alcotest.option tbool) "payload too large" (Some true)
    (fatal (Printf.sprintf "map payload=%d" (Proto.max_payload + 1)));
  check (Alcotest.option tbool) "negative payload" (Some true)
    (fatal "map payload=-3");
  check (Alcotest.option tbool) "bad flag" (Some false) (fatal "map audit=yes");
  (match Proto.parse_request "map unknown_key=whatever circuit=c432" with
   | Ok r -> check (Alcotest.option tstr) "unknown keys skipped"
               (Some "c432") r.Proto.circuit
   | Error _ -> Alcotest.fail "unknown key should be ignored");
  check tbool "encode rejects spaces" true
    (match
       Proto.encode_request
         { (Proto.request Proto.Map) with Proto.id = Some "a b" }
     with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Live server harness                                                 *)
(* ------------------------------------------------------------------ *)

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "techmapd_test_%d_%d.sock" (Unix.getpid ()) !n)

let resolver spec =
  match String.split_on_char ':' spec with
  | [ "chain"; n ] -> Generators.nand_chain (int_of_string n)
  | [ "rand"; seed ] ->
    Generators.random_dag ~seed:(int_of_string seed) ~nodes:60 ()
  | _ -> failwith ("no such circuit " ^ spec)

let with_server ?(jobs = 2) ?(queue = 4) ?(io_timeout = 0.0)
    ?(idle_timeout = 0.0) ?(job_budget = 0.0) ?(faults = Faultplan.none) f =
  let sock = fresh_sock () in
  let srv =
    Server.create
      { Server.socket_path = sock;
        jobs;
        queue_max = queue;
        libraries =
          [ ("lib2", Libraries.lib2_like ());
            ("minimal", Libraries.minimal ()) ];
        resolve_circuit = Some resolver;
        verbose = false;
        io_timeout_s = io_timeout;
        idle_timeout_s = idle_timeout;
        job_budget_s = job_budget;
        faults }
  in
  let th = Thread.create Server.run srv in
  let finally () =
    Server.stop srv;
    Thread.join th;
    check tbool "socket removed after drain" false (Sys.file_exists sock)
  in
  Fun.protect ~finally (fun () -> f sock srv)

let status reply =
  Option.value ~default:"?"
    (Option.bind (Json.member "status" reply) Json.to_string_value)

let str_field name reply =
  Option.bind (Json.member name reply) Json.to_string_value

let num_field name reply =
  match Option.bind (Json.member name reply) Json.to_number with
  | Some x -> x
  | None -> Alcotest.fail (Printf.sprintf "reply without %s" name)

let ping_ok c =
  let reply = Client.request c (Proto.request Proto.Ping) in
  check tstr "ping" "ok" (status reply)

(* ------------------------------------------------------------------ *)
(* Malformed-request catalog                                           *)
(* ------------------------------------------------------------------ *)

let test_malformed_catalog () =
  with_server @@ fun sock _srv ->
  (* Garbage verb: structured error, same connection keeps working. *)
  let c = Client.connect sock in
  Client.send_raw c "!!! definitely not protocol\n";
  let r = Client.read_reply c in
  check tstr "garbage verb status" "error" (status r);
  check (Alcotest.option tstr) "garbage verb code" (Some "bad_request")
    (str_field "code" r);
  ping_ok c;
  Client.send_raw c "frobnicate id=1\n";
  check (Alcotest.option tstr) "unknown verb code" (Some "unknown_verb")
    (str_field "code" (Client.read_reply c));
  ping_ok c;
  (* Garbage bytes (invalid UTF-8 is fine, it is a byte protocol):
     still a structured error, connection lives. *)
  Client.send_raw c "\xff\xfe\xaa bla=1\n";
  check tstr "garbage bytes -> error" "error" (status (Client.read_reply c));
  ping_ok c;
  (* Malformed pair and empty line: non-fatal. *)
  Client.send_raw c "map foo\n";
  check (Alcotest.option tstr) "malformed pair" (Some "bad_request")
    (str_field "code" (Client.read_reply c));
  Client.send_raw c "\n";
  check tstr "empty line -> error" "error" (status (Client.read_reply c));
  ping_ok c;
  (* Bad BLIF payload: semantic error, connection lives. *)
  let junk = ".model broken\nthis line is not BLIF\n" in
  let r =
    Client.request c ~payload:junk { (Proto.request Proto.Map) with
                                     Proto.id = Some "b1" }
  in
  check (Alcotest.option tstr) "bad blif code" (Some "blif_parse")
    (str_field "code" r);
  check (Alcotest.option tstr) "id echoed on error" (Some "b1")
    (str_field "id" r);
  ping_ok c;
  (* Unknown lib / mode / circuit: structured, connection lives. *)
  let r =
    Client.request c
      { (Proto.request Proto.Map) with
        Proto.circuit = Some "rand:1"; lib = Some "nosuchlib" }
  in
  check (Alcotest.option tstr) "unknown lib" (Some "unknown_lib")
    (str_field "code" r);
  let r =
    Client.request c
      { (Proto.request Proto.Map) with
        Proto.circuit = Some "rand:1"; mode = Some "quantum" }
  in
  check (Alcotest.option tstr) "unknown mode" (Some "unknown_mode")
    (str_field "code" r);
  let r =
    Client.request c
      { (Proto.request Proto.Map) with Proto.circuit = Some "bogus:9" }
  in
  check (Alcotest.option tstr) "unknown circuit" (Some "unknown_circuit")
    (str_field "code" r);
  (* No payload and no circuit at all. *)
  let r = Client.request c (Proto.request Proto.Map) in
  check (Alcotest.option tstr) "no input" (Some "bad_request")
    (str_field "code" r);
  ping_ok c;
  Client.close c;
  (* Oversized declared payload: fatal — reply then close. The daemon
     itself survives (fresh connection works). *)
  let c = Client.connect sock in
  Client.send_raw c
    (Printf.sprintf "map payload=%d\n" (Proto.max_payload + 1));
  let r = Client.read_reply c in
  check (Alcotest.option tstr) "oversized payload" (Some "payload_too_large")
    (str_field "code" r);
  check tbool "connection closed after fatal" true
    (match Client.read_reply c with
     | _ -> false
     | exception Failure _ -> true);
  Client.close c;
  (* Truncated payload: declare more bytes than we send, half-close.
     The reply still arrives on the open receive side. *)
  let c = Client.connect sock in
  Client.send_raw c "map payload=4096\nonly these bytes";
  Client.half_close c;
  let r = Client.read_reply c in
  check (Alcotest.option tstr) "truncated payload"
    (Some "truncated_payload") (str_field "code" r);
  Client.close c;
  (* Header cut off mid-line by a half-close. *)
  let c = Client.connect sock in
  Client.send_raw c "map circuit=ra";
  Client.half_close c;
  check (Alcotest.option tstr) "truncated header" (Some "truncated_header")
    (str_field "code" (Client.read_reply c));
  Client.close c;
  (* Oversized header line. *)
  let c = Client.connect sock in
  Client.send_raw c ("map id=" ^ String.make Proto.max_header 'x' ^ "\n");
  check (Alcotest.option tstr) "oversized header" (Some "header_too_long")
    (str_field "code" (Client.read_reply c));
  Client.close c;
  (* Premature close with nothing sent: not even a reply expected;
     the daemon just must survive it. *)
  let c = Client.connect sock in
  Client.close c;
  let c = Client.connect sock in
  ping_ok c;
  Client.close c

(* ------------------------------------------------------------------ *)
(* End-to-end semantics                                                *)
(* ------------------------------------------------------------------ *)

let test_map_matches_local () =
  with_server @@ fun sock _srv ->
  let net = Generators.random_dag ~seed:11 ~nodes:80 () in
  let payload = Dagmap_blif.Blif.write_network net in
  let c = Client.connect sock in
  let reply =
    Client.request c ~payload
      { (Proto.request Proto.Map) with Proto.audit = true }
  in
  check tstr "map ok" "ok" (status reply);
  check (Alcotest.option tstr) "audit clean" (Some "ok")
    (str_field "audit" reply);
  (* The daemon must agree exactly with an in-process map of the same
     bytes under the same (default) library and mode. *)
  let local_net = Dagmap_blif.Blif.read_string ~file:"<local>" payload in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let local =
    Mapper.map Mapper.Dag db (Subject.of_network local_net)
  in
  check (Alcotest.float 0.0) "delay identical"
    (Netlist.delay local.Mapper.netlist)
    (num_field "delay" reply);
  check (Alcotest.float 0.0) "area identical"
    (Netlist.area local.Mapper.netlist)
    (num_field "area" reply);
  (* check and sta verbs answer over the same circuit. *)
  let r = Client.request c ~payload (Proto.request Proto.Check) in
  check tstr "check ok" "ok" (status r);
  check tbool "check clean" true
    (Json.member "clean" r = Some (Json.Bool true));
  let r = Client.request c ~payload (Proto.request Proto.Sta) in
  check tstr "sta ok" "ok" (status r);
  check (Alcotest.float 0.0) "sta worst = mapped delay"
    (Netlist.delay local.Mapper.netlist)
    (num_field "worst_delay" r);
  (* stats reflects the traffic. *)
  let r = Client.request c (Proto.request Proto.Stats) in
  check tstr "stats ok" "ok" (status r);
  check tbool "stats served > 0" true (num_field "served" r > 0.0);
  Client.close c

let test_server_side_circuit_and_blif_reply () =
  with_server @@ fun sock _srv ->
  let c = Client.connect sock in
  let reply =
    Client.request c
      { (Proto.request Proto.Map) with
        Proto.circuit = Some "rand:3"; want_blif = true; lib = Some "minimal" }
  in
  check tstr "server-side circuit ok" "ok" (status reply);
  let blif =
    match str_field "blif" reply with
    | Some s -> s
    | None -> Alcotest.fail "no blif in reply"
  in
  (* The reply carries gate-level netlist BLIF: one .gate line per
     mapped instance (the logic-level reader skips .gate, so this is
     a structural check, not a re-parse). *)
  let count_gate_lines s =
    List.length
      (List.filter
         (fun l -> String.length l > 6 && String.sub l 0 6 = ".gate ")
         (String.split_on_char '\n' s))
  in
  check tbool "reply blif has a model header" true
    (String.length blif > 13 && String.sub blif 0 13 = ".model mapped");
  check Alcotest.int "one .gate line per mapped instance"
    (int_of_float (num_field "gates" reply))
    (count_gate_lines blif);
  Client.close c

let test_busy_backpressure () =
  with_server ~jobs:1 ~queue:1 @@ fun sock _srv ->
  (* One slow request occupies the single in-flight slot; while it is
     demonstrably in flight (stats is served inline, never pooled, so
     it works even with the pool saturated) any map must be refused
     with busy. *)
  let slow = Thread.create (fun () ->
      let c = Client.connect sock in
      let r =
        Client.request c
          { (Proto.request Proto.Map) with Proto.circuit = Some "chain:80000" }
      in
      Client.close c;
      check tstr "slow request eventually ok" "ok" (status r)) ()
  in
  let c = Client.connect sock in
  let rec wait_in_flight n =
    if n = 0 then Alcotest.fail "slow request never became in-flight"
    else if num_field "in_flight" (Client.request c (Proto.request Proto.Stats))
            < 1.0
    then begin
      Thread.delay 0.01;
      wait_in_flight (n - 1)
    end
  in
  wait_in_flight 500;
  let r =
    Client.request c
      { (Proto.request Proto.Map) with Proto.circuit = Some "rand:5" }
  in
  check tstr "map refused while saturated" "busy" (status r);
  check tbool "busy reports limit" true (num_field "queue_max" r = 1.0);
  Client.close c;
  Thread.join slow

let test_shutdown_verb_and_counters () =
  let sock = fresh_sock () in
  let srv =
    Server.create
      { Server.socket_path = sock;
        jobs = 1;
        queue_max = 4;
        libraries = [ ("minimal", Libraries.minimal ()) ];
        resolve_circuit = Some resolver;
        verbose = false;
        io_timeout_s = 0.0;
        idle_timeout_s = 0.0;
        job_budget_s = 0.0;
        faults = Faultplan.none }
  in
  let th = Thread.create Server.run srv in
  let c = Client.connect sock in
  ping_ok c;
  let r =
    Client.request c
      { (Proto.request Proto.Map) with Proto.circuit = Some "rand:2" }
  in
  check tstr "map before shutdown" "ok" (status r);
  let r = Client.request c (Proto.request Proto.Shutdown) in
  check tbool "shutdown acknowledged" true
    (Json.member "draining" r = Some (Json.Bool true));
  (* The shutdown reply is the last one; the daemon drains and the
     run thread returns. *)
  Thread.join th;
  Client.close c;
  check tbool "socket removed" false (Sys.file_exists sock);
  check tbool "served everything" true (Server.requests_served srv >= 3)

let test_live_socket_refused () =
  with_server @@ fun sock _srv ->
  check tbool "second daemon on a live socket refused" true
    (match
       Server.create
         { Server.socket_path = sock;
           jobs = 1;
           queue_max = 1;
           libraries = [ ("minimal", Libraries.minimal ()) ];
           resolve_circuit = None;
           verbose = false;
           io_timeout_s = 0.0;
           idle_timeout_s = 0.0;
           job_budget_s = 0.0;
           faults = Faultplan.none }
     with
     | _ -> false
     | exception Failure _ -> true)

let () =
  Alcotest.run "serve"
    [ ( "proto",
        [ QCheck_alcotest.to_alcotest qc_roundtrip;
          Alcotest.test_case "parse error catalog" `Quick test_parse_errors ] );
      ( "malformed",
        [ Alcotest.test_case "daemon survives the catalog" `Quick
            test_malformed_catalog ] );
      ( "semantics",
        [ Alcotest.test_case "map/check/sta match local mapper" `Quick
            test_map_matches_local;
          Alcotest.test_case "server-side circuits, blif replies" `Quick
            test_server_side_circuit_and_blif_reply ] );
      ( "lifecycle",
        [ Alcotest.test_case "busy under overload" `Quick
            test_busy_backpressure;
          Alcotest.test_case "shutdown verb drains" `Quick
            test_shutdown_verb_and_counters;
          Alcotest.test_case "live socket refused" `Quick
            test_live_socket_refused ] ) ]
