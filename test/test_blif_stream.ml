(* Differential lockdown of the streaming BLIF reader: for any input —
   well-formed or malformed — Blif_stream must produce the same
   network as the legacy Blif reader, or fail with the same
   Parse_error payload (file, line, message). The two implementations
   share no parsing code, so every agreement here is evidence, not
   tautology. *)

open Dagmap_logic
open Dagmap_circuits
open Dagmap_blif

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

(* --- structural network equality ------------------------------------- *)

let same_network tag (a : Network.t) (b : Network.t) =
  check tstr (tag ^ ": model") (Network.name a) (Network.name b);
  check tint (tag ^ ": nodes") (Network.num_nodes a) (Network.num_nodes b);
  for id = 0 to Network.num_nodes a - 1 do
    let na = Network.node a id and nb = Network.node b id in
    check tstr (Printf.sprintf "%s: node %d name" tag id) na.Network.name
      nb.Network.name;
    check tbool
      (Printf.sprintf "%s: node %d kind" tag id)
      true
      (na.Network.kind = nb.Network.kind);
    check tbool
      (Printf.sprintf "%s: node %d fanins" tag id)
      true
      (na.Network.fanins = nb.Network.fanins);
    check tbool
      (Printf.sprintf "%s: node %d expr" tag id)
      true
      (na.Network.expr = nb.Network.expr)
  done;
  check tbool (tag ^ ": pis") true (Network.pis a = Network.pis b);
  check tbool (tag ^ ": pos") true (Network.pos a = Network.pos b);
  let la = Network.latches a and lb = Network.latches b in
  check tint (tag ^ ": latch count") (List.length la) (List.length lb);
  List.iter2
    (fun (x : Network.latch) (y : Network.latch) ->
      check tbool (tag ^ ": latch") true
        (x.Network.latch_input = y.Network.latch_input
        && x.Network.latch_output = y.Network.latch_output
        && x.Network.latch_init = y.Network.latch_init))
    la lb

type outcome =
  | Net of Network.t
  | Err of string option * int * string
  | Fail of string

let outcome_of parse source =
  match parse source with
  | net -> Net net
  | exception Blif.Parse_error { file; line; message } ->
    Err (file, line, message)
  | exception Failure m -> Fail m

let show_outcome = function
  | Net n -> Printf.sprintf "network (%s)" (Network.stats n)
  | Err (file, line, message) ->
    Printf.sprintf "Parse_error %s:%d: %s"
      (Option.value ~default:"<string>" file)
      line message
  | Fail m -> Printf.sprintf "Failure %s" m

let agree tag legacy stream =
  match legacy, stream with
  | Net a, Net b -> same_network tag a b
  | Err (fa, la, ma), Err (fb, lb, mb) ->
    check tbool (tag ^ ": error file") true (fa = fb);
    check tint (tag ^ ": error line") la lb;
    check tstr (tag ^ ": error message") ma mb
  | Fail a, Fail b -> check tstr (tag ^ ": failure") a b
  | a, b ->
    Alcotest.failf "%s: readers disagree: legacy %s, stream %s" tag
      (show_outcome a) (show_outcome b)

let both tag source =
  agree tag
    (outcome_of Blif.read_string source)
    (outcome_of Blif_stream.read_string source)

(* --- generated-circuit differential ----------------------------------- *)

let fuzz_circuits () =
  let rand i =
    Generators.random_dag ~seed:(41 + i)
      ~inputs:(4 + (i mod 7))
      ~outputs:(2 + (i mod 5))
      ~nodes:(20 + (17 * i mod 120))
      ()
  in
  List.init 12 rand
  @ [ Generators.ripple_adder 6;
      Generators.kogge_stone_adder 8;
      Generators.barrel_shifter 8;
      Generators.decoder 4;
      Generators.lfsr 6;
      Generators.pipelined_parity 8 2;
      Generators.nand_chain 200;
      Generators.synthetic_soc ~seed:7 ~nodes:2_000 () ]

let test_generated_circuits () =
  List.iter
    (fun net ->
      let text = Blif.write_network net in
      let tag = Network.name net in
      both tag text;
      (* The streaming result must also match the original writer's
         source network in simulation-relevant structure. *)
      match outcome_of Blif_stream.read_string text with
      | Net reparsed ->
        check tint (tag ^ ": pi count")
          (List.length (Network.pis net))
          (List.length (Network.pis reparsed))
      | o -> Alcotest.failf "%s: stream reader failed: %s" tag (show_outcome o))
    (fuzz_circuits ())

(* qcheck: random textual mutations of valid BLIF — comments,
   continuations, blank lines, tab runs, CRLF endings, character
   corruption. Both readers must agree on the outcome either way. *)
let mutate st text =
  let lines = String.split_on_char '\n' text in
  let mutate_line line =
    match Random.State.int st 10 with
    | 0 -> line ^ " # trailing comment"
    | 1 -> "# full comment\n" ^ line
    | 2 -> "\n" ^ line
    | 3 -> "\t" ^ line ^ "  "
    | 4 -> begin
      (* Split at a space with a continuation backslash. *)
      match String.index_opt line ' ' with
      | Some i when i + 1 < String.length line ->
        String.sub line 0 i ^ " \\\n  "
        ^ String.sub line (i + 1) (String.length line - i - 1)
      | _ -> line
    end
    | 5 -> line ^ "\r"
    | 6 when String.length line > 0 ->
      (* Corrupt one character: likely (but not certainly) malformed. *)
      let i = Random.State.int st (String.length line) in
      let b = Bytes.of_string line in
      Bytes.set b i
        (Char.chr (33 + Random.State.int st 90));
      Bytes.to_string b
    | _ -> line
  in
  String.concat "\n" (List.map mutate_line lines)

let qc_mutations =
  QCheck.Test.make ~count:60 ~name:"mutated sources agree"
    QCheck.(pair small_int small_int)
    (fun (seed, mseed) ->
      let net =
        Generators.random_dag ~seed:(100 + seed) ~inputs:5 ~outputs:3
          ~nodes:(15 + (seed mod 40))
          ()
      in
      let st = Random.State.make [| 0xB11F; mseed; seed |] in
      let text = mutate st (Blif.write_network net) in
      both "mutated" text;
      true)

(* --- malformed-input parity ------------------------------------------- *)

let malformed_catalog =
  [ ".model a b\n";
    ".model m\n.inputs a\n.outputs f\n.names a f\n1 2\n.end\n";
    ".model m\n.inputs a\n.outputs f\n.names a f\n11 1\n.end\n";
    ".model m\n.inputs a\n.outputs f\n.end\n";
    ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n.end\n";
    ".model m\n.inputs a\n.outputs f\n.names f f\n1 1\n.end\n";
    ".model m\n.inputs a\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n";
    ".model m\n.inputs a\n.outputs f\n.names w f\n1 1\n.end\n";
    ".model m\n.inputs a b\n.outputs f\n.names a b f\n1x 1\n.end\n";
    ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end\n";
    ".model m\n.inputs a\n.outputs f\n.names\n.end\n";
    ".model m\n.inputs a\n.outputs f\n.latch\n.end\n";
    ".model m\n.inputs a\n.outputs f\n.latch d\n.end\n";
    ".model m\n.inputs a\n.outputs f\n.exdc\n.end\n";
    ".model m\n.inputs a\n.outputs f\nstray line\n.end\n";
    ".model m\n.inputs a\n.outputs f\n.names a f\nbogus\n.end\n";
    ".model m\n.inputs a\n.outputs f\n.names f\nx\n.end\n";
    ".model m\n.inputs a\n.outputs f\n.names a f\n1 1 1\n.end\n";
    ".model m\n.outputs f\n.names g f\n1 1\n.names f g\n1 1\n.end\n";
    ".model m\n.inputs a\n.outputs o\n.latch x q\n.names a q d\n11 1\n.end\n";
    (* Continuation pathologies around end of input: with a trailing
       newline the legacy split sees a final empty segment that
       flushes the pending line; without one the pending is flushed at
       EOF. Both must be replayed exactly, including the resulting %S
       diagnostic text. *)
    ".model m\n.inputs a\n.outputs f\n.names a f\nbogus \\\n";
    ".model m\n.inputs a\n.outputs f\n.names a f\nbogus \\";
    ".model m\n.inputs a\n.outputs f\n.names a \\\nf\n1 2\n.end\n";
    ".model m \\\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n";
    "" ]

let test_malformed_parity () =
  List.iteri
    (fun i source -> both (Printf.sprintf "malformed[%d]" i) source)
    malformed_catalog

let test_malformed_have_errors () =
  (* Guard against the catalog silently rotting into all-valid
     sources: most entries must actually error under the legacy
     reader. *)
  let errors =
    List.filter
      (fun s ->
        match outcome_of Blif.read_string s with
        | Net _ -> false
        | Err _ | Fail _ -> true)
      malformed_catalog
  in
  check tbool "catalog mostly errors" true
    (List.length errors >= List.length malformed_catalog - 4)

(* --- quirky-but-valid constructs -------------------------------------- *)

let test_edge_cases () =
  List.iteri
    (fun i source -> both (Printf.sprintf "edge[%d]" i) source)
    [ (* No .model, no .end. *)
      ".inputs a\n.outputs f\n.names a f\n1 1\n";
      (* No trailing newline at all. *)
      ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.end";
      (* CRLF line endings throughout. *)
      ".model m\r\n.inputs a\r\n.outputs f\r\n.names a f\r\n1 1\r\n.end\r\n";
      (* Comments, blank lines, tabs, multi-line continuation. *)
      "# header\n\n.model\tm\n.inputs \\\n  a \\\n  b\n.outputs f\n\
       .names a b f # and\n11 1\n\n.end\n# trailer\n";
      (* Continuation whose continuation line is a comment. *)
      ".model c \\\n# interleaved\n.inputs a\n.outputs f\n.names a f\n0 1\n.end\n";
      (* Text after .end is still parsed (SIS-compatible quirk). *)
      ".model m\n.inputs a\n.outputs f\n.end\n.names a f\n1 1\n";
      (* Dead logic is dropped by demand-driven elaboration. *)
      ".model m\n.inputs a b\n.outputs f\n.names a f\n1 1\n.names b dead\n1 1\n.end\n";
      (* Constants, off-set covers, don't-cares, duplicate fanin. *)
      ".model m\n.inputs a\n.outputs one zero f g h\n.names one\n1\n\
       .names zero\n.names a a f\n11 1\n.names a g\n0 1\n.names a h\n- 1\n.end\n";
      (* Latches: init variants, latch feeding logic, logic after use. *)
      ".model seq\n.inputs a\n.outputs o\n.latch d q 1\n.latch q2in q2\n\
       .latch a q3 0\n.names a q d\n11 1\n.names q q2 q2in\n10 1\n\
       .names q2 o\n1 1\n.end\n";
      (* Unknown dot-commands ignored. *)
      ".model m\n.clock c\n.inputs a\n.default_input_arrival 0 0\n\
       .outputs f\n.names a f\n1 1\n.end\n";
      (* .inputs and .outputs split across several directives. *)
      ".model m\n.inputs a\n.inputs b\n.outputs f\n.outputs g\n\
       .names a b f\n11 1\n.names b g\n1 1\n.end\n";
      (* Output directly naming a PI via an alias buffer. *)
      ".model m\n.inputs a\n.outputs o\n.names a o\n1 1\n.end\n" ]

(* --- file / channel entry points -------------------------------------- *)

let with_temp_file contents f =
  let path = Filename.temp_file "dagmap_stream" ".blif" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_read_file_parity () =
  let sources =
    [ Blif.write_network (Generators.alu 4);
      (* Error case: file and line must match, including the file
         payload in the exception. *)
      ".model m\n.inputs a\n.outputs f\n.names a f\nx 1\n.end\n";
      (* Continuation at end of file, with and without the final
         newline — exercises the split-segmentation parity of the
         chunked channel reader. *)
      ".model m\n.inputs a\n.outputs f\n.names a f\nbogus \\\n";
      ".model m\n.inputs a\n.outputs f\n.names a f\nbogus \\";
      "" ]
  in
  List.iteri
    (fun i contents ->
      with_temp_file contents (fun path ->
          agree
            (Printf.sprintf "file[%d]" i)
            (outcome_of Blif.read_file path)
            (outcome_of Blif_stream.read_file path)))
    sources

let test_read_lines_source () =
  (* read_lines consumes an arbitrary pull source; feed it one
     character-split... rather, one directive per call. *)
  let lines =
    [ ".model src"; ".inputs a b"; ".outputs f"; ".names a b f"; "11 1"; ".end" ]
  in
  let rest = ref lines in
  let next () =
    match !rest with
    | [] -> None
    | l :: tl ->
      rest := tl;
      Some l
  in
  let net = Blif_stream.read_lines next in
  check tstr "model" "src" (Network.name net);
  check tint "pis" 2 (List.length (Network.pis net))

let test_deep_chain_streaming () =
  (* The streaming reader elaborates on an explicit stack; a deep
     chain must parse without Stack_overflow and agree with the
     legacy reader (which is still within native stack limits at this
     depth). *)
  let net = Generators.nand_chain 120_000 in
  let text = Blif.write_network net in
  let a = Blif.read_string text in
  let b = Blif_stream.read_string text in
  same_network "deep chain" a b;
  (* +1: the writer inserts an alias buffer for the PO name. *)
  check tint "all nodes survive" (Network.num_nodes net + 1) (Network.num_nodes b)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "blif_stream"
    [ ( "differential",
        [ Alcotest.test_case "generated circuits" `Quick
            test_generated_circuits;
          qc qc_mutations ] );
      ( "errors",
        [ Alcotest.test_case "malformed parity" `Quick test_malformed_parity;
          Alcotest.test_case "catalog sanity" `Quick
            test_malformed_have_errors ] );
      ( "entry points",
        [ Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "file parity" `Quick test_read_file_parity;
          Alcotest.test_case "line source" `Quick test_read_lines_source;
          Alcotest.test_case "deep chain" `Quick test_deep_chain_streaming ] ) ]
