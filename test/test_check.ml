(* lib/check: the three post-map auditors and the fuzz harness. *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_circuits
open Dagmap_check

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let modes = [ Mapper.Tree; Mapper.Dag; Mapper.Dag_extended ]

let the_db = lazy (Matchdb.prepare (Libraries.lib2_like ()))

let test_audit_clean_benchmarks () =
  let db = Lazy.force the_db in
  List.iter
    (fun (name, net) ->
      let g = Subject.of_network net in
      List.iter
        (fun mode ->
          let r = Mapper.map mode db g in
          match Check.audit_result ~rounds:4 g r with
          | [] -> ()
          | issue :: _ ->
            Alcotest.failf "%s/%s: %s" name (Mapper.mode_name mode)
              (Format.asprintf "%a" Check.pp_issue issue))
        modes)
    [ ("adder8", Generators.ripple_adder 8);
      ("alu4", Generators.alu 4);
      ("cmp6", Generators.comparator 6);
      ("parity12", Generators.parity 12) ]

let test_structural_catches_corruption () =
  (* Clone an instance onto the end of a clean netlist: nothing uses
     the clone (dangling) and its subject root is now implemented
     twice. *)
  let db = Lazy.force the_db in
  let g = Subject.of_network (Generators.parity 4) in
  let nl = (Mapper.map Mapper.Dag db g).Mapper.netlist in
  check (Alcotest.list Alcotest.string) "clean netlist" []
    (List.map (Format.asprintf "%a" Check.pp_issue) (Check.structural nl));
  let n = Array.length nl.Netlist.instances in
  let clone = { nl.Netlist.instances.(0) with Netlist.inst_id = n } in
  let bad =
    { nl with
      Netlist.instances = Array.append nl.Netlist.instances [| clone |] }
  in
  let issues = Check.structural bad in
  let has frag =
    List.exists
      (function Check.Structural m -> contains m frag | _ -> false)
      issues
  in
  check tbool "duplicate subject root reported" true (has "both implement");
  check tbool "dangling instance reported" true (has "dangling")

let test_delay_audit_is_per_output () =
  (* Skew the prediction of one non-critical output: a worst-delay
     comparison would miss it, the per-output audit must not. *)
  let db = Lazy.force the_db in
  let g = Subject.of_network (Generators.ripple_adder 4) in
  let r = Mapper.map Mapper.Dag db g in
  let predicted = Mapper.predicted_arrivals r in
  check (Alcotest.list Alcotest.string) "labels audit clean" []
    (List.map
       (Format.asprintf "%a" Check.pp_issue)
       (Check.delay ~predicted r.Mapper.netlist));
  (* Perturb the fastest (least critical) predicted output. *)
  let victim, _ =
    List.fold_left
      (fun ((_, best) as acc) (name, a) ->
        if a < best then (name, a) else acc)
      ("", infinity) predicted
  in
  let skewed =
    List.map
      (fun (name, a) -> if name = victim then (name, a +. 0.5) else (name, a))
      predicted
  in
  match Check.delay ~predicted:skewed r.Mapper.netlist with
  | [ Check.Delay_mismatch { output; _ } ] ->
    check Alcotest.string "victim output flagged" victim output
  | issues ->
    Alcotest.failf "expected exactly one delay mismatch, got %d"
      (List.length issues)

let test_functional_catches_wrong_circuit () =
  let db = Lazy.force the_db in
  let g_par = Subject.of_network (Generators.parity 4) in
  let nl = (Mapper.map Mapper.Dag db g_par).Mapper.netlist in
  let g_cmp = Subject.of_network (Generators.comparator 2) in
  match Check.functional ~rounds:2 g_cmp nl with
  | [ Check.Not_equivalent _ ] -> ()
  | _ -> Alcotest.fail "expected a functional issue against the wrong subject"

(* QCheck: on random circuits, under every mode, sequential or
   parallel labeling, the full audit is clean — per-output STA arrival
   equals the mapper's label and the cover is simulation-equivalent. *)
let qc_audit_random =
  QCheck.Test.make ~count:15 ~name:"random circuits audit clean (all modes)"
    QCheck.(make Gen.(triple (int_bound 100_000) (int_bound 2) bool))
    (fun (seed, mode_idx, par) ->
      let net = Generators.random_dag ~seed ~inputs:6 ~outputs:3 ~nodes:45 () in
      let g = Subject.of_network net in
      let db = Lazy.force the_db in
      let mode = List.nth modes mode_idx in
      let r =
        if par then fst (Parmap.map ~jobs:4 mode db g) else Mapper.map mode db g
      in
      Check.audit_result ~rounds:4 ~seed:7 g r = [])

let test_fuzz_clean () =
  let cfg =
    { (Fuzz.default_config (Libraries.lib2_like ())) with count = 4 }
  in
  let o = Fuzz.run cfg in
  check tint "circuits" 4 o.Fuzz.circuits;
  (* 3 modes x jobs {1,4} x cache {on,off} per circuit. *)
  check tint "cases" (4 * 12) o.Fuzz.cases;
  check tint "no failures" 0 (List.length o.Fuzz.failures)

let test_fuzz_catches_injected_delay_bug () =
  (* Fault injection: skew every pin delay the labeling pass sees.
     Predictions drift from the STA of the emitted netlist, so the
     delay audit must fail, and the harness must shrink the failure
     and produce a re-parsable BLIF repro. *)
  let cfg =
    { (Fuzz.default_config (Libraries.lib2_like ())) with
      count = 6;
      modes = [ Mapper.Tree ];
      jobs = [ 1 ];
      caches = [ true ];
      max_failures = 1 }
  in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Mapper.test_pin_delay_skew := 0.0)
      (fun () ->
        Mapper.test_pin_delay_skew := 1.0;
        Fuzz.run cfg)
  in
  match outcome.Fuzz.failures with
  | [] -> Alcotest.fail "injected bug was not caught"
  | f :: _ ->
    check tbool "shrunk no larger" true
      (f.Fuzz.shrunk_nodes <= f.Fuzz.original_nodes);
    check tbool "delay mismatch reported" true
      (List.exists
         (function Check.Delay_mismatch _ -> true | _ -> false)
         f.Fuzz.issues);
    let path = Filename.temp_file "fuzz_repro" ".blif" in
    Fuzz.write_repro path f;
    let reparsed = Dagmap_blif.Blif.read_file path in
    Sys.remove path;
    check tbool "repro re-parses with outputs" true
      (Network.pos reparsed <> [])

let test_fuzz_deterministic () =
  let cfg =
    { (Fuzz.default_config (Libraries.lib2_like ())) with
      count = 2;
      modes = [ Mapper.Dag ];
      jobs = [ 1 ] }
  in
  let a = Fuzz.run cfg and b = Fuzz.run cfg in
  check tint "same cases" a.Fuzz.cases b.Fuzz.cases;
  check tint "same failures" (List.length a.Fuzz.failures)
    (List.length b.Fuzz.failures)

let () =
  Alcotest.run "check"
    [ ( "auditors",
        [ Alcotest.test_case "clean benchmarks" `Quick
            test_audit_clean_benchmarks;
          Alcotest.test_case "structural corruption" `Quick
            test_structural_catches_corruption;
          Alcotest.test_case "per-output delay" `Quick
            test_delay_audit_is_per_output;
          Alcotest.test_case "wrong circuit" `Quick
            test_functional_catches_wrong_circuit;
          QCheck_alcotest.to_alcotest qc_audit_random ] );
      ( "fuzz",
        [ Alcotest.test_case "clean sweep" `Quick test_fuzz_clean;
          Alcotest.test_case "injected delay bug" `Quick
            test_fuzz_catches_injected_delay_bug;
          Alcotest.test_case "deterministic" `Quick test_fuzz_deterministic ] ) ]
