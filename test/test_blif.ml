(* BLIF reader/writer: parsing constructs, roundtrips, mapped-netlist
   export. *)

open Dagmap_logic
open Dagmap_subject
open Dagmap_core
open Dagmap_genlib
open Dagmap_sim
open Dagmap_circuits
open Dagmap_blif

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_read_simple () =
  let net =
    Blif.read_string
      ".model test\n.inputs a b c\n.outputs f\n.names a b w\n11 1\n\
       .names w c f\n1- 1\n-1 1\n.end\n"
  in
  check Alcotest.string "model name" "test" (Network.name net);
  check tint "pis" 3 (List.length (Network.pis net));
  check tint "pos" 1 (List.length (Network.pos net));
  (* f = (a&b) | c *)
  let words = [| 0b1010L; 0b1100L; 0b0001L |] in
  let f = List.assoc "f" (Simulate.network net words) in
  check tbool "function" true
    (Int64.equal (Int64.logand f 0b1111L) 0b1001L)

let test_comments_and_continuation () =
  let net =
    Blif.read_string
      "# header comment\n.model c \\\n# interleaved\n.inputs a\n.outputs f\n\
       .names a f\n0 1\n.end\n"
  in
  (* ".model c" continues over the escaped newline; the comment line
     in between is dropped. *)
  check tint "one pi" 1 (List.length (Network.pis net));
  let f = List.assoc "f" (Simulate.network net [| 0b01L |]) in
  check tbool "inverter" true (Int64.logand f 1L = 0L && Int64.logand f 2L = 2L)

let test_offset_cover () =
  (* Output column 0 defines the off-set: f = !(a&b). *)
  let net =
    Blif.read_string
      ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n"
  in
  let f = List.assoc "f" (Simulate.network net [| 0b1010L; 0b1100L |]) in
  check tbool "nand" true (Int64.equal (Int64.logand f 0b1111L) 0b0111L)

let test_constants () =
  let net =
    Blif.read_string
      ".model m\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end\n"
  in
  let r = Simulate.network net [| 0L |] in
  check tbool "const one" true (Int64.equal (List.assoc "one" r) (-1L));
  check tbool "const zero" true (Int64.equal (List.assoc "zero" r) 0L)

let test_dont_care_cube () =
  let net =
    Blif.read_string
      ".model m\n.inputs a b c\n.outputs f\n.names a b c f\n1-0 1\n.end\n"
  in
  (* f = a & !c *)
  let words = [| 0b1010L; 0b1100L; 0b0110L |] in
  let f = List.assoc "f" (Simulate.network net words) in
  check tbool "don't care" true
    (Int64.equal (Int64.logand f 0b1111L) 0b1000L)

let test_latch_roundtrip () =
  let net =
    Blif.read_string
      ".model seq\n.inputs a\n.outputs o\n.latch d q 1\n.names a q d\n11 1\n\
       .names q o\n1 1\n.end\n"
  in
  check tint "one latch" 1 (List.length (Network.latches net));
  let l = List.hd (Network.latches net) in
  check tbool "init value" true l.Network.latch_init;
  (* Logic reads the latch output before the .latch statement binds
     its input. *)
  Network.validate net

let test_out_of_order_definitions () =
  (* .names blocks in reverse dependency order. *)
  let net =
    Blif.read_string
      ".model o\n.inputs a b\n.outputs f\n.names w b f\n11 1\n.names a w\n0 1\n.end\n"
  in
  let f = List.assoc "f" (Simulate.network net [| 0b0101L; 0b0011L |]) in
  (* f = !a & b *)
  check tbool "out of order" true (Int64.equal (Int64.logand f 0b1111L) 0b0010L)

let expect_error source =
  match Blif.read_string source with
  | exception Blif.Parse_error _ -> ()
  | exception Failure _ -> ()
  | _ -> Alcotest.failf "expected a parse failure on %S" source

let test_errors () =
  expect_error ".model m\n.inputs a\n.outputs f\n.names a f\n1 2\n.end\n";
  expect_error ".model m\n.inputs a\n.outputs f\n.names a f\n11 1\n.end\n";
  expect_error ".model m\n.inputs a\n.outputs f\n.end\n";
  expect_error
    ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n.end\n";
  expect_error ".model m\n.inputs a\n.outputs f\n.names f f\n1 1\n.end\n"

let expect_error_at ~line ~fragment source =
  match Blif.read_string source with
  | exception Blif.Parse_error { file; line = l; message } ->
    check tint (Printf.sprintf "error line for %S" fragment) line l;
    check tbool
      (Printf.sprintf "message %S mentions %S" message fragment)
      true (contains message fragment);
    check tbool "no file for read_string" true (file = None)
  | _ -> Alcotest.failf "expected a parse failure on %S" source

let test_error_diagnostics () =
  (* Malformed cube line: reported at the cube's own line. *)
  expect_error_at ~line:5 ~fragment:"cube output"
    ".model m\n.inputs a\n.outputs f\n.names a f\n1 2\n.end\n";
  (* Cube width mismatch: reported at the .names line. *)
  expect_error_at ~line:4 ~fragment:"cube width"
    ".model m\n.inputs a\n.outputs f\n.names a f\n11 1\n.end\n";
  (* Undefined signal: reported where it is referenced. *)
  expect_error_at ~line:4 ~fragment:"undefined signal w"
    ".model m\n.inputs a\n.outputs f\n.names w f\n1 1\n.end\n";
  expect_error_at ~line:3 ~fragment:"undefined signal f"
    ".model m\n.inputs a\n.outputs f\n.end\n";
  expect_error_at ~line:3 ~fragment:"duplicate input a"
    ".model m\n.inputs a\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n"

let test_error_describe_with_file () =
  let path = Filename.temp_file "dagmap_bad" ".blif" in
  let oc = open_out path in
  output_string oc ".model m\n.inputs a\n.outputs f\n.names a f\nx 1\n.end\n";
  close_out oc;
  let result =
    match Blif.read_file path with
    | exception Blif.Parse_error ({ file; line; _ } as e) ->
      check tbool "file recorded" true (file = Some path);
      check tint "line recorded" 4 line;
      Some (Blif.describe (Blif.Parse_error e))
    | _ -> None
  in
  Sys.remove path;
  match result with
  | Some text ->
    (* Genlib-parser style "file:line: message" prefix. *)
    check tbool "describe prefix" true
      (contains text (Printf.sprintf "%s:4: " path))
  | None -> Alcotest.fail "expected a parse failure"

let test_write_read_roundtrip () =
  List.iter
    (fun net ->
      let text = Blif.write_network net in
      let reparsed = Blif.read_string text in
      let n = Simulate.num_inputs_network net in
      let verdict =
        Equiv.compare_sims ~rounds:6 ~n_inputs:n
          (fun words -> Simulate.network net words)
          (fun words -> Simulate.network reparsed words)
      in
      if not (Equiv.is_equivalent verdict) then
        Alcotest.failf "roundtrip failed for %s: %s" (Network.name net)
          (Format.asprintf "%a" Equiv.pp_verdict verdict))
    [ Generators.ripple_adder 6;
      Generators.alu 4;
      Generators.comparator 6;
      Generators.lfsr 5;
      Generators.random_dag ~seed:3 ~inputs:8 ~outputs:4 ~nodes:60 () ]

let test_write_netlist_gates () =
  let net = Generators.parity 8 in
  let g = Subject.of_network net in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let nl = (Mapper.map Mapper.Dag db g).Mapper.netlist in
  let text = Blif.write_netlist nl in
  check tbool ".gate statements" true (contains text ".gate ");
  check tbool "model line" true (contains text ".model mapped");
  check tbool "outputs listed" true (contains text ".outputs");
  (* One .gate line per instance. *)
  let count_gates =
    List.length
      (List.filter
         (fun line -> String.length line >= 5 && String.sub line 0 5 = ".gate")
         (String.split_on_char '\n' text))
  in
  check tint "gate line count" (Netlist.num_gates nl) count_gates

(* --- Verilog export --------------------------------------------------- *)

let count_lines pred text =
  List.length (List.filter pred (String.split_on_char '\n' text))

let test_verilog_netlist () =
  let net = Generators.alu 4 in
  let g = Subject.of_network net in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let nl = (Mapper.map Mapper.Dag db g).Mapper.netlist in
  let text = Verilog.write_netlist nl in
  check tbool "module header" true (contains text "module mapped(");
  check tbool "endmodule" true (contains text "endmodule");
  (* One assignment per instance plus one per output. *)
  let assigns = count_lines (fun l -> contains l "assign") text in
  check tint "assign count"
    (Netlist.num_gates nl + List.length nl.Netlist.outputs)
    assigns;
  (* Cell style instead instantiates gates by name. *)
  let cells = Verilog.write_netlist ~cell_style:true nl in
  check tbool "cell instantiation" true (contains cells "nand2 g");
  let insts = count_lines (fun l -> contains l " g") cells in
  check tbool "instances present" true (insts >= Netlist.num_gates nl)

let test_verilog_network_with_latches () =
  let net = Generators.lfsr 4 in
  let text = Verilog.write_network net in
  check tbool "clk port" true (contains text "input clk;");
  check tbool "registers" true (contains text "always @(posedge clk)");
  check tint "one always per latch" 4
    (count_lines (fun l -> contains l "always @(posedge clk)") text)

let test_verilog_sanitization () =
  let net = Network.create ~name:"weird" () in
  let a = Network.add_pi net "a[0]" in
  let b = Network.add_pi net "module" in
  let f =
    Network.add_logic net ~name:"3bad.name"
      (Bexpr.and2 (Bexpr.var 0) (Bexpr.var 1))
      [| a; b |]
  in
  Network.add_po net "out.x" f;
  let text = Verilog.write_network net in
  check tbool "no brackets" false (contains text "a[0]");
  check tbool "keyword suffixed" true (contains text "module_");
  check tbool "digit prefixed" true (contains text "n3bad_name");
  check tbool "po renamed" true (contains text "po$out_x")

let test_read_file () =
  let path = Filename.temp_file "dagmap" ".blif" in
  let oc = open_out path in
  output_string oc ".model f\n.inputs a\n.outputs o\n.names a o\n1 1\n.end\n";
  close_out oc;
  let net = Blif.read_file path in
  Sys.remove path;
  check tint "one pi" 1 (List.length (Network.pis net))

let () =
  Alcotest.run "blif"
    [ ( "reader",
        [ Alcotest.test_case "simple" `Quick test_read_simple;
          Alcotest.test_case "comments/continuation" `Quick
            test_comments_and_continuation;
          Alcotest.test_case "off-set cover" `Quick test_offset_cover;
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "don't care" `Quick test_dont_care_cube;
          Alcotest.test_case "latches" `Quick test_latch_roundtrip;
          Alcotest.test_case "out of order" `Quick test_out_of_order_definitions;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "error diagnostics" `Quick test_error_diagnostics;
          Alcotest.test_case "describe with file" `Quick
            test_error_describe_with_file;
          Alcotest.test_case "read file" `Quick test_read_file ] );
      ( "writer",
        [ Alcotest.test_case "roundtrip" `Quick test_write_read_roundtrip;
          Alcotest.test_case "netlist gates" `Quick test_write_netlist_gates ] );
      ( "verilog",
        [ Alcotest.test_case "netlist export" `Quick test_verilog_netlist;
          Alcotest.test_case "latches" `Quick test_verilog_network_with_latches;
          Alcotest.test_case "sanitization" `Quick test_verilog_sanitization ] ) ]
