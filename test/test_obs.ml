(* The observability layer: clock sanity, atomic metrics under
   concurrent domains, JSON printer/parser round-trips, span
   recording and the Chrome trace exporter — and the end-to-end
   property that turning observability on never changes a mapping. *)

open Dagmap_obs
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_circuits

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* --- clock ---------------------------------------------------------- *)

let test_clock_monotonic () =
  let prev = ref (Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now () in
    if t < !prev then Alcotest.fail "monotonic clock stepped backwards";
    prev := t
  done;
  check tbool "since non-negative" true (Clock.since (Clock.now ()) >= -1e-9)

let test_clock_measures () =
  let spin () =
    let acc = ref 0 in
    for i = 1 to 3_000_000 do
      acc := !acc + i
    done;
    !acc
  in
  let _, wall = Clock.time spin in
  check tbool "wall positive" true (wall > 0.0);
  let _, wall2, cpu = Clock.time_wall_cpu spin in
  check tbool "cpu positive" true (cpu > 0.0);
  check tbool "wall2 positive" true (wall2 > 0.0);
  (* A single-domain spin cannot use more CPU than ~wall time. *)
  check tbool "cpu bounded by wall (1 domain)" true (cpu <= (2.0 *. wall2) +. 0.1)

let test_clock_stamp_shape () =
  let s = Clock.stamp () in
  check tint "stamp length" 15 (String.length s);
  check tbool "stamp separator" true (s.[8] = '_');
  String.iteri
    (fun i c ->
      if i <> 8 && not (c >= '0' && c <= '9') then
        Alcotest.failf "stamp %S: non-digit at %d" s i)
    s

(* --- resource -------------------------------------------------------- *)

let test_peak_rss () =
  (* A running test binary has certainly touched more than a megabyte,
     and the high-water mark never decreases. *)
  let a = Resource.peak_rss_bytes () in
  check tbool "positive and plausible" true (a > 1_048_576);
  let ballast = Array.make (4 * 1024 * 1024) 0 in
  let b = Resource.peak_rss_bytes () in
  ignore (Sys.opaque_identity ballast);
  check tbool "monotone" true (b >= a)

(* --- metrics under concurrent domains ------------------------------- *)

let hammer n_domains per_domain f =
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              f d i
            done))
  in
  List.iter Domain.join domains

let test_counter_atomic_across_domains () =
  (* The bug this layer fixes: [mutable int] counters lose updates
     under concurrent increments. 4 domains x 200k increments must
     land exactly. *)
  let c = Metrics.Counter.create () in
  hammer 4 200_000 (fun _ _ -> Metrics.Counter.incr c);
  check tint "no lost increments" 800_000 (Metrics.Counter.value c);
  Metrics.Counter.reset c;
  check tint "reset" 0 (Metrics.Counter.value c)

let test_registry_counter_shared_across_domains () =
  Metrics.reset_all ();
  (* All domains resolve the same name concurrently and bump it; the
     find-or-create path and the increments must both be safe. *)
  hammer 4 50_000 (fun _ _ ->
      Metrics.Counter.incr (Metrics.counter "test.obs.shared"));
  check (Alcotest.option tint) "shared total" (Some 200_000)
    (Metrics.counter_value "test.obs.shared")

let test_gauge_atomic_add () =
  let g = Metrics.Gauge.create () in
  (* Sums of small integers are exact in binary floating point. *)
  hammer 4 50_000 (fun _ _ -> Metrics.Gauge.add g 1.0);
  check (Alcotest.float 0.0) "gauge add exact" 200_000.0 (Metrics.Gauge.value g);
  let m = Metrics.Gauge.create () in
  hammer 4 1_000 (fun d i -> Metrics.Gauge.max_update m (float_of_int (d * i)));
  check (Alcotest.float 0.0) "gauge max" 3_000.0 (Metrics.Gauge.value m)

let test_histogram () =
  let h = Metrics.Histogram.create () in
  hammer 2 10_000 (fun _ _ -> Metrics.Histogram.observe h 0.5);
  check tint "count" 20_000 (Metrics.Histogram.count h);
  check (Alcotest.float 1e-6) "mean" 0.5 (Metrics.Histogram.mean h);
  check (Alcotest.float 0.0) "max" 0.5 (Metrics.Histogram.max_value h)

let test_registry_semantics () =
  Metrics.reset_all ();
  let c1 = Metrics.counter "test.obs.same" in
  let c2 = Metrics.counter "test.obs.same" in
  Metrics.Counter.incr c1;
  check tint "find-or-create returns one instance" 1
    (Metrics.Counter.value c2);
  (match Metrics.gauge "test.obs.same" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "type mismatch accepted");
  check tbool "names sorted and present" true
    (let ns = Metrics.names () in
     List.mem "test.obs.same" ns && List.sort compare ns = ns);
  Metrics.reset_all ();
  check (Alcotest.option tint) "reset_all zeroes" (Some 0)
    (Metrics.counter_value "test.obs.same");
  (* The registry snapshot itself must be well-formed JSON. *)
  match Json.parse (Json.to_string (Metrics.to_json ())) with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "metrics snapshot is not an object"

(* --- JSON ------------------------------------------------------------ *)

(* Structural equality up to Int/Float coercion: the printer renders
   integral floats without a fraction, so they re-parse as Int. *)
let rec json_same a b =
  match a, b with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.String x, Json.String y -> x = y
  | (Json.Int _ | Json.Float _), (Json.Int _ | Json.Float _) ->
    let n v = Option.get (Json.to_number v) in
    let x = n a and y = n b in
    x = y || Float.abs (x -. y) <= 1e-9 *. Float.max (Float.abs x) (Float.abs y)
  | Json.List xs, Json.List ys ->
    List.length xs = List.length ys && List.for_all2 json_same xs ys
  | Json.Obj xs, Json.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> k1 = k2 && json_same v1 v2)
         xs ys
  | _ -> false

let test_json_round_trips () =
  let doc =
    Json.Obj
      [ ("s", Json.String "a \"quoted\"\n\ttab \\ slash \x01");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("fi", Json.Float 3.0);
        ("big", Json.Float 6.02214076e23);
        ("t", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]) ]
  in
  check tbool "compact round-trip" true
    (json_same doc (Json.parse (Json.to_string doc)));
  check tbool "pretty round-trip" true
    (json_same doc (Json.parse (Json.to_string ~pretty:true doc)))

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "parsed garbage %S" s)
    [ ""; "{"; "[1,"; "{\"a\":}"; "1 2"; "nul"; "\"unterminated"; "{\"a\" 1}" ]

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1_000_000) 1_000_000);
        map (fun x -> Json.Float x) (float_bound_inclusive 1e6);
        map
          (fun s -> Json.String s)
          (string_size ~gen:(char_range ' ' '~') (int_bound 12)) ]
  in
  let rec doc depth =
    if depth = 0 then scalar
    else
      frequency
        [ (2, scalar);
          (1, map (fun l -> Json.List l) (list_size (int_bound 4) (doc (depth - 1))));
          ( 1,
            map
              (fun l ->
                (* Object keys must be distinct for round-trip
                   comparison (assoc order is preserved). *)
                Json.Obj (List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) l))
              (list_size (int_bound 4) (doc (depth - 1))) ) ]
  in
  doc 3

let qc_json_round_trip =
  QCheck.Test.make ~count:300 ~name:"json: parse (to_string doc) = doc"
    (QCheck.make ~print:(fun d -> Json.to_string ~pretty:true d) json_gen)
    (fun doc ->
      json_same doc (Json.parse (Json.to_string doc))
      && json_same doc (Json.parse (Json.to_string ~pretty:true doc)))

(* --- spans ----------------------------------------------------------- *)

let with_tracing f =
  Span.reset ();
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ())
    f

let test_span_disabled_records_nothing () =
  Span.reset ();
  check tbool "disabled by default" false (Span.is_enabled ());
  let r = Span.with_span "quiet" (fun () -> 7) in
  check tint "thunk runs" 7 r;
  check tint "nothing recorded" 0 (List.length (Span.events ()))

let test_span_nesting_and_export () =
  with_tracing (fun () ->
      let r =
        Span.with_span "outer" (fun () ->
            let a = Span.with_span "inner1" (fun () -> 1) in
            let b = Span.with_span ~cat:"c2" "inner2" (fun () -> 2) in
            a + b)
      in
      check tint "nested result" 3 r;
      (match Span.events () with
       | [ outer; i1; i2 ] ->
         check Alcotest.string "parent first" "outer" outer.Span.ev_name;
         check Alcotest.string "inner order" "inner1" i1.Span.ev_name;
         check Alcotest.string "inner order" "inner2" i2.Span.ev_name;
         let fin e = Int64.add e.Span.ev_ts_ns e.Span.ev_dur_ns in
         check tbool "children within parent" true
           (i1.Span.ev_ts_ns >= outer.Span.ev_ts_ns
           && fin i2 <= fin outer
           && fin i1 <= i2.Span.ev_ts_ns)
       | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs));
      (* Export parses and carries complete events in microseconds. *)
      let doc = Json.parse (Json.to_string (Span.export_chrome ())) in
      let evs =
        Option.get (Json.to_list (Option.get (Json.member "traceEvents" doc)))
      in
      check tint "3 exported" 3 (List.length evs);
      List.iter
        (fun e ->
          check (Alcotest.option Alcotest.string) "complete event" (Some "X")
            (Option.bind (Json.member "ph" e) Json.to_string_value);
          List.iter
            (fun f ->
              if Option.bind (Json.member f e) Json.to_number = None then
                Alcotest.failf "event missing %s" f)
            [ "ts"; "dur"; "pid"; "tid" ])
        evs)

let test_span_records_on_raise () =
  with_tracing (fun () ->
      (match Span.with_span "boom" (fun () -> failwith "x") with
       | exception Failure _ -> ()
       | _ -> Alcotest.fail "exception swallowed");
      check tint "span recorded despite raise" 1 (List.length (Span.events ())))

(* --- observability is transparent to the mapper ---------------------- *)

(* Same-tid spans must properly nest: walk the sorted events with a
   stack of open intervals; partial overlap is a failure. *)
let properly_nested evs =
  let by_tid = Hashtbl.create 4 in
  List.iter
    (fun (tid, ts, dur) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_tid tid) in
      Hashtbl.replace by_tid tid ((ts, Int64.add ts dur) :: prev))
    evs;
  Hashtbl.fold
    (fun _ intervals acc ->
      let intervals = List.rev intervals in
      let stack = ref [] in
      acc
      && List.for_all
           (fun (ts, fin) ->
             let rec pop () =
               match !stack with
               | top_fin :: rest when top_fin <= ts ->
                 stack := rest;
                 pop ()
               | _ -> ()
             in
             pop ();
             match !stack with
             | [] ->
               stack := [ fin ];
               true
             | top_fin :: _ ->
               if fin <= top_fin then begin
                 stack := fin :: !stack;
                 true
               end
               else false)
           intervals)
    by_tid true

let qc_obs_transparent =
  QCheck.Test.make ~count:8
    ~name:"obs on/off: identical covers, well-formed exports (mode x jobs)"
    QCheck.(make ~print:string_of_int Gen.(int_bound 10_000))
    (fun seed ->
      let net = Generators.random_dag ~seed ~inputs:8 ~outputs:4 ~nodes:60 () in
      let g = Subject.of_network net in
      let db = Matchdb.prepare (Libraries.lib2_like ()) in
      List.for_all
        (fun mode ->
          List.for_all
            (fun jobs ->
              let run () =
                if jobs > 1 then fst (Parmap.map ~jobs mode db g)
                else Mapper.map mode db g
              in
              Span.set_enabled false;
              let r_off = run () in
              Span.reset ();
              Span.set_enabled true;
              Metrics.reset_all ();
              let r_on =
                Fun.protect
                  ~finally:(fun () -> Span.set_enabled false)
                  run
              in
              (* Exports: the trace re-parses, timestamps are sorted,
                 spans nest per domain; the metrics snapshot re-parses
                 and conserves cache lookups. *)
              let doc = Json.parse (Json.to_string (Span.export_chrome ())) in
              let evs =
                Option.get
                  (Json.to_list (Option.get (Json.member "traceEvents" doc)))
              in
              let num f e =
                Option.get (Option.bind (Json.member f e) Json.to_number)
              in
              let ts_list = List.map (num "ts") evs in
              let sorted = List.sort compare ts_list = ts_list in
              let raw =
                List.map
                  (fun e ->
                    ( int_of_float (num "tid" e),
                      Int64.of_float (num "ts" e *. 1_000.0),
                      Int64.of_float (num "dur" e *. 1_000.0) ))
                  evs
              in
              let m =
                Json.parse (Json.to_string (Metrics.to_json ()))
              in
              let cnt name =
                match Option.bind (Json.member name m) Json.to_number with
                | Some x -> int_of_float x
                | None -> 0
              in
              Span.reset ();
              evs <> [] && sorted
              && properly_nested raw
              && cnt "matchdb.cache.lookups"
                 = cnt "matchdb.cache.hits" + cnt "matchdb.cache.misses"
              (* The run itself is bit-identical. *)
              && r_off.Mapper.labels = r_on.Mapper.labels
              && Netlist.delay r_off.Mapper.netlist
                 = Netlist.delay r_on.Mapper.netlist
              && Netlist.num_gates r_off.Mapper.netlist
                 = Netlist.num_gates r_on.Mapper.netlist)
            [ 1; 4 ])
        [ Mapper.Tree; Mapper.Dag; Mapper.Dag_extended ])

let () =
  Alcotest.run "obs"
    [ ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "measures" `Quick test_clock_measures;
          Alcotest.test_case "stamp shape" `Quick test_clock_stamp_shape;
          Alcotest.test_case "peak rss" `Quick test_peak_rss ] );
      ( "metrics",
        [ Alcotest.test_case "counter across domains" `Quick
            test_counter_atomic_across_domains;
          Alcotest.test_case "registry counter across domains" `Quick
            test_registry_counter_shared_across_domains;
          Alcotest.test_case "gauge add/max" `Quick test_gauge_atomic_add;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "registry semantics" `Quick
            test_registry_semantics ] );
      ( "json",
        [ Alcotest.test_case "round trips" `Quick test_json_round_trips;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          QCheck_alcotest.to_alcotest qc_json_round_trip ] );
      ( "spans",
        [ Alcotest.test_case "disabled records nothing" `Quick
            test_span_disabled_records_nothing;
          Alcotest.test_case "nesting and export" `Quick
            test_span_nesting_and_export;
          Alcotest.test_case "records on raise" `Quick
            test_span_records_on_raise ] );
      ( "transparency", [ QCheck_alcotest.to_alcotest qc_obs_transparent ] ) ]
