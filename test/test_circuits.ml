(* Circuit generators: functional correctness against machine
   arithmetic, structural sanity of the ISCAS-like stand-ins. *)

open Dagmap_logic
open Dagmap_sim
open Dagmap_circuits

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* Evaluate an adder-style network on integer operands. *)
let eval_net net inputs_by_name =
  let n = Simulate.num_inputs_network net in
  let words = Array.make n 0L in
  List.iteri
    (fun i id ->
      let name = (Network.node net id).Network.name in
      match List.assoc_opt name inputs_by_name with
      | Some b -> words.(i) <- (if b then -1L else 0L)
      | None -> ())
    (Network.pis net);
  List.map
    (fun (name, w) -> (name, Int64.logand w 1L = 1L))
    (Simulate.network net words)

let bits_of_int width x =
  List.init width (fun i -> x land (1 lsl i) <> 0)

let int_of_outputs outputs prefix width =
  let rec go i acc =
    if i = width then acc
    else
      let b = List.assoc (Printf.sprintf "%s%d" prefix i) outputs in
      go (i + 1) (acc lor (if b then 1 lsl i else 0))
  in
  go 0 0

let adder_inputs n a b cin =
  List.concat
    [ List.mapi (fun i bit -> (Printf.sprintf "a%d" i, bit)) (bits_of_int n a);
      List.mapi (fun i bit -> (Printf.sprintf "b%d" i, bit)) (bits_of_int n b);
      [ ("cin", cin) ] ]

let check_adder name make n trials =
  let net = make n in
  let st = Random.State.make [| 13; n |] in
  for _ = 1 to trials do
    let a = Random.State.int st (1 lsl n) in
    let b = Random.State.int st (1 lsl n) in
    let cin = Random.State.bool st in
    let outs = eval_net net (adder_inputs n a b cin) in
    let sum = int_of_outputs outs "s" n in
    let cout = List.assoc "cout" outs in
    let expected = a + b + if cin then 1 else 0 in
    if sum <> expected land ((1 lsl n) - 1) then
      Alcotest.failf "%s: %d+%d+%b gave %d" name a b cin sum;
    if cout <> (expected lsr n = 1) then
      Alcotest.failf "%s: %d+%d+%b carry wrong" name a b cin
  done

let test_ripple_adder () = check_adder "ripple" Generators.ripple_adder 8 50

let test_kogge_stone () =
  check_adder "kogge-stone" Generators.kogge_stone_adder 8 50;
  check_adder "kogge-stone-nonpow2" Generators.kogge_stone_adder 11 30;
  (* Logarithmic depth is the point of the prefix structure. *)
  let net = Generators.kogge_stone_adder 16 in
  check tbool "log depth" true (Network.depth net <= 8)

let test_wallace_multiplier () =
  List.iter
    (fun n ->
      let net = Generators.wallace_multiplier n in
      Network.validate net;
      let st = Random.State.make [| 71; n |] in
      for _ = 1 to 30 do
        let a = Random.State.int st (1 lsl n) in
        let b = Random.State.int st (1 lsl n) in
        let inputs =
          List.mapi (fun i bit -> (Printf.sprintf "a%d" i, bit)) (bits_of_int n a)
          @ List.mapi
              (fun i bit -> (Printf.sprintf "b%d" i, bit))
              (bits_of_int n b)
        in
        let outs = eval_net net inputs in
        let p = int_of_outputs outs "p" (2 * n) in
        if p <> a * b then
          Alcotest.failf "wallace%d: %d*%d = %d (got %d)" n a b (a * b) p
      done)
    [ 2; 3; 4; 6; 8 ];
  (* Shallower than the array multiplier. *)
  let array16 = Network.depth (Generators.array_multiplier 16) in
  let wallace16 = Network.depth (Generators.wallace_multiplier 16) in
  check tbool
    (Printf.sprintf "wallace (%d) shallower than array (%d)" wallace16 array16)
    true (wallace16 < array16)

let test_barrel_shifter () =
  let n = 8 in
  let net = Generators.barrel_shifter n in
  Network.validate net;
  for x_in = 0 to 255 do
    if x_in mod 37 = 0 then
      for s = 0 to n - 1 do
        let inputs =
          List.mapi (fun i bit -> (Printf.sprintf "x%d" i, bit)) (bits_of_int n x_in)
          @ List.init 3 (fun i -> (Printf.sprintf "s%d" i, s land (1 lsl i) <> 0))
        in
        let outs = eval_net net inputs in
        let y = int_of_outputs outs "y" n in
        let expected = x_in lsl s land ((1 lsl n) - 1) in
        if y <> expected then
          Alcotest.failf "barrel: %d << %d = %d (got %d)" x_in s expected y
      done
  done;
  (match Generators.barrel_shifter 6 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "non-power-of-two accepted")

let test_carry_lookahead () =
  check_adder "cla" Generators.carry_lookahead_adder 10 50;
  check_adder "cla-nonmultiple" Generators.carry_lookahead_adder 7 30

let test_carry_select () =
  check_adder "csel" Generators.carry_select_adder 10 50;
  check_adder "csel-nonmultiple" Generators.carry_select_adder 6 30

let test_multiplier () =
  List.iter
    (fun n ->
      let net = Generators.array_multiplier n in
      let st = Random.State.make [| 17; n |] in
      for _ = 1 to 40 do
        let a = Random.State.int st (1 lsl n) in
        let b = Random.State.int st (1 lsl n) in
        let inputs =
          List.mapi (fun i bit -> (Printf.sprintf "a%d" i, bit)) (bits_of_int n a)
          @ List.mapi
              (fun i bit -> (Printf.sprintf "b%d" i, bit))
              (bits_of_int n b)
        in
        let outs = eval_net net inputs in
        let p = int_of_outputs outs "p" (2 * n) in
        if p <> a * b then Alcotest.failf "mult%d: %d*%d = %d (got %d)" n a b (a * b) p
      done)
    [ 1; 2; 3; 4; 6; 8 ]

let test_parity () =
  List.iter
    (fun n ->
      let net = Generators.parity n in
      let st = Random.State.make [| 3; n |] in
      for _ = 1 to 30 do
        let bits = List.init n (fun _ -> Random.State.bool st) in
        let inputs = List.mapi (fun i b -> (Printf.sprintf "x%d" i, b)) bits in
        let outs = eval_net net inputs in
        let expected = List.fold_left (fun acc b -> acc <> b) false bits in
        check tbool (Printf.sprintf "parity%d" n) expected
          (List.assoc "par" outs)
      done)
    [ 2; 3; 7; 16; 33 ]

let test_mux_tree () =
  let k = 3 in
  let net = Generators.mux_tree k in
  for sel = 0 to (1 lsl k) - 1 do
    for chosen = 0 to (1 lsl k) - 1 do
      let inputs =
        List.init (1 lsl k) (fun i -> (Printf.sprintf "d%d" i, i = chosen))
        @ List.init k (fun i -> (Printf.sprintf "s%d" i, sel land (1 lsl i) <> 0))
      in
      let outs = eval_net net inputs in
      check tbool
        (Printf.sprintf "mux sel=%d chosen=%d" sel chosen)
        (sel = chosen) (List.assoc "out" outs)
    done
  done

let test_decoder () =
  let k = 4 in
  let net = Generators.decoder k in
  for x = 0 to (1 lsl k) - 1 do
    let inputs =
      List.init k (fun i -> (Printf.sprintf "x%d" i, x land (1 lsl i) <> 0))
    in
    let outs = eval_net net inputs in
    for y = 0 to (1 lsl k) - 1 do
      check tbool
        (Printf.sprintf "decoder x=%d y=%d" x y)
        (x = y)
        (List.assoc (Printf.sprintf "y%d" y) outs)
    done
  done

let test_comparator () =
  let n = 6 in
  let net = Generators.comparator n in
  let st = Random.State.make [| 29 |] in
  for _ = 1 to 100 do
    let a = Random.State.int st (1 lsl n) in
    let b = Random.State.int st (1 lsl n) in
    let inputs =
      List.mapi (fun i bit -> (Printf.sprintf "a%d" i, bit)) (bits_of_int n a)
      @ List.mapi (fun i bit -> (Printf.sprintf "b%d" i, bit)) (bits_of_int n b)
    in
    let outs = eval_net net inputs in
    check tbool "eq" (a = b) (List.assoc "eq" outs);
    check tbool "lt" (a < b) (List.assoc "lt" outs)
  done

let test_alu () =
  let n = 6 in
  let net = Generators.alu n in
  let st = Random.State.make [| 31 |] in
  for _ = 1 to 100 do
    let a = Random.State.int st (1 lsl n) in
    let b = Random.State.int st (1 lsl n) in
    let op = Random.State.int st 4 in
    let inputs =
      List.mapi (fun i bit -> (Printf.sprintf "a%d" i, bit)) (bits_of_int n a)
      @ List.mapi (fun i bit -> (Printf.sprintf "b%d" i, bit)) (bits_of_int n b)
      @ [ ("op0", op land 1 <> 0); ("op1", op land 2 <> 0) ]
    in
    let outs = eval_net net inputs in
    let r = int_of_outputs outs "r" n in
    let expected =
      match op with
      | 0 -> (a + b) land ((1 lsl n) - 1)
      | 1 -> a land b
      | 2 -> a lor b
      | _ -> a lxor b
    in
    if r <> expected then
      Alcotest.failf "alu op=%d a=%d b=%d: got %d want %d" op a b r expected
  done

let test_random_dag_determinism () =
  let a = Generators.random_dag ~seed:42 ~inputs:8 ~outputs:4 ~nodes:50 () in
  let b = Generators.random_dag ~seed:42 ~inputs:8 ~outputs:4 ~nodes:50 () in
  check tint "same node count" (Network.num_nodes a) (Network.num_nodes b);
  let st = Random.State.make [| 1 |] in
  for _ = 1 to 5 do
    let words = Simulate.random_words st 8 in
    let ra = Simulate.network a words and rb = Simulate.network b words in
    List.iter
      (fun (name, w) ->
        check tbool "same behavior" true (Int64.equal w (List.assoc name rb)))
      ra
  done;
  let c = Generators.random_dag ~seed:43 ~inputs:8 ~outputs:4 ~nodes:50 () in
  Network.validate c

(* --- huge-tier emitters (nand_chain / synthetic_soc) ----------------- *)

let soc_ranks nodes = max 1 (min 24 (nodes / 48))

let qc_soc_invariants =
  QCheck.Test.make ~count:25 ~name:"synthetic_soc invariants"
    QCheck.(pair (int_range 50 4_000) (int_range 0 1_000))
    (fun (nodes, seed) ->
      let net = Generators.synthetic_soc ~seed ~nodes () in
      Network.validate net;
      (* Exact logic node count: glue blocks absorb the remainder. *)
      let logic = ref 0 in
      Network.iter_nodes net (fun n ->
          if n.Network.kind = Network.Logic then incr logic);
      if !logic <> nodes then
        QCheck.Test.fail_reportf "logic count %d <> %d" !logic nodes;
      (* Depth is pinned by the rank structure: the XOR spine forces at
         least one level per rank; rank-local wiring bounds it above
         independently of [nodes] (observed <= ~4x ranks; 8x + 10 is
         the alarm threshold, not the design target). *)
      let ranks = soc_ranks nodes in
      let depth = Network.depth net in
      if depth < ranks || depth > (8 * ranks) + 10 then
        QCheck.Test.fail_reportf "depth %d outside [%d, %d]" depth ranks
          ((8 * ranks) + 10);
      (* Fanout distribution: reconvergent, mostly-connected logic —
         a bounded fraction of dangling nodes (non-output last-rank
         tails), and real fanout sharing once there are ranks to
         share across. *)
      let fo = Network.fanout_counts net in
      let dangling = ref 0 and maxfo = ref 0 in
      Network.iter_nodes net (fun n ->
          if n.Network.kind = Network.Logic then begin
            if fo.(n.Network.id) = 0 then incr dangling;
            if fo.(n.Network.id) > !maxfo then maxfo := fo.(n.Network.id)
          end);
      if !dangling > (nodes / 8) + 8 then
        QCheck.Test.fail_reportf "%d dangling logic nodes of %d" !dangling
          nodes;
      if nodes >= 200 && !maxfo < 3 then
        QCheck.Test.fail_reportf "no fanout sharing (max fanout %d)" !maxfo;
      true)

let qc_soc_determinism =
  QCheck.Test.make ~count:10 ~name:"synthetic_soc seeded determinism"
    QCheck.(pair (int_range 50 2_000) (int_range 0 100))
    (fun (nodes, seed) ->
      let emit () =
        Dagmap_blif.Blif.write_network
          (Generators.synthetic_soc ~seed ~nodes ())
      in
      (* Same seed: byte-identical BLIF, not merely isomorphic. *)
      if emit () <> emit () then
        QCheck.Test.fail_report "same seed produced different BLIF";
      let other =
        Dagmap_blif.Blif.write_network
          (Generators.synthetic_soc ~seed:(seed + 1) ~nodes ())
      in
      if emit () = other then
        QCheck.Test.fail_report "seed change left BLIF identical";
      true)

let test_nand_chain_structure () =
  let n = 500 in
  let net = Generators.nand_chain n in
  Network.validate net;
  let logic = ref 0 in
  Network.iter_nodes net (fun node ->
      if node.Network.kind = Network.Logic then incr logic);
  check tint "logic nodes" n !logic;
  check tint "depth = length" n (Network.depth net);
  check tint "one pi" 1 (List.length (Network.pis net));
  check tint "one po" 1 (List.length (Network.pos net));
  (* Every link survives subject construction (no inverter-pair
     cancellation): the subject has at least one node per link. *)
  let g = Dagmap_subject.Subject.of_network net in
  check tbool "chain survives subject" true
    (Dagmap_subject.Subject.num_nodes g >= n);
  (* Functional spot-check: x=0 makes every link output 1; x=1 makes
     the chain alternate, so the last output is n mod 2 = 0 -> 1. *)
  let out words = List.assoc "o" (Simulate.network net words) in
  let v = out [| 0b10L |] in
  check tbool "x=0 column" true (Int64.logand v 1L = 1L);
  check tbool "x=1 column" true
    (Int64.logand (Int64.shift_right_logical v 1) 1L
    = if n mod 2 = 0 then 1L else 0L)

let test_combine () =
  let net =
    Generators.combine ~name:"both"
      [ Generators.parity 4; Generators.parity 4 ]
  in
  check tint "pis doubled" 8 (List.length (Network.pis net));
  check tint "pos doubled" 2 (List.length (Network.pos net));
  Network.validate net;
  (* Parts stay independent. *)
  let words = [| -1L; 0L; 0L; 0L; 0L; 0L; 0L; 0L |] in
  let outs = Simulate.network net words in
  check tbool "u0 sees the one" true
    (Int64.equal (List.assoc "u0_par" outs) (-1L));
  check tbool "u1 unaffected" true (Int64.equal (List.assoc "u1_par" outs) 0L)

let test_lfsr_structure () =
  let net = Generators.lfsr 8 in
  check tint "eight latches" 8 (List.length (Network.latches net));
  Network.validate net;
  (* With enable=0 each latch holds: next state = current state. *)
  let n = Simulate.num_inputs_network net in
  let words = Array.make n 0L in
  (* inputs: enable then latch outs q0..q7. *)
  words.(1) <- 0xDEADL;
  words.(3) <- 0xBEEFL;
  let outs = Simulate.network net words in
  check tbool "hold q0" true
    (Int64.equal (List.assoc "$latch_in0" outs) 0xDEADL);
  check tbool "hold q2" true
    (Int64.equal (List.assoc "$latch_in2" outs) 0xBEEFL)

let test_pipelined_parity_structure () =
  let net = Generators.pipelined_parity 16 3 in
  check tint "three latches" 3 (List.length (Network.latches net));
  Network.validate net

let test_iscas_like_sizes () =
  List.iter
    (fun (name, net) ->
      Network.validate net;
      let sg = Dagmap_subject.Subject.of_network net in
      let nodes = Dagmap_subject.Subject.num_nodes sg in
      check tbool
        (Printf.sprintf "%s has a substantial subject graph (%d)" name nodes)
        true (nodes > 300);
      check tbool (name ^ " has outputs") true (Network.pos net <> []))
    (Iscas_like.all ());
  (* Relative sizes roughly follow the benchmark numbering. *)
  let size name =
    let net = List.assoc name (Iscas_like.all ()) in
    Dagmap_subject.Subject.num_nodes (Dagmap_subject.Subject.of_network net)
  in
  check tbool "c7552 largest" true
    (size "C7552" > size "C5315" && size "C5315" > size "C3540")

let test_c6288_is_multiplier () =
  (* The c6288 stand-in really multiplies. *)
  let net = Iscas_like.c6288_like () in
  let st = Random.State.make [| 47 |] in
  for _ = 1 to 10 do
    let a = Random.State.int st 65536 in
    let b = Random.State.int st 65536 in
    let inputs =
      List.mapi (fun i bit -> (Printf.sprintf "a%d" i, bit)) (bits_of_int 16 a)
      @ List.mapi (fun i bit -> (Printf.sprintf "b%d" i, bit)) (bits_of_int 16 b)
    in
    let outs = eval_net net inputs in
    let p = int_of_outputs outs "p" 32 in
    if p <> a * b then Alcotest.failf "c6288: %d*%d != %d" a b p
  done

let () =
  Alcotest.run "circuits"
    [ ( "arithmetic",
        [ Alcotest.test_case "ripple adder" `Quick test_ripple_adder;
          Alcotest.test_case "carry lookahead" `Quick test_carry_lookahead;
          Alcotest.test_case "carry select" `Quick test_carry_select;
          Alcotest.test_case "kogge-stone" `Quick test_kogge_stone;
          Alcotest.test_case "multiplier" `Quick test_multiplier;
          Alcotest.test_case "wallace multiplier" `Quick test_wallace_multiplier;
          Alcotest.test_case "barrel shifter" `Quick test_barrel_shifter;
          Alcotest.test_case "alu" `Quick test_alu ] );
      ( "combinational",
        [ Alcotest.test_case "parity" `Quick test_parity;
          Alcotest.test_case "mux tree" `Quick test_mux_tree;
          Alcotest.test_case "decoder" `Quick test_decoder;
          Alcotest.test_case "comparator" `Quick test_comparator ] );
      ( "random/composite",
        [ Alcotest.test_case "random dag determinism" `Quick
            test_random_dag_determinism;
          Alcotest.test_case "combine" `Quick test_combine ] );
      ( "huge-tier",
        [ QCheck_alcotest.to_alcotest qc_soc_invariants;
          QCheck_alcotest.to_alcotest qc_soc_determinism;
          Alcotest.test_case "nand chain" `Quick test_nand_chain_structure ] );
      ( "sequential",
        [ Alcotest.test_case "lfsr" `Quick test_lfsr_structure;
          Alcotest.test_case "pipelined parity" `Quick
            test_pipelined_parity_structure ] );
      ( "iscas-like",
        [ Alcotest.test_case "sizes" `Quick test_iscas_like_sizes;
          Alcotest.test_case "c6288 multiplies" `Quick test_c6288_is_multiplier ] ) ]
