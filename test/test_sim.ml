(* Bit-parallel simulation and random equivalence checking. *)

open Dagmap_logic
open Dagmap_subject
open Dagmap_core
open Dagmap_genlib
open Dagmap_sim
open Dagmap_circuits

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let test_network_vs_subject () =
  (* The two simulators agree word-for-word. *)
  List.iter
    (fun net ->
      let g = Subject.of_network net in
      let n = Simulate.num_inputs_network net in
      let st = Random.State.make [| 11 |] in
      for _ = 1 to 10 do
        let words = Simulate.random_words st n in
        let a = Simulate.network net words in
        let b = Simulate.subject g words in
        List.iter
          (fun (name, w) ->
            check tbool
              (Printf.sprintf "%s agrees" name)
              true
              (Int64.equal w (List.assoc name b)))
          a
      done)
    [ Generators.ripple_adder 6; Generators.alu 4; Generators.parity 9 ]

let test_netlist_word_sim_matches_bool_eval () =
  let net = Generators.comparator 5 in
  let g = Subject.of_network net in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let nl = (Mapper.map Mapper.Dag db g).Mapper.netlist in
  let n = List.length (Subject.pi_ids g) in
  let st = Random.State.make [| 23 |] in
  let words = Simulate.random_words st n in
  let word_results = Simulate.netlist nl words in
  for lane = 0 to 63 do
    let asg =
      Array.map
        (fun w -> Int64.logand (Int64.shift_right_logical w lane) 1L <> 0L)
        words
    in
    let bool_results = Netlist.eval nl asg in
    List.iter
      (fun (name, w) ->
        let bit = Int64.logand (Int64.shift_right_logical w lane) 1L <> 0L in
        check tbool
          (Printf.sprintf "%s lane %d" name lane)
          (List.assoc name bool_results)
          bit)
      word_results
  done

let test_latch_pseudo_outputs () =
  let net = Generators.lfsr 4 in
  let n = Simulate.num_inputs_network net in
  check tint "inputs = enable + 4 latch outs" 5 n;
  let words = Array.make n 0L in
  let results = Simulate.network net words in
  check tbool "latch inputs reported" true
    (List.mem_assoc "$latch_in0" results);
  (* Agreement with the subject simulator on latch inputs too. *)
  let g = Subject.of_network net in
  let st = Random.State.make [| 5 |] in
  for _ = 1 to 5 do
    let words = Simulate.random_words st n in
    let a = Simulate.network net words in
    let b = Simulate.subject g words in
    List.iter
      (fun (name, w) ->
        check tbool (name ^ " agrees") true (Int64.equal w (List.assoc name b)))
      a
  done

let test_equiv_detects_equivalence () =
  let net = Generators.ripple_adder 5 in
  let g = Subject.of_network net in
  let verdict =
    Equiv.compare_sims ~n_inputs:(Simulate.num_inputs_network net)
      (fun words -> Simulate.network net words)
      (fun words -> Simulate.subject g words)
  in
  check tbool "equivalent" true (Equiv.is_equivalent verdict)

let test_equiv_detects_difference () =
  let net = Generators.ripple_adder 3 in
  let broken = Generators.ripple_adder 3 in
  (* Mutate one node's function: flip the final carry. *)
  let n_inputs = Simulate.num_inputs_network net in
  let verdict =
    Equiv.compare_sims ~n_inputs
      (fun words -> Simulate.network net words)
      (fun words ->
        List.map
          (fun (name, w) ->
            if String.equal name "cout" then (name, Int64.lognot w) else (name, w))
          (Simulate.network broken words))
  in
  (match verdict with
   | Equiv.Counterexample { output; inputs } ->
     check Alcotest.string "culprit output" "cout" output;
     check tint "counterexample width" n_inputs (Array.length inputs)
   | Equiv.Equivalent | Equiv.Output_mismatch _ ->
     Alcotest.fail "expected a counterexample")

let test_equiv_detects_missing_output () =
  let net = Generators.parity 4 in
  let verdict =
    Equiv.compare_sims ~n_inputs:4
      (fun words -> Simulate.network net words)
      (fun _ -> [])
  in
  match verdict with
  | Equiv.Output_mismatch { missing; _ } ->
    check (Alcotest.list Alcotest.string) "missing par" [ "par" ] missing
  | Equiv.Equivalent | Equiv.Counterexample _ ->
    Alcotest.fail "expected output mismatch"

let test_equiv_detects_extra_output () =
  (* Regression: extra outputs on the second simulator used to be
     silently ignored whenever nothing was missing. *)
  let net = Generators.parity 4 in
  let verdict =
    Equiv.compare_sims ~n_inputs:4
      (fun words -> Simulate.network net words)
      (fun words -> ("extra", 0L) :: Simulate.network net words)
  in
  match verdict with
  | Equiv.Output_mismatch { missing; extra } ->
    check (Alcotest.list Alcotest.string) "nothing missing" [] missing;
    check (Alcotest.list Alcotest.string) "extra detected" [ "extra" ] extra
  | Equiv.Equivalent | Equiv.Counterexample _ ->
    Alcotest.fail "expected output mismatch on extra output"

let test_counterexample_is_real () =
  (* The returned assignment really distinguishes the circuits. *)
  let net = Generators.comparator 3 in
  let sim1 words = Simulate.network net words in
  let sim2 words =
    List.map
      (fun (name, w) ->
        if String.equal name "lt" then (name, Int64.logxor w 1L) else (name, w))
      (Simulate.network net words)
  in
  match Equiv.compare_sims ~n_inputs:6 sim1 sim2 with
  | Equiv.Counterexample { output; inputs } ->
    let words =
      Array.map (fun b -> if b then 1L else 0L) inputs
    in
    let v1 = List.assoc output (sim1 words) in
    let v2 = List.assoc output (sim2 words) in
    check tbool "differs on lane 0" true
      (Int64.logand (Int64.logxor v1 v2) 1L = 1L)
  | Equiv.Equivalent ->
    (* The mutation only affects lane 0; the extreme all-zero round
       may not expose it — but lane 0 of round 1+ will. *)
    Alcotest.fail "expected counterexample"
  | Equiv.Output_mismatch _ -> Alcotest.fail "unexpected mismatch"

let test_random_words_deterministic () =
  let a = Simulate.random_words (Random.State.make [| 3 |]) 5 in
  let b = Simulate.random_words (Random.State.make [| 3 |]) 5 in
  check tbool "deterministic" true (a = b)

let test_gate_word_eval_vs_truth () =
  (* Simulate.netlist's word-level gate evaluation agrees with the
     scalar truth-table evaluation (indirectly, via a 1-gate netlist). *)
  let bld = Subject.Builder.create () in
  let x = Subject.Builder.pi bld "x" in
  let y = Subject.Builder.pi bld "y" in
  let z = Subject.Builder.pi bld "z" in
  let n1 = Subject.Builder.nand bld x y in
  let n2 = Subject.Builder.nand bld n1 z in
  Subject.Builder.output bld "o" n2;
  let g = Subject.Builder.finish bld in
  let maj =
    Gate.make ~name:"anything" ~area:1.0
      ~pins:(Array.init 3 (fun i -> Gate.simple_pin (Printf.sprintf "p%d" i)))
      Bexpr.(not_ (and2 (not_ (and2 (var 0) (var 1))) (var 2)))
  in
  let nl =
    { Netlist.source = g;
      instances =
        [| { Netlist.inst_id = 0; gate = maj;
             inputs = [| Netlist.D_pi x; Netlist.D_pi y; Netlist.D_pi z |];
             subject_root = n2; covers = [| n1; n2 |] } |];
      outputs = [ ("o", Netlist.D_gate 0) ] }
  in
  Netlist.validate nl;
  let st = Random.State.make [| 77 |] in
  let words = Simulate.random_words st 3 in
  let w = List.assoc "o" (Simulate.netlist nl words) in
  let expected = List.assoc "o" (Simulate.subject g words) in
  check tbool "word eval matches" true (Int64.equal w expected)

let () =
  Alcotest.run "sim"
    [ ( "simulators",
        [ Alcotest.test_case "network vs subject" `Quick test_network_vs_subject;
          Alcotest.test_case "netlist word sim" `Quick
            test_netlist_word_sim_matches_bool_eval;
          Alcotest.test_case "latch pseudo outputs" `Quick
            test_latch_pseudo_outputs;
          Alcotest.test_case "gate word eval" `Quick test_gate_word_eval_vs_truth;
          Alcotest.test_case "random words" `Quick test_random_words_deterministic ] );
      ( "equivalence",
        [ Alcotest.test_case "detects equivalence" `Quick
            test_equiv_detects_equivalence;
          Alcotest.test_case "detects difference" `Quick
            test_equiv_detects_difference;
          Alcotest.test_case "detects missing output" `Quick
            test_equiv_detects_missing_output;
          Alcotest.test_case "detects extra output" `Quick
            test_equiv_detects_extra_output;
          Alcotest.test_case "counterexample real" `Quick
            test_counterexample_is_real ] ) ]
