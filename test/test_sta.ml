(* Static timing analysis: arrival/required/slack invariants and
   critical-path extraction. *)

open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_timing
open Dagmap_circuits

let check = Alcotest.check
let tbool = Alcotest.bool
let tfloat = Alcotest.float 1e-6

let mapped_example () =
  let net = Generators.alu 8 in
  let g = Subject.of_network net in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  (Mapper.map Mapper.Dag db g).Mapper.netlist

let test_arrival_agrees_with_netlist () =
  let nl = mapped_example () in
  let report = Sta.analyze nl in
  let reference = Netlist.arrival_times nl in
  Array.iteri
    (fun i a -> check tfloat (Printf.sprintf "arrival %d" i) reference.(i) a)
    report.Sta.arrival;
  check tfloat "worst delay" (Netlist.delay nl) report.Sta.worst_delay

let test_slack_invariants () =
  let nl = mapped_example () in
  let report = Sta.analyze nl in
  Array.iteri
    (fun i s ->
      check tbool (Printf.sprintf "slack %d nonnegative" i) true (s >= -1e-6))
    report.Sta.slack;
  let min_slack = Array.fold_left Float.min infinity report.Sta.slack in
  check tbool "critical slack zero" true (Float.abs min_slack < 1e-6)

let test_critical_path_structure () =
  let nl = mapped_example () in
  let report = Sta.analyze nl in
  check tbool "path nonempty" true (report.Sta.critical_path <> []);
  let rec increasing = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
      a.Sta.pe_arrival <= b.Sta.pe_arrival +. 1e-9 && increasing rest
  in
  check tbool "arrivals increase" true (increasing report.Sta.critical_path);
  let last =
    List.nth report.Sta.critical_path
      (List.length report.Sta.critical_path - 1)
  in
  check tfloat "path ends at worst delay" report.Sta.worst_delay
    last.Sta.pe_arrival;
  List.iter
    (fun pe ->
      check tbool "path element slack" true
        (Float.abs report.Sta.slack.(pe.Sta.pe_instance) < 1e-6))
    report.Sta.critical_path

let test_relaxed_required_time () =
  let nl = mapped_example () in
  let d = Netlist.delay nl in
  let report = Sta.analyze ~required_time:(d +. 5.0) nl in
  let tight = Sta.analyze nl in
  Array.iteri
    (fun i s ->
      check tfloat
        (Printf.sprintf "slack %d shifted" i)
        (tight.Sta.slack.(i) +. 5.0)
        s)
    report.Sta.slack;
  check Alcotest.int "nothing critical under relaxation" 0
    (Sta.num_critical report 1.0)

let test_num_critical_counts () =
  let nl = mapped_example () in
  let report = Sta.analyze nl in
  let n = Sta.num_critical report 1e-6 in
  check tbool "at least the path is critical" true
    (n >= List.length report.Sta.critical_path)

let test_deep_chain () =
  (* Regression: the topological visits in Netlist, Sta and Simulate
     were recursive and blew the call stack on chains far shallower
     than this. 100k inverters must validate, analyze and simulate. *)
  let depth = 100_000 in
  let seed_net = Dagmap_logic.Network.create ~name:"deep" () in
  let x = Dagmap_logic.Network.add_pi seed_net "x" in
  let inv_node =
    Dagmap_logic.Network.add_logic seed_net
      Dagmap_logic.Bexpr.(not_ (var 0))
      [| x |]
  in
  Dagmap_logic.Network.add_po seed_net "o" inv_node;
  let g = Subject.of_network seed_net in
  let pi = List.hd (Subject.pi_ids g) in
  let inv =
    Gate.make ~name:"inv" ~area:1.0
      ~pins:[| Gate.simple_pin ~delay:1.0 "a" |]
      Dagmap_logic.Bexpr.(not_ (var 0))
  in
  let instances =
    Array.init depth (fun i ->
        { Netlist.inst_id = i;
          gate = inv;
          inputs =
            [| (if i = 0 then Netlist.D_pi pi else Netlist.D_gate (i - 1)) |];
          subject_root = i;
          covers = [| i |] })
  in
  let nl =
    { Netlist.source = g;
      instances;
      outputs = [ ("o", Netlist.D_gate (depth - 1)) ] }
  in
  Netlist.validate nl;
  let report = Sta.analyze nl in
  check tfloat "chain delay" (float_of_int depth) report.Sta.worst_delay;
  check Alcotest.int "critical path spans the chain" depth
    (List.length report.Sta.critical_path);
  let word = 0x5555_5555_5555_5555L in
  let out = Dagmap_sim.Simulate.netlist nl [| word |] in
  (* An even number of inversions is the identity. *)
  check tbool "simulates through" true (Int64.equal (List.assoc "o" out) word)

let test_pp_path_renders () =
  let nl = mapped_example () in
  let report = Sta.analyze nl in
  let text = Format.asprintf "%a" Sta.pp_path report in
  check tbool "render nonempty" true (String.length text > 20)

let () =
  Alcotest.run "sta"
    [ ( "analysis",
        [ Alcotest.test_case "arrival agreement" `Quick
            test_arrival_agrees_with_netlist;
          Alcotest.test_case "slack invariants" `Quick test_slack_invariants;
          Alcotest.test_case "critical path" `Quick test_critical_path_structure;
          Alcotest.test_case "relaxed required" `Quick test_relaxed_required_time;
          Alcotest.test_case "num critical" `Quick test_num_critical_counts;
          Alcotest.test_case "deep chain" `Quick test_deep_chain;
          Alcotest.test_case "pp path" `Quick test_pp_path_renders ] ) ]
