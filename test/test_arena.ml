(* Arena differential suite: the flat struct-of-arrays core must be
   indistinguishable from the legacy record-based path — conversion
   round-trips exactly, derived arrays agree, and arena-backed mapping
   is bit-identical (labels, best matches, cover structure, stats)
   across the full mode x jobs x cache x library matrix. *)

open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_circuits
open Dagmap_super
open Dagmap_check

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let modes = [ Mapper.Tree; Mapper.Dag; Mapper.Dag_extended ]

let libs () =
  [ Libraries.minimal (); Libraries.lib44_1_like (); Libraries.lib2_like () ]

let fixed_circuits () =
  [ ("adder16", Generators.ripple_adder 16);
    ("ks16", Generators.kogge_stone_adder 16);
    ("cla16", Generators.carry_lookahead_adder 16);
    ("mult4", Generators.array_multiplier 4) ]

let huge_enabled () =
  match Sys.getenv_opt "DAGMAP_HUGE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Equality helpers                                                    *)
(* ------------------------------------------------------------------ *)

let same_subject (g1 : Subject.t) (g2 : Subject.t) =
  g1.Subject.kinds = g2.Subject.kinds
  && g1.Subject.names = g2.Subject.names
  && g1.Subject.outputs = g2.Subject.outputs
  && g1.Subject.const_outputs = g2.Subject.const_outputs
  && g1.Subject.num_pis = g2.Subject.num_pis
  && g1.Subject.n_latches = g2.Subject.n_latches

let same_arena (a1 : Arena.t) (a2 : Arena.t) =
  a1.Arena.n = a2.Arena.n
  && (let ok = ref true in
      for i = 0 to a1.Arena.n - 1 do
        if
          Arena.fanin0 a1 i <> Arena.fanin0 a2 i
          || Arena.fanin1 a1 i <> Arena.fanin1 a2 i
        then ok := false
      done;
      !ok)
  && a1.Arena.pi_nodes = a2.Arena.pi_nodes
  && a1.Arena.pi_names = a2.Arena.pi_names
  && a1.Arena.outputs = a2.Arena.outputs
  && a1.Arena.const_outputs = a2.Arena.const_outputs
  && a1.Arena.num_pis = a2.Arena.num_pis
  && a1.Arena.n_latches = a2.Arena.n_latches

let same_best (b1 : Matcher.mtch option array) (b2 : Matcher.mtch option array) =
  Array.length b1 = Array.length b2
  && Array.for_all2
       (fun m1 m2 ->
         match m1, m2 with
         | None, None -> true
         | Some m1, Some m2 ->
           (* Physically the same pattern: both paths enumerate out of
              the same Matchdb buckets. *)
           m1.Matcher.pattern == m2.Matcher.pattern
           && m1.Matcher.pins = m2.Matcher.pins
           && m1.Matcher.covered = m2.Matcher.covered
         | _ -> false)
       b1 b2

let same_netlist (n1 : Netlist.t) (n2 : Netlist.t) =
  Array.length n1.Netlist.instances = Array.length n2.Netlist.instances
  && Array.for_all2
       (fun (i1 : Netlist.instance) (i2 : Netlist.instance) ->
         i1.Netlist.inst_id = i2.Netlist.inst_id
         && i1.Netlist.gate == i2.Netlist.gate
         && i1.Netlist.inputs = i2.Netlist.inputs
         && i1.Netlist.subject_root = i2.Netlist.subject_root
         && i1.Netlist.covers = i2.Netlist.covers)
       n1.Netlist.instances n2.Netlist.instances
  && n1.Netlist.outputs = n2.Netlist.outputs

(* The core bit-identity assertion: legacy result vs arena result. *)
let check_same_result name (seq : Mapper.result) (am : Mapper.result) =
  check tbool (name ^ " labels") true (seq.Mapper.labels = am.Mapper.labels);
  check tbool (name ^ " best") true (same_best seq.Mapper.best am.Mapper.best);
  check tbool (name ^ " netlist") true
    (same_netlist seq.Mapper.netlist am.Mapper.netlist);
  check (Alcotest.float 0.0) (name ^ " delay") (Mapper.optimal_delay seq)
    (Mapper.optimal_delay am);
  check (Alcotest.float 0.0) (name ^ " area")
    (Netlist.area seq.Mapper.netlist)
    (Netlist.area am.Mapper.netlist);
  check tint (name ^ " matches tried") seq.Mapper.run.Mapper.matches_tried
    am.Mapper.run.Mapper.matches_tried;
  check tint (name ^ " super matches tried")
    seq.Mapper.run.Mapper.super_matches_tried
    am.Mapper.run.Mapper.super_matches_tried;
  check tint (name ^ " super gates used")
    seq.Mapper.run.Mapper.super_gates_used
    am.Mapper.run.Mapper.super_gates_used;
  check tint (name ^ " cache lookups") seq.Mapper.run.Mapper.cache_lookups
    am.Mapper.run.Mapper.cache_lookups;
  check tint (name ^ " cache hits") seq.Mapper.run.Mapper.cache_hits
    am.Mapper.run.Mapper.cache_hits;
  check tint (name ^ " cache misses") seq.Mapper.run.Mapper.cache_misses
    am.Mapper.run.Mapper.cache_misses

(* ------------------------------------------------------------------ *)
(* Conversion round-trips                                              *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_fixed () =
  let circuits =
    fixed_circuits ()
    @ [ ("barrel8", Generators.barrel_shifter 8);
        ("lfsr8", Generators.lfsr 8);  (* sequential: latch boundaries *)
        ("rand", Generators.random_dag ~seed:7 ~nodes:120 ()) ]
  in
  List.iter
    (fun (name, net) ->
      List.iter
        (fun (sname, style) ->
          let g = Subject.of_network ~style net in
          let a = Arena.of_subject g in
          check tbool
            (Printf.sprintf "%s/%s to_subject (of_subject g) = g" name sname)
            true
            (same_subject g (Arena.to_subject a));
          check tbool
            (Printf.sprintf "%s/%s of_network = of_subject . of_network" name
               sname)
            true
            (same_arena a (Arena.of_network ~style net)))
        [ ("bal", Subject.Balanced);
          ("left", Subject.Left_skew);
          ("right", Subject.Right_skew) ])
    circuits

let qc_roundtrip =
  QCheck.Test.make ~count:30 ~name:"arena <-> subject round-trip on random DAGs"
    QCheck.(make ~print:string_of_int Gen.(int_bound 10_000))
    (fun seed ->
      let net = Generators.random_dag ~seed ~inputs:8 ~outputs:6 ~nodes:80 () in
      let g = Subject.of_network net in
      let a = Arena.of_network net in
      same_arena a (Arena.of_subject g)
      && same_subject g (Arena.to_subject a))

(* Raw (non-hashed) nodes must survive the round-trip node-for-node:
   of_subject must not re-hash. *)
let test_roundtrip_raw_duplicates () =
  let b = Subject.Builder.create () in
  let x = Subject.Builder.pi b "x" in
  let y = Subject.Builder.pi b "y" in
  let n1 = Subject.Builder.raw_nand b x y in
  let n2 = Subject.Builder.raw_nand b x y in
  let i1 = Subject.Builder.raw_inv b n1 in
  let i2 = Subject.Builder.raw_inv b i1 in
  Subject.Builder.output b "o1" i2;
  Subject.Builder.output b "o2" n2;
  let g = Subject.Builder.finish b in
  let a = Arena.of_subject g in
  check tint "duplicates preserved" (Subject.num_nodes g) (Arena.num_nodes a);
  check tbool "raw round-trip" true (same_subject g (Arena.to_subject a))

(* The arena builder must make the same hashing decisions as
   Subject.Builder (commutative nand, nand x x = inv, inverter-pair
   cancellation). *)
let test_builder_semantics () =
  let sb = Subject.Builder.create () in
  let ab = Arena.Builder.create () in
  let sx = Subject.Builder.pi sb "x" and ax = Arena.Builder.pi ab "x" in
  let sy = Subject.Builder.pi sb "y" and ay = Arena.Builder.pi ab "y" in
  let pairs =
    [ (Subject.Builder.nand sb sx sy, Arena.Builder.nand ab ax ay);
      (Subject.Builder.nand sb sy sx, Arena.Builder.nand ab ay ax);
      (Subject.Builder.nand sb sx sx, Arena.Builder.nand ab ax ax);
      (Subject.Builder.inv sb sx, Arena.Builder.inv ab ax);
      (Subject.Builder.inv sb (Subject.Builder.inv sb sy),
       Arena.Builder.inv ab (Arena.Builder.inv ab ay)) ]
  in
  List.iteri
    (fun i (s, a) -> check tint (Printf.sprintf "builder op %d" i) s a)
    pairs;
  Subject.Builder.output sb "o" (List.hd pairs |> fst);
  Arena.Builder.output ab "o" (List.hd pairs |> snd);
  let g = Subject.Builder.finish sb in
  let a = Arena.Builder.finish ab in
  check tbool "same graph" true (same_arena (Arena.of_subject g) a)

(* ------------------------------------------------------------------ *)
(* Derived arrays                                                      *)
(* ------------------------------------------------------------------ *)

let test_derived_arrays () =
  List.iter
    (fun (name, net) ->
      let g = Subject.of_network net in
      let a = Arena.of_subject g in
      check tbool (name ^ " levels") true (Subject.levels g = Arena.levels a);
      check tbool (name ^ " fanouts") true
        (Subject.fanout_counts g = Arena.fanout_counts a);
      check tint (name ^ " depth") (Subject.depth g) (Arena.depth a);
      check tbool (name ^ " by_level") true
        (Subject.by_level g = Arena.by_level a);
      (* level_ranges is the dense form of by_level. *)
      let order, starts = Arena.level_ranges a in
      let lv = Arena.levels a in
      check tint (name ^ " ranges cover all") (Arena.num_nodes a)
        (Array.length order);
      check tint (name ^ " starts end") (Arena.num_nodes a)
        starts.(Array.length starts - 1);
      Array.iteri
        (fun l group ->
          check tbool
            (Printf.sprintf "%s level %d slice" name l)
            true
            (group = Array.sub order starts.(l) (starts.(l + 1) - starts.(l))))
        (Arena.by_level a);
      Array.iteri
        (fun pos node ->
          let l = lv.(node) in
          check tbool
            (Printf.sprintf "%s order[%d] in its range" name pos)
            true
            (pos >= starts.(l) && pos < starts.(l + 1)))
        order;
      (* The O(n) levels sweep runs once per arena: repeated calls —
         and the level_ranges/by_level/depth derivations on top —
         share one memoized array instead of recomputing it. *)
      check tbool (name ^ " levels memoized") true
        (Arena.levels a == Arena.levels a);
      check tbool (name ^ " memoized levels unchanged") true
        (Subject.levels g = Arena.levels a);
      check tint (name ^ " depth stable") (Subject.depth g) (Arena.depth a);
      check tbool (name ^ " by_level stable") true
        (Subject.by_level g = Arena.by_level a))
    (fixed_circuits ())

(* ------------------------------------------------------------------ *)
(* Differential mapping matrix                                         *)
(* ------------------------------------------------------------------ *)

let test_matrix_sequential () =
  List.iter
    (fun (cname, net) ->
      let g = Subject.of_network net in
      let a = Arena.of_subject g in
      List.iter
        (fun lib ->
          let db = Matchdb.prepare lib in
          List.iter
            (fun mode ->
              List.iter
                (fun cache ->
                  let name =
                    Printf.sprintf "%s/%s/%s cache=%b" cname
                      lib.Libraries.lib_name (Mapper.mode_name mode) cache
                  in
                  let seq = Mapper.map ~cache mode db g in
                  let am = Arena_map.map ~cache ~subject:g mode db a in
                  check_same_result name seq am)
                [ true; false ])
            modes)
        (libs ()))
    (fixed_circuits ())

let test_matrix_parallel () =
  List.iter
    (fun (cname, net) ->
      let g = Subject.of_network net in
      let a = Arena.of_subject g in
      List.iter
        (fun lib ->
          let db = Matchdb.prepare lib in
          List.iter
            (fun mode ->
              List.iter
                (fun cache ->
                  let am = Arena_map.map ~cache ~subject:g mode db a in
                  List.iter
                    (fun jobs ->
                      let par, _ = Parmap.map ~jobs ~cache mode db g in
                      let name =
                        Printf.sprintf "%s/%s/%s jobs=%d cache=%b" cname
                          lib.Libraries.lib_name (Mapper.mode_name mode) jobs
                          cache
                      in
                      check tbool (name ^ " labels") true
                        (par.Mapper.labels = am.Mapper.labels);
                      check tbool (name ^ " best") true
                        (same_best par.Mapper.best am.Mapper.best);
                      check tbool (name ^ " netlist") true
                        (same_netlist par.Mapper.netlist am.Mapper.netlist))
                    [ 1; 2; 4 ])
                [ true; false ])
            modes)
        [ Libraries.minimal (); Libraries.lib2_like () ])
    [ ("ks16", Generators.kogge_stone_adder 16);
      ("mult4", Generators.array_multiplier 4) ]

(* Parallel-arena vs sequential-arena: labels, best matches, netlist
   and the deterministic counters must be bit-identical for any job
   count. Cache hit/miss splits are NOT compared — which worker's
   cache sees a structure first depends on the schedule (and even
   sequentially on visit order); only totals of work done are
   schedule-independent. *)
let check_par_arena name (am : Mapper.result) (par : Mapper.result) =
  check tbool (name ^ " labels") true (par.Mapper.labels = am.Mapper.labels);
  check tbool (name ^ " best") true (same_best par.Mapper.best am.Mapper.best);
  check tbool (name ^ " netlist") true
    (same_netlist par.Mapper.netlist am.Mapper.netlist);
  check (Alcotest.float 0.0) (name ^ " delay") (Mapper.optimal_delay am)
    (Mapper.optimal_delay par);
  check (Alcotest.float 0.0) (name ^ " area")
    (Netlist.area am.Mapper.netlist)
    (Netlist.area par.Mapper.netlist);
  check tint (name ^ " matches tried") am.Mapper.run.Mapper.matches_tried
    par.Mapper.run.Mapper.matches_tried;
  check tint (name ^ " super matches tried")
    am.Mapper.run.Mapper.super_matches_tried
    par.Mapper.run.Mapper.super_matches_tried;
  check tint (name ^ " super gates used")
    am.Mapper.run.Mapper.super_gates_used
    par.Mapper.run.Mapper.super_gates_used

(* The tentpole matrix: Parmap.map_arena (dense level slices across
   domains) = Arena_map.map (sequential) = Mapper.map (boxed), across
   mode x jobs x cache x library. *)
let test_matrix_parallel_arena () =
  List.iter
    (fun (cname, net) ->
      let g = Subject.of_network net in
      let a = Arena.of_subject g in
      List.iter
        (fun lib ->
          let db = Matchdb.prepare lib in
          List.iter
            (fun mode ->
              let boxed = Mapper.map mode db g in
              List.iter
                (fun cache ->
                  let am = Arena_map.map ~cache ~subject:g mode db a in
                  List.iter
                    (fun jobs ->
                      let name =
                        Printf.sprintf "%s/%s/%s jobs=%d cache=%b" cname
                          lib.Libraries.lib_name (Mapper.mode_name mode) jobs
                          cache
                      in
                      let par, _ =
                        Parmap.map_arena ~jobs ~cache ~subject:g mode db a
                      in
                      check_par_arena name am par;
                      check tbool (name ^ " = boxed labels") true
                        (par.Mapper.labels = boxed.Mapper.labels))
                    [ 1; 2; 4 ])
                [ true; false ])
            modes)
        [ Libraries.lib44_1_like (); Libraries.lib2_like () ])
    [ ("ks16", Generators.kogge_stone_adder 16);
      ("mult4", Generators.array_multiplier 4) ]

(* Without ~subject the arena converts back through to_subject; the
   netlist must still be structurally identical. *)
let test_map_without_subject () =
  let net = Generators.kogge_stone_adder 16 in
  let g = Subject.of_network net in
  let a = Arena.of_network net in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let seq = Mapper.map Mapper.Dag db g in
  let am = Arena_map.map Mapper.Dag db a in
  check_same_result "to_subject path" seq am;
  check tbool "source round-trips" true
    (same_subject g am.Mapper.netlist.Netlist.source)

(* Supergate-augmented library: the arena path must agree through the
   bigger pattern space too. *)
let test_matrix_super () =
  let base = Libraries.lib44_1_like () in
  let bounds = { Superenum.default_bounds with max_pins = 4; max_size = 3 } in
  let sgl, _ = Superlib.make ~bounds base in
  let aug = Superlib.augment base sgl in
  let db = Matchdb.prepare aug in
  let net = Generators.kogge_stone_adder 16 in
  let g = Subject.of_network net in
  let a = Arena.of_subject g in
  List.iter
    (fun mode ->
      List.iter
        (fun cache ->
          let name =
            Printf.sprintf "super/%s cache=%b" (Mapper.mode_name mode) cache
          in
          let seq = Mapper.map ~cache mode db g in
          let am = Arena_map.map ~cache ~subject:g mode db a in
          check_same_result name seq am;
          if mode = Mapper.Dag then
            check tbool (name ^ " supergates actually used") true
              (am.Mapper.run.Mapper.super_gates_used > 0);
          (* The parallel arena labeler must agree through the bigger
             supergate pattern space too. *)
          List.iter
            (fun jobs ->
              let par, _ = Parmap.map_arena ~jobs ~cache ~subject:g mode db a in
              check_par_arena (Printf.sprintf "%s jobs=%d" name jobs) am par)
            [ 2; 4 ])
        [ true; false ])
    modes

let qc_differential =
  QCheck.Test.make ~count:12
    ~name:"arena mapping = legacy mapping on random circuits (audited)"
    QCheck.(make ~print:string_of_int Gen.(int_bound 10_000))
    (fun seed ->
      let net = Generators.random_dag ~seed ~inputs:8 ~outputs:4 ~nodes:70 () in
      let g = Subject.of_network net in
      let a = Arena.of_subject g in
      let db = Matchdb.prepare (Libraries.lib2_like ()) in
      List.for_all
        (fun mode ->
          let seq = Mapper.map mode db g in
          let am = Arena_map.map ~subject:g mode db a in
          seq.Mapper.labels = am.Mapper.labels
          && same_best seq.Mapper.best am.Mapper.best
          && same_netlist seq.Mapper.netlist am.Mapper.netlist
          && Check.audit_result ~rounds:4 g am = [])
        modes)

(* Three-way parity on random circuits: parallel-arena =
   sequential-arena = boxed Mapper, across jobs x cache. *)
let qc_parallel_arena =
  QCheck.Test.make ~count:8
    ~name:"parallel arena = sequential arena = boxed on random circuits"
    QCheck.(make ~print:string_of_int Gen.(int_bound 10_000))
    (fun seed ->
      let net = Generators.random_dag ~seed ~inputs:8 ~outputs:4 ~nodes:70 () in
      let g = Subject.of_network net in
      let a = Arena.of_subject g in
      let db = Matchdb.prepare (Libraries.lib2_like ()) in
      List.for_all
        (fun mode ->
          let boxed = Mapper.map mode db g in
          List.for_all
            (fun cache ->
              let am = Arena_map.map ~cache ~subject:g mode db a in
              am.Mapper.labels = boxed.Mapper.labels
              && List.for_all
                   (fun jobs ->
                     let par, _ =
                       Parmap.map_arena ~jobs ~cache ~subject:g mode db a
                     in
                     par.Mapper.labels = am.Mapper.labels
                     && same_best par.Mapper.best am.Mapper.best
                     && same_netlist par.Mapper.netlist am.Mapper.netlist)
                   [ 1; 2; 4 ])
            [ true; false ])
        modes)

(* pi_arrival must flow through the arena labeler unchanged. *)
let test_pi_arrival () =
  let net = Generators.carry_lookahead_adder 8 in
  let g = Subject.of_network net in
  let a = Arena.of_subject g in
  let db = Matchdb.prepare (Libraries.lib44_1_like ()) in
  let arr pi = float_of_int (pi mod 5) *. 0.7 in
  let seq_labels, seq_best, seq_tried =
    Mapper.label ~pi_arrival:arr Mapper.Dag db g
  in
  let labels, best, tried = Arena_map.label ~pi_arrival:arr Mapper.Dag db a in
  let labels_arr =
    Array.init (Bigarray.Array1.dim labels) (Bigarray.Array1.get labels)
  in
  check tbool "pi_arrival labels" true (seq_labels = labels_arr);
  check tbool "pi_arrival best" true (same_best seq_best best);
  check tbool "pi_arrival tried" true (seq_tried = tried)

let test_unmappable () =
  let inv_only =
    Libraries.make "invonly"
      (Genlib_parser.parse_string
         "GATE inv 1 O=!a; PIN a INV 1 999 1.0 0.1 1.0 0.1")
  in
  let b = Arena.Builder.create () in
  let x = Arena.Builder.pi b "x" in
  let y = Arena.Builder.pi b "y" in
  let n = Arena.Builder.raw_nand b x y in
  Arena.Builder.output b "o" n;
  let a = Arena.Builder.finish b in
  let db = Matchdb.prepare inv_only in
  check tbool "Unmappable raises" true
    (match Arena_map.label Mapper.Dag db a with
     | _ -> false
     | exception Mapper.Unmappable _ -> true)

(* ------------------------------------------------------------------ *)
(* Scale and stack safety                                              *)
(* ------------------------------------------------------------------ *)

(* The 100k-deep chain pattern from the earlier traversal-safety PRs,
   now through the arena: build, derive, map, verify — no recursion
   anywhere on the node count. *)
let test_deep_chain_100k () =
  let depth = 100_000 in
  let net = Generators.nand_chain depth in
  let g = Subject.of_network net in
  let a = Arena.of_network net in
  check tbool "arena = subject" true (same_arena a (Arena.of_subject g));
  check tint "chain depth" depth (Arena.depth a);
  let _ = Arena.level_ranges a in
  let db = Matchdb.prepare (Libraries.minimal ()) in
  let seq = Mapper.map Mapper.Dag db g in
  let am = Arena_map.map ~subject:g Mapper.Dag db a in
  check_same_result "chain100k" seq am;
  check tbool "chain100k audit clean" true
    (Check.audit_result ~rounds:2 g am = []);
  (* Chunking stress: 100k levels of width ~1 through the parallel
     labeler — every level is below the fan-out threshold, so the
     whole sweep must run on the calling domain with zero cursor
     traffic, no recursion on the depth, and bit-identical output. *)
  let par, stats = Parmap.map_arena ~jobs:4 ~subject:g Mapper.Dag db a in
  check_par_arena "chain100k jobs=4" am par;
  check tint "chain100k no parallel levels" 0 stats.Parmap.parallel_levels;
  check tint "chain100k no chunks" 0 stats.Parmap.chunks;
  check tbool "chain100k one timing per level" true
    (Array.length stats.Parmap.level_seconds = stats.Parmap.levels)

(* A mid-size SoC runs the whole stack end-to-end on every test run;
   the million-node versions below are gated behind DAGMAP_HUGE=1
   (CI runs a ~100k bench smoke instead, see .github/workflows). *)
let test_soc_end_to_end () =
  let net = Generators.synthetic_soc ~seed:3 ~nodes:60_000 () in
  let g = Subject.of_network net in
  let a = Arena.of_network net in
  check tbool "soc arena = subject" true (same_arena a (Arena.of_subject g));
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let seq = Mapper.map Mapper.Dag db g in
  let am = Arena_map.map ~subject:g Mapper.Dag db a in
  check_same_result "soc60k" seq am;
  check tbool "soc60k audit clean" true
    (Check.audit_result ~rounds:2 g am = [])

let million_case name build =
  if not (huge_enabled ()) then
    Printf.printf "[test_arena] %s skipped (set DAGMAP_HUGE=1 to run)\n%!" name
  else begin
    let net = build () in
    let a = Arena.of_network net in
    check tbool (name ^ " has 1M+ subject nodes") true
      (Arena.num_nodes a >= 1_000_000);
    let g = Arena.to_subject a in
    let db = Matchdb.prepare (Libraries.minimal ()) in
    let am = Arena_map.map ~subject:g Mapper.Dag db a in
    (* Satellite contract: Check.lint + delay audit, no stack
       overflow. (Functional sim is exercised at the 60k tier.) *)
    check tbool (name ^ " structural") true
      (Check.structural am.Mapper.netlist = []);
    check tbool (name ^ " delay audit") true
      (Check.delay ~predicted:(Mapper.predicted_arrivals am) am.Mapper.netlist
       = []);
    (* The 4-domain labeler must survive the same scale and agree
       bit-for-bit, and its cover must pass the same audits. *)
    let par, _ = Parmap.map_arena ~jobs:4 ~subject:g Mapper.Dag db a in
    check_par_arena (name ^ " jobs=4") am par;
    check tbool (name ^ " jobs=4 structural") true
      (Check.structural par.Mapper.netlist = []);
    check tbool (name ^ " jobs=4 delay audit") true
      (Check.delay
         ~predicted:(Mapper.predicted_arrivals par)
         par.Mapper.netlist
       = [])
  end

let test_million_chain () =
  million_case "chain1M" (fun () -> Generators.nand_chain 1_000_000)

let test_million_soc () =
  million_case "soc1M" (fun () ->
      Generators.synthetic_soc ~seed:1 ~nodes:400_000 ())

let () =
  Alcotest.run "arena"
    [ ( "convert",
        [ Alcotest.test_case "fixed round-trips x styles" `Quick
            test_roundtrip_fixed;
          QCheck_alcotest.to_alcotest qc_roundtrip;
          Alcotest.test_case "raw duplicates" `Quick
            test_roundtrip_raw_duplicates;
          Alcotest.test_case "builder semantics" `Quick test_builder_semantics
        ] );
      ( "derived",
        [ Alcotest.test_case "levels/fanouts/by_level/ranges" `Quick
            test_derived_arrays ] );
      ( "differential",
        [ Alcotest.test_case "sequential matrix" `Quick test_matrix_sequential;
          Alcotest.test_case "parallel matrix jobs 1/2/4" `Quick
            test_matrix_parallel;
          Alcotest.test_case "parallel-arena matrix jobs 1/2/4" `Quick
            test_matrix_parallel_arena;
          Alcotest.test_case "to_subject path" `Quick test_map_without_subject;
          Alcotest.test_case "supergate library" `Quick test_matrix_super;
          QCheck_alcotest.to_alcotest qc_differential;
          QCheck_alcotest.to_alcotest qc_parallel_arena;
          Alcotest.test_case "pi_arrival passthrough" `Quick test_pi_arrival;
          Alcotest.test_case "Unmappable propagates" `Quick test_unmappable ] );
      ( "scale",
        [ Alcotest.test_case "100k-deep chain" `Quick test_deep_chain_100k;
          Alcotest.test_case "60k-node SoC end-to-end" `Quick
            test_soc_end_to_end;
          Alcotest.test_case "1M-node chain (DAGMAP_HUGE)" `Slow
            test_million_chain;
          Alcotest.test_case "1M-node SoC (DAGMAP_HUGE)" `Slow
            test_million_soc ] ) ]
