(* The structural match cache: counter consistency, cache-on vs
   cache-off observational equality, and the differential properties
   (tree/dag/dag-extended dominance) under both cache settings. *)

open Dagmap_obs
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_circuits

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let classes = [ Matcher.Exact; Matcher.Standard; Matcher.Extended ]

(* A row of structurally identical (but unshared) full-adder-like
   cells over distinct PIs: the raw builders prevent structural
   hashing from merging them, so every cell is a fresh isomorphic
   cone — the cache's best case. *)
let cell_row n_cells =
  let bld = Subject.Builder.create () in
  List.iteri
    (fun i () ->
      let a = Subject.Builder.pi bld (Printf.sprintf "a%d" i) in
      let b = Subject.Builder.pi bld (Printf.sprintf "b%d" i) in
      let c = Subject.Builder.pi bld (Printf.sprintf "c%d" i) in
      let ab = Subject.Builder.raw_nand bld a b in
      let bc = Subject.Builder.raw_nand bld b c in
      let s = Subject.Builder.raw_nand bld ab bc in
      let t = Subject.Builder.raw_inv bld s in
      let u = Subject.Builder.raw_nand bld s t in
      Subject.Builder.output bld (Printf.sprintf "o%d" i) u)
    (List.init n_cells (fun _ -> ()));
  Subject.Builder.finish bld

let same_match (m1 : Matcher.mtch) (m2 : Matcher.mtch) =
  m1.Matcher.pattern == m2.Matcher.pattern
  && m1.Matcher.pins = m2.Matcher.pins
  && m1.Matcher.covered = m2.Matcher.covered

let same_match_list l1 l2 =
  List.length l1 = List.length l2 && List.for_all2 same_match l1 l2

(* Cache-on and cache-off enumeration must return identical match
   lists, in identical order, at every node, for every class. *)
let test_cache_transparent () =
  let graphs =
    [ ("cells", cell_row 6);
      ("adder8", Subject.of_network (Generators.ripple_adder 8));
      ("ks8", Subject.of_network (Generators.kogge_stone_adder 8)) ]
  in
  List.iter
    (fun lib_name ->
      let db = Matchdb.prepare (Option.get (Libraries.by_name lib_name)) in
      List.iter
        (fun (gname, g) ->
          let fanouts = Subject.fanout_counts g in
          let levels = Subject.levels g in
          List.iter
            (fun cls ->
              let cache = Matchdb.create_cache db in
              for node = 0 to Subject.num_nodes g - 1 do
                let plain =
                  Matchdb.node_matches db cls g ~fanouts ~levels node
                in
                let cached =
                  Matchdb.node_matches ~cache db cls g ~fanouts ~levels node
                in
                check tbool
                  (Printf.sprintf "%s/%s/%s node %d: cached = uncached"
                     lib_name gname (Matcher.class_name cls) node)
                  true
                  (same_match_list plain cached)
              done)
            classes)
        graphs)
    [ "minimal"; "44-1"; "lib2" ]

(* Looking every node up twice through one cache: second pass must be
   all hits, and the counters must stay consistent. *)
let test_counters () =
  let g = cell_row 8 in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let fanouts = Subject.fanout_counts g in
  let levels = Subject.levels g in
  let cache = Matchdb.create_cache db in
  let gate_nodes = ref 0 in
  for node = 0 to Subject.num_nodes g - 1 do
    match Subject.kind g node with
    | Subject.Spi -> ()
    | Subject.Snand _ | Subject.Sinv _ ->
      incr gate_nodes;
      ignore (Matchdb.node_matches ~cache db Matcher.Standard g ~fanouts ~levels node)
  done;
  let h1 = Matchdb.cache_hits cache in
  check tint "lookups = gate nodes" !gate_nodes (Matchdb.cache_lookups cache);
  check tint "hits + misses = lookups"
    (Matchdb.cache_lookups cache)
    (Matchdb.cache_hits cache + Matchdb.cache_misses cache);
  check tbool "isomorphic cells hit" true (h1 > 0);
  check tbool "first cell misses" true (Matchdb.cache_misses cache > 0);
  (* Second pass: every cone is already cached. *)
  for node = 0 to Subject.num_nodes g - 1 do
    match Subject.kind g node with
    | Subject.Spi -> ()
    | Subject.Snand _ | Subject.Sinv _ ->
      ignore (Matchdb.node_matches ~cache db Matcher.Standard g ~fanouts ~levels node)
  done;
  check tint "second pass all hits"
    (h1 + !gate_nodes)
    (Matchdb.cache_hits cache);
  check tint "hits + misses = lookups (after)"
    (Matchdb.cache_lookups cache)
    (Matchdb.cache_hits cache + Matchdb.cache_misses cache);
  (* PI lookups are free and uncounted. *)
  let before = Matchdb.cache_lookups cache in
  List.iter
    (fun pi ->
      check tint "pi has no matches" 0
        (List.length
           (Matchdb.node_matches ~cache db Matcher.Standard g ~fanouts ~levels pi)))
    (Subject.pi_ids g);
  check tint "pi lookups uncounted" before (Matchdb.cache_lookups cache)

(* reset_counters gives per-run stats over a shared (warm) cache:
   after a reset, a second identical run reports only its own
   lookups, and — with the table kept — reports them as all hits. *)
let test_reset_counters () =
  let g = cell_row 8 in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let fanouts = Subject.fanout_counts g in
  let levels = Subject.levels g in
  let cache = Matchdb.create_cache db in
  let sweep () =
    for node = 0 to Subject.num_nodes g - 1 do
      match Subject.kind g node with
      | Subject.Spi -> ()
      | Subject.Snand _ | Subject.Sinv _ ->
        ignore
          (Matchdb.node_matches ~cache db Matcher.Standard g ~fanouts ~levels
             node)
    done
  in
  sweep ();
  let run1_lookups = Matchdb.cache_lookups cache in
  check tbool "first run looked things up" true (run1_lookups > 0);
  Matchdb.reset_counters cache;
  check tint "counters zeroed" 0
    (Matchdb.cache_lookups cache + Matchdb.cache_hits cache
    + Matchdb.cache_misses cache);
  sweep ();
  check tint "second run reports per-run lookups" run1_lookups
    (Matchdb.cache_lookups cache);
  check tint "second run is all hits (warm table kept)" run1_lookups
    (Matchdb.cache_hits cache);
  check tint "hits + misses = lookups after reset"
    (Matchdb.cache_lookups cache)
    (Matchdb.cache_hits cache + Matchdb.cache_misses cache);
  check tbool "cache not retired by the good workload" false
    (Matchdb.cache_retired cache)

(* Full-mapper agreement: cached and uncached runs produce the same
   labels, delay and netlist size; stats record the cache activity. *)
let test_mapper_cache_identical () =
  List.iter
    (fun (cname, net) ->
      let g = Subject.of_network net in
      let db = Matchdb.prepare (Libraries.lib2_like ()) in
      List.iter
        (fun mode ->
          let r_off = Mapper.map ~cache:false mode db g in
          let r_on = Mapper.map mode db g in
          check tbool
            (Printf.sprintf "%s/%s labels identical" cname (Mapper.mode_name mode))
            true
            (r_off.Mapper.labels = r_on.Mapper.labels);
          check (Alcotest.float 0.0)
            (Printf.sprintf "%s/%s delay identical" cname (Mapper.mode_name mode))
            (Netlist.delay r_off.Mapper.netlist)
            (Netlist.delay r_on.Mapper.netlist);
          check tint
            (Printf.sprintf "%s/%s gates identical" cname (Mapper.mode_name mode))
            (Netlist.num_gates r_off.Mapper.netlist)
            (Netlist.num_gates r_on.Mapper.netlist);
          check tint
            (Printf.sprintf "%s/%s matches tried identical" cname
               (Mapper.mode_name mode))
            r_off.Mapper.run.Mapper.matches_tried
            r_on.Mapper.run.Mapper.matches_tried;
          check tint "cache-off counts nothing" 0
            r_off.Mapper.run.Mapper.cache_lookups;
          check tint
            (Printf.sprintf "%s/%s stats consistent" cname (Mapper.mode_name mode))
            r_on.Mapper.run.Mapper.cache_lookups
            (r_on.Mapper.run.Mapper.cache_hits
            + r_on.Mapper.run.Mapper.cache_misses))
        [ Mapper.Tree; Mapper.Dag; Mapper.Dag_extended ])
    [ ("mult4", Generators.array_multiplier 4);
      ("cla16", Generators.carry_lookahead_adder 16);
      ("rand", Generators.random_dag ~seed:7 ~inputs:10 ~outputs:5 ~nodes:150 ()) ]

(* The process-global metrics registry aggregates the per-cache
   counters atomically across worker domains. The conservation law
   must hold exactly after a 4-domain run — with [mutable int]
   counters it lost updates under contention. *)
let test_global_registry_conservation () =
  let g = Subject.of_network (Generators.carry_lookahead_adder 16) in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  Metrics.reset_all ();
  ignore (Parmap.map ~jobs:4 Mapper.Dag db g);
  let v name = Option.value ~default:(-1) (Metrics.counter_value name) in
  check tbool "global lookups recorded" true (v "matchdb.cache.lookups" > 0);
  check tint "lookups = hits + misses across 4 domains"
    (v "matchdb.cache.lookups")
    (v "matchdb.cache.hits" + v "matchdb.cache.misses")

(* ------------------------------------------------------------------ *)
(* Differential properties: tree vs dag vs dag-extended, cache x2     *)
(* ------------------------------------------------------------------ *)

(* Standard matches include exact matches, and extended matches
   include standard matches, so the optimal delays must be ordered
   dag <= tree and dag-extended <= dag — under either cache setting,
   whose delays must also agree with each other. *)
let qc_differential =
  QCheck.Test.make ~count:25 ~name:"differential: delay dominance, cached+uncached"
    QCheck.(make ~print:string_of_int Gen.(int_bound 10_000))
    (fun seed ->
      let net = Generators.random_dag ~seed ~inputs:8 ~outputs:4 ~nodes:60 () in
      let g = Subject.of_network net in
      let db = Matchdb.prepare (Libraries.lib2_like ()) in
      let delay ~cache mode =
        Netlist.delay (Mapper.map ~cache mode db g).Mapper.netlist
      in
      let check_config cache =
        let dt = delay ~cache Mapper.Tree in
        let dd = delay ~cache Mapper.Dag in
        let de = delay ~cache Mapper.Dag_extended in
        dd <= dt +. 1e-9 && de <= dd +. 1e-9
      in
      check_config true && check_config false
      && delay ~cache:true Mapper.Dag = delay ~cache:false Mapper.Dag)

(* Paper footnote 3: extended matches bring no mapping-quality gain
   over standard matches. That is an empirical tendency, not a
   theorem — Figure 1 of the paper is a counterexample shape, and
   cla16/lib2 in this repo is another (extended beats dag there) —
   so equality is pinned as a regression on circuits where it is
   known to hold. *)
let test_extended_equals_dag_footnote3 () =
  List.iter
    (fun (cname, net) ->
      let g = Subject.of_network net in
      List.iter
        (fun lib_name ->
          let db = Matchdb.prepare (Option.get (Libraries.by_name lib_name)) in
          List.iter
            (fun cache ->
              let dd =
                Netlist.delay (Mapper.map ~cache Mapper.Dag db g).Mapper.netlist
              in
              let de =
                Netlist.delay
                  (Mapper.map ~cache Mapper.Dag_extended db g).Mapper.netlist
              in
              check (Alcotest.float 1e-9)
                (Printf.sprintf "%s/%s cache=%b: extended = dag" cname lib_name
                   cache)
                dd de)
            [ true; false ])
        [ "minimal"; "44-1"; "lib2" ])
    [ ("adder8", Generators.ripple_adder 8);
      ("ks16", Generators.kogge_stone_adder 16);
      ("mult4", Generators.array_multiplier 4);
      ("parity16", Generators.parity 16) ]

let () =
  Alcotest.run "matchcache"
    [ ( "transparency",
        [ Alcotest.test_case "cached = uncached lists" `Quick
            test_cache_transparent;
          Alcotest.test_case "mapper agreement" `Quick
            test_mapper_cache_identical ] );
      ( "counters",
        [ Alcotest.test_case "hit/miss bookkeeping" `Quick test_counters;
          Alcotest.test_case "per-run reset" `Quick test_reset_counters;
          Alcotest.test_case "global registry conservation" `Quick
            test_global_registry_conservation ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest qc_differential;
          Alcotest.test_case "footnote 3: extended = dag" `Quick
            test_extended_equals_dag_footnote3 ] ) ]
