(* The mappers: label/netlist agreement, functional equivalence,
   tree-vs-DAG dominance, mode invariants, unmappability. *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_sim
open Dagmap_circuits

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tfloat = Alcotest.float 1e-6

let libs () =
  List.filter_map Libraries.by_name [ "minimal"; "44-1"; "lib2" ]

let circuits () =
  [ ("adder8", Generators.ripple_adder 8);
    ("cla16", Generators.carry_lookahead_adder 16);
    ("mult4", Generators.array_multiplier 4);
    ("alu4", Generators.alu 4);
    ("parity16", Generators.parity 16);
    ("cmp8", Generators.comparator 8);
    ("rand1", Generators.random_dag ~seed:1 ~inputs:10 ~outputs:5 ~nodes:80 ());
    ("rand2", Generators.random_dag ~seed:2 ~inputs:12 ~outputs:6 ~nodes:120 ()) ]

let modes = [ Mapper.Tree; Mapper.Dag; Mapper.Dag_extended ]

let test_netlist_validates () =
  List.iter
    (fun (cname, net) ->
      let g = Subject.of_network net in
      List.iter
        (fun lib ->
          let db = Matchdb.prepare lib in
          List.iter
            (fun mode ->
              let r = Mapper.map mode db g in
              Netlist.validate r.Mapper.netlist;
              check tbool
                (Printf.sprintf "%s/%s/%s gates nonzero" cname
                   lib.Libraries.lib_name (Mapper.mode_name mode))
                true
                (Netlist.num_gates r.Mapper.netlist > 0))
            modes)
        (libs ()))
    (circuits ())

let test_labels_equal_netlist_delay () =
  (* The labeling pass predicts exactly the mapped netlist's delay. *)
  List.iter
    (fun (cname, net) ->
      let g = Subject.of_network net in
      List.iter
        (fun lib ->
          let db = Matchdb.prepare lib in
          List.iter
            (fun mode ->
              let r = Mapper.map mode db g in
              check tfloat
                (Printf.sprintf "%s/%s/%s label = delay" cname
                   lib.Libraries.lib_name (Mapper.mode_name mode))
                (Mapper.optimal_delay r)
                (Netlist.delay r.Mapper.netlist))
            modes)
        (libs ()))
    (circuits ())

let test_equivalence () =
  List.iter
    (fun (cname, net) ->
      let g = Subject.of_network net in
      let n_inputs = List.length (Subject.pi_ids g) in
      List.iter
        (fun lib ->
          let db = Matchdb.prepare lib in
          List.iter
            (fun mode ->
              let r = Mapper.map mode db g in
              let verdict =
                Equiv.compare_sims ~rounds:8 ~n_inputs
                  (fun words -> Simulate.subject g words)
                  (fun words -> Simulate.netlist r.Mapper.netlist words)
              in
              if not (Equiv.is_equivalent verdict) then
                Alcotest.failf "%s/%s/%s: %s" cname lib.Libraries.lib_name
                  (Mapper.mode_name mode)
                  (Format.asprintf "%a" Equiv.pp_verdict verdict))
            modes)
        (libs ()))
    (circuits ())

let test_dag_dominates_tree () =
  (* Exact matches are a subset of standard matches, so the DAG
     labels (and hence delay) can never be worse. Likewise extended
     vs. standard. *)
  List.iter
    (fun (cname, net) ->
      let g = Subject.of_network net in
      List.iter
        (fun lib ->
          let db = Matchdb.prepare lib in
          let d mode = Netlist.delay (Mapper.map mode db g).Mapper.netlist in
          let dt = d Mapper.Tree and dd = d Mapper.Dag in
          let de = d Mapper.Dag_extended in
          check tbool
            (Printf.sprintf "%s/%s dag <= tree (%.3f vs %.3f)" cname
               lib.Libraries.lib_name dd dt)
            true
            (dd <= dt +. 1e-9);
          check tbool
            (Printf.sprintf "%s/%s extended <= dag" cname lib.Libraries.lib_name)
            true
            (de <= dd +. 1e-9))
        (libs ()))
    (circuits ())

let test_tree_no_duplication () =
  List.iter
    (fun (cname, net) ->
      let g = Subject.of_network net in
      List.iter
        (fun lib ->
          let db = Matchdb.prepare lib in
          let r = Mapper.map Mapper.Tree db g in
          check tint
            (Printf.sprintf "%s/%s tree duplication" cname lib.Libraries.lib_name)
            0
            (Netlist.duplication r.Mapper.netlist))
        (libs ()))
    (circuits ())

let test_labels_monotone_bound () =
  (* Each node's label is bounded by fastest-gate-per-level: with the
     minimal library every node needs at least one nand or inv. *)
  let net = Generators.ripple_adder 6 in
  let g = Subject.of_network net in
  let db = Matchdb.prepare (Libraries.minimal ()) in
  let r = Mapper.map Mapper.Dag db g in
  let levels = Subject.levels g in
  Array.iteri
    (fun node label ->
      match Subject.kind g node with
      | Subject.Spi -> check tfloat "pi label" 0.0 label
      | Subject.Snand _ | Subject.Sinv _ ->
        (* inv costs 0.5, nand 1.0; a node at level l needs delay >=
           0.5 * ceil(l/?) — use the loose bound 0.5. *)
        check tbool "label positive" true (label >= 0.5 -. 1e-9);
        check tbool "label bounded by unit path" true
          (label <= (float_of_int levels.(node) *. 1.0) +. 1e-9))
    r.Mapper.labels

let test_minimal_library_is_identity_cover () =
  (* With only inv+nand2, mapping reproduces the subject graph
     one-to-one (modulo unreached nodes). *)
  let net = Generators.parity 8 in
  let g = Subject.of_network net in
  let db = Matchdb.prepare (Libraries.minimal ()) in
  let r = Mapper.map Mapper.Dag db g in
  check tint "one gate per reachable subject node"
    (Netlist.num_gates r.Mapper.netlist)
    (let reachable = Hashtbl.create 64 in
     let rec visit u =
       if not (Hashtbl.mem reachable u) then begin
         match Subject.kind g u with
         | Subject.Spi -> ()
         | Subject.Sinv _ | Subject.Snand _ ->
           Hashtbl.add reachable u ();
           List.iter visit (Subject.fanins g u)
       end
     in
     List.iter (fun o -> visit o.Subject.out_node) g.Subject.outputs;
     Hashtbl.length reachable)

let test_unmappable_raises () =
  (* A library with only inverters cannot map a NAND. *)
  let inv =
    Gate.make ~name:"inv" ~area:1.0
      ~pins:[| Gate.simple_pin "a" |]
      Bexpr.(not_ (var 0))
  in
  let lib = Libraries.make "invonly" [ inv ] in
  let db = Matchdb.prepare lib in
  let bld = Subject.Builder.create () in
  let x = Subject.Builder.pi bld "x" in
  let y = Subject.Builder.pi bld "y" in
  let n = Subject.Builder.nand bld x y in
  Subject.Builder.output bld "o" n;
  let g = Subject.Builder.finish bld in
  match Mapper.map Mapper.Dag db g with
  | exception Mapper.Unmappable _ -> ()
  | _ -> Alcotest.fail "expected Unmappable"

let test_constant_and_pi_outputs () =
  let net = Network.create () in
  let a = Network.add_pi net "a" in
  let zero = Network.add_logic net (Bexpr.const false) [||] in
  Network.add_po net "wire" a;
  Network.add_po net "zero" zero;
  let g = Subject.of_network net in
  let db = Matchdb.prepare (Libraries.minimal ()) in
  let r = Mapper.map Mapper.Dag db g in
  check tint "no gates needed" 0 (Netlist.num_gates r.Mapper.netlist);
  let outs = r.Mapper.netlist.Netlist.outputs in
  (match List.assoc "wire" outs with
   | Netlist.D_pi _ -> ()
   | Netlist.D_gate _ | Netlist.D_const _ -> Alcotest.fail "wire should be a PI");
  (match List.assoc "zero" outs with
   | Netlist.D_const false -> ()
   | Netlist.D_pi _ | Netlist.D_gate _ | Netlist.D_const true ->
     Alcotest.fail "zero should be constant false")

let test_rich_library_beats_simple () =
  (* More patterns can only help the optimal delay. *)
  let net = Generators.carry_lookahead_adder 8 in
  let g = Subject.of_network net in
  let d lib = Netlist.delay (Mapper.map Mapper.Dag (Matchdb.prepare lib) g).Mapper.netlist in
  let d_min = d (Libraries.minimal ()) in
  let d_lib2 = d (Libraries.lib2_like ()) in
  check tbool "lib2 <= minimal" true (d_lib2 <= d_min +. 1e-9)

let test_stats_populated () =
  let net = Generators.ripple_adder 4 in
  let g = Subject.of_network net in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let r = Mapper.map Mapper.Dag db g in
  check tbool "matches tried" true (r.Mapper.run.Mapper.matches_tried > 0);
  check tbool "times nonnegative" true
    (r.Mapper.run.Mapper.label_seconds >= 0.0
    && r.Mapper.run.Mapper.cover_seconds >= 0.0)

(* Independent optimality check (the paper's core claim): on tiny
   graphs, exhaustively enumerate every possible cover — an
   assignment of one match to each subject node — evaluate each
   candidate cover's true delay, and confirm the labeling DP achieves
   the minimum. *)
let brute_force_optimal_delay db g =
  let fanouts = Subject.fanout_counts g in
  let levels = Subject.levels g in
  let n = Subject.num_nodes g in
  let all_matches =
    Array.init n (fun node ->
        match Subject.kind g node with
        | Subject.Spi -> [||]
        | Subject.Snand _ | Subject.Sinv _ ->
          Array.of_list
            (Matchdb.node_matches db Matcher.Standard g ~fanouts ~levels node))
  in
  (* The delay of a cover: arrival(node) under the chosen match. *)
  let best = ref infinity in
  let assignment = Array.make n 0 in
  let arrival = Array.make n 0.0 in
  let rec assign node =
    if node = n then begin
      (* Evaluate this cover. *)
      for u = 0 to n - 1 do
        match Subject.kind g u with
        | Subject.Spi -> arrival.(u) <- 0.0
        | Subject.Snand _ | Subject.Sinv _ ->
          let m = all_matches.(u).(assignment.(u)) in
          let gate = Matcher.gate m in
          let worst = ref 0.0 in
          Array.iteri
            (fun pin pin_node ->
              if pin_node >= 0 then
                worst :=
                  Float.max !worst
                    (arrival.(pin_node) +. Gate.intrinsic_delay gate pin))
            m.Matcher.pins;
          arrival.(u) <- !worst
      done;
      let d =
        List.fold_left
          (fun acc o -> Float.max acc arrival.(o.Subject.out_node))
          0.0 g.Subject.outputs
      in
      if d < !best then best := d
    end
    else begin
      match Subject.kind g node with
      | Subject.Spi -> assign (node + 1)
      | Subject.Snand _ | Subject.Sinv _ ->
        for i = 0 to Array.length all_matches.(node) - 1 do
          assignment.(node) <- i;
          assign (node + 1)
        done
    end
  in
  assign 0;
  !best

let test_optimality_vs_exhaustive () =
  (* Library with real choices: inv, nand2, plus two compound gates
     with distinctive delays. *)
  let mk name delay n expr =
    Gate.make ~name ~area:1.0
      ~pins:(Array.init n (fun i -> Gate.simple_pin ~delay (Printf.sprintf "p%d" i)))
      expr
  in
  let lib =
    Libraries.make "tiny"
      [ mk "inv" 0.6 1 Bexpr.(not_ (var 0));
        mk "nand2" 1.0 2 Bexpr.(not_ (and2 (var 0) (var 1)));
        mk "and2" 1.3 2 Bexpr.(and2 (var 0) (var 1));
        mk "aoi21" 1.4 3 Bexpr.(not_ (or2 (and2 (var 0) (var 1)) (var 2)));
        mk "nand3" 1.2 3 Bexpr.(not_ (and_list [ var 0; var 1; var 2 ])) ]
  in
  let db = Matchdb.prepare lib in
  let checked = ref 0 in
  List.iter
    (fun seed ->
      let net =
        Generators.random_dag ~seed ~inputs:3 ~outputs:2 ~nodes:3 ()
      in
      let g = Subject.of_network net in
      (* Keep the enumeration tractable: skip seeds whose cover space
         is too large. *)
      let fanouts = Subject.fanout_counts g in
      let levels = Subject.levels g in
      let product = ref 1.0 in
      for node = 0 to Subject.num_nodes g - 1 do
        match Subject.kind g node with
        | Subject.Spi -> ()
        | Subject.Snand _ | Subject.Sinv _ ->
          product :=
            !product
            *. float_of_int
                 (max 1
                    (List.length
                       (Matchdb.node_matches db Matcher.Standard g ~fanouts
                          ~levels node)))
      done;
      if !product <= 300_000.0 && Network.pos net <> [] then begin
        incr checked;
        let r = Mapper.map Mapper.Dag db g in
        let reference = brute_force_optimal_delay db g in
        check tfloat
          (Printf.sprintf "seed %d: DP delay equals exhaustive optimum" seed)
          reference
          (Netlist.delay r.Mapper.netlist)
      end)
    (List.init 20 (fun i -> i));
  check tbool "some seeds exhaustively checked" true (!checked >= 3)

let test_negative_pi_arrivals () =
  (* Regression: [match_arrival] started its max at 0.0, clamping any
     negative pin arrival — a uniformly negative PI arrival must shift
     every label by exactly that constant (the argmax is unchanged). *)
  let net = Generators.ripple_adder 4 in
  let g = Subject.of_network net in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let shift = -10.0 in
  List.iter
    (fun mode ->
      let base, _, _ = Mapper.label mode db g in
      let shifted, _, _ =
        Mapper.label ~pi_arrival:(fun _ -> shift) mode db g
      in
      Array.iteri
        (fun n b ->
          check tfloat
            (Printf.sprintf "%s node %d shifts uniformly"
               (Mapper.mode_name mode) n)
            (b +. shift) shifted.(n))
        base)
    modes

(* QCheck: random circuits, random library subsets stay equivalent. *)
let qc_mapping_equivalence =
  QCheck.Test.make ~count:20 ~name:"random circuit mapping equivalence"
    QCheck.(make Gen.(pair (int_bound 10_000) (int_bound 2)))
    (fun (seed, mode_idx) ->
      let net = Generators.random_dag ~seed ~inputs:7 ~outputs:4 ~nodes:50 () in
      let g = Subject.of_network net in
      let db = Matchdb.prepare (Libraries.lib2_like ()) in
      let mode = List.nth modes mode_idx in
      let r = Mapper.map mode db g in
      let verdict =
        Equiv.compare_sims ~rounds:4
          ~n_inputs:(List.length (Subject.pi_ids g))
          (fun words -> Simulate.subject g words)
          (fun words -> Simulate.netlist r.Mapper.netlist words)
      in
      Equiv.is_equivalent verdict)

let () =
  Alcotest.run "mapper"
    [ ( "structural",
        [ Alcotest.test_case "netlists validate" `Quick test_netlist_validates;
          Alcotest.test_case "labels = delay" `Quick test_labels_equal_netlist_delay;
          Alcotest.test_case "tree no duplication" `Quick test_tree_no_duplication;
          Alcotest.test_case "minimal identity cover" `Quick
            test_minimal_library_is_identity_cover ] );
      ( "optimality",
        [ Alcotest.test_case "dag dominates tree" `Quick test_dag_dominates_tree;
          Alcotest.test_case "label bounds" `Quick test_labels_monotone_bound;
          Alcotest.test_case "rich library helps" `Quick
            test_rich_library_beats_simple;
          Alcotest.test_case "exhaustive covers" `Slow
            test_optimality_vs_exhaustive ] );
      ( "edge cases",
        [ Alcotest.test_case "unmappable" `Quick test_unmappable_raises;
          Alcotest.test_case "const and pi outputs" `Quick
            test_constant_and_pi_outputs;
          Alcotest.test_case "stats" `Quick test_stats_populated;
          Alcotest.test_case "negative PI arrivals" `Quick
            test_negative_pi_arrivals ] );
      ( "equivalence",
        [ Alcotest.test_case "fixed circuits" `Slow test_equivalence;
          QCheck_alcotest.to_alcotest qc_mapping_equivalence ] ) ]
