(* Arena priority-cut mapping: three-way parity with the boxed cut
   mapper (boxed / arena sequential / arena parallel), full lib/check
   audits over the mode x k x priority x library matrix (supergates
   included), and never-worse-than-tree quality. *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_circuits
open Dagmap_cutmap
open Dagmap_check
open Dagmap_super

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let huge_enabled () =
  match Sys.getenv_opt "DAGMAP_HUGE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let small_circuits () =
  [ ("adder6", Subject.of_network (Generators.ripple_adder 6));
    ("cla12", Subject.of_network (Generators.carry_lookahead_adder 12));
    ("rand", Subject.of_network
       (Generators.random_dag ~seed:77 ~inputs:8 ~outputs:4 ~nodes:60 ())) ]

(* Wide enough that jobs=4 actually fans levels across the pool. *)
let wide_circuit () =
  Subject.of_network
    (Generators.random_dag ~seed:5 ~inputs:120 ~outputs:30 ~nodes:3000 ())

let super_lib =
  lazy
    (let base = Libraries.lib44_1_like () in
     let sgl, _ =
       Superlib.make
         ~bounds:{ Superenum.default_bounds with max_pins = 4; max_size = 3 }
         base
     in
     Superlib.augment base sgl)

(* ------------------------------------------------------------------ *)
(* Bit-identity helpers                                                *)
(* ------------------------------------------------------------------ *)

let same_choice c1 c2 =
  match c1, c2 with
  | None, None -> true
  | Some c1, Some c2 ->
    c1.Cut_mapper.cut.Cuts.leaves = c2.Cut_mapper.cut.Cuts.leaves
    && Truth.equal c1.Cut_mapper.cut.Cuts.func c2.Cut_mapper.cut.Cuts.func
    && c1.Cut_mapper.entry.Boolean_match.gate.Gate.gate_name
       = c2.Cut_mapper.entry.Boolean_match.gate.Gate.gate_name
    && c1.Cut_mapper.entry.Boolean_match.pin_of_input
       = c2.Cut_mapper.entry.Boolean_match.pin_of_input
  | _ -> false

let check_same_result name (r1 : Cut_mapper.result) (r2 : Cut_mapper.result) =
  check tbool (name ^ ": labels bit-identical") true
    (r1.Cut_mapper.labels = r2.Cut_mapper.labels);
  check tint (name ^ ": matched nodes") r1.Cut_mapper.matched_nodes
    r2.Cut_mapper.matched_nodes;
  check tint (name ^ ": matches evaluated") r1.Cut_mapper.matches_evaluated
    r2.Cut_mapper.matches_evaluated;
  check tbool (name ^ ": choices identical") true
    (Array.length r1.Cut_mapper.chosen = Array.length r2.Cut_mapper.chosen
    && Array.for_all2 same_choice r1.Cut_mapper.chosen r2.Cut_mapper.chosen);
  check (Alcotest.float 0.0) (name ^ ": delay")
    (Netlist.delay r1.Cut_mapper.netlist)
    (Netlist.delay r2.Cut_mapper.netlist);
  check (Alcotest.float 0.0) (name ^ ": area")
    (Netlist.area r1.Cut_mapper.netlist)
    (Netlist.area r2.Cut_mapper.netlist);
  check tint (name ^ ": gates")
    (Netlist.num_gates r1.Cut_mapper.netlist)
    (Netlist.num_gates r2.Cut_mapper.netlist)

(* ------------------------------------------------------------------ *)
(* Parity                                                              *)
(* ------------------------------------------------------------------ *)

let parity_configs = [ (4, 3); (5, 8); (6, 50) ]

let test_three_way_parity () =
  List.iter
    (fun lib ->
      let db = Boolean_match.prepare lib in
      List.iter
        (fun (name, g) ->
          let a = Arena.of_subject g in
          List.iter
            (fun (k, priority) ->
              let tag =
                Printf.sprintf "%s/%s k=%d p=%d" name lib.Libraries.lib_name k
                  priority
              in
              let boxed = Cut_mapper.map ~k ~priority db g in
              let seq, _ =
                Arena_cuts.map ~jobs:1 ~k ~priority ~subject:g db a
              in
              let par, stats =
                Arena_cuts.map ~jobs:4 ~k ~priority ~subject:g db a
              in
              check_same_result (tag ^ " boxed=arena") boxed seq;
              check_same_result (tag ^ " seq=par") seq par;
              check tbool (tag ^ " level timings recorded") true
                (Array.length stats.Parmap.level_seconds = stats.Parmap.levels))
            parity_configs)
        (small_circuits ()))
    [ Libraries.minimal (); Libraries.lib2_like () ]

let test_parallel_parity_wide () =
  let g = wide_circuit () in
  let a = Arena.of_subject g in
  let db = Boolean_match.prepare (Libraries.lib2_like ()) in
  let seq, sstats = Arena_cuts.map ~jobs:1 ~k:4 ~priority:6 ~subject:g db a in
  let par, pstats = Arena_cuts.map ~jobs:4 ~k:4 ~priority:6 ~subject:g db a in
  (* The wide circuit must actually exercise the work-stealing path,
     otherwise this test proves nothing about parallel determinism. *)
  check tbool "some levels fanned out" true (pstats.Parmap.parallel_levels > 0);
  check tbool "chunks claimed" true (pstats.Parmap.chunks > 0);
  check tint "sequential run stays on caller" 0 sstats.Parmap.parallel_levels;
  check_same_result "wide seq=par" seq par;
  let boxed = Cut_mapper.map ~k:4 ~priority:6 db g in
  check_same_result "wide boxed=par" boxed par

let test_arena_without_subject () =
  (* Covering through Arena.to_subject must agree with covering
     through the original boxed subject. *)
  let _, g = List.hd (small_circuits ()) in
  let a = Arena.of_subject g in
  let db = Boolean_match.prepare (Libraries.minimal ()) in
  let with_subject, _ = Arena_cuts.map ~subject:g db a in
  let without, _ = Arena_cuts.map db a in
  check_same_result "to_subject cover" with_subject without

let test_pi_arrival_parity () =
  let _, g = List.nth (small_circuits ()) 1 in
  let a = Arena.of_subject g in
  let db = Boolean_match.prepare (Libraries.lib2_like ()) in
  let pi_arrival node = if node mod 2 = 0 then -3.0 else 1.5 in
  let boxed = Cut_mapper.map ~priority:8 ~pi_arrival db g in
  let par, _ = Arena_cuts.map ~jobs:4 ~priority:8 ~pi_arrival ~subject:g db a in
  check_same_result "pi_arrival boxed=par" boxed par

(* ------------------------------------------------------------------ *)
(* Audit matrix                                                        *)
(* ------------------------------------------------------------------ *)

let audit_clean tag g (r : Cut_mapper.result) =
  match
    Check.audit ~rounds:4 g
      ~predicted:(Cut_mapper.predicted_arrivals r)
      r.Cut_mapper.netlist
  with
  | [] -> ()
  | issues ->
    Alcotest.failf "%s: %d audit issues, first: %s" tag (List.length issues)
      (Format.asprintf "%a" Check.pp_issue (List.hd issues))

let test_audit_matrix () =
  let libs =
    [ Libraries.minimal (); Libraries.lib2_like (); Libraries.lib44_1_like ();
      Lazy.force super_lib ]
  in
  List.iter
    (fun lib ->
      let db = Boolean_match.prepare lib in
      List.iter
        (fun (name, g) ->
          let a = Arena.of_subject g in
          List.iter
            (fun (k, priority) ->
              let tag =
                Printf.sprintf "%s/%s k=%d p=%d" name lib.Libraries.lib_name k
                  priority
              in
              audit_clean (tag ^ " boxed") g (Cut_mapper.map ~k ~priority db g);
              let par, _ =
                Arena_cuts.map ~jobs:2 ~k ~priority ~subject:g db a
              in
              audit_clean (tag ^ " arena") g par)
            [ (4, 3); (5, 8) ])
        (small_circuits ()))
    libs

let test_supergates_help_or_tie () =
  (* The augmented index contains every base entry, so with an ample
     budget supergates can only improve (or tie) the mapped delay. *)
  let base = Libraries.lib44_1_like () in
  let aug = Lazy.force super_lib in
  let bdb = Boolean_match.prepare base in
  let adb = Boolean_match.prepare aug in
  check tbool "augmented index has supergate entries" true
    (Boolean_match.num_super_entries adb > 0);
  check tint "base index has none" 0 (Boolean_match.num_super_entries bdb);
  List.iter
    (fun (name, g) ->
      let db_d = Netlist.delay (Cut_mapper.map ~priority:200 bdb g).Cut_mapper.netlist in
      let da = Netlist.delay (Cut_mapper.map ~priority:200 adb g).Cut_mapper.netlist in
      check tbool
        (Printf.sprintf "%s: super (%.2f) <= base (%.2f)" name da db_d)
        true
        (da <= db_d +. 1e-6))
    (small_circuits ())

(* ------------------------------------------------------------------ *)
(* Quality: never worse than tree mode                                 *)
(* ------------------------------------------------------------------ *)

let qc_never_worse_than_tree =
  QCheck.Test.make ~count:10 ~name:"cut mapping never worse than tree mode"
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      let net = Generators.random_dag ~seed ~inputs:8 ~outputs:4 ~nodes:60 () in
      let g = Subject.of_network net in
      let lib = Libraries.lib2_like () in
      let pdb = Matchdb.prepare lib in
      let bdb = Matchdb.boolean pdb in
      (* Unpruned enumeration: Boolean matching sees every realization
         tree matching can pick, so the DP label can only be tighter. *)
      let dc =
        Netlist.delay (Cut_mapper.map ~priority:100_000 bdb g).Cut_mapper.netlist
      in
      let dt = Netlist.delay (Mapper.map Mapper.Tree pdb g).Mapper.netlist in
      dc <= dt +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Huge tier (gated)                                                   *)
(* ------------------------------------------------------------------ *)

let test_million_node_soc () =
  if not (huge_enabled ()) then
    Printf.printf
      "[test_arena_cuts] 1M SoC skipped (set DAGMAP_HUGE=1 to run)\n%!"
  else begin
    let net = Generators.synthetic_soc ~seed:7 ~nodes:1_000_000 () in
    let a = Arena.of_network net in
    check tbool "1M+ nodes" true (Arena.num_nodes a >= 1_000_000);
    let g = Arena.to_subject a in
    let db = Boolean_match.prepare (Libraries.lib2_like ()) in
    let seq, _ = Arena_cuts.map ~jobs:1 ~k:4 ~priority:8 ~subject:g db a in
    let par, stats = Arena_cuts.map ~jobs:4 ~k:4 ~priority:8 ~subject:g db a in
    check tbool "1M parallel levels" true (stats.Parmap.parallel_levels > 0);
    check_same_result "1M seq=par" seq par;
    audit_clean "1M soc" g par
  end

let () =
  Alcotest.run "arena_cuts"
    [ ( "parity",
        [ Alcotest.test_case "three-way matrix" `Quick test_three_way_parity;
          Alcotest.test_case "wide parallel" `Quick test_parallel_parity_wide;
          Alcotest.test_case "cover via to_subject" `Quick
            test_arena_without_subject;
          Alcotest.test_case "external arrivals" `Quick test_pi_arrival_parity ] );
      ( "audit",
        [ Alcotest.test_case "mode x k x priority x library" `Quick
            test_audit_matrix;
          Alcotest.test_case "supergates help or tie" `Quick
            test_supergates_help_or_tie ] );
      ( "quality",
        [ QCheck_alcotest.to_alcotest qc_never_worse_than_tree ] );
      ( "huge",
        [ Alcotest.test_case "1M-node SoC (DAGMAP_HUGE)" `Slow
            test_million_node_soc ] ) ]
