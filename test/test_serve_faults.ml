(* techmapd under fire: fault-plan parsing, end-to-end deadlines
   (admission, queue wait), the watchdog (stuck job failed, pool
   restarted, degraded inline service, recovery), the retry layer
   against injected connection drops, slow-trickle framing, client
   timeouts against a mute server, idle-connection reaping, and a
   300-request chaos mix whose every completed reply must agree with
   a fault-free local map. *)

open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_circuits
open Dagmap_obs
open Dagmap_serve

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Fault-plan parsing                                                  *)
(* ------------------------------------------------------------------ *)

let test_plan_parsing () =
  check tbool "empty spec is inert" false
    (Faultplan.is_active (Result.get_ok (Faultplan.parse "")));
  check tbool "none is inert" false (Faultplan.is_active Faultplan.none);
  let plan =
    Result.get_ok
      (Faultplan.parse "crash_job:0.25,delay_job:150:0.1,seed:42")
  in
  check tbool "plan with entries is active" true (Faultplan.is_active plan);
  check tstr "canonical rendering"
    "crash_job:0.25,delay_job:150:0.1,seed:42"
    (Faultplan.to_string plan);
  check tbool "rendering round-trips" true
    (match Faultplan.parse (Faultplan.to_string plan) with
     | Ok p -> Faultplan.to_string p = Faultplan.to_string plan
     | Error _ -> false);
  check tint "injected counts start at zero" 0
    (List.fold_left ( + ) 0 (List.map snd (Faultplan.injected plan)));
  let bad spec =
    match Faultplan.parse spec with Ok _ -> false | Error _ -> true
  in
  check tbool "probability out of range" true (bad "crash_job:1.5");
  check tbool "negative probability" true (bad "drop_conn:-0.1");
  check tbool "zero duration" true (bad "delay_job:0:0.5");
  check tbool "unknown entry" true (bad "explode:0.5");
  check tbool "malformed entry" true (bad "crash_job");
  check tbool "bad seed" true (bad "seed:x");
  (* A plan with probabilities but all zero draws still counts as
     active (the entries exist); decisions just never fire. *)
  let never = Result.get_ok (Faultplan.parse "crash_job:0,seed:1") in
  check tbool "p=0 plan parses" true (Faultplan.is_active never);
  for _ = 1 to 100 do
    check tbool "p=0 never fires" false (Faultplan.crash_job never)
  done;
  (* p=1 always fires and counts. *)
  let always = Result.get_ok (Faultplan.parse "drop_conn:1,seed:1") in
  for _ = 1 to 5 do
    check tbool "p=1 always fires" true (Faultplan.drop_conn always)
  done;
  check tbool "injections counted" true
    (List.assoc "drop_conn" (Faultplan.injected always) = 5)

(* ------------------------------------------------------------------ *)
(* Live-server harness                                                 *)
(* ------------------------------------------------------------------ *)

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "techmapd_faults_%d_%d.sock" (Unix.getpid ()) !n)

(* slow:MS burns wall time inside the job (on a worker domain) before
   yielding a small circuit — a deterministic stand-in for a wedged
   request, no randomness involved. *)
let resolver spec =
  match String.split_on_char ':' spec with
  | [ "chain"; n ] -> Generators.nand_chain (int_of_string n)
  | [ "slow"; ms ] ->
    Unix.sleepf (float_of_string ms /. 1e3);
    Generators.nand_chain 8
  | _ -> failwith ("no such circuit " ^ spec)

let with_server ?(jobs = 2) ?(queue = 8) ?(io_timeout = 0.0)
    ?(idle_timeout = 0.0) ?(job_budget = 0.0) ?(faults = Faultplan.none) f =
  let sock = fresh_sock () in
  let srv =
    Server.create
      { Server.socket_path = sock;
        jobs;
        queue_max = queue;
        libraries = [ ("lib2", Option.get (Libraries.by_name "lib2")) ];
        resolve_circuit = Some resolver;
        verbose = false;
        io_timeout_s = io_timeout;
        idle_timeout_s = idle_timeout;
        job_budget_s = job_budget;
        faults }
  in
  let th = Thread.create Server.run srv in
  let finally () =
    Server.stop srv;
    Thread.join th
  in
  Fun.protect ~finally (fun () -> f sock srv)

let status reply =
  Option.value ~default:"?"
    (Option.bind (Json.member "status" reply) Json.to_string_value)

let code reply =
  Option.bind (Json.member "code" reply) Json.to_string_value

let num_field name reply =
  match Option.bind (Json.member name reply) Json.to_number with
  | Some x -> x
  | None -> Alcotest.fail (Printf.sprintf "reply without %s" name)

let stats_of sock =
  let c = Client.connect ~timeout_s:10.0 sock in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () -> Client.request c (Proto.request Proto.Stats))

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)
(* ------------------------------------------------------------------ *)

let test_deadline_queue_wait () =
  with_server ~jobs:1 ~queue:8 @@ fun sock _srv ->
  (* Pin the only worker for 600ms... *)
  let blocker =
    Thread.create
      (fun () ->
        let c = Client.connect sock in
        ignore
          (Client.request c
             { (Proto.request Proto.Map) with Proto.circuit = Some "slow:600" });
        Client.close c)
      ()
  in
  Thread.delay 0.1;
  (* ...then a request with a 100ms budget has to die in the queue,
     and must be answered long before the worker frees up. *)
  let c = Client.connect sock in
  let t0 = Clock.now () in
  let r =
    Client.request c
      { (Proto.request Proto.Map) with
        Proto.circuit = Some "chain:5";
        deadline_ms = Some 100 }
  in
  let dt = Clock.since t0 in
  check tstr "queue-wait miss is an error" "error" (status r);
  check (Alcotest.option tstr) "deadline_exceeded code"
    (Some "deadline_exceeded") (code r);
  check tbool "elapsed_ms reported >= budget" true
    (num_field "elapsed_ms" r >= 100.0);
  check tbool "answered before the worker freed" true (dt < 0.45);
  (* The same connection keeps working afterwards. *)
  let r2 = Client.request c (Proto.request Proto.Ping) in
  check tstr "connection survives a deadline miss" "ok" (status r2);
  Client.close c;
  Thread.join blocker;
  let st = stats_of sock in
  check tbool "server counted the miss" true
    (num_field "deadline_exceeded" st >= 1.0)

let test_deadline_during_payload () =
  with_server ~io_timeout:5.0 @@ fun sock _srv ->
  (* The budget starts when the header lands; a payload still
     dribbling in when it expires is an admission-time miss. *)
  let c = Client.connect sock in
  Client.send_raw c "map deadline_ms=80 payload=64\n";
  Thread.delay 0.3;
  let r = Client.read_reply c in
  check (Alcotest.option tstr) "expired during payload"
    (Some "deadline_exceeded") (code r);
  Client.close c

(* ------------------------------------------------------------------ *)
(* Watchdog: stuck job -> failed request, pool restart, degraded path  *)
(* ------------------------------------------------------------------ *)

let test_watchdog_restart_and_degraded () =
  with_server ~jobs:1 ~queue:8 ~job_budget:0.15 @@ fun sock _srv ->
  (* A job that sleeps 700ms against a 150ms budget: the watchdog
     must fail it rather than let the client wait the sleep out. *)
  let c = Client.connect sock in
  let t0 = Clock.now () in
  let r =
    Client.request c
      { (Proto.request Proto.Map) with Proto.circuit = Some "slow:700" }
  in
  let dt = Clock.since t0 in
  check (Alcotest.option tstr) "stuck job failed" (Some "watchdog_timeout")
    (code r);
  check tbool "failed at the budget, not after the sleep" true (dt < 0.6);
  (* While the old pool is being retired (the sleep has ~500ms to
     run), requests are served inline on the degraded path. *)
  let degraded_seen = ref false in
  let deadline = Clock.now () +. 2.0 in
  while (not !degraded_seen) && Clock.now () < deadline do
    let r =
      Client.request c
        { (Proto.request Proto.Map) with Proto.circuit = Some "chain:10" }
    in
    check tstr "degraded-window request still ok" "ok" (status r);
    if Json.member "degraded" r = Some (Json.Bool true) then
      degraded_seen := true
  done;
  check tbool "a degraded reply was observed" true !degraded_seen;
  (* Recovery: the fresh pool comes up and service leaves the
     degraded path. *)
  let healthy = ref false in
  let deadline = Clock.now () +. 3.0 in
  while (not !healthy) && Clock.now () < deadline do
    Thread.delay 0.05;
    let st = Client.request c (Proto.request Proto.Stats) in
    if Json.member "healthy" st = Some (Json.Bool true) then healthy := true
  done;
  check tbool "pool recovered" true !healthy;
  let r =
    Client.request c
      { (Proto.request Proto.Map) with Proto.circuit = Some "chain:10" }
  in
  check tstr "post-recovery ok" "ok" (status r);
  check tbool "post-recovery not degraded" true
    (Json.member "degraded" r <> Some (Json.Bool true));
  let st = Client.request c (Proto.request Proto.Stats) in
  check tbool "restart counted" true (num_field "watchdog_restarts" st >= 1.0);
  check tbool "degraded replies counted" true (num_field "degraded" st >= 1.0);
  Client.close c

(* ------------------------------------------------------------------ *)
(* Retry layer vs dropped connections                                  *)
(* ------------------------------------------------------------------ *)

let test_retries_vs_drop_conn () =
  let faults = Faultplan.parse_exn "drop_conn:0.4,seed:3" in
  with_server ~faults @@ fun sock _srv ->
  let retry = { Client.default_retry with Client.attempts = 12 } in
  let s = Client.session ~timeout_s:10.0 ~retry ~seed:9 sock in
  for i = 1 to 40 do
    match
      Client.call s
        { (Proto.request Proto.Map) with
          Proto.circuit = Some "chain:12";
          id = Some (string_of_int i) }
    with
    | Ok r ->
      check tstr "dropped replies are retried to ok" "ok" (status r);
      check (Alcotest.option tstr) "id survives the retries"
        (Some (string_of_int i))
        (Option.bind (Json.member "id" r) Json.to_string_value)
    | Error m -> Alcotest.fail ("gave up despite retries: " ^ m)
  done;
  let c = Client.counters s in
  check tbool "transient retries were actually exercised" true
    (c.Client.retried_transient > 0);
  check tint "no give-ups" 0 c.Client.gave_up;
  Client.end_session s

(* ------------------------------------------------------------------ *)
(* Backoff jitter: per-session PRNG reproducibility                    *)
(* ------------------------------------------------------------------ *)

(* The retry schedule must be a pure function of the session's seed:
   equal seeds give equal schedules, interleaved draws from the
   global [Random] state cannot perturb them (sessions own a private
   [Random.State.t]), and every delay respects the configured
   bounds. This pins the chaos-replay contract — per-seed runs are
   bit-reproducible even with concurrent load-generator threads. *)
let test_backoff_jitter () =
  let retry =
    { Client.default_retry with
      Client.base_delay_s = 0.004;
      max_delay_s = 0.25 }
  in
  let schedule ?(noise = false) seed =
    (* No connection is made until the first call, so sessions against
       a nonexistent socket are fine for drawing the schedule. *)
    let s = Client.session ~retry ~seed "/nonexistent.sock" in
    let prev = ref retry.Client.base_delay_s in
    let ds = ref [] in
    for _ = 1 to 16 do
      if noise then ignore (Random.bits ());
      prev := Client.next_backoff s ~prev:!prev;
      ds := !prev :: !ds
    done;
    Client.end_session s;
    List.rev !ds
  in
  let a = schedule 7 in
  check tbool "equal seeds, equal schedules" true (a = schedule 7);
  check tbool "global Random draws cannot perturb" true
    (a = schedule ~noise:true 7);
  check tbool "different seeds, different schedules" true (a <> schedule 8);
  List.iter
    (fun d ->
      check tbool "delay within [base, max]" true
        (d >= retry.Client.base_delay_s && d <= retry.Client.max_delay_s))
    a;
  (* The decorrelated bound itself: one draw never exceeds
     min(max_delay, 3 * previous) when that bound is above base. *)
  let rng = Random.State.make [| 42 |] in
  let prev = ref retry.Client.base_delay_s in
  for _ = 1 to 100 do
    let d = Client.jitter rng retry ~prev:!prev in
    check tbool "decorrelated upper bound" true
      (d <= Float.min retry.Client.max_delay_s
              (Float.max retry.Client.base_delay_s (3.0 *. !prev))
            +. 1e-12);
    prev := d
  done

(* ------------------------------------------------------------------ *)
(* Framing: 1-byte trickle must reassemble, not read as EOF            *)
(* ------------------------------------------------------------------ *)

let test_one_byte_trickle () =
  with_server ~io_timeout:5.0 @@ fun sock _srv ->
  let net = Generators.random_dag ~seed:21 ~nodes:40 () in
  let payload = Dagmap_blif.Blif.write_network net in
  let header =
    Proto.encode_request
      { (Proto.request Proto.Map) with
        Proto.payload = Some (String.length payload) }
  in
  let c = Client.connect ~timeout_s:30.0 sock in
  let whole = header ^ payload in
  String.iter
    (fun ch ->
      Client.send_raw c (String.make 1 ch);
      (* a handful of micro-delays spread over the frame, not one per
         byte — the test must stay fast but still split every read *)
      if Random.int 50 = 0 then Thread.delay 0.002)
    whole;
  let r = Client.read_reply c in
  check tstr "trickled frame maps fine" "ok" (status r);
  check tbool "reply carries a delay" true (num_field "delay" r > 0.0);
  Client.close c

let test_slowloris_header_times_out () =
  with_server ~io_timeout:0.2 @@ fun sock _srv ->
  let c = Client.connect ~timeout_s:10.0 sock in
  (* A header that starts and then stalls must be cut by the
     progress bound, with a structured reply first. *)
  Client.send_raw c "map circ";
  let r = Client.read_reply c in
  check (Alcotest.option tstr) "io_timeout code" (Some "io_timeout") (code r);
  Client.close c

(* ------------------------------------------------------------------ *)
(* Client timeout against a mute server                                *)
(* ------------------------------------------------------------------ *)

let test_client_timeout () =
  let sock = fresh_sock () in
  let listen = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen (Unix.ADDR_UNIX sock);
  Unix.listen listen 4;
  (* Accept and then say nothing, ever. *)
  let mute =
    Thread.create
      (fun () ->
        match Unix.accept listen with
        | fd, _ ->
          Thread.delay 2.0;
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error _ -> ())
      ()
  in
  let finally () =
    (try Unix.close listen with Unix.Unix_error _ -> ());
    (try Sys.remove sock with Sys_error _ -> ());
    Thread.join mute
  in
  Fun.protect ~finally @@ fun () ->
  let c = Client.connect ~timeout_s:0.3 sock in
  let t0 = Clock.now () in
  (match Client.request c (Proto.request Proto.Ping) with
   | _ -> Alcotest.fail "a mute server produced a reply?"
   | exception Client.Timeout -> ());
  check tbool "timed out promptly" true (Clock.since t0 < 1.5);
  Client.close c

(* ------------------------------------------------------------------ *)
(* Idle-connection reaping                                             *)
(* ------------------------------------------------------------------ *)

let test_idle_reaping () =
  with_server ~idle_timeout:0.2 @@ fun sock _srv ->
  let c = Client.connect ~timeout_s:10.0 sock in
  let r = Client.request c (Proto.request Proto.Ping) in
  check tstr "warm-up ping" "ok" (status r);
  Thread.delay 0.8;
  (* The sweeper shut the descriptor down while we sat idle. *)
  check tbool "idle connection was cut" true
    (match Client.request c (Proto.request Proto.Ping) with
     | _ -> false
     | exception (Failure _ | Unix.Unix_error _ | Client.Timeout) -> true);
  Client.close c;
  let st = stats_of sock in
  check tbool "reap counted" true (num_field "idle_reaped" st >= 1.0);
  (* A busy connection must NOT be reaped: a single request slower
     than the idle timeout completes fine. *)
  let c = Client.connect ~timeout_s:10.0 sock in
  let r =
    Client.request c
      { (Proto.request Proto.Map) with Proto.circuit = Some "slow:500" }
  in
  check tstr "slow request outlives the idle timeout" "ok" (status r);
  Client.close c

(* ------------------------------------------------------------------ *)
(* The chaos mix: >= 300 requests under a combined plan                *)
(* ------------------------------------------------------------------ *)

let test_chaos_mix () =
  let faults =
    Faultplan.parse_exn
      "crash_job:0.1,delay_job:300:0.12,drop_conn:0.1,garble_reply:0.1,\
       stall_read:10:0.1,seed:5"
  in
  with_server ~jobs:2 ~queue:16 ~io_timeout:10.0 ~job_budget:0.1 ~faults
  @@ fun sock _srv ->
  (* Fault-free ground truth for every corpus circuit: completed
     replies must agree exactly (delay and area), degraded or not. *)
  let corpus =
    Array.init 6 (fun i ->
        let net =
          Generators.random_dag ~seed:(100 + i) ~inputs:8 ~outputs:6
            ~nodes:(25 + (7 * i)) ()
        in
        Dagmap_blif.Blif.write_network net)
  in
  let expected =
    let db = Matchdb.prepare (Option.get (Libraries.by_name "lib2")) in
    Array.map
      (fun blif ->
        let net = Dagmap_blif.Blif.read_string ~file:"<corpus>" blif in
        let r = Mapper.map Mapper.Dag db (Subject.of_network net) in
        (Netlist.delay r.Mapper.netlist, Netlist.area r.Mapper.netlist))
      corpus
  in
  let close_to a b =
    Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a)
  in
  let requests = 300 in
  let clients = 4 in
  let next = Atomic.make 0 in
  let ok = Atomic.make 0
  and incorrect = Atomic.make 0
  and unexpected = Atomic.make 0
  and resubmitted = Atomic.make 0 in
  let retry = { Client.default_retry with Client.attempts = 12 } in
  let client_loop k =
    let s = Client.session ~timeout_s:10.0 ~retry ~seed:(40 + k) sock in
    let rec serve_one i resubmits =
      let ci = i mod Array.length corpus in
      match
        Client.call s ~payload:corpus.(ci)
          { (Proto.request Proto.Map) with Proto.id = Some (string_of_int i) }
      with
      | Error _ -> Atomic.incr unexpected
      | Ok reply -> (
        match status reply with
        | "ok" ->
          Atomic.incr ok;
          let d, a = expected.(ci) in
          if
            not
              (close_to d (num_field "delay" reply)
              && close_to a (num_field "area" reply))
          then Atomic.incr incorrect
        | "error"
          when (code reply = Some "injected_fault"
               || code reply = Some "watchdog_timeout")
               && resubmits > 0 ->
          Atomic.incr resubmitted;
          serve_one i (resubmits - 1)
        | _ -> Atomic.incr unexpected)
    in
    let rec pump () =
      let i = Atomic.fetch_and_add next 1 in
      if i < requests then begin
        (try serve_one i 25 with _ -> Atomic.incr unexpected);
        pump ()
      end
    in
    pump ();
    Client.end_session s
  in
  let threads = List.init clients (fun k -> Thread.create client_loop k) in
  List.iter Thread.join threads;
  check tint "every request eventually landed correct" requests
    (Atomic.get ok);
  check tint "zero incorrect replies" 0 (Atomic.get incorrect);
  check tint "zero unexpected failures" 0 (Atomic.get unexpected);
  (* The daemon is still alive and the watchdog actually worked: the
     delay_job:300ms faults blow the 100ms budget, so at least one
     pool restart (and during its window, degraded service) must have
     been seen. *)
  let st = stats_of sock in
  check tbool "daemon alive after the storm" true (status st = "ok");
  check tbool ">=1 watchdog restart" true
    (num_field "watchdog_restarts" st >= 1.0);
  check tbool ">=1 degraded reply" true (num_field "degraded" st >= 1.0)

let () =
  Alcotest.run "serve_faults"
    [ ( "faultplan",
        [ Alcotest.test_case "parse/render/decide" `Quick test_plan_parsing ] );
      ( "deadlines",
        [ Alcotest.test_case "queue-wait miss" `Quick test_deadline_queue_wait;
          Alcotest.test_case "mid-payload miss" `Quick
            test_deadline_during_payload ] );
      ( "watchdog",
        [ Alcotest.test_case "restart + degraded + recovery" `Quick
            test_watchdog_restart_and_degraded ] );
      ( "retries",
        [ Alcotest.test_case "drop_conn survived" `Quick
            test_retries_vs_drop_conn;
          Alcotest.test_case "backoff jitter reproducible per seed" `Quick
            test_backoff_jitter ] );
      ( "framing",
        [ Alcotest.test_case "1-byte trickle reassembles" `Quick
            test_one_byte_trickle;
          Alcotest.test_case "slowloris header cut" `Quick
            test_slowloris_header_times_out ] );
      ( "timeouts",
        [ Alcotest.test_case "client timeout vs mute server" `Quick
            test_client_timeout;
          Alcotest.test_case "idle connections reaped" `Quick
            test_idle_reaping ] );
      ( "chaos",
        [ Alcotest.test_case "300-request mixed-fault storm" `Quick
            test_chaos_mix ] ) ]
