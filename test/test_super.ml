(* Supergate enumeration: deterministic generation across domain
   counts, emitted-gate invariants, the never-worse labeling property
   against the base library, and the strict delay win on the
   lib2-style library that motivates the subsystem. *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_circuits
open Dagmap_sim
open Dagmap_super

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* Small bounds keep enumeration sub-second; depth stays 2 (the
   acceptance configuration). *)
let fast_bounds = { Superenum.default_bounds with max_pins = 4; max_size = 3 }

(* Generation is a pure function of (library, bounds): the .sglib
   bytes must not depend on how many domains enumerated, nor on the
   run. *)
let test_deterministic () =
  List.iter
    (fun (lib_name, bounds) ->
      let base = Option.get (Libraries.by_name lib_name) in
      let text jobs = Superlib.to_string (fst (Superlib.make ~bounds ~jobs base)) in
      let reference = text 1 in
      check tbool (lib_name ^ ": generation emits gates") true
        (String.length reference > 0
        && (fst (Superlib.make ~bounds ~jobs:1 base)).Superlib.supergates <> []);
      List.iter
        (fun jobs ->
          check tbool
            (Printf.sprintf "%s: jobs=%d bytes = jobs=1 bytes" lib_name jobs)
            true
            (String.equal reference (text jobs)))
        [ 2; 4 ];
      (* Same run twice: byte-identical too. *)
      check tbool (lib_name ^ ": rerun identical") true
        (String.equal reference (text 1)))
    [ ("minimal", Superenum.default_bounds); ("44-1", fast_bounds) ]

(* Invariants of every emitted supergate. *)
let test_emitted_gates () =
  let base = Libraries.lib44_1_like () in
  let sgl, stats = Superlib.make ~bounds:fast_bounds base in
  check tbool "some considered" true (stats.Superenum.considered > 0);
  check tint "emitted = list length" stats.Superenum.emitted
    (List.length sgl.Superlib.supergates);
  List.iter
    (fun g ->
      let name = g.Gate.gate_name in
      check tbool (name ^ " named sg*") true
        (String.length name > 2 && String.sub name 0 2 = "sg");
      check tbool (name ^ " tagged Super") true (Gate.is_super g);
      check tbool (name ^ " pin count in 2..max_pins") true
        (Gate.num_pins g >= 2
        && Gate.num_pins g <= fast_bounds.Superenum.max_pins);
      check tbool (name ^ " not constant") true (Gate.is_constant g = None);
      check tint (name ^ " full support") (Gate.num_pins g)
        (List.length (Truth.support g.Gate.func));
      (* Delays sit on the 1e-4 grid so genlib text round-trips. *)
      Array.iteri
        (fun i _ ->
          let d = Gate.intrinsic_delay g i in
          check (Alcotest.float 1e-9)
            (Printf.sprintf "%s pin %d delay quantized" name i)
            (Supergate.quantize d) d)
        g.Gate.pins)
    sgl.Superlib.supergates

(* The augmented library's pattern set is a strict superset of the
   base library's, so the labeling DP can only improve: every node's
   optimal arrival with the augmented library is <= the base arrival,
   and the mapped netlist still computes the subject functions. *)
let qc_never_worse =
  let base = Libraries.minimal () in
  let sgl, _ = Superlib.make base in
  let aug = Superlib.augment base sgl in
  let db_base = Matchdb.prepare base in
  let db_aug = Matchdb.prepare aug in
  QCheck.Test.make ~count:20
    ~name:"supergate augmentation never worsens labels (and stays equivalent)"
    QCheck.(make ~print:string_of_int Gen.(int_bound 10_000))
    (fun seed ->
      let net = Generators.random_dag ~seed ~inputs:8 ~outputs:4 ~nodes:80 () in
      let g = Subject.of_network net in
      let n_inputs = List.length (Subject.pi_ids g) in
      let rb = Mapper.map Mapper.Dag db_base g in
      let ra = Mapper.map Mapper.Dag db_aug g in
      let pointwise =
        Array.for_all2
          (fun a b -> a <= b +. 1e-9)
          ra.Mapper.labels rb.Mapper.labels
      in
      let delay_le =
        Netlist.delay ra.Mapper.netlist
        <= Netlist.delay rb.Mapper.netlist +. 1e-9
      in
      let equivalent =
        Equiv.is_equivalent
          (Equiv.compare_sims ~rounds:4 ~n_inputs
             (fun w -> Simulate.subject g w)
             (fun w -> Simulate.netlist ra.Mapper.netlist w))
      in
      pointwise && delay_le && equivalent)

(* The acceptance configuration: a depth-2 library generated from
   lib2 must strictly beat base lib2 on at least two bench circuits,
   with equivalent netlists, and the mapper must report supergate
   usage. *)
let test_strict_improvement_lib2 () =
  let base = Libraries.lib2_like () in
  let sgl, _ = Superlib.make ~bounds:fast_bounds ~jobs:2 base in
  let aug = Superlib.augment base sgl in
  let db_base = Matchdb.prepare base in
  let db_aug = Matchdb.prepare aug in
  let strict_wins = ref 0 in
  List.iter
    (fun (cname, net) ->
      let g = Subject.of_network net in
      let n_inputs = List.length (Subject.pi_ids g) in
      let rb = Mapper.map Mapper.Dag db_base g in
      let ra = Mapper.map Mapper.Dag db_aug g in
      let db = Netlist.delay rb.Mapper.netlist in
      let da = Netlist.delay ra.Mapper.netlist in
      check tbool (cname ^ ": augmented never worse") true (da <= db +. 1e-9);
      check tbool (cname ^ ": augmented netlist equivalent") true
        (Equiv.is_equivalent
           (Equiv.compare_sims ~rounds:6 ~n_inputs
              (fun w -> Simulate.subject g w)
              (fun w -> Simulate.netlist ra.Mapper.netlist w)));
      if da < db -. 1e-9 then begin
        incr strict_wins;
        (* A strict win must come from supergates actually used. *)
        check tbool (cname ^ ": supergates used") true
          (ra.Mapper.run.Mapper.super_gates_used > 0);
        check tbool (cname ^ ": supergate matches tried") true
          (ra.Mapper.run.Mapper.super_matches_tried > 0)
      end)
    [ ("cla16", Generators.carry_lookahead_adder 16);
      ("ks16", Generators.kogge_stone_adder 16);
      ("mult4", Generators.array_multiplier 4) ];
  check tbool "strictly lower delay on >= 2 circuits" true (!strict_wins >= 2)

(* Supergate stats are zero when mapping with a plain library. *)
let test_no_super_stats_on_base () =
  let g = Subject.of_network (Generators.ripple_adder 8) in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let r = Mapper.map Mapper.Dag db g in
  check tint "no supergate matches" 0 r.Mapper.run.Mapper.super_matches_tried;
  check tint "no supergate instances" 0 r.Mapper.run.Mapper.super_gates_used

(* Parallel mapping agrees with sequential on an augmented library
   (supergates are ordinary gates to the whole pipeline). *)
let test_parmap_agrees_on_augmented () =
  let base = Libraries.lib44_1_like () in
  let sgl, _ = Superlib.make ~bounds:fast_bounds base in
  let db = Matchdb.prepare (Superlib.augment base sgl) in
  let g = Subject.of_network (Generators.kogge_stone_adder 16) in
  let seq = Mapper.map Mapper.Dag db g in
  List.iter
    (fun jobs ->
      let par, _ = Parmap.map ~jobs Mapper.Dag db g in
      check tbool
        (Printf.sprintf "jobs=%d labels identical" jobs)
        true
        (seq.Mapper.labels = par.Mapper.labels);
      check tint
        (Printf.sprintf "jobs=%d super usage identical" jobs)
        seq.Mapper.run.Mapper.super_gates_used
        par.Mapper.run.Mapper.super_gates_used)
    [ 1; 2; 4 ]

let () =
  Alcotest.run "super"
    [ ( "determinism",
        [ Alcotest.test_case "bytes identical, jobs 1/2/4" `Quick
            test_deterministic ] );
      ( "gates",
        [ Alcotest.test_case "emitted invariants" `Quick test_emitted_gates;
          Alcotest.test_case "base maps report zero" `Quick
            test_no_super_stats_on_base ] );
      ( "mapping",
        [ QCheck_alcotest.to_alcotest qc_never_worse;
          Alcotest.test_case "strict lib2 win" `Quick
            test_strict_improvement_lib2;
          Alcotest.test_case "parmap agreement" `Quick
            test_parmap_agrees_on_augmented ] ) ]
