(* Cut enumeration, Boolean matching, and the cut-based mapper. *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_sim
open Dagmap_circuits
open Dagmap_cutmap

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let small_graphs () =
  [ ("adder6", Subject.of_network (Generators.ripple_adder 6));
    ("parity8", Subject.of_network (Generators.parity 8));
    ("rand", Subject.of_network
       (Generators.random_dag ~seed:77 ~inputs:8 ~outputs:4 ~nodes:60 ())) ]

(* --- cut enumeration ------------------------------------------------ *)

let test_cut_validity () =
  List.iter
    (fun (name, g) ->
      let cuts = Cuts.enumerate ~k:4 ~priority:8 g in
      let total = ref 0 in
      Array.iteri
        (fun node node_cuts ->
          List.iter
            (fun c ->
              incr total;
              check tbool
                (Printf.sprintf "%s node %d: cut width" name node)
                true
                (Array.length c.Cuts.leaves <= 4);
              (* Leaves are sorted and distinct. *)
              let l = Array.to_list c.Cuts.leaves in
              check tbool "sorted distinct" true (List.sort_uniq compare l = l);
              if not (Cuts.is_trivial c) then
                check tbool
                  (Printf.sprintf "%s node %d: cut function correct" name node)
                  true (Cuts.check g node c))
            node_cuts)
        cuts;
      check tbool "enumerated something" true (!total > Subject.num_nodes g))
    (small_graphs ())

let test_trivial_cut_present () =
  let _, g = List.hd (small_graphs ()) in
  let cuts = Cuts.enumerate g in
  Array.iteri
    (fun node node_cuts ->
      check tbool
        (Printf.sprintf "node %d has its trivial cut" node)
        true
        (List.exists
           (fun c -> c.Cuts.leaves = [| node |] && Cuts.is_trivial c)
           node_cuts))
    cuts

let test_priority_bound () =
  let _, g = List.nth (small_graphs ()) 2 in
  let cuts = Cuts.enumerate ~k:4 ~priority:3 g in
  Array.iter
    (fun node_cuts ->
      (* priority non-trivial cuts + trivial + possibly the fanin
         fallback. *)
      check tbool "bounded" true (List.length node_cuts <= 5))
    cuts

let test_cut_cone () =
  (* In an inverter chain, the cut at depth d covers d nodes. *)
  let b = Subject.Builder.create () in
  let x = Subject.Builder.pi b "x" in
  let i1 = Subject.Builder.raw_inv b x in
  let i2 = Subject.Builder.raw_inv b i1 in
  let i3 = Subject.Builder.raw_inv b i2 in
  Subject.Builder.output b "o" i3;
  let g = Subject.Builder.finish b in
  let cut = { Cuts.leaves = [| x |]; func = Truth.lognot (Truth.var 1 0); depth = 0 } in
  check tbool "cut checks" true (Cuts.check g i3 cut);
  check tint "cone size" 3 (List.length (Cuts.cut_cone g i3 cut))

(* --- Boolean matching ------------------------------------------------ *)

let test_lookup_nand2 () =
  let db = Boolean_match.prepare (Libraries.lib44_1_like ()) in
  let nand2 = Truth.lognand (Truth.var 2 0) (Truth.var 2 1) in
  let entries = Boolean_match.lookup db nand2 in
  check tbool "nand2 found" true
    (List.exists
       (fun e -> e.Boolean_match.gate.Gate.gate_name = "nand2")
       entries);
  (* 44-1 has no AND gate. *)
  let and2 = Truth.logand (Truth.var 2 0) (Truth.var 2 1) in
  check tint "and2 not found in 44-1" 0
    (List.length (Boolean_match.lookup db and2))

let test_lookup_permutation_wiring () =
  (* An asymmetric gate must be found under both input orders with
     correct wiring. *)
  let mux =
    Gate.make ~name:"mux" ~area:4.0
      ~pins:
        [| Gate.simple_pin ~delay:2.0 "s"; Gate.simple_pin ~delay:1.0 "a";
           Gate.simple_pin ~delay:1.0 "b" |]
      Bexpr.(or2 (and2 (var 0) (var 1)) (and2 (not_ (var 0)) (var 2)))
  in
  let lib = Libraries.make "muxlib" [ mux ] in
  let db = Boolean_match.prepare lib in
  (* Look up the same function with inputs permuted: s at position 2. *)
  let f =
    (* F(x0,x1,x2) = mux with s=x2, a=x0, b=x1 *)
    Truth.logor
      (Truth.logand (Truth.var 3 2) (Truth.var 3 0))
      (Truth.logand (Truth.lognot (Truth.var 3 2)) (Truth.var 3 1))
  in
  match Boolean_match.lookup db f with
  | [ e ] ->
    (* input 2 must connect to pin 0 (s). *)
    check tint "s wiring" 0 e.Boolean_match.pin_of_input.(2);
    check tint "a wiring" 1 e.Boolean_match.pin_of_input.(0);
    check tint "b wiring" 2 e.Boolean_match.pin_of_input.(1)
  | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)

let test_max_arity () =
  let db = Boolean_match.prepare (Libraries.lib2_like ()) in
  check tint "lib2 max arity" 4 (Boolean_match.max_arity db);
  let db3 = Boolean_match.prepare (Libraries.lib44_3_like ()) in
  check tint "44-3 max matchable arity" 6 (Boolean_match.max_arity db3)

(* --- the mapper ------------------------------------------------------ *)

let libs () = List.filter_map Libraries.by_name [ "minimal"; "44-1"; "lib2" ]

let test_mapper_equivalence () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun lib ->
          let db = Boolean_match.prepare lib in
          let r = Cut_mapper.map db g in
          Netlist.validate r.Cut_mapper.netlist;
          let verdict =
            Equiv.compare_sims ~rounds:6
              ~n_inputs:(List.length (Subject.pi_ids g))
              (fun words -> Simulate.subject g words)
              (fun words -> Simulate.netlist r.Cut_mapper.netlist words)
          in
          if not (Equiv.is_equivalent verdict) then
            Alcotest.failf "%s/%s: %s" name lib.Libraries.lib_name
              (Format.asprintf "%a" Equiv.pp_verdict verdict))
        (libs ()))
    (small_graphs ())

let test_mapper_on_redundant_logic () =
  (* nand(x, inv x) = constant 1: the cut function folds and the node
     becomes a constant driver. *)
  let b = Subject.Builder.create () in
  let x = Subject.Builder.pi b "x" in
  let ix = Subject.Builder.inv b x in
  let const1 = Subject.Builder.nand b x ix in
  Subject.Builder.output b "o" const1;
  let g = Subject.Builder.finish b in
  let db = Boolean_match.prepare (Libraries.minimal ()) in
  let r = Cut_mapper.map db g in
  (match List.assoc "o" r.Cut_mapper.netlist.Netlist.outputs with
   | Netlist.D_const true -> ()
   | _ -> Alcotest.fail "redundant node should fold to constant true");
  (* And it evaluates correctly. *)
  List.iter
    (fun v ->
      check tbool "constant one" true
        (List.assoc "o" (Netlist.eval r.Cut_mapper.netlist [| v |])))
    [ false; true ]

let test_labels_bound_netlist_delay () =
  List.iter
    (fun (name, g) ->
      let db = Boolean_match.prepare (Libraries.lib2_like ()) in
      let r = Cut_mapper.map db g in
      let worst_label =
        List.fold_left
          (fun acc o -> Float.max acc r.Cut_mapper.labels.(o.Subject.out_node))
          0.0 g.Subject.outputs
      in
      check (Alcotest.float 1e-6)
        (Printf.sprintf "%s: delay equals worst label" name)
        worst_label
        (Netlist.delay r.Cut_mapper.netlist))
    (small_graphs ())

let test_quality_converges_to_structural () =
  (* With an ample cut budget on a small-arity library, Boolean
     matching must be at least as good as structural matching (it
     sees every realization the patterns encode, independent of
     decomposition shape). *)
  let g = Subject.of_network (Generators.carry_lookahead_adder 12) in
  List.iter
    (fun lib ->
      let bdb = Boolean_match.prepare lib in
      let pdb = Matchdb.prepare lib in
      let dc = Netlist.delay (Cut_mapper.map ~priority:200 bdb g).Cut_mapper.netlist in
      let dp = Netlist.delay (Mapper.map Mapper.Dag pdb g).Mapper.netlist in
      check tbool
        (Printf.sprintf "%s: cut (%.2f) <= structural (%.2f) + eps"
           lib.Libraries.lib_name dc dp)
        true
        (dc <= dp +. 1e-6))
    [ Libraries.lib44_1_like (); Libraries.lib2_like () ]

let test_matched_nodes_counted () =
  let _, g = List.hd (small_graphs ()) in
  let db = Boolean_match.prepare (Libraries.lib2_like ()) in
  let r = Cut_mapper.map db g in
  check tbool "matched nodes positive" true (r.Cut_mapper.matched_nodes > 0)

(* --- arrival-time handling ------------------------------------------- *)

let test_negative_pi_arrivals () =
  (* Regression: choice_arrival and the unmatched-cut scorer used to
     fold with [ref 0.0], silently clamping negative leaf labels; and
     [map] hard-coded PI labels to 0.0. A uniform early arrival must
     shift every label through the whole DP. *)
  let b = Subject.Builder.create () in
  let x = Subject.Builder.pi b "x" in
  let y = Subject.Builder.pi b "y" in
  let n = Subject.Builder.nand b x y in
  Subject.Builder.output b "o" n;
  let g = Subject.Builder.finish b in
  let db = Boolean_match.prepare (Libraries.minimal ()) in
  let base = Cut_mapper.map db g in
  let r = Cut_mapper.map ~pi_arrival:(fun _ -> -100.0) db g in
  check (Alcotest.float 1e-9) "shifted by the early arrival"
    (base.Cut_mapper.labels.(n) -. 100.0)
    r.Cut_mapper.labels.(n);
  check tbool "label goes negative, not clamped" true
    (r.Cut_mapper.labels.(n) < 0.0)

let test_pi_arrival_uniform_shift () =
  let _, g = List.hd (small_graphs ()) in
  let db = Boolean_match.prepare (Libraries.lib2_like ()) in
  let base = Cut_mapper.map db g in
  let shifted = Cut_mapper.map ~pi_arrival:(fun _ -> -2.0) db g in
  List.iter
    (fun o ->
      check (Alcotest.float 1e-9) ("output " ^ o.Subject.out_name)
        (base.Cut_mapper.labels.(o.Subject.out_node) -. 2.0)
        shifted.Cut_mapper.labels.(o.Subject.out_node))
    g.Subject.outputs

(* --- fallback retention ---------------------------------------------- *)

let test_retain_fallback_exact () =
  (* A mere subset-of-fanins cut in [kept] (here a single trivial
     fanin cut) must not satisfy the invariant: the exact direct-fanin
     cut is appended from [all]. The old inline check in the mapper
     accepted the subset and dropped the fanin cut. *)
  let all = [ [| 1; 2 |]; [| 1 |]; [| 2 |] ] in
  let kept = [ [| 1 |] ] in
  let r = Cuts.retain_fallback ~fanins:[ 2; 1 ] ~leaves_of:Fun.id ~all kept in
  check tbool "exact fanin cut appended" true (List.mem [| 1; 2 |] r)

let test_retain_fallback_shrunk () =
  (* The exact fanin cut {1,2} shrank out of [all]: its support-shrunk
     descendant (a strict subset of the fanin leaves) is retained
     instead — the path the mapper's old inline fallback missed. *)
  let all = [ [| 3; 4 |]; [| 1 |] ] in
  let kept = [ [| 3; 4 |] ] in
  let r = Cuts.retain_fallback ~fanins:[ 1; 2 ] ~leaves_of:Fun.id ~all kept in
  check tbool "shrunk descendant appended" true (List.mem [| 1 |] r);
  check tint "exactly one appended" (List.length kept + 1) (List.length r)

let test_retain_fallback_present () =
  let all = [ [| 1; 2 |]; [| 1 |] ] in
  let kept = [ [| 1; 2 |] ] in
  check tbool "unchanged when the fanin cut is kept" true
    (Cuts.retain_fallback ~fanins:[ 1; 2 ] ~leaves_of:Fun.id ~all kept == kept)

(* --- index sharing and work accounting ------------------------------- *)

let test_matchdb_boolean_shared () =
  let pdb = Matchdb.prepare (Libraries.lib2_like ()) in
  let b1 = Matchdb.boolean pdb in
  let b2 = Matchdb.boolean pdb in
  check tbool "one Boolean index per prepared library" true (b1 == b2);
  check tbool "usable" true (Boolean_match.num_entries b1 > 0)

let test_matches_evaluated_counted () =
  let _, g = List.hd (small_graphs ()) in
  let db = Boolean_match.prepare (Libraries.lib2_like ()) in
  let pruned = Cut_mapper.map ~priority:4 db g in
  let full = Cut_mapper.map ~priority:100_000 db g in
  check tbool "evaluations counted" true
    (pruned.Cut_mapper.matches_evaluated > 0);
  check tbool "priority pruning reduces matcher work" true
    (pruned.Cut_mapper.matches_evaluated < full.Cut_mapper.matches_evaluated)

let qc_cut_mapping_equivalence =
  QCheck.Test.make ~count:15 ~name:"random circuit cut-mapping equivalence"
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      let net = Generators.random_dag ~seed ~inputs:8 ~outputs:4 ~nodes:60 () in
      let g = Subject.of_network net in
      let db = Boolean_match.prepare (Libraries.lib2_like ()) in
      let r = Cut_mapper.map db g in
      Equiv.is_equivalent
        (Equiv.compare_sims ~rounds:3
           ~n_inputs:(List.length (Subject.pi_ids g))
           (fun words -> Simulate.subject g words)
           (fun words -> Simulate.netlist r.Cut_mapper.netlist words)))

let qc_cuts_valid_in_circuit =
  QCheck.Test.make ~count:10 ~name:"random circuit cut functions valid"
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      let net = Generators.random_dag ~seed ~inputs:7 ~outputs:3 ~nodes:35 () in
      let g = Subject.of_network net in
      let cuts = Cuts.enumerate ~k:4 ~priority:6 g in
      let ok = ref true in
      Array.iteri
        (fun node node_cuts ->
          List.iter
            (fun c ->
              if not (Cuts.is_trivial c) && not (Cuts.check ~rounds:4 g node c)
              then ok := false)
            node_cuts)
        cuts;
      !ok)

let () =
  Alcotest.run "cutmap"
    [ ( "cuts",
        [ Alcotest.test_case "validity" `Quick test_cut_validity;
          Alcotest.test_case "trivial present" `Quick test_trivial_cut_present;
          Alcotest.test_case "priority bound" `Quick test_priority_bound;
          Alcotest.test_case "cut cone" `Quick test_cut_cone ] );
      ( "boolean matching",
        [ Alcotest.test_case "nand2 lookup" `Quick test_lookup_nand2;
          Alcotest.test_case "permutation wiring" `Quick
            test_lookup_permutation_wiring;
          Alcotest.test_case "max arity" `Quick test_max_arity ] );
      ( "mapper",
        [ Alcotest.test_case "equivalence" `Quick test_mapper_equivalence;
          Alcotest.test_case "redundant logic" `Quick
            test_mapper_on_redundant_logic;
          Alcotest.test_case "labels = delay" `Quick
            test_labels_bound_netlist_delay;
          Alcotest.test_case "converges to structural" `Quick
            test_quality_converges_to_structural;
          Alcotest.test_case "matched count" `Quick test_matched_nodes_counted ] );
      ( "arrivals",
        [ Alcotest.test_case "negative PI arrivals" `Quick
            test_negative_pi_arrivals;
          Alcotest.test_case "uniform shift" `Quick
            test_pi_arrival_uniform_shift ] );
      ( "fallback retention",
        [ Alcotest.test_case "exact fanin cut" `Quick test_retain_fallback_exact;
          Alcotest.test_case "shrunk descendant" `Quick
            test_retain_fallback_shrunk;
          Alcotest.test_case "present untouched" `Quick
            test_retain_fallback_present ] );
      ( "index",
        [ Alcotest.test_case "matchdb shares one index" `Quick
            test_matchdb_boolean_shared;
          Alcotest.test_case "matches evaluated" `Quick
            test_matches_evaluated_counted ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qc_cut_mapping_equivalence;
          QCheck_alcotest.to_alcotest qc_cuts_valid_in_circuit ] ) ]
