(* Parallel labeling: bit-identical results across domain counts,
   equivalence of the mapped netlist, stats sanity, and exception
   propagation out of the worker pool. *)

open Dagmap_obs
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_sim
open Dagmap_circuits

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let modes = [ Mapper.Tree; Mapper.Dag; Mapper.Dag_extended ]
let jobs_list = [ 1; 2; 4 ]

let libs () =
  [ Libraries.minimal (); Libraries.lib44_1_like (); Libraries.lib2_like () ]

(* Label arrays, best-match arrays and the covered netlist must be
   bit-identical to the sequential mapper for every domain count. *)
let same_best (b1 : Matcher.mtch option array) (b2 : Matcher.mtch option array) =
  Array.length b1 = Array.length b2
  && Array.for_all2
       (fun m1 m2 ->
         match m1, m2 with
         | None, None -> true
         | Some m1, Some m2 ->
           m1.Matcher.pattern == m2.Matcher.pattern
           && m1.Matcher.pins = m2.Matcher.pins
           && m1.Matcher.covered = m2.Matcher.covered
         | _ -> false)
       b1 b2

let check_identical name g db mode jobs =
  let seq = Mapper.map mode db g in
  let par, stats = Parmap.map ~jobs mode db g in
  check tbool
    (Printf.sprintf "%s/%s jobs=%d labels" name (Mapper.mode_name mode) jobs)
    true
    (seq.Mapper.labels = par.Mapper.labels);
  check tbool
    (Printf.sprintf "%s/%s jobs=%d best" name (Mapper.mode_name mode) jobs)
    true
    (same_best seq.Mapper.best par.Mapper.best);
  check (Alcotest.float 0.0)
    (Printf.sprintf "%s/%s jobs=%d delay" name (Mapper.mode_name mode) jobs)
    (Mapper.optimal_delay seq) (Mapper.optimal_delay par);
  check tint
    (Printf.sprintf "%s/%s jobs=%d gates" name (Mapper.mode_name mode) jobs)
    (Netlist.num_gates seq.Mapper.netlist)
    (Netlist.num_gates par.Mapper.netlist);
  check tint
    (Printf.sprintf "%s/%s jobs=%d matches tried" name (Mapper.mode_name mode)
       jobs)
    seq.Mapper.run.Mapper.matches_tried par.Mapper.run.Mapper.matches_tried;
  check tint
    (Printf.sprintf "%s/%s jobs=%d domains" name (Mapper.mode_name mode) jobs)
    jobs stats.Parmap.domains;
  par

let test_fixed_circuits () =
  List.iter
    (fun (cname, net) ->
      let g = Subject.of_network net in
      List.iter
        (fun lib ->
          let db = Matchdb.prepare lib in
          List.iter
            (fun mode ->
              List.iter
                (fun jobs ->
                  ignore
                    (check_identical
                       (Printf.sprintf "%s/%s" cname lib.Libraries.lib_name)
                       g db mode jobs))
                jobs_list)
            modes)
        (libs ()))
    [ ("adder16", Generators.ripple_adder 16);
      ("ks16", Generators.kogge_stone_adder 16);
      ("cla16", Generators.carry_lookahead_adder 16);
      ("mult4", Generators.array_multiplier 4) ]

(* QCheck: on random circuits, every domain count reproduces the
   sequential result exactly, and the mapped netlist simulates
   identically to the subject graph. *)
let qc_parallel_identical =
  QCheck.Test.make ~count:15 ~name:"parallel = sequential on random circuits"
    QCheck.(make ~print:string_of_int Gen.(int_bound 10_000))
    (fun seed ->
      let net =
        Generators.random_dag ~seed ~inputs:8 ~outputs:4 ~nodes:70 ()
      in
      let g = Subject.of_network net in
      let n_inputs = List.length (Subject.pi_ids g) in
      let db = Matchdb.prepare (Libraries.lib2_like ()) in
      List.for_all
        (fun mode ->
          let seq = Mapper.map mode db g in
          List.for_all
            (fun jobs ->
              let par, _ = Parmap.map ~jobs mode db g in
              seq.Mapper.labels = par.Mapper.labels
              && Mapper.optimal_delay seq = Mapper.optimal_delay par
              && Equiv.is_equivalent
                   (Equiv.compare_sims ~rounds:4 ~n_inputs
                      (fun words -> Simulate.subject g words)
                      (fun words -> Simulate.netlist par.Mapper.netlist words)))
            jobs_list)
        modes)

(* Cache-disabled parallel runs must agree too (caching and
   parallelism are independent knobs). *)
let test_no_cache_parallel () =
  let g = Subject.of_network (Generators.kogge_stone_adder 16) in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let seq = Mapper.map ~cache:false Mapper.Dag db g in
  List.iter
    (fun jobs ->
      let par, _ = Parmap.map ~jobs ~cache:false Mapper.Dag db g in
      check tbool
        (Printf.sprintf "no-cache jobs=%d labels" jobs)
        true
        (seq.Mapper.labels = par.Mapper.labels);
      check tint
        (Printf.sprintf "no-cache jobs=%d lookups" jobs)
        0 par.Mapper.run.Mapper.cache_lookups)
    jobs_list

let test_par_stats () =
  let g = Subject.of_network (Generators.array_multiplier 6) in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let _, stats = Parmap.map ~jobs:2 Mapper.Dag db g in
  let levels = Subject.levels g in
  let depth = Array.fold_left max 0 levels in
  check tint "levels = depth + 1" (depth + 1) stats.Parmap.levels;
  check tint "one timing per level" stats.Parmap.levels
    (Array.length stats.Parmap.level_seconds);
  check tbool "timings nonnegative" true
    (Array.for_all (fun s -> s >= 0.0) stats.Parmap.level_seconds);
  let by_level = Subject.by_level g in
  let widest = Array.fold_left (fun w l -> max w (Array.length l)) 0 by_level in
  check tint "widest level" widest stats.Parmap.widest_level;
  check tbool "recommended_jobs >= 1" true (Parmap.recommended_jobs () >= 1)

(* Phase timers come from the shared monotonic clock. The stats must
   be non-negative and the recorded phases must account for the wall
   time of the whole call — under 4 domains too, where the old
   [Sys.time] process-CPU timers overstated phases by up to 4x. *)
let test_stats_monotonic_timers () =
  let g = Subject.of_network (Generators.array_multiplier 6) in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let check_run name total (s : Mapper.stats) =
    check tbool (name ^ ": label >= 0") true (s.Mapper.label_seconds >= 0.0);
    check tbool (name ^ ": cover >= 0") true (s.Mapper.cover_seconds >= 0.0);
    let phases = s.Mapper.label_seconds +. s.Mapper.cover_seconds in
    check tbool (name ^ ": phases within total") true (phases <= total +. 1e-3);
    (* Everything outside label+cover is bookkeeping; give pool spawn
       generous room without letting a CPU-clock regression (which
       would multiply phase time by the domain count) slip through. *)
    check tbool (name ^ ": phases account for total") true
      (total -. phases <= 0.5)
  in
  let seq, t_seq = Clock.time (fun () -> Mapper.map Mapper.Dag db g) in
  check_run "seq" t_seq seq.Mapper.run;
  let (par, pstats), t_par =
    Clock.time (fun () -> Parmap.map ~jobs:4 Mapper.Dag db g)
  in
  check_run "jobs=4" t_par par.Mapper.run;
  check tbool "level sum within label time" true
    (Array.fold_left ( +. ) 0.0 pstats.Parmap.level_seconds
    <= par.Mapper.run.Mapper.label_seconds +. 1e-3);
  check tbool "parallel_levels <= levels" true
    (pstats.Parmap.parallel_levels >= 0
    && pstats.Parmap.parallel_levels <= pstats.Parmap.levels);
  check tbool "chunks cover parallel levels" true
    (pstats.Parmap.chunks >= pstats.Parmap.parallel_levels)

(* ------------------------------------------------------------------ *)
(* Work-stealing granularity (chunk_min regression)                    *)
(* ------------------------------------------------------------------ *)

(* The old chunk policy [max 1 (len / (jobs * 8))] degenerated to
   1-node chunks on any level under 8 * jobs nodes: every worker
   hammered the atomic cursor once per node. Levels too narrow to
   give each worker a [chunk_min]-sized slice must now run on the
   calling domain with no cursor traffic at all, and chunks on
   genuinely wide levels never shrink below [chunk_min]. Scheduling
   never changes labels, which each case re-asserts. *)

let test_chunking_small_levels () =
  (* 20 NANDs over 10 shared PIs: a 10-wide PI level and a 20-wide
     NAND level — the NAND level is over the old 4 * jobs = 16
     fan-out threshold for jobs = 4, but under one minimum-size chunk
     per worker. Every level must stay sequential. *)
  let bld = Subject.Builder.create () in
  let pis =
    Array.init 10 (fun i -> Subject.Builder.pi bld (Printf.sprintf "a%d" i))
  in
  for i = 0 to 19 do
    let a = pis.(i mod 10) and b = pis.((i * 3 + 1) mod 10) in
    Subject.Builder.output bld
      (Printf.sprintf "o%d" i)
      (Subject.Builder.raw_nand bld a b)
  done;
  let g = Subject.Builder.finish bld in
  let db = Matchdb.prepare (Libraries.minimal ()) in
  let seq = Mapper.map Mapper.Dag db g in
  let par, stats = Parmap.map ~jobs:4 Mapper.Dag db g in
  check tbool "small-level labels identical" true
    (seq.Mapper.labels = par.Mapper.labels);
  check tbool "width 20 < jobs * chunk_min" true (20 < 4 * Parmap.chunk_min);
  check tint "small level stays sequential" 0 stats.Parmap.parallel_levels;
  check tint "no cursor traffic on small levels" 0 stats.Parmap.chunks

let test_chunking_deep_chain () =
  (* A deep chain is nothing but narrow levels; the cursor must never
     be touched, so chunks stay at 0 — far below the node count the
     old policy could reach. *)
  let g = Subject.of_network (Generators.nand_chain 5000) in
  let db = Matchdb.prepare (Libraries.minimal ()) in
  let seq = Mapper.map Mapper.Dag db g in
  let par, stats = Parmap.map ~jobs:4 Mapper.Dag db g in
  check tbool "chain labels identical" true
    (seq.Mapper.labels = par.Mapper.labels);
  check tint "deep chain: no parallel levels" 0 stats.Parmap.parallel_levels;
  check tint "deep chain: no chunks" 0 stats.Parmap.chunks;
  check tbool "chunks below node count" true
    (stats.Parmap.chunks <= Subject.num_nodes g)

let test_chunking_wide_levels () =
  (* Wide fronts still fan out, but each cursor claim hands out at
     least chunk_min nodes: total claims are bounded by
     nodes / chunk_min plus one tail chunk per parallel level. *)
  let g = Subject.of_network (Generators.array_multiplier 8) in
  let db = Matchdb.prepare (Libraries.minimal ()) in
  let seq = Mapper.map Mapper.Dag db g in
  let par, stats = Parmap.map ~jobs:2 Mapper.Dag db g in
  check tbool "wide labels identical" true
    (seq.Mapper.labels = par.Mapper.labels);
  check tbool "wide levels do fan out" true (stats.Parmap.parallel_levels > 0);
  check tbool "chunks bounded by nodes / chunk_min" true
    (stats.Parmap.chunks
    <= (Subject.num_nodes g / Parmap.chunk_min) + stats.Parmap.parallel_levels)

(* pi_arrival flows through the parallel labeler unchanged. *)
let test_pi_arrival () =
  let g = Subject.of_network (Generators.carry_lookahead_adder 8) in
  let db = Matchdb.prepare (Libraries.lib44_1_like ()) in
  let arr pi = float_of_int (pi mod 5) *. 0.7 in
  let seq_labels, seq_best, _ = Mapper.label ~pi_arrival:arr Mapper.Dag db g in
  List.iter
    (fun jobs ->
      let labels, best, _, _ =
        Parmap.label ~jobs ~pi_arrival:arr Mapper.Dag db g
      in
      check tbool
        (Printf.sprintf "pi_arrival jobs=%d labels" jobs)
        true (seq_labels = labels);
      check tbool
        (Printf.sprintf "pi_arrival jobs=%d best" jobs)
        true
        (same_best seq_best best))
    jobs_list

(* An Unmappable raised inside a worker domain must surface on the
   calling domain. The level is made wide enough (16 NANDs) that a
   2-domain run really fans it out rather than staying sequential. *)
let test_unmappable_propagates () =
  let inv_only =
    Libraries.make "invonly"
      (Genlib_parser.parse_string
         "GATE inv 1 O=!a; PIN a INV 1 999 1.0 0.1 1.0 0.1")
  in
  let bld = Subject.Builder.create () in
  for i = 0 to 15 do
    let a = Subject.Builder.pi bld (Printf.sprintf "a%d" i) in
    let b = Subject.Builder.pi bld (Printf.sprintf "b%d" i) in
    let n = Subject.Builder.raw_nand bld a b in
    Subject.Builder.output bld (Printf.sprintf "o%d" i) n
  done;
  let g = Subject.Builder.finish bld in
  let db = Matchdb.prepare inv_only in
  List.iter
    (fun jobs ->
      check tbool
        (Printf.sprintf "unmappable raises, jobs=%d" jobs)
        true
        (match Parmap.label ~jobs Mapper.Dag db g with
         | _ -> false
         | exception Mapper.Unmappable _ -> true))
    [ 1; 2; 4 ]

(* Service mode and pool lifecycle: spinning a pool up and down many
   times must not leak domains (a leak hits the ~128-domain runtime
   limit well before 100 iterations), drain must be quiescence not
   shutdown, and shutdown must be idempotent. *)
let test_pool_lifecycle () =
  for round = 1 to 100 do
    let pool = Parmap.make_pool 3 in
    check tint
      (Printf.sprintf "round %d pool size" round)
      3 (Parmap.pool_size pool);
    let hits = Atomic.make 0 in
    for _ = 1 to 8 do
      check tbool "submit accepted" true
        (Parmap.submit pool (fun () -> Atomic.incr hits))
    done;
    Parmap.drain pool;
    check tint (Printf.sprintf "round %d jobs ran" round) 8 (Atomic.get hits);
    (* The pool is reusable after drain — barrier mode still works. *)
    let barrier_hits = Atomic.make 0 in
    Parmap.run_pool pool (fun _ -> Atomic.incr barrier_hits);
    check tint (Printf.sprintf "round %d barrier" round) 4
      (Atomic.get barrier_hits);
    Parmap.shutdown_pool pool;
    (* Idempotent: a second (and third) shutdown is a no-op, not a
       double Domain.join. *)
    Parmap.shutdown_pool pool;
    Parmap.shutdown_pool pool;
    check tbool
      (Printf.sprintf "round %d submit after shutdown" round)
      false
      (Parmap.submit pool (fun () -> ()))
  done

(* Exceptions escaping a submitted job are swallowed at the job
   boundary: the worker survives and keeps serving. *)
let test_pool_job_isolation () =
  let pool = Parmap.make_pool 2 in
  let ok = Atomic.make 0 in
  for _ = 1 to 20 do
    ignore (Parmap.submit pool (fun () -> failwith "job bug"))
  done;
  for _ = 1 to 20 do
    ignore (Parmap.submit pool (fun () -> Atomic.incr ok))
  done;
  Parmap.drain pool;
  check tint "jobs after failing jobs still run" 20 (Atomic.get ok);
  Parmap.shutdown_pool pool

(* Drain with nothing submitted must not block, including on a
   size-0 pool (submit refuses, drain is vacuous). *)
let test_pool_empty_drain () =
  let pool = Parmap.make_pool 1 in
  Parmap.drain pool;
  Parmap.drain pool;
  Parmap.shutdown_pool pool;
  let zero = Parmap.make_pool 0 in
  check tbool "size-0 pool refuses jobs" false
    (Parmap.submit zero (fun () -> ()));
  Parmap.drain zero;
  Parmap.shutdown_pool zero

let () =
  Alcotest.run "parmap"
    [ ( "identical",
        [ Alcotest.test_case "fixed circuits, jobs 1/2/4" `Quick
            test_fixed_circuits;
          QCheck_alcotest.to_alcotest qc_parallel_identical;
          Alcotest.test_case "cache off" `Quick test_no_cache_parallel ] );
      ( "stats",
        [ Alcotest.test_case "par_stats shape" `Quick test_par_stats;
          Alcotest.test_case "monotonic phase timers" `Quick
            test_stats_monotonic_timers;
          Alcotest.test_case "pi_arrival passthrough" `Quick test_pi_arrival ] );
      ( "chunking",
        [ Alcotest.test_case "narrow level stays sequential" `Quick
            test_chunking_small_levels;
          Alcotest.test_case "deep chain: zero chunks" `Quick
            test_chunking_deep_chain;
          Alcotest.test_case "wide levels: chunk_min floor" `Quick
            test_chunking_wide_levels ] );
      ( "errors",
        [ Alcotest.test_case "Unmappable propagates" `Quick
            test_unmappable_propagates ] );
      ( "pool",
        [ Alcotest.test_case "100x init/submit/drain/shutdown" `Quick
            test_pool_lifecycle;
          Alcotest.test_case "failing jobs are isolated" `Quick
            test_pool_job_isolation;
          Alcotest.test_case "empty and size-0 drains" `Quick
            test_pool_empty_drain ] ) ]
