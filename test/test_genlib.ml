(* Genlib parsing: gates, pin clauses, latch skipping, errors, and
   the built-in libraries. *)

open Dagmap_logic
open Dagmap_genlib

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tfloat = Alcotest.float 1e-9

let test_single_gate () =
  let gates =
    Genlib_parser.parse_string
      "GATE nand2 4.0 O=!(a*b); PIN a INV 1 999 1.0 0.2 1.1 0.3\n\
       PIN b INV 1 999 1.2 0.2 0.9 0.3\n"
  in
  match gates with
  | [ g ] ->
    check Alcotest.string "name" "nand2" g.Gate.gate_name;
    check tfloat "area" 4.0 g.Gate.area;
    check tint "pins" 2 (Gate.num_pins g);
    check Alcotest.string "pin 0" "a" g.Gate.pins.(0).Gate.pin_name;
    check tfloat "pin 0 delay (max rise/fall)" 1.1 (Gate.intrinsic_delay g 0);
    check tfloat "pin 1 delay" 1.2 (Gate.intrinsic_delay g 1);
    check tbool "function" true
      (Truth.equal g.Gate.func
         (Truth.lognand (Truth.var 2 0) (Truth.var 2 1)))
  | gates -> Alcotest.failf "expected 1 gate, got %d" (List.length gates)

let test_star_pin () =
  let gates =
    Genlib_parser.parse_string
      "GATE and3 6.0 O=a*b*c; PIN * NONINV 1 999 2.0 0.1 2.0 0.1\n"
  in
  match gates with
  | [ g ] ->
    check tint "three pins from star" 3 (Gate.num_pins g);
    Array.iter
      (fun p -> check tfloat "star delay" 2.0 p.Gate.rise_block)
      g.Gate.pins
  | _ -> Alcotest.fail "expected 1 gate"

let test_comments_and_multiple () =
  let gates =
    Genlib_parser.parse_string
      "# a comment line\n\
       GATE inv 1.0 O=!a; PIN a INV 1 999 0.5 0.1 0.5 0.1\n\
       GATE buf 2.0 O=a; # trailing comment\nPIN a NONINV 1 999 1.0 0.1 1.0 0.1\n"
  in
  check tint "two gates" 2 (List.length gates);
  check tbool "first is inverter" true (Gate.is_inverter (List.nth gates 0));
  check tbool "second is buffer" true (Gate.is_buffer (List.nth gates 1))

let test_latch_skipped () =
  let gates =
    Genlib_parser.parse_string
      "GATE inv 1.0 O=!a; PIN a INV 1 999 0.5 0.1 0.5 0.1\n\
       LATCH dff 8.0 Q=D; PIN D NONINV 1 999 1 0 1 0\n\
       SEQ Q ANY RISING_EDGE\n\
       CONTROL CLK 1 999 1 0 1 0\n\
       GATE nor2 3.0 O=!(a+b); PIN * INV 1 999 1.3 0.2 1.3 0.2\n"
  in
  check tint "latch skipped, two gates" 2 (List.length gates)

let test_no_pin_clause_defaults () =
  let gates = Genlib_parser.parse_string "GATE wire 0.0 O=a;\n" in
  match gates with
  | [ g ] -> check tfloat "default pin delay" 1.0 (Gate.intrinsic_delay g 0)
  | _ -> Alcotest.fail "expected 1 gate"

let expect_error source =
  match Genlib_parser.parse_string source with
  | exception Genlib_parser.Syntax_error _ -> ()
  | _ -> Alcotest.failf "expected syntax error on %S" source

let test_errors () =
  expect_error "GATE broken 1.0 O=;";
  expect_error "GATE broken 1.0 noequals;";
  expect_error "GATE broken xyz O=a;";
  expect_error "GATE missing_pin 1.0 O=a*b; PIN a INV 1 999 1 0 1 0\n";
  expect_error "FOO bar\n";
  expect_error "GATE trunc 1.0 O=a; PIN a INV 1 999 1\n"

(* Errors carry the file, line and column of the offending token. *)
let test_error_positions () =
  let expect_pos ?file source eline ecol =
    match Genlib_parser.parse_string ?file source with
    | exception Genlib_parser.Syntax_error { file = f; line; col; _ } ->
      check (Alcotest.option Alcotest.string) "file" file f;
      check tint "line" eline line;
      check tint "col" ecol col
    | _ -> Alcotest.failf "expected syntax error on %S" source
  in
  (* Bad phase keyword on line 2, column 7. *)
  expect_pos
    "GATE inv 1.0 O=!a;\nPIN a WAT 1 999 0.5 0.1 0.5 0.1\n"
    2 7;
  (* Bad area number: the offending token is "xyz" at column 13. *)
  expect_pos "GATE broken xyz O=a;\n" 1 13;
  (* Stray toplevel token, with a file label. *)
  expect_pos ~file:"cells.genlib"
    "GATE inv 1.0 O=!a; PIN a INV 1 999 0.5 0.1 0.5 0.1\nFOO bar\n"
    2 1;
  (* describe renders file:line:col. *)
  (match Genlib_parser.parse_string ~file:"x.genlib" "FOO\n" with
   | exception (Genlib_parser.Syntax_error _ as e) ->
     check tbool "describe mentions position" true
       (String.length (Genlib_parser.describe e) > 0
       && String.sub (Genlib_parser.describe e) 0 12 = "x.genlib:1:1")
   | _ -> Alcotest.fail "expected syntax error")

let test_print_parse_roundtrip () =
  let lib = Libraries.lib2_like () in
  let text = Genlib_parser.to_string lib.Libraries.gates in
  let reparsed = Genlib_parser.parse_string text in
  check tint "same gate count" (List.length lib.Libraries.gates)
    (List.length reparsed);
  List.iter2
    (fun a b ->
      check Alcotest.string "name" a.Gate.gate_name b.Gate.gate_name;
      check tbool
        (Printf.sprintf "function of %s" a.Gate.gate_name)
        true
        (Truth.equal a.Gate.func b.Gate.func);
      check tfloat "area" a.Gate.area b.Gate.area)
    lib.Libraries.gates reparsed

let test_builtin_libraries () =
  let l44_1 = Libraries.lib44_1_like () in
  check tint "44-1 has exactly 7 gates" 7 (List.length l44_1.Libraries.gates);
  let l44_3 = Libraries.lib44_3_like () in
  let n = List.length l44_3.Libraries.gates in
  check tbool "44-3 has hundreds of gates" true (n >= 500 && n <= 625);
  (* Strict superset: every 44-1 gate name appears in 44-3. *)
  List.iter
    (fun g ->
      check tbool
        (Printf.sprintf "44-3 contains %s" g.Gate.gate_name)
        true
        (List.exists
           (fun h -> String.equal h.Gate.gate_name g.Gate.gate_name)
           l44_3.Libraries.gates))
    l44_1.Libraries.gates;
  (* The largest 44-3 gate has 16 inputs, as in the paper. *)
  let max_pins =
    List.fold_left (fun acc g -> max acc (Gate.num_pins g)) 0
      l44_3.Libraries.gates
  in
  check tint "largest 44-3 gate has 16 inputs" 16 max_pins;
  let lib2 = Libraries.lib2_like () in
  check tbool "lib2 has ~30 gates" true
    (List.length lib2.Libraries.gates >= 25);
  (* Every library contains INV and NAND2 (mappability guarantee). *)
  List.iter
    (fun name ->
      match Libraries.by_name name with
      | None -> Alcotest.failf "missing library %s" name
      | Some lib ->
        check tbool (name ^ " has inverter") true
          (List.exists Gate.is_inverter lib.Libraries.gates);
        check tbool (name ^ " has nand2") true
          (List.exists
             (fun g ->
               Gate.num_pins g = 2
               && Truth.equal g.Gate.func
                    (Truth.lognand (Truth.var 2 0) (Truth.var 2 1)))
             lib.Libraries.gates))
    Libraries.names

let test_gate_make_errors () =
  Alcotest.check_raises "formula beyond pins"
    (Invalid_argument
       "Gate.make bad: formula references pin 1 but only 1 pins") (fun () ->
      ignore
        (Gate.make ~name:"bad" ~area:1.0
           ~pins:[| Gate.simple_pin "a" |]
           (Bexpr.and2 (Bexpr.var 0) (Bexpr.var 1))))

let test_constant_gate_detection () =
  let g =
    Gate.make ~name:"tie1" ~area:1.0 ~pins:[||] (Bexpr.const true)
  in
  check tbool "constant detected" true (Gate.is_constant g = Some true)

let () =
  Alcotest.run "genlib"
    [ ( "parser",
        [ Alcotest.test_case "single gate" `Quick test_single_gate;
          Alcotest.test_case "star pin" `Quick test_star_pin;
          Alcotest.test_case "comments" `Quick test_comments_and_multiple;
          Alcotest.test_case "latch skipped" `Quick test_latch_skipped;
          Alcotest.test_case "pin defaults" `Quick test_no_pin_clause_defaults;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "error positions" `Quick test_error_positions;
          Alcotest.test_case "roundtrip" `Quick test_print_parse_roundtrip ] );
      ( "libraries",
        [ Alcotest.test_case "builtins" `Quick test_builtin_libraries;
          Alcotest.test_case "gate make errors" `Quick test_gate_make_errors;
          Alcotest.test_case "constant gate" `Quick test_constant_gate_detection ] ) ]
