(* .sglib persistence: byte-exact round-trips, and clean Format_error
   rejection of corrupted, truncated, version-mismatched and stale
   files. *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_super

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstring = Alcotest.string

let fast_bounds = { Superenum.default_bounds with max_pins = 4; max_size = 3 }

let sample =
  lazy (fst (Superlib.make ~bounds:fast_bounds (Libraries.lib44_1_like ())))

let expect_format_error ?contains name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Format_error" name
  | exception Superlib.Format_error msg ->
    (match contains with
     | None -> ()
     | Some needle ->
       let has =
         let nl = String.length needle and ml = String.length msg in
         let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
         go 0
       in
       check tbool
         (Printf.sprintf "%s: message %S mentions %S" name msg needle)
         true has)

(* write -> read -> identical gate list, and re-serialization is
   byte-identical (the determinism the on-disk cache relies on). *)
let test_roundtrip () =
  let t = Lazy.force sample in
  let path = Filename.temp_file "sglib" ".sglib" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Superlib.write_file path t;
      let back = Superlib.read_file path in
      check tstring "base name" t.Superlib.base_name back.Superlib.base_name;
      check tstring "fingerprint" t.Superlib.base_fingerprint
        back.Superlib.base_fingerprint;
      check tbool "bounds" true (t.Superlib.bounds = back.Superlib.bounds);
      check tint "gate count"
        (List.length t.Superlib.supergates)
        (List.length back.Superlib.supergates);
      List.iter2
        (fun a b ->
          check tstring "gate name" a.Gate.gate_name b.Gate.gate_name;
          check (Alcotest.float 0.0) "area" a.Gate.area b.Gate.area;
          check tbool "function" true (Truth.equal a.Gate.func b.Gate.func);
          check tbool "origin Super" true (Gate.is_super b);
          check tint "pins" (Gate.num_pins a) (Gate.num_pins b);
          Array.iteri
            (fun i _ ->
              check (Alcotest.float 0.0)
                (Printf.sprintf "%s pin %d delay" a.Gate.gate_name i)
                (Gate.intrinsic_delay a i) (Gate.intrinsic_delay b i))
            a.Gate.pins)
        t.Superlib.supergates back.Superlib.supergates;
      check tbool "re-serialization byte-identical" true
        (String.equal (Superlib.to_string t) (Superlib.to_string back)))

(* An empty supergate set still round-trips. *)
let test_roundtrip_empty () =
  let t, _ =
    Superlib.make
      ~bounds:{ Superenum.default_bounds with max_gates = 0 }
      (Libraries.minimal ())
  in
  check tint "no gates" 0 (List.length t.Superlib.supergates);
  let back = Superlib.of_string (Superlib.to_string t) in
  check tint "still no gates" 0 (List.length back.Superlib.supergates)

let test_rejects_corruption () =
  let text = Superlib.to_string (Lazy.force sample) in
  (* Flip one character inside the gate section. *)
  let i =
    let rec find i =
      if i + 4 > String.length text then Alcotest.fail "no GATE line"
      else if String.sub text i 4 = "GATE" then i
      else find (i + 1)
    in
    find 0
  in
  let corrupted = Bytes.of_string text in
  Bytes.set corrupted i 'X';
  expect_format_error ~contains:"checksum" "flipped byte" (fun () ->
      Superlib.of_string (Bytes.to_string corrupted));
  (* Truncation loses the END line entirely. *)
  expect_format_error ~contains:"END" "truncated" (fun () ->
      Superlib.of_string (String.sub text 0 (String.length text / 2)));
  (* Garbage after the END line. *)
  expect_format_error "trailing garbage" (fun () ->
      Superlib.of_string (text ^ "more\n"));
  expect_format_error "empty" (fun () -> Superlib.of_string "")

(* The version line gates everything else (a future version may
   change the checksum itself), so a version mismatch is reported
   as such even though the edit also breaks the checksum. *)
let test_rejects_versions () =
  let text = Superlib.to_string (Lazy.force sample) in
  let nl = String.index text '\n' in
  let rest = String.sub text nl (String.length text - nl) in
  expect_format_error ~contains:"version" "future version" (fun () ->
      Superlib.of_string ("SGLIB 9" ^ rest));
  expect_format_error ~contains:"magic" "bad magic" (fun () ->
      Superlib.of_string ("NOTSG 1" ^ rest))

(* A library generated from one base must refuse to augment another:
   fingerprint mismatch is a Format_error, not silence. *)
let test_rejects_stale_base () =
  let t = Lazy.force sample in
  check tbool "matching base accepted" true
    (let aug = Superlib.augment (Libraries.lib44_1_like ()) t in
     List.length aug.Libraries.gates
     = List.length (Libraries.lib44_1_like ()).Libraries.gates
       + List.length t.Superlib.supergates);
  expect_format_error ~contains:"stale" "wrong base" (fun () ->
      Superlib.augment (Libraries.lib2_like ()) t)

let test_fingerprint_sensitivity () =
  let a = Superlib.fingerprint (Libraries.lib44_1_like ()) in
  let b = Superlib.fingerprint (Libraries.lib2_like ()) in
  check tbool "fingerprints differ across libraries" true (not (String.equal a b));
  check tstring "fingerprint stable" a
    (Superlib.fingerprint (Libraries.lib44_1_like ()))

let () =
  Alcotest.run "superlib"
    [ ( "roundtrip",
        [ Alcotest.test_case "write/read identical" `Quick test_roundtrip;
          Alcotest.test_case "empty set" `Quick test_roundtrip_empty;
          Alcotest.test_case "fingerprint" `Quick test_fingerprint_sensitivity ] );
      ( "rejection",
        [ Alcotest.test_case "corruption" `Quick test_rejects_corruption;
          Alcotest.test_case "versions" `Quick test_rejects_versions;
          Alcotest.test_case "stale base" `Quick test_rejects_stale_base ] ) ]
