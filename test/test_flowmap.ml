(* FlowMap: max-flow plumbing, label optimality against a brute-force
   cut-enumeration DP, LUT cover structure, and equivalence. *)

open Dagmap_subject
open Dagmap_flowmap
open Dagmap_circuits

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* --- max-flow ------------------------------------------------------- *)

let test_maxflow_simple () =
  (* s -> a -> t and s -> b -> t, unit capacities: flow 2. *)
  let net = Maxflow.create 4 in
  let s = 0 and a = 1 and b = 2 and t = 3 in
  Maxflow.add_edge net s a 1;
  Maxflow.add_edge net s b 1;
  Maxflow.add_edge net a t 1;
  Maxflow.add_edge net b t 1;
  check tint "flow 2" 2 (Maxflow.max_flow_bounded net ~source:s ~sink:t ~bound:10)

let test_maxflow_bottleneck () =
  (* Diamond with a shared middle edge of capacity 1. *)
  let net = Maxflow.create 6 in
  Maxflow.add_edge net 0 1 1;
  Maxflow.add_edge net 0 2 1;
  Maxflow.add_edge net 1 3 1;
  Maxflow.add_edge net 2 3 1;
  Maxflow.add_edge net 3 4 1;   (* bottleneck *)
  Maxflow.add_edge net 4 5 Maxflow.infinite;
  check tint "flow 1" 1 (Maxflow.max_flow_bounded net ~source:0 ~sink:5 ~bound:10)

let test_maxflow_bound_early_exit () =
  (* Wide parallel structure; ask only whether flow exceeds 2. *)
  let n = 12 in
  let net = Maxflow.create (n + 2) in
  for i = 1 to n do
    Maxflow.add_edge net 0 i 1;
    Maxflow.add_edge net i (n + 1) 1
  done;
  check tint "bound+1 when exceeded" 3
    (Maxflow.max_flow_bounded net ~source:0 ~sink:(n + 1) ~bound:2)

let test_min_cut_side () =
  let net = Maxflow.create 4 in
  Maxflow.add_edge net 0 1 1;
  Maxflow.add_edge net 1 2 1;
  Maxflow.add_edge net 2 3 1;
  ignore (Maxflow.max_flow_bounded net ~source:0 ~sink:3 ~bound:10);
  let side = Maxflow.min_cut_side net ~source:0 in
  check tbool "source side" true side.(0);
  check tbool "sink not on source side" false side.(3)

(* --- brute-force optimal depth (cut enumeration DP) ----------------- *)

module IntSet = Set.Make (Int)

(* All k-feasible cuts of each node by the classical merge
   enumeration; optimal depth by DP over cuts. *)
let brute_force_depths g k =
  let n = Subject.num_nodes g in
  let cuts : IntSet.t list array = Array.make n [] in
  let label = Array.make n 0 in
  for t = 0 to n - 1 do
    match Subject.kind g t with
    | Subject.Spi ->
      cuts.(t) <- [ IntSet.singleton t ];
      label.(t) <- 0
    | Subject.Sinv _ | Subject.Snand _ ->
      let fanins = Subject.fanins g t in
      let fanin_cuts =
        List.map (fun f -> IntSet.singleton f :: cuts.(f)) fanins
      in
      let merged =
        List.fold_left
          (fun acc cs ->
            List.concat_map
              (fun a -> List.map (fun c -> IntSet.union a c) cs)
              acc)
          [ IntSet.empty ] fanin_cuts
      in
      let feasible =
        List.sort_uniq IntSet.compare
          (List.filter (fun c -> IntSet.cardinal c <= k) merged)
      in
      cuts.(t) <- feasible;
      label.(t) <-
        List.fold_left
          (fun best c ->
            let h = IntSet.fold (fun u acc -> max acc label.(u)) c 0 in
            min best (h + 1))
          max_int feasible
  done;
  label

let small_graphs () =
  [ ("adder4", Subject.of_network (Generators.ripple_adder 4));
    ("parity8", Subject.of_network (Generators.parity 8));
    ("rand", Subject.of_network
       (Generators.random_dag ~seed:5 ~inputs:6 ~outputs:3 ~nodes:25 ())) ]

let test_labels_match_brute_force () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let cover = Flowmap.map ~k g in
          let reference = brute_force_depths g k in
          for t = 0 to Subject.num_nodes g - 1 do
            check tint
              (Printf.sprintf "%s k=%d node %d" name k t)
              reference.(t)
              cover.Flowmap.labels.(t)
          done)
        [ 2; 3; 4; 5 ])
    (small_graphs ())

(* --- cover structure ------------------------------------------------ *)

let test_cover_structure () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let cover = Flowmap.map ~k g in
          check tbool
            (Printf.sprintf "%s k=%d labels consistent" name k)
            true
            (Flowmap.check_labels_optimal cover);
          List.iter
            (fun lut ->
              check tbool "cut size" true
                (Array.length lut.Flowmap.lut_inputs <= k))
            cover.Flowmap.luts)
        [ 3; 4 ])
    (small_graphs ())

let test_inv_chain_one_lut () =
  (* An inverter chain has single-node cuts everywhere: depth 1. *)
  let b = Subject.Builder.create () in
  let x = Subject.Builder.pi b "x" in
  let n = ref x in
  for _ = 1 to 10 do
    n := Subject.Builder.raw_inv b !n
  done;
  Subject.Builder.output b "o" !n;
  let g = Subject.Builder.finish b in
  let cover = Flowmap.map ~k:2 g in
  check tint "depth 1" 1 (Flowmap.depth cover);
  check tint "single lut" 1 (Flowmap.num_luts cover)

let test_depth_decreases_with_k () =
  let g = Subject.of_network (Generators.array_multiplier 6) in
  let d k = Flowmap.depth (Flowmap.map ~k g) in
  let d2 = d 2 and d4 = d 4 and d6 = d 6 in
  check tbool "k=4 no worse than k=2" true (d4 <= d2);
  check tbool "k=6 no worse than k=4" true (d6 <= d4);
  check tbool "depth below subject depth" true (d4 <= Subject.depth g)

let test_equivalence () =
  List.iter
    (fun (name, g) ->
      let cover = Flowmap.map ~k:4 g in
      let n_pi = List.length (Subject.pi_ids g) in
      for m = 0 to min 255 ((1 lsl n_pi) - 1) do
        let asg = Array.init n_pi (fun i -> m land (1 lsl i) <> 0) in
        let expected = Subject.eval g asg in
        let actual = Flowmap.eval cover asg in
        List.iter
          (fun (o, value) ->
            if List.assoc o actual <> value then
              Alcotest.failf "%s: output %s differs" name o)
          expected
      done)
    (small_graphs ())

let test_to_network_roundtrip () =
  List.iter
    (fun (name, g) ->
      let cover = Flowmap.map ~k:4 g in
      let net = Flowmap.to_network cover in
      Dagmap_logic.Network.validate net;
      check tbool
        (Printf.sprintf "%s: exported network is 4-bounded" name)
        true
        (Dagmap_logic.Network.is_k_bounded net 4);
      (* Functional equivalence with the subject graph. *)
      let n_pi = List.length (Subject.pi_ids g) in
      for m = 0 to min 127 ((1 lsl n_pi) - 1) do
        let asg = Array.init n_pi (fun i -> m land (1 lsl i) <> 0) in
        let expected = Subject.eval g asg in
        let words = Array.map (fun b -> if b then 1L else 0L) asg in
        let actual = Dagmap_sim.Simulate.network net words in
        List.iter
          (fun (o, value) ->
            let w = List.assoc o actual in
            if Int64.logand w 1L = 1L <> value then
              Alcotest.failf "%s: exported network differs on %s" name o)
          expected
      done)
    (small_graphs ())

let test_deep_chain_cover () =
  (* Regression: cone_of, the region truth-table evaluator, eval and
     to_network were recursive. A deep NAND chain exercises all four
     on one graph. Depth is modest only because FlowMap recomputes
     each node's full fanin cone (quadratic on chains) — the explicit
     stacks themselves handle 100k-deep graphs (see test_network). *)
  let depth = 2_000 in
  let b = Subject.Builder.create () in
  let x = Subject.Builder.pi b "x" in
  let y = Subject.Builder.pi b "y" in
  let n = ref (Subject.Builder.nand b x y) in
  for _ = 2 to depth do
    n := Subject.Builder.raw_nand b !n y
  done;
  Subject.Builder.output b "o" !n;
  let g = Subject.Builder.finish b in
  let cover = Flowmap.map ~k:4 g in
  check tbool "labels consistent" true (Flowmap.check_labels_optimal cover);
  List.iter
    (fun asg ->
      let expected = List.assoc "o" (Subject.eval g asg) in
      check tbool "eval matches subject" expected
        (List.assoc "o" (Flowmap.eval cover asg)))
    [ [| true; true |]; [| true; false |]; [| false; true |] ];
  let net = Flowmap.to_network cover in
  Dagmap_logic.Network.validate net

let test_k_too_small_rejected () =
  let g = Subject.of_network (Generators.parity 4) in
  Alcotest.check_raises "k=1 rejected"
    (Invalid_argument "Flowmap.map: k must be >= 2") (fun () ->
      ignore (Flowmap.map ~k:1 g))

let test_bigger_circuit_smoke () =
  let g = Subject.of_network (Iscas_like.c880_like ()) in
  let cover = Flowmap.map ~k:5 g in
  check tbool "labels consistent" true (Flowmap.check_labels_optimal cover);
  check tbool "depth positive" true (Flowmap.depth cover > 0)

let test_label_arena_differential () =
  (* Arena-native labeling must equal the Subject path's labels
     element-for-element, across circuits and k. *)
  let circuits =
    [ Generators.parity 8;
      Generators.ripple_adder 6;
      Generators.kogge_stone_adder 8;
      Generators.mux_tree 3;
      Generators.random_dag ~seed:11 ~inputs:8 ~outputs:4 ~nodes:80 ();
      Iscas_like.c880_like () ]
  in
  List.iter
    (fun net ->
      let g = Subject.of_network net in
      let a = Dagmap_core.Arena.of_subject g in
      List.iter
        (fun k ->
          let expected = (Flowmap.map ~k g).Flowmap.labels in
          let got = Flowmap.label_arena ~k a in
          check tbool
            (Printf.sprintf "labels equal (k=%d, %d nodes)" k
               (Subject.num_nodes g))
            true (expected = got))
        [ 3; 4; 6 ])
    circuits;
  Alcotest.check_raises "k=1 rejected"
    (Invalid_argument "Flowmap.label_arena: k must be >= 2") (fun () ->
      ignore
        (Flowmap.label_arena ~k:1
           (Dagmap_core.Arena.of_subject
              (Subject.of_network (Generators.parity 4)))))

let () =
  Alcotest.run "flowmap"
    [ ( "maxflow",
        [ Alcotest.test_case "simple" `Quick test_maxflow_simple;
          Alcotest.test_case "bottleneck" `Quick test_maxflow_bottleneck;
          Alcotest.test_case "bounded" `Quick test_maxflow_bound_early_exit;
          Alcotest.test_case "min cut side" `Quick test_min_cut_side ] );
      ( "optimality",
        [ Alcotest.test_case "brute force labels" `Slow
            test_labels_match_brute_force;
          Alcotest.test_case "cover structure" `Quick test_cover_structure;
          Alcotest.test_case "inv chain" `Quick test_inv_chain_one_lut;
          Alcotest.test_case "monotone in k" `Quick test_depth_decreases_with_k ] );
      ( "equivalence",
        [ Alcotest.test_case "small circuits" `Quick test_equivalence;
          Alcotest.test_case "to_network" `Quick test_to_network_roundtrip;
          Alcotest.test_case "deep chain" `Quick test_deep_chain_cover;
          Alcotest.test_case "k too small" `Quick test_k_too_small_rejected;
          Alcotest.test_case "c880 smoke" `Quick test_bigger_circuit_smoke;
          Alcotest.test_case "arena labels" `Quick
            test_label_arena_differential ] ) ]
