(* The paper's headline experiment on one benchmark: map the
   C6288-like 16x16 multiplier with tree covering vs. DAG covering
   under the three libraries, and show the critical path.

   Run with:  dune exec examples/iscas_mapping.exe *)

open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_timing
open Dagmap_circuits

let () =
  let net = Iscas_like.c6288_like () in
  let g = Subject.of_network net in
  Printf.printf "C6288-like multiplier: %s\n\n" (Subject.stats g);
  List.iter
    (fun lib_name ->
      match Libraries.by_name lib_name with
      | None -> ()
      | Some lib ->
        let db = Matchdb.prepare lib in
        Printf.printf "library %s (%d gates):\n" lib_name
          (List.length lib.Libraries.gates);
        let tree = Mapper.map Mapper.Tree db g in
        let dag = Mapper.map Mapper.Dag db g in
        List.iter
          (fun (label, r) ->
            let nl = r.Mapper.netlist in
            Printf.printf
              "  %-5s delay=%7.2f  area=%9.0f  gates=%5d  duplicated=%5d  \
               (%.2fs label, %.2fs cover)\n"
              label (Netlist.delay nl) (Netlist.area nl) (Netlist.num_gates nl)
              (Netlist.duplication nl) r.Mapper.run.Mapper.label_seconds
              r.Mapper.run.Mapper.cover_seconds)
          [ ("tree", tree); ("DAG", dag) ];
        let ratio =
          Netlist.delay tree.Mapper.netlist /. Netlist.delay dag.Mapper.netlist
        in
        Printf.printf "  speedup from DAG covering: %.2fx\n\n" ratio)
    [ "lib2"; "44-1"; "44-3" ];

  (* Critical path of the best mapping. *)
  let lib = Libraries.lib44_3_like () in
  let db = Matchdb.prepare lib in
  let dag = Mapper.map Mapper.Dag db g in
  let report = Sta.analyze dag.Mapper.netlist in
  Printf.printf "critical path under 44-3 (%d stages):\n"
    (List.length report.Sta.critical_path);
  Format.printf "%a@." Sta.pp_path report
