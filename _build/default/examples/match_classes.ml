(* The paper's two figures, executable.

   Figure 1: a pattern that matches as an *extended* match but not as
   a *standard* match (two pattern nodes must fold onto one subject
   node).

   Figure 2: a pattern unusable by tree covering (no *exact* match at
   either output) that DAG covering applies twice, duplicating the
   shared middle cone.

   Run with:  dune exec examples/match_classes.exe *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core

let gate_of_expr name ~delay n expr =
  Gate.make ~name ~area:(float_of_int n)
    ~pins:(Array.init n (fun i -> Gate.simple_pin ~delay (Printf.sprintf "p%d" i)))
    expr

let count cls g p root =
  let fanouts = Subject.fanout_counts g in
  List.length (Matcher.matches cls g ~fanouts p root)

let () =
  (* ---------------- Figure 1 ---------------- *)
  Printf.printf "Figure 1: standard vs extended matches\n";
  let bld = Subject.Builder.create () in
  let a = Subject.Builder.pi bld "a" in
  let b = Subject.Builder.pi bld "b" in
  let n = Subject.Builder.nand bld a b in
  let nn = Subject.Builder.raw_nand bld n n in
  let top = Subject.Builder.inv bld nn in
  Subject.Builder.output bld "f" top;
  let g1 = Subject.Builder.finish bld in
  Printf.printf "  subject: top = inv(nand(n, n)), n = nand(a, b)\n";
  let and2 =
    gate_of_expr "and2" ~delay:1.3 2 Bexpr.(and2 (var 0) (var 1))
  in
  let p =
    match Pattern.of_gate ~max_shapes:1 and2 with
    | [ p ] -> p
    | _ -> assert false
  in
  Printf.printf "  pattern: AND2 = inv(nand(m, m'))\n";
  List.iter
    (fun cls ->
      Printf.printf "    %-8s matches at top: %d\n" (Matcher.class_name cls)
        (count cls g1 p top))
    [ Matcher.Standard; Matcher.Exact; Matcher.Extended ];
  Printf.printf
    "  -> the extended match folds m and m' onto the single node n\n\n";

  (* ---------------- Figure 2 ---------------- *)
  Printf.printf "Figure 2: duplication of subject-graph nodes\n";
  let bld = Subject.Builder.create () in
  let a = Subject.Builder.pi bld "a" in
  let b = Subject.Builder.pi bld "b" in
  let c = Subject.Builder.pi bld "c" in
  let d = Subject.Builder.pi bld "d" in
  let mid = Subject.Builder.nand bld b c in
  let out1 = Subject.Builder.nand bld a mid in
  let out2 = Subject.Builder.nand bld mid d in
  Subject.Builder.output bld "o1" out1;
  Subject.Builder.output bld "o2" out2;
  let g2 = Subject.Builder.finish bld in
  Printf.printf
    "  subject: out1 = nand(a, mid), out2 = nand(mid, d), mid = nand(b, c)\n";
  let big =
    gate_of_expr "big" ~delay:1.2 3
      Bexpr.(not_ (and2 (var 0) (not_ (and2 (var 1) (var 2)))))
  in
  let pbig =
    match Pattern.of_gate ~max_shapes:1 big with [ p ] -> p | _ -> assert false
  in
  Printf.printf "  pattern: big = nand(x, nand(y, z))\n";
  List.iter
    (fun (name, root) ->
      Printf.printf "    at %s: exact=%d standard=%d\n" name
        (count Matcher.Exact g2 pbig root)
        (count Matcher.Standard g2 pbig root))
    [ ("out1", out1); ("out2", out2) ];
  let inv = gate_of_expr "inv" ~delay:0.5 1 Bexpr.(not_ (var 0)) in
  let nand2 =
    gate_of_expr "nand2" ~delay:1.0 2 Bexpr.(not_ (and2 (var 0) (var 1)))
  in
  let lib = Libraries.make "fig2" [ inv; nand2; big ] in
  let db = Matchdb.prepare lib in
  List.iter
    (fun mode ->
      let r = Mapper.map mode db g2 in
      let nl = r.Mapper.netlist in
      Printf.printf
        "  %-5s mapping: delay=%.2f gates=%d duplicated-coverings=%d\n"
        (Mapper.mode_name mode) (Netlist.delay nl) (Netlist.num_gates nl)
        (Netlist.duplication nl))
    [ Mapper.Tree; Mapper.Dag ];
  Printf.printf
    "  -> DAG covering duplicates the cone rooted at mid and uses the big\n\
    \     gate on both outputs; the mapped circuit no longer has an\n\
    \     internal multiple-fanout point (max fanout now at the PIs)\n"
