examples/iscas_mapping.mli:
