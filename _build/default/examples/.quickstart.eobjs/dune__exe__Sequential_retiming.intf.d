examples/sequential_retiming.mli:
