examples/quickstart.mli:
