examples/iscas_mapping.ml: Dagmap_circuits Dagmap_core Dagmap_genlib Dagmap_subject Dagmap_timing Format Iscas_like Libraries List Mapper Matchdb Netlist Printf Sta Subject
