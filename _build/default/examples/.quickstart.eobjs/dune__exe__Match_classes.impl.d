examples/match_classes.ml: Array Bexpr Dagmap_core Dagmap_genlib Dagmap_logic Dagmap_subject Gate Libraries List Mapper Matchdb Matcher Netlist Pattern Printf Subject
