examples/quickstart.ml: Bexpr Dagmap_core Dagmap_genlib Dagmap_logic Dagmap_sim Dagmap_subject Equiv Format Libraries List Mapper Matchdb Netlist Network Printf Simulate Subject
