examples/fpga_flowmap.ml: Array Dagmap_circuits Dagmap_flowmap Dagmap_subject Flowmap Generators List Printf Random Subject
