examples/sequential_retiming.ml: Dagmap_circuits Dagmap_core Dagmap_genlib Dagmap_logic Dagmap_retime Generators Libraries List Mapper Matchdb Printf Retiming Seq_map
