examples/match_classes.mli:
