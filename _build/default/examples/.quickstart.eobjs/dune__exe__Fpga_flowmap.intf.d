examples/fpga_flowmap.mli:
