(* FlowMap on FPGAs (the algorithm of paper §2 that DAG covering
   generalizes): depth-optimal k-LUT mapping of an ALU across LUT
   sizes, verified by simulation.

   Run with:  dune exec examples/fpga_flowmap.exe *)

open Dagmap_subject
open Dagmap_flowmap
open Dagmap_circuits

let () =
  let net = Generators.alu 16 in
  let g = Subject.of_network net in
  Printf.printf "16-bit ALU: %s\n\n" (Subject.stats g);
  Printf.printf "%-4s %-8s %-8s %-10s\n" "k" "depth" "#LUTs" "optimal?";
  List.iter
    (fun k ->
      let cover = Flowmap.map ~k g in
      Printf.printf "%-4d %-8d %-8d %-10b\n" k (Flowmap.depth cover)
        (Flowmap.num_luts cover)
        (Flowmap.check_labels_optimal cover))
    [ 2; 3; 4; 5; 6 ];

  (* Spot-check functional equivalence for k = 4. *)
  let cover = Flowmap.map ~k:4 g in
  let n_pi = List.length (Subject.pi_ids g) in
  let st = Random.State.make [| 2024 |] in
  let mismatches = ref 0 in
  for _ = 1 to 200 do
    let asg = Array.init n_pi (fun _ -> Random.State.bool st) in
    let want = Subject.eval g asg in
    let got = Flowmap.eval cover asg in
    List.iter
      (fun (name, value) ->
        if List.assoc name got <> value then incr mismatches)
      want
  done;
  Printf.printf "\nk=4 simulation check: %d mismatches over 200 vectors\n"
    !mismatches;

  (* The duplication phenomenon is the same one DAG covering uses:
     count LUT roots that serve multiple users. *)
  let cover5 = Flowmap.map ~k:5 g in
  Printf.printf "k=5: %d LUTs for %d subject nodes (logic replicated freely)\n"
    (Flowmap.num_luts cover5) (Subject.num_nodes g)
