(* Sequential mapping with retiming (paper §4): map the combinational
   core of a sequential circuit, then retime the mapped circuit to
   its minimum clock period.

   Run with:  dune exec examples/sequential_retiming.exe *)

open Dagmap_genlib
open Dagmap_core
open Dagmap_circuits
open Dagmap_retime

let () =
  let lib = Libraries.lib2_like () in
  let db = Matchdb.prepare lib in
  List.iter
    (fun (name, net) ->
      Printf.printf "== %s ==\n" name;
      List.iter
        (fun mode ->
          let r = Seq_map.run db mode net in
          Printf.printf
            "  %-5s comb delay %6.2f | period %6.2f -> %6.2f after retiming | \
             latches %d -> %d\n"
            (Mapper.mode_name mode) r.Seq_map.comb_delay
            r.Seq_map.period_before r.Seq_map.period_after
            r.Seq_map.latches_before r.Seq_map.latches_after)
        [ Mapper.Tree; Mapper.Dag ];
      print_newline ())
    [ ("lfsr24", Generators.lfsr 24);
      ("pipelined parity 64x5", Generators.pipelined_parity 64 5);
      ("pipelined parity 32x3", Generators.pipelined_parity 32 3) ];

  (* Structural retiming of the network itself (step 1 of the
     three-step transformation): move the output-stacked latch ranks
     of a pipelined parity tree back through the XOR levels. *)
  let net = Generators.pipelined_parity 32 4 in
  let g, _ = Seq_map.network_graph net in
  let before = Retiming.clock_period g () in
  let period, r = Retiming.min_period g in
  Printf.printf
    "unit-delay network retiming of pparity32x4: %.0f levels -> %.0f levels\n"
    before period;
  let retimed = Seq_map.apply_network_retiming net r in
  let g2, _ = Seq_map.network_graph retimed in
  Printf.printf "rebuilt network achieves %.0f levels (validated: %b)\n"
    (Retiming.clock_period g2 ())
    (try Dagmap_logic.Network.validate retimed; true with Failure _ -> false)
