(* Quickstart: build a small circuit, decompose it into a subject
   graph, map it with tree covering and with the paper's DAG
   covering, and compare.

   Run with:  dune exec examples/quickstart.exe *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_sim

let () =
  (* 1. Describe a circuit as a Boolean network: a 4-bit carry chain
     slice, f = (a&b) | ((a^b) & c), g = a ^ b ^ c. *)
  let net = Network.create ~name:"quickstart" () in
  let a = Network.add_pi net "a" in
  let b = Network.add_pi net "b" in
  let c = Network.add_pi net "c" in
  let v = Bexpr.var in
  let carry =
    Network.add_logic net
      Bexpr.(or2 (and2 (v 0) (v 1)) (and2 (xor2 (v 0) (v 1)) (v 2)))
      [| a; b; c |]
  in
  let sum =
    Network.add_logic net Bexpr.(xor2 (xor2 (v 0) (v 1)) (v 2)) [| a; b; c |]
  in
  Network.add_po net "carry" carry;
  Network.add_po net "sum" sum;
  Printf.printf "network: %s\n" (Network.stats net);

  (* 2. Decompose into a NAND2-INV subject graph. *)
  let g = Subject.of_network net in
  Printf.printf "subject: %s\n\n" (Subject.stats g);

  (* 3. Map with a standard-cell library, both ways. *)
  let lib = Libraries.lib2_like () in
  let db = Matchdb.prepare lib in
  List.iter
    (fun mode ->
      let result = Mapper.map mode db g in
      let nl = result.Mapper.netlist in
      Printf.printf "%-13s delay=%.2f  area=%5.0f  gates=%2d  duplicated=%d\n"
        (Mapper.mode_name mode) (Netlist.delay nl) (Netlist.area nl)
        (Netlist.num_gates nl) (Netlist.duplication nl);
      List.iter
        (fun (gate, n) -> Printf.printf "    %dx %s\n" n gate)
        (Netlist.gate_histogram nl))
    [ Mapper.Tree; Mapper.Dag ];

  (* 4. Verify the DAG mapping against the subject graph by random
     simulation. *)
  let result = Mapper.map Mapper.Dag db g in
  let verdict =
    Equiv.compare_sims ~n_inputs:3
      (fun words -> Simulate.subject g words)
      (fun words -> Simulate.netlist result.Mapper.netlist words)
  in
  Format.printf "@.verification: %a@." Equiv.pp_verdict verdict
