lib/sim/equiv.mli: Format
