lib/sim/simulate.ml: Array Bexpr Dagmap_core Dagmap_genlib Dagmap_logic Dagmap_subject Hashtbl Int64 List Netlist Network Printf Random Subject
