lib/sim/equiv.ml: Array Format Int64 List Random Simulate String
