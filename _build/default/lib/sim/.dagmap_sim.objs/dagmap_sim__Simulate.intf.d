lib/sim/simulate.mli: Dagmap_core Dagmap_logic Dagmap_subject Netlist Network Random Subject
