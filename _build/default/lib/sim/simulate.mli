(** Bit-parallel logic simulation.

    All simulators evaluate 64 input assignments at once: each input
    is a 64-bit word whose bit [k] is the input's value in assignment
    [k]. Input order follows the subject PI contract: network PIs in
    declaration order, then latch outputs. *)

open Dagmap_logic
open Dagmap_subject
open Dagmap_core

val network : Network.t -> int64 array -> (string * int64) list
(** Evaluate primary (and latch-input pseudo-) outputs of a network.
    The input array covers PIs then latch outputs; latch inputs are
    reported as [$latch_in<i>] pseudo-outputs, matching
    {!Subject.of_network} naming. *)

val subject : Subject.t -> int64 array -> (string * int64) list

val netlist : Netlist.t -> int64 array -> (string * int64) list

val num_inputs_network : Network.t -> int
(** PIs plus latch outputs. *)

val random_words : Random.State.t -> int -> int64 array
(** [random_words st n] draws [n] uniform 64-bit words. *)
