lib/timing/sta.mli: Dagmap_core Format Netlist
