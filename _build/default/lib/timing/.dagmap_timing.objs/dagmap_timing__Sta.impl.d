lib/timing/sta.ml: Array Dagmap_core Dagmap_genlib Float Format Gate List Netlist Option
