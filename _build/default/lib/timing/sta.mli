(** Static timing analysis for mapped netlists under the
    load-independent delay model (arrival / required / slack and
    critical-path extraction). *)

open Dagmap_core

type path_element = {
  pe_instance : int;        (** instance index *)
  pe_gate : string;         (** gate name *)
  pe_through_pin : int;     (** pin the critical signal enters by; -1 at path start *)
  pe_arrival : float;
}

type report = {
  arrival : float array;    (** per instance *)
  required : float array;   (** per instance, w.r.t. the worst output *)
  slack : float array;
  worst_delay : float;
  critical_output : string;
  critical_path : path_element list;  (** inputs-to-output order *)
}

val analyze : ?required_time:float -> Netlist.t -> report
(** [analyze nl] runs arrival and required propagation. The default
    required time at every output is the worst arrival (so the
    critical path has zero slack). *)

val num_critical : report -> float -> int
(** Instances with slack below the given threshold. *)

val pp_path : Format.formatter -> report -> unit
