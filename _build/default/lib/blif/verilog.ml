open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core

(* Verilog identifier sanitation with collision avoidance. *)
let keywords =
  [ "module"; "endmodule"; "input"; "output"; "wire"; "reg"; "assign";
    "always"; "begin"; "end"; "if"; "else"; "case"; "endcase"; "posedge";
    "negedge"; "or"; "and"; "not"; "xor"; "nand"; "nor"; "buf" ]

type namer = {
  table : (string, string) Hashtbl.t;   (* original -> sanitized *)
  used : (string, unit) Hashtbl.t;
}

let new_namer () = { table = Hashtbl.create 64; used = Hashtbl.create 64 }

let sanitize name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  let s = Buffer.contents buf in
  let s = if s = "" then "n" else s in
  let s =
    match s.[0] with
    | '0' .. '9' | '$' -> "n" ^ s
    | _ -> s
  in
  if List.mem s keywords then s ^ "_" else s

let ident nm name =
  match Hashtbl.find_opt nm.table name with
  | Some s -> s
  | None ->
    let base = sanitize name in
    let rec unique candidate k =
      if Hashtbl.mem nm.used candidate then
        unique (Printf.sprintf "%s_%d" base k) (k + 1)
      else candidate
    in
    let s = unique base 0 in
    Hashtbl.replace nm.used s ();
    Hashtbl.replace nm.table name s;
    s

(* Render a Bexpr over given operand strings. *)
let rec render_expr operands (e : Bexpr.t) =
  match e with
  | Bexpr.Const true -> "1'b1"
  | Bexpr.Const false -> "1'b0"
  | Bexpr.Var i -> operands i
  | Bexpr.Not a -> Printf.sprintf "~%s" (render_atom operands a)
  | Bexpr.And (a, b) ->
    Printf.sprintf "%s & %s" (render_atom operands a) (render_atom operands b)
  | Bexpr.Or (a, b) ->
    Printf.sprintf "%s | %s" (render_atom operands a) (render_atom operands b)
  | Bexpr.Xor (a, b) ->
    Printf.sprintf "%s ^ %s" (render_atom operands a) (render_atom operands b)

and render_atom operands e =
  match e with
  | Bexpr.Const _ | Bexpr.Var _ -> render_expr operands e
  | Bexpr.Not a -> Printf.sprintf "~%s" (render_atom operands a)
  | Bexpr.And _ | Bexpr.Or _ | Bexpr.Xor _ ->
    Printf.sprintf "(%s)" (render_expr operands e)

let write_network ?(module_name = "top") net =
  let nm = new_namer () in
  let buf = Buffer.create 4096 in
  let node_name id = ident nm (Network.node net id).Network.name in
  let pi_names = List.map node_name (Network.pis net) in
  let po_names = List.map (fun (po, _) -> ident nm ("po$" ^ po)) (Network.pos net) in
  let has_latches = Network.latches net <> [] in
  let ports =
    (if has_latches then [ "clk" ] else []) @ pi_names @ po_names
  in
  Buffer.add_string buf
    (Printf.sprintf "module %s(%s);\n" (sanitize module_name)
       (String.concat ", " ports));
  if has_latches then Buffer.add_string buf "  input clk;\n";
  List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" p)) pi_names;
  List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "  output %s;\n" p)) po_names;
  Network.iter_nodes net (fun n ->
      match n.Network.kind with
      | Network.Pi -> ()
      | Network.Latch_out ->
        Buffer.add_string buf
          (Printf.sprintf "  reg %s;\n" (node_name n.Network.id))
      | Network.Logic ->
        Buffer.add_string buf
          (Printf.sprintf "  wire %s;\n" (node_name n.Network.id)));
  Network.iter_nodes net (fun n ->
      match n.Network.kind with
      | Network.Pi | Network.Latch_out -> ()
      | Network.Logic ->
        let operands i = node_name n.Network.fanins.(i) in
        Buffer.add_string buf
          (Printf.sprintf "  assign %s = %s;\n" (node_name n.Network.id)
             (render_expr operands n.Network.expr)));
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "  always @(posedge clk) %s <= %s;\n"
           (node_name l.Network.latch_output)
           (node_name l.Network.latch_input)))
    (Network.latches net);
  List.iter2
    (fun (_, id) po ->
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n" po (node_name id)))
    (Network.pos net) po_names;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_netlist ?(module_name = "mapped") ?(cell_style = false) nl =
  let g = nl.Netlist.source in
  let nm = new_namer () in
  let buf = Buffer.create 4096 in
  let pi_name id = ident nm g.Subject.names.(id) in
  let pis = Subject.pi_ids g in
  let pi_names = List.map pi_name pis in
  let po_names =
    List.map (fun (po, _) -> ident nm ("po$" ^ po)) nl.Netlist.outputs
  in
  let wire i = ident nm (Printf.sprintf "w$%d" i) in
  let driver_net = function
    | Netlist.D_pi id -> pi_name id
    | Netlist.D_gate j -> wire j
    | Netlist.D_const true -> "1'b1"
    | Netlist.D_const false -> "1'b0"
  in
  Buffer.add_string buf
    (Printf.sprintf "module %s(%s);\n" (sanitize module_name)
       (String.concat ", " (pi_names @ po_names)));
  List.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" p))
    pi_names;
  List.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "  output %s;\n" p))
    po_names;
  Array.iter
    (fun inst ->
      Buffer.add_string buf
        (Printf.sprintf "  wire %s;\n" (wire inst.Netlist.inst_id)))
    nl.Netlist.instances;
  Array.iter
    (fun inst ->
      let gate = inst.Netlist.gate in
      if cell_style then begin
        let connections =
          Array.to_list
            (Array.mapi
               (fun pin d ->
                 Printf.sprintf ".%s(%s)"
                   (sanitize gate.Gate.pins.(pin).Gate.pin_name)
                   (driver_net d))
               inst.Netlist.inputs)
          @ [ Printf.sprintf ".%s(%s)"
                (sanitize gate.Gate.output_name)
                (wire inst.Netlist.inst_id) ]
        in
        Buffer.add_string buf
          (Printf.sprintf "  %s g%d (%s);\n" (sanitize gate.Gate.gate_name)
             inst.Netlist.inst_id
             (String.concat ", " connections))
      end
      else begin
        let operands i = driver_net inst.Netlist.inputs.(i) in
        Buffer.add_string buf
          (Printf.sprintf "  assign %s = %s; // %s\n"
             (wire inst.Netlist.inst_id)
             (render_expr operands gate.Gate.expr)
             gate.Gate.gate_name)
      end)
    nl.Netlist.instances;
  List.iter2
    (fun (_, d) po ->
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n" po (driver_net d)))
    nl.Netlist.outputs po_names;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf
