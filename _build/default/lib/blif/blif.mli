(** BLIF (Berkeley Logic Interchange Format) reader and writer.

    Supported constructs: [.model], [.inputs], [.outputs], [.names]
    (single-output cover with [0/1/-] cubes, both on-set and off-set
    covers), [.latch] (edge-triggered, optional clock ignored),
    [.end], [#] comments, [\ ] line continuations.

    Mapped netlists are written with SIS-style [.gate] statements. *)

open Dagmap_logic
open Dagmap_core

exception Parse_error of { line : int; message : string }

val read_string : string -> Network.t
val read_file : string -> Network.t

val write_network : Network.t -> string
(** Logic nodes are emitted as minterm covers of their expressions. *)

val write_netlist : Netlist.t -> string
(** Emit a mapped netlist using [.gate] statements
    ([.gate <gate> <pin>=<net> ... O=<net>]). *)
