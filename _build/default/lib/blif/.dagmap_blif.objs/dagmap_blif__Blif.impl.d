lib/blif/blif.ml: Array Bexpr Buffer Dagmap_core Dagmap_genlib Dagmap_logic Dagmap_subject Gate Hashtbl List Netlist Network Printf Sop String Subject Truth
