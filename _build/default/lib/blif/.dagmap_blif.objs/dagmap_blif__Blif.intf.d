lib/blif/blif.mli: Dagmap_core Dagmap_logic Netlist Network
