lib/blif/verilog.mli: Dagmap_core Dagmap_logic Netlist Network
