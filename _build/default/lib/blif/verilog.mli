(** Structural Verilog export.

    Mapped netlists are written with one continuous assignment per
    gate instance (the gate's Boolean formula inlined over its input
    nets), so the output simulates in any Verilog environment without
    cell models; an optional cell-instantiation style emits
    [gate inst (.pin(net), ...)] lines instead, for flows that supply
    a cell library. Networks are written with one assignment per
    logic node. Identifiers are sanitized to Verilog rules and kept
    unique. *)

open Dagmap_logic
open Dagmap_core

val write_network : ?module_name:string -> Network.t -> string
(** Combinational networks only; latches become [always @(posedge
    clk)] registers with an implicit [clk] port. *)

val write_netlist :
  ?module_name:string -> ?cell_style:bool -> Netlist.t -> string
(** [cell_style] (default false) selects gate instantiations instead
    of inlined assignments. *)
