open Dagmap_genlib

let fanout_of_driver nl =
  let counts = Hashtbl.create 64 in
  let bump = function
    | Netlist.D_const _ -> ()
    | d -> Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d))
  in
  Array.iter (fun i -> Array.iter bump i.Netlist.inputs) nl.Netlist.instances;
  List.iter (fun (_, d) -> bump d) nl.Netlist.outputs;
  counts

let loaded_delay ?(alpha = 0.2) nl =
  let fanouts = fanout_of_driver nl in
  (* Loading is a property of the net: gate outputs and primary
     inputs both slow down with sink count. *)
  let load_penalty d =
    match d with
    | Netlist.D_gate _ | Netlist.D_pi _ ->
      let fo = Option.value ~default:1 (Hashtbl.find_opt fanouts d) in
      alpha *. float_of_int (max 0 (fo - 1))
    | Netlist.D_const _ -> 0.0
  in
  (* Topological arrival with the driver's fanout penalty added. *)
  let n = Array.length nl.Netlist.instances in
  let arrival = Array.make n nan in
  let rec arr i =
    if Float.is_nan arrival.(i) then begin
      let inst = nl.Netlist.instances.(i) in
      let worst = ref 0.0 in
      Array.iteri
        (fun pin d ->
          let input_arrival =
            match d with
            | Netlist.D_pi _ | Netlist.D_const _ -> 0.0
            | Netlist.D_gate j -> arr j
          in
          worst :=
            Float.max !worst
              (input_arrival +. load_penalty d
              +. Gate.intrinsic_delay inst.Netlist.gate pin))
        inst.Netlist.inputs;
      arrival.(i) <- !worst
    end;
    arrival.(i)
  in
  List.fold_left
    (fun acc (_, d) ->
      match d with
      | Netlist.D_gate j -> Float.max acc (arr j +. load_penalty d)
      | Netlist.D_pi _ | Netlist.D_const _ -> acc)
    0.0 nl.Netlist.outputs

(* Round-robin split into at most [k] groups. *)
let split_into k xs =
  let groups = Array.make k [] in
  List.iteri (fun i x -> groups.(i mod k) <- x :: groups.(i mod k)) xs;
  Array.to_list groups |> List.filter (fun g -> g <> [])

let buffer_fanouts lib ~max_fanout nl =
  if max_fanout < 2 then invalid_arg "buffer_fanouts: max_fanout < 2";
  let buffer_gate = List.find_opt Gate.is_buffer lib.Libraries.gates in
  let inverter_gate = List.find_opt Gate.is_inverter lib.Libraries.gates in
  if buffer_gate = None && inverter_gate = None then
    invalid_arg "buffer_fanouts: library has neither buffer nor inverter";
  (* Copies with fresh input arrays we can rewrite in place. *)
  let base =
    Array.map
      (fun i -> { i with Netlist.inputs = Array.copy i.Netlist.inputs })
      nl.Netlist.instances
  in
  let extra = ref [] in
  let next_id = ref (Array.length base) in
  let new_instance gate inputs subject_root =
    let id = !next_id in
    incr next_id;
    extra :=
      { Netlist.inst_id = id; gate; inputs; subject_root; covers = [||] }
      :: !extra;
    id
  in
  let make_buffer src root =
    match buffer_gate with
    | Some g -> Netlist.D_gate (new_instance g [| src |] root)
    | None ->
      let g = Option.get inverter_gate in
      let first = new_instance g [| src |] root in
      Netlist.D_gate (new_instance g [| Netlist.D_gate first |] root)
  in
  (* Consumer slots: closures that rewrite one sink. *)
  let outputs = Array.of_list nl.Netlist.outputs in
  let slots_of = Hashtbl.create 64 in
  let add_slot d slot =
    match d with
    | Netlist.D_const _ -> ()
    | d ->
      Hashtbl.replace slots_of d
        (slot :: Option.value ~default:[] (Hashtbl.find_opt slots_of d))
  in
  Array.iteri
    (fun i inst ->
      Array.iteri
        (fun pin d -> add_slot d (fun src -> base.(i).Netlist.inputs.(pin) <- src))
        inst.Netlist.inputs)
    base;
  Array.iteri
    (fun i (name, d) -> add_slot d (fun src -> outputs.(i) <- (name, src)))
    outputs;
  let root_of = function
    | Netlist.D_gate j -> base.(j).Netlist.subject_root
    | Netlist.D_pi id -> id
    | Netlist.D_const _ -> -1
  in
  let rec serve root src slots =
    if List.length slots <= max_fanout then
      List.iter (fun slot -> slot src) slots
    else begin
      let groups = split_into max_fanout slots in
      List.iter
        (fun group ->
          match group with
          | [ slot ] -> slot src
          | group -> serve root (make_buffer src root) group)
        groups
    end
  in
  Hashtbl.iter
    (fun d slots ->
      if List.length slots > max_fanout then serve (root_of d) d slots)
    slots_of;
  let instances = Array.append base (Array.of_list (List.rev !extra)) in
  { nl with Netlist.instances; outputs = Array.to_list outputs }
