(** Structural pattern matching between subject graphs and pattern
    graphs — Rudell's [graph-match], extended with the paper's three
    match classes:

    - {e standard} (Definition 1): edge- and in-degree-preserving,
      one-to-one node mapping; internal subject nodes may still fan
      out of the match.
    - {e exact} (Definition 2): standard, plus internal pattern nodes
      must preserve out-degree — the class tree covering needs.
    - {e extended} (Definition 3): standard without the one-to-one
      requirement, allowing a pattern to fold onto shared subject
      structure.

    NAND input permutations are explored by trying both fanin orders
    at every NAND, so pattern generation need not enumerate them. *)

open Dagmap_genlib
open Dagmap_subject

type match_class = Standard | Exact | Extended

val class_name : match_class -> string

type mtch = {
  pattern : Pattern.t;
  pins : int array;
  (** subject node bound to each gate pin; [-1] for a pin the formula
      does not reference *)
  covered : int array;
  (** distinct subject nodes covered by the match's non-leaf pattern
      nodes (including the root); logic a DAG cover may replicate *)
}

val gate : mtch -> Gate.t

val for_each_match :
  match_class ->
  Subject.t ->
  fanouts:int array ->
  Pattern.t ->
  int ->
  (mtch -> unit) ->
  unit
(** [for_each_match cls g ~fanouts p root f] calls [f] once per
    distinct successful match of [p] rooted at subject node [root]
    (distinct = distinct pin binding). [fanouts] must be
    [Subject.fanout_counts g] (used by the exact-match out-degree
    test). *)

val matches :
  match_class -> Subject.t -> fanouts:int array -> Pattern.t -> int -> mtch list

val exists_match :
  match_class -> Subject.t -> fanouts:int array -> Pattern.t -> int -> bool
