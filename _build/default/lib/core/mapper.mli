(** Delay-oriented technology mapping by graph covering.

    One dynamic program serves both mappers, parameterized by the
    match class:

    - {!Tree}: exact matches only — matches never cross multi-fanout
      points and never require duplication; this is conventional
      tree covering (Keutzer / Rudell / SIS) expressed as a DP over
      the whole graph.
    - {!Dag}: standard matches — the paper's contribution. The
      labeling pass computes, in topological order, each node's
      optimal arrival time over all matches rooted there; the cover
      pass walks back from the outputs, duplicating subject nodes as
      needed (paper §3.1, §3.3).
    - {!Dag_extended}: extended matches (Definition 3); the paper's
      footnote 3 reports no quality difference vs. standard, which
      our ablation benchmark checks.

    Under the load-independent delay model the DAG modes are
    delay-optimal with respect to the subject graph and the pattern
    set. *)

open Dagmap_subject

type mode = Tree | Dag | Dag_extended

val mode_name : mode -> string
val mode_class : mode -> Matcher.match_class

exception Unmappable of { node : int; description : string }
(** Raised when some subject node has no match at all (cannot happen
    when the library contains INV and NAND2). *)

type stats = {
  label_seconds : float;
  cover_seconds : float;
  matches_tried : int;   (** successful matches enumerated while labeling *)
}

type result = {
  netlist : Netlist.t;
  labels : float array;  (** optimal arrival per subject node *)
  best : Matcher.mtch option array;
  run : stats;
}

val map : mode -> Matchdb.t -> Subject.t -> result

val label :
  ?pi_arrival:(int -> float) ->
  mode ->
  Matchdb.t ->
  Subject.t ->
  float array * Matcher.mtch option array * int
(** Labeling pass only: optimal arrival and best match per node,
    plus the count of matches enumerated. [pi_arrival] overrides the
    arrival time of a PI node (default 0 everywhere) — the sequential
    extension uses it to inject latch-output arrivals. *)

val optimal_delay : result -> float
(** Worst label over the subject outputs (equals
    [Netlist.delay result.netlist]; the test suite asserts this). *)
