open Dagmap_genlib
open Dagmap_subject

let epsilon = 1e-9

(* Area flow (standard mapper heuristic): the estimated area of a
   node's cone when shared fanout amortizes cost,
   af(n) = min over matches (area + sum af(leaf) / fanout(leaf)). *)
let area_flow db cls g ~fanouts ~levels =
  let n = Subject.num_nodes g in
  let af = Array.make n 0.0 in
  for node = 0 to n - 1 do
    match Subject.kind g node with
    | Spi -> af.(node) <- 0.0
    | Snand _ | Sinv _ ->
      let best = ref infinity in
      Matchdb.for_each_node_match db cls g ~fanouts ~levels node (fun m ->
          let gate = Matcher.gate m in
          let cost = ref gate.Gate.area in
          Array.iter
            (fun pin_node ->
              if pin_node >= 0 then
                cost :=
                  !cost
                  +. (af.(pin_node) /. float_of_int (max 1 fanouts.(pin_node))))
            m.Matcher.pins;
          if !cost < !best then best := !cost);
      af.(node) <- !best
  done;
  af

let recover ?(per_output = false) db mode g (result : Mapper.result) =
  let cls = Mapper.mode_class mode in
  let labels = result.Mapper.labels in
  let n = Subject.num_nodes g in
  let fanouts = Subject.fanout_counts g in
  let levels = Subject.levels g in
  let af = area_flow db cls g ~fanouts ~levels in
  let budget = Array.make n infinity in
  let needed = Array.make n false in
  let worst =
    List.fold_left
      (fun acc o -> Float.max acc labels.(o.Subject.out_node))
      0.0 g.Subject.outputs
  in
  List.iter
    (fun o ->
      let node = o.Subject.out_node in
      let target = if per_output then labels.(node) else worst in
      budget.(node) <- Float.min budget.(node) target;
      match Subject.kind g node with
      | Spi -> ()
      | Snand _ | Sinv _ -> needed.(node) <- true)
    g.Subject.outputs;
  let chosen = Array.make n None in
  (* Reverse topological sweep: all users of a node have higher ids,
     so its budget and neededness are final when visited. The cost of
     a match counts its gate plus the estimated cones of any leaves
     that are not yet needed by someone else (incremental area). *)
  for node = n - 1 downto 0 do
    if needed.(node) then begin
      let best = ref None in
      let best_cost = ref (infinity, infinity) in
      Matchdb.for_each_node_match db cls g ~fanouts ~levels node (fun m ->
          let gate = Matcher.gate m in
          let arrival = ref 0.0 in
          Array.iteri
            (fun pin pin_node ->
              if pin_node >= 0 then
                arrival :=
                  Float.max !arrival
                    (labels.(pin_node) +. Gate.intrinsic_delay gate pin))
            m.Matcher.pins;
          if !arrival <= budget.(node) +. epsilon then begin
            let area = ref gate.Gate.area in
            let counted = ref [] in
            Array.iter
              (fun pin_node ->
                if
                  pin_node >= 0
                  && (not needed.(pin_node))
                  && (not (List.mem pin_node !counted))
                  && Subject.kind g pin_node <> Spi
                then begin
                  counted := pin_node :: !counted;
                  area := !area +. af.(pin_node)
                end)
              m.Matcher.pins;
            let cost = (!area, !arrival) in
            if cost < !best_cost then begin
              best_cost := cost;
              best := Some m
            end
          end);
      let m =
        match !best with
        | Some m -> m
        | None -> begin
          (* Guard against floating-point corner cases: fall back to
             the delay-optimal match. *)
          match result.Mapper.best.(node) with
          | Some m -> m
          | None -> assert false
        end
      in
      chosen.(node) <- Some m;
      let gate = Matcher.gate m in
      Array.iteri
        (fun pin pin_node ->
          if pin_node >= 0 then begin
            let slack = budget.(node) -. Gate.intrinsic_delay gate pin in
            budget.(pin_node) <- Float.min budget.(pin_node) slack;
            match Subject.kind g pin_node with
            | Spi -> ()
            | Snand _ | Sinv _ -> needed.(pin_node) <- true
          end)
        m.Matcher.pins
    end
  done;
  (* Assemble the netlist from the chosen matches. *)
  let order = ref [] in
  for node = 0 to n - 1 do
    if needed.(node) then order := node :: !order
  done;
  let index = Hashtbl.create 64 in
  List.iteri (fun i node -> Hashtbl.replace index node i) !order;
  let driver_of node =
    match Subject.kind g node with
    | Spi -> Netlist.D_pi node
    | Snand _ | Sinv _ -> Netlist.D_gate (Hashtbl.find index node)
  in
  let instances =
    Array.of_list
      (List.mapi
         (fun i node ->
           let m = Option.get chosen.(node) in
           let gate = Matcher.gate m in
           let inputs =
             Array.map
               (fun pin_node ->
                 if pin_node >= 0 then driver_of pin_node
                 else Netlist.D_const false)
               m.Matcher.pins
           in
           { Netlist.inst_id = i; gate; inputs; subject_root = node;
             covers = m.Matcher.covered })
         !order)
  in
  let outputs =
    List.map
      (fun o -> (o.Subject.out_name, driver_of o.Subject.out_node))
      g.Subject.outputs
    @ List.map (fun (name, b) -> (name, Netlist.D_const b)) g.Subject.const_outputs
  in
  let recovered = { Netlist.source = g; instances; outputs } in
  (* The area-flow heuristic is not guaranteed to beat the
     delay-optimal cover on every circuit; keep whichever is
     smaller so recovery is never a regression. *)
  if Netlist.area recovered <= Netlist.area result.Mapper.netlist then recovered
  else result.Mapper.netlist
