lib/core/netlist.ml: Array Dagmap_genlib Dagmap_logic Dagmap_subject Float Format Gate Hashtbl List Option Printf Subject Truth
