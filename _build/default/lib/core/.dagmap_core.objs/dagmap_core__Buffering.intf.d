lib/core/buffering.mli: Dagmap_genlib Libraries Netlist
