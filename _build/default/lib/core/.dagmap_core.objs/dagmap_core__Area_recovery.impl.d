lib/core/area_recovery.ml: Array Dagmap_genlib Dagmap_subject Float Gate Hashtbl List Mapper Matchdb Matcher Netlist Option Subject
