lib/core/matchdb.ml: Array Dagmap_genlib Dagmap_subject Libraries List Matcher Pattern Subject
