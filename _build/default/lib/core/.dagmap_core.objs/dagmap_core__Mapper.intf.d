lib/core/mapper.mli: Dagmap_subject Matchdb Matcher Netlist Subject
