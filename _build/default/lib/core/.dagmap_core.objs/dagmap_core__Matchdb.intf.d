lib/core/matchdb.mli: Dagmap_genlib Dagmap_subject Libraries Matcher Subject
