lib/core/area_recovery.mli: Dagmap_subject Mapper Matchdb Netlist Subject
