lib/core/mapper.ml: Array Dagmap_genlib Dagmap_subject Float Gate Hashtbl List Matchdb Matcher Netlist Printf Queue Subject Sys
