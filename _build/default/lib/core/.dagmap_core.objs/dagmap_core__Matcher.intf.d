lib/core/matcher.mli: Dagmap_genlib Dagmap_subject Gate Pattern Subject
