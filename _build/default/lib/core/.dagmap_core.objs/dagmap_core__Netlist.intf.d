lib/core/netlist.mli: Dagmap_genlib Dagmap_subject Format Gate Subject
