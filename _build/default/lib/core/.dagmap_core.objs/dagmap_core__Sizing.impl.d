lib/core/sizing.ml: Array Dagmap_genlib Float Gate List Netlist
