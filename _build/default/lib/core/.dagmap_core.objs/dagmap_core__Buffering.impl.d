lib/core/buffering.ml: Array Dagmap_genlib Float Gate Hashtbl Libraries List Netlist Option
