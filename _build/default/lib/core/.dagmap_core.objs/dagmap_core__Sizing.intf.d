lib/core/sizing.mli: Netlist
