lib/core/matcher.ml: Array Dagmap_genlib Dagmap_subject Gate Hashtbl List Pattern Subject
