open Dagmap_genlib
open Dagmap_subject

(* Category of a pattern node as seen from its parent: a leaf matches
   any subject node; inverters and NANDs must match like kinds. *)
type cat = Cl | Ci | Cn

let cat_of_pnode p i =
  match p.Pattern.nodes.(i) with
  | Pattern.Pleaf _ -> Cl
  | Pattern.Pinv _ -> Ci
  | Pattern.Pnand _ -> Cn

let cat_matches cat (k : Subject.kind) =
  match cat, k with
  | Cl, _ -> true
  | Ci, Sinv _ -> true
  | Cn, Snand _ -> true
  | (Ci | Cn), _ -> false

type t = {
  lib : Libraries.t;
  (* NAND-rooted patterns bucketed by the unordered pair of child
     categories; INV-rooted by the single child category. *)
  nand_buckets : Pattern.t list array array; (* [cat][cat], cat_a <= cat_b *)
  inv_buckets : Pattern.t list array;
}

let cat_index = function Cl -> 0 | Ci -> 1 | Cn -> 2

let prepare lib =
  let nand_buckets = Array.make_matrix 3 3 [] in
  let inv_buckets = Array.make 3 [] in
  List.iter
    (fun p ->
      match p.Pattern.nodes.(p.Pattern.root) with
      | Pattern.Pleaf _ ->
        (* Wire/buffer patterns cannot root a cover. *)
        ()
      | Pattern.Pinv c ->
        let i = cat_index (cat_of_pnode p c) in
        inv_buckets.(i) <- p :: inv_buckets.(i)
      | Pattern.Pnand (a, b) ->
        let ia = cat_index (cat_of_pnode p a) in
        let ib = cat_index (cat_of_pnode p b) in
        let lo, hi = if ia <= ib then (ia, ib) else (ib, ia) in
        nand_buckets.(lo).(hi) <- p :: nand_buckets.(lo).(hi))
    lib.Libraries.patterns;
  { lib; nand_buckets; inv_buckets }

let library db = db.lib

let num_patterns db = List.length db.lib.Libraries.patterns

let cats = [| Cl; Ci; Cn |]

let for_each_node_match db cls g ~fanouts ~levels node f =
  let try_pattern p =
    if p.Pattern.depth <= levels.(node) then
      Matcher.for_each_match cls g ~fanouts p node f
  in
  match Subject.kind g node with
  | Spi -> ()
  | Sinv x ->
    let kx = Subject.kind g x in
    Array.iteri
      (fun i cat ->
        if cat_matches cat kx then List.iter try_pattern db.inv_buckets.(i))
      cats
  | Snand (x, y) ->
    let kx = Subject.kind g x and ky = Subject.kind g y in
    for lo = 0 to 2 do
      for hi = lo to 2 do
        let a = cats.(lo) and b = cats.(hi) in
        let compatible =
          (cat_matches a kx && cat_matches b ky)
          || (cat_matches a ky && cat_matches b kx)
        in
        if compatible then List.iter try_pattern db.nand_buckets.(lo).(hi)
      done
    done

let node_matches db cls g ~fanouts ~levels node =
  let acc = ref [] in
  for_each_node_match db cls g ~fanouts ~levels node (fun m -> acc := m :: !acc);
  List.rev !acc
