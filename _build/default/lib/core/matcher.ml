open Dagmap_genlib
open Dagmap_subject

type match_class = Standard | Exact | Extended

let class_name = function
  | Standard -> "standard"
  | Exact -> "exact"
  | Extended -> "extended"

type mtch = { pattern : Pattern.t; pins : int array; covered : int array }

let gate m = m.pattern.Pattern.gate

(* Enumerate matches by backtracking over the pattern DAG. [binding]
   maps pattern node -> subject node (-1 = unbound); [bound_to] is the
   reverse map enforcing injectivity for standard/exact matches. The
   search is driven by success continuations so that both NAND fanin
   orders are explored; bindings are undone on the way out. *)
let for_each_match cls g ~fanouts p root f =
  let nodes = p.Pattern.nodes in
  let n = Array.length nodes in
  let binding = Array.make n (-1) in
  let bound_to = Hashtbl.create 16 in
  let injective = match cls with Standard | Exact -> true | Extended -> false in
  let rec go pid sid k =
    if binding.(pid) >= 0 then begin
      (* Shared pattern node (general DAG pattern): the mapping must
         be a function, so a revisit must agree. *)
      if binding.(pid) = sid then k ()
    end
    else if injective && Hashtbl.mem bound_to sid then ()
    else begin
      let fanout_ok =
        match cls, nodes.(pid) with
        | Exact, (Pattern.Pinv _ | Pattern.Pnand _) ->
          pid = p.Pattern.root || fanouts.(sid) = p.Pattern.fanout.(pid)
        | (Exact | Standard | Extended), _ -> true
      in
      if fanout_ok then begin
        let bind () =
          binding.(pid) <- sid;
          if injective then Hashtbl.add bound_to sid pid
        in
        let unbind () =
          binding.(pid) <- -1;
          if injective then Hashtbl.remove bound_to sid
        in
        match nodes.(pid), Subject.kind g sid with
        | Pattern.Pleaf _, (Spi | Snand _ | Sinv _) ->
          bind ();
          k ();
          unbind ()
        | Pattern.Pinv c, Sinv x ->
          bind ();
          go c x k;
          unbind ()
        | Pattern.Pnand (a, b), Snand (x, y) ->
          bind ();
          go a x (fun () -> go b y k);
          if x <> y then go a y (fun () -> go b x k);
          unbind ()
        | (Pattern.Pinv _ | Pattern.Pnand _), _ -> ()
      end
    end
  in
  let seen = Hashtbl.create 4 in
  let emit () =
    let pins = Array.make (Gate.num_pins p.Pattern.gate) (-1) in
    Array.iteri
      (fun i pin -> if pin >= 0 then pins.(pin) <- binding.(i))
      p.Pattern.pin_of_leaf;
    (* Symmetric patterns can reach the same pin binding through
       different internal assignments; report each binding once. *)
    let key = Array.to_list pins in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      let covered = ref [] in
      Array.iteri
        (fun i pn ->
          match pn with
          | Pattern.Pleaf _ -> ()
          | Pattern.Pinv _ | Pattern.Pnand _ -> covered := binding.(i) :: !covered)
        nodes;
      let covered = Array.of_list (List.sort_uniq compare !covered) in
      f { pattern = p; pins; covered }
    end
  in
  go p.Pattern.root root emit

let matches cls g ~fanouts p root =
  let acc = ref [] in
  for_each_match cls g ~fanouts p root (fun m -> acc := m :: !acc);
  List.rev !acc

exception Found

let exists_match cls g ~fanouts p root =
  try
    for_each_match cls g ~fanouts p root (fun _ -> raise Found);
    false
  with Found -> true
