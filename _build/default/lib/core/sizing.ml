open Dagmap_genlib

type sized = {
  netlist : Netlist.t;
  sizes : float array;
  sized_area : float;
}

(* Output load of every instance: sum of sink input pin loads plus
   output_load per primary output driven. Sink input capacitance is
   taken at nominal size — sizing is a one-shot post-pass, as in the
   flow the paper describes (growing sink capacitance with size would
   couple the problem; the validation experiment only needs the
   first-order effect). *)
let instance_loads nl output_load =
  let n = Array.length nl.Netlist.instances in
  let loads = Array.make n 0.0 in
  Array.iteri
    (fun _sink inst ->
      Array.iteri
        (fun pin d ->
          match d with
          | Netlist.D_gate j ->
            loads.(j) <-
              loads.(j) +. inst.Netlist.gate.Gate.pins.(pin).Gate.input_load
          | Netlist.D_pi _ | Netlist.D_const _ -> ())
        inst.Netlist.inputs)
    nl.Netlist.instances;
  List.iter
    (fun (_, d) ->
      match d with
      | Netlist.D_gate j -> loads.(j) <- loads.(j) +. output_load
      | Netlist.D_pi _ | Netlist.D_const _ -> ())
    nl.Netlist.outputs;
  loads

let arc_delay gate pin ~size ~load =
  let p = gate.Gate.pins.(pin) in
  let rise = p.Gate.rise_block +. (p.Gate.rise_fanout /. size *. load) in
  let fall = p.Gate.fall_block +. (p.Gate.fall_fanout /. size *. load) in
  Float.max rise fall

let topological nl =
  let n = Array.length nl.Netlist.instances in
  let state = Array.make n 0 in
  let order = ref [] in
  let rec visit i =
    if state.(i) = 0 then begin
      state.(i) <- 1;
      Array.iter
        (function
          | Netlist.D_gate j -> visit j
          | Netlist.D_pi _ | Netlist.D_const _ -> ())
        nl.Netlist.instances.(i).Netlist.inputs;
      state.(i) <- 2;
      order := i :: !order
    end
  in
  for i = 0 to n - 1 do
    visit i
  done;
  List.rev !order

let loaded_delay ?sizes ?(output_load = 1.0) nl =
  let n = Array.length nl.Netlist.instances in
  let sizes = match sizes with Some s -> s | None -> Array.make n 1.0 in
  let loads = instance_loads nl output_load in
  let arrival = Array.make n 0.0 in
  List.iter
    (fun i ->
      let inst = nl.Netlist.instances.(i) in
      let worst = ref 0.0 in
      Array.iteri
        (fun pin d ->
          let input_arrival =
            match d with
            | Netlist.D_gate j -> arrival.(j)
            | Netlist.D_pi _ | Netlist.D_const _ -> 0.0
          in
          let d_arc =
            arc_delay inst.Netlist.gate pin ~size:sizes.(i) ~load:loads.(i)
          in
          worst := Float.max !worst (input_arrival +. d_arc))
        inst.Netlist.inputs;
      arrival.(i) <- !worst)
    (topological nl);
  List.fold_left
    (fun acc (_, d) ->
      match d with
      | Netlist.D_gate j -> Float.max acc arrival.(j)
      | Netlist.D_pi _ | Netlist.D_const _ -> acc)
    0.0 nl.Netlist.outputs

let size_to_target ?(tolerance = 0.15) ?(max_iterations = 1) ?(max_size = 16.0)
    nl =
  ignore max_iterations;
  let n = Array.length nl.Netlist.instances in
  let sizes = Array.make n 1.0 in
  let loads = instance_loads nl 1.0 in
  Array.iteri
    (fun i inst ->
      let gate = inst.Netlist.gate in
      (* Required size so each arc's penalty stays within
         tolerance * block delay. *)
      let needed = ref 1.0 in
      Array.iter
        (fun (p : Gate.pin) ->
          let budget_rise = tolerance *. Float.max p.Gate.rise_block 1e-6 in
          let budget_fall = tolerance *. Float.max p.Gate.fall_block 1e-6 in
          if p.Gate.rise_fanout > 0.0 then
            needed :=
              Float.max !needed (p.Gate.rise_fanout *. loads.(i) /. budget_rise);
          if p.Gate.fall_fanout > 0.0 then
            needed :=
              Float.max !needed (p.Gate.fall_fanout *. loads.(i) /. budget_fall))
        gate.Gate.pins;
      sizes.(i) <- Float.min max_size !needed)
    nl.Netlist.instances;
  let sized_area =
    Array.fold_left ( +. ) 0.0
      (Array.mapi
         (fun i inst -> inst.Netlist.gate.Gate.area *. sizes.(i))
         nl.Netlist.instances)
  in
  { netlist = nl; sizes; sized_area }
