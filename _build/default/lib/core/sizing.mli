(** Continuous gate sizing under the genlib load model — the paper's
    §5 justification for mapping with load-independent delays, made
    executable.

    The paper (following Lehman et al.) argues: map with a single
    intrinsic delay per gate, then continuously size each gate "so
    that the delay matches the one associated with the gate". Here a
    gate instance of size [s] presents [s x] input load on each pin
    and drives with its genlib fanout coefficients divided by [s];
    {!size_to_target} chooses sizes that bring every arc's
    load-dependent penalty within a tolerance fraction of its
    intrinsic delay (sink input capacitance is taken at nominal size,
    making this a one-shot post-pass and bounding the sized loaded
    delay by [(1 + tolerance)] times the load-independent delay the
    mapper optimized, up to the size cap). The harness uses this to validate the delay model on
    the lib2-like library (whose genlib entries carry real load
    coefficients). *)

type sized = {
  netlist : Netlist.t;
  sizes : float array;      (** per instance, >= 1 *)
  sized_area : float;       (** area scaled by sizes *)
}

val loaded_delay : ?sizes:float array -> ?output_load:float -> Netlist.t -> float
(** Worst output arrival under the genlib load model: each arc's
    delay is [block + (fanout_coeff / size(driver)) * load], where a
    net's load is the sum of its sink pins' input loads plus
    [output_load] (default 1) per primary output. [sizes] defaults to
    all 1. *)

val size_to_target :
  ?tolerance:float -> ?max_iterations:int -> ?max_size:float ->
  Netlist.t -> sized
(** Choose sizes so that every arc's load penalty is at most
    [tolerance] (default 0.15) times its intrinsic delay, sizes
    capped at [max_size] (default 16). *)
