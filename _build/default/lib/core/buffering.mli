(** Post-mapping fanout buffering (paper §3.5: "buffering techniques
    proposed in the literature can be directly used in conjunction
    with DAG covering to speed up multiple-fanout points").

    The mappers optimize the load-independent model; this module
    provides the complementary load-aware view: {!loaded_delay}
    charges each instance an extra delay per fanout beyond the first,
    and {!buffer_fanouts} builds balanced buffer trees so no driver
    sees more than a given number of sinks (a simplified Touati-style
    construction). *)

open Dagmap_genlib

val loaded_delay : ?alpha:float -> Netlist.t -> float
(** Worst output arrival when each instance's pin delays are
    inflated by [alpha * (fanout - 1)] (default [alpha = 0.2]). *)

val buffer_fanouts :
  Libraries.t -> max_fanout:int -> Netlist.t -> Netlist.t
(** Rebuild the netlist with balanced buffer trees at every driver
    whose fanout exceeds [max_fanout] (which must be at least 2).
    Uses the library's buffer gate, or an inverter pair when the
    library has no buffer. Raises [Invalid_argument] if the library
    has neither. *)
