(** A gate library prepared for fast match enumeration.

    Patterns are bucketed by the structural signature of their top
    two levels (root kind and child categories) and filtered by
    depth, so that at each subject node only plausibly-matching
    patterns are attempted. This keeps the labeling pass close to the
    O(s p) bound of the paper with a small effective [p]. *)

open Dagmap_genlib
open Dagmap_subject

type t

val prepare : Libraries.t -> t

val library : t -> Libraries.t

val num_patterns : t -> int

val for_each_node_match :
  t ->
  Matcher.match_class ->
  Subject.t ->
  fanouts:int array ->
  levels:int array ->
  int ->
  (Matcher.mtch -> unit) ->
  unit
(** Enumerate every match of every library pattern rooted at the
    given subject node. [levels] must be [Subject.levels g]. *)

val node_matches :
  t ->
  Matcher.match_class ->
  Subject.t ->
  fanouts:int array ->
  levels:int array ->
  int ->
  Matcher.mtch list
