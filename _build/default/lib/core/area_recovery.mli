(** Slack-driven area recovery after delay-optimal mapping (the
    paper's conclusion sketches this direction, citing the FlowMap
    area/depth tradeoff work).

    The labeling pass gives every subject node its optimal arrival.
    Re-covering walks the needed nodes in reverse topological order
    carrying a required-time budget: each node picks the {e smallest}
    match whose label-implied arrival meets the budget, and leaves
    inherit [budget - pin delay]. Feasibility is guaranteed because
    optimal labels always satisfy their own budgets, so the recovered
    netlist meets the optimal worst-case delay with (usually
    substantially) less area; if the heuristic happens not to help on
    a given circuit, the original cover is returned unchanged, so
    recovery never regresses. *)

open Dagmap_subject

val recover :
  ?per_output:bool ->
  Matchdb.t ->
  Mapper.mode ->
  Subject.t ->
  Mapper.result ->
  Netlist.t
(** [recover db mode g result] rebuilds the cover of [result] for
    minimum area under the delay budget. With [per_output] (default
    false) each output must meet its own optimal arrival; otherwise
    only the worst output arrival is preserved, freeing more slack on
    fast outputs. *)
