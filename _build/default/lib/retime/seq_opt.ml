open Dagmap_subject
open Dagmap_core

type verdict =
  | Feasible of { latch_arrivals : float array }
  | Infeasible

(* Sequential labeling fixpoint. Latch-output pseudo-PIs carry the
   arrival of their data input minus phi; everything else is the
   combinational labeling the mapper already implements. Arrivals are
   monotone non-decreasing across iterations once seeded from the
   most optimistic state (-infinity is approximated by 0 after one
   warm-up pass), so either they stabilize within a bounded number of
   sweeps or some loop gains delay each time around — which is
   exactly infeasibility of the period. *)
let check_period db mode net phi =
  let g = Subject.of_network net in
  let n_latches = g.Subject.n_latches in
  if n_latches = 0 then invalid_arg "Seq_opt: combinational circuit";
  let pis = Subject.pi_ids g in
  let n_pis = List.length pis in
  (* Trailing [n_latches] PIs are latch outputs, in latch order. *)
  let latch_of_pi = Hashtbl.create 16 in
  List.iteri
    (fun i id ->
      if i >= n_pis - n_latches then
        Hashtbl.replace latch_of_pi id (i - (n_pis - n_latches)))
    pis;
  (* Trailing [n_latches] outputs are the latch data inputs. *)
  let outputs = Array.of_list g.Subject.outputs in
  let n_outs = Array.length outputs in
  let latch_in_node i = outputs.(n_outs - n_latches + i).Subject.out_node in
  let real_outputs = Array.sub outputs 0 (n_outs - n_latches) in
  let latch_arrival = Array.make n_latches 0.0 in
  let max_gate_delay =
    List.fold_left
      (fun acc gate -> Float.max acc (Dagmap_genlib.Gate.max_intrinsic_delay gate))
      0.0 (Matchdb.library db).Dagmap_genlib.Libraries.gates
  in
  let divergence_bound =
    (* If a latch arrival ever exceeds the largest possible
       single-sweep combinational delay, some cycle is gaining. *)
    (float_of_int (Subject.num_nodes g) *. max_gate_delay) +. phi
  in
  let pi_arrival node =
    match Hashtbl.find_opt latch_of_pi node with
    | Some i -> latch_arrival.(i)
    | None -> 0.0
  in
  let rec iterate remaining =
    let labels, _, _ = Mapper.label ~pi_arrival mode db g in
    let changed = ref false in
    for i = 0 to n_latches - 1 do
      let next = Float.max 0.0 (labels.(latch_in_node i) -. phi) in
      if next > latch_arrival.(i) +. 1e-9 then begin
        latch_arrival.(i) <- next;
        changed := true
      end
    done;
    let diverged =
      Array.exists (fun a -> a > divergence_bound) latch_arrival
    in
    if diverged then Infeasible
    else if not !changed then begin
      (* Fixpoint: the period is feasible iff every true primary
         output also meets it. *)
      let ok =
        Array.for_all
          (fun o -> labels.(o.Subject.out_node) <= phi +. 1e-9)
          real_outputs
      in
      if ok then Feasible { latch_arrivals = Array.copy latch_arrival }
      else Infeasible
    end
    else if remaining = 0 then Infeasible
    else iterate (remaining - 1)
  in
  iterate ((4 * n_latches) + 8)

let min_period ?(tolerance = 1e-3) db mode net =
  (* Upper bound: the un-retimed mapped circuit's combinational delay
     is always feasible. Lower bound: the slowest single gate pin
     used anywhere must fit in a period. *)
  let r = Seq_map.run db mode net in
  let hi = ref (Float.max r.Seq_map.comb_delay 1e-6) in
  let lo = ref 0.0 in
  let best = ref !hi in
  while !hi -. !lo > tolerance do
    let mid = (!lo +. !hi) /. 2.0 in
    match check_period db mode net mid with
    | Feasible _ ->
      best := mid;
      hi := mid
    | Infeasible -> lo := mid
  done;
  !best
