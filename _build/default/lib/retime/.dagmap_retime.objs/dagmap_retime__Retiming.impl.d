lib/retime/retiming.ml: Array Float List Queue
