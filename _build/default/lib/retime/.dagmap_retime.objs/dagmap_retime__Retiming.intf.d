lib/retime/retiming.mli:
