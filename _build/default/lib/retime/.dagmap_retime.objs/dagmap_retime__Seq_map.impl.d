lib/retime/seq_map.ml: Array Dagmap_core Dagmap_genlib Dagmap_logic Dagmap_subject Gate Hashtbl List Mapper Netlist Network Retiming Subject
