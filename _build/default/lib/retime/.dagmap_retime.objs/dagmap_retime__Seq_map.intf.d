lib/retime/seq_map.mli: Dagmap_core Dagmap_logic Mapper Matchdb Netlist Network Retiming
