lib/retime/seq_opt.mli: Dagmap_core Dagmap_logic Mapper Matchdb Network
