lib/retime/seq_opt.ml: Array Dagmap_core Dagmap_genlib Dagmap_subject Float Hashtbl List Mapper Matchdb Seq_map Subject
