open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core

type result = {
  netlist : Netlist.t;
  comb_delay : float;
  period_before : float;
  period_after : float;
  latches_before : int;
  latches_after : int;
}

(* Resolve a network signal through latch chains: returns the driving
   logic node (or PI) and the number of latches traversed. *)
let resolve_through_latches net id =
  let latch_of_output = Hashtbl.create 16 in
  List.iter
    (fun l -> Hashtbl.replace latch_of_output l.Network.latch_output l)
    (Network.latches net);
  let rec go id weight guard =
    if guard > Network.num_nodes net then
      failwith "Seq_map: latch ring without logic";
    match (Network.node net id).Network.kind with
    | Network.Latch_out ->
      let l = Hashtbl.find latch_of_output id in
      go l.Network.latch_input (weight + 1) (guard + 1)
    | Network.Pi | Network.Logic -> (id, weight)
  in
  go id 0 0

let network_graph net =
  let g = Retiming.create () in
  let vertex = Array.make (Network.num_nodes net) (-1) in
  Network.iter_nodes net (fun n ->
      match n.Network.kind with
      | Network.Logic -> vertex.(n.Network.id) <- Retiming.add_vertex g ~delay:1.0
      | Network.Pi | Network.Latch_out -> ());
  let endpoint id =
    let src, weight = resolve_through_latches net id in
    match (Network.node net src).Network.kind with
    | Network.Pi -> (Retiming.host, weight)
    | Network.Logic -> (vertex.(src), weight)
    | Network.Latch_out -> assert false
  in
  Network.iter_nodes net (fun n ->
      match n.Network.kind with
      | Network.Pi | Network.Latch_out -> ()
      | Network.Logic ->
        Array.iter
          (fun f ->
            let src, weight = endpoint f in
            Retiming.add_edge g src vertex.(n.Network.id) ~weight)
          n.Network.fanins);
  List.iter
    (fun (_, id) ->
      let src, weight = endpoint id in
      Retiming.add_edge g src Retiming.host ~weight)
    (Network.pos net);
  (g, vertex)

let apply_network_retiming net r =
  let g, vertex = network_graph net in
  if not (Retiming.is_legal g r) then invalid_arg "apply_network_retiming";
  ignore g;
  let out = Network.create ~name:(Network.name net ^ "_retimed") () in
  let remap = Array.make (Network.num_nodes net) (-1) in
  List.iter
    (fun id ->
      remap.(id) <- Network.add_pi out (Network.node net id).Network.name)
    (Network.pis net);
  (* Weight of the retimed connection feeding consumer [v] from the
     resolved source of original signal [id]. *)
  let latched_signal id consumer_vertex =
    let src, w = resolve_through_latches net id in
    let src_vertex =
      match (Network.node net src).Network.kind with
      | Network.Pi -> Retiming.host
      | Network.Logic -> vertex.(src)
      | Network.Latch_out -> assert false
    in
    let w' = w + r.(consumer_vertex) - r.(src_vertex) in
    if w' < 0 then invalid_arg "apply_network_retiming: negative weight";
    (src, w')
  in
  let latch_cache = Hashtbl.create 16 in
  let rec with_latches src_new k =
    if k = 0 then src_new
    else
      match Hashtbl.find_opt latch_cache (src_new, k) with
      | Some id -> id
      | None ->
        let below = with_latches src_new (k - 1) in
        let id = Network.add_latch out below in
        Hashtbl.replace latch_cache (src_new, k) id;
        id
  in
  List.iter
    (fun id ->
      let n = Network.node net id in
      match n.Network.kind with
      | Network.Pi | Network.Latch_out -> ()
      | Network.Logic ->
        let fanins =
          Array.map
            (fun f ->
              let src, w = latched_signal f vertex.(id) in
              with_latches remap.(src) w)
            n.Network.fanins
        in
        remap.(id) <- Network.add_logic out ~name:n.Network.name n.Network.expr fanins)
    (Network.topological_order net);
  List.iter
    (fun (po, id) ->
      let src, w = latched_signal id Retiming.host in
      Network.add_po out po (with_latches remap.(src) w))
    (Network.pos net);
  out

let netlist_graph nl =
  let g = Retiming.create () in
  let src_graph = nl.Netlist.source in
  let n_latches = src_graph.Subject.n_latches in
  let pis = Subject.pi_ids src_graph in
  let n_pis = List.length pis in
  (* The trailing [n_latches] subject PIs are latch outputs; the
     trailing [n_latches] named outputs are the matching latch
     inputs. *)
  let latch_index_of_pi = Hashtbl.create 16 in
  List.iteri
    (fun i id ->
      if i >= n_pis - n_latches then
        Hashtbl.replace latch_index_of_pi id (i - (n_pis - n_latches)))
    pis;
  let latch_in_driver = Array.make (max n_latches 1) (Netlist.D_const false) in
  List.iteri
    (fun i (_, d) ->
      let n_outs = List.length nl.Netlist.outputs in
      if i >= n_outs - n_latches then latch_in_driver.(i - (n_outs - n_latches)) <- d)
    nl.Netlist.outputs;
  let vertex =
    Array.map
      (fun inst ->
        ignore inst;
        0)
      nl.Netlist.instances
  in
  Array.iteri
    (fun i inst ->
      vertex.(i) <-
        Retiming.add_vertex g ~delay:(Gate.max_intrinsic_delay inst.Netlist.gate))
    nl.Netlist.instances;
  (* Resolve a driver to (vertex, latch weight), following latch
     boundaries transitively. *)
  let rec resolve d weight guard =
    if guard > Array.length nl.Netlist.instances + n_latches + 1 then
      failwith "Seq_map: latch ring without logic";
    match d with
    | Netlist.D_const _ -> None
    | Netlist.D_gate j -> Some (vertex.(j), weight)
    | Netlist.D_pi id -> begin
      match Hashtbl.find_opt latch_index_of_pi id with
      | None -> Some (Retiming.host, weight)
      | Some k -> resolve latch_in_driver.(k) (weight + 1) (guard + 1)
    end
  in
  Array.iteri
    (fun i inst ->
      Array.iter
        (fun d ->
          match resolve d 0 0 with
          | None -> ()
          | Some (src, weight) -> Retiming.add_edge g src vertex.(i) ~weight)
        inst.Netlist.inputs)
    nl.Netlist.instances;
  (* True primary outputs anchor to the host. *)
  let n_outs = List.length nl.Netlist.outputs in
  List.iteri
    (fun i (_, d) ->
      if i < n_outs - n_latches then
        match resolve d 0 0 with
        | None -> ()
        | Some (src, weight) -> Retiming.add_edge g src Retiming.host ~weight)
    nl.Netlist.outputs;
  g

let run db mode net =
  let sg = Subject.of_network net in
  let mapped = Mapper.map mode db sg in
  let nl = mapped.Mapper.netlist in
  let g = netlist_graph nl in
  let period_before = Retiming.clock_period g () in
  let period_after, r = Retiming.min_period g in
  (* Min-period retimings typically carry excess registers; trim them
     greedily without giving up the period. *)
  let r = Retiming.reduce_latches g ~period:period_after r in
  { netlist = nl;
    comb_delay = Netlist.delay nl;
    period_before;
    period_after;
    latches_before = Retiming.total_latches g (Array.make (Retiming.num_vertices g) 0);
    latches_after = Retiming.total_latches g r }
