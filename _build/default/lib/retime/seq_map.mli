(** Sequential technology mapping (paper §4): the three-step
    transformation — retime, map the combinational core, retime the
    mapped circuit — with minimum-period retiming at both ends.

    The paper shows the FlowMap-style labeling extends to an exact
    polynomial algorithm (Pan & Liu); here we implement the
    transformation it evaluates, with Leiserson–Saxe min-period
    retiming as the optimization engine on both sides of the mapping
    step. Latch initial values after retiming are not computed
    (initial-state justification is orthogonal and out of scope). *)

open Dagmap_logic
open Dagmap_core

type result = {
  netlist : Netlist.t;           (** mapped combinational core *)
  comb_delay : float;            (** pure combinational delay of the core *)
  period_before : float;         (** mapped circuit, latches in original places *)
  period_after : float;          (** after min-period retiming of the mapped circuit *)
  latches_before : int;
  latches_after : int;
}

val network_graph : Network.t -> Retiming.graph * int array
(** Retiming graph of a (sequential) network at logic-node
    granularity with unit delays; the array maps network node id to
    graph vertex (or -1). Latch chains become edge weights. *)

val netlist_graph : Netlist.t -> Retiming.graph
(** Retiming graph of a mapped netlist: one vertex per instance,
    delay = worst intrinsic delay of the gate; latch boundaries of
    the underlying subject graph become weight-1 edges. *)

val apply_network_retiming : Network.t -> int array -> Network.t
(** Rebuild a network with latches moved according to a legal
    retiming of {!network_graph} (initial values set to false). *)

val run : Matchdb.t -> Mapper.mode -> Network.t -> result
(** Map the combinational core with the given mapper and retime the
    mapped circuit to its minimum period. *)
