(** Leiserson–Saxe retiming on weighted circuit graphs.

    A vertex carries a propagation delay; an edge weight counts the
    latches on that connection. A retiming assigns each vertex an
    integer lag [r(v)]; the retimed weight of an edge [(u, v)] is
    [w(e) + r(v) - r(u)], which must stay non-negative. Vertex 0 is
    the host (environment) vertex with [r = 0], to which primary
    inputs and outputs are anchored.

    Minimum-period retiming uses the FEAS feasibility test (repeated
    incremental clock-scheduling) inside a binary search over the
    period, which handles real-valued gate delays. *)

type graph

val create : unit -> graph
(** Creates the graph with the host vertex (index 0, zero delay). *)

val host : int

val add_vertex : graph -> delay:float -> int

val add_edge : graph -> int -> int -> weight:int -> unit
(** Latch-weighted connection from a driver to a consumer. *)

val num_vertices : graph -> int

val clock_period : graph -> ?retiming:int array -> unit -> float
(** Longest purely-combinational (zero-weight) path delay under the
    given retiming (default: identity). Raises [Failure] if the
    zero-weight subgraph is cyclic (an illegal circuit). *)

val feasible : graph -> float -> int array option
(** [feasible g c] runs FEAS: [Some r] when a legal retiming with
    period at most [c] exists. *)

val min_period : ?tolerance:float -> graph -> float * int array
(** Binary search over the period (default tolerance 1e-4); returns
    the best achieved period and its retiming vector. *)

val is_legal : graph -> int array -> bool
(** All retimed edge weights non-negative and [r host = 0]. *)

val retimed_weight : graph -> int array -> (int -> int -> int -> unit) -> unit
(** Iterate edges as [(u, v, new_weight)] under a retiming. *)

val total_latches : graph -> int array -> int
(** Sum of retimed edge weights (latch count after retiming). *)

val reduce_latches : graph -> period:float -> int array -> int array
(** Greedy register-count reduction: starting from a legal retiming,
    repeatedly adjust individual lags by ±1 whenever that lowers the
    total latch count while keeping legality and the given clock
    period. Returns a new retiming (the input is not modified).
    min-period retimings often carry far more registers than needed;
    this recovers most of the excess. *)
