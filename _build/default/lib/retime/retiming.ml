type edge = { src : int; dst : int; weight : int }

type graph = {
  mutable delays : float array;
  mutable count : int;
  mutable edges : edge list;
  mutable out_edges : edge list array;
}

let host = 0

let create () =
  { delays = Array.make 16 0.0; count = 1; edges = []; out_edges = [||] }

let add_vertex g ~delay =
  if g.count = Array.length g.delays then begin
    let d = Array.make (2 * g.count) 0.0 in
    Array.blit g.delays 0 d 0 g.count;
    g.delays <- d
  end;
  let v = g.count in
  g.delays.(v) <- delay;
  g.count <- v + 1;
  v

let add_edge g u v ~weight =
  if u < 0 || u >= g.count || v < 0 || v >= g.count then
    invalid_arg "Retiming.add_edge";
  if weight < 0 then invalid_arg "Retiming.add_edge: negative weight";
  g.edges <- { src = u; dst = v; weight } :: g.edges;
  g.out_edges <- [||] (* invalidate cache *)

let num_vertices g = g.count

let out_edges g =
  if Array.length g.out_edges <> g.count then begin
    let arr = Array.make g.count [] in
    List.iter (fun e -> arr.(e.src) <- e :: arr.(e.src)) g.edges;
    g.out_edges <- arr
  end;
  g.out_edges

let w_r r e = e.weight + r.(e.dst) - r.(e.src)

let identity g = Array.make g.count 0

(* Delta(v): arrival time at the output of v along zero-weight paths
   under retiming r. The host vertex is the environment: signals are
   resynchronized there, so arrival does not propagate through it
   (otherwise every PO-to-PI pair would form a spurious path).
   Computed by topological traversal of the zero-weight subgraph;
   raises on a zero-weight cycle. *)
let deltas g r =
  let adj = out_edges g in
  let propagates e = w_r r e = 0 && e.src <> host in
  let indeg = Array.make g.count 0 in
  List.iter (fun e -> if propagates e then indeg.(e.dst) <- indeg.(e.dst) + 1) g.edges;
  let delta = Array.mapi (fun v _ -> g.delays.(v)) (Array.sub g.delays 0 g.count) in
  let q = Queue.create () in
  for v = 0 to g.count - 1 do
    if indeg.(v) = 0 then Queue.add v q
  done;
  let seen = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    incr seen;
    List.iter
      (fun e ->
        if propagates e then begin
          if delta.(u) +. g.delays.(e.dst) > delta.(e.dst) then
            delta.(e.dst) <- delta.(u) +. g.delays.(e.dst);
          indeg.(e.dst) <- indeg.(e.dst) - 1;
          if indeg.(e.dst) = 0 then Queue.add e.dst q
        end)
      adj.(u)
  done;
  if !seen <> g.count then failwith "Retiming: zero-weight cycle";
  delta

let clock_period g ?retiming () =
  let r = match retiming with Some r -> r | None -> identity g in
  Array.fold_left Float.max 0.0 (deltas g r)

let is_legal g r =
  r.(host) = 0 && List.for_all (fun e -> w_r r e >= 0) g.edges

(* FEAS (Leiserson-Saxe): starting from r = 0, repeatedly increment
   the lag of every vertex whose arrival exceeds the target period.
   Converges within |V| iterations when the period is feasible. *)
let feasible g target =
  let r = identity g in
  let rec iterate remaining =
    match deltas g r with
    | exception Failure _ -> None
    | delta ->
      let violated = ref false in
      for v = 1 to g.count - 1 do
        if delta.(v) > target +. 1e-9 then begin
          violated := true;
          r.(v) <- r.(v) + 1
        end
      done;
      if not !violated then if is_legal g r then Some (Array.copy r) else None
      else if remaining = 0 then None
      else iterate (remaining - 1)
  in
  iterate g.count

let min_period ?(tolerance = 1e-4) g =
  let r0 = identity g in
  let upper = clock_period g () in
  let lower = Array.fold_left Float.max 0.0 (Array.sub g.delays 0 g.count) in
  let best = ref (upper, r0) in
  let rec search lo hi remaining =
    if remaining = 0 || hi -. lo <= tolerance then ()
    else begin
      let mid = (lo +. hi) /. 2.0 in
      match feasible g mid with
      | Some r ->
        let achieved = clock_period g ~retiming:r () in
        let best_period, _ = !best in
        if achieved < best_period then best := (achieved, r);
        search lo (Float.min mid achieved) (remaining - 1)
      | None -> search mid hi (remaining - 1)
    end
  in
  search lower upper 50;
  !best

let retimed_weight g r f = List.iter (fun e -> f e.src e.dst (w_r r e)) g.edges

let total_latches g r =
  List.fold_left (fun acc e -> acc + w_r r e) 0 g.edges

let reduce_latches g ~period r0 =
  let r = Array.copy r0 in
  let acceptable candidate =
    is_legal g candidate
    &&
    match clock_period g ~retiming:candidate () with
    | p -> p <= period +. 1e-9
    | exception Failure _ -> false
  in
  let improved = ref true in
  let guard = ref (4 * g.count * g.count) in
  while !improved && !guard > 0 do
    improved := false;
    for v = 1 to g.count - 1 do
      List.iter
        (fun delta ->
          decr guard;
          let before = total_latches g r in
          r.(v) <- r.(v) + delta;
          if acceptable r && total_latches g r < before then improved := true
          else r.(v) <- r.(v) - delta)
        [ 1; -1 ]
    done
  done;
  r
