(** Optimal cycle-time sequential mapping — the Pan & Liu decision
    procedure the paper's §4 builds on, with pattern matching in
    place of k-cut flow computations.

    For a target period [phi], label the cyclic circuit with
    sequential arrival times: crossing a latch subtracts [phi]
    (equivalently, the latch may be retimed anywhere along the path).
    The combinational core is labeled by the mapper's own dynamic
    program; latch-output arrivals feed back as
    [arrival(latch input) - phi]. The labeling is a monotone
    fixpoint computation: convergence with all true primary outputs
    arriving within [phi] means some combination of retiming and
    mapping achieves the period; divergence means none does.
    A binary search then finds the minimum period.

    This strictly generalizes the three-step transformation of
    {!Seq_map} (map, then retime): the test suite checks
    [min_period <= Seq_map.run period_after + eps]. Only the
    decision procedure and the optimal period are provided (the
    paper, too, omits construction details "due to page
    limitation"). *)

open Dagmap_logic
open Dagmap_core

type verdict =
  | Feasible of { latch_arrivals : float array }
  | Infeasible

val check_period :
  Matchdb.t -> Mapper.mode -> Network.t -> float -> verdict
(** Decide whether period [phi] is achievable by mapping plus
    retiming. *)

val min_period :
  ?tolerance:float -> Matchdb.t -> Mapper.mode -> Network.t -> float
(** Binary search for the minimum achievable period (default
    tolerance 1e-3). *)
