lib/subject/subject.ml: Array Bexpr Buffer Dagmap_logic Hashtbl List Network Printf
