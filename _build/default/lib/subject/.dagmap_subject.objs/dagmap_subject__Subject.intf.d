lib/subject/subject.mli: Dagmap_logic Network
