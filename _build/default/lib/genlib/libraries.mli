(** Built-in gate libraries standing in for the MCNC libraries used by
    the paper's experiments (the MCNC distributions are not available
    offline; see DESIGN.md, "Substitutions").

    All three libraries contain an inverter and a two-input NAND, so
    any NAND2-INV subject graph is mappable. *)

type t = {
  lib_name : string;
  gates : Gate.t list;
  patterns : Pattern.t list;  (** pattern graphs of all gates *)
}

val make : ?max_shapes:int -> string -> Gate.t list -> t
(** Assemble a library and generate its pattern graphs. *)

val lib2_like : unit -> t
(** A ~30-gate standard-cell library in the style of MCNC
    [lib2.genlib]: INV/BUF, NAND/NOR/AND/OR up to 4 inputs, AOI/OAI
    complex gates, XOR/XNOR, MUX. Defined as genlib source text and
    run through {!Genlib_parser} (load coefficients present but
    ignored by the mappers, as in the paper's footnote 4). *)

val lib44_1_like : unit -> t
(** Exactly 7 gates — INV, NAND2-4, NOR2-4 — mirroring
    "44-1.genlib only contains 7 gates". *)

val lib44_3_like : unit -> t
(** A rich library: strict superset of {!lib44_1_like} extended with
    programmatically generated multi-level NAND-tree and NOR-tree
    complex gates of up to 16 inputs, capped at 625 gates, mirroring
    "44-3.genlib has 625 gates, many of which are complex gates with
    many inputs; the largest gate has 16 inputs". *)

val minimal : unit -> t
(** INV + NAND2 only; the smallest complete library (used heavily by
    tests as a worst-case and always-mappable library). *)

val by_name : string -> t option
(** Look up ["lib2" | "44-1" | "44-3" | "minimal"]. *)

val names : string list

val num_pattern_nodes : t -> int
(** Total node count over all patterns (the paper's [p]). *)
