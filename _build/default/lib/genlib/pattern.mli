(** NAND2-INV pattern graphs for library gates.

    Following Keutzer's formulation, each gate is decomposed into a
    DAG of two-input NANDs and inverters over its pins. Because the
    structural matcher can only discover matches whose tree shape
    exists among the patterns, several associativity variants are
    generated per gate (Rudell's "expanded pattern graphs" play the
    same role for input permutations, which our matcher instead
    explores directly by trying both NAND input orders). *)

open Dagmap_logic

type pnode =
  | Pleaf of int          (** pattern input, tagged with the gate pin index *)
  | Pinv of int           (** inverter over node [i] *)
  | Pnand of int * int    (** two-input NAND over nodes [i] and [j] *)

type t = {
  gate : Gate.t;
  nodes : pnode array;    (** topologically ordered: fanins precede users *)
  root : int;             (** index of the output node *)
  fanout : int array;     (** fanout count of each node within the pattern *)
  pin_of_leaf : int array; (** pin index for leaves, [-1] otherwise *)
  depth : int;            (** longest leaf-to-root path (NANDs and INVs) *)
}

val of_gate : ?max_shapes:int -> Gate.t -> t list
(** All generated pattern graphs for a gate (deduplicated), at most
    [max_shapes] (default 32). Returns [[]] for constant gates and
    gates whose formula cannot be decomposed (none in practice). *)

val func : t -> Truth.t
(** Function computed by the pattern over the gate pins; used in
    tests to validate decomposition ([func p] must equal
    [p.gate.func]). *)

val size : t -> int
(** Node count. *)

val is_tree : t -> bool
(** True when no node (other than via distinct leaves) has fanout
    greater than one, i.e. the pattern is a leaf-DAG at worst. *)

val pp : Format.formatter -> t -> unit
