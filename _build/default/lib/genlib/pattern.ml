open Dagmap_logic

type pnode =
  | Pleaf of int
  | Pinv of int
  | Pnand of int * int

type t = {
  gate : Gate.t;
  nodes : pnode array;
  root : int;
  fanout : int array;
  pin_of_leaf : int array;
  depth : int;
}

(* ------------------------------------------------------------------ *)
(* Shape enumeration: flatten AND/OR chains and regenerate bounded    *)
(* sets of binary association trees.                                  *)
(* ------------------------------------------------------------------ *)

type nary =
  | Nvar of int
  | Nnot of nary
  | Nand_ of nary list
  | Nor_ of nary list
  | Nxor of nary * nary

let rec to_nary (e : Bexpr.t) : nary =
  match e with
  | Bexpr.Const _ -> invalid_arg "Pattern: constant subformula"
  | Bexpr.Var i -> Nvar i
  | Bexpr.Not a -> Nnot (to_nary a)
  | Bexpr.And _ ->
    let rec collect = function
      | Bexpr.And (a, b) -> collect a @ collect b
      | e -> [ to_nary e ]
    in
    Nand_ (collect e)
  | Bexpr.Or _ ->
    let rec collect = function
      | Bexpr.Or (a, b) -> collect a @ collect b
      | e -> [ to_nary e ]
    in
    Nor_ (collect e)
  | Bexpr.Xor (a, b) -> Nxor (to_nary a, to_nary b)

(* Binary association trees over an ordered operand list. For short
   lists all Catalan shapes are produced; longer lists get a balanced
   and a left-skewed shape only, to bound the pattern count. *)
let rec association_trees op operands =
  match operands with
  | [] -> invalid_arg "association_trees"
  | [ e ] -> [ e ]
  | operands when List.length operands <= 4 ->
    let n = List.length operands in
    let rec splits i =
      if i >= n then []
      else
        (List.filteri (fun j _ -> j < i) operands,
         List.filteri (fun j _ -> j >= i) operands)
        :: splits (i + 1)
    in
    List.concat_map
      (fun (l, r) ->
        List.concat_map
          (fun lt -> List.map (fun rt -> op lt rt) (association_trees op r))
          (association_trees op l))
      (splits 1)
  | operands ->
    let balanced ops =
      let rec build = function
        | [ e ] -> e
        | ops ->
          let n = List.length ops in
          let l = List.filteri (fun j _ -> j < n / 2) ops in
          let r = List.filteri (fun j _ -> j >= n / 2) ops in
          op (build l) (build r)
      in
      build ops
    in
    let skewed ops =
      match ops with
      | [] -> assert false
      | first :: rest -> List.fold_left op first rest
    in
    [ balanced operands; skewed operands ]

let cap limit xs =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take limit xs

(* All binary-shaped Bexpr variants of an n-ary formula, capped. *)
let rec shapes limit (e : nary) : Bexpr.t list =
  match e with
  | Nvar i -> [ Bexpr.var i ]
  | Nnot a -> List.map Bexpr.not_ (shapes limit a)
  | Nxor (a, b) ->
    let vs =
      List.concat_map
        (fun l -> List.map (fun r -> Bexpr.Xor (l, r)) (shapes limit b))
        (shapes limit a)
    in
    cap limit vs
  | Nand_ operands -> shapes_nary limit (fun a b -> Bexpr.And (a, b)) operands
  | Nor_ operands -> shapes_nary limit (fun a b -> Bexpr.Or (a, b)) operands

and shapes_nary limit op operands =
  (* Cartesian product of per-operand variants, then association
     shapes over each choice; capped at every step. *)
  let operand_variants = List.map (shapes limit) operands in
  let choices =
    List.fold_left
      (fun acc vs ->
        cap limit
          (List.concat_map (fun prefix -> List.map (fun v -> v :: prefix) vs) acc))
      [ [] ] operand_variants
  in
  let choices = List.map List.rev choices in
  cap limit (List.concat_map (association_trees op) choices)

(* ------------------------------------------------------------------ *)
(* NAND2-INV construction with hash-consing.                          *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable list_rev : pnode list;
  mutable next : int;
  table : (pnode, int) Hashtbl.t;
  by_index : (int, pnode) Hashtbl.t;
}

let new_builder () =
  { list_rev = []; next = 0; table = Hashtbl.create 16;
    by_index = Hashtbl.create 16 }

let mk b p =
  match Hashtbl.find_opt b.table p with
  | Some i -> i
  | None ->
    let i = b.next in
    b.next <- i + 1;
    b.list_rev <- p :: b.list_rev;
    Hashtbl.add b.table p i;
    Hashtbl.add b.by_index i p;
    i

let nodes_of_builder b = Array.of_list (List.rev b.list_rev)

(* Double inverters cancel structurally. *)
let inv b i =
  match Hashtbl.find b.by_index i with
  | Pinv j -> j
  | Pleaf _ | Pnand _ -> mk b (Pinv i)

let rec build b complement (e : Bexpr.t) =
  match e with
  | Bexpr.Const _ -> invalid_arg "Pattern: constant"
  | Bexpr.Var i ->
    let leaf = mk b (Pleaf i) in
    if complement then inv b leaf else leaf
  | Bexpr.Not a -> build b (not complement) a
  | Bexpr.And (x, y) ->
    let nand = mk b (Pnand (build b false x, build b false y)) in
    if complement then nand else inv b nand
  | Bexpr.Or (x, y) ->
    let nand = mk b (Pnand (build b true x, build b true y)) in
    if complement then inv b nand else nand
  | Bexpr.Xor (x, y) ->
    let px = build b false x in
    let py = build b false y in
    let shared = mk b (Pnand (px, py)) in
    let result =
      mk b (Pnand (mk b (Pnand (px, shared)), mk b (Pnand (py, shared))))
    in
    if complement then inv b result else result

let finalize gate b root =
  let nodes = nodes_of_builder b in
  let n = Array.length nodes in
  let fanout = Array.make n 0 in
  let bump i = fanout.(i) <- fanout.(i) + 1 in
  Array.iter
    (function
      | Pleaf _ -> ()
      | Pinv i -> bump i
      | Pnand (i, j) -> bump i; bump j)
    nodes;
  let pin_of_leaf =
    Array.map (function Pleaf p -> p | Pinv _ | Pnand _ -> -1) nodes
  in
  let depth = Array.make n 0 in
  Array.iteri
    (fun i p ->
      depth.(i) <-
        (match p with
         | Pleaf _ -> 0
         | Pinv j -> depth.(j) + 1
         | Pnand (j, k) -> 1 + max depth.(j) depth.(k)))
    nodes;
  { gate; nodes; root; fanout; pin_of_leaf; depth = depth.(root) }

let func p =
  let n = Gate.num_pins p.gate in
  let values = Array.make (Array.length p.nodes) (Truth.const n false) in
  Array.iteri
    (fun i pn ->
      values.(i) <-
        (match pn with
         | Pleaf pin -> Truth.var n pin
         | Pinv j -> Truth.lognot values.(j)
         | Pnand (j, k) -> Truth.lognand values.(j) values.(k)))
    p.nodes;
  values.(p.root)

let size p = Array.length p.nodes

let is_tree p =
  let ok = ref true in
  Array.iteri
    (fun i fo ->
      match p.nodes.(i) with
      | Pleaf _ -> ()
      | Pinv _ | Pnand _ -> if fo > 1 then ok := false)
    p.fanout;
  !ok

let of_gate ?(max_shapes = 32) gate =
  match Gate.is_constant gate with
  | Some _ -> []
  | None ->
    let variants =
      try cap max_shapes (shapes max_shapes (to_nary gate.Gate.expr))
      with Invalid_argument _ -> []
    in
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun e ->
        match
          (try
             let b = new_builder () in
             let root = build b false e in
             Some (finalize gate b root)
           with Invalid_argument _ -> None)
        with
        | None -> None
        | Some p ->
          let key = (p.nodes, p.root) in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            Some p
          end)
      variants

let pp ppf p =
  Format.fprintf ppf "pattern(%s): root=%d depth=%d@\n" p.gate.Gate.gate_name
    p.root p.depth;
  Array.iteri
    (fun i pn ->
      match pn with
      | Pleaf pin ->
        Format.fprintf ppf "  %d: leaf pin=%s@\n" i
          p.gate.Gate.pins.(pin).Gate.pin_name
      | Pinv j -> Format.fprintf ppf "  %d: inv %d@\n" i j
      | Pnand (j, k) -> Format.fprintf ppf "  %d: nand %d %d@\n" i j k)
    p.nodes
