lib/genlib/libraries.mli: Gate Pattern
