lib/genlib/pattern.ml: Array Bexpr Dagmap_logic Format Gate Hashtbl List Truth
