lib/genlib/genlib_parser.ml: Array Bexpr Buffer Dagmap_logic Gate List Printf String
