lib/genlib/gate.ml: Array Bexpr Dagmap_logic Float Format Printf Truth
