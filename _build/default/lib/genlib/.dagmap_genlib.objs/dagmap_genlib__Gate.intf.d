lib/genlib/gate.mli: Bexpr Dagmap_logic Format Truth
