lib/genlib/libraries.ml: Array Bexpr Dagmap_logic Gate Genlib_parser List Pattern Printf
