lib/genlib/genlib_parser.mli: Gate
