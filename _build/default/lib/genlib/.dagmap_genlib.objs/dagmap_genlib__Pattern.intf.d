lib/genlib/pattern.mli: Dagmap_logic Format Gate Truth
