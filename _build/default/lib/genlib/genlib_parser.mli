(** Parser for the MCNC [genlib] standard-cell library format.

    Supported syntax (per the SIS manual):
    {v
    GATE <name> <area> <output>=<formula>;
    PIN <pin-name|*> <phase> <input-load> <max-load>
        <rise-block> <rise-fanout> <fall-block> <fall-fanout>
    v}
    [#] starts a comment to end of line. [LATCH] blocks and their
    [SEQ]/[CONTROL]/[CONSTRAINT] lines are recognized and skipped
    (this reproduction maps combinational logic; latches are handled
    structurally by the retiming layer). A [PIN *] line applies to
    all formula inputs. *)

exception Syntax_error of { line : int; message : string }

val parse_string : string -> Gate.t list
(** Parse genlib source text. Raises {!Syntax_error}. *)

val parse_file : string -> Gate.t list

val to_string : Gate.t list -> string
(** Render a library back to genlib syntax. *)
