open Dagmap_logic

exception Syntax_error of { line : int; message : string }

type token = { text : string; line : int }

(* Tokenize: strip comments, split GATE statements on ';', keep PIN
   lines word-wise. The grammar is line-oriented enough that a simple
   word scanner suffices; formulas are re-parsed by Bexpr.parse. *)
let tokenize source =
  let tokens = ref [] in
  let buf = Buffer.create 32 in
  let line = ref 1 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := { text = Buffer.contents buf; line = !line } :: !tokens;
      Buffer.clear buf
    end
  in
  let in_comment = ref false in
  String.iter
    (fun c ->
      match c with
      | '\n' ->
        flush ();
        in_comment := false;
        incr line
      | _ when !in_comment -> ()
      | '#' ->
        flush ();
        in_comment := true
      | ' ' | '\t' | '\r' -> flush ()
      | ';' ->
        flush ();
        tokens := { text = ";"; line = !line } :: !tokens
      | c -> Buffer.add_char buf c)
    source;
  flush ();
  List.rev !tokens

let error line fmt =
  Printf.ksprintf (fun message -> raise (Syntax_error { line; message })) fmt

let float_of_token t =
  match float_of_string_opt t.text with
  | Some f -> f
  | None -> error t.line "expected a number, got %S" t.text

let phase_of_token t =
  match t.text with
  | "INV" -> Gate.Inv
  | "NONINV" -> Gate.Noninv
  | "UNKNOWN" -> Gate.Unknown
  | s -> error t.line "expected INV/NONINV/UNKNOWN, got %S" s

(* One PIN clause: 8 fields after the keyword. *)
let parse_pin line rest =
  match rest with
  | name :: ph :: il :: ml :: rb :: rf :: fb :: ff :: tail ->
    let pin =
      { Gate.pin_name = name.text;
        phase = phase_of_token ph;
        input_load = float_of_token il;
        max_load = float_of_token ml;
        rise_block = float_of_token rb;
        rise_fanout = float_of_token rf;
        fall_block = float_of_token fb;
        fall_fanout = float_of_token ff }
    in
    (pin, tail)
  | _ -> error line "truncated PIN clause"

(* Collect formula tokens up to ';' (formulas may contain spaces). *)
let rec take_until_semi acc = function
  | [] -> (List.rev acc, [])
  | { text = ";"; _ } :: rest -> (List.rev acc, rest)
  | t :: rest -> take_until_semi (t :: acc) rest

let split_equation line tokens =
  let text = String.concat " " (List.map (fun t -> t.text) tokens) in
  match String.index_opt text '=' with
  | None -> error line "expected <output>=<formula> in GATE statement"
  | Some i ->
    let output = String.trim (String.sub text 0 i) in
    let formula = String.sub text (i + 1) (String.length text - i - 1) in
    if String.equal output "" then error line "empty output name";
    (output, formula)

let rec parse_statements acc tokens =
  match tokens with
  | [] -> List.rev acc
  | { text = "GATE"; line } :: rest -> begin
    match rest with
    | name :: area :: more ->
      let equation_tokens, after = take_until_semi [] more in
      let output_name, formula = split_equation line equation_tokens in
      let pin_names = ref [] in
      let expr =
        try Bexpr.parse ~pin_names formula
        with Bexpr.Parse_error m -> error line "bad formula for %s: %s" name.text m
      in
      let pins, after = parse_pins line [] after in
      let pins = assign_pins line name.text !pin_names pins in
      let gate =
        try
          Gate.make ~name:name.text ~area:(float_of_token area)
            ~output_name ~pins expr
        with Invalid_argument m -> error line "%s" m
      in
      parse_statements (gate :: acc) after
    | _ -> error line "truncated GATE statement"
  end
  | { text = "LATCH"; line } :: rest ->
    (* Skip the LATCH statement and its trailing clauses. *)
    let _, after = take_until_semi [] rest in
    let after = skip_latch_clauses line after in
    parse_statements acc after
  | { text; line } :: _ -> error line "unexpected token %S" text

and parse_pins line acc tokens =
  match tokens with
  | { text = "PIN"; line = pl } :: rest ->
    let pin, after = parse_pin pl rest in
    parse_pins line (pin :: acc) after
  | _ -> (List.rev acc, tokens)

and skip_latch_clauses line tokens =
  match tokens with
  | { text = "PIN" | "SEQ" | "CONTROL" | "CONSTRAINT"; line = cl } :: rest ->
    (* Each clause is fixed-arity except we just drop words until the
       next keyword; clause words never collide with keywords. *)
    let rec drop = function
      | ({ text = "PIN" | "SEQ" | "CONTROL" | "CONSTRAINT" | "GATE" | "LATCH"; _ }
         :: _) as l ->
        l
      | [] -> []
      | _ :: rest -> drop rest
    in
    ignore cl;
    skip_latch_clauses line (drop rest)
  | _ -> tokens

(* Distribute parsed PIN clauses over the formula's pins: a clause
   whose name matches applies to that pin; a "*" clause applies to all
   pins without an explicit clause. *)
and assign_pins line gate_name pin_names clauses =
  let star =
    List.find_opt (fun p -> String.equal p.Gate.pin_name "*") clauses
  in
  let lookup name =
    match
      List.find_opt (fun p -> String.equal p.Gate.pin_name name) clauses
    with
    | Some p -> { p with Gate.pin_name = name }
    | None -> begin
      match star with
      | Some p -> { p with Gate.pin_name = name }
      | None ->
        if clauses = [] then Gate.simple_pin name
        else error line "gate %s: no PIN clause for input %s" gate_name name
    end
  in
  Array.of_list (List.map lookup pin_names)

let parse_string source = parse_statements [] (tokenize source)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let source = really_input_string ic len in
  close_in ic;
  parse_string source

let to_string gates =
  String.concat "\n" (List.map Gate.to_genlib_string gates) ^ "\n"
