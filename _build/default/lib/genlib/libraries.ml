open Dagmap_logic

type t = {
  lib_name : string;
  gates : Gate.t list;
  patterns : Pattern.t list;
}

let make ?max_shapes lib_name gates =
  let patterns = List.concat_map (Pattern.of_gate ?max_shapes) gates in
  { lib_name; gates; patterns }

(* ------------------------------------------------------------------ *)
(* lib2-like: a conventional standard-cell set, written as genlib     *)
(* source so the parser is exercised on realistic input.              *)
(* ------------------------------------------------------------------ *)

let lib2_source = {|
# lib2-like standard cell library (areas in lambda^2-ish units,
# delays in ns; load coefficients are ignored by the mappers).
GATE inv1   928  O=!a;        PIN a INV 1 999 0.50 0.10 0.50 0.10
GATE inv2  1392  O=!a;        PIN a INV 2 999 0.40 0.05 0.40 0.05
GATE buf   1392  O=a;         PIN a NONINV 1 999 0.80 0.10 0.80 0.10
GATE nand2 1392  O=!(a*b);    PIN * INV 1 999 1.00 0.15 1.00 0.15
GATE nand3 1856  O=!(a*b*c);  PIN * INV 1 999 1.20 0.18 1.20 0.18
GATE nand4 2320  O=!(a*b*c*d); PIN * INV 1 999 1.40 0.20 1.40 0.20
GATE nor2  1392  O=!(a+b);    PIN * INV 1 999 1.10 0.20 1.10 0.20
GATE nor3  1856  O=!(a+b+c);  PIN * INV 1 999 1.40 0.26 1.40 0.26
GATE nor4  2320  O=!(a+b+c+d); PIN * INV 1 999 1.70 0.30 1.70 0.30
GATE and2  1856  O=a*b;       PIN * NONINV 1 999 1.30 0.12 1.30 0.12
GATE and3  2320  O=a*b*c;     PIN * NONINV 1 999 1.50 0.14 1.50 0.14
GATE and4  2784  O=a*b*c*d;   PIN * NONINV 1 999 1.70 0.16 1.70 0.16
GATE or2   1856  O=a+b;       PIN * NONINV 1 999 1.35 0.15 1.35 0.15
GATE or3   2320  O=a+b+c;     PIN * NONINV 1 999 1.60 0.18 1.60 0.18
GATE or4   2784  O=a+b+c+d;   PIN * NONINV 1 999 1.85 0.20 1.85 0.20
GATE aoi21 1856  O=!(a*b+c);  PIN * INV 1 999 1.30 0.20 1.30 0.20
GATE aoi22 2320  O=!(a*b+c*d); PIN * INV 1 999 1.45 0.22 1.45 0.22
GATE oai21 1856  O=!((a+b)*c); PIN * INV 1 999 1.30 0.20 1.30 0.20
GATE oai22 2320  O=!((a+b)*(c+d)); PIN * INV 1 999 1.45 0.22 1.45 0.22
GATE aoi211 2320 O=!(a*b+c+d); PIN * INV 1 999 1.55 0.24 1.55 0.24
GATE oai211 2320 O=!((a+b)*c*d); PIN * INV 1 999 1.55 0.24 1.55 0.24
GATE ao22  2784  O=a*b+c*d;   PIN * NONINV 1 999 1.75 0.18 1.75 0.18
GATE oa22  2784  O=(a+b)*(c+d); PIN * NONINV 1 999 1.75 0.18 1.75 0.18
GATE xor2  2784  O=a*!b+!a*b; PIN * UNKNOWN 1 999 1.90 0.30 1.90 0.30
GATE xnor2 2784  O=a*b+!a*!b; PIN * UNKNOWN 1 999 1.90 0.30 1.90 0.30
GATE mux21 2784  O=s*a+!s*b;  PIN * UNKNOWN 1 999 1.80 0.25 1.80 0.25
GATE maj3  3248  O=a*b+b*c+a*c; PIN * UNKNOWN 1 999 2.00 0.30 2.00 0.30
GATE nand2b 1856 O=!(!a*b);   PIN * UNKNOWN 1 999 1.15 0.16 1.15 0.16
GATE nor2b  1856 O=!(!a+b);   PIN * UNKNOWN 1 999 1.25 0.20 1.25 0.20
|}

let lib44_1_source = {|
# 44-1-like: exactly seven gates (INV, NAND2-4, NOR2-4).
GATE inv   928  O=!a;          PIN a INV 1 999 0.50 0.10 0.50 0.10
GATE nand2 1392 O=!(a*b);      PIN * INV 1 999 1.00 0.15 1.00 0.15
GATE nand3 1856 O=!(a*b*c);    PIN * INV 1 999 1.20 0.18 1.20 0.18
GATE nand4 2320 O=!(a*b*c*d);  PIN * INV 1 999 1.40 0.20 1.40 0.20
GATE nor2  1392 O=!(a+b);      PIN * INV 1 999 1.10 0.20 1.10 0.20
GATE nor3  1856 O=!(a+b+c);    PIN * INV 1 999 1.40 0.26 1.40 0.26
GATE nor4  2320 O=!(a+b+c+d);  PIN * INV 1 999 1.70 0.30 1.70 0.30
|}

let minimal_source = {|
GATE inv   928  O=!a;          PIN a INV 1 999 0.50 0.10 0.50 0.10
GATE nand2 1392 O=!(a*b);      PIN * INV 1 999 1.00 0.15 1.00 0.15
|}

let lib2_like () = make "lib2" (Genlib_parser.parse_string lib2_source)
let lib44_1_like () = make "44-1" (Genlib_parser.parse_string lib44_1_source)
let minimal () = make "minimal" (Genlib_parser.parse_string minimal_source)

(* ------------------------------------------------------------------ *)
(* 44-3-like: generated complex-gate library.                         *)
(*                                                                    *)
(* Gates are alternating NAND trees (and their NOR duals) of depth    *)
(* up to three with node arity 2..4 and at most 16 leaves — the same  *)
(* family as MCNC's 44-X libraries ("4-4" = up to four groups of up   *)
(* to four inputs per level). Pin delays grow with the leaf's depth   *)
(* inside the gate, so one complex gate is markedly faster than the   *)
(* equivalent network of simple gates — the property that makes rich  *)
(* libraries reward DAG covering (paper, Table 3).                    *)
(* ------------------------------------------------------------------ *)

type gtree = Leaf | Node of gtree list

let rec gtree_leaves = function
  | Leaf -> 1
  | Node children -> List.fold_left (fun a c -> a + gtree_leaves c) 0 children

let rec gtree_size = function
  | Leaf -> 0
  | Node children -> 1 + List.fold_left (fun a c -> a + gtree_size c) 0 children

let rec gtree_depth = function
  | Leaf -> 0
  | Node children -> 1 + List.fold_left (fun a c -> max a (gtree_depth c)) 0 children

(* Canonical comparison so sorted children lists dedupe shapes. *)
let rec gtree_compare a b =
  match a, b with
  | Leaf, Leaf -> 0
  | Leaf, Node _ -> -1
  | Node _, Leaf -> 1
  | Node xs, Node ys -> List.compare gtree_compare xs ys

(* All canonical trees with the given remaining depth budget; at
   depth 0 only a leaf. Children are weakly increasing (canonical). *)
let rec subtrees depth_budget max_leaves =
  if max_leaves <= 0 then []
  else if depth_budget = 0 then [ Leaf ]
  else
    Leaf
    :: List.concat_map
         (fun children -> [ Node children ])
         (children_lists depth_budget max_leaves)

(* Lists of 2..4 canonical subtrees, weakly increasing, total leaves
   within budget. *)
and children_lists depth_budget max_leaves =
  let candidates = subtrees (depth_budget - 1) (max_leaves - 1) in
  let rec go arity min_rank leaves_left =
    if arity = 0 then [ [] ]
    else
      List.concat
        (List.mapi
           (fun rank c ->
             if rank < min_rank then []
             else
               let l = gtree_leaves c in
               if l > leaves_left then []
               else
                 List.map (fun rest -> c :: rest) (go (arity - 1) rank (leaves_left - l)))
           candidates)
  in
  List.concat_map (fun arity -> go arity 0 max_leaves) [ 2; 3; 4 ]

(* Gate families over a shape tree, leaves = consecutive pins:
   - [Nand_tree]: every internal node is a NAND (the MCNC 44-x
     family: two- and three-level NAND networks, mixed-phase).
   - [Ao_tree inverted]: alternating AND/OR levels from the root,
     optionally inverted at the root (generalized AOI/OAI and
     AO/OA complex gates). *)
type family =
  | Nand_tree
  | Ao_tree of { root_or : bool; inverted : bool }

let gtree_expr family tree =
  let next_pin = ref 0 in
  let leaf () =
    let v = Bexpr.var !next_pin in
    incr next_pin;
    v
  in
  let e =
    match family with
    | Nand_tree ->
      let rec go = function
        | Leaf -> leaf ()
        | Node children -> Bexpr.not_ (Bexpr.and_list (List.map go children))
      in
      go tree
    | Ao_tree { root_or; inverted } ->
      let rec go use_or = function
        | Leaf -> leaf ()
        | Node children ->
          let parts = List.map (go (not use_or)) children in
          if use_or then Bexpr.or_list parts else Bexpr.and_list parts
      in
      let body = go root_or tree in
      if inverted then Bexpr.not_ body else body
  in
  (e, !next_pin)

(* Pin delay grows with the pin's depth inside the gate but much more
   slowly than a cascade of simple gates would — the property that
   makes rich libraries reward DAG covering. *)
let gtree_pins extra tree =
  let pins = ref [] in
  let rec go depth = function
    | Leaf ->
      let d = 0.45 +. (0.33 *. float_of_int depth) +. extra in
      pins := d :: !pins
    | Node children -> List.iter (go (depth + 1)) children
  in
  go 0 tree;
  List.rev !pins

let family_tag = function
  | Nand_tree -> "nnd"
  | Ao_tree { root_or = false; inverted = true } -> "aoi"
  | Ao_tree { root_or = true; inverted = true } -> "oai"
  | Ao_tree { root_or = false; inverted = false } -> "ao"
  | Ao_tree { root_or = true; inverted = false } -> "oa"

let gate_of_gtree index family tree =
  let expr, n_pins = gtree_expr family tree in
  (* Non-inverting gates carry an output-inverter penalty. *)
  let extra =
    match family with
    | Nand_tree | Ao_tree { inverted = true; _ } -> 0.0
    | Ao_tree { inverted = false; _ } -> 0.25
  in
  let delays = gtree_pins extra tree in
  assert (List.length delays = n_pins);
  let pins =
    Array.of_list
      (List.mapi
         (fun i d -> Gate.simple_pin ~delay:d (Printf.sprintf "p%d" i))
         delays)
  in
  let area = float_of_int (928 + (464 * gtree_size tree)) in
  let name =
    Printf.sprintf "%s%d_%dx%d" (family_tag family) index n_pins
      (gtree_depth tree)
  in
  Gate.make ~name ~area ~pins expr

(* XOR/XNOR complex gates (SOP form), 2 and 3 inputs. *)
let xor_gates () =
  let rec xor_expr = function
    | [] -> Bexpr.const false
    | [ x ] -> x
    | x :: rest -> Bexpr.Xor (x, xor_expr rest)
  in
  List.concat_map
    (fun n ->
      let vars = List.init n Bexpr.var in
      let pins d =
        Array.init n (fun i -> Gate.simple_pin ~delay:d (Printf.sprintf "p%d" i))
      in
      let delay = 1.4 +. (0.5 *. float_of_int (n - 2)) in
      [ Gate.make
          ~name:(Printf.sprintf "cxor%d" n)
          ~area:(float_of_int (1856 * (n - 1)))
          ~pins:(pins delay) (xor_expr vars);
        Gate.make
          ~name:(Printf.sprintf "cxnor%d" n)
          ~area:(float_of_int (1856 * (n - 1)))
          ~pins:(pins delay)
          (Bexpr.not_ (xor_expr vars)) ])
    [ 2; 3 ]

let lib44_3_like () =
  let base = Genlib_parser.parse_string lib44_1_source in
  let trees =
    children_lists 3 16
    |> List.map (fun children -> Node children)
    |> List.sort_uniq gtree_compare
    (* Order simple-to-complex so the cap keeps useful gates. *)
    |> List.sort (fun a b ->
           compare
             (gtree_size a, gtree_leaves a)
             (gtree_size b, gtree_leaves b))
  in
  (* Depth-1 trees of 2..4 inputs duplicate the base library. *)
  let trees =
    List.filter
      (fun t -> not (gtree_depth t = 1 && gtree_leaves t <= 4))
      trees
  in
  let families =
    [ Nand_tree;
      Ao_tree { root_or = false; inverted = true };   (* AOI *)
      Ao_tree { root_or = true; inverted = true };    (* OAI *)
      Ao_tree { root_or = false; inverted = false };  (* AO *)
      Ao_tree { root_or = true; inverted = false } ]  (* OA *)
  in
  let budget = 625 - List.length base - 4 (* xor gates *) in
  let per_family = budget / List.length families in
  (* Stratified selection: round-robin across leaf counts 2..16 so
     every input width is represented (the paper: "many complex
     gates with many inputs; the largest gate has 16 inputs"). *)
  let by_leaves = Array.make 17 [] in
  List.iter
    (fun t ->
      let l = gtree_leaves t in
      if l <= 16 then by_leaves.(l) <- t :: by_leaves.(l))
    (List.rev trees);
  let complex_trees =
    let picked = ref [] and count = ref 0 in
    let exhausted = ref false in
    while (not !exhausted) && !count < per_family do
      exhausted := true;
      for l = 2 to 16 do
        match by_leaves.(l) with
        | [] -> ()
        | t :: rest when !count < per_family ->
          by_leaves.(l) <- rest;
          picked := t :: !picked;
          incr count;
          exhausted := false
        | _ :: _ -> ()
      done
    done;
    List.rev !picked
  in
  let gates =
    base @ xor_gates ()
    @ List.concat_map
        (fun family ->
          List.mapi (fun i t -> gate_of_gtree i family t) complex_trees)
        families
  in
  let rec cap n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: cap (n - 1) rest
  in
  (* Rich libraries multiply fast: restrain per-gate shape variants. *)
  make ~max_shapes:6 "44-3" (cap 625 gates)

let names = [ "lib2"; "44-1"; "44-3"; "minimal" ]

let by_name = function
  | "lib2" -> Some (lib2_like ())
  | "44-1" -> Some (lib44_1_like ())
  | "44-3" -> Some (lib44_3_like ())
  | "minimal" -> Some (minimal ())
  | _ -> None

let num_pattern_nodes lib =
  List.fold_left (fun acc p -> acc + Pattern.size p) 0 lib.patterns
