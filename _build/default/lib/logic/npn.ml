type transform = {
  perm : int array;
  input_neg : int;
  output_neg : bool;
}

let identity n = { perm = Array.init n (fun i -> i); input_neg = 0; output_neg = false }

let apply tt t =
  let n = Truth.num_vars tt in
  if Array.length t.perm <> n then invalid_arg "Npn.apply";
  (* Negate selected inputs by swapping cofactors, i.e. xor-ing the
     function with the variable: f(x_i <- !x_i). Implemented by bit
     remapping on minterms for clarity and correctness. *)
  let result = ref (Truth.const n false) in
  for m = 0 to (1 lsl n) - 1 do
    let m_neg = m lxor t.input_neg in
    let m' = ref 0 in
    for i = 0 to n - 1 do
      if m_neg land (1 lsl i) <> 0 then m' := !m' lor (1 lsl t.perm.(i))
    done;
    if Truth.get_bit tt m then result := Truth.set_bit !result !m' true
  done;
  if t.output_neg then Truth.lognot !result else !result

let rec permutations_list = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) xs in
        List.map (fun p -> x :: p) (permutations_list rest))
      xs

let permutations n =
  if n > 8 then invalid_arg "Npn.permutations";
  List.map Array.of_list (permutations_list (List.init n (fun i -> i)))

let p_variants tt =
  let n = Truth.num_vars tt in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun perm ->
      let v = Truth.permute tt perm in
      let key = Truth.to_hex v in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some (v, perm)
      end)
    (permutations n)

let npn_canon tt =
  let n = Truth.num_vars tt in
  let best = ref None in
  List.iter
    (fun perm ->
      for input_neg = 0 to (1 lsl n) - 1 do
        List.iter
          (fun output_neg ->
            let t = { perm; input_neg; output_neg } in
            let v = apply tt t in
            match !best with
            | Some (b, _) when Truth.compare b v <= 0 -> ()
            | Some _ | None -> best := Some (v, t))
          [ false; true ]
      done)
    (permutations n);
  match !best with Some r -> r | None -> assert false

let npn_equal a b =
  Truth.num_vars a = Truth.num_vars b
  && Truth.equal (fst (npn_canon a)) (fst (npn_canon b))
