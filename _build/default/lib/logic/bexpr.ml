type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

let const b = Const b
let var i =
  if i < 0 then invalid_arg "Bexpr.var";
  Var i

let not_ = function
  | Const b -> Const (not b)
  | Not e -> e
  | e -> Not e

let and2 a b =
  match a, b with
  | Const false, _ | _, Const false -> Const false
  | Const true, e | e, Const true -> e
  | _ -> And (a, b)

let or2 a b =
  match a, b with
  | Const true, _ | _, Const true -> Const true
  | Const false, e | e, Const false -> e
  | _ -> Or (a, b)

let xor2 a b =
  match a, b with
  | Const false, e | e, Const false -> e
  | Const true, e | e, Const true -> not_ e
  | _ -> Xor (a, b)

(* Balanced reduction keeps decomposition depth logarithmic. *)
let rec reduce op identity = function
  | [] -> identity
  | [ e ] -> e
  | es ->
    let rec pair = function
      | [] -> []
      | [ e ] -> [ e ]
      | a :: b :: rest -> op a b :: pair rest
    in
    reduce op identity (pair es)

let and_list es = reduce and2 (Const true) es
let or_list es = reduce or2 (Const false) es

let rec eval e env =
  match e with
  | Const b -> b
  | Var i -> env i
  | Not a -> not (eval a env)
  | And (a, b) -> eval a env && eval b env
  | Or (a, b) -> eval a env || eval b env
  | Xor (a, b) -> eval a env <> eval b env

let rec num_vars = function
  | Const _ -> 0
  | Var i -> i + 1
  | Not a -> num_vars a
  | And (a, b) | Or (a, b) | Xor (a, b) -> max (num_vars a) (num_vars b)

let vars e =
  let module IS = Set.Make (Int) in
  let rec go acc = function
    | Const _ -> acc
    | Var i -> IS.add i acc
    | Not a -> go acc a
    | And (a, b) | Or (a, b) | Xor (a, b) -> go (go acc a) b
  in
  IS.elements (go IS.empty e)

let rec to_truth n e =
  match e with
  | Const b -> Truth.const n b
  | Var i -> Truth.var n i
  | Not a -> Truth.lognot (to_truth n a)
  | And (a, b) -> Truth.logand (to_truth n a) (to_truth n b)
  | Or (a, b) -> Truth.logor (to_truth n a) (to_truth n b)
  | Xor (a, b) -> Truth.logxor (to_truth n a) (to_truth n b)

let rec map_vars subst = function
  | Const b -> Const b
  | Var i -> subst i
  | Not a -> not_ (map_vars subst a)
  | And (a, b) -> and2 (map_vars subst a) (map_vars subst b)
  | Or (a, b) -> or2 (map_vars subst a) (map_vars subst b)
  | Xor (a, b) -> xor2 (map_vars subst a) (map_vars subst b)

let rec size = function
  | Const _ | Var _ -> 1
  | Not a -> 1 + size a
  | And (a, b) | Or (a, b) | Xor (a, b) -> 1 + size a + size b

let rec depth = function
  | Const _ | Var _ -> 0
  | Not a -> depth a
  | And (a, b) | Or (a, b) | Xor (a, b) -> 1 + max (depth a) (depth b)

let equal (a : t) (b : t) = a = b

let of_cubes cubes =
  let cube lits =
    and_list
      (List.map (fun (v, phase) -> if phase then var v else not_ (var v)) lits)
  in
  or_list (List.map cube cubes)

(* Printing: OR at lowest precedence, then AND, then NOT/atoms. *)
let rec pp_prec names prec ppf e =
  let open Format in
  match e with
  | Const b -> pp_print_string ppf (if b then "CONST1" else "CONST0")
  | Var i -> pp_print_string ppf (names i)
  | Not a -> fprintf ppf "!%a" (pp_prec names 2) a
  | And (a, b) ->
    if prec > 1 then fprintf ppf "(%a*%a)" (pp_prec names 1) a (pp_prec names 1) b
    else fprintf ppf "%a*%a" (pp_prec names 1) a (pp_prec names 1) b
  | Or (a, b) ->
    if prec > 0 then fprintf ppf "(%a+%a)" (pp_prec names 0) a (pp_prec names 0) b
    else fprintf ppf "%a+%a" (pp_prec names 0) a (pp_prec names 0) b
  | Xor (a, b) ->
    (* genlib has no XOR operator; print expanded. *)
    pp_prec names prec ppf (Or (And (a, Not b), And (Not a, b)))

let pp ~names ppf e = pp_prec names 0 ppf e

let to_string ~names e = Format.asprintf "%a" (pp ~names) e

exception Parse_error of string

(* Recursive-descent parser for genlib formulas.
   grammar:  or   := and (('+'|空) and)*        -- '+' only
             and  := unary (('*' | juxtaposition) unary)*
             unary:= '!' unary | atom '''*
             atom := ident | CONST0 | CONST1 | '(' or ')'          *)
let parse ~pin_names text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_' || c = '[' || c = ']' || c = '.'
  in
  let read_ident () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some c when is_ident_char c -> advance (); go ()
      | _ -> ()
    in
    go ();
    String.sub text start (!pos - start)
  in
  let var_of_name name =
    let rec index i = function
      | [] ->
        pin_names := !pin_names @ [ name ];
        i
      | x :: _ when String.equal x name -> i
      | _ :: rest -> index (i + 1) rest
    in
    var (index 0 !pin_names)
  in
  let rec parse_or () =
    let lhs = parse_and () in
    skip_ws ();
    match peek () with
    | Some '+' -> advance (); or2 lhs (parse_or ())
    | _ -> lhs
  and parse_and () =
    let lhs = parse_unary () in
    skip_ws ();
    match peek () with
    | Some '*' -> advance (); and2 lhs (parse_and ())
    | Some c when c = '!' || c = '(' || is_ident_char c ->
      (* Juxtaposition denotes AND in genlib ("a b" = a*b). *)
      and2 lhs (parse_and ())
    | _ -> lhs
  and parse_unary () =
    skip_ws ();
    match peek () with
    | Some '!' -> advance (); with_postfix (not_ (parse_unary ()))
    | Some '(' ->
      advance ();
      let e = parse_or () in
      skip_ws ();
      (match peek () with
       | Some ')' -> advance (); with_postfix e
       | _ -> raise (Parse_error "expected ')'"))
    | Some c when is_ident_char c ->
      let id = read_ident () in
      let e =
        match id with
        | "CONST0" -> const false
        | "CONST1" -> const true
        | _ -> var_of_name id
      in
      with_postfix e
    | Some c -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
    | None -> raise (Parse_error "unexpected end of formula")
  and with_postfix e =
    match peek () with
    | Some '\'' -> advance (); with_postfix (not_ e)
    | _ -> e
  in
  let e = parse_or () in
  skip_ws ();
  if !pos <> n then
    raise (Parse_error (Printf.sprintf "trailing input at offset %d" !pos));
  e
