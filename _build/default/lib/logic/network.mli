(** Technology-independent Boolean networks.

    A network is a DAG of logic nodes, each computing a Boolean
    expression of its fanins, plus primary inputs, primary outputs and
    (optionally) edge-triggered latches. Latch outputs act as
    combinational leaves; latch inputs as combinational roots. *)

type kind =
  | Pi         (** primary input *)
  | Latch_out  (** output of a latch; a combinational leaf *)
  | Logic      (** internal node with a function of its fanins *)

type node = private {
  id : int;
  name : string;
  kind : kind;
  mutable expr : Bexpr.t;   (** over fanin indices; ignored for leaves *)
  mutable fanins : int array;
}

type latch = private {
  mutable latch_input : int;  (** -1 until bound *)
  latch_output : int;
  latch_init : bool;
}

type t

val create : ?name:string -> unit -> t

val name : t -> string

val add_pi : t -> string -> int
(** Add a primary input; returns its node id. *)

val add_logic : t -> ?name:string -> Bexpr.t -> int array -> int
(** [add_logic net expr fanins] adds an internal node computing
    [expr] over [fanins] (expression variable [i] refers to
    [fanins.(i)]). Fanin ids must already exist. *)

val add_latch : t -> ?name:string -> ?init:bool -> int -> int
(** [add_latch net d] adds a latch whose data input is node [d];
    returns the id of the new latch-output node. *)

val add_latch_output : t -> ?name:string -> ?init:bool -> unit -> int
(** Create a latch whose data input is not yet known (needed when
    reading formats where latches may reference logic defined later);
    bind it with {!set_latch_input} before using the network. *)

val set_latch_input : t -> latch_output:int -> int -> unit
(** Bind the data input of the latch created for [latch_output]. *)

val add_po : t -> string -> int -> unit
(** Declare node [id] as driving primary output [name]. *)

val node : t -> int -> node
val num_nodes : t -> int
val pis : t -> int list
(** Primary inputs in creation order. *)

val pos : t -> (string * int) list
(** Primary outputs in creation order. *)

val latches : t -> latch list

val fanout_counts : t -> int array
(** Combinational fanout count per node (PO and latch-input uses
    each count as one fanout). *)

val topological_order : t -> int list
(** All nodes, leaves first; every node appears after its fanins.
    Raises [Failure] on a combinational cycle. *)

val level : t -> int array
(** Combinational level of each node (leaves are 0). *)

val depth : t -> int
(** Maximum level over PO drivers and latch inputs. *)

val node_truth : t -> int -> Truth.t
(** Local function of a logic node as a truth table over its fanins. *)

val iter_nodes : t -> (node -> unit) -> unit

val is_k_bounded : t -> int -> bool
(** Whether every logic node has at most [k] fanins. *)

val find_by_name : t -> string -> int option

val stats : t -> string
(** One-line summary: #pi/#po/#nodes/#latches/depth. *)

val to_dot : t -> string
(** Graphviz rendering (for debugging / documentation). *)

val validate : t -> unit
(** Check structural invariants (fanin ids in range, expression
    variables within fanin count, acyclicity); raises [Failure]
    describing the first violation. *)
