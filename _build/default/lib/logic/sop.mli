(** Two-level (sum-of-products) minimization — a Quine–McCluskey-style
    prime-implicant cover with essential-prime extraction and greedy
    covering. Intended for node-local functions (up to ~10
    variables); the BLIF writer uses it to emit compact covers. *)

type cube = {
  mask : int;   (** bitset of cared variables *)
  value : int;  (** required values on the cared variables *)
}

val cube_covers : cube -> int -> bool
(** Whether a minterm satisfies the cube. *)

val minimize : Truth.t -> cube list
(** A prime-implicant cover of the function: every returned cube is a
    prime implicant; together they cover exactly the on-set.
    Constant-false yields [[]]; constant-true yields the universal
    cube. *)

val to_truth : int -> cube list -> Truth.t
(** Rebuild the function from a cover (inverse of {!minimize}). *)

val to_expr : cube list -> Bexpr.t
(** The cover as a Boolean expression. *)

val minimize_expr : int -> Bexpr.t -> Bexpr.t
(** Two-level-minimize an expression of [n] variables (via its truth
    table). *)

val cube_literals : cube -> (int * bool) list
(** The cube's literals as (variable, phase) pairs, ascending. *)
