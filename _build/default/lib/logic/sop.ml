type cube = { mask : int; value : int }

let cube_covers c m = m land c.mask = c.value

(* Quine-McCluskey merge: cubes with identical masks whose values
   differ in exactly one cared bit combine into a cube that drops
   that bit. Iterate to closure; cubes that never merge are prime. *)
let primes n tt =
  let full_mask = (1 lsl n) - 1 in
  let on_set = ref [] in
  for m = 0 to (1 lsl n) - 1 do
    if Truth.get_bit tt m then on_set := { mask = full_mask; value = m } :: !on_set
  done;
  let primes = ref [] in
  let current = ref !on_set in
  while !current <> [] do
    let merged = Hashtbl.create 64 in
    let next = Hashtbl.create 64 in
    let arr = Array.of_list !current in
    let k = Array.length arr in
    for i = 0 to k - 1 do
      for j = i + 1 to k - 1 do
        let a = arr.(i) and b = arr.(j) in
        if a.mask = b.mask then begin
          let diff = a.value lxor b.value in
          (* exactly one bit set *)
          if diff <> 0 && diff land (diff - 1) = 0 then begin
            let c = { mask = a.mask land lnot diff; value = a.value land lnot diff } in
            Hashtbl.replace next (c.mask, c.value) c;
            Hashtbl.replace merged (a.mask, a.value) ();
            Hashtbl.replace merged (b.mask, b.value) ()
          end
        end
      done
    done;
    Array.iter
      (fun c ->
        if not (Hashtbl.mem merged (c.mask, c.value)) then primes := c :: !primes)
      arr;
    current := Hashtbl.fold (fun _ c acc -> c :: acc) next []
  done;
  !primes

let minimize tt =
  let n = Truth.num_vars tt in
  match Truth.is_const tt with
  | Some false -> []
  | Some true -> [ { mask = 0; value = 0 } ]
  | None ->
    let primes = primes n tt in
    (* Covering: essential primes first, then greedy by coverage. *)
    let minterms = ref [] in
    for m = 0 to (1 lsl n) - 1 do
      if Truth.get_bit tt m then minterms := m :: !minterms
    done;
    let uncovered = Hashtbl.create 64 in
    List.iter (fun m -> Hashtbl.replace uncovered m ()) !minterms;
    let chosen = ref [] in
    let choose c =
      chosen := c :: !chosen;
      Hashtbl.iter
        (fun m () -> if cube_covers c m then Hashtbl.remove uncovered m)
        (Hashtbl.copy uncovered)
    in
    (* Essential primes: a minterm covered by exactly one prime. *)
    List.iter
      (fun m ->
        if Hashtbl.mem uncovered m then begin
          match List.filter (fun c -> cube_covers c m) primes with
          | [ only ] when not (List.memq only !chosen) -> choose only
          | _ -> ()
        end)
      !minterms;
    (* Greedy: repeatedly take the prime covering the most remaining
       minterms. *)
    while Hashtbl.length uncovered > 0 do
      let best = ref None in
      List.iter
        (fun c ->
          let gain =
            Hashtbl.fold
              (fun m () acc -> if cube_covers c m then acc + 1 else acc)
              uncovered 0
          in
          match !best with
          | Some (g, _) when g >= gain -> ()
          | _ -> if gain > 0 then best := Some (gain, c))
        primes;
      match !best with
      | Some (_, c) -> choose c
      | None -> Hashtbl.reset uncovered (* unreachable: primes cover the on-set *)
    done;
    List.rev !chosen

let to_truth n cubes =
  List.fold_left
    (fun acc c ->
      let cube_tt = ref (Truth.const n true) in
      for i = 0 to n - 1 do
        if c.mask land (1 lsl i) <> 0 then begin
          let v = Truth.var n i in
          let lit = if c.value land (1 lsl i) <> 0 then v else Truth.lognot v in
          cube_tt := Truth.logand !cube_tt lit
        end
      done;
      Truth.logor acc !cube_tt)
    (Truth.const n false) cubes

let cube_literals c =
  let lits = ref [] in
  let rec go i =
    if 1 lsl i <= c.mask then begin
      if c.mask land (1 lsl i) <> 0 then
        lits := (i, c.value land (1 lsl i) <> 0) :: !lits;
      go (i + 1)
    end
  in
  go 0;
  List.rev !lits

let to_expr cubes = Bexpr.of_cubes (List.map cube_literals cubes)

let minimize_expr n e = to_expr (minimize (Bexpr.to_truth n e))
