lib/logic/sop.ml: Array Bexpr Hashtbl List Truth
