lib/logic/network.ml: Array Bexpr Buffer List Printf String
