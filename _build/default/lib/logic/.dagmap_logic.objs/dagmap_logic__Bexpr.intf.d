lib/logic/bexpr.mli: Format Truth
