lib/logic/bexpr.ml: Format Int List Printf Set String Truth
