lib/logic/network.mli: Bexpr Truth
