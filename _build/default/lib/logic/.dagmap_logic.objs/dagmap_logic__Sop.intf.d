lib/logic/sop.mli: Bexpr Truth
