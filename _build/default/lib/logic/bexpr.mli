(** Boolean expression trees.

    Variables are integers (indices into some external ordering, e.g.
    a node's fanin list or a gate's pin list). Expressions are the
    structural currency of the system: network node functions,
    genlib gate formulas and decomposition inputs are all [Bexpr.t]. *)

type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

val const : bool -> t
val var : int -> t
val not_ : t -> t
val and2 : t -> t -> t
val or2 : t -> t -> t
val xor2 : t -> t -> t
(** Smart constructors with constant folding and double-negation
    elimination. *)

val and_list : t list -> t
val or_list : t list -> t
(** Balanced-tree n-ary conjunction / disjunction (identity elements
    for the empty list). *)

val num_vars : t -> int
(** One plus the largest variable index occurring ([0] if none). *)

val vars : t -> int list
(** Sorted list of distinct variable indices occurring. *)

val eval : t -> (int -> bool) -> bool

val to_truth : int -> t -> Truth.t
(** [to_truth n e] interprets [e] over an [n]-variable domain. *)

val map_vars : (int -> t) -> t -> t
(** Simultaneous substitution. *)

val size : t -> int
(** Number of operator and leaf nodes. *)

val depth : t -> int

val equal : t -> t -> bool

val of_cubes : (int * bool) list list -> t
(** Sum of products: each cube is a list of [(variable, phase)]
    literals; [phase = true] means the positive literal. The empty
    cube list denotes constant false; an empty cube denotes true. *)

val pp : names:(int -> string) -> Format.formatter -> t -> unit
(** Print using genlib syntax: [*] for AND, [+] for OR, [!] for NOT. *)

val to_string : names:(int -> string) -> t -> string

exception Parse_error of string

val parse : pin_names:string list ref -> string -> t
(** Parse a genlib-style formula ([a*b + !c], [a b + c'], constants
    [CONST0]/[CONST1]). Identifiers are assigned variable indices in
    order of first occurrence and appended to [pin_names] (which may
    be pre-seeded to pin an ordering). *)
