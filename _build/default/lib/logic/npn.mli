(** Input-permutation (P) and negation-permutation (NPN) utilities
    on truth tables, used by Boolean matching.

    Exact NPN canonicalization enumerates all [2^(n+1) * n!]
    transforms, so it is intended for [n <= 5]; the cut-based mapper
    uses only the permutation group (plus output phase), which is
    cheap for the library-side precomputation. *)

type transform = {
  perm : int array;      (** new position of each input: input [i] of
                             the original becomes input [perm.(i)] *)
  input_neg : int;       (** bitmask of negated inputs (original
                             numbering) *)
  output_neg : bool;
}

val identity : int -> transform

val apply : Truth.t -> transform -> Truth.t
(** Apply negations then permutation, then output phase. *)

val permutations : int -> int array list
(** All permutations of [0 .. n-1] ([n <= 8]). *)

val p_variants : Truth.t -> (Truth.t * int array) list
(** All distinct permutation variants of a function, each with the
    permutation that produces it. *)

val npn_canon : Truth.t -> Truth.t * transform
(** Exact NPN-canonical representative (lexicographically smallest
    table) and one transform reaching it. Cost grows as
    [2^(n+1) n!]; use for [n <= 5]. *)

val npn_equal : Truth.t -> Truth.t -> bool
(** Whether two functions are NPN-equivalent (via {!npn_canon}). *)
