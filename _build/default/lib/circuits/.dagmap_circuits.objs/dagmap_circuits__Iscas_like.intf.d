lib/circuits/iscas_like.mli: Dagmap_logic Network
