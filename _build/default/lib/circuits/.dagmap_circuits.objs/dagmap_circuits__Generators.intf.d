lib/circuits/generators.mli: Dagmap_logic Network
