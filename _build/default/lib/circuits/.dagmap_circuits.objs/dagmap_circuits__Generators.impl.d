lib/circuits/generators.ml: Array Bexpr Dagmap_logic Hashtbl Lazy List Network Option Printf Random
