lib/circuits/iscas_like.ml: Array Dagmap_logic Generators List Network
