(** Deterministic synthetic stand-ins for the ISCAS-85 benchmarks
    used by the paper's experiments.

    The original netlists are not distributable here, so each
    benchmark is replaced by a generated circuit of the same flavor
    and comparable subject-graph size (see DESIGN.md,
    "Substitutions"): [c6288_like] is a genuine 16x16 array
    multiplier — the real C6288 is exactly that structure — and the
    others mix arithmetic slices with seeded reconvergent random
    logic sized to the published benchmarks. *)

open Dagmap_logic

(** Flavors: c432 priority control; c880 8-bit ALU; c1355/c1908 ECC
    and parity; c2670 ALU + comparator; c3540 ALU + control; c5315
    large ALU/selector; c6288 16x16 array multiplier; c7552
    adder/comparator/parity. *)

val c432_like : unit -> Network.t
val c880_like : unit -> Network.t
val c1355_like : unit -> Network.t
val c1908_like : unit -> Network.t
val c2670_like : unit -> Network.t
val c3540_like : unit -> Network.t
val c5315_like : unit -> Network.t
val c6288_like : unit -> Network.t
val c7552_like : unit -> Network.t

val table_circuits : unit -> (string * Network.t) list
(** The five circuits of the paper's Tables 1-3, in paper order:
    C2670, C3540, C5315, C6288, C7552 (the [_like] stand-ins). *)

val all : unit -> (string * Network.t) list
(** All nine stand-ins, smallest first. *)
