open Dagmap_logic

(* Each stand-in combines arithmetic cores (which create the long
   reconvergent carry and compare chains that make delay mapping
   interesting) with seeded random control logic (which creates the
   irregular multi-fanout structure that separates tree covering from
   DAG covering). Sizes approximate the ISCAS-85 subject graphs. *)

let rename name net =
  let renamed = Network.create ~name () in
  let remap = Array.make (Network.num_nodes net) (-1) in
  List.iter
    (fun id ->
      let n = Network.node net id in
      remap.(id) <- Network.add_pi renamed n.Network.name)
    (Network.pis net);
  List.iter
    (fun id ->
      let n = Network.node net id in
      match n.Network.kind with
      | Network.Pi | Network.Latch_out -> ()
      | Network.Logic ->
        let fanins = Array.map (fun f -> remap.(f)) n.Network.fanins in
        remap.(id) <-
          Network.add_logic renamed ~name:n.Network.name n.Network.expr fanins)
    (Network.topological_order net);
  List.iter (fun (po, id) -> Network.add_po renamed po remap.(id)) (Network.pos net);
  renamed

let c432_like () =
  rename "c432"
    (Generators.combine ~name:"c432"
       [ Generators.decoder 4;
         Generators.comparator 9;
         Generators.random_dag ~seed:432 ~inputs:18 ~outputs:7 ~nodes:130 () ])

let c880_like () =
  rename "c880"
    (Generators.combine ~name:"c880"
       [ Generators.alu 8;
         Generators.parity 16;
         Generators.random_dag ~seed:880 ~inputs:24 ~outputs:10 ~nodes:200 () ])

let c1355_like () =
  rename "c1355"
    (Generators.combine ~name:"c1355"
       [ Generators.parity 32;
         Generators.parity 25;
         Generators.random_dag ~seed:1355 ~inputs:41 ~outputs:30 ~nodes:330 () ])

let c1908_like () =
  rename "c1908"
    (Generators.combine ~name:"c1908"
       [ Generators.parity 16;
         Generators.comparator 16;
         Generators.ripple_adder 16;
         Generators.random_dag ~seed:1908 ~inputs:33 ~outputs:22 ~nodes:470 () ])

let c2670_like () =
  rename "c2670"
    (Generators.combine ~name:"c2670"
       [ Generators.alu 12;
         Generators.comparator 16;
         Generators.carry_lookahead_adder 16;
         Generators.random_dag ~seed:2670 ~inputs:64 ~outputs:48 ~nodes:620 () ])

let c3540_like () =
  rename "c3540"
    (Generators.combine ~name:"c3540"
       [ Generators.alu 16;
         Generators.decoder 5;
         Generators.mux_tree 5;
         Generators.carry_select_adder 16;
         Generators.random_dag ~seed:3540 ~inputs:50 ~outputs:22 ~nodes:850 () ])

let c5315_like () =
  rename "c5315"
    (Generators.combine ~name:"c5315"
       [ Generators.alu 16;
         Generators.alu 12;
         Generators.comparator 24;
         Generators.mux_tree 6;
         Generators.carry_lookahead_adder 24;
         Generators.random_dag ~seed:5315 ~inputs:96 ~outputs:64 ~nodes:1300 () ])

let c6288_like () = rename "c6288" (Generators.array_multiplier 16)

let c7552_like () =
  rename "c7552"
    (Generators.combine ~name:"c7552"
       [ Generators.carry_lookahead_adder 32;
         Generators.comparator 32;
         Generators.parity 32;
         Generators.alu 16;
         Generators.mux_tree 5;
         Generators.random_dag ~seed:7552 ~inputs:128 ~outputs:80 ~nodes:1800 () ])

let table_circuits () =
  [ ("C2670", c2670_like ());
    ("C3540", c3540_like ());
    ("C5315", c5315_like ());
    ("C6288", c6288_like ());
    ("C7552", c7552_like ()) ]

let all () =
  [ ("C432", c432_like ());
    ("C880", c880_like ());
    ("C1355", c1355_like ());
    ("C1908", c1908_like ());
    ("C2670", c2670_like ());
    ("C3540", c3540_like ());
    ("C5315", c5315_like ());
    ("C6288", c6288_like ());
    ("C7552", c7552_like ()) ]
