(** Cut-based delay-oriented technology mapping with Boolean
    matching — the modern (ABC-style) engine, built here as a
    comparison point for the paper's structural DAG covering.

    Like the paper's algorithm it labels nodes in topological order
    and covers backward from the outputs with free duplication; the
    difference is the match generator: bounded priority-cut
    enumeration plus exact Boolean matching instead of pattern-graph
    matching. Because the cut set is pruned (priority cuts), the
    result is a strong heuristic rather than delay-optimal; the
    benchmark harness compares both engines. *)

open Dagmap_subject
open Dagmap_core

type choice = {
  cut : Cuts.cut;
  entry : Boolean_match.entry;
}

type result = {
  netlist : Netlist.t;
  labels : float array;
  chosen : choice option array;   (** per needed subject node *)
  matched_nodes : int;            (** nodes with a non-fallback match *)
}

val map :
  ?k:int -> ?priority:int -> Boolean_match.t -> Subject.t -> result
(** [map db g] maps [g]; [k] (default 5, clamped to the library's
    widest matchable gate) bounds cut width, [priority] (default 50)
    bounds cuts kept per node — quality converges to the structural
    mapper's as the budget grows (the harness sweeps this). Raises
    [Mapper.Unmappable] if some node has no matchable cut (cannot
    happen when the library contains INV and NAND2). *)
