open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core

type choice = {
  cut : Cuts.cut;
  entry : Boolean_match.entry;
}

type result = {
  netlist : Netlist.t;
  labels : float array;
  chosen : choice option array;
  matched_nodes : int;
}

let choice_arrival labels (c : choice) =
  let gate = c.entry.Boolean_match.gate in
  let worst = ref 0.0 in
  Array.iteri
    (fun j leaf ->
      let pin = c.entry.Boolean_match.pin_of_input.(j) in
      worst := Float.max !worst (labels.(leaf) +. Gate.intrinsic_delay gate pin))
    c.cut.Cuts.leaves;
  !worst

let map ?(k = 5) ?(priority = 50) db g =
  (* Cuts wider than the widest library gate can never match. *)
  let k = max 2 (min k (Boolean_match.max_arity db)) in
  let n = Subject.num_nodes g in
  let levels = Subject.levels g in
  let labels = Array.make n 0.0 in
  let chosen : choice option array = Array.make n None in
  let const_node : bool option array = Array.make n None in
  let matched = ref 0 in
  (* Enumeration is interleaved with labeling so priority pruning can
     rank cuts by what they actually achieve: a matched cut ranks by
     its realized arrival; an unmatched cut (still useful as a
     building block for wider parent cuts) ranks by its worst leaf
     label plus a penalty that sorts it behind matched cuts of
     similar depth. *)
  let stored : Cuts.cut list array = Array.make n [] in
  let unmatched_penalty =
    (* roughly one gate delay *)
    1.0
  in
  for node = 0 to n - 1 do
    match Subject.kind g node with
    | Spi ->
      labels.(node) <- 0.0;
      stored.(node) <- [ Cuts.trivial ~levels node ]
    | Snand _ | Sinv _ ->
      let merged = Cuts.merged_for_node ~k ~levels g node stored in
      (* Evaluate every merged cut once; remember its best match. *)
      let evaluated =
        List.map
          (fun (cut : Cuts.cut) ->
            match Truth.is_const cut.Cuts.func with
            | Some b -> (cut, `Const b)
            | None ->
              let best = ref None in
              List.iter
                (fun entry ->
                  let c = { cut; entry } in
                  let arrival = choice_arrival labels c in
                  let area = entry.Boolean_match.gate.Gate.area in
                  match !best with
                  | Some (a, ar, _) when arrival > a +. 1e-12 || (arrival > a -. 1e-12 && area >= ar) -> ()
                  | Some _ | None -> best := Some (arrival, area, c))
                (Boolean_match.lookup db cut.Cuts.func);
              (match !best with
               | Some (arrival, area, c) -> (cut, `Matched (arrival, area, c))
               | None ->
                 let worst = ref 0.0 in
                 Array.iter
                   (fun l -> worst := Float.max !worst labels.(l))
                   cut.Cuts.leaves;
                 (cut, `Unmatched !worst)))
          merged
      in
      let score = function
        | _, `Const _ -> (neg_infinity, 0)
        | cut, `Matched (arrival, _, _) -> (arrival, Array.length cut.Cuts.leaves)
        | cut, `Unmatched worst ->
          (worst +. unmatched_penalty, Array.length cut.Cuts.leaves)
      in
      let sorted =
        List.sort (fun a b -> compare (score a) (score b)) evaluated
      in
      let rec take n = function
        | [] -> []
        | _ when n <= 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      let kept = take priority sorted in
      (* Always retain the direct-fanin fallback cut. *)
      let fanin_leaves =
        Array.of_list (List.sort_uniq compare (Subject.fanins g node))
      in
      let kept =
        if
          List.exists
            (fun (c, _) ->
              Array.for_all (fun l -> Array.mem l fanin_leaves) c.Cuts.leaves)
            kept
        then kept
        else
          kept
          @ List.filter
              (fun (c, _) -> c.Cuts.leaves = fanin_leaves)
              evaluated
      in
      stored.(node) <-
        List.map fst kept @ [ Cuts.trivial ~levels node ];
      (* Label from the best evaluated entry (search all, not just
         kept, so the label is as tight as the cut set allows). *)
      let best = ref None in
      List.iter
        (fun e ->
          match e with
          | _, `Const b ->
            const_node.(node) <- Some b;
            labels.(node) <- 0.0
          | _, `Matched (arrival, area, c) -> begin
            match !best with
            | Some (a, ar, _) when arrival > a +. 1e-12 || (arrival > a -. 1e-12 && area >= ar) -> ()
            | Some _ | None -> best := Some (arrival, area, c)
          end
          | _, `Unmatched _ -> ())
        evaluated;
      (match !best, const_node.(node) with
       | Some (arrival, _, c), None ->
         chosen.(node) <- Some c;
         labels.(node) <- arrival;
         incr matched
       | _, Some _ -> ()
       | None, None ->
         raise
           (Mapper.Unmappable
              { node;
                description =
                  Printf.sprintf
                    "no Boolean match for any cut of subject node %d" node }))
  done;
  (* Cover construction with free duplication, as in the paper. *)
  let needed = Hashtbl.create 64 in
  let queue = Queue.create () in
  let require node =
    match Subject.kind g node with
    | Spi -> ()
    | Snand _ | Sinv _ ->
      if const_node.(node) = None && not (Hashtbl.mem needed node) then begin
        Hashtbl.add needed node ();
        Queue.add node queue
      end
  in
  List.iter (fun o -> require o.Subject.out_node) g.Subject.outputs;
  let picked = ref [] in
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    match chosen.(node) with
    | None -> assert false
    | Some c ->
      picked := (node, c) :: !picked;
      Array.iter require c.cut.Cuts.leaves
  done;
  let index = Hashtbl.create 64 in
  List.iteri (fun i (node, _) -> Hashtbl.replace index node i) !picked;
  let driver_of node =
    match const_node.(node) with
    | Some b -> Netlist.D_const b
    | None -> begin
      match Subject.kind g node with
      | Spi -> Netlist.D_pi node
      | Snand _ | Sinv _ -> Netlist.D_gate (Hashtbl.find index node)
    end
  in
  let instances =
    Array.of_list
      (List.mapi
         (fun i (node, c) ->
           let gate = c.entry.Boolean_match.gate in
           let inputs = Array.make (Gate.num_pins gate) (Netlist.D_const false) in
           Array.iteri
             (fun j leaf ->
               inputs.(c.entry.Boolean_match.pin_of_input.(j)) <- driver_of leaf)
             c.cut.Cuts.leaves;
           let covers = Array.of_list (Cuts.cut_cone g node c.cut) in
           { Netlist.inst_id = i; gate; inputs; subject_root = node; covers })
         !picked)
  in
  let outputs =
    List.map
      (fun o -> (o.Subject.out_name, driver_of o.Subject.out_node))
      g.Subject.outputs
    @ List.map (fun (name, b) -> (name, Netlist.D_const b)) g.Subject.const_outputs
  in
  { netlist = { Netlist.source = g; instances; outputs };
    labels;
    chosen;
    matched_nodes = !matched }
