open Dagmap_logic
open Dagmap_genlib

type entry = {
  gate : Gate.t;
  pin_of_input : int array;
}

type t = {
  table : (string, entry list) Hashtbl.t;  (* truth hex -> entries *)
  mutable count : int;
}

let key tt = Printf.sprintf "%d:%s" (Truth.num_vars tt) (Truth.to_hex tt)

let add db tt entry =
  let k = key tt in
  let existing = Option.value ~default:[] (Hashtbl.find_opt db.table k) in
  (* Keep one entry per gate per function; different wirings of the
     same gate to the same function are interchangeable. *)
  if
    not
      (List.exists
         (fun e ->
           String.equal e.gate.Gate.gate_name entry.gate.Gate.gate_name)
         existing)
  then begin
    Hashtbl.replace db.table k (entry :: existing);
    db.count <- db.count + 1
  end

let prepare ?(max_arity = 6) lib =
  let db = { table = Hashtbl.create 1024; count = 0 } in
  List.iter
    (fun gate ->
      let p = Gate.num_pins gate in
      if p >= 1 && p <= max_arity && Gate.is_constant gate = None then
        List.iter
          (fun (variant, perm) ->
            (* variant = func permuted so original pin i feeds input
               position perm.(i); hence input position j is fed by
               pin with perm(pin) = j. *)
            let pin_of_input = Array.make p 0 in
            Array.iteri (fun pin pos -> pin_of_input.(pos) <- pin) perm;
            add db variant { gate; pin_of_input })
          (Npn.p_variants gate.Gate.func))
    lib.Libraries.gates;
  db

let lookup db tt =
  Option.value ~default:[] (Hashtbl.find_opt db.table (key tt))

let num_entries db = db.count

let max_arity db =
  Hashtbl.fold
    (fun k _ acc ->
      match String.index_opt k ':' with
      | None -> acc
      | Some i -> max acc (int_of_string (String.sub k 0 i)))
    db.table 1

let arity_histogram db =
  let counts = Hashtbl.create 8 in
  Hashtbl.iter
    (fun k entries ->
      match String.index_opt k ':' with
      | None -> ()
      | Some i ->
        let arity = int_of_string (String.sub k 0 i) in
        Hashtbl.replace counts arity
          (List.length entries
          + Option.value ~default:0 (Hashtbl.find_opt counts arity)))
    db.table;
  Hashtbl.fold (fun a c acc -> (a, c) :: acc) counts []
  |> List.sort compare
