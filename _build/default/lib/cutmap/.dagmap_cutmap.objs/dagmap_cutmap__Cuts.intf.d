lib/cutmap/cuts.mli: Dagmap_logic Dagmap_subject Subject Truth
