lib/cutmap/cut_mapper.ml: Array Boolean_match Cuts Dagmap_core Dagmap_genlib Dagmap_logic Dagmap_subject Float Gate Hashtbl List Mapper Netlist Printf Queue Subject Truth
