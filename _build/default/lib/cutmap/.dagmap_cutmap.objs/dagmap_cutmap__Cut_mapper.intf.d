lib/cutmap/cut_mapper.mli: Boolean_match Cuts Dagmap_core Dagmap_subject Netlist Subject
