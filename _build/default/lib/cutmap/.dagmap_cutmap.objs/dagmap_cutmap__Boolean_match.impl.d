lib/cutmap/boolean_match.ml: Array Dagmap_genlib Dagmap_logic Gate Hashtbl Libraries List Npn Option Printf String Truth
