lib/cutmap/cuts.ml: Array Dagmap_logic Dagmap_subject Hashtbl Int64 List Random Subject Truth
