lib/cutmap/boolean_match.mli: Dagmap_genlib Dagmap_logic Gate Libraries Truth
