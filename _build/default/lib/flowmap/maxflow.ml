(* Adjacency-list residual graph. Edges are stored in a flat array;
   edge i and its residual partner are paired as (i, i lxor 1). *)

type t = {
  n : int;
  mutable heads : int array array;   (* vertex -> edge indices, built lazily *)
  mutable edges_to : int list array; (* temporary adjacency during build *)
  mutable edge_dst : int array;
  mutable edge_cap : int array;
  mutable edge_count : int;
  mutable built : bool;
}

let infinite = max_int / 4

let create n =
  { n;
    heads = [||];
    edges_to = Array.make n [];
    edge_dst = Array.make 16 0;
    edge_cap = Array.make 16 0;
    edge_count = 0;
    built = false }

let ensure_capacity net k =
  let len = Array.length net.edge_dst in
  if k > len then begin
    let len' = max k (2 * len) in
    let dst = Array.make len' 0 and cap = Array.make len' 0 in
    Array.blit net.edge_dst 0 dst 0 net.edge_count;
    Array.blit net.edge_cap 0 cap 0 net.edge_count;
    net.edge_dst <- dst;
    net.edge_cap <- cap
  end

let add_edge net u v capacity =
  if net.built then invalid_arg "Maxflow.add_edge after solving";
  ensure_capacity net (net.edge_count + 2);
  let e = net.edge_count in
  net.edge_dst.(e) <- v;
  net.edge_cap.(e) <- capacity;
  net.edge_dst.(e + 1) <- u;
  net.edge_cap.(e + 1) <- 0;
  net.edges_to.(u) <- e :: net.edges_to.(u);
  net.edges_to.(v) <- (e + 1) :: net.edges_to.(v);
  net.edge_count <- e + 2

let build net =
  if not net.built then begin
    net.heads <- Array.map (fun l -> Array.of_list l) net.edges_to;
    net.built <- true
  end

(* One BFS augmenting step; returns true if an augmenting path was
   found and pushed (all edges here have capacity 1 effectively, but
   we push the bottleneck for generality). *)
let augment net ~source ~sink =
  let parent_edge = Array.make net.n (-1) in
  let visited = Array.make net.n false in
  visited.(source) <- true;
  let q = Queue.create () in
  Queue.add source q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun e ->
        let v = net.edge_dst.(e) in
        if (not visited.(v)) && net.edge_cap.(e) > 0 then begin
          visited.(v) <- true;
          parent_edge.(v) <- e;
          if v = sink then found := true else Queue.add v q
        end)
      net.heads.(u)
  done;
  if not !found then 0
  else begin
    (* bottleneck *)
    let rec bottleneck v acc =
      if v = source then acc
      else
        let e = parent_edge.(v) in
        bottleneck net.edge_dst.(e lxor 1) (min acc net.edge_cap.(e))
    in
    let flow = bottleneck sink infinite in
    let rec push v =
      if v <> source then begin
        let e = parent_edge.(v) in
        net.edge_cap.(e) <- net.edge_cap.(e) - flow;
        net.edge_cap.(e lxor 1) <- net.edge_cap.(e lxor 1) + flow;
        push net.edge_dst.(e lxor 1)
      end
    in
    push sink;
    flow
  end

let max_flow_bounded net ~source ~sink ~bound =
  build net;
  let total = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    if !total > bound then continue_ := false
    else begin
      let pushed = augment net ~source ~sink in
      if pushed = 0 then continue_ := false else total := !total + pushed
    end
  done;
  min !total (bound + 1)

let min_cut_side net ~source =
  build net;
  let side = Array.make net.n false in
  side.(source) <- true;
  let q = Queue.create () in
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun e ->
        let v = net.edge_dst.(e) in
        if (not side.(v)) && net.edge_cap.(e) > 0 then begin
          side.(v) <- true;
          Queue.add v q
        end)
      net.heads.(u)
  done;
  side
