(** Unit-capacity max-flow on node-split graphs, as needed by the
    FlowMap labeling procedure (Cong & Ding). Augmenting paths are
    found by BFS; the search stops as soon as the flow exceeds a
    caller-provided bound, which is all FlowMap needs to decide
    k-feasibility. *)

type t

val create : int -> t
(** [create n] prepares a flow network with vertices [0 .. n-1]. *)

val add_edge : t -> int -> int -> int -> unit
(** [add_edge net u v capacity] adds a directed edge (with a residual
    reverse edge of capacity 0). Use {!infinite} for uncapacitated
    edges. *)

val infinite : int

val max_flow_bounded : t -> source:int -> sink:int -> bound:int -> int
(** Maximum flow from [source] to [sink], but stop and return
    [bound + 1] as soon as the flow exceeds [bound]. *)

val min_cut_side : t -> source:int -> bool array
(** After {!max_flow_bounded}, the set of vertices reachable from
    [source] in the residual graph — the source side of a minimum
    cut. *)
