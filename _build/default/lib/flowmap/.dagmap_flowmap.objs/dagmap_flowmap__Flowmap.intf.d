lib/flowmap/flowmap.mli: Dagmap_logic Dagmap_subject Network Subject Truth
