lib/flowmap/flowmap.ml: Array Bexpr Dagmap_logic Dagmap_subject Hashtbl List Maxflow Network Printf Queue Subject Truth
