lib/flowmap/maxflow.mli:
