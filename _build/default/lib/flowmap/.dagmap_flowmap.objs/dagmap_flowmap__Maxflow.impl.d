lib/flowmap/maxflow.ml: Array Queue
