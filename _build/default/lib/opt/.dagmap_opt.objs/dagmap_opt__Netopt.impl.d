lib/opt/netopt.ml: Array Bexpr Dagmap_logic Format Hashtbl List Network Truth
