lib/opt/netopt.mli: Dagmap_logic Format Network
