(** Technology-independent network cleanup passes, applied before
    decomposition: constant propagation, structural hashing at node
    granularity (merge nodes with identical function and fanins),
    single-fanin forwarding (buffer/inverter absorption into users),
    and sweep (drop logic no output depends on).

    All passes preserve the observable functions (the test suite
    checks equivalence by simulation) and the PI/PO/latch interface. *)

open Dagmap_logic

type stats = {
  nodes_before : int;   (** logic nodes before *)
  nodes_after : int;
  constants_folded : int;
  nodes_merged : int;
  buffers_forwarded : int;
  swept : int;
}

val optimize : Network.t -> Network.t * stats
(** Run all passes to fixpoint (bounded) and rebuild the network. *)

val sweep_only : Network.t -> Network.t * stats
(** Only remove unreachable logic. *)

val pp_stats : Format.formatter -> stats -> unit
