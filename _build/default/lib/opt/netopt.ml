open Dagmap_logic

type stats = {
  nodes_before : int;
  nodes_after : int;
  constants_folded : int;
  nodes_merged : int;
  buffers_forwarded : int;
  swept : int;
}

(* A resolved signal: a constant, or a (possibly complemented) node
   of the output network. *)
type signal =
  | Sig_const of bool
  | Sig_lit of int * bool

let neg = function
  | Sig_const b -> Sig_const (not b)
  | Sig_lit (n, ph) -> Sig_lit (n, not ph)

let run ~full net =
  let out = Network.create ~name:(Network.name net) () in
  let n_logic = ref 0 in
  Network.iter_nodes net (fun n ->
      if n.Network.kind = Network.Logic then incr n_logic);
  let constants_folded = ref 0 in
  let nodes_merged = ref 0 in
  let buffers_forwarded = ref 0 in
  let materialized = ref 0 in
  (* Map original node -> signal in the output network, computed on
     demand from the outputs so unreachable logic is swept. *)
  let memo : (int, signal) Hashtbl.t = Hashtbl.create 64 in
  (* Structural hashing of materialized nodes: function+fanins. *)
  let strash : (string * int list, int) Hashtbl.t = Hashtbl.create 64 in
  (* Pre-create the interface. *)
  List.iter
    (fun id ->
      Hashtbl.replace memo id
        (Sig_lit (Network.add_pi out (Network.node net id).Network.name, false)))
    (Network.pis net);
  let latch_pairs =
    List.map
      (fun l ->
        let q =
          Network.add_latch_output out
            ~name:(Network.node net l.Network.latch_output).Network.name
            ~init:l.Network.latch_init ()
        in
        Hashtbl.replace memo l.Network.latch_output (Sig_lit (q, false));
        (l, q))
      (Network.latches net)
  in
  (* Materialize a positive-phase node for a signal. *)
  let inv_cache = Hashtbl.create 16 in
  let node_of = function
    | Sig_const _ -> invalid_arg "Netopt: constant at a structural position"
    | Sig_lit (n, false) -> n
    | Sig_lit (n, true) -> begin
      match Hashtbl.find_opt inv_cache n with
      | Some i -> i
      | None ->
        let i = Network.add_logic out Bexpr.(not_ (var 0)) [| n |] in
        Hashtbl.replace inv_cache n i;
        i
    end
  in
  let rec resolve id =
    match Hashtbl.find_opt memo id with
    | Some s -> s
    | None ->
      let n = Network.node net id in
      assert (n.Network.kind = Network.Logic);
      let fanin_signals = Array.map resolve n.Network.fanins in
      (* Substitute constants and deduplicate live fanins. *)
      let live = ref [] in
      let slot = Hashtbl.create 8 in
      let substitution = Array.make (Array.length fanin_signals) (Bexpr.const false) in
      Array.iteri
        (fun i s ->
          match s with
          | Sig_const b -> substitution.(i) <- Bexpr.const b
          | Sig_lit (node, ph) ->
            let k =
              match Hashtbl.find_opt slot node with
              | Some k -> k
              | None ->
                let k = List.length !live in
                Hashtbl.replace slot node k;
                live := node :: !live;
                k
            in
            substitution.(i) <- (if ph then Bexpr.not_ (Bexpr.var k) else Bexpr.var k))
        fanin_signals;
      let live = Array.of_list (List.rev !live) in
      let expr = Bexpr.map_vars (fun i -> substitution.(i)) n.Network.expr in
      let arity = Array.length live in
      let signal =
        if not full then
          Sig_lit
            (Network.add_logic out ~name:n.Network.name expr live, false)
        else if arity = 0 || arity > 12 then begin
          (match expr with
           | Bexpr.Const b ->
             incr constants_folded;
             Hashtbl.replace memo id (Sig_const b);
             Sig_const b
           | _ ->
             Sig_lit
               (Network.add_logic out ~name:n.Network.name expr live, false))
        end
        else begin
          let tt = Bexpr.to_truth arity expr in
          match Truth.is_const tt with
          | Some b ->
            incr constants_folded;
            Sig_const b
          | None ->
            (* Identity / complement of a single fanin? *)
            let single =
              if arity = 1 then
                if Truth.equal tt (Truth.var 1 0) then Some false
                else if Truth.equal tt (Truth.lognot (Truth.var 1 0)) then
                  Some true
                else None
              else None
            in
            (match single with
             | Some ph ->
               incr buffers_forwarded;
               if ph then neg (Sig_lit (live.(0), false))
               else Sig_lit (live.(0), false)
             | None ->
               (* Canonical key: fanins sorted, table permuted to
                  match, so permuted duplicates merge. *)
               let order = Array.init arity (fun i -> i) in
               Array.sort (fun i j -> compare live.(i) live.(j)) order;
               let perm = Array.make arity 0 in
               Array.iteri (fun pos i -> perm.(i) <- pos) order;
               let canonical_tt = Truth.permute tt perm in
               let sorted_live =
                 List.sort compare (Array.to_list live)
               in
               let key = (Truth.to_hex canonical_tt, sorted_live) in
               (match Hashtbl.find_opt strash key with
                | Some existing ->
                  incr nodes_merged;
                  Sig_lit (existing, false)
                | None ->
                  let fresh =
                    Network.add_logic out ~name:n.Network.name expr live
                  in
                  incr materialized;
                  Hashtbl.replace strash key fresh;
                  Sig_lit (fresh, false)))
        end
      in
      Hashtbl.replace memo id signal;
      signal
  in
  (* A PO or latch input needs a concrete node, even for constants. *)
  let const_cache = Hashtbl.create 2 in
  let force signal =
    match signal with
    | Sig_const b -> begin
      match Hashtbl.find_opt const_cache b with
      | Some n -> n
      | None ->
        let n = Network.add_logic out (Bexpr.const b) [||] in
        Hashtbl.replace const_cache b n;
        n
    end
    | Sig_lit _ -> node_of signal
  in
  List.iter
    (fun (po, id) -> Network.add_po out po (force (resolve id)))
    (Network.pos net);
  List.iter
    (fun (l, q) ->
      Network.set_latch_input out ~latch_output:q
        (force (resolve l.Network.latch_input)))
    latch_pairs;
  let n_after = ref 0 in
  Network.iter_nodes out (fun n ->
      if n.Network.kind = Network.Logic then incr n_after);
  let reached = ref 0 in
  Network.iter_nodes net (fun n ->
      if n.Network.kind = Network.Logic && Hashtbl.mem memo n.Network.id then
        incr reached);
  ( out,
    { nodes_before = !n_logic;
      nodes_after = !n_after;
      constants_folded = !constants_folded;
      nodes_merged = !nodes_merged;
      buffers_forwarded = !buffers_forwarded;
      swept = !n_logic - !reached } )

let optimize net = run ~full:true net
let sweep_only net = run ~full:false net

let pp_stats ppf s =
  Format.fprintf ppf
    "logic %d -> %d (const %d, merged %d, forwarded %d, swept %d)"
    s.nodes_before s.nodes_after s.constants_folded s.nodes_merged
    s.buffers_forwarded s.swept
