(* Boolean expression trees: smart constructors, n-ary builders,
   genlib formula parsing, printing, and substitution. *)

open Dagmap_logic

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let truth_equal = Alcotest.testable Truth.pp Truth.equal

let names i = Printf.sprintf "v%d" i

let to_tt n e = Bexpr.to_truth n e

(* --- smart constructors -------------------------------------------- *)

let test_constant_folding () =
  let a = Bexpr.var 0 in
  check tbool "and2 false" true
    (Bexpr.equal (Bexpr.and2 a (Bexpr.const false)) (Bexpr.const false));
  check tbool "and2 true identity" true
    (Bexpr.equal (Bexpr.and2 (Bexpr.const true) a) a);
  check tbool "or2 true" true
    (Bexpr.equal (Bexpr.or2 a (Bexpr.const true)) (Bexpr.const true));
  check tbool "or2 false identity" true
    (Bexpr.equal (Bexpr.or2 (Bexpr.const false) a) a);
  check tbool "xor2 false identity" true
    (Bexpr.equal (Bexpr.xor2 a (Bexpr.const false)) a);
  check tbool "xor2 true = not" true
    (Bexpr.equal (Bexpr.xor2 (Bexpr.const true) a) (Bexpr.not_ a));
  check tbool "double negation" true
    (Bexpr.equal (Bexpr.not_ (Bexpr.not_ a)) a)

let test_nary_builders () =
  let vars = List.init 6 Bexpr.var in
  let conj = Bexpr.and_list vars in
  check truth_equal "and_list semantics"
    (List.fold_left Truth.logand (Truth.const 6 true)
       (List.init 6 (Truth.var 6)))
    (to_tt 6 conj);
  (* Balanced reduction keeps depth logarithmic. *)
  check tbool "and_list depth" true (Bexpr.depth conj <= 3);
  check tbool "empty and_list" true
    (Bexpr.equal (Bexpr.and_list []) (Bexpr.const true));
  check tbool "empty or_list" true
    (Bexpr.equal (Bexpr.or_list []) (Bexpr.const false))

let test_vars_and_num_vars () =
  let e = Bexpr.(or2 (and2 (var 4) (var 1)) (not_ (var 4))) in
  check (Alcotest.list tint) "vars" [ 1; 4 ] (Bexpr.vars e);
  check tint "num_vars" 5 (Bexpr.num_vars e)

let test_map_vars () =
  let e = Bexpr.(and2 (var 0) (var 1)) in
  let swapped = Bexpr.map_vars (fun i -> Bexpr.var (1 - i)) e in
  check truth_equal "substitution swap" (to_tt 2 e) (to_tt 2 swapped);
  let widened = Bexpr.map_vars (fun i -> Bexpr.var (i + 2)) e in
  check tint "substitution widens" 4 (Bexpr.num_vars widened)

let test_of_cubes () =
  (* f = a!b + c *)
  let e = Bexpr.of_cubes [ [ (0, true); (1, false) ]; [ (2, true) ] ] in
  let expected =
    Truth.logor
      (Truth.logand (Truth.var 3 0) (Truth.lognot (Truth.var 3 1)))
      (Truth.var 3 2)
  in
  check truth_equal "sum of products" expected (to_tt 3 e);
  check tbool "empty cube list is false" true
    (Bexpr.equal (Bexpr.of_cubes []) (Bexpr.const false));
  check tbool "empty cube is true" true
    (Bexpr.equal (Bexpr.of_cubes [ [] ]) (Bexpr.const true))

(* --- parser --------------------------------------------------------- *)

let parse_with_pins pins text =
  let pin_names = ref pins in
  let e = Bexpr.parse ~pin_names text in
  (e, !pin_names)

let test_parse_basic () =
  let e, pins = parse_with_pins [] "a*b + !c" in
  check (Alcotest.list Alcotest.string) "pins in order" [ "a"; "b"; "c" ] pins;
  check truth_equal "a*b + !c"
    (Truth.logor
       (Truth.logand (Truth.var 3 0) (Truth.var 3 1))
       (Truth.lognot (Truth.var 3 2)))
    (to_tt 3 e)

let test_parse_juxtaposition () =
  (* genlib allows "a b" for AND. *)
  let e, pins = parse_with_pins [] "a b c" in
  check tint "three pins" 3 (List.length pins);
  check truth_equal "juxtaposed and"
    (to_tt 3 (Bexpr.and_list (List.init 3 Bexpr.var)))
    (to_tt 3 e)

let test_parse_postfix_quote () =
  let e, _ = parse_with_pins [] "a'*b + (a+b)'" in
  check truth_equal "postfix negation"
    (Truth.logor
       (Truth.logand (Truth.lognot (Truth.var 2 0)) (Truth.var 2 1))
       (Truth.lognot (Truth.logor (Truth.var 2 0) (Truth.var 2 1))))
    (to_tt 2 e)

let test_parse_constants () =
  let e, pins = parse_with_pins [] "CONST1" in
  check tbool "const1" true (Bexpr.equal e (Bexpr.const true));
  check tint "no pins" 0 (List.length pins);
  let e0, _ = parse_with_pins [] "CONST0 + a" in
  check tbool "const0 + a folds" true (Bexpr.equal e0 (Bexpr.var 0))

let test_parse_precedence () =
  let e, _ = parse_with_pins [] "a + b*c" in
  check truth_equal "or binds weaker"
    (Truth.logor (Truth.var 3 0) (Truth.logand (Truth.var 3 1) (Truth.var 3 2)))
    (to_tt 3 e)

let test_parse_preseeded_pins () =
  (* Pre-seeding pins the variable order. *)
  let e, pins = parse_with_pins [ "x"; "y" ] "y * x" in
  check (Alcotest.list Alcotest.string) "seeded pins" [ "x"; "y" ] pins;
  check truth_equal "y*x with seeded order"
    (Truth.logand (Truth.var 2 1) (Truth.var 2 0))
    (to_tt 2 e)

let test_parse_errors () =
  List.iter
    (fun bad ->
      match parse_with_pins [] bad with
      | exception Bexpr.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error on %S" bad)
    [ "a +"; "(a"; "a)"; "*a"; "" ]

(* --- printing ------------------------------------------------------- *)

let test_pp_roundtrip_cases () =
  List.iter
    (fun e ->
      let text = Bexpr.to_string ~names e in
      let pin_names = ref (List.map names (List.init 6 (fun i -> i))) in
      let e' = Bexpr.parse ~pin_names text in
      Alcotest.check truth_equal
        (Printf.sprintf "roundtrip %s" text)
        (to_tt 6 e) (to_tt 6 e'))
    Bexpr.
      [ var 0;
        not_ (var 1);
        and2 (var 0) (or2 (var 1) (var 2));
        or2 (and2 (var 0) (var 1)) (not_ (and2 (var 2) (var 3)));
        xor2 (var 0) (var 5);
        not_ (or2 (not_ (var 0)) (var 4)) ]

(* --- QCheck: print/parse roundtrip ---------------------------------- *)

let gen_expr =
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then map Bexpr.var (int_bound 4)
    else
      frequency
        [ (2, map Bexpr.var (int_bound 4));
          (1, map Bexpr.not_ (go (depth - 1)));
          (2, map2 Bexpr.and2 (go (depth - 1)) (go (depth - 1)));
          (2, map2 Bexpr.or2 (go (depth - 1)) (go (depth - 1)));
          (1, map2 Bexpr.xor2 (go (depth - 1)) (go (depth - 1))) ]
  in
  go 5

let qc_roundtrip =
  QCheck.Test.make ~count:300 ~name:"print/parse roundtrip" (QCheck.make gen_expr)
    (fun e ->
      let text = Bexpr.to_string ~names e in
      let pin_names = ref (List.init 5 names) in
      let e' = Bexpr.parse ~pin_names text in
      Truth.equal (to_tt 5 e) (to_tt 5 e'))

let qc_eval_matches_truth =
  QCheck.Test.make ~count:300 ~name:"eval matches to_truth" (QCheck.make gen_expr)
    (fun e ->
      let tt = to_tt 5 e in
      let ok = ref true in
      for m = 0 to 31 do
        let env i = m land (1 lsl i) <> 0 in
        if Bexpr.eval e env <> Truth.get_bit tt m then ok := false
      done;
      !ok)

let () =
  Alcotest.run "bexpr"
    [ ( "constructors",
        [ Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "n-ary builders" `Quick test_nary_builders;
          Alcotest.test_case "vars" `Quick test_vars_and_num_vars;
          Alcotest.test_case "map_vars" `Quick test_map_vars;
          Alcotest.test_case "of_cubes" `Quick test_of_cubes ] );
      ( "parser",
        [ Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "juxtaposition" `Quick test_parse_juxtaposition;
          Alcotest.test_case "postfix quote" `Quick test_parse_postfix_quote;
          Alcotest.test_case "constants" `Quick test_parse_constants;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "preseeded pins" `Quick test_parse_preseeded_pins;
          Alcotest.test_case "errors" `Quick test_parse_errors ] );
      ( "printing",
        [ Alcotest.test_case "roundtrip cases" `Quick test_pp_roundtrip_cases ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qc_roundtrip;
          QCheck_alcotest.to_alcotest qc_eval_matches_truth ] ) ]
