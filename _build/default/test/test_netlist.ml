(* Mapped netlist: metrics, evaluation, validation. *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_circuits

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tfloat = Alcotest.float 1e-6

(* A tiny hand-made netlist over a 2-PI subject graph:
   w0 = nand(a, b); w1 = inv(w0); outputs f=w1, g=w0. *)
let hand_netlist () =
  let bld = Subject.Builder.create () in
  let a = Subject.Builder.pi bld "a" in
  let b = Subject.Builder.pi bld "b" in
  let n = Subject.Builder.nand bld a b in
  let i = Subject.Builder.inv bld n in
  Subject.Builder.output bld "f" i;
  Subject.Builder.output bld "g" n;
  let g = Subject.Builder.finish bld in
  let nand2 =
    Gate.make ~name:"nand2" ~area:2.0
      ~pins:
        [| Gate.simple_pin ~delay:1.0 "a"; Gate.simple_pin ~delay:1.5 "b" |]
      Bexpr.(not_ (and2 (var 0) (var 1)))
  in
  let inv =
    Gate.make ~name:"inv" ~area:1.0
      ~pins:[| Gate.simple_pin ~delay:0.5 "a" |]
      Bexpr.(not_ (var 0))
  in
  let instances =
    [| { Netlist.inst_id = 0; gate = inv; inputs = [| Netlist.D_gate 1 |];
         subject_root = i; covers = [| i |] };
       { Netlist.inst_id = 1; gate = nand2;
         inputs = [| Netlist.D_pi a; Netlist.D_pi b |]; subject_root = n;
         covers = [| n |] } |]
  in
  { Netlist.source = g;
    instances;
    outputs = [ ("f", Netlist.D_gate 0); ("g", Netlist.D_gate 1) ] }

let test_metrics () =
  let nl = hand_netlist () in
  Netlist.validate nl;
  check tfloat "area" 3.0 (Netlist.area nl);
  check tint "gates" 2 (Netlist.num_gates nl);
  (* nand2 arrival = max(1.0, 1.5) = 1.5 (pin b slower); inv adds 0.5. *)
  check tfloat "delay" 2.0 (Netlist.delay nl);
  let arrivals = Netlist.output_arrivals nl in
  check tfloat "f arrival" 2.0 (List.assoc "f" arrivals);
  check tfloat "g arrival" 1.5 (List.assoc "g" arrivals);
  check tint "duplication" 0 (Netlist.duplication nl);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string tint))
    "histogram"
    [ ("inv", 1); ("nand2", 1) ]
    (List.sort compare (Netlist.gate_histogram nl))

let test_eval () =
  let nl = hand_netlist () in
  List.iter
    (fun (a, b) ->
      let out = Netlist.eval nl [| a; b |] in
      check tbool "g = nand" (not (a && b)) (List.assoc "g" out);
      check tbool "f = and" (a && b) (List.assoc "f" out))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_max_fanout () =
  let nl = hand_netlist () in
  (* w0 feeds the inverter and output g: fanout 2. *)
  check tint "max fanout" 2 (Netlist.max_fanout nl)

let test_validate_catches_bad_driver () =
  let nl = hand_netlist () in
  let broken =
    { nl with
      Netlist.outputs = [ ("f", Netlist.D_gate 7) ] }
  in
  match Netlist.validate broken with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "expected validation failure"

let test_validate_catches_pin_mismatch () =
  let nl = hand_netlist () in
  let inst = nl.Netlist.instances.(0) in
  let broken_inst = { inst with Netlist.inputs = [||] } in
  let broken =
    { nl with
      Netlist.instances = [| broken_inst; nl.Netlist.instances.(1) |] }
  in
  match Netlist.validate broken with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "expected pin-count failure"

let test_validate_catches_cycle () =
  let nl = hand_netlist () in
  let inv0 = nl.Netlist.instances.(0) in
  let nand1 = nl.Netlist.instances.(1) in
  let broken =
    { nl with
      Netlist.instances =
        [| { inv0 with Netlist.inputs = [| Netlist.D_gate 1 |] };
           { nand1 with Netlist.inputs = [| Netlist.D_gate 0; Netlist.D_gate 0 |] } |] }
  in
  match Netlist.validate broken with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "expected cycle detection"

let test_arrival_consistency_on_real_mapping () =
  (* arrival_times agrees with delay/output_arrivals on a real map. *)
  let net = Generators.alu 6 in
  let g = Subject.of_network net in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let r = Mapper.map Mapper.Dag db g in
  let nl = r.Mapper.netlist in
  let arrival = Netlist.arrival_times nl in
  let recomputed =
    List.fold_left
      (fun acc (_, d) ->
        match d with
        | Netlist.D_gate j -> Float.max acc arrival.(j)
        | Netlist.D_pi _ | Netlist.D_const _ -> acc)
      0.0 nl.Netlist.outputs
  in
  check tfloat "delay from arrival_times" (Netlist.delay nl) recomputed

let test_report_renders () =
  let nl = hand_netlist () in
  let text = Format.asprintf "%a" Netlist.pp_report nl in
  check tbool "report nonempty" true (String.length text > 10)

let () =
  Alcotest.run "netlist"
    [ ( "metrics",
        [ Alcotest.test_case "area/delay/histogram" `Quick test_metrics;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "max fanout" `Quick test_max_fanout;
          Alcotest.test_case "arrival consistency" `Quick
            test_arrival_consistency_on_real_mapping;
          Alcotest.test_case "report" `Quick test_report_renders ] );
      ( "validation",
        [ Alcotest.test_case "bad driver" `Quick test_validate_catches_bad_driver;
          Alcotest.test_case "pin mismatch" `Quick
            test_validate_catches_pin_mismatch;
          Alcotest.test_case "cycle" `Quick test_validate_catches_cycle ] ) ]
