(* Two-level minimization: prime-implicant covers. *)

open Dagmap_logic

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let truth_equal = Alcotest.testable Truth.pp Truth.equal

let v = Truth.var

let test_constants () =
  check tint "false cover empty" 0 (List.length (Sop.minimize (Truth.const 3 false)));
  (match Sop.minimize (Truth.const 3 true) with
   | [ c ] ->
     check tint "universal cube mask" 0 c.Sop.mask;
     check tint "no literals" 0 (List.length (Sop.cube_literals c))
   | cs -> Alcotest.failf "expected 1 cube, got %d" (List.length cs))

let test_known_covers () =
  (* AND: one cube with all literals. *)
  let and3 = Truth.logand (v 3 0) (Truth.logand (v 3 1) (v 3 2)) in
  (match Sop.minimize and3 with
   | [ c ] -> check tint "and3 literals" 3 (List.length (Sop.cube_literals c))
   | cs -> Alcotest.failf "and3: %d cubes" (List.length cs));
  (* OR: n single-literal cubes. *)
  let or3 = Truth.logor (v 3 0) (Truth.logor (v 3 1) (v 3 2)) in
  let cubes = Sop.minimize or3 in
  check tint "or3 cube count" 3 (List.length cubes);
  List.iter
    (fun c -> check tint "single literal" 1 (List.length (Sop.cube_literals c)))
    cubes;
  (* XOR of n variables needs 2^(n-1) cubes. *)
  let xor3 = Truth.logxor (v 3 0) (Truth.logxor (v 3 1) (v 3 2)) in
  check tint "xor3 cube count" 4 (List.length (Sop.minimize xor3))

let test_redundancy_removed () =
  (* f = a b + a !b = a: must minimize to a single cube. *)
  let f =
    Truth.logor
      (Truth.logand (v 2 0) (v 2 1))
      (Truth.logand (v 2 0) (Truth.lognot (v 2 1)))
  in
  match Sop.minimize f with
  | [ c ] -> check tint "merged to one literal" 1 (List.length (Sop.cube_literals c))
  | cs -> Alcotest.failf "expected 1 cube, got %d" (List.length cs)

let test_primality () =
  (* Every cube in the cover is prime: dropping any literal leaves
     the on-set. *)
  let st = Random.State.make [| 99 |] in
  for _ = 1 to 20 do
    let n = 2 + Random.State.int st 4 in
    let tt =
      Truth.of_minterms n
        (List.init (1 lsl (n - 1)) (fun _ -> Random.State.int st (1 lsl n)))
    in
    if Truth.is_const tt = None then
      List.iter
        (fun c ->
          List.iter
            (fun (i, _) ->
              let widened =
                { Sop.mask = c.Sop.mask land lnot (1 lsl i);
                  value = c.Sop.value land lnot (1 lsl i) }
              in
              (* The widened cube must leave the on-set somewhere. *)
              let escapes = ref false in
              for m = 0 to (1 lsl n) - 1 do
                if Sop.cube_covers widened m && not (Truth.get_bit tt m) then
                  escapes := true
              done;
              check tbool "cube is prime" true !escapes)
            (Sop.cube_literals c))
        (Sop.minimize tt)
  done

let test_expr_roundtrip () =
  let e =
    Bexpr.(
      or2
        (and2 (var 0) (or2 (var 1) (not_ (var 2))))
        (and2 (not_ (var 0)) (var 3)))
  in
  let minimized = Sop.minimize_expr 4 e in
  check truth_equal "minimize_expr preserves function"
    (Bexpr.to_truth 4 e)
    (Bexpr.to_truth 4 minimized)

let qc_cover_exact =
  QCheck.Test.make ~count:200 ~name:"cover equals function"
    QCheck.(make Gen.(pair (int_range 1 6) (int_bound 1_000_000)))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n |] in
      let tt =
        Truth.of_minterms n
          (List.init (1 lsl (max 0 (n - 1))) (fun _ ->
               Random.State.int st (1 lsl n)))
      in
      Truth.equal tt (Sop.to_truth n (Sop.minimize tt)))

let qc_no_more_cubes_than_minterms =
  QCheck.Test.make ~count:100 ~name:"cube count bounded by minterms"
    QCheck.(make Gen.(pair (int_range 1 5) (int_bound 1_000_000)))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n; 3 |] in
      let tt =
        Truth.of_minterms n
          (List.init (1 lsl (max 0 (n - 1))) (fun _ ->
               Random.State.int st (1 lsl n)))
      in
      List.length (Sop.minimize tt) <= max 1 (Truth.count_ones tt))

let () =
  Alcotest.run "sop"
    [ ( "covers",
        [ Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "known covers" `Quick test_known_covers;
          Alcotest.test_case "redundancy removed" `Quick test_redundancy_removed;
          Alcotest.test_case "primality" `Quick test_primality;
          Alcotest.test_case "expr roundtrip" `Quick test_expr_roundtrip ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qc_cover_exact;
          QCheck_alcotest.to_alcotest qc_no_more_cubes_than_minterms ] ) ]
