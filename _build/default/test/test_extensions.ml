(* Extensions: area recovery and fanout buffering. *)

open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_sim
open Dagmap_circuits

let check = Alcotest.check
let tbool = Alcotest.bool
let tfloat = Alcotest.float 1e-6

let cases () =
  [ ("adder12", Generators.ripple_adder 12, Libraries.lib2_like ());
    ("alu8", Generators.alu 8, Libraries.lib2_like ());
    ("cla16", Generators.carry_lookahead_adder 16, Libraries.lib44_1_like ());
    ("rand", Generators.random_dag ~seed:8 ~inputs:12 ~outputs:6 ~nodes:150 (),
     Libraries.lib2_like ()) ]

(* --- area recovery --------------------------------------------------- *)

let test_area_recovery_preserves_delay () =
  List.iter
    (fun (name, net, lib) ->
      let g = Subject.of_network net in
      let db = Matchdb.prepare lib in
      let r = Mapper.map Mapper.Dag db g in
      let recovered = Area_recovery.recover db Mapper.Dag g r in
      Netlist.validate recovered;
      check tfloat
        (Printf.sprintf "%s delay preserved" name)
        (Netlist.delay r.Mapper.netlist)
        (Netlist.delay recovered))
    (cases ())

let test_area_recovery_reduces_area () =
  let improved = ref 0 in
  List.iter
    (fun (_, net, lib) ->
      let g = Subject.of_network net in
      let db = Matchdb.prepare lib in
      let r = Mapper.map Mapper.Dag db g in
      let recovered = Area_recovery.recover db Mapper.Dag g r in
      check tbool "never increases area" true
        (Netlist.area recovered <= Netlist.area r.Mapper.netlist +. 1e-6);
      if Netlist.area recovered < Netlist.area r.Mapper.netlist -. 1e-6 then
        incr improved)
    (cases ());
  check tbool "area actually improves somewhere" true (!improved >= 2)

let test_area_recovery_equivalence () =
  List.iter
    (fun (name, net, lib) ->
      let g = Subject.of_network net in
      let db = Matchdb.prepare lib in
      let r = Mapper.map Mapper.Dag db g in
      let recovered = Area_recovery.recover db Mapper.Dag g r in
      let verdict =
        Equiv.compare_sims ~rounds:6
          ~n_inputs:(List.length (Subject.pi_ids g))
          (fun words -> Simulate.subject g words)
          (fun words -> Simulate.netlist recovered words)
      in
      if not (Equiv.is_equivalent verdict) then
        Alcotest.failf "%s: %s" name
          (Format.asprintf "%a" Dagmap_sim.Equiv.pp_verdict verdict))
    (cases ())

let test_per_output_mode () =
  let _, net, lib = List.nth (cases ()) 0 in
  let g = Subject.of_network net in
  let db = Matchdb.prepare lib in
  let r = Mapper.map Mapper.Dag db g in
  let strict = Area_recovery.recover ~per_output:true db Mapper.Dag g r in
  (* Per-output mode preserves each output's individual arrival. *)
  let before = Netlist.output_arrivals r.Mapper.netlist in
  let after = Netlist.output_arrivals strict in
  List.iter
    (fun (name, a) ->
      check tbool
        (Printf.sprintf "output %s arrival preserved" name)
        true
        (List.assoc name after <= a +. 1e-6))
    before

let test_recovery_works_for_tree_mode () =
  let _, net, lib = List.nth (cases ()) 1 in
  let g = Subject.of_network net in
  let db = Matchdb.prepare lib in
  let r = Mapper.map Mapper.Tree db g in
  let recovered = Area_recovery.recover db Mapper.Tree g r in
  Netlist.validate recovered;
  check tfloat "tree delay preserved"
    (Netlist.delay r.Mapper.netlist)
    (Netlist.delay recovered);
  check tbool "tree area not worse" true
    (Netlist.area recovered <= Netlist.area r.Mapper.netlist +. 1e-6)

(* --- buffering -------------------------------------------------------- *)

let high_fanout_netlist () =
  (* Parity over a shared signal: decoder has huge PI fanout. *)
  let net = Generators.decoder 4 in
  let g = Subject.of_network net in
  let lib = Libraries.lib2_like () in
  let db = Matchdb.prepare lib in
  ((Mapper.map Mapper.Dag db g).Mapper.netlist, lib, g)

let test_buffering_bounds_fanout () =
  let nl, lib, _ = high_fanout_netlist () in
  check tbool "decoder has high fanout" true (Netlist.max_fanout nl > 4);
  let buffered = Buffering.buffer_fanouts lib ~max_fanout:4 nl in
  Netlist.validate buffered;
  check tbool
    (Printf.sprintf "fanout bounded (%d)" (Netlist.max_fanout buffered))
    true
    (Netlist.max_fanout buffered <= 4)

let test_buffering_preserves_function () =
  let nl, lib, g = high_fanout_netlist () in
  let buffered = Buffering.buffer_fanouts lib ~max_fanout:3 nl in
  let verdict =
    Equiv.compare_sims ~rounds:6 ~n_inputs:(List.length (Subject.pi_ids g))
      (fun words -> Simulate.netlist nl words)
      (fun words -> Simulate.netlist buffered words)
  in
  check tbool "buffered netlist equivalent" true (Equiv.is_equivalent verdict)

let test_buffering_improves_loaded_delay () =
  let nl, lib, _ = high_fanout_netlist () in
  let alpha = 0.5 in
  let buffered = Buffering.buffer_fanouts lib ~max_fanout:4 nl in
  check tbool "loaded delay improves under heavy load model" true
    (Buffering.loaded_delay ~alpha buffered
    < Buffering.loaded_delay ~alpha nl +. 1e-9)

let test_buffering_noop_when_low_fanout () =
  let net = Generators.parity 8 in
  let g = Subject.of_network net in
  let lib = Libraries.lib2_like () in
  let db = Matchdb.prepare lib in
  let nl = (Mapper.map Mapper.Tree db g).Mapper.netlist in
  let mf = Netlist.max_fanout nl in
  let buffered = Buffering.buffer_fanouts lib ~max_fanout:(max mf 2) nl in
  check Alcotest.int "no buffers added" (Netlist.num_gates nl)
    (Netlist.num_gates buffered)

let test_buffering_with_inverter_pairs () =
  (* The minimal library has no buffer gate: inverter pairs are used. *)
  let nl, _, g = high_fanout_netlist () in
  let minimal = Libraries.minimal () in
  let buffered = Buffering.buffer_fanouts minimal ~max_fanout:4 nl in
  Netlist.validate buffered;
  check tbool "fanout bounded via inv pairs" true
    (Netlist.max_fanout buffered <= 4);
  let verdict =
    Equiv.compare_sims ~rounds:4 ~n_inputs:(List.length (Subject.pi_ids g))
      (fun words -> Simulate.netlist nl words)
      (fun words -> Simulate.netlist buffered words)
  in
  check tbool "still equivalent" true (Equiv.is_equivalent verdict)

let test_loaded_delay_exceeds_intrinsic () =
  let nl, _, _ = high_fanout_netlist () in
  check tbool "load model adds delay" true
    (Buffering.loaded_delay ~alpha:0.3 nl >= Netlist.delay nl -. 1e-9)

(* --- gate sizing (paper §5 validation) -------------------------------- *)

let sized_case () =
  let net = Generators.alu 10 in
  let g = Subject.of_network net in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  (Mapper.map Mapper.Dag db g).Mapper.netlist

let test_sizing_bounds_loaded_delay () =
  let nl = sized_case () in
  let tolerance = 0.15 in
  let sized = Sizing.size_to_target ~tolerance ~max_size:1000.0 nl in
  let intrinsic = Netlist.delay nl in
  let after = Sizing.loaded_delay ~sizes:sized.Sizing.sizes nl in
  (* With an uncapped size, every arc's penalty is within tolerance of
     its block delay, so the path bound holds. *)
  check tbool
    (Printf.sprintf "sized %.2f <= (1+tol) * intrinsic %.2f" after intrinsic)
    true
    (after <= ((1.0 +. tolerance) *. intrinsic) +. 1e-6)

let test_sizing_improves_and_costs_area () =
  let nl = sized_case () in
  let sized = Sizing.size_to_target nl in
  check tbool "loaded delay improves" true
    (Sizing.loaded_delay ~sizes:sized.Sizing.sizes nl
    < Sizing.loaded_delay nl +. 1e-9);
  check tbool "sizes >= 1" true (Array.for_all (fun s -> s >= 1.0) sized.Sizing.sizes);
  check tbool "area grows" true (sized.Sizing.sized_area >= Netlist.area nl)

let test_unit_sizes_are_neutral () =
  let nl = sized_case () in
  let unit = Array.make (Netlist.num_gates nl) 1.0 in
  check (Alcotest.float 1e-9) "explicit unit sizes match default"
    (Sizing.loaded_delay nl)
    (Sizing.loaded_delay ~sizes:unit nl);
  (* A zero-coefficient library sees no load penalty at all. *)
  let inv =
    Gate.make ~name:"inv" ~area:1.0
      ~pins:[| Gate.simple_pin ~delay:0.5 "a" |]
      Dagmap_logic.Bexpr.(not_ (var 0))
  in
  let nand2 =
    Gate.make ~name:"nand2" ~area:2.0
      ~pins:
        (Array.init 2 (fun i ->
             Gate.simple_pin ~delay:1.0 (Printf.sprintf "p%d" i)))
      Dagmap_logic.Bexpr.(not_ (and2 (var 0) (var 1)))
  in
  let loadfree = Libraries.make "loadfree" [ inv; nand2 ] in
  let g = Subject.of_network (Generators.parity 8) in
  let db = Matchdb.prepare loadfree in
  let nl2 = (Mapper.map Mapper.Dag db g).Mapper.netlist in
  check (Alcotest.float 1e-9) "zero-coefficient library"
    (Netlist.delay nl2) (Sizing.loaded_delay nl2)

(* --- decomposition styles (paper §4 sensitivity) ----------------------- *)

let test_styles_preserve_function () =
  let net = Generators.decoder 4 in
  List.iter
    (fun style ->
      let g = Subject.of_network ~style net in
      let n = List.length (Subject.pi_ids g) in
      let verdict =
        Dagmap_sim.Equiv.compare_sims ~rounds:4 ~n_inputs:n
          (fun words -> Dagmap_sim.Simulate.network net words)
          (fun words -> Dagmap_sim.Simulate.subject g words)
      in
      check tbool "style preserves function" true
        (Dagmap_sim.Equiv.is_equivalent verdict))
    [ Subject.Balanced; Subject.Left_skew; Subject.Right_skew ]

let test_styles_change_structure () =
  let net = Generators.decoder 6 in
  let depth style = Subject.depth (Subject.of_network ~style net) in
  check tbool "balanced shallower than skewed" true
    (depth Subject.Balanced < depth Subject.Left_skew)

(* --- QCheck properties over random circuits --------------------------- *)

let qc_area_recovery_safe =
  QCheck.Test.make ~count:15 ~name:"area recovery: never worse, delay kept"
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      let net = Generators.random_dag ~seed ~inputs:8 ~outputs:4 ~nodes:60 () in
      let g = Subject.of_network net in
      let db = Matchdb.prepare (Libraries.lib2_like ()) in
      let r = Mapper.map Mapper.Dag db g in
      let recovered = Area_recovery.recover db Mapper.Dag g r in
      Netlist.area recovered <= Netlist.area r.Mapper.netlist +. 1e-6
      && Float.abs (Netlist.delay recovered -. Netlist.delay r.Mapper.netlist)
         < 1e-6
      && Equiv.is_equivalent
           (Equiv.compare_sims ~rounds:3
              ~n_inputs:(List.length (Subject.pi_ids g))
              (fun words -> Simulate.subject g words)
              (fun words -> Simulate.netlist recovered words)))

let qc_buffering_safe =
  QCheck.Test.make ~count:15 ~name:"buffering: bound respected, equivalent"
    QCheck.(make Gen.(pair (int_bound 10_000) (int_range 2 6)))
    (fun (seed, max_fanout) ->
      let net = Generators.random_dag ~seed ~inputs:8 ~outputs:6 ~nodes:60 () in
      let g = Subject.of_network net in
      let lib = Libraries.lib2_like () in
      let db = Matchdb.prepare lib in
      let nl = (Mapper.map Mapper.Dag db g).Mapper.netlist in
      let buffered = Buffering.buffer_fanouts lib ~max_fanout nl in
      Netlist.max_fanout buffered <= max_fanout
      && Equiv.is_equivalent
           (Equiv.compare_sims ~rounds:3
              ~n_inputs:(List.length (Subject.pi_ids g))
              (fun words -> Simulate.netlist nl words)
              (fun words -> Simulate.netlist buffered words)))

let qc_styles_equivalent =
  QCheck.Test.make ~count:15 ~name:"decomposition styles: all equivalent"
    QCheck.(make Gen.(pair (int_bound 10_000) (int_bound 2)))
    (fun (seed, style_idx) ->
      let style =
        List.nth [ Subject.Balanced; Subject.Left_skew; Subject.Right_skew ]
          style_idx
      in
      let net = Generators.random_dag ~seed ~inputs:8 ~outputs:4 ~nodes:50 () in
      let g = Subject.of_network ~style net in
      Equiv.is_equivalent
        (Equiv.compare_sims ~rounds:3
           ~n_inputs:(List.length (Subject.pi_ids g))
           (fun words -> Simulate.network net words)
           (fun words -> Simulate.subject g words)))

let () =
  Alcotest.run "extensions"
    [ ( "area recovery",
        [ Alcotest.test_case "delay preserved" `Quick
            test_area_recovery_preserves_delay;
          Alcotest.test_case "area reduced" `Quick
            test_area_recovery_reduces_area;
          Alcotest.test_case "equivalence" `Quick test_area_recovery_equivalence;
          Alcotest.test_case "per-output mode" `Quick test_per_output_mode;
          Alcotest.test_case "tree mode" `Quick test_recovery_works_for_tree_mode ] );
      ( "buffering",
        [ Alcotest.test_case "bounds fanout" `Quick test_buffering_bounds_fanout;
          Alcotest.test_case "preserves function" `Quick
            test_buffering_preserves_function;
          Alcotest.test_case "improves loaded delay" `Quick
            test_buffering_improves_loaded_delay;
          Alcotest.test_case "noop when low fanout" `Quick
            test_buffering_noop_when_low_fanout;
          Alcotest.test_case "inverter pairs" `Quick
            test_buffering_with_inverter_pairs;
          Alcotest.test_case "loaded vs intrinsic" `Quick
            test_loaded_delay_exceeds_intrinsic ] );
      ( "sizing",
        [ Alcotest.test_case "bounds loaded delay" `Quick
            test_sizing_bounds_loaded_delay;
          Alcotest.test_case "improves and costs area" `Quick
            test_sizing_improves_and_costs_area;
          Alcotest.test_case "unit sizes neutral" `Quick
            test_unit_sizes_are_neutral ] );
      ( "decomposition styles",
        [ Alcotest.test_case "preserve function" `Quick
            test_styles_preserve_function;
          Alcotest.test_case "change structure" `Quick
            test_styles_change_structure ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qc_area_recovery_safe;
          QCheck_alcotest.to_alcotest qc_buffering_safe;
          QCheck_alcotest.to_alcotest qc_styles_equivalent ] ) ]
