(* Subject graph construction: NAND2-INV decomposition equivalence,
   structural hashing, constant folding, builder behavior. *)

open Dagmap_logic
open Dagmap_subject
open Dagmap_circuits

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let v = Bexpr.var

(* Exhaustive equivalence between a network and its subject graph for
   small input counts. *)
let assert_equiv ?(max_inputs = 12) net =
  let sg = Subject.of_network net in
  let n_pis = List.length (Network.pis net) in
  Alcotest.(check bool) "no latches in this helper" true (Network.latches net = []);
  if n_pis <= max_inputs then
    for m = 0 to (1 lsl n_pis) - 1 do
      let asg = Array.init n_pis (fun i -> m land (1 lsl i) <> 0) in
      let expected =
        (* Reference: evaluate the network directly. *)
        let value = Array.make (Network.num_nodes net) false in
        List.iteri (fun i id -> value.(id) <- asg.(i)) (Network.pis net);
        List.iter
          (fun id ->
            let n = Network.node net id in
            match n.Network.kind with
            | Network.Pi | Network.Latch_out -> ()
            | Network.Logic ->
              value.(id) <-
                Bexpr.eval n.Network.expr (fun i -> value.(n.Network.fanins.(i))))
          (Network.topological_order net);
        List.map (fun (name, id) -> (name, value.(id))) (Network.pos net)
      in
      let actual = Subject.eval sg asg in
      List.iter
        (fun (name, value) ->
          match List.assoc_opt name actual with
          | None -> Alcotest.failf "missing output %s" name
          | Some actual_value ->
            if actual_value <> value then
              Alcotest.failf "output %s differs on minterm %d" name m)
        expected
    done
  else Alcotest.fail "too many inputs for exhaustive check"

let test_simple_decomposition () =
  let net = Network.create () in
  let a = Network.add_pi net "a" and b = Network.add_pi net "b" in
  let c = Network.add_pi net "c" in
  let f =
    Network.add_logic net
      Bexpr.(or2 (and2 (v 0) (v 1)) (not_ (v 2)))
      [| a; b; c |]
  in
  Network.add_po net "f" f;
  assert_equiv net;
  let sg = Subject.of_network net in
  check tint "three PIs" 3 sg.Subject.num_pis

let test_xor_decomposition () =
  let net = Network.create () in
  let a = Network.add_pi net "a" and b = Network.add_pi net "b" in
  let f = Network.add_logic net Bexpr.(xor2 (v 0) (v 1)) [| a; b |] in
  Network.add_po net "f" f;
  assert_equiv net

let test_wide_node () =
  let net = Network.create () in
  let pis = Array.init 6 (fun i -> Network.add_pi net (Printf.sprintf "x%d" i)) in
  let f = Network.add_logic net (Bexpr.or_list (List.init 6 v)) pis in
  Network.add_po net "f" f;
  assert_equiv net;
  let sg = Subject.of_network net in
  (* Balanced reduction keeps the decomposition shallow. *)
  check tbool "balanced depth" true (Subject.depth sg <= 6)

let test_structural_hashing () =
  let net = Network.create () in
  let a = Network.add_pi net "a" and b = Network.add_pi net "b" in
  (* Two nodes with the same function decompose to shared NANDs. *)
  let f = Network.add_logic net Bexpr.(and2 (v 0) (v 1)) [| a; b |] in
  let g = Network.add_logic net Bexpr.(and2 (v 1) (v 0)) [| b; a |] in
  Network.add_po net "f" f;
  Network.add_po net "g" g;
  let sg = Subject.of_network net in
  (* a&b and b&a share: 2 PIs + 1 nand + 1 inv. *)
  check tint "hashed node count" 4 (Subject.num_nodes sg)

let test_no_inverter_pairs () =
  List.iter
    (fun (_, net) ->
      let sg = Subject.of_network net in
      for i = 0 to Subject.num_nodes sg - 1 do
        match Subject.kind sg i with
        | Subject.Sinv x -> begin
          match Subject.kind sg x with
          | Subject.Sinv _ -> Alcotest.fail "inverter pair in subject graph"
          | Subject.Spi | Subject.Snand _ -> ()
        end
        | Subject.Spi | Subject.Snand _ -> ()
      done)
    [ ("c432", Iscas_like.c432_like ()); ("adder", Generators.ripple_adder 8) ]

let test_constant_output () =
  let net = Network.create () in
  let a = Network.add_pi net "a" in
  (* f = a & !a = 0 after folding; g = a | !a = 1. *)
  let na = Network.add_logic net Bexpr.(not_ (v 0)) [| a |] in
  let f = Network.add_logic net Bexpr.(and2 (v 0) (and2 (v 1) (not_ (v 1)))) [| a; na |] in
  ignore f;
  let z = Network.add_logic net (Bexpr.const false) [||] in
  let o = Network.add_logic net (Bexpr.const true) [||] in
  Network.add_po net "zero" z;
  Network.add_po net "one" o;
  let sg = Subject.of_network net in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string tbool))
    "const outputs"
    [ ("zero", false); ("one", true) ]
    sg.Subject.const_outputs;
  let results = Subject.eval sg [| true |] in
  check tbool "zero" false (List.assoc "zero" results);
  check tbool "one" true (List.assoc "one" results)

let test_po_driven_by_pi () =
  let net = Network.create () in
  let a = Network.add_pi net "a" in
  Network.add_po net "f" a;
  let sg = Subject.of_network net in
  let out = List.hd sg.Subject.outputs in
  check tbool "output is the PI node" true
    (Subject.kind sg out.Subject.out_node = Subject.Spi)

let test_latch_boundaries () =
  let net = Generators.lfsr 4 in
  let sg = Subject.of_network net in
  check tint "latch count recorded" 4 sg.Subject.n_latches;
  (* PIs: 1 enable + 4 latch outputs. *)
  check tint "pi count" 5 (List.length (Subject.pi_ids sg));
  (* Outputs: 4 POs + 4 latch inputs. *)
  check tint "output count" 8 (List.length sg.Subject.outputs)

let test_builder_hashing_and_raw () =
  let b = Subject.Builder.create () in
  let x = Subject.Builder.pi b "x" in
  let y = Subject.Builder.pi b "y" in
  let n1 = Subject.Builder.nand b x y in
  let n2 = Subject.Builder.nand b y x in
  check tint "commutative hashing" n1 n2;
  let r1 = Subject.Builder.raw_nand b x y in
  check tbool "raw always fresh" true (r1 <> n1);
  let i1 = Subject.Builder.inv b n1 in
  check tint "inv cancellation" n1 (Subject.Builder.inv b i1);
  Subject.Builder.output b "o" i1;
  let g = Subject.Builder.finish b in
  check tint "node count" 5 (Subject.num_nodes g)

let test_fanout_counts () =
  let b = Subject.Builder.create () in
  let x = Subject.Builder.pi b "x" in
  let y = Subject.Builder.pi b "y" in
  let n1 = Subject.Builder.nand b x y in
  let n2 = Subject.Builder.nand b x n1 in
  Subject.Builder.output b "o" n2;
  Subject.Builder.output b "p" n1;
  let g = Subject.Builder.finish b in
  let fo = Subject.fanout_counts g in
  check tint "x fanout" 2 fo.(x);
  check tint "n1 fanout" 2 fo.(n1);
  check tint "n2 fanout" 1 fo.(n2)

let test_levels () =
  let b = Subject.Builder.create () in
  let x = Subject.Builder.pi b "x" in
  let i = Subject.Builder.inv b x in
  let n = Subject.Builder.nand b x i in
  Subject.Builder.output b "o" n;
  let g = Subject.Builder.finish b in
  let lv = Subject.levels g in
  check tint "pi level" 0 lv.(x);
  check tint "inv level" 1 lv.(i);
  check tint "nand level" 2 lv.(n);
  check tint "depth" 2 (Subject.depth g)

(* QCheck: random networks decompose equivalently. *)
let qc_random_equiv =
  QCheck.Test.make ~count:30 ~name:"random network decomposition equivalence"
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      let net =
        Generators.random_dag ~seed ~inputs:8 ~outputs:4 ~nodes:40 ()
      in
      let sg = Subject.of_network net in
      let ok = ref true in
      for m = 0 to 255 do
        let asg = Array.init 8 (fun i -> m land (1 lsl i) <> 0) in
        let value = Array.make (Network.num_nodes net) false in
        List.iteri (fun i id -> value.(id) <- asg.(i)) (Network.pis net);
        List.iter
          (fun id ->
            let n = Network.node net id in
            match n.Network.kind with
            | Network.Pi | Network.Latch_out -> ()
            | Network.Logic ->
              value.(id) <-
                Bexpr.eval n.Network.expr (fun i -> value.(n.Network.fanins.(i))))
          (Network.topological_order net);
        let actual = Subject.eval sg asg in
        List.iter
          (fun (name, id) ->
            if List.assoc name actual <> value.(id) then ok := false)
          (Network.pos net)
      done;
      !ok)

let () =
  Alcotest.run "subject"
    [ ( "decomposition",
        [ Alcotest.test_case "simple" `Quick test_simple_decomposition;
          Alcotest.test_case "xor" `Quick test_xor_decomposition;
          Alcotest.test_case "wide node" `Quick test_wide_node;
          Alcotest.test_case "structural hashing" `Quick test_structural_hashing;
          Alcotest.test_case "no inverter pairs" `Quick test_no_inverter_pairs;
          Alcotest.test_case "constant outputs" `Quick test_constant_output;
          Alcotest.test_case "po driven by pi" `Quick test_po_driven_by_pi;
          Alcotest.test_case "latch boundaries" `Quick test_latch_boundaries ] );
      ( "builder",
        [ Alcotest.test_case "hashing and raw" `Quick test_builder_hashing_and_raw;
          Alcotest.test_case "fanout counts" `Quick test_fanout_counts;
          Alcotest.test_case "levels" `Quick test_levels ] );
      ( "properties", [ QCheck_alcotest.to_alcotest qc_random_equiv ] ) ]
