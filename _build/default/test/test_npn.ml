(* NPN / permutation utilities. *)

open Dagmap_logic

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let truth_equal = Alcotest.testable Truth.pp Truth.equal

let test_identity () =
  let f = Truth.logand (Truth.var 3 0) (Truth.lognot (Truth.var 3 2)) in
  check truth_equal "identity transform" f (Npn.apply f (Npn.identity 3))

let test_apply_permutation () =
  let f = Truth.logand (Truth.var 2 0) (Truth.lognot (Truth.var 2 1)) in
  let t = { Npn.perm = [| 1; 0 |]; input_neg = 0; output_neg = false } in
  check truth_equal "swap inputs"
    (Truth.logand (Truth.var 2 1) (Truth.lognot (Truth.var 2 0)))
    (Npn.apply f t)

let test_apply_negation () =
  let f = Truth.logand (Truth.var 2 0) (Truth.var 2 1) in
  let t = { Npn.perm = [| 0; 1 |]; input_neg = 1; output_neg = false } in
  check truth_equal "negate input 0"
    (Truth.logand (Truth.lognot (Truth.var 2 0)) (Truth.var 2 1))
    (Npn.apply f t);
  let t' = { Npn.perm = [| 0; 1 |]; input_neg = 0; output_neg = true } in
  check truth_equal "negate output" (Truth.lognand (Truth.var 2 0) (Truth.var 2 1))
    (Npn.apply f t')

let test_permutation_count () =
  check tint "3! permutations" 6 (List.length (Npn.permutations 3));
  check tint "5! permutations" 120 (List.length (Npn.permutations 5))

let test_p_variants () =
  (* A fully symmetric function has a single P-variant. *)
  let and3 =
    Truth.logand (Truth.var 3 0) (Truth.logand (Truth.var 3 1) (Truth.var 3 2))
  in
  check tint "and3 variants" 1 (List.length (Npn.p_variants and3));
  (* An asymmetric function has distinct variants. *)
  let f = Truth.logand (Truth.var 2 0) (Truth.lognot (Truth.var 2 1)) in
  check tint "a&!b variants" 2 (List.length (Npn.p_variants f));
  (* Each variant is reproduced by its permutation. *)
  List.iter
    (fun (v, perm) -> check truth_equal "variant consistent" v (Truth.permute f perm))
    (Npn.p_variants f)

let test_npn_canon_invariance () =
  (* Canonical form is invariant under arbitrary NPN transforms. *)
  let st = Random.State.make [| 9 |] in
  for _ = 1 to 30 do
    let n = 3 + Random.State.int st 2 in
    let f =
      Truth.of_minterms n
        (List.init (1 lsl (n - 1)) (fun _ -> Random.State.int st (1 lsl n)))
    in
    let perm =
      let a = Array.init n (fun i -> i) in
      for i = n - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- t
      done;
      a
    in
    let t =
      { Npn.perm;
        input_neg = Random.State.int st (1 lsl n);
        output_neg = Random.State.bool st }
    in
    let g = Npn.apply f t in
    check truth_equal "canonical invariance"
      (fst (Npn.npn_canon f))
      (fst (Npn.npn_canon g));
    check tbool "npn_equal" true (Npn.npn_equal f g)
  done

let test_npn_canon_transform_is_witness () =
  let f =
    Truth.logor
      (Truth.logand (Truth.var 3 0) (Truth.var 3 1))
      (Truth.lognot (Truth.var 3 2))
  in
  let canonical, t = Npn.npn_canon f in
  check truth_equal "witness transform reaches canonical" canonical
    (Npn.apply f t)

let test_npn_distinguishes () =
  (* AND and XOR are not NPN-equivalent. *)
  let and2 = Truth.logand (Truth.var 2 0) (Truth.var 2 1) in
  let xor2 = Truth.logxor (Truth.var 2 0) (Truth.var 2 1) in
  check tbool "and vs xor" false (Npn.npn_equal and2 xor2);
  (* AND and NOR are NPN-equivalent (negate inputs and output). *)
  let nor2 = Truth.lognor (Truth.var 2 0) (Truth.var 2 1) in
  check tbool "and vs nor" true (Npn.npn_equal and2 nor2)

let () =
  Alcotest.run "npn"
    [ ( "transforms",
        [ Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "permutation" `Quick test_apply_permutation;
          Alcotest.test_case "negation" `Quick test_apply_negation;
          Alcotest.test_case "permutation count" `Quick test_permutation_count;
          Alcotest.test_case "p variants" `Quick test_p_variants ] );
      ( "canonicalization",
        [ Alcotest.test_case "invariance" `Quick test_npn_canon_invariance;
          Alcotest.test_case "witness" `Quick test_npn_canon_transform_is_witness;
          Alcotest.test_case "distinguishes" `Quick test_npn_distinguishes ] ) ]
