(* Retiming: the Leiserson-Saxe machinery and the sequential mapping
   pipeline of paper §4. *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_core
open Dagmap_sim
open Dagmap_circuits
open Dagmap_retime

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tfloat = Alcotest.float 1e-6

(* A two-stage pipeline whose two output latches can be spread by
   retiming: host ->0 A(5) ->0 B(5) ->2 host. Initial period 10
   (A and B combinational); optimum 5 (one latch moved between A
   and B). The vertex delay 5 is a hard lower bound. *)
let pipeline () =
  let g = Retiming.create () in
  let a = Retiming.add_vertex g ~delay:5.0 in
  let b = Retiming.add_vertex g ~delay:5.0 in
  Retiming.add_edge g Retiming.host a ~weight:0;
  Retiming.add_edge g a b ~weight:0;
  Retiming.add_edge g b Retiming.host ~weight:2;
  g

(* A latency-constrained ring (Leiserson-Saxe flavor): the host edges
   pin r at both ends, so the 3+3+3 chain cannot be broken and the
   minimum period stays 9. *)
let ring () =
  let g = Retiming.create () in
  let v7 = Retiming.add_vertex g ~delay:7.0 in
  let v3a = Retiming.add_vertex g ~delay:3.0 in
  let v3b = Retiming.add_vertex g ~delay:3.0 in
  let v3c = Retiming.add_vertex g ~delay:3.0 in
  Retiming.add_edge g v7 v3a ~weight:1;
  Retiming.add_edge g v3a v3b ~weight:0;
  Retiming.add_edge g v3b v3c ~weight:0;
  Retiming.add_edge g v3c v7 ~weight:1;
  Retiming.add_edge g Retiming.host v7 ~weight:0;
  Retiming.add_edge g v3c Retiming.host ~weight:0;
  g

let test_clock_period () =
  check tfloat "pipeline period" 10.0 (Retiming.clock_period (pipeline ()) ());
  check tfloat "ring period" 9.0 (Retiming.clock_period (ring ()) ())

let test_feasible_and_min_period () =
  let g = pipeline () in
  (match Retiming.feasible g 5.0 with
   | Some r ->
     check tbool "legal" true (Retiming.is_legal g r);
     check tbool "achieves 5" true
       (Retiming.clock_period g ~retiming:r () <= 5.0 +. 1e-9)
   | None -> Alcotest.fail "period 5 should be feasible");
  (match Retiming.feasible g 4.5 with
   | Some _ -> Alcotest.fail "period 4.5 should be infeasible"
   | None -> ());
  let period, r = Retiming.min_period g in
  check tfloat "min period 5" 5.0 period;
  check tbool "result legal" true (Retiming.is_legal g r);
  (* The IO-pinned ring cannot be improved below 9. *)
  let ring_period, ring_r = Retiming.min_period (ring ()) in
  check tfloat "ring stuck at 9" 9.0 ring_period;
  check tbool "ring retiming legal" true (Retiming.is_legal (ring ()) ring_r)

let test_latch_count_conserved_on_cycles () =
  let g = ring () in
  let _, r = Retiming.min_period g in
  (* Retiming conserves the latch count around every cycle; for this
     single-cycle graph the ring total is 2 before and after. *)
  let ring_total = ref 0 in
  Retiming.retimed_weight g r (fun u v w ->
      if u <> Retiming.host && v <> Retiming.host then
        ring_total := !ring_total + w);
  check tint "ring latches" 2 !ring_total

let test_identity_when_already_optimal () =
  (* A purely combinational pipeline between host edges cannot be
     improved. *)
  let g = Retiming.create () in
  let a = Retiming.add_vertex g ~delay:2.0 in
  let b = Retiming.add_vertex g ~delay:2.0 in
  Retiming.add_edge g Retiming.host a ~weight:0;
  Retiming.add_edge g a b ~weight:0;
  Retiming.add_edge g b Retiming.host ~weight:0;
  let period, _ = Retiming.min_period g in
  check tfloat "cannot improve" 4.0 period

let test_zero_weight_cycle_fails () =
  let g = Retiming.create () in
  let a = Retiming.add_vertex g ~delay:1.0 in
  let b = Retiming.add_vertex g ~delay:1.0 in
  Retiming.add_edge g a b ~weight:0;
  Retiming.add_edge g b a ~weight:0;
  match Retiming.clock_period g () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected zero-weight cycle failure"

(* --- network graph extraction -------------------------------------- *)

let test_network_graph_weights () =
  (* x --latch--latch--> f: one edge of weight 2. *)
  let net = Network.create () in
  let x = Network.add_pi net "x" in
  let q1 = Network.add_latch net x in
  let q2 = Network.add_latch net q1 in
  let f = Network.add_logic net Bexpr.(not_ (var 0)) [| q2 |] in
  Network.add_po net "f" f;
  let g, vertex = Seq_map.network_graph net in
  check tint "two vertices (host + f)" 2 (Retiming.num_vertices g);
  let found = ref false in
  Retiming.retimed_weight g
    (Array.make (Retiming.num_vertices g) 0)
    (fun u v w ->
      if u = Retiming.host && v = vertex.(f) then begin
        found := true;
        check tint "latch chain weight" 2 w
      end);
  check tbool "edge found" true !found

let test_apply_network_retiming_legal () =
  let net = Generators.pipelined_parity 16 3 in
  let g, _ = Seq_map.network_graph net in
  let before = Retiming.clock_period g () in
  let period, r = Retiming.min_period g in
  check tbool "unit-delay retiming improves the parity pipeline" true
    (period < before -. 0.5);
  let retimed = Seq_map.apply_network_retiming net r in
  Network.validate retimed;
  (* The rebuilt network achieves the predicted period. *)
  let g2, _ = Seq_map.network_graph retimed in
  check tfloat "rebuilt period" period (Retiming.clock_period g2 ());
  (* Combinational function with all latches forced transparent is
     preserved... structurally: same PI/PO counts. *)
  check tint "same pis" (List.length (Network.pis net))
    (List.length (Network.pis retimed));
  check tint "same pos" (List.length (Network.pos net))
    (List.length (Network.pos retimed))

(* --- sequential mapping pipeline ------------------------------------ *)

let test_seq_map_lfsr () =
  let net = Generators.lfsr 12 in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let r = Seq_map.run db Mapper.Dag net in
  check tbool "periods positive" true
    (r.Seq_map.period_before > 0.0 && r.Seq_map.period_after > 0.0);
  check tbool "retiming never hurts" true
    (r.Seq_map.period_after <= r.Seq_map.period_before +. 1e-9);
  check tbool "latches present" true (r.Seq_map.latches_before > 0)

let test_seq_map_pipelined_parity () =
  let net = Generators.pipelined_parity 32 4 in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let r = Seq_map.run db Mapper.Dag net in
  (* All latch stages sit at the output, so retiming must spread them
     into the XOR tree and shorten the period substantially. *)
  check tbool
    (Printf.sprintf "period improves (%.2f -> %.2f)" r.Seq_map.period_before
       r.Seq_map.period_after)
    true
    (r.Seq_map.period_after < r.Seq_map.period_before /. 1.5);
  (* The mapped core is still combinationally equivalent. *)
  let g = Dagmap_subject.Subject.of_network net in
  let verdict =
    Equiv.compare_sims
      ~n_inputs:(List.length (Dagmap_subject.Subject.pi_ids g))
      (fun words -> Simulate.subject g words)
      (fun words -> Simulate.netlist r.Seq_map.netlist words)
  in
  check tbool "mapped core equivalent" true (Equiv.is_equivalent verdict)

let test_reduce_latches () =
  (* The parity pipeline's min-period retiming carries many excess
     registers; reduction must keep period and legality while
     shrinking the count. *)
  let net = Generators.pipelined_parity 32 4 in
  let g, _ = Seq_map.network_graph net in
  let period, r = Retiming.min_period g in
  let before = Retiming.total_latches g r in
  let reduced = Retiming.reduce_latches g ~period r in
  check tbool "legal after reduction" true (Retiming.is_legal g reduced);
  check tbool "period preserved" true
    (Retiming.clock_period g ~retiming:reduced () <= period +. 1e-9);
  check tbool
    (Printf.sprintf "latch count reduced (%d -> %d)" before
       (Retiming.total_latches g reduced))
    true
    (Retiming.total_latches g reduced <= before)

(* --- optimal sequential mapping (Seq_opt) --------------------------- *)

let test_seq_opt_dominates_three_step () =
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  List.iter
    (fun net ->
      let heuristic = Seq_map.run db Mapper.Dag net in
      let optimal = Seq_opt.min_period db Mapper.Dag net in
      check tbool
        (Printf.sprintf "optimal %.3f <= 3-step %.3f" optimal
           heuristic.Seq_map.period_after)
        true
        (optimal <= heuristic.Seq_map.period_after +. 1e-3))
    [ Generators.lfsr 10; Generators.pipelined_parity 32 3 ]

let test_seq_opt_decision_consistency () =
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let net = Generators.lfsr 8 in
  let optimal = Seq_opt.min_period db Mapper.Dag net in
  (match Seq_opt.check_period db Mapper.Dag net (optimal +. 0.05) with
   | Seq_opt.Feasible _ -> ()
   | Seq_opt.Infeasible -> Alcotest.fail "period above optimum must be feasible");
  (match Seq_opt.check_period db Mapper.Dag net (optimal /. 2.0) with
   | Seq_opt.Infeasible -> ()
   | Seq_opt.Feasible _ ->
     Alcotest.fail "period far below optimum must be infeasible")

let test_seq_opt_rejects_combinational () =
  let db = Matchdb.prepare (Libraries.minimal ()) in
  let net = Generators.parity 4 in
  match Seq_opt.check_period db Mapper.Dag net 10.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for combinational input"

let test_seq_map_tree_vs_dag () =
  let net = Generators.lfsr 10 in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let rt = Seq_map.run db Mapper.Tree net in
  let rd = Seq_map.run db Mapper.Dag net in
  check tbool "dag comb delay <= tree" true
    (rd.Seq_map.comb_delay <= rt.Seq_map.comb_delay +. 1e-9)

let () =
  Alcotest.run "retime"
    [ ( "leiserson-saxe",
        [ Alcotest.test_case "clock period" `Quick test_clock_period;
          Alcotest.test_case "feasible/min period" `Quick
            test_feasible_and_min_period;
          Alcotest.test_case "cycle latch conservation" `Quick
            test_latch_count_conserved_on_cycles;
          Alcotest.test_case "already optimal" `Quick
            test_identity_when_already_optimal;
          Alcotest.test_case "zero-weight cycle" `Quick
            test_zero_weight_cycle_fails;
          Alcotest.test_case "reduce latches" `Quick test_reduce_latches ] );
      ( "network graphs",
        [ Alcotest.test_case "latch chain weights" `Quick
            test_network_graph_weights;
          Alcotest.test_case "apply retiming" `Quick
            test_apply_network_retiming_legal ] );
      ( "sequential mapping",
        [ Alcotest.test_case "lfsr" `Quick test_seq_map_lfsr;
          Alcotest.test_case "pipelined parity" `Quick
            test_seq_map_pipelined_parity;
          Alcotest.test_case "tree vs dag" `Quick test_seq_map_tree_vs_dag ] );
      ( "optimal (pan-liu)",
        [ Alcotest.test_case "dominates three-step" `Quick
            test_seq_opt_dominates_three_step;
          Alcotest.test_case "decision consistency" `Quick
            test_seq_opt_decision_consistency;
          Alcotest.test_case "rejects combinational" `Quick
            test_seq_opt_rejects_combinational ] ) ]
