(* Truth-table algebra: constructors, connectives, structural
   operations and their algebraic laws, plus QCheck properties
   against a reference bit-by-bit evaluator. *)

open Dagmap_logic

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let truth_equal = Alcotest.testable Truth.pp Truth.equal

(* --- constructors ------------------------------------------------- *)

let test_const () =
  List.iter
    (fun n ->
      check tbool "const false is const" true
        (Truth.is_const (Truth.const n false) = Some false);
      check tbool "const true is const" true
        (Truth.is_const (Truth.const n true) = Some true);
      check tint "count_ones of true" (1 lsl n)
        (Truth.count_ones (Truth.const n true)))
    [ 0; 1; 3; 6; 7; 10 ]

let test_var_balance () =
  (* Each projection has exactly half its minterms set. *)
  for n = 1 to 8 do
    for i = 0 to n - 1 do
      check tint
        (Printf.sprintf "var %d/%d balance" i n)
        (1 lsl (n - 1))
        (Truth.count_ones (Truth.var n i))
    done
  done

let test_var_bits () =
  let v = Truth.var 3 1 in
  for m = 0 to 7 do
    check tbool
      (Printf.sprintf "bit %d of var 3 1" m)
      (m land 2 <> 0) (Truth.get_bit v m)
  done

let test_too_many_vars () =
  Alcotest.check_raises "17 vars rejected" (Truth.Too_many_vars 17) (fun () ->
      ignore (Truth.const 17 false))

(* --- connectives and laws ---------------------------------------- *)

let test_de_morgan () =
  for n = 1 to 7 do
    let a = Truth.var n 0 in
    let b = Truth.var n (n - 1) in
    check truth_equal "!(a&b) = !a | !b"
      (Truth.lognot (Truth.logand a b))
      (Truth.logor (Truth.lognot a) (Truth.lognot b));
    check truth_equal "!(a|b) = !a & !b"
      (Truth.lognot (Truth.logor a b))
      (Truth.logand (Truth.lognot a) (Truth.lognot b))
  done

let test_xor_definition () =
  let n = 5 in
  let a = Truth.var n 2 and b = Truth.var n 4 in
  check truth_equal "xor = (a & !b) | (!a & b)" (Truth.logxor a b)
    (Truth.logor
       (Truth.logand a (Truth.lognot b))
       (Truth.logand (Truth.lognot a) b));
  check truth_equal "xnor = !(xor)" (Truth.logxnor a b)
    (Truth.lognot (Truth.logxor a b))

let test_involution () =
  let t = Truth.logxor (Truth.var 9 8) (Truth.var 9 0) in
  check truth_equal "double negation" t (Truth.lognot (Truth.lognot t))

let test_arity_mismatch () =
  Alcotest.check_raises "mixed arity rejected"
    (Invalid_argument "Truth: arity mismatch") (fun () ->
      ignore (Truth.logand (Truth.var 3 0) (Truth.var 4 0)))

(* --- bit access ---------------------------------------------------- *)

let test_set_get () =
  let t = ref (Truth.const 7 false) in
  let set = [ 0; 1; 63; 64; 65; 127 ] in
  List.iter (fun m -> t := Truth.set_bit !t m true) set;
  check tint "count after sets" (List.length set) (Truth.count_ones !t);
  List.iter
    (fun m -> check tbool (Printf.sprintf "bit %d" m) true (Truth.get_bit !t m))
    set;
  check tbool "unset bit" false (Truth.get_bit !t 100);
  t := Truth.set_bit !t 63 false;
  check tbool "cleared" false (Truth.get_bit !t 63)

let test_of_minterms () =
  let t = Truth.of_minterms 4 [ 3; 5; 9 ] in
  check tint "three minterms" 3 (Truth.count_ones t);
  check tbool "minterm 5" true (Truth.get_bit t 5);
  check tbool "minterm 6" false (Truth.get_bit t 6)

(* --- eval ---------------------------------------------------------- *)

let test_eval () =
  let n = 8 in
  (* f = x1 & !x6 *)
  let f = Truth.logand (Truth.var n 1) (Truth.lognot (Truth.var n 6)) in
  let assignment = Array.make n false in
  assignment.(1) <- true;
  check tbool "x1 & !x6 with x6=0" true (Truth.eval f assignment);
  assignment.(6) <- true;
  check tbool "x1 & !x6 with x6=1" false (Truth.eval f assignment)

(* --- cofactors, support -------------------------------------------- *)

let test_cofactor_shannon () =
  (* Shannon expansion f = (!xi & f0) | (xi & f1) over random functions. *)
  let st = Random.State.make [| 7 |] in
  for n = 1 to 9 do
    let f =
      Truth.of_minterms n
        (List.init (1 lsl (n - 1)) (fun _ -> Random.State.int st (1 lsl n)))
    in
    for i = 0 to n - 1 do
      let f0 = Truth.cofactor f i false and f1 = Truth.cofactor f i true in
      let xi = Truth.var n i in
      check truth_equal
        (Printf.sprintf "shannon n=%d i=%d" n i)
        f
        (Truth.logor
           (Truth.logand (Truth.lognot xi) f0)
           (Truth.logand xi f1));
      check tbool "cofactor drops dependence" false (Truth.depends_on f0 i)
    done
  done

let test_support () =
  let n = 6 in
  let f = Truth.logxor (Truth.var n 1) (Truth.var n 4) in
  check (Alcotest.list tint) "support" [ 1; 4 ] (Truth.support f);
  check (Alcotest.list tint) "support of const" []
    (Truth.support (Truth.const n true))

(* --- permute / expand ---------------------------------------------- *)

let test_permute () =
  let n = 5 in
  let f = Truth.logand (Truth.var n 0) (Truth.lognot (Truth.var n 3)) in
  let perm = [| 4; 1; 2; 0; 3 |] in
  let g = Truth.permute f perm in
  check truth_equal "permute moves vars"
    (Truth.logand (Truth.var n 4) (Truth.lognot (Truth.var n 0)))
    g;
  (* Inverse permutation restores the function. *)
  let inv = Array.make n 0 in
  Array.iteri (fun i p -> inv.(p) <- i) perm;
  check truth_equal "permute inverse" f (Truth.permute g inv)

let test_expand () =
  let small = Truth.logand (Truth.var 2 0) (Truth.var 2 1) in
  let big = Truth.expand small 5 [| 3; 1 |] in
  check truth_equal "expand places vars"
    (Truth.logand (Truth.var 5 3) (Truth.var 5 1))
    big

(* --- hashing / comparison ------------------------------------------ *)

let test_hash_stability () =
  let a = Truth.logxor (Truth.var 7 0) (Truth.var 7 6) in
  let b = Truth.logxor (Truth.var 7 0) (Truth.var 7 6) in
  check tbool "equal tables hash equal" true (Truth.hash a = Truth.hash b);
  check tint "compare equal" 0 (Truth.compare a b)

(* --- QCheck: equivalence with a reference evaluator ---------------- *)

(* Random expression trees evaluated two ways: via Truth algebra and
   via direct boolean evaluation on every assignment. *)
type rexpr =
  | Rvar of int
  | Rnot of rexpr
  | Rand of rexpr * rexpr
  | Ror of rexpr * rexpr
  | Rxor of rexpr * rexpr

let rec rexpr_gen n depth =
  let open QCheck.Gen in
  if depth = 0 then map (fun i -> Rvar i) (int_bound (n - 1))
  else
    frequency
      [ (2, map (fun i -> Rvar i) (int_bound (n - 1)));
        (1, map (fun e -> Rnot e) (rexpr_gen n (depth - 1)));
        (2, map2 (fun a b -> Rand (a, b)) (rexpr_gen n (depth - 1)) (rexpr_gen n (depth - 1)));
        (2, map2 (fun a b -> Ror (a, b)) (rexpr_gen n (depth - 1)) (rexpr_gen n (depth - 1)));
        (1, map2 (fun a b -> Rxor (a, b)) (rexpr_gen n (depth - 1)) (rexpr_gen n (depth - 1))) ]

let rec rexpr_truth n = function
  | Rvar i -> Truth.var n i
  | Rnot a -> Truth.lognot (rexpr_truth n a)
  | Rand (a, b) -> Truth.logand (rexpr_truth n a) (rexpr_truth n b)
  | Ror (a, b) -> Truth.logor (rexpr_truth n a) (rexpr_truth n b)
  | Rxor (a, b) -> Truth.logxor (rexpr_truth n a) (rexpr_truth n b)

let rec rexpr_eval env = function
  | Rvar i -> env.(i)
  | Rnot a -> not (rexpr_eval env a)
  | Rand (a, b) -> rexpr_eval env a && rexpr_eval env b
  | Ror (a, b) -> rexpr_eval env a || rexpr_eval env b
  | Rxor (a, b) -> rexpr_eval env a <> rexpr_eval env b

let n_qc = 7

let qc_truth_vs_eval =
  QCheck.Test.make ~count:200 ~name:"truth algebra matches evaluator"
    (QCheck.make (rexpr_gen n_qc 5))
    (fun e ->
      let tt = rexpr_truth n_qc e in
      let ok = ref true in
      for m = 0 to (1 lsl n_qc) - 1 do
        let env = Array.init n_qc (fun i -> m land (1 lsl i) <> 0) in
        if Truth.eval tt env <> rexpr_eval env e then ok := false;
        if Truth.get_bit tt m <> rexpr_eval env e then ok := false
      done;
      !ok)

let qc_permute_preserves_count =
  QCheck.Test.make ~count:100 ~name:"permute preserves count_ones"
    (QCheck.make (rexpr_gen 5 4))
    (fun e ->
      let tt = rexpr_truth 5 e in
      let perm = [| 2; 0; 4; 1; 3 |] in
      Truth.count_ones tt = Truth.count_ones (Truth.permute tt perm))

(* expand places the function on the selected variables: checked
   against direct bit extraction for random functions/placements. *)
let qc_expand_semantics =
  QCheck.Test.make ~count:200 ~name:"expand semantics"
    QCheck.(make Gen.(pair (int_range 1 4) (int_bound 100_000)))
    (fun (s, seed) ->
      let st = Random.State.make [| seed; s |] in
      let n = s + Random.State.int st 3 in
      let f =
        Truth.of_minterms s
          (List.init (1 lsl s) (fun _ -> Random.State.int st (1 lsl s)))
      in
      let all = Array.init n (fun i -> i) in
      for i = n - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = all.(i) in
        all.(i) <- all.(j);
        all.(j) <- t
      done;
      let placement = Array.sub all 0 s in
      Array.sort compare placement;
      let big = Truth.expand f n placement in
      let ok = ref true in
      for m = 0 to (1 lsl n) - 1 do
        let small = ref 0 in
        Array.iteri
          (fun i p -> if m land (1 lsl p) <> 0 then small := !small lor (1 lsl i))
          placement;
        if Truth.get_bit big m <> Truth.get_bit f !small then ok := false
      done;
      !ok)

(* project inverts expand when the kept set covers the support. *)
let qc_project_inverts_expand =
  QCheck.Test.make ~count:200 ~name:"project inverts expand"
    QCheck.(make Gen.(pair (int_range 1 5) (int_bound 100_000)))
    (fun (s, seed) ->
      let st = Random.State.make [| seed; s; 7 |] in
      let n = s + Random.State.int st 3 in
      let f =
        Truth.of_minterms s
          (List.init (1 lsl s) (fun _ -> Random.State.int st (1 lsl s)))
      in
      let kept = Array.init s (fun i -> i) in
      Truth.equal f (Truth.project (Truth.expand f n kept) kept))

let () =
  Alcotest.run "truth"
    [ ( "constructors",
        [ Alcotest.test_case "const" `Quick test_const;
          Alcotest.test_case "var balance" `Quick test_var_balance;
          Alcotest.test_case "var bits" `Quick test_var_bits;
          Alcotest.test_case "too many vars" `Quick test_too_many_vars ] );
      ( "laws",
        [ Alcotest.test_case "de morgan" `Quick test_de_morgan;
          Alcotest.test_case "xor definition" `Quick test_xor_definition;
          Alcotest.test_case "involution" `Quick test_involution;
          Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch ] );
      ( "bits",
        [ Alcotest.test_case "set/get" `Quick test_set_get;
          Alcotest.test_case "of_minterms" `Quick test_of_minterms;
          Alcotest.test_case "eval" `Quick test_eval ] );
      ( "structure",
        [ Alcotest.test_case "shannon cofactors" `Quick test_cofactor_shannon;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "permute" `Quick test_permute;
          Alcotest.test_case "expand" `Quick test_expand;
          Alcotest.test_case "hash stability" `Quick test_hash_stability ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qc_truth_vs_eval;
          QCheck_alcotest.to_alcotest qc_permute_preserves_count;
          QCheck_alcotest.to_alcotest qc_expand_semantics;
          QCheck_alcotest.to_alcotest qc_project_inverts_expand ] ) ]
