(* Graph matching: the three match classes of the paper
   (Definitions 1-3), including reconstructions of Figure 1
   (standard vs. extended) and Figure 2 (exact vs. standard /
   duplication), and a semantic property: every reported match
   computes the gate function. *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let gate_of_expr name n expr =
  Gate.make ~name ~area:1.0
    ~pins:(Array.init n (fun i -> Gate.simple_pin (Printf.sprintf "p%d" i)))
    expr

let one_pattern gate =
  match Pattern.of_gate ~max_shapes:1 gate with
  | [ p ] -> p
  | ps -> Alcotest.failf "expected 1 pattern, got %d" (List.length ps)

let count cls g p root =
  let fanouts = Subject.fanout_counts g in
  List.length (Matcher.matches cls g ~fanouts p root)

(* --- basics --------------------------------------------------------- *)

let test_nand2_matches () =
  let b = Subject.Builder.create () in
  let x = Subject.Builder.pi b "x" and y = Subject.Builder.pi b "y" in
  let n = Subject.Builder.nand b x y in
  Subject.Builder.output b "o" n;
  let g = Subject.Builder.finish b in
  let nand2 =
    one_pattern (gate_of_expr "nand2" 2 Bexpr.(not_ (and2 (var 0) (var 1))))
  in
  (* Two pin permutations, both classes. *)
  check tint "standard nand2" 2 (count Matcher.Standard g nand2 n);
  check tint "exact nand2" 2 (count Matcher.Exact g nand2 n);
  check tint "extended nand2" 2 (count Matcher.Extended g nand2 n);
  (* No match rooted at a PI. *)
  check tint "no match at pi" 0 (count Matcher.Standard g nand2 x)

let test_inv_chain_matching () =
  let b = Subject.Builder.create () in
  let x = Subject.Builder.pi b "x" in
  let i1 = Subject.Builder.raw_inv b x in
  let i2 = Subject.Builder.raw_inv b i1 in
  Subject.Builder.output b "o" i2;
  let g = Subject.Builder.finish b in
  let inv = one_pattern (gate_of_expr "inv" 1 Bexpr.(not_ (var 0))) in
  check tint "inv at i2" 1 (count Matcher.Standard g inv i2);
  check tint "inv at i1" 1 (count Matcher.Standard g inv i1);
  (* A 2-deep pattern (buffer as double inverter cannot be built:
     smart constructors cancel). Use nand-of-inv instead. *)
  let nandinv =
    one_pattern (gate_of_expr "oai" 2 Bexpr.(not_ (and2 (not_ (var 0)) (var 1))))
  in
  let b2 = Subject.Builder.create () in
  let x2 = Subject.Builder.pi b2 "x" and y2 = Subject.Builder.pi b2 "y" in
  let ix = Subject.Builder.inv b2 x2 in
  let n = Subject.Builder.nand b2 ix y2 in
  Subject.Builder.output b2 "o" n;
  let g2 = Subject.Builder.finish b2 in
  check tbool "nand-of-inv matches through the inverter" true
    (count Matcher.Standard g2 nandinv n >= 1)

(* --- Figure 1: standard vs extended -------------------------------- *)

let figure1 () =
  (* Subject: n = nand(a, b); top = inv(nand(n, n)).
     Pattern (AND2): inv(nand(m, m')) — an extended match exists by
     mapping both m and m' to n; a standard match does not (the
     one-to-one requirement). *)
  let b = Subject.Builder.create () in
  let a = Subject.Builder.pi b "a" and b_ = Subject.Builder.pi b "b" in
  let n = Subject.Builder.nand b a b_ in
  let nn = Subject.Builder.raw_nand b n n in
  let top = Subject.Builder.inv b nn in
  Subject.Builder.output b "f" top;
  (Subject.Builder.finish b, top)

let test_figure1 () =
  let g, top = figure1 () in
  let and2 = one_pattern (gate_of_expr "and2" 2 Bexpr.(and2 (var 0) (var 1))) in
  check tint "Figure 1: no standard match" 0 (count Matcher.Standard g and2 top);
  check tint "Figure 1: no exact match" 0 (count Matcher.Exact g and2 top);
  check tint "Figure 1: one extended match" 1
    (count Matcher.Extended g and2 top);
  (* The extended match folds both pattern leaves onto n. *)
  let fanouts = Subject.fanout_counts g in
  (match Matcher.matches Matcher.Extended g ~fanouts and2 top with
   | [ m ] ->
     check tint "both pins bound to n" m.Matcher.pins.(0) m.Matcher.pins.(1)
   | _ -> Alcotest.fail "expected exactly one extended match")

(* --- Figure 2: exact vs standard, duplication ----------------------- *)

let figure2 () =
  (* Subject: mid = nand(b, c) has two fanouts; out1 = nand(a, mid),
     out2 = nand(mid, d). Pattern: !(x * !(y * z)). *)
  let bld = Subject.Builder.create () in
  let a = Subject.Builder.pi bld "a" in
  let b = Subject.Builder.pi bld "b" in
  let c = Subject.Builder.pi bld "c" in
  let d = Subject.Builder.pi bld "d" in
  let mid = Subject.Builder.nand bld b c in
  let out1 = Subject.Builder.nand bld a mid in
  let out2 = Subject.Builder.nand bld mid d in
  Subject.Builder.output bld "o1" out1;
  Subject.Builder.output bld "o2" out2;
  (Subject.Builder.finish bld, mid, out1, out2)

let big_gate () =
  gate_of_expr "big" 3 Bexpr.(not_ (and2 (var 0) (not_ (and2 (var 1) (var 2)))))

let test_figure2_matching () =
  let g, mid, out1, out2 = figure2 () in
  let p = one_pattern (big_gate ()) in
  (* Tree covering cannot use the pattern: the internal node has
     fanout 2, violating the exact-match out-degree condition. *)
  check tint "Figure 2: no exact match at out1" 0 (count Matcher.Exact g p out1);
  check tint "Figure 2: no exact match at out2" 0 (count Matcher.Exact g p out2);
  (* DAG covering can: standard matches exist at both outputs. *)
  check tbool "standard at out1" true (count Matcher.Standard g p out1 >= 1);
  check tbool "standard at out2" true (count Matcher.Standard g p out2 >= 1);
  (* Both matches cover mid internally. *)
  let fanouts = Subject.fanout_counts g in
  List.iter
    (fun root ->
      let ms = Matcher.matches Matcher.Standard g ~fanouts p root in
      check tbool "covers mid" true
        (List.exists (fun m -> Array.mem mid m.Matcher.covered) ms))
    [ out1; out2 ]

let test_figure2_mapping_duplicates () =
  let g, _, _, _ = figure2 () in
  (* Library: inv + nand2 + the Figure 2 pattern gate, with the big
     gate fast enough to win. *)
  let inv =
    Gate.make ~name:"inv" ~area:1.0
      ~pins:[| Gate.simple_pin ~delay:0.5 "a" |]
      Bexpr.(not_ (var 0))
  in
  let nand2 =
    Gate.make ~name:"nand2" ~area:2.0
      ~pins:(Array.init 2 (fun i -> Gate.simple_pin ~delay:1.0 (Printf.sprintf "p%d" i)))
      Bexpr.(not_ (and2 (var 0) (var 1)))
  in
  let big =
    Gate.make ~name:"big" ~area:3.0
      ~pins:(Array.init 3 (fun i -> Gate.simple_pin ~delay:1.2 (Printf.sprintf "p%d" i)))
      Bexpr.(not_ (and2 (var 0) (not_ (and2 (var 1) (var 2)))))
  in
  let lib = Libraries.make "fig2" [ inv; nand2; big ] in
  let db = Matchdb.prepare lib in
  let tree = Mapper.map Mapper.Tree db g in
  let dag = Mapper.map Mapper.Dag db g in
  (* Tree mapping: two levels of nand2 on the critical path. *)
  check (Alcotest.float 1e-6) "tree delay" 2.0
    (Netlist.delay tree.Mapper.netlist);
  (* DAG mapping: each output one big gate; mid duplicated. *)
  check (Alcotest.float 1e-6) "dag delay" 1.2 (Netlist.delay dag.Mapper.netlist);
  check tint "dag uses two gates" 2 (Netlist.num_gates dag.Mapper.netlist);
  check tint "mid covered twice" 1 (Netlist.duplication dag.Mapper.netlist);
  check tint "tree never duplicates" 0 (Netlist.duplication tree.Mapper.netlist);
  (* The mapped circuit no longer has an internal multiple-fanout
     point; the PIs b and c now fan out instead (paper §3.5). *)
  check tint "dag max fanout from PIs" 2 (Netlist.max_fanout dag.Mapper.netlist)

(* --- exact match out-degree details --------------------------------- *)

let test_exact_requires_internal_fanout_one () =
  (* Same structure as Figure 2 but with single fanout: exact match
     appears. *)
  let bld = Subject.Builder.create () in
  let a = Subject.Builder.pi bld "a" in
  let b = Subject.Builder.pi bld "b" in
  let c = Subject.Builder.pi bld "c" in
  let mid = Subject.Builder.nand bld b c in
  let out1 = Subject.Builder.nand bld a mid in
  Subject.Builder.output bld "o1" out1;
  let g = Subject.Builder.finish bld in
  let p = one_pattern (big_gate ()) in
  check tbool "exact match when fanout is 1" true
    (count Matcher.Exact g p out1 >= 1)

(* --- semantic property ---------------------------------------------- *)

(* Every reported match must compute the gate function: for each PI
   assignment, the subject value at the match root equals the gate
   function applied to the subject values at the bound pins. *)
let test_match_semantics () =
  let lib = Libraries.lib2_like () in
  let net =
    Dagmap_circuits.Generators.random_dag ~seed:99 ~inputs:6 ~outputs:3
      ~nodes:25 ()
  in
  let g = Subject.of_network net in
  let fanouts = Subject.fanout_counts g in
  let levels = Subject.levels g in
  let db = Matchdb.prepare lib in
  let n_pi = List.length (Subject.pi_ids g) in
  let checked = ref 0 in
  for node = 0 to Subject.num_nodes g - 1 do
    List.iter
      (fun cls ->
        List.iter
          (fun m ->
            incr checked;
            let gate = Matcher.gate m in
            for assignment = 0 to (1 lsl n_pi) - 1 do
              let asg = Array.init n_pi (fun i -> assignment land (1 lsl i) <> 0) in
              (* Node values via direct evaluation. *)
              let value = Array.make (Subject.num_nodes g) false in
              List.iteri
                (fun i id -> value.(id) <- asg.(i))
                (Subject.pi_ids g);
              for u = 0 to Subject.num_nodes g - 1 do
                match Subject.kind g u with
                | Subject.Spi -> ()
                | Subject.Sinv x -> value.(u) <- not value.(x)
                | Subject.Snand (x, y) -> value.(u) <- not (value.(x) && value.(y))
              done;
              let pin_values =
                Array.map
                  (fun pin_node -> if pin_node >= 0 then value.(pin_node) else false)
                  m.Matcher.pins
              in
              if Truth.eval gate.Gate.func pin_values <> value.(node) then
                Alcotest.failf "match of %s at node %d is not functional"
                  gate.Gate.gate_name node
            done)
          (Matchdb.node_matches db cls g ~fanouts ~levels node))
      [ Matcher.Standard; Matcher.Extended; Matcher.Exact ]
  done;
  check tbool "checked many matches" true (!checked > 50)

let test_class_inclusion () =
  (* exact ⊆ standard ⊆ extended (as sets of pin bindings). *)
  let net =
    Dagmap_circuits.Generators.random_dag ~seed:17 ~inputs:6 ~outputs:3
      ~nodes:30 ()
  in
  let g = Subject.of_network net in
  let fanouts = Subject.fanout_counts g in
  let levels = Subject.levels g in
  let db = Matchdb.prepare (Libraries.lib2_like ()) in
  let key m =
    ((Matcher.gate m).Gate.gate_name, Array.to_list m.Matcher.pins)
  in
  for node = 0 to Subject.num_nodes g - 1 do
    let of_class cls =
      List.map key (Matchdb.node_matches db cls g ~fanouts ~levels node)
    in
    let exact = of_class Matcher.Exact in
    let standard = of_class Matcher.Standard in
    let extended = of_class Matcher.Extended in
    List.iter
      (fun k ->
        check tbool "exact ⊆ standard" true (List.mem k standard))
      exact;
    List.iter
      (fun k ->
        check tbool "standard ⊆ extended" true (List.mem k extended))
      standard
  done

let () =
  Alcotest.run "matcher"
    [ ( "basics",
        [ Alcotest.test_case "nand2" `Quick test_nand2_matches;
          Alcotest.test_case "inv chains" `Quick test_inv_chain_matching ] );
      ( "figure1",
        [ Alcotest.test_case "standard vs extended" `Quick test_figure1 ] );
      ( "figure2",
        [ Alcotest.test_case "matching" `Quick test_figure2_matching;
          Alcotest.test_case "mapping duplicates" `Quick
            test_figure2_mapping_duplicates;
          Alcotest.test_case "exact with fanout 1" `Quick
            test_exact_requires_internal_fanout_one ] );
      ( "semantics",
        [ Alcotest.test_case "matches are functional" `Slow test_match_semantics;
          Alcotest.test_case "class inclusion" `Quick test_class_inclusion ] ) ]
