test/test_npn.ml: Alcotest Array Dagmap_logic List Npn Random Truth
