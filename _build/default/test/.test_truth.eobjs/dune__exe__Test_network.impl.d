test/test_network.ml: Alcotest Array Bexpr Dagmap_logic Hashtbl List Network Printf String Truth
