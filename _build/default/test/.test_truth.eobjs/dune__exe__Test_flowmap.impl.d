test/test_flowmap.ml: Alcotest Array Dagmap_circuits Dagmap_flowmap Dagmap_logic Dagmap_sim Dagmap_subject Flowmap Generators Int Int64 Iscas_like List Maxflow Printf Set Subject
