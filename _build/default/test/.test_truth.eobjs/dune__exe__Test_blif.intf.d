test/test_blif.mli:
