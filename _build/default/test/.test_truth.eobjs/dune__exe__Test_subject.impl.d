test/test_subject.ml: Alcotest Array Bexpr Dagmap_circuits Dagmap_logic Dagmap_subject Gen Generators Iscas_like List Network Printf QCheck QCheck_alcotest Subject
