test/test_pattern.ml: Alcotest Array Bexpr Dagmap_genlib Dagmap_logic Gate Libraries List Pattern Printf Truth
