test/test_circuits.ml: Alcotest Array Dagmap_circuits Dagmap_logic Dagmap_sim Dagmap_subject Generators Int64 Iscas_like List Network Printf Random Simulate
