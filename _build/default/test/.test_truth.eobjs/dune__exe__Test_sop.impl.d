test/test_sop.ml: Alcotest Bexpr Dagmap_logic Gen List QCheck QCheck_alcotest Random Sop Truth
