test/test_flowmap.mli:
