test/test_netopt.mli:
