test/test_netlist.ml: Alcotest Array Bexpr Dagmap_circuits Dagmap_core Dagmap_genlib Dagmap_logic Dagmap_subject Float Format Gate Generators Libraries List Mapper Matchdb Netlist String Subject
