test/test_bexpr.ml: Alcotest Bexpr Dagmap_logic List Printf QCheck QCheck_alcotest Truth
