test/test_matcher.ml: Alcotest Array Bexpr Dagmap_circuits Dagmap_core Dagmap_genlib Dagmap_logic Dagmap_subject Gate Libraries List Mapper Matchdb Matcher Netlist Pattern Printf Subject Truth
