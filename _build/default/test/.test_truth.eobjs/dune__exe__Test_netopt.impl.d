test/test_netopt.ml: Alcotest Bexpr Dagmap_circuits Dagmap_logic Dagmap_opt Dagmap_sim Equiv Format Gen Generators Iscas_like List Netopt Network QCheck QCheck_alcotest Simulate
