test/test_genlib.mli:
