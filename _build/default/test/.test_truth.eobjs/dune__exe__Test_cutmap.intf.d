test/test_cutmap.mli:
