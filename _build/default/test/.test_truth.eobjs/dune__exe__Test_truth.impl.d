test/test_truth.ml: Alcotest Array Dagmap_logic Gen List Printf QCheck QCheck_alcotest Random Truth
