test/test_sta.ml: Alcotest Array Dagmap_circuits Dagmap_core Dagmap_genlib Dagmap_subject Dagmap_timing Float Format Generators Libraries List Mapper Matchdb Netlist Printf Sta String Subject
