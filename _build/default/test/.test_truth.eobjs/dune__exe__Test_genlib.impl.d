test/test_genlib.ml: Alcotest Array Bexpr Dagmap_genlib Dagmap_logic Gate Genlib_parser Libraries List Printf String Truth
