test/test_sop.mli:
