test/test_subject.mli:
