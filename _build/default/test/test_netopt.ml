(* Network cleanup passes: equivalence and effectiveness. *)

open Dagmap_logic
open Dagmap_sim
open Dagmap_circuits
open Dagmap_opt

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let v = Bexpr.var

let assert_equivalent name net opt =
  let n = Simulate.num_inputs_network net in
  let verdict =
    Equiv.compare_sims ~rounds:6 ~n_inputs:n
      (fun words -> Simulate.network net words)
      (fun words -> Simulate.network opt words)
  in
  if not (Equiv.is_equivalent verdict) then
    Alcotest.failf "%s: %s" name (Format.asprintf "%a" Equiv.pp_verdict verdict)

let test_constant_folding () =
  let net = Network.create () in
  let a = Network.add_pi net "a" in
  let zero = Network.add_logic net (Bexpr.const false) [||] in
  (* f = a & 0 = 0; g = a | 0 = a *)
  let f = Network.add_logic net Bexpr.(and2 (v 0) (v 1)) [| a; zero |] in
  let g = Network.add_logic net Bexpr.(or2 (v 0) (v 1)) [| a; zero |] in
  Network.add_po net "f" f;
  Network.add_po net "g" g;
  let opt, stats = Netopt.optimize net in
  Network.validate opt;
  assert_equivalent "const folding" net opt;
  check tbool "constants folded" true (stats.Netopt.constants_folded >= 1);
  (* g collapses to the PI: no logic needed beyond the constant PO. *)
  check tbool "fewer nodes" true (stats.Netopt.nodes_after < stats.Netopt.nodes_before)

let test_strash_merging () =
  let net = Network.create () in
  let a = Network.add_pi net "a" and b = Network.add_pi net "b" in
  (* Same function twice, with permuted expression shapes. *)
  let f1 = Network.add_logic net Bexpr.(and2 (v 0) (v 1)) [| a; b |] in
  let f2 = Network.add_logic net Bexpr.(and2 (v 1) (v 0)) [| b; a |] in
  let g = Network.add_logic net Bexpr.(xor2 (v 0) (v 1)) [| f1; f2 |] in
  Network.add_po net "g" g;
  Network.add_po net "f" f1;
  let opt, stats = Netopt.optimize net in
  assert_equivalent "strash" net opt;
  check tbool "duplicates merged" true (stats.Netopt.nodes_merged >= 1);
  (* g = f1 xor f1 = 0 after the merge. *)
  check tbool "xor of equals folds" true (stats.Netopt.constants_folded >= 1)

let test_buffer_forwarding () =
  let net = Network.create () in
  let a = Network.add_pi net "a" in
  let buf = Network.add_logic net (v 0) [| a |] in
  let buf2 = Network.add_logic net (v 0) [| buf |] in
  let inv = Network.add_logic net Bexpr.(not_ (v 0)) [| buf2 |] in
  let f = Network.add_logic net Bexpr.(not_ (v 0)) [| inv |] in
  Network.add_po net "f" f;
  let opt, stats = Netopt.optimize net in
  assert_equivalent "forwarding" net opt;
  check tbool "buffers forwarded" true (stats.Netopt.buffers_forwarded >= 2);
  (* f = a: the whole chain disappears. *)
  check tint "no logic left" 0 stats.Netopt.nodes_after

let test_sweep () =
  let net = Network.create () in
  let a = Network.add_pi net "a" and b = Network.add_pi net "b" in
  let used = Network.add_logic net Bexpr.(and2 (v 0) (v 1)) [| a; b |] in
  let _dead1 = Network.add_logic net Bexpr.(or2 (v 0) (v 1)) [| a; b |] in
  let _dead2 = Network.add_logic net Bexpr.(xor2 (v 0) (v 1)) [| a; b |] in
  Network.add_po net "f" used;
  let opt, stats = Netopt.sweep_only net in
  assert_equivalent "sweep" net opt;
  check tint "two nodes swept" 2 stats.Netopt.swept;
  check tint "one node left" 1 stats.Netopt.nodes_after

let test_duplicate_fanin_dedup () =
  let net = Network.create () in
  let a = Network.add_pi net "a" in
  (* xor(a, a) = 0 once fanins are deduplicated. *)
  let f = Network.add_logic net Bexpr.(xor2 (v 0) (v 1)) [| a; a |] in
  Network.add_po net "f" f;
  let opt, stats = Netopt.optimize net in
  assert_equivalent "dup fanins" net opt;
  check tbool "folded to constant" true (stats.Netopt.constants_folded >= 1)

let test_sequential_preserved () =
  let net = Generators.lfsr 6 in
  let opt, _ = Netopt.optimize net in
  Network.validate opt;
  check tint "latches preserved" 6 (List.length (Network.latches opt));
  assert_equivalent "lfsr" net opt

let test_idempotent () =
  let net = Iscas_like.c432_like () in
  let once, s1 = Netopt.optimize net in
  let twice, s2 = Netopt.optimize once in
  assert_equivalent "idempotence" net twice;
  check tbool "second pass finds little" true
    (s2.Netopt.nodes_after >= s1.Netopt.nodes_after - 2)

let qc_optimize_equivalent =
  QCheck.Test.make ~count:25 ~name:"optimize preserves random circuits"
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      let net = Generators.random_dag ~seed ~inputs:8 ~outputs:4 ~nodes:70 () in
      let opt, stats = Netopt.optimize net in
      Network.validate opt;
      let verdict =
        Equiv.compare_sims ~rounds:4
          ~n_inputs:(Simulate.num_inputs_network net)
          (fun words -> Simulate.network net words)
          (fun words -> Simulate.network opt words)
      in
      Equiv.is_equivalent verdict
      && stats.Netopt.nodes_after <= stats.Netopt.nodes_before)

let () =
  Alcotest.run "netopt"
    [ ( "passes",
        [ Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "strash merging" `Quick test_strash_merging;
          Alcotest.test_case "buffer forwarding" `Quick test_buffer_forwarding;
          Alcotest.test_case "sweep" `Quick test_sweep;
          Alcotest.test_case "duplicate fanins" `Quick test_duplicate_fanin_dedup;
          Alcotest.test_case "sequential" `Quick test_sequential_preserved;
          Alcotest.test_case "idempotent" `Quick test_idempotent ] );
      ( "properties", [ QCheck_alcotest.to_alcotest qc_optimize_equivalent ] ) ]
