(* Pattern-graph generation: every decomposition must compute the
   gate's function; structural properties of the NAND2-INV form. *)

open Dagmap_logic
open Dagmap_genlib

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let test_all_patterns_correct () =
  List.iter
    (fun name ->
      match Libraries.by_name name with
      | None -> Alcotest.failf "missing %s" name
      | Some lib ->
        check tbool (name ^ " nonempty") true (lib.Libraries.patterns <> []);
        List.iter
          (fun p ->
            check tbool
              (Printf.sprintf "%s/%s decomposition correct" name
                 p.Pattern.gate.Gate.gate_name)
              true
              (Truth.equal (Pattern.func p) p.Pattern.gate.Gate.func))
          lib.Libraries.patterns)
    Libraries.names

let test_structure_invariants () =
  let lib = Libraries.lib2_like () in
  List.iter
    (fun p ->
      (* Topological node ordering: fanins precede users. *)
      Array.iteri
        (fun i pn ->
          match pn with
          | Pattern.Pleaf _ -> ()
          | Pattern.Pinv j -> check tbool "inv fanin order" true (j < i)
          | Pattern.Pnand (j, k) ->
            check tbool "nand fanin order" true (j < i && k < i))
        p.Pattern.nodes;
      (* No inverter pairs. *)
      Array.iter
        (function
          | Pattern.Pinv j ->
            (match p.Pattern.nodes.(j) with
             | Pattern.Pinv _ -> Alcotest.fail "inverter pair in pattern"
             | Pattern.Pleaf _ | Pattern.Pnand _ -> ())
          | Pattern.Pleaf _ | Pattern.Pnand _ -> ())
        p.Pattern.nodes;
      (* pin_of_leaf is consistent. *)
      Array.iteri
        (fun i pn ->
          match pn with
          | Pattern.Pleaf pin ->
            check tint "pin_of_leaf" pin p.Pattern.pin_of_leaf.(i)
          | Pattern.Pinv _ | Pattern.Pnand _ ->
            check tint "non-leaf pin" (-1) p.Pattern.pin_of_leaf.(i))
        p.Pattern.nodes)
    lib.Libraries.patterns

let gate_of_expr name n expr =
  Gate.make ~name ~area:1.0
    ~pins:(Array.init n (fun i -> Gate.simple_pin (Printf.sprintf "p%d" i)))
    expr

let test_simple_gates () =
  (* INV decomposes to a single Pinv over a leaf. *)
  let inv = gate_of_expr "inv" 1 (Bexpr.not_ (Bexpr.var 0)) in
  (match Pattern.of_gate inv with
   | [ p ] -> check tint "inv pattern size" 2 (Pattern.size p)
   | ps -> Alcotest.failf "inv: expected 1 pattern, got %d" (List.length ps));
  (* NAND2 decomposes to a single Pnand. *)
  let nand2 =
    gate_of_expr "nand2" 2 (Bexpr.not_ (Bexpr.and2 (Bexpr.var 0) (Bexpr.var 1)))
  in
  (match Pattern.of_gate nand2 with
   | [ p ] ->
     check tint "nand2 pattern size" 3 (Pattern.size p);
     check tint "nand2 depth" 1 p.Pattern.depth
   | ps -> Alcotest.failf "nand2: expected 1 pattern, got %d" (List.length ps))

let test_multi_shape_generation () =
  (* A 4-input AND has several association shapes. *)
  let and4 = gate_of_expr "and4" 4 (Bexpr.and_list (List.init 4 Bexpr.var)) in
  let ps = Pattern.of_gate and4 in
  check tbool "and4 has multiple shapes" true (List.length ps >= 3);
  (* Shapes are distinct and all correct. *)
  List.iter
    (fun p ->
      check tbool "and4 shape correct" true
        (Truth.equal (Pattern.func p) and4.Gate.func))
    ps;
  (* Depths differ between balanced and skewed shapes. *)
  let depths = List.sort_uniq compare (List.map (fun p -> p.Pattern.depth) ps) in
  check tbool "balanced vs skewed depths" true (List.length depths >= 2)

let test_max_shapes_cap () =
  let and8 = gate_of_expr "and8" 8 (Bexpr.and_list (List.init 8 Bexpr.var)) in
  let ps = Pattern.of_gate ~max_shapes:3 and8 in
  check tbool "cap respected" true (List.length ps <= 3)

let test_xor_pattern_is_shared_dag () =
  (* A gate written with the Xor constructor decomposes into the
     4-NAND form with a shared internal node — a true DAG pattern. *)
  let xor = gate_of_expr "xor" 2 (Bexpr.xor2 (Bexpr.var 0) (Bexpr.var 1)) in
  match Pattern.of_gate xor with
  | [ p ] ->
    check tbool "xor correct" true (Truth.equal (Pattern.func p) xor.Gate.func);
    check tbool "xor pattern shares a node" true (not (Pattern.is_tree p));
    check tint "xor pattern has 6 nodes" 6 (Pattern.size p)
  | ps -> Alcotest.failf "xor: expected 1 pattern, got %d" (List.length ps)

let test_sop_xor_is_tree () =
  (* The same function in SOP form yields a leaf-DAG (tree with
     repeated pins as distinct leaves is impossible here: leaves are
     hash-consed per pin, so the SOP xor shares leaves only). *)
  let sop =
    gate_of_expr "xor_sop" 2
      Bexpr.(
        or2
          (and2 (var 0) (not_ (var 1)))
          (and2 (not_ (var 0)) (var 1)))
  in
  let ps = Pattern.of_gate sop in
  check tbool "sop xor has patterns" true (ps <> []);
  List.iter
    (fun p ->
      check tbool "sop xor correct" true
        (Truth.equal (Pattern.func p) sop.Gate.func))
    ps

let test_constant_gate_no_patterns () =
  let tie = Gate.make ~name:"tie0" ~area:0.0 ~pins:[||] (Bexpr.const false) in
  check tint "constant gate yields no patterns" 0
    (List.length (Pattern.of_gate tie))

let test_buffer_pattern_is_leaf_rooted () =
  let buf = gate_of_expr "buf" 1 (Bexpr.var 0) in
  match Pattern.of_gate buf with
  | [ p ] -> begin
    match p.Pattern.nodes.(p.Pattern.root) with
    | Pattern.Pleaf _ -> ()
    | Pattern.Pinv _ | Pattern.Pnand _ -> Alcotest.fail "buffer root not a leaf"
  end
  | ps -> Alcotest.failf "buf: expected 1 pattern, got %d" (List.length ps)

let test_fanout_counts () =
  let xor = gate_of_expr "xor" 2 (Bexpr.xor2 (Bexpr.var 0) (Bexpr.var 1)) in
  match Pattern.of_gate xor with
  | [ p ] ->
    (* The shared nand(a,b) node has two users. *)
    let shared =
      Array.to_list p.Pattern.fanout
      |> List.filteri (fun i _ ->
             match p.Pattern.nodes.(i) with
             | Pattern.Pnand _ -> true
             | Pattern.Pleaf _ | Pattern.Pinv _ -> false)
      |> List.filter (fun fo -> fo = 2)
    in
    check tbool "one shared nand" true (List.length shared >= 1);
    check tint "root fanout 0" 0 p.Pattern.fanout.(p.Pattern.root)
  | _ -> Alcotest.fail "xor should give one pattern"

let test_depth_bound () =
  (* Pattern depth never exceeds node count. *)
  let lib = Libraries.lib44_3_like () in
  List.iter
    (fun p ->
      check tbool "depth sane" true
        (p.Pattern.depth >= 1 && p.Pattern.depth < Pattern.size p))
    lib.Libraries.patterns

let () =
  Alcotest.run "pattern"
    [ ( "correctness",
        [ Alcotest.test_case "all library patterns" `Quick test_all_patterns_correct;
          Alcotest.test_case "structure invariants" `Quick test_structure_invariants ] );
      ( "generation",
        [ Alcotest.test_case "simple gates" `Quick test_simple_gates;
          Alcotest.test_case "multi shapes" `Quick test_multi_shape_generation;
          Alcotest.test_case "max shapes cap" `Quick test_max_shapes_cap;
          Alcotest.test_case "xor shared dag" `Quick test_xor_pattern_is_shared_dag;
          Alcotest.test_case "sop xor" `Quick test_sop_xor_is_tree;
          Alcotest.test_case "constant gate" `Quick test_constant_gate_no_patterns;
          Alcotest.test_case "buffer pattern" `Quick test_buffer_pattern_is_leaf_rooted;
          Alcotest.test_case "fanout counts" `Quick test_fanout_counts;
          Alcotest.test_case "depth bound" `Quick test_depth_bound ] ) ]
