(* Benchmark harness: regenerates every table and figure of
   Kukimoto/Brayton/Sawkar, "Delay-Optimal Technology Mapping by DAG
   Covering" (DAC 1998), on the synthetic stand-ins documented in
   DESIGN.md, plus the ablations DESIGN.md calls out. One Bechamel
   Test.make per table at the end measures mapper runtime.

   Run with:  dune exec bench/main.exe            (full harness)
              dune exec bench/main.exe -- quick   (skip Bechamel)   *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_sim
open Dagmap_circuits
open Dagmap_obs

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Tables 1-3: tree vs DAG mapping under the three libraries          *)
(* ------------------------------------------------------------------ *)

type row = {
  circuit : string;
  tree_delay : float;
  dag_delay : float;
  tree_area : float;
  dag_area : float;
  tree_cpu : float;
  dag_cpu : float;
  dag_dup : int;
  verified : bool;
}

let map_row db g circuit =
  let tree, tree_cpu = Clock.time (fun () -> Mapper.map Mapper.Tree db g) in
  let dag, dag_cpu = Clock.time (fun () -> Mapper.map Mapper.Dag db g) in
  let verified =
    let n_inputs = List.length (Subject.pi_ids g) in
    let ok r =
      Equiv.is_equivalent
        (Equiv.compare_sims ~rounds:4 ~n_inputs
           (fun words -> Simulate.subject g words)
           (fun words -> Simulate.netlist r.Mapper.netlist words))
    in
    ok tree && ok dag
  in
  { circuit;
    tree_delay = Netlist.delay tree.Mapper.netlist;
    dag_delay = Netlist.delay dag.Mapper.netlist;
    tree_area = Netlist.area tree.Mapper.netlist;
    dag_area = Netlist.area dag.Mapper.netlist;
    tree_cpu;
    dag_cpu;
    dag_dup = Netlist.duplication dag.Mapper.netlist;
    verified }

let print_table rows =
  Printf.printf "%-8s | %8s %8s %6s | %9s %9s | %7s %7s | %5s %s\n" "circuit"
    "tree-d" "DAG-d" "ratio" "tree-area" "DAG-area" "tree-s" "DAG-s" "dup"
    "eq";
  Printf.printf "%s\n" (String.make 96 '-');
  List.iter
    (fun r ->
      Printf.printf
        "%-8s | %8.2f %8.2f %5.2fx | %9.0f %9.0f | %7.2f %7.2f | %5d %s\n"
        r.circuit r.tree_delay r.dag_delay
        (r.tree_delay /. r.dag_delay)
        r.tree_area r.dag_area r.tree_cpu r.dag_cpu r.dag_dup
        (if r.verified then "ok" else "FAIL"))
    rows;
  let geo =
    let product =
      List.fold_left (fun acc r -> acc *. (r.tree_delay /. r.dag_delay)) 1.0 rows
    in
    product ** (1.0 /. float_of_int (List.length rows))
  in
  Printf.printf "geometric-mean delay ratio (tree/DAG): %.2fx\n" geo

let subjects = lazy (List.map (fun (n, net) -> (n, Subject.of_network net))
                       (Iscas_like.table_circuits ()))

let run_table number lib_name paper_note =
  let lib = Option.get (Libraries.by_name lib_name) in
  let db = Matchdb.prepare lib in
  hr (Printf.sprintf "Table %d: tree vs DAG mapping, %s-like library (%d gates)"
        number lib_name (List.length lib.Libraries.gates));
  Printf.printf "%s\n\n" paper_note;
  let rows =
    List.map (fun (name, g) -> map_row db g name) (Lazy.force subjects)
  in
  print_table rows

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

let gate_of_expr name ~delay n expr =
  Gate.make ~name ~area:(float_of_int n)
    ~pins:(Array.init n (fun i -> Gate.simple_pin ~delay (Printf.sprintf "p%d" i)))
    expr

let run_figure1 () =
  hr "Figure 1: standard match vs extended match";
  Printf.printf
    "Paper: the AND pattern matches the subject only as an extended match,\n\
     by mapping pattern nodes m and m' onto the same subject node n.\n\n";
  let bld = Subject.Builder.create () in
  let a = Subject.Builder.pi bld "a" in
  let b = Subject.Builder.pi bld "b" in
  let n = Subject.Builder.nand bld a b in
  let nn = Subject.Builder.raw_nand bld n n in
  let top = Subject.Builder.inv bld nn in
  Subject.Builder.output bld "f" top;
  let g = Subject.Builder.finish bld in
  let and2 = gate_of_expr "and2" ~delay:1.3 2 Bexpr.(and2 (var 0) (var 1)) in
  let p =
    match Pattern.of_gate ~max_shapes:1 and2 with [ p ] -> p | _ -> assert false
  in
  let fanouts = Subject.fanout_counts g in
  List.iter
    (fun cls ->
      Printf.printf "  %-8s matches of AND2 at the root: %d\n"
        (Matcher.class_name cls)
        (List.length (Matcher.matches cls g ~fanouts p top)))
    [ Matcher.Standard; Matcher.Exact; Matcher.Extended ];
  Printf.printf "  reproduced: standard = 0, extended = 1  %s\n"
    (if
       Matcher.matches Matcher.Standard g ~fanouts p top = []
       && List.length (Matcher.matches Matcher.Extended g ~fanouts p top) = 1
     then "[ok]"
     else "[MISMATCH]")

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

let run_figure2 () =
  hr "Figure 2: duplication of subject-graph nodes in DAG mapping";
  Printf.printf
    "Paper: tree mapping cannot use the pattern (no exact match); DAG\n\
     mapping uses it on both outputs, duplicating the shared middle cone\n\
     and moving the multiple-fanout point to the primary inputs.\n\n";
  let bld = Subject.Builder.create () in
  let a = Subject.Builder.pi bld "a" in
  let b = Subject.Builder.pi bld "b" in
  let c = Subject.Builder.pi bld "c" in
  let d = Subject.Builder.pi bld "d" in
  let mid = Subject.Builder.nand bld b c in
  let out1 = Subject.Builder.nand bld a mid in
  let out2 = Subject.Builder.nand bld mid d in
  Subject.Builder.output bld "o1" out1;
  Subject.Builder.output bld "o2" out2;
  let g = Subject.Builder.finish bld in
  let big =
    gate_of_expr "big" ~delay:1.2 3
      Bexpr.(not_ (and2 (var 0) (not_ (and2 (var 1) (var 2)))))
  in
  let pbig =
    match Pattern.of_gate ~max_shapes:1 big with [ p ] -> p | _ -> assert false
  in
  let fanouts = Subject.fanout_counts g in
  Printf.printf "  exact matches at out1/out2:    %d / %d\n"
    (List.length (Matcher.matches Matcher.Exact g ~fanouts pbig out1))
    (List.length (Matcher.matches Matcher.Exact g ~fanouts pbig out2));
  Printf.printf "  standard matches at out1/out2: %d / %d\n"
    (List.length (Matcher.matches Matcher.Standard g ~fanouts pbig out1))
    (List.length (Matcher.matches Matcher.Standard g ~fanouts pbig out2));
  let inv = gate_of_expr "inv" ~delay:0.5 1 Bexpr.(not_ (var 0)) in
  let nand2 =
    gate_of_expr "nand2" ~delay:1.0 2 Bexpr.(not_ (and2 (var 0) (var 1)))
  in
  let lib = Libraries.make "fig2" [ inv; nand2; big ] in
  let db = Matchdb.prepare lib in
  let tree = Mapper.map Mapper.Tree db g in
  let dag = Mapper.map Mapper.Dag db g in
  Printf.printf "  tree mapping: delay=%.2f gates=%d duplication=%d\n"
    (Netlist.delay tree.Mapper.netlist)
    (Netlist.num_gates tree.Mapper.netlist)
    (Netlist.duplication tree.Mapper.netlist);
  Printf.printf "  DAG mapping:  delay=%.2f gates=%d duplication=%d\n"
    (Netlist.delay dag.Mapper.netlist)
    (Netlist.num_gates dag.Mapper.netlist)
    (Netlist.duplication dag.Mapper.netlist);
  Printf.printf "  reproduced: DAG uses the big gate twice %s\n"
    (if
       Netlist.num_gates dag.Mapper.netlist = 2
       && Netlist.duplication dag.Mapper.netlist = 1
       && Netlist.delay dag.Mapper.netlist < Netlist.delay tree.Mapper.netlist
     then "[ok]"
     else "[MISMATCH]")

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 6)                                     *)
(* ------------------------------------------------------------------ *)

let run_ablation_match_classes () =
  hr "Ablation: standard vs extended matches (paper footnote 3)";
  Printf.printf
    "Paper: \"we have not been able to see any major difference in mapping\n\
     quality between the use of standard matches and extended matches.\"\n\n";
  let lib = Option.get (Libraries.by_name "lib2") in
  let db = Matchdb.prepare lib in
  Printf.printf "%-8s | %10s | %10s | %s\n" "circuit" "standard" "extended"
    "difference";
  List.iter
    (fun (name, g) ->
      let ds = Netlist.delay (Mapper.map Mapper.Dag db g).Mapper.netlist in
      let de =
        Netlist.delay (Mapper.map Mapper.Dag_extended db g).Mapper.netlist
      in
      Printf.printf "%-8s | %10.2f | %10.2f | %+.2f\n" name ds de (de -. ds))
    (Lazy.force subjects)

let run_ablation_shapes () =
  hr "Ablation: pattern-shape variants per gate (expanded pattern graphs)";
  Printf.printf
    "The matcher only finds matches whose tree shape exists among the\n\
     generated patterns (Rudell footnote 2); capping decomposition shapes\n\
     trades delay for matching time. Complex gates (44-3) feel it most.\n\n";
  let gates = (Option.get (Libraries.by_name "44-3")).Libraries.gates in
  let db1 = Matchdb.prepare (Libraries.make ~max_shapes:1 "44-3v1" gates) in
  let db6 = Matchdb.prepare (Libraries.make ~max_shapes:6 "44-3v6" gates) in
  Printf.printf "%-8s | %14s | %14s\n" "circuit" "1 shape/gate"
    "6 shapes/gate";
  List.iter
    (fun (name, g) ->
      let delay db =
        Netlist.delay (Mapper.map Mapper.Dag db g).Mapper.netlist
      in
      Printf.printf "%-8s | %14.2f | %14.2f\n" name (delay db1) (delay db6))
    [ List.nth (Lazy.force subjects) 0 (* C2670 *);
      List.nth (Lazy.force subjects) 3 (* C6288 *) ]

let run_ablation_area_recovery () =
  hr "Ablation: slack-driven area recovery after DAG mapping (paper §6)";
  Printf.printf
    "Paper: \"by constructing slower but smaller mappings for non-critical\n\
     subnetworks we can have better control over area increase.\"\n\n";
  let lib = Option.get (Libraries.by_name "lib2") in
  let db = Matchdb.prepare lib in
  Printf.printf "%-8s | %9s -> %9s | %6s | %s\n" "circuit" "DAG area"
    "recovered" "saved" "delay preserved";
  List.iter
    (fun (name, g) ->
      let r = Mapper.map Mapper.Dag db g in
      let recovered = Area_recovery.recover db Mapper.Dag g r in
      let a0 = Netlist.area r.Mapper.netlist in
      let a1 = Netlist.area recovered in
      Printf.printf "%-8s | %9.0f -> %9.0f | %5.1f%% | %b\n" name a0 a1
        (100.0 *. (a0 -. a1) /. a0)
        (Float.abs (Netlist.delay recovered -. Netlist.delay r.Mapper.netlist)
        < 1e-6))
    (Lazy.force subjects)

let run_engine_comparison () =
  hr "Beyond the paper: structural DAG covering vs cut-based Boolean matching";
  Printf.printf
    "The paper's mapper matches pattern graphs structurally; modern mappers\n\
     (ABC) enumerate priority cuts and match functions. Boolean matching is\n\
     insensitive to decomposition shape but bounded in cut width (<= 6 here,\n\
     so 16-input gates are out of reach) and prunes its cut space.\n\n";
  Printf.printf "%-8s %-6s | %9s | %9s | %9s %9s\n" "circuit" "lib"
    "struct-d" "cut-d" "struct-s" "cut-s";
  List.iter
    (fun lib_name ->
      let lib = Option.get (Libraries.by_name lib_name) in
      let pdb = Matchdb.prepare lib in
      let bdb = Matchdb.boolean pdb in
      List.iter
        (fun (name, g) ->
          let t0 = Clock.now () in
          let rp = Mapper.map Mapper.Dag pdb g in
          let t1 = Clock.now () in
          let rc = Dagmap_cutmap.Cut_mapper.map bdb g in
          let t2 = Clock.now () in
          Printf.printf "%-8s %-6s | %9.2f | %9.2f | %8.2fs %8.2fs\n" name
            lib_name
            (Netlist.delay rp.Mapper.netlist)
            (Netlist.delay rc.Dagmap_cutmap.Cut_mapper.netlist)
            (t1 -. t0) (t2 -. t1))
        [ List.nth (Lazy.force subjects) 0; List.nth (Lazy.force subjects) 3 ])
    [ "lib2"; "44-1"; "44-3" ]

let run_ablation_cut_budget () =
  hr "Ablation: cut budget (priority cuts per node) vs mapping quality";
  Printf.printf
    "The cut-based engine converges to the structural engine's quality as\n\
     its per-node cut budget grows (C6288-like, 44-1 library).\n\n";
  let g = snd (List.nth (Lazy.force subjects) 3) in
  let lib = Option.get (Libraries.by_name "44-1") in
  let pdb = Matchdb.prepare lib in
  let bdb = Matchdb.boolean pdb in
  let reference = Netlist.delay (Mapper.map Mapper.Dag pdb g).Mapper.netlist in
  Printf.printf "  structural reference: %.2f\n" reference;
  List.iter
    (fun priority ->
      let t0 = Clock.now () in
      let r = Dagmap_cutmap.Cut_mapper.map ~priority bdb g in
      Printf.printf "  priority=%3d: delay=%7.2f  (%.2fs)\n" priority
        (Netlist.delay r.Dagmap_cutmap.Cut_mapper.netlist)
        (Clock.now () -. t0))
    [ 4; 12; 25; 50; 100 ]

let run_delay_model_validation () =
  hr "Delay-model validation (paper §5): sizing after load-independent mapping";
  Printf.printf
    "The paper justifies mapping with intrinsic delays by sizing gates\n\
     afterwards so each gate's real (loaded) delay approaches the delay the\n\
     mapper assumed. Columns: the mapper's objective, the loaded delay at\n\
     unit size, after continuous sizing (tolerance 15%%), and the area cost.\n\n";
  let lib = Option.get (Libraries.by_name "lib2") in
  let db = Matchdb.prepare lib in
  Printf.printf "%-8s | %9s | %10s | %9s | %8s\n" "circuit" "intrinsic"
    "loaded(x1)" "sized" "area x";
  List.iter
    (fun (name, g) ->
      let nl = (Mapper.map Mapper.Dag db g).Mapper.netlist in
      let sized = Sizing.size_to_target nl in
      Printf.printf "%-8s | %9.2f | %10.2f | %9.2f | %8.2f\n" name
        (Netlist.delay nl) (Sizing.loaded_delay nl)
        (Sizing.loaded_delay ~sizes:sized.Sizing.sizes nl)
        (sized.Sizing.sized_area /. Netlist.area nl))
    (Lazy.force subjects)

let run_decomposition_sensitivity () =
  hr "Ablation: initial decomposition choice (paper §4, Lehman et al.)";
  Printf.printf
    "\"Since a single subject graph is chosen among a huge number of\n\
     different decompositions ... it is likely that many potentially good\n\
     mappings are simply not explored due to this initial choice.\"\n\
     DAG-mapped delay under three re-associations of the n-ary chains in\n\
     the node functions (44-3 library). Wide-node circuits (decoders,\n\
     lookahead carries) are sensitive; circuits made of 2-3 input nodes\n\
     are not:\n\n";
  let lib = Option.get (Libraries.by_name "44-3") in
  let db = Matchdb.prepare lib in
  Printf.printf "%-8s | %9s | %9s | %9s\n" "circuit" "balanced" "left" "right";
  List.iter
    (fun (name, net) ->
      let delay style =
        let g = Subject.of_network ~style net in
        Netlist.delay (Mapper.map Mapper.Dag db g).Mapper.netlist
      in
      Printf.printf "%-8s | %9.2f | %9.2f | %9.2f\n" name
        (delay Subject.Balanced) (delay Subject.Left_skew)
        (delay Subject.Right_skew))
    [ ("decoder6", Generators.decoder 6);
      ("cla32", Generators.carry_lookahead_adder 32);
      ("C3540", Iscas_like.c3540_like ()) ]

let run_complexity_section () =
  hr "Complexity validation (paper §3.4): O(s p) labeling";
  Printf.printf
    "The paper claims DAG mapping is linear in the subject size s for a\n\
     fixed library (p constant). Runtime of the full map on seeded random\n\
     logic of growing size (lib2-like library):\n\n";
  let lib = Option.get (Libraries.by_name "lib2") in
  let db = Matchdb.prepare lib in
  Printf.printf "%-10s | %8s | %9s | %12s\n" "nodes" "subject" "seconds"
    "us per node";
  List.iter
    (fun nodes ->
      let net =
        Generators.random_dag ~seed:4242 ~inputs:64 ~outputs:32 ~nodes ()
      in
      let g = Subject.of_network net in
      let t0 = Clock.now () in
      let _ = Mapper.map Mapper.Dag db g in
      let dt = Clock.now () -. t0 in
      Printf.printf "%-10d | %8d | %9.3f | %12.2f\n" nodes
        (Subject.num_nodes g) dt
        (dt *. 1e6 /. float_of_int (Subject.num_nodes g)))
    [ 500; 1000; 2000; 4000; 8000; 16000 ]

let run_architecture_study () =
  hr "Beyond the paper: mapping quality across circuit architectures";
  Printf.printf
    "Tree-vs-DAG delay on the same function implemented with different\n\
     structures (16-bit add, 8x8 multiply; 44-3 library). The prefix adder\n\
     and Wallace tree trade area for reconvergent fanout, which tree\n\
     covering handles poorly and DAG covering exploits.\n\n";
  let lib = Option.get (Libraries.by_name "44-3") in
  let db = Matchdb.prepare lib in
  Printf.printf "%-22s | %8s | %8s | %6s\n" "architecture" "tree-d" "DAG-d"
    "ratio";
  List.iter
    (fun (name, net) ->
      let g = Subject.of_network net in
      let dt = Netlist.delay (Mapper.map Mapper.Tree db g).Mapper.netlist in
      let dd = Netlist.delay (Mapper.map Mapper.Dag db g).Mapper.netlist in
      Printf.printf "%-22s | %8.2f | %8.2f | %5.2fx\n" name dt dd (dt /. dd))
    [ ("ripple-adder-16", Generators.ripple_adder 16);
      ("carry-lookahead-16", Generators.carry_lookahead_adder 16);
      ("carry-select-16", Generators.carry_select_adder 16);
      ("kogge-stone-16", Generators.kogge_stone_adder 16);
      ("array-mult-8", Generators.array_multiplier 8);
      ("wallace-mult-8", Generators.wallace_multiplier 8) ]

let run_flowmap_section () =
  hr "FlowMap baseline (paper §2): depth-optimal k-LUT mapping";
  Printf.printf
    "The labeling principle the paper transfers to library mapping.\n\n";
  Printf.printf "%-8s | %5s | %6s | %6s\n" "circuit" "k" "depth" "#LUTs";
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          let cover = Dagmap_flowmap.Flowmap.map ~k g in
          Printf.printf "%-8s | %5d | %6d | %6d\n" name k
            (Dagmap_flowmap.Flowmap.depth cover)
            (Dagmap_flowmap.Flowmap.num_luts cover))
        [ 4; 5 ])
    [ List.nth (Lazy.force subjects) 3 (* C6288 *) ]

let run_retime_section () =
  hr "Sequential extension (paper §4): map + retime, and the optimal period";
  Printf.printf
    "Three-step transformation (retime / map / retime) vs the Pan-Liu-style\n\
     optimal decision procedure with pattern matching: the optimal labeling\n\
     maps across latch boundaries, which the three-step flow cannot.\n\n";
  let lib = Option.get (Libraries.by_name "lib2") in
  let db = Matchdb.prepare lib in
  List.iter
    (fun (name, net) ->
      let r = Dagmap_retime.Seq_map.run db Mapper.Dag net in
      let optimal = Dagmap_retime.Seq_opt.min_period db Mapper.Dag net in
      Printf.printf
        "%-22s comb=%6.2f  period %6.2f -> %6.2f (3-step) -> %6.2f (optimal)\n"
        name r.Dagmap_retime.Seq_map.comb_delay
        r.Dagmap_retime.Seq_map.period_before
        r.Dagmap_retime.Seq_map.period_after optimal)
    [ ("lfsr24", Generators.lfsr 24);
      ("pipelined-parity-64x5", Generators.pipelined_parity 64 5) ]

(* ------------------------------------------------------------------ *)
(* Multicore labeling + match cache (Parmap / Matchdb.cache)           *)
(* ------------------------------------------------------------------ *)

let run_parallel_section () =
  hr "Beyond the paper: level-parallel labeling and the structural match cache";
  Printf.printf
    "The labeling DP is independent within a topological level, so Parmap\n\
     fans each level across OCaml 5 domains; Matchdb additionally caches\n\
     match sets keyed by a canonical signature of each node's local cone.\n\
     Labels are bit-identical in every configuration (asserted below).\n\n";
  let circuits =
    [ (* Repeated adder cells: the cache's best case, under the rich
         library where match enumeration is most expensive. *)
      ("c6288 / 44-3", "44-3", Subject.of_network (Iscas_like.c6288_like ()));
      (* Shape-diverse random logic at scale: the cache's worst case
         (it retires itself) and the widest parallel fronts. *)
      ("rand16k / lib2", "lib2",
       Subject.of_network
         (Generators.random_dag ~seed:4242 ~inputs:64 ~outputs:32 ~nodes:16000
            ())) ]
  in
  let time = Clock.time in
  List.iter
    (fun (name, lib_name, g) ->
      let lib = Option.get (Libraries.by_name lib_name) in
      let db = Matchdb.prepare lib in
      Printf.printf "%s: %s\n" name (Subject.stats g);
      let reference, t_nocache =
        time (fun () -> Mapper.map ~cache:false Mapper.Dag db g)
      in
      Printf.printf
        "  sequential, cache off : %7.3fs  delay=%.2f (baseline)\n%!"
        t_nocache
        (Netlist.delay reference.Mapper.netlist);
      let cached, t_cache = time (fun () -> Mapper.map Mapper.Dag db g) in
      let hit_rate r =
        100.0
        *. float_of_int r.Mapper.run.Mapper.cache_hits
        /. float_of_int (max 1 r.Mapper.run.Mapper.cache_lookups)
      in
      Printf.printf
        "  sequential, cache on  : %7.3fs  %5.2fx  hit-rate %.1f%%  identical=%b\n%!"
        t_cache (t_nocache /. t_cache) (hit_rate cached)
        (cached.Mapper.labels = reference.Mapper.labels);
      List.iter
        (fun jobs ->
          let (r, _par), t = time (fun () -> Parmap.map ~jobs Mapper.Dag db g) in
          Printf.printf
            "  parallel, %2d domains  : %7.3fs  %5.2fx  hit-rate %.1f%%  identical=%b\n%!"
            jobs t (t_nocache /. t) (hit_rate r)
            (r.Mapper.labels = reference.Mapper.labels))
        [ 1; 2; 4; Parmap.recommended_jobs () ])
    circuits

(* ------------------------------------------------------------------ *)
(* Supergate libraries (Superenum / Superlib)                          *)
(* ------------------------------------------------------------------ *)

let run_super_section () =
  let open Dagmap_super in
  hr "Beyond the paper: supergate library generation";
  Printf.printf
    "Superenum composes library gates into supergates (bounded depth, pins\n\
     and size), dedups them by NPN class keeping delay-dominant reps, and\n\
     emits ordinary genlib gates. The mapper is unchanged; only the library\n\
     grows. Deltas below are augmented-vs-base DAG mapping; netlists are\n\
     verified equivalent by random simulation.\n\n";
  let circuits =
    [ ("c432", Subject.of_network (Iscas_like.c432_like ()));
      ("c880", Subject.of_network (Iscas_like.c880_like ()));
      ("c1908", Subject.of_network (Iscas_like.c1908_like ()));
      ("c6288", Subject.of_network (Iscas_like.c6288_like ()));
      ("ks32", Subject.of_network (Generators.kogge_stone_adder 32));
      ("cla32", Subject.of_network (Generators.carry_lookahead_adder 32)) ]
  in
  List.iter
    (fun (lib_name, bounds) ->
      let base = Option.get (Libraries.by_name lib_name) in
      let jobs = Parmap.recommended_jobs () in
      let sgl, stats = Superlib.make ~bounds ~jobs base in
      let aug = Superlib.augment base sgl in
      Printf.printf
        "%s: %d supergates (of %d compositions, %d NPN classes) in %.2fs on \
         %d domains\n"
        lib_name stats.Superenum.emitted stats.Superenum.considered
        stats.Superenum.distinct_classes stats.Superenum.seconds jobs;
      let db_base = Matchdb.prepare base in
      let db_aug = Matchdb.prepare aug in
      Printf.printf "  %-8s | %14s | %7s | %14s | %7s | %5s | %s\n" "circuit"
        "delay" "%" "area" "cpu x" "used" "equiv";
      List.iter
        (fun (cname, g) ->
          let rb, tb = Clock.time (fun () -> Mapper.map Mapper.Dag db_base g) in
          let ra, ta = Clock.time (fun () -> Mapper.map Mapper.Dag db_aug g) in
          let db_ = Netlist.delay rb.Mapper.netlist in
          let da = Netlist.delay ra.Mapper.netlist in
          let n_inputs = List.length (Subject.pi_ids g) in
          let equiv =
            Equiv.is_equivalent
              (Equiv.compare_sims ~rounds:4 ~n_inputs
                 (fun w -> Simulate.subject g w)
                 (fun w -> Simulate.netlist ra.Mapper.netlist w))
          in
          Printf.printf
            "  %-8s | %6.2f -> %5.2f | %+6.1f%% | %6.0f -> %5.0f | %7.2f | \
             %5d | %b\n%!"
            cname db_ da
            (100.0 *. (da -. db_) /. db_)
            (Netlist.area rb.Mapper.netlist)
            (Netlist.area ra.Mapper.netlist)
            (ta /. Float.max 1e-9 tb)
            ra.Mapper.run.Mapper.super_gates_used equiv)
        circuits)
    [ ("lib2", { Superenum.default_bounds with max_pins = 4; max_size = 3 });
      ("44-1", Superenum.default_bounds) ]

(* ------------------------------------------------------------------ *)
(* Machine-readable bench trajectory: `json` and `compare` modes       *)
(* ------------------------------------------------------------------ *)

(* `bench json [quick] [FILE]` writes one BENCH_<stamp>.json snapshot
   of mapping quality and runtime. Schema "dagmap-bench/1" (see
   EXPERIMENTS.md):

     { "schema":  "dagmap-bench/1",
       "generated": "YYYYMMDD_HHMMSS",
       "quick":   bool,
       "rows":    [ { "circuit", "library", "mode",   -- tree|dag|super
                      "delay", "area", "gates", "duplicated",
                      "wall_seconds", "cpu_seconds" } ],
       "cache":   { "hits", "misses", "lookups" },    -- global registry
       "parallel": { "jobs", "chunks", "parallel_levels",
                     "wall_seconds", "sequential_wall_seconds",
                     "speedup", "identical" },
       "metrics": { ... }  }                          -- full registry dump

   `bench compare NEW BASELINE` reloads two such files and fails (exit
   1) when the geometric-mean dag-mode wall-time ratio NEW/BASELINE
   exceeds 1.25 — the CI regression gate. Delay and area are also
   compared, with zero tolerance: both are deterministic, so any drift
   is a quality regression, not noise. *)

let bench_schema = "dagmap-bench/1"

(* Collision-proof default artifact names: concurrent bench runs on
   one machine (CI matrix jobs, a serve bench next to a quick bench)
   must never clobber each other's BENCH_*.json. The stamp has
   one-second resolution, so the pid disambiguates processes and the
   O_EXCL retry loop disambiguates calls within one process-second.
   Explicit FILE arguments bypass this — the CI compare step depends
   on choosing its own names. *)
let fresh_bench_path prefix =
  let rec go k =
    let path =
      if k = 0 then
        Printf.sprintf "BENCH_%s%s_%d.json" prefix (Clock.stamp ())
          (Unix.getpid ())
      else
        Printf.sprintf "BENCH_%s%s_%d_%d.json" prefix (Clock.stamp ())
          (Unix.getpid ()) k
    in
    match
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
    with
    | fd ->
      Unix.close fd;
      path
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (k + 1)
  in
  go 0

(* peak_rss_bytes is the process high-water mark at row creation time
   — monotone across the run, so within one snapshot later rows carry
   the running maximum (see Resource). Report-only; compare prints a
   memory column but never gates on it. *)
let bench_row ?(extra = []) ~circuit ~library ~mode nl ~wall ~cpu () =
  Json.Obj
    ([ ("circuit", Json.String circuit);
       ("library", Json.String library);
       ("mode", Json.String mode);
       ("delay", Json.Float (Netlist.delay nl));
       ("area", Json.Float (Netlist.area nl));
       ("gates", Json.Int (Netlist.num_gates nl));
       ("duplicated", Json.Int (Netlist.duplication nl));
       ("wall_seconds", Json.Float wall);
       ("cpu_seconds", Json.Float cpu);
       ("peak_rss_bytes", Json.Int (Resource.peak_rss_bytes ())) ]
    @ extra)

let run_json quick out_file =
  let open Dagmap_super in
  Metrics.reset_all ();
  let circuits =
    let all = Iscas_like.table_circuits () in
    if quick then
      List.filter (fun (n, _) -> n = "C2670" || n = "C6288") all
    else all
  in
  let subjects =
    List.map (fun (n, net) -> (n, Subject.of_network net)) circuits
  in
  let rows = ref [] in
  let push r = rows := r :: !rows in
  (* Tree and DAG rows for each circuit under each of the three paper
     libraries — the machine-readable form of Tables 1-3, with both
     time bases so parallel speedups stay visible. *)
  List.iter
    (fun lib_name ->
      let lib = Option.get (Libraries.by_name lib_name) in
      let db = Matchdb.prepare lib in
      List.iter
        (fun (cname, g) ->
          List.iter
            (fun (tag, mode) ->
              let r, wall, cpu =
                Clock.time_wall_cpu (fun () -> Mapper.map mode db g)
              in
              push
                (bench_row ~circuit:cname ~library:lib_name ~mode:tag
                   r.Mapper.netlist ~wall ~cpu ()))
            [ ("tree", Mapper.Tree); ("dag", Mapper.Dag) ])
        subjects)
    [ "lib2"; "44-1"; "44-3" ];
  (* Super rows: DAG mapping under lib2 augmented with a small
     in-process supergate library (fuzz-sized bounds keep this cheap
     enough for CI). *)
  let base = Option.get (Libraries.by_name "lib2") in
  let bounds =
    { Superenum.default_bounds with
      Superenum.max_pins = 4;
      max_size = 3;
      max_gates = 48 }
  in
  let sgl, _ = Superlib.make ~bounds ~jobs:2 base in
  let db_aug = Matchdb.prepare (Superlib.augment base sgl) in
  List.iter
    (fun (cname, g) ->
      let r, wall, cpu =
        Clock.time_wall_cpu (fun () -> Mapper.map Mapper.Dag db_aug g)
      in
      push
        (bench_row ~circuit:cname ~library:"lib2" ~mode:"super"
           r.Mapper.netlist ~wall ~cpu ()))
    subjects;
  (* Parallel snapshot: sequential vs 4-domain labeling on the last
     (largest) circuit, plus the work-steal counters the run left in
     the registry. *)
  let pname, pg = List.nth subjects (List.length subjects - 1) in
  let db = Matchdb.prepare base in
  let rseq, seq_wall = Clock.time (fun () -> Mapper.map Mapper.Dag db pg) in
  let (rpar, par), par_wall =
    Clock.time (fun () -> Parmap.map ~jobs:4 Mapper.Dag db pg)
  in
  let parallel =
    Json.Obj
      [ ("circuit", Json.String pname);
        ("jobs", Json.Int par.Parmap.domains);
        ("chunks", Json.Int par.Parmap.chunks);
        ("parallel_levels", Json.Int par.Parmap.parallel_levels);
        ("wall_seconds", Json.Float par_wall);
        ("sequential_wall_seconds", Json.Float seq_wall);
        ("speedup", Json.Float (seq_wall /. Float.max 1e-9 par_wall));
        ("identical", Json.Bool (rpar.Mapper.labels = rseq.Mapper.labels)) ]
  in
  (* Cut-mapper section: priority pruning vs full enumeration
     (matcher work saved), delay delta vs the structural DAG
     reference, and boxed/arena-parallel parity. The parity bit is a
     hard gate — the run exits nonzero if the arena enumerator ever
     diverges from the boxed cut mapper. *)
  let cuts_ok = ref true in
  let cuts_rows =
    List.map
      (fun (cname, g) ->
        let bdb = Matchdb.boolean db in
        let rdag = Mapper.map Mapper.Dag db g in
        let r8, wall8 =
          Clock.time (fun () -> Dagmap_cutmap.Cut_mapper.map ~priority:8 bdb g)
        in
        let rfull, wall_full =
          Clock.time (fun () ->
              Dagmap_cutmap.Cut_mapper.map ~priority:1_000_000 bdb g)
        in
        let a = Arena.of_subject g in
        let rar, _ =
          Dagmap_cutmap.Arena_cuts.map ~jobs:4 ~priority:8 ~subject:g bdb a
        in
        let open Dagmap_cutmap in
        let identical =
          rar.Cut_mapper.labels = r8.Cut_mapper.labels
          && rar.Cut_mapper.matches_evaluated = r8.Cut_mapper.matches_evaluated
          && Netlist.delay rar.Cut_mapper.netlist
             = Netlist.delay r8.Cut_mapper.netlist
          && Netlist.area rar.Cut_mapper.netlist
             = Netlist.area r8.Cut_mapper.netlist
        in
        if not identical then cuts_ok := false;
        let d8 = Netlist.delay r8.Cut_mapper.netlist in
        let dfull = Netlist.delay rfull.Cut_mapper.netlist in
        let ddag = Netlist.delay rdag.Mapper.netlist in
        Json.Obj
          [ ("circuit", Json.String cname);
            ("library", Json.String base.Libraries.lib_name);
            ("priority", Json.Int 8);
            ("delay", Json.Float d8);
            ("delay_full_enumeration", Json.Float dfull);
            ("delay_dag", Json.Float ddag);
            ("delay_delta_vs_dag", Json.Float (d8 -. ddag));
            ("matches_evaluated", Json.Int r8.Cut_mapper.matches_evaluated);
            ( "matches_evaluated_full",
              Json.Int rfull.Cut_mapper.matches_evaluated );
            ("wall_seconds", Json.Float wall8);
            ("wall_seconds_full", Json.Float wall_full);
            ("arena_parallel_identical", Json.Bool identical) ])
      subjects
  in
  let cval n = Option.value ~default:0 (Metrics.counter_value n) in
  let cache =
    Json.Obj
      [ ("hits", Json.Int (cval "matchdb.cache.hits"));
        ("misses", Json.Int (cval "matchdb.cache.misses"));
        ("lookups", Json.Int (cval "matchdb.cache.lookups")) ]
  in
  let doc =
    Json.Obj
      [ ("schema", Json.String bench_schema);
        ("generated", Json.String (Clock.stamp ()));
        ("quick", Json.Bool quick);
        ("rows", Json.List (List.rev !rows));
        ("cache", cache);
        ("parallel", parallel);
        ("cuts", Json.List cuts_rows);
        ("metrics", Metrics.to_json ()) ]
  in
  let path =
    match out_file with
    | Some p -> p
    | None -> fresh_bench_path ""
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n" path (List.length !rows);
  if not !cuts_ok then begin
    Printf.printf "FAIL: arena cut mapper diverged from the boxed mapper\n";
    exit 1
  end

(* Huge tier: `bench json huge [nodes=N] [jobs=J] [FILE]`. One
   end-to-end production-scale run on the arena path — generate a
   synthetic SoC, round-trip it through BLIF with the streaming
   reader, decompose into the flat arena, map (sequentially, then
   with the arena-parallel labeler), and verify — with every phase
   timed and peak RSS recorded. The row lives in the same "rows"
   schema (tier = "huge"), so `bench compare` of two huge snapshots
   gates on its wall time exactly like the quick tier; extra fields —
   including the whole "parallel" section, whose wall times depend on
   the core count — are report-only. Defaults to 400k network nodes
   (>= 1M subject nodes after NAND2-INV decomposition) and jobs=4;
   CI smoke runs nodes=100000. *)
let run_json_huge nodes jobs out_file =
  let open Dagmap_blif in
  let open Dagmap_check in
  Metrics.reset_all ();
  let net, gen_wall =
    Clock.time (fun () -> Generators.synthetic_soc ~seed:1 ~nodes ())
  in
  Printf.printf "huge tier: %s (generated in %.1fs)\n%!" (Network.stats net)
    gen_wall;
  let blif_path = Filename.temp_file "dagmap_huge" ".blif" in
  let parsed, parse_wall, arena, build_wall =
    Fun.protect
      ~finally:(fun () -> try Sys.remove blif_path with Sys_error _ -> ())
      (fun () ->
        let oc = open_out blif_path in
        output_string oc (Blif.write_network net);
        close_out oc;
        let parsed, parse_wall =
          Clock.time (fun () -> Blif_stream.read_file blif_path)
        in
        let arena, build_wall =
          Clock.time (fun () -> Arena.of_network parsed)
        in
        (parsed, parse_wall, arena, build_wall))
  in
  Printf.printf "  parsed %d network nodes in %.1fs (streaming)\n%!"
    (Network.num_nodes parsed) parse_wall;
  Printf.printf "  %s, built in %.1fs\n%!" (Arena.stats arena) build_wall;
  let g = Arena.to_subject arena in
  let db = Matchdb.prepare (Option.get (Libraries.by_name "44-1")) in
  let r, map_wall, map_cpu =
    Clock.time_wall_cpu (fun () -> Arena_map.map ~subject:g Mapper.Dag db arena)
  in
  let clean =
    Check.structural r.Mapper.netlist = []
    && Check.delay ~predicted:(Mapper.predicted_arrivals r) r.Mapper.netlist
       = []
  in
  Printf.printf
    "  mapped in %.1fs wall / %.1fs cpu: delay=%.2f area=%.0f gates=%d \
     check=%s\n%!"
    map_wall map_cpu
    (Netlist.delay r.Mapper.netlist)
    (Netlist.area r.Mapper.netlist)
    (Netlist.num_gates r.Mapper.netlist)
    (if clean then "ok" else "FAIL");
  (* Arena-parallel labeling over the same arena: the speedup the
     flat core exists for. Identity to the sequential arena result is
     a hard gate (bit-equal labels, same cover); the wall/speedup
     numbers are report-only — they measure the machine's core count
     as much as the code. *)
  let (rpar, par_stats), par_wall, par_cpu =
    Clock.time_wall_cpu (fun () ->
        Parmap.map_arena ~jobs ~subject:g Mapper.Dag db arena)
  in
  let par_identical =
    rpar.Mapper.labels = r.Mapper.labels
    && Netlist.delay rpar.Mapper.netlist = Netlist.delay r.Mapper.netlist
    && Netlist.area rpar.Mapper.netlist = Netlist.area r.Mapper.netlist
    && Netlist.num_gates rpar.Mapper.netlist = Netlist.num_gates r.Mapper.netlist
  in
  let seq_label = r.Mapper.run.Mapper.label_seconds in
  let par_label = rpar.Mapper.run.Mapper.label_seconds in
  Printf.printf
    "  parallel (jobs=%d): label %.1fs vs %.1fs seq (%.2fx), wall %.1fs, \
     %d/%d levels parallel, %d chunks, identical=%b\n%!"
    jobs par_label seq_label
    (seq_label /. Float.max 1e-9 par_label)
    par_wall par_stats.Parmap.parallel_levels par_stats.Parmap.levels
    par_stats.Parmap.chunks par_identical;
  let parallel =
    Json.Obj
      [ ("jobs", Json.Int jobs);
        ("wall_seconds", Json.Float par_wall);
        ("cpu_seconds", Json.Float par_cpu);
        ("label_seconds", Json.Float par_label);
        ("seq_label_seconds", Json.Float seq_label);
        ("label_speedup", Json.Float (seq_label /. Float.max 1e-9 par_label));
        ("levels", Json.Int par_stats.Parmap.levels);
        ("parallel_levels", Json.Int par_stats.Parmap.parallel_levels);
        ("widest_level", Json.Int par_stats.Parmap.widest_level);
        ("chunks", Json.Int par_stats.Parmap.chunks);
        ("identical", Json.Bool par_identical) ]
  in
  (* Priority-cut engine over the same arena: sequential vs
     [jobs]-parallel enumeration. Parity is a hard exit gate exactly
     like the structural labeler's; the delay delta vs the dag row is
     report-only (the cut engine is a pruned heuristic). *)
  let bdb = Matchdb.boolean db in
  let (rc, _), cut_wall, cut_cpu =
    Clock.time_wall_cpu (fun () ->
        Dagmap_cutmap.Arena_cuts.map ~jobs:1 ~priority:8 ~subject:g bdb arena)
  in
  let (rcp, cut_par_stats), cut_par_wall =
    Clock.time (fun () ->
        Dagmap_cutmap.Arena_cuts.map ~jobs ~priority:8 ~subject:g bdb arena)
  in
  let cut_identical =
    rcp.Dagmap_cutmap.Cut_mapper.labels = rc.Dagmap_cutmap.Cut_mapper.labels
    && rcp.Dagmap_cutmap.Cut_mapper.matches_evaluated
       = rc.Dagmap_cutmap.Cut_mapper.matches_evaluated
    && Netlist.delay rcp.Dagmap_cutmap.Cut_mapper.netlist
       = Netlist.delay rc.Dagmap_cutmap.Cut_mapper.netlist
    && Netlist.area rcp.Dagmap_cutmap.Cut_mapper.netlist
       = Netlist.area rc.Dagmap_cutmap.Cut_mapper.netlist
  in
  let cut_clean =
    Check.structural rc.Dagmap_cutmap.Cut_mapper.netlist = []
    && Check.delay
         ~predicted:
           (Dagmap_cutmap.Cut_mapper.predicted_arrivals rc)
         rc.Dagmap_cutmap.Cut_mapper.netlist
       = []
  in
  let cut_delay = Netlist.delay rc.Dagmap_cutmap.Cut_mapper.netlist in
  Printf.printf
    "  cut (priority=8): %.1fs seq / %.1fs jobs=%d, delay=%.2f \
     (dag %.2f), %d matches evaluated, identical=%b check=%s\n%!"
    cut_wall cut_par_wall jobs cut_delay
    (Netlist.delay r.Mapper.netlist)
    rc.Dagmap_cutmap.Cut_mapper.matches_evaluated cut_identical
    (if cut_clean then "ok" else "FAIL");
  let cuts =
    Json.Obj
      [ ("priority", Json.Int 8);
        ("jobs", Json.Int jobs);
        ("delay", Json.Float cut_delay);
        ("delay_dag", Json.Float (Netlist.delay r.Mapper.netlist));
        ( "delay_delta_vs_dag",
          Json.Float (cut_delay -. Netlist.delay r.Mapper.netlist) );
        ( "matches_evaluated",
          Json.Int rc.Dagmap_cutmap.Cut_mapper.matches_evaluated );
        ( "matched_nodes",
          Json.Int rc.Dagmap_cutmap.Cut_mapper.matched_nodes );
        ("wall_seconds", Json.Float cut_wall);
        ("cpu_seconds", Json.Float cut_cpu);
        ("parallel_wall_seconds", Json.Float cut_par_wall);
        ( "parallel_levels",
          Json.Int cut_par_stats.Parmap.parallel_levels );
        ("chunks", Json.Int cut_par_stats.Parmap.chunks);
        ("identical", Json.Bool cut_identical);
        ("check_clean", Json.Bool cut_clean) ]
  in
  let row =
    bench_row
      ~extra:
        [ ("tier", Json.String "huge");
          ("network_nodes", Json.Int nodes);
          ("subject_nodes", Json.Int (Arena.num_nodes arena));
          ("generate_seconds", Json.Float gen_wall);
          ("parse_seconds", Json.Float parse_wall);
          ("arena_build_seconds", Json.Float build_wall);
          ("arena_mem_bytes", Json.Int (Arena.mem_bytes arena));
          ("check_clean", Json.Bool clean) ]
      ~circuit:(Printf.sprintf "soc%d" nodes)
      ~library:"44-1" ~mode:"dag" r.Mapper.netlist ~wall:map_wall ~cpu:map_cpu
      ()
  in
  let doc =
    Json.Obj
      [ ("schema", Json.String bench_schema);
        ("generated", Json.String (Clock.stamp ()));
        ("quick", Json.Bool false);
        ("tier", Json.String "huge");
        ("rows", Json.List [ row ]);
        ("parallel", parallel);
        ("cuts", cuts);
        ("metrics", Metrics.to_json ()) ]
  in
  let path =
    match out_file with
    | Some p -> p
    | None -> fresh_bench_path "huge_"
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (peak rss %.1f MB)\n" path
    (float_of_int (Resource.peak_rss_bytes ()) /. 1e6);
  if not (clean && par_identical && cut_identical && cut_clean) then exit 1

let run_compare_json new_file base_file =
  let load path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    try Json.parse s
    with Json.Parse_error _ as e ->
      failwith (Printf.sprintf "%s: %s" path (Json.describe e))
  in
  let rows doc =
    match Option.bind (Json.member "rows" doc) Json.to_list with
    | Some rs -> rs
    | None -> failwith "bench compare: no \"rows\" list in document"
  in
  let field name r =
    match Option.bind (Json.member name r) Json.to_string_value with
    | Some s -> s
    | None -> failwith ("bench compare: row without " ^ name)
  in
  let num name r =
    match Option.bind (Json.member name r) Json.to_number with
    | Some x -> x
    | None -> failwith ("bench compare: row without " ^ name)
  in
  let key r = (field "circuit" r, field "library" r, field "mode" r) in
  let doc_new = load new_file and doc_base = load base_file in
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace base_tbl (key r) r) (rows doc_base);
  let num_opt name r = Option.bind (Json.member name r) Json.to_number in
  let ratios = ref [] in
  let quality_bad = ref false in
  Printf.printf "%-8s %-6s %-5s | %9s | %9s | %7s | %s\n" "circuit" "lib"
    "mode" "base-wall" "new-wall" "ratio" "memory (report-only)";
  List.iter
    (fun r ->
      match Hashtbl.find_opt base_tbl (key r) with
      | None -> ()
      | Some b ->
        let c, l, m = key r in
        let wb = num "wall_seconds" b and wn = num "wall_seconds" r in
        let ratio = wn /. Float.max 1e-9 wb in
        if m = "dag" then ratios := ratio :: !ratios;
        (* Delay and area are deterministic: any change is a mapper
           quality regression, flagged regardless of speed. *)
        List.iter
          (fun f ->
            if Float.abs (num f r -. num f b) > 1e-9 then begin
              quality_bad := true;
              Printf.printf "  QUALITY DRIFT %s/%s/%s: %s %.4f -> %.4f\n" c l
                m f (num f b) (num f r)
            end)
          [ "delay"; "area" ];
        (* Memory column: peak RSS when both snapshots recorded it.
           Older baselines predate the field, and the reading is a
           process-wide high-water mark, so this is informational
           only — never a gate. *)
        let mem =
          match num_opt "peak_rss_bytes" b, num_opt "peak_rss_bytes" r with
          | Some mb, Some mn when mb > 0.0 && mn > 0.0 ->
            Printf.sprintf "%6.1f -> %6.1f MB (%.2fx)" (mb /. 1e6)
              (mn /. 1e6) (mn /. mb)
          | None, Some mn when mn > 0.0 ->
            Printf.sprintf "rss %.1f MB (no baseline)" (mn /. 1e6)
          | _ -> "-"
        in
        Printf.printf "%-8s %-6s %-5s | %8.3fs | %8.3fs | %6.2fx | %s\n" c l
          m wb wn ratio mem)
    (rows doc_new);
  (* Arena-parallel section (huge tier): label wall and speedup
     depend on the machine's core count, so until a same-hardware
     baseline is checked in this column is report-only — printed,
     never gated. (Correctness is gated at generation time: `json
     huge` exits nonzero unless the parallel labels are bit-identical
     to the sequential arena pass.) *)
  let par_info doc =
    match Json.member "parallel" doc with
    | None -> None
    | Some p ->
      let num name = Option.bind (Json.member name p) Json.to_number in
      (match num "label_seconds", num "label_speedup", num "jobs" with
       | Some ls, Some sp, Some j -> Some (int_of_float j, ls, sp)
       | _ -> None)
  in
  (match par_info doc_new, par_info doc_base with
   | Some (j, ls, sp), Some (_, bls, _) ->
     Printf.printf
       "arena-parallel label (report-only): %.3fs -> %.3fs (jobs=%d, %.2fx \
        vs seq)\n"
       bls ls j sp
   | Some (j, ls, sp), None ->
     Printf.printf
       "arena-parallel label (report-only): %.3fs (jobs=%d, %.2fx vs seq; \
        no baseline)\n"
       ls j sp
   | None, _ -> ());
  (* Cut-mapper section: report-only, like the parallel column — the
     cut engine is a pruned heuristic whose budget defaults can move
     between snapshots, so its delay is printed for the reader rather
     than gated. (Within one snapshot, generation already hard-gates
     arena/boxed parity.) *)
  let cut_delays doc =
    match Json.member "cuts" doc with
    | None -> []
    | Some (Json.List rows) ->
      List.filter_map
        (fun r ->
          match
            ( Option.bind (Json.member "circuit" r) Json.to_string_value,
              Option.bind (Json.member "delay" r) Json.to_number )
          with
          | Some c, Some d -> Some (c, d)
          | _ -> None)
        rows
    | Some obj ->
      (match Option.bind (Json.member "delay" obj) Json.to_number with
       | Some d -> [ ("huge", d) ]
       | None -> [])
  in
  (match cut_delays doc_new with
   | [] -> ()
   | news ->
     let bases = cut_delays doc_base in
     List.iter
       (fun (c, d) ->
         match List.assoc_opt c bases with
         | Some b ->
           Printf.printf "cut-mapper delay (report-only) %s: %.2f -> %.2f\n" c
             b d
         | None ->
           Printf.printf
             "cut-mapper delay (report-only) %s: %.2f (no baseline)\n" c d)
       news);
  if !ratios = [] then failwith "bench compare: no common dag-mode rows";
  let geo =
    exp
      (List.fold_left (fun a r -> a +. log r) 0.0 !ratios
      /. float_of_int (List.length !ratios))
  in
  Printf.printf "geometric-mean dag wall-time ratio (new/base): %.3fx\n" geo;
  if !quality_bad then begin
    Printf.printf "FAIL: delay/area drifted from the baseline\n";
    exit 1
  end;
  if geo > 1.25 then begin
    Printf.printf "FAIL: dag mapping slowed down more than 25%%\n";
    exit 1
  end;
  Printf.printf "ok: within the 25%% regression budget\n"

(* ------------------------------------------------------------------ *)
(* Serve tier: load-generate against techmapd                          *)
(* ------------------------------------------------------------------ *)

(* `bench serve [requests=N] [clients=C] [jobs=J] [queue=Q] [seed=S]
   [attach=SOCK] [faults=PLAN] [budget=S] [FILE]` replays fuzz-style
   circuits through a client pool against techmapd and reports
   p50/p99 latency and saturation throughput into a
   BENCH_serve_*.json snapshot. Without attach= the daemon runs
   in-process (a Server.t on a thread) so the run also exercises
   create/drain; attach= points at an externally started daemon (the
   CI smoke does this to cover the real binary + SIGTERM path).

   Correctness is the gate, not throughput: every corpus circuit is
   mapped locally, fault-free, before the run, and every ok reply —
   degraded or not — must report the same delay/area. Every map
   request carries audit=1 and a reply whose audit is not "ok" fails
   the run.

   faults= hands the same plan spec the daemon takes to the chaos
   path: clients go through the retrying Client.session layer,
   injected failures (injected_fault, watchdog_timeout) are
   re-submitted, and the run fails unless every request eventually
   lands, zero replies are incorrect, and — when budget= arms the
   watchdog against a delay_job plan — the daemon logged at least one
   pool restart. The overload burst (no-retry clients must see busy)
   runs only in the fault-free configuration, where a vanished reply
   would be a real bug rather than an injected one. *)

let run_serve_bench args =
  let open Dagmap_serve in
  let requests = ref 1000
  and clients = ref 4
  and jobs = ref 4
  and queue = ref 32
  and seed = ref 7
  and faults_spec = ref ""
  and budget = ref 0.0
  and attach = ref None
  and out = ref None in
  List.iter
    (fun a ->
      let kv key =
        let n = String.length key in
        if String.length a > n && String.sub a 0 n = key then
          Some (String.sub a n (String.length a - n))
        else None
      in
      let int_of key v =
        match int_of_string_opt v with
        | Some n when n > 0 -> n
        | _ -> failwith (Printf.sprintf "bench serve: bad %s%s" key v)
      in
      let float_of key v =
        match float_of_string_opt v with
        | Some x when x >= 0.0 -> x
        | _ -> failwith (Printf.sprintf "bench serve: bad %s%s" key v)
      in
      match kv "requests=" with
      | Some v -> requests := int_of "requests=" v
      | None -> (
        match kv "clients=" with
        | Some v -> clients := int_of "clients=" v
        | None -> (
          match kv "jobs=" with
          | Some v -> jobs := int_of "jobs=" v
          | None -> (
            match kv "queue=" with
            | Some v -> queue := int_of "queue=" v
            | None -> (
              match kv "seed=" with
              | Some v -> seed := int_of "seed=" v
              | None -> (
                match kv "faults=" with
                | Some v -> faults_spec := v
                | None -> (
                  match kv "budget=" with
                  | Some v -> budget := float_of "budget=" v
                  | None -> (
                    match kv "attach=" with
                    | Some v -> attach := Some v
                    | None -> out := Some a))))))))
    args;
  let faults =
    match Faultplan.parse !faults_spec with
    | Ok f -> f
    | Error m -> failwith ("bench serve: faults=: " ^ m)
  in
  let chaos = Faultplan.is_active faults in
  (* The replay corpus: seeded random reconvergent DAGs shipped as
     BLIF payloads, same generator family the fuzz harness uses. *)
  let corpus =
    Array.init 48 (fun i ->
        let nodes = 30 + (i * 17 mod 91) in
        let net =
          Generators.random_dag ~seed:(!seed + i) ~inputs:12 ~outputs:8
            ~nodes ()
        in
        Dagmap_blif.Blif.write_network net)
  in
  (* Ground truth: each corpus circuit mapped locally with no faults
     in the way. Every ok reply must agree with this — a fault may
     fail a request, it must never change its answer. *)
  let expected =
    let db = Matchdb.prepare (Option.get (Libraries.by_name "lib2")) in
    Array.map
      (fun blif ->
        let net = Dagmap_blif.Blif.read_string ~file:"<corpus>" blif in
        let r = Mapper.map Mapper.Dag db (Subject.of_network net) in
        (Netlist.delay r.Mapper.netlist, Netlist.area r.Mapper.netlist))
      corpus
  in
  let close_to a b =
    (* replies round-trip floats through %.12g JSON *)
    Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a)
  in
  let in_process = !attach = None in
  let sock =
    match !attach with
    | Some s -> s
    | None ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "techmapd_bench_%d.sock" (Unix.getpid ()))
  in
  let srv, srv_thread =
    if not in_process then (None, None)
    else begin
      let resolve spec =
        match String.split_on_char ':' spec with
        | [ "chain"; n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> Generators.nand_chain n
          | _ -> failwith ("bench serve: bad circuit spec " ^ spec))
        | _ -> failwith ("bench serve: unknown circuit " ^ spec)
      in
      let srv =
        Server.create
          { Server.socket_path = sock;
            jobs = !jobs;
            queue_max = !queue;
            libraries =
              [ ("lib2", Option.get (Libraries.by_name "lib2")) ];
            resolve_circuit = Some resolve;
            verbose = false;
            io_timeout_s = 30.0;
            idle_timeout_s = 0.0;
            job_budget_s = !budget;
            faults }
      in
      (Some srv, Some (Thread.create Server.run srv))
    end
  in
  let finally () =
    match srv, srv_thread with
    | Some srv, Some th ->
      Server.stop srv;
      Thread.join th
    | _ -> ()
  in
  Fun.protect ~finally @@ fun () ->
  (* Steady state: C clients pull request indices from a shared
     counter. Each client is a retrying Client.session — busy replies
     and transport faults (dropped connections, garbled replies,
     timeouts) back off and retry inside the session; injected
     request failures (crash_job, watchdog_timeout) are re-submitted
     here. Every request must eventually land with a correct
     answer. *)
  let next = Atomic.make 0 in
  let ok = Atomic.make 0
  and errs = Atomic.make 0
  and incorrect = Atomic.make 0
  and injected_failures = Atomic.make 0
  and degraded_replies = Atomic.make 0
  and audit_failures = Atomic.make 0 in
  let lats = Array.make !requests 0.0 in
  let status reply =
    Option.value ~default:"?"
      (Option.bind (Json.member "status" reply) Json.to_string_value)
  in
  let retry =
    { Client.default_retry with
      Client.attempts = (if chaos then 12 else 8) }
  in
  let sessions =
    Array.init !clients (fun k ->
        Client.session ~timeout_s:30.0 ~retry ~seed:(!seed + k) sock)
  in
  let client_loop k =
    let s = sessions.(k) in
    let rec serve_one i resubmits =
      let ci = i mod Array.length corpus in
      let payload = corpus.(ci) in
      let req =
        match i mod 5 with
        | 0 | 1 | 2 -> { (Proto.request Proto.Map) with Proto.audit = true }
        | 3 -> Proto.request Proto.Check
        | _ -> Proto.request Proto.Sta
      in
      let req = { req with Proto.lib = Some "lib2" } in
      let t0 = Clock.now () in
      match Client.call s ~payload req with
      | Error m ->
        Atomic.incr errs;
        Printf.eprintf "bench serve: request %d gave up: %s\n%!" i m
      | Ok reply -> (
        match status reply with
        | "ok" ->
          lats.(i) <- Clock.since t0;
          Atomic.incr ok;
          if Json.member "degraded" reply = Some (Json.Bool true) then
            Atomic.incr degraded_replies;
          let exp_delay, exp_area = expected.(ci) in
          let num name =
            Option.bind (Json.member name reply) Json.to_number
          in
          let matches =
            match num "delay", num "area" with
            | Some d, Some a -> close_to exp_delay d && close_to exp_area a
            | _ -> false
          in
          if not matches then begin
            Atomic.incr incorrect;
            Printf.eprintf
              "bench serve: request %d INCORRECT (want delay %g area %g): \
               %s\n%!"
              i exp_delay exp_area (Json.to_string reply)
          end;
          let audited =
            match req.Proto.verb with
            | Proto.Map ->
              Option.bind (Json.member "audit" reply) Json.to_string_value
              = Some "ok"
            | Proto.Check ->
              Json.member "clean" reply = Some (Json.Bool true)
            | _ -> true
          in
          if not audited then Atomic.incr audit_failures
        | "error"
          when (let code =
                  Option.bind (Json.member "code" reply) Json.to_string_value
                in
                code = Some "injected_fault" || code = Some "watchdog_timeout")
               && resubmits > 0 ->
          (* A fault killed this request cleanly; run it again. *)
          Atomic.incr injected_failures;
          serve_one i (resubmits - 1)
        | st ->
          Atomic.incr errs;
          Printf.eprintf "bench serve: request %d -> %s: %s\n%!" i st
            (Json.to_string reply))
    in
    let rec pump () =
      let i = Atomic.fetch_and_add next 1 in
      if i < !requests then begin
        (try serve_one i 25
         with e ->
           Atomic.incr errs;
           Printf.eprintf "bench serve: request %d raised %s\n%!" i
             (Printexc.to_string e));
        pump ()
      end
    in
    pump ();
    Client.end_session s
  in
  let t0 = Clock.now () in
  let threads = List.init !clients (fun k -> Thread.create client_loop k) in
  List.iter Thread.join threads;
  let wall = Clock.since t0 in
  let busy_retries, transient_retries, giveups =
    Array.fold_left
      (fun (b, t, g) s ->
        let c = Client.counters s in
        ( b + c.Client.retried_busy,
          t + c.Client.retried_transient,
          g + c.Client.gave_up ))
      (0, 0, 0) sessions
  in
  (* Overload: fire queue_max + 8 slow requests at once with no
     retries; the admission bound must turn the excess into busy
     replies. A couple of rounds tolerates scheduling luck. *)
  let overload_burst = !queue + 8 in
  let overload_busy = Atomic.make 0 in
  let overload_rounds = ref 0 in
  (* Under an active fault plan a burst reply can be legitimately
     dropped or garbled, so "no busy observed" would prove nothing:
     the backpressure assertion only runs fault-free. *)
  while (not chaos) && !overload_rounds < 5 && Atomic.get overload_busy = 0 do
    incr overload_rounds;
    let burst () =
      match
        let c = Client.connect sock in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            Client.request c
              { (Proto.request Proto.Map) with
                Proto.circuit = Some "chain:5000" })
      with
      | reply -> if status reply = "busy" then Atomic.incr overload_busy
      | exception _ -> ()
    in
    let ths = List.init overload_burst (fun _ -> Thread.create burst ()) in
    List.iter Thread.join ths
  done;
  (* One stats round-trip for the snapshot, then drain. Through the
     retry layer: under an active plan the stats reply itself can be
     dropped or garbled, and this exchange doubles as the
     daemon-still-alive probe. *)
  let stats_reply =
    let s = Client.session ~timeout_s:30.0 ~retry ~seed:(!seed + 977) sock in
    Fun.protect
      ~finally:(fun () -> Client.end_session s)
      (fun () ->
        match Client.call s (Proto.request Proto.Stats) with
        | Ok j -> j
        | Error m -> failwith ("bench serve: daemon unreachable at end: " ^ m))
  in
  let n_ok = Atomic.get ok in
  let sorted = Array.sub lats 0 !requests in
  Array.sort compare sorted;
  let q p =
    if n_ok = 0 then 0.0
    else begin
      (* Unanswered slots hold 0.0 and sort first; quantiles are over
         the answered suffix. *)
      let base = !requests - n_ok in
      sorted.(base + min (n_ok - 1) (int_of_float (p *. float_of_int n_ok)))
    end
  in
  let mean =
    if n_ok = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 sorted /. float_of_int n_ok
  in
  let throughput = float_of_int n_ok /. Float.max 1e-9 wall in
  let stat_int name =
    match Option.bind (Json.member name stats_reply) Json.to_number with
    | Some x -> int_of_float x
    | None -> 0
  in
  let srv_restarts = stat_int "watchdog_restarts" in
  let srv_deadlined = stat_int "deadline_exceeded" in
  Printf.printf
    "serve tier: %d/%d ok in %.2fs (%.0f req/s, %d clients, %d busy + %d \
     transient retries)\n"
    n_ok !requests wall throughput !clients busy_retries transient_retries;
  Printf.printf
    "  latency p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n"
    (q 0.50 *. 1e3) (q 0.90 *. 1e3) (q 0.99 *. 1e3) (q 1.0 *. 1e3);
  if chaos then
    Printf.printf
      "  chaos: %d injected failures resubmitted, %d degraded replies, %d \
       incorrect, %d watchdog restart(s)\n"
      (Atomic.get injected_failures)
      (Atomic.get degraded_replies)
      (Atomic.get incorrect) srv_restarts
  else
    Printf.printf "  overload: %d busy replies in %d round(s) of %d\n"
      (Atomic.get overload_busy) !overload_rounds overload_burst;
  let doc =
    Json.Obj
      [ ("schema", Json.String bench_schema);
        ("generated", Json.String (Clock.stamp ()));
        ("tier", Json.String "serve");
        ("quick", Json.Bool false);
        ("rows", Json.List []);
        ( "serve",
          Json.Obj
            [ ("requests", Json.Int !requests);
              ("clients", Json.Int !clients);
              ("jobs", Json.Int !jobs);
              ("queue_max", Json.Int !queue);
              ("in_process", Json.Bool in_process);
              ("faults", Json.String (Faultplan.to_string faults));
              ("job_budget_s", Json.Float !budget);
              ("ok", Json.Int n_ok);
              ("errors", Json.Int (Atomic.get errs));
              ("incorrect", Json.Int (Atomic.get incorrect));
              ("busy_retries", Json.Int busy_retries);
              ("transient_retries", Json.Int transient_retries);
              ("retries", Json.Int (busy_retries + transient_retries));
              ("giveups", Json.Int giveups);
              ("injected_failures", Json.Int (Atomic.get injected_failures));
              ("degraded_replies", Json.Int (Atomic.get degraded_replies));
              ("deadline_exceeded", Json.Int srv_deadlined);
              ("watchdog_restarts", Json.Int srv_restarts);
              ("audit_failures", Json.Int (Atomic.get audit_failures));
              ("wall_seconds", Json.Float wall);
              ("throughput_rps", Json.Float throughput);
              ( "latency",
                Json.Obj
                  [ ("mean_ms", Json.Float (mean *. 1e3));
                    ("p50_ms", Json.Float (q 0.50 *. 1e3));
                    ("p90_ms", Json.Float (q 0.90 *. 1e3));
                    ("p99_ms", Json.Float (q 0.99 *. 1e3));
                    ("max_ms", Json.Float (q 1.0 *. 1e3)) ] );
              ( "overload",
                Json.Obj
                  [ ("burst", Json.Int overload_burst);
                    ("rounds", Json.Int !overload_rounds);
                    ("busy", Json.Int (Atomic.get overload_busy)) ] );
              ("daemon_stats", stats_reply) ] ) ]
  in
  let path =
    match !out with Some p -> p | None -> fresh_bench_path "serve_"
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path;
  (* A restart is only promised when the watchdog is armed and the
     plan can actually wedge a job past its budget. *)
  let restart_expected =
    chaos && !budget > 0.0
    && List.mem_assoc "delay_job" (Faultplan.injected faults)
  in
  let failed =
    Atomic.get errs > 0
    || Atomic.get incorrect > 0
    || Atomic.get audit_failures > 0
    || n_ok < !requests
    || ((not chaos) && Atomic.get overload_busy = 0)
    || (restart_expected && srv_restarts = 0)
  in
  if failed then begin
    Printf.printf
      "FAIL: errors=%d incorrect=%d audit_failures=%d ok=%d/%d busy=%d \
       restarts=%d\n"
      (Atomic.get errs)
      (Atomic.get incorrect)
      (Atomic.get audit_failures)
      n_ok !requests
      (Atomic.get overload_busy)
      srv_restarts;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: one Test.make per table                   *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let g = Subject.of_network (Iscas_like.c432_like ()) in
  let test_for_table number lib_name =
    let lib = Option.get (Libraries.by_name lib_name) in
    let db = Matchdb.prepare lib in
    Test.make
      ~name:(Printf.sprintf "table%d/dag-map-c432/%s" number lib_name)
      (Staged.stage (fun () -> ignore (Mapper.map Mapper.Dag db g)))
  in
  [ test_for_table 1 "lib2"; test_for_table 2 "44-1"; test_for_table 3 "44-3" ]

let run_bechamel () =
  hr "Bechamel: mapper runtime (one benchmark per table, C432-like)";
  let open Bechamel in
  let open Toolkit in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name wks ->
          match
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Instance.monotonic_clock wks
          with
          | ols -> begin
            match Analyze.OLS.estimates ols with
            | Some [ est ] ->
              Printf.printf "  %-28s %10.3f ms/run\n" name (est /. 1e6)
            | _ -> Printf.printf "  %-28s (no estimate)\n" name
          end)
        results)
    (bechamel_tests ())

(* ------------------------------------------------------------------ *)

let () =
  let quick = Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" in
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "json" then begin
    (* Machine-readable snapshot: `json [quick] [FILE]` or
       `json huge [nodes=N] [FILE]`. *)
    let rest = Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2)) in
    let has_prefix p a =
      String.length a > String.length p
      && String.sub a 0 (String.length p) = p
    in
    let is_opt a =
      a = "quick" || a = "huge" || has_prefix "nodes=" a || has_prefix "jobs=" a
    in
    let out = List.find_opt (fun a -> not (is_opt a)) rest in
    if List.mem "huge" rest then begin
      let kv_int prefix default =
        List.fold_left
          (fun acc a ->
            if has_prefix prefix a then
              match
                int_of_string_opt
                  (String.sub a (String.length prefix)
                     (String.length a - String.length prefix))
              with
              | Some n when n > 0 -> n
              | _ -> failwith ("bench json huge: bad " ^ a)
            else acc)
          default rest
      in
      run_json_huge (kv_int "nodes=" 400_000) (kv_int "jobs=" 4) out
    end
    else run_json (List.mem "quick" rest) out;
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "compare" then begin
    if Array.length Sys.argv < 4 then
      failwith "usage: bench compare NEW.json BASELINE.json";
    run_compare_json Sys.argv.(2) Sys.argv.(3);
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "serve" then begin
    run_serve_bench
      (Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2)));
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "parallel" then begin
    (* Standalone entry for the multicore section (used by CI and for
       quick speedup measurements). *)
    run_parallel_section ();
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "super" then begin
    (* Standalone entry for the supergate section. *)
    run_super_section ();
    exit 0
  end;
  Printf.printf
    "Reproduction harness: Delay-Optimal Technology Mapping by DAG Covering\n\
     (Kukimoto, Brayton, Sawkar - DAC 1998). Circuits and libraries are the\n\
     synthetic stand-ins described in DESIGN.md; compare shapes, not absolute\n\
     numbers.\n";
  List.iter
    (fun (name, g) -> Printf.printf "  %-8s %s\n" name (Subject.stats g))
    (Lazy.force subjects);
  run_table 1 "lib2"
    "Paper Table 1 (lib2.genlib): DAG mapping is consistently faster than\n\
     tree mapping at some area cost; CPU overhead is moderate.";
  run_table 2 "44-1"
    "Paper Table 2 (44-1.genlib, 7 gates): e.g. C6288 125 -> 120, C7552 39\n\
     -> 28. Gains exist even with a minimal library.";
  run_table 3 "44-3"
    "Paper Table 3 (44-3.genlib, 625 gates): the gap widens dramatically,\n\
     e.g. C2670 22 -> 10, C6288 125 -> 42: complex gates are used far more\n\
     effectively by DAG covering.";
  run_figure1 ();
  run_figure2 ();
  run_ablation_match_classes ();
  run_ablation_shapes ();
  run_ablation_area_recovery ();
  run_engine_comparison ();
  run_ablation_cut_budget ();
  run_delay_model_validation ();
  run_decomposition_sensitivity ();
  run_complexity_section ();
  run_architecture_study ();
  run_flowmap_section ();
  run_retime_section ();
  run_parallel_section ();
  run_super_section ();
  if not quick then run_bechamel ();
  Printf.printf "\ndone.\n"
