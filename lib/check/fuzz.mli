(** Differential fuzzing of the mapping flow.

    Generates seeded random networks
    ({!Dagmap_circuits.Generators.random_dag}), maps each one under a
    full configuration matrix — every mapper mode, sequential and
    parallel labeling, match cache on and off, each provided library
    (typically the base library and its supergate augmentation) — and
    runs the three {!Check} auditors on every result. A failing
    (circuit, configuration) pair is shrunk to a minimal network that
    still fails the same configuration, by greedily dropping primary
    outputs and bypassing logic nodes, and can be written out as a
    self-describing BLIF repro file.

    Everything is deterministic for a given {!config.seed}. *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_core

type config = {
  count : int;          (** number of random circuits *)
  seed : int;           (** base seed; circuit [i] derives its own *)
  max_nodes : int;      (** circuit sizes cycle below this bound *)
  libs : (string * Libraries.t) list;
      (** tagged libraries, e.g. [("base", lib); ("super", augmented)] *)
  modes : Mapper.mode list;
  jobs : int list;      (** e.g. [[1; 4]]: sequential and 4 domains *)
  caches : bool list;   (** match cache settings, e.g. [[true; false]] *)
  rounds : int;         (** simulation rounds per functional audit *)
  epsilon : float;      (** delay-audit tolerance *)
  max_failures : int;   (** stop fuzzing after this many failures *)
}

val default_config : Libraries.t -> config
(** 25 circuits from seed 42, up to 60 nodes each, all three modes,
    jobs 1 and 4, cache on/off, over the single given library. *)

type failure = {
  circuit : int;        (** index of the failing random circuit *)
  case_name : string;   (** ["lib/mode/jobs=N/cache"] tag *)
  issues : Check.issue list;  (** audit issues on the shrunk network *)
  network : Network.t;  (** the shrunk failing network *)
  original_nodes : int;
  shrunk_nodes : int;
}

type outcome = {
  circuits : int;       (** circuits generated *)
  cases : int;          (** (circuit, configuration) pairs audited *)
  failures : failure list;
  seconds : float;      (** monotonic wall time of the whole sweep *)
  cases_per_second : float;
      (** audited-cases throughput — the sweep's perf trajectory
          number, reported by [techmap fuzz] and the bench JSON *)
}

val run : ?log:(string -> unit) -> config -> outcome
(** Run the sweep. [log] receives one progress line per circuit and
    per failure (default: silent). *)

val write_repro : string -> failure -> unit
(** Write the shrunk network as a BLIF file, preceded by [#] comment
    lines naming the failing configuration and its audit issues. The
    file re-parses with {!Dagmap_blif.Blif.read_file}. *)
