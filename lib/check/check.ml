open Dagmap_subject
open Dagmap_core
open Dagmap_timing
open Dagmap_sim

type issue =
  | Structural of string
  | Delay_mismatch of {
      output : string;
      predicted : float;
      observed : float;
    }
  | Not_equivalent of Equiv.verdict

let pp_issue ppf = function
  | Structural m -> Format.fprintf ppf "structural: %s" m
  | Delay_mismatch { output; predicted; observed } ->
    Format.fprintf ppf
      "delay: output %s predicted %.6f but mapped netlist arrives at %.6f"
      output predicted observed
  | Not_equivalent v -> Format.fprintf ppf "functional: %a" Equiv.pp_verdict v

let structural nl =
  let issues = ref [] in
  let report fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
  List.iter (fun m -> issues := m :: !issues) (List.rev (Netlist.lint nl));
  (* The cover-level checks below index instances; skip them when the
     basic lint already failed (indices may be unusable). *)
  if !issues = [] then begin
    let n = Array.length nl.Netlist.instances in
    (* One instance per subject node: the cover queue requires each
       needed node exactly once, so a duplicate means the cover
       construction double-instantiated. *)
    let root_of = Hashtbl.create n in
    Array.iter
      (fun inst ->
        (match Hashtbl.find_opt root_of inst.Netlist.subject_root with
         | Some other ->
           report "instances %d and %d both implement subject node %d"
             other inst.Netlist.inst_id inst.Netlist.subject_root
         | None -> ());
        Hashtbl.replace root_of inst.Netlist.subject_root
          inst.Netlist.inst_id)
      nl.Netlist.instances;
    Array.iter
      (fun inst ->
        if
          not
            (Array.exists
               (fun c -> c = inst.Netlist.subject_root)
               inst.Netlist.covers)
        then
          report "instance %d: subject root %d is not among its covered nodes"
            inst.Netlist.inst_id inst.Netlist.subject_root)
      nl.Netlist.instances;
    (* Fanout consistency: every instance feeds another instance or an
       output. The cover pass only instantiates needed nodes, so a
       dangling instance is dead logic it should not have emitted. *)
    let used = Array.make n false in
    let use = function
      | Netlist.D_gate j -> if j >= 0 && j < n then used.(j) <- true
      | Netlist.D_pi _ | Netlist.D_const _ -> ()
    in
    Array.iter (fun inst -> Array.iter use inst.Netlist.inputs)
      nl.Netlist.instances;
    List.iter (fun (_, d) -> use d) nl.Netlist.outputs;
    Array.iteri
      (fun i u ->
        if not u then
          report "instance %d (%s) is dangling: no instance or output uses it"
            i nl.Netlist.instances.(i).Netlist.gate.Dagmap_genlib.Gate.gate_name)
      used;
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (name, _) ->
        if Hashtbl.mem seen name then report "output %s is listed twice" name
        else Hashtbl.replace seen name ())
      nl.Netlist.outputs
  end;
  List.rev_map (fun m -> Structural m) !issues

let delay ?(epsilon = 1e-6) ~predicted nl =
  let report = Sta.analyze nl in
  let observed_of = function
    | Netlist.D_pi _ | Netlist.D_const _ -> 0.0
    | Netlist.D_gate j -> report.Sta.arrival.(j)
  in
  let predicted_tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, a) ->
      if not (Hashtbl.mem predicted_tbl name) then
        Hashtbl.add predicted_tbl name a)
    predicted;
  let issues = ref [] in
  let outputs = Hashtbl.create 16 in
  List.iter
    (fun (name, d) ->
      Hashtbl.replace outputs name ();
      match Hashtbl.find_opt predicted_tbl name with
      | None ->
        issues :=
          Structural
            (Printf.sprintf "delay audit: no predicted arrival for output %s"
               name)
          :: !issues
      | Some p ->
        let o = observed_of d in
        if Float.abs (p -. o) > epsilon then
          issues :=
            Delay_mismatch { output = name; predicted = p; observed = o }
            :: !issues)
    nl.Netlist.outputs;
  List.iter
    (fun (name, _) ->
      if not (Hashtbl.mem outputs name) then
        issues :=
          Structural
            (Printf.sprintf
               "delay audit: predicted arrival for %s, which the netlist \
                does not drive"
               name)
          :: !issues)
    predicted;
  List.rev !issues

let functional ?(rounds = 16) ?seed g nl =
  let n_inputs = List.length (Subject.pi_ids g) in
  let verdict =
    Equiv.compare_sims ~rounds ?seed ~n_inputs
      (fun words -> Simulate.subject g words)
      (fun words -> Simulate.netlist nl words)
  in
  if Equiv.is_equivalent verdict then [] else [ Not_equivalent verdict ]

let audit ?epsilon ?rounds ?seed g ~predicted nl =
  match structural nl with
  | _ :: _ as issues -> issues
  | [] -> delay ?epsilon ~predicted nl @ functional ?rounds ?seed g nl

let audit_result ?epsilon ?rounds ?seed g (r : Mapper.result) =
  audit ?epsilon ?rounds ?seed g
    ~predicted:(Mapper.predicted_arrivals r)
    r.Mapper.netlist
