open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_circuits

type config = {
  count : int;
  seed : int;
  max_nodes : int;
  libs : (string * Libraries.t) list;
  modes : Mapper.mode list;
  jobs : int list;
  caches : bool list;
  rounds : int;
  epsilon : float;
  max_failures : int;
}

let default_config lib =
  { count = 25;
    seed = 42;
    max_nodes = 60;
    libs = [ ("base", lib) ];
    modes = [ Mapper.Tree; Mapper.Dag; Mapper.Dag_extended ];
    jobs = [ 1; 4 ];
    caches = [ true; false ];
    rounds = 6;
    epsilon = 1e-6;
    max_failures = 4 }

type failure = {
  circuit : int;
  case_name : string;
  issues : Check.issue list;
  network : Network.t;
  original_nodes : int;
  shrunk_nodes : int;
}

type outcome = {
  circuits : int;
  cases : int;
  failures : failure list;
  seconds : float;
  cases_per_second : float;
}

type case = {
  lib_tag : string;
  db : Matchdb.t;
  mode : Mapper.mode;
  c_jobs : int;
  c_cache : bool;
}

let case_name c =
  Printf.sprintf "%s/%s/jobs=%d/%s" c.lib_tag (Mapper.mode_name c.mode)
    c.c_jobs
    (if c.c_cache then "cache" else "no-cache")

let cases_of cfg =
  List.concat_map
    (fun (lib_tag, lib) ->
      let db = Matchdb.prepare lib in
      List.concat_map
        (fun mode ->
          List.concat_map
            (fun c_jobs ->
              List.map
                (fun c_cache -> { lib_tag; db; mode; c_jobs; c_cache })
                cfg.caches)
            cfg.jobs)
        cfg.modes)
    cfg.libs

(* Map one network under one configuration and audit the result. Any
   exception out of the flow (Unmappable, a validator failure...) is
   itself a finding — the shrinker must be able to chase it. *)
let issues_of cfg case net =
  match
    let sg = Subject.of_network net in
    let result =
      if case.c_jobs > 1 then
        fst (Parmap.map ~jobs:case.c_jobs ~cache:case.c_cache case.mode case.db sg)
      else Mapper.map ~cache:case.c_cache case.mode case.db sg
    in
    Check.audit_result ~epsilon:cfg.epsilon ~rounds:cfg.rounds sg result
  with
  | issues -> issues
  | exception e ->
    [ Check.Structural
        (Printf.sprintf "mapping raised %s" (Printexc.to_string e)) ]

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* Rebuild [net] without one primary output and/or with one logic node
   bypassed (every use rewired to its first fanin), then
   garbage-collect logic no kept output reaches. All PIs are kept so
   input indexing stays stable. Returns [None] when the transform
   does not apply (last output, non-logic bypass target, latches). *)
let rebuild ?drop_po ?bypass net =
  if Network.latches net <> [] then None
  else
    let bypass_ok =
      match bypass with
      | None -> true
      | Some b ->
        let n = Network.node net b in
        n.Network.kind = Network.Logic && Array.length n.Network.fanins > 0
    in
    let pos =
      List.filter
        (fun (name, _) ->
          match drop_po with Some d -> not (String.equal name d) | None -> true)
        (Network.pos net)
    in
    if (not bypass_ok) || pos = [] then None
    else begin
      let resolve id =
        match bypass with
        | Some b when b = id -> (Network.node net b).Network.fanins.(0)
        | _ -> id
      in
      (* Reachability over the rewired graph. *)
      let reach = Hashtbl.create 64 in
      let stack = Stack.create () in
      List.iter (fun (_, id) -> Stack.push (resolve id) stack) pos;
      while not (Stack.is_empty stack) do
        let id = Stack.pop stack in
        if not (Hashtbl.mem reach id) then begin
          Hashtbl.replace reach id ();
          let n = Network.node net id in
          match n.Network.kind with
          | Network.Logic ->
            Array.iter (fun f -> Stack.push (resolve f) stack) n.Network.fanins
          | Network.Pi | Network.Latch_out -> ()
        end
      done;
      let fresh = Network.create ~name:(Network.name net) () in
      let map = Hashtbl.create 64 in
      List.iter
        (fun id ->
          Hashtbl.replace map id
            (Network.add_pi fresh (Network.node net id).Network.name))
        (Network.pis net);
      List.iter
        (fun id ->
          let n = Network.node net id in
          match n.Network.kind with
          | Network.Pi | Network.Latch_out -> ()
          | Network.Logic ->
            if Hashtbl.mem reach id && bypass <> Some id then begin
              let fanins =
                Array.map
                  (fun f -> Hashtbl.find map (resolve f))
                  n.Network.fanins
              in
              Hashtbl.replace map id
                (Network.add_logic fresh ~name:n.Network.name n.Network.expr
                   fanins)
            end)
        (Network.topological_order net);
      List.iter
        (fun (name, id) ->
          Network.add_po fresh name (Hashtbl.find map (resolve id)))
        pos;
      Some fresh
    end

(* Greedy delta debugging: as long as some single transform (drop one
   output, bypass one logic node) keeps the case failing, apply it
   and restart. The budget bounds the number of re-audits. *)
let shrink ~fails net0 =
  let budget = ref 400 in
  let candidates net =
    List.map (fun (name, _) -> `Drop name) (Network.pos net)
    @ List.filter_map
        (fun id ->
          if (Network.node net id).Network.kind = Network.Logic then
            Some (`Bypass id)
          else None)
        (List.rev (Network.topological_order net))
  in
  let apply net = function
    | `Drop name -> rebuild ~drop_po:name net
    | `Bypass id -> rebuild ~bypass:id net
  in
  let rec go net =
    let rec first = function
      | [] -> net
      | cand :: rest when !budget > 0 -> begin
        decr budget;
        match apply net cand with
        | Some net' when fails net' -> go net'
        | Some _ | None -> first rest
      end
      | _ :: _ -> net
    in
    first (candidates net)
  in
  go net0

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run ?(log = fun (_ : string) -> ()) cfg =
  let t0 = Dagmap_obs.Clock.now () in
  let cases = cases_of cfg in
  let failures = ref [] in
  let total = ref 0 in
  let stop = ref false in
  let i = ref 0 in
  while (not !stop) && !i < cfg.count do
    let idx = !i in
    (* Derived per-circuit parameters: deterministic variety in size
       and interface width. *)
    let seed = cfg.seed + (997 * idx) in
    let inputs = 4 + (idx mod 5) in
    let outputs = 2 + (idx mod 4) in
    let nodes = 8 + (17 * idx mod max 1 cfg.max_nodes) in
    let net = Generators.random_dag ~seed ~inputs ~outputs ~nodes () in
    log
      (Printf.sprintf "circuit %d (seed %d): %s" idx seed (Network.stats net));
    List.iter
      (fun case ->
        if not !stop then begin
          incr total;
          let issues = issues_of cfg case net in
          if issues <> [] then begin
            log
              (Printf.sprintf "circuit %d %s: FAIL (%s) — shrinking" idx
                 (case_name case)
                 (Format.asprintf "%a" Check.pp_issue (List.hd issues)));
            let fails n = issues_of cfg case n <> [] in
            let shrunk = shrink ~fails net in
            failures :=
              { circuit = idx;
                case_name = case_name case;
                issues = issues_of cfg case shrunk;
                network = shrunk;
                original_nodes = Network.num_nodes net;
                shrunk_nodes = Network.num_nodes shrunk }
              :: !failures;
            if List.length !failures >= cfg.max_failures then stop := true
          end
        end)
      cases;
    incr i
  done;
  let seconds = Dagmap_obs.Clock.now () -. t0 in
  { circuits = !i;
    cases = !total;
    failures = List.rev !failures;
    seconds;
    cases_per_second =
      (if seconds > 0.0 then float_of_int !total /. seconds else 0.0) }

let write_repro path f =
  let oc = open_out path in
  Printf.fprintf oc "# techmap fuzz repro: circuit %d, case %s\n" f.circuit
    f.case_name;
  Printf.fprintf oc "# shrunk %d -> %d network nodes\n" f.original_nodes
    f.shrunk_nodes;
  List.iter
    (fun i ->
      Printf.fprintf oc "# issue: %s\n" (Format.asprintf "%a" Check.pp_issue i))
    f.issues;
  output_string oc (Dagmap_blif.Blif.write_network f.network);
  close_out oc
