(** Post-map verification: the mapper's paper-level invariants as
    executable auditors.

    The paper's claim is {e delay optimality of a functionally
    equivalent cover}: after mapping, (1) the netlist must be
    structurally well formed, (2) the label the DP computed for every
    primary output must equal the STA arrival of the mapped netlist
    at that output under the same intrinsic delay model, and (3) the
    netlist must be simulation-equivalent to the subject graph it
    covers. Each auditor checks one of these; {!audit} runs all
    three. Every mapper configuration (mode, jobs, caching,
    supergates) must pass identically — the {!Fuzz} harness sweeps
    that matrix over random circuits. *)

open Dagmap_subject
open Dagmap_core
open Dagmap_sim

type issue =
  | Structural of string
      (** a {!Netlist.lint} violation or cover-level inconsistency *)
  | Delay_mismatch of {
      output : string;
      predicted : float;   (** the mapper's label at the PO driver *)
      observed : float;    (** STA arrival in the mapped netlist *)
    }
  | Not_equivalent of Equiv.verdict
      (** simulation disagreement; never [Equivalent] *)

val pp_issue : Format.formatter -> issue -> unit

val structural : Netlist.t -> issue list
(** Structural lint. Extends {!Netlist.lint} (pin arity, driver
    ranges, acyclicity) with cover-level checks: no two instances
    implement the same subject node, every instance's [subject_root]
    is among its covered nodes, every instance is reachable from some
    output (no dangling logic), and output names are unique. *)

val delay :
  ?epsilon:float ->
  predicted:(string * float) list ->
  Netlist.t ->
  issue list
(** Delay audit: run {!Dagmap_timing.Sta.analyze} on the netlist and
    compare its per-output arrivals against [predicted] (the mapper's
    labels, see {!Mapper.predicted_arrivals}) output-by-output within
    [epsilon] (default [1e-6]) — not just the global worst delay.
    Output-name set differences between the two sides are reported as
    {!Structural}. *)

val functional :
  ?rounds:int -> ?seed:int -> Subject.t -> Netlist.t -> issue list
(** Functional audit: 64-lane random-simulation equivalence of the
    mapped netlist against the subject graph
    ({!Equiv.compare_sims}; [rounds] defaults to 16). *)

val audit :
  ?epsilon:float ->
  ?rounds:int ->
  ?seed:int ->
  Subject.t ->
  predicted:(string * float) list ->
  Netlist.t ->
  issue list
(** All three auditors. When the structural audit fails its issues
    are returned alone — timing and simulation are undefined on a
    malformed netlist (a cycle would hang the simulator). *)

val audit_result :
  ?epsilon:float ->
  ?rounds:int ->
  ?seed:int ->
  Subject.t ->
  Mapper.result ->
  issue list
(** [audit] applied to a mapper result, with [predicted] taken from
    {!Mapper.predicted_arrivals}. *)
