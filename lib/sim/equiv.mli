(** Random-simulation equivalence checking between the stages of the
    mapping flow (network, subject graph, mapped netlist, LUT
    cover). Outputs are compared by name. *)

type verdict =
  | Equivalent
  | Counterexample of {
      output : string;
      inputs : bool array;     (** one value per input, subject PI order *)
    }
  | Output_mismatch of { missing : string list; extra : string list }

val compare_sims :
  ?rounds:int ->
  ?seed:int ->
  n_inputs:int ->
  (int64 array -> (string * int64) list) ->
  (int64 array -> (string * int64) list) ->
  verdict
(** [compare_sims ~n_inputs sim1 sim2] drives both simulators with
    the same random words for [rounds] (default 16) rounds of 64
    assignments each, plus the all-zero and all-one assignments.
    The two simulators must produce the same output-name sets —
    an output present on only one side is reported as
    {!Output_mismatch} ([missing] = outputs of [sim1] absent from
    [sim2], [extra] = outputs of [sim2] absent from [sim1]) — and
    every shared output must agree on every lane. *)

val pp_verdict : Format.formatter -> verdict -> unit

val is_equivalent : verdict -> bool
