type verdict =
  | Equivalent
  | Counterexample of { output : string; inputs : bool array }
  | Output_mismatch of { missing : string list; extra : string list }

let lane_inputs words lane =
  Array.map
    (fun w -> Int64.logand (Int64.shift_right_logical w lane) 1L <> 0L)
    words

let compare_round words r1 r2 =
  let index results =
    let tbl = Hashtbl.create (2 * List.length results + 1) in
    List.iter
      (fun (name, w) ->
        if not (Hashtbl.mem tbl name) then Hashtbl.add tbl name w)
      results;
    tbl
  in
  let tbl1 = index r1 and tbl2 = index r2 in
  (* Missing and extra are computed independently: an extra output in
     [r2] is a mismatch even when every output of [r1] is present. *)
  let missing =
    List.filter_map
      (fun (name, _) -> if Hashtbl.mem tbl2 name then None else Some name)
      r1
  in
  let extra =
    List.filter_map
      (fun (name, _) -> if Hashtbl.mem tbl1 name then None else Some name)
      r2
  in
  if missing <> [] || extra <> [] then
    Some (Output_mismatch { missing; extra })
  else
    let rec check = function
      | [] -> None
      | (name, w1) :: rest ->
        let w2 = Hashtbl.find tbl2 name in
        if Int64.equal w1 w2 then check rest
        else begin
          let diff = Int64.logxor w1 w2 in
          let rec first_lane k =
            if Int64.logand (Int64.shift_right_logical diff k) 1L <> 0L then k
            else first_lane (k + 1)
          in
          let lane = first_lane 0 in
          Some (Counterexample { output = name; inputs = lane_inputs words lane })
        end
    in
    check r1

let compare_sims ?(rounds = 16) ?(seed = 0x5eed) ~n_inputs sim1 sim2 =
  let st = Random.State.make [| seed |] in
  let extremes =
    [ Array.make (max n_inputs 1) 0L; Array.make (max n_inputs 1) (-1L) ]
  in
  let random_round _ = Simulate.random_words st (max n_inputs 1) in
  let all_rounds = extremes @ List.init rounds random_round in
  let rec run = function
    | [] -> Equivalent
    | words :: rest -> begin
      match compare_round words (sim1 words) (sim2 words) with
      | None -> run rest
      | Some verdict -> verdict
    end
  in
  run all_rounds

let pp_verdict ppf = function
  | Equivalent -> Format.fprintf ppf "equivalent"
  | Counterexample { output; inputs } ->
    Format.fprintf ppf "counterexample on %s with inputs [%s]" output
      (String.concat ""
         (Array.to_list (Array.map (fun b -> if b then "1" else "0") inputs)))
  | Output_mismatch { missing; extra } ->
    Format.fprintf ppf "output sets differ: missing=[%s] extra=[%s]"
      (String.concat ";" missing) (String.concat ";" extra)

let is_equivalent = function
  | Equivalent -> true
  | Counterexample _ | Output_mismatch _ -> false
