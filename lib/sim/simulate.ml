open Dagmap_logic
open Dagmap_subject
open Dagmap_core

let num_inputs_network net =
  List.length (Network.pis net) + List.length (Network.latches net)

let rec eval_expr (values : int64 array) (e : Bexpr.t) : int64 =
  match e with
  | Bexpr.Const true -> -1L
  | Bexpr.Const false -> 0L
  | Bexpr.Var i -> values.(i)
  | Bexpr.Not a -> Int64.lognot (eval_expr values a)
  | Bexpr.And (a, b) -> Int64.logand (eval_expr values a) (eval_expr values b)
  | Bexpr.Or (a, b) -> Int64.logor (eval_expr values a) (eval_expr values b)
  | Bexpr.Xor (a, b) -> Int64.logxor (eval_expr values a) (eval_expr values b)

let network net inputs =
  if Array.length inputs < num_inputs_network net then
    invalid_arg "Simulate.network: not enough input words";
  let value = Array.make (Network.num_nodes net) 0L in
  List.iteri (fun k id -> value.(id) <- inputs.(k)) (Network.pis net);
  let n_pis = List.length (Network.pis net) in
  List.iteri
    (fun k l -> value.(l.Network.latch_output) <- inputs.(n_pis + k))
    (Network.latches net);
  List.iter
    (fun id ->
      let n = Network.node net id in
      match n.Network.kind with
      | Network.Pi | Network.Latch_out -> ()
      | Network.Logic ->
        let local = Array.map (fun f -> value.(f)) n.Network.fanins in
        value.(id) <- eval_expr local n.Network.expr)
    (Network.topological_order net);
  List.map (fun (name, id) -> (name, value.(id))) (Network.pos net)
  @ List.mapi
      (fun i l -> (Printf.sprintf "$latch_in%d" i, value.(l.Network.latch_input)))
      (Network.latches net)

let subject g inputs =
  let pis = Subject.pi_ids g in
  if Array.length inputs < List.length pis then
    invalid_arg "Simulate.subject: not enough input words";
  let value = Array.make (Subject.num_nodes g) 0L in
  List.iteri (fun k id -> value.(id) <- inputs.(k)) pis;
  for i = 0 to Subject.num_nodes g - 1 do
    match Subject.kind g i with
    | Subject.Spi -> ()
    | Subject.Sinv x -> value.(i) <- Int64.lognot value.(x)
    | Subject.Snand (x, y) ->
      value.(i) <- Int64.lognot (Int64.logand value.(x) value.(y))
  done;
  List.map (fun o -> (o.Subject.out_name, value.(o.Subject.out_node))) g.Subject.outputs
  @ List.map
      (fun (name, b) -> (name, if b then -1L else 0L))
      g.Subject.const_outputs

(* Word-level evaluation of a gate truth table: select, for each of
   the 64 lanes, the table bit addressed by the lane's input bits. *)
let eval_gate_word func inputs =
  let n = Array.length inputs in
  let out = ref 0L in
  for lane = 0 to 63 do
    let idx = ref 0 in
    for pin = 0 to n - 1 do
      if Int64.logand (Int64.shift_right_logical inputs.(pin) lane) 1L <> 0L
      then idx := !idx lor (1 lsl pin)
    done;
    if Dagmap_logic.Truth.get_bit func !idx then
      out := Int64.logor !out (Int64.shift_left 1L lane)
  done;
  !out

let netlist nl inputs =
  let pis = Subject.pi_ids nl.Netlist.source in
  if Array.length inputs < List.length pis then
    invalid_arg "Simulate.netlist: not enough input words";
  let pi_value = Hashtbl.create 16 in
  List.iteri (fun k id -> Hashtbl.replace pi_value id inputs.(k)) pis;
  let n = Array.length nl.Netlist.instances in
  let value = Array.make n 0L in
  let computed = Array.make n false in
  let driver_value = function
    | Netlist.D_const true -> -1L
    | Netlist.D_const false -> 0L
    | Netlist.D_pi id -> Hashtbl.find pi_value id
    | Netlist.D_gate j -> value.(j)
  in
  (* Instances may be stored in any order; resolve dependencies with
     an explicit stack to stay safe on deep netlists. Popping an
     instance whose fanins are all computed evaluates it; otherwise
     it is re-pushed below its uncomputed fanins. *)
  let stack = Stack.create () in
  let eval_instance i =
    let words = Array.map driver_value nl.Netlist.instances.(i).Netlist.inputs in
    value.(i) <- eval_gate_word nl.Netlist.instances.(i).Netlist.gate.Dagmap_genlib.Gate.func words;
    computed.(i) <- true
  in
  for root = 0 to n - 1 do
    if not computed.(root) then begin
      Stack.push root stack;
      while not (Stack.is_empty stack) do
        let i = Stack.pop stack in
        if not computed.(i) then begin
          let pending = ref false in
          Array.iter
            (function
              | Netlist.D_gate j when not computed.(j) ->
                if not !pending then begin
                  pending := true;
                  Stack.push i stack
                end;
                Stack.push j stack
              | Netlist.D_gate _ | Netlist.D_pi _ | Netlist.D_const _ -> ())
            nl.Netlist.instances.(i).Netlist.inputs;
          if not !pending then eval_instance i
        end
      done
    end
  done;
  List.map (fun (name, d) -> (name, driver_value d)) nl.Netlist.outputs

let random_words st n =
  Array.init n (fun _ ->
      let hi = Int64.of_int (Random.State.bits st) in
      let mid = Int64.of_int (Random.State.bits st) in
      let lo = Int64.of_int (Random.State.bits st) in
      Int64.logxor
        (Int64.shift_left hi 40)
        (Int64.logxor (Int64.shift_left mid 20) lo))
