(** Parameterized combinational circuit generators.

    These provide functionally-verifiable workloads (adders and
    multipliers are tested against machine arithmetic in the test
    suite) and seeded random logic used to build the ISCAS-85-like
    benchmark stand-ins (see {!Iscas_like}). *)

open Dagmap_logic

val ripple_adder : int -> Network.t
(** [ripple_adder n]: inputs [a0..a(n-1)], [b0..b(n-1)], [cin];
    outputs [s0..s(n-1)], [cout]. *)

val carry_lookahead_adder : int -> Network.t
(** Same interface as {!ripple_adder}, 4-bit lookahead blocks. *)

val carry_select_adder : int -> Network.t
(** Same interface as {!ripple_adder}, 4-bit select blocks computing
    both carry polarities (heavier, shallower). *)

val array_multiplier : int -> Network.t
(** [array_multiplier n]: [n*n] array multiplier (AND partial
    products, carry-save rows, ripple final stage); inputs [a*], [b*];
    outputs [p0..p(2n-1)]. The real C6288 is exactly the [n = 16]
    instance of this structure. *)

val kogge_stone_adder : int -> Network.t
(** Parallel-prefix adder (same interface as {!ripple_adder}):
    logarithmic depth with heavy multi-fanout reconvergence — the
    structure where tree covering loses the most to DAG covering. *)

val wallace_multiplier : int -> Network.t
(** [n*n] multiplier with a Wallace-style reduction tree (3:2
    compressors applied level-wise) and a ripple final stage; same
    interface as {!array_multiplier}, logarithmic reduction depth. *)

val barrel_shifter : int -> Network.t
(** [barrel_shifter n] ([n] a power of two): logical left shifter.
    Inputs [x0..x(n-1)] and [s0..s(log n - 1)]; outputs
    [y0..y(n-1)]. Built from [log n] mux stages. *)

val parity : int -> Network.t
(** XOR tree: inputs [x0..x(n-1)], output [par]. *)

val mux_tree : int -> Network.t
(** [mux_tree k]: [2^k] data inputs, [k] selects, one output. *)

val decoder : int -> Network.t
(** [decoder k]: [k] inputs, [2^k] one-hot outputs. *)

val comparator : int -> Network.t
(** [comparator n]: outputs [eq], [lt] ([a < b] unsigned). *)

val alu : int -> Network.t
(** [alu n]: an [n]-bit ALU with a 2-bit opcode: 00 add, 01 and,
    10 or, 11 xor; outputs [r0..r(n-1)], [cout]. *)

val random_dag :
  ?seed:int ->
  ?inputs:int ->
  ?outputs:int ->
  nodes:int ->
  unit ->
  Network.t
(** Seeded random reconvergent logic: each node applies a random
    2-4-input function (AND/OR/NAND/NOR/XOR/MUX/AOI/MAJ mix) to
    earlier signals with a recency bias that yields realistic depth.
    Deterministic for a given seed. *)

val nand_chain : int -> Network.t
(** [nand_chain n]: one PI [x], [n] chained NAND nodes
    ([n_i = NAND(n_(i-1), x)]), one output. Every network node
    survives subject construction (NAND links are structurally
    distinct, unlike an inverter chain, which would cancel), so this
    is the canonical stack-safety / deep-graph scale workload. *)

val synthetic_soc : ?seed:int -> nodes:int -> unit -> Network.t
(** [synthetic_soc ~nodes ()]: a single connected SoC-like flat
    netlist with exactly [nodes] logic nodes — ranks of heterogeneous
    datapath blocks (adder slices, muxes, decoders, comparators,
    parity trees, random glue) wired rank-to-rank with PI and skip
    connections. Depth is [O(ranks)] (at most 24 ranks) independent
    of [nodes], so million-node instances remain shallow enough to
    map and parallelize. Fully determined by [seed] (default 1):
    the same seed yields a byte-identical circuit. *)

val combine : name:string -> Network.t list -> Network.t
(** Disjoint union of several networks into one (inputs and outputs
    prefixed per part to stay unique). Parts must be combinational. *)

val lfsr : int -> Network.t
(** [lfsr n]: a Fibonacci linear-feedback shift register of [n]
    latches (taps at the ends), with an [enable] input and the
    register state exposed as outputs. Sequential. *)

val pipelined_parity : int -> int -> Network.t
(** [pipelined_parity n stages]: an [n]-input XOR tree cut by
    [stages] latch ranks, all placed immediately before the output —
    maximally unbalanced, so min-period retiming has room to improve
    the clock (a retiming showcase). Sequential. *)
