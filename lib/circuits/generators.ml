open Dagmap_logic

(* Common subexpressions used by the arithmetic generators. Variables
   index the fanin array passed alongside. *)
let v = Bexpr.var
let full_sum = Bexpr.(xor2 (xor2 (v 0) (v 1)) (v 2))
let full_carry = Bexpr.(or2 (and2 (v 0) (v 1)) (and2 (v 2) (xor2 (v 0) (v 1))))
let half_sum = Bexpr.(xor2 (v 0) (v 1))
let half_carry = Bexpr.(and2 (v 0) (v 1))

let add_full_adder net a b c =
  let s = Network.add_logic net full_sum [| a; b; c |] in
  let co = Network.add_logic net full_carry [| a; b; c |] in
  (s, co)

let add_half_adder net a b =
  let s = Network.add_logic net half_sum [| a; b |] in
  let co = Network.add_logic net half_carry [| a; b |] in
  (s, co)

let declare_vector net prefix n =
  Array.init n (fun i -> Network.add_pi net (Printf.sprintf "%s%d" prefix i))

let ripple_adder n =
  let net = Network.create ~name:(Printf.sprintf "radd%d" n) () in
  let a = declare_vector net "a" n in
  let b = declare_vector net "b" n in
  let cin = Network.add_pi net "cin" in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let s, co = add_full_adder net a.(i) b.(i) !carry in
    Network.add_po net (Printf.sprintf "s%d" i) s;
    carry := co
  done;
  Network.add_po net "cout" !carry;
  net

(* 4-bit carry-lookahead blocks chained at the block level. *)
let carry_lookahead_adder n =
  let net = Network.create ~name:(Printf.sprintf "cla%d" n) () in
  let a = declare_vector net "a" n in
  let b = declare_vector net "b" n in
  let cin = Network.add_pi net "cin" in
  let g = Array.map2 (fun x y -> Network.add_logic net half_carry [| x; y |]) a b in
  let p = Array.map2 (fun x y -> Network.add_logic net half_sum [| x; y |]) a b in
  let carry = Array.make (n + 1) cin in
  let block_start = ref 0 in
  while !block_start < n do
    let block_end = min (!block_start + 4) n in
    (* Within the block: c(i+1) = g(i) + p(i)g(i-1) + ... + p..p c0. *)
    for i = !block_start to block_end - 1 do
      let terms = ref [] in
      for j = !block_start to i do
        (* term j: g(j) * prod_{k=j+1..i} p(k); as fanin list *)
        let fanins = ref [ g.(j) ] in
        for k = j + 1 to i do
          fanins := p.(k) :: !fanins
        done;
        terms := Array.of_list (List.rev !fanins) :: !terms
      done;
      (* carry-in propagated through the whole block prefix *)
      let fanins = ref [ carry.(!block_start) ] in
      for k = !block_start to i do
        fanins := p.(k) :: !fanins
      done;
      terms := Array.of_list (List.rev !fanins) :: !terms;
      let term_nodes =
        List.map
          (fun fanins ->
            let expr =
              Bexpr.and_list (List.init (Array.length fanins) Bexpr.var)
            in
            Network.add_logic net expr fanins)
          !terms
      in
      let fanins = Array.of_list term_nodes in
      let expr = Bexpr.or_list (List.init (Array.length fanins) Bexpr.var) in
      carry.(i + 1) <- Network.add_logic net expr fanins
    done;
    block_start := block_end
  done;
  for i = 0 to n - 1 do
    let s = Network.add_logic net half_sum [| p.(i); carry.(i) |] in
    Network.add_po net (Printf.sprintf "s%d" i) s
  done;
  Network.add_po net "cout" carry.(n);
  net

let carry_select_adder n =
  let net = Network.create ~name:(Printf.sprintf "csel%d" n) () in
  let a = declare_vector net "a" n in
  let b = declare_vector net "b" n in
  let cin = Network.add_pi net "cin" in
  let mux s x y =
    (* s ? x : y *)
    Network.add_logic net
      Bexpr.(or2 (and2 (v 0) (v 1)) (and2 (not_ (v 0)) (v 2)))
      [| s; x; y |]
  in
  let carry = ref cin in
  let block_start = ref 0 in
  while !block_start < n do
    let block_end = min (!block_start + 4) n in
    (* Two speculative ripple chains, carry-in 0 and 1. *)
    let run fixed_cin =
      let c = ref fixed_cin in
      let sums = ref [] in
      for i = !block_start to block_end - 1 do
        match !c with
        | None ->
          (* constant carry-in for the first stage *)
          let s, co = add_half_adder net a.(i) b.(i) in
          sums := s :: !sums;
          c := Some co
        | Some cn ->
          let s, co = add_full_adder net a.(i) b.(i) cn in
          sums := s :: !sums;
          c := Some co
      done;
      (List.rev !sums, Option.get !c)
    in
    let sums0, cout0 = run None in
    (* carry-in = 1 chain: first stage is a full adder with const 1:
       s = !(a^b)^... — model with explicit logic. *)
    let one_first i =
      let s =
        Network.add_logic net Bexpr.(not_ (xor2 (v 0) (v 1))) [| a.(i); b.(i) |]
      in
      let co = Network.add_logic net Bexpr.(or2 (v 0) (v 1)) [| a.(i); b.(i) |] in
      (s, co)
    in
    let sums1, cout1 =
      let s0, c0 = one_first !block_start in
      let c = ref c0 in
      let sums = ref [ s0 ] in
      for i = !block_start + 1 to block_end - 1 do
        let s, co = add_full_adder net a.(i) b.(i) !c in
        sums := s :: !sums;
        c := !c
        ;
        c := co
      done;
      (List.rev !sums, !c)
    in
    List.iteri
      (fun k (s0, s1) ->
        let s = mux !carry s1 s0 in
        Network.add_po net (Printf.sprintf "s%d" (!block_start + k)) s)
      (List.combine sums0 sums1);
    carry := mux !carry cout1 cout0;
    block_start := block_end
  done;
  Network.add_po net "cout" !carry;
  net

let array_multiplier n =
  let net = Network.create ~name:(Printf.sprintf "mult%d" n) () in
  let a = declare_vector net "a" n in
  let b = declare_vector net "b" n in
  let pp i j =
    Network.add_logic net Bexpr.(and2 (v 0) (v 1)) [| a.(i); b.(j) |]
  in
  (* Carry-save reduction, row by row: row j adds partial products
     a(i)*b(j) into a running (sum, carry) vector. *)
  let sums = Array.init n (fun i -> pp i 0) in
  let sums = ref (Array.to_list sums) in        (* weight i for bit i *)
  let product = ref [] in
  let carries = ref [] in
  for j = 1 to n - 1 do
    (* peel off the lowest sum bit as product bit j-1 *)
    (match !sums with
     | low :: rest ->
       product := low :: !product;
       sums := rest
     | [] -> assert false);
    let row = List.init n (fun i -> pp i j) in
    let prev = Array.of_list !sums in
    let prev_carries = Array.of_list !carries in
    let new_sums = ref [] and new_carries = ref [] in
    List.iteri
      (fun i ppij ->
        let s_in = if i < Array.length prev then Some prev.(i) else None in
        let c_in =
          if i < Array.length prev_carries then Some prev_carries.(i) else None
        in
        match s_in, c_in with
        | Some s, Some c ->
          let s', c' = add_full_adder net ppij s c in
          new_sums := s' :: !new_sums;
          new_carries := c' :: !new_carries
        | Some s, None | None, Some s ->
          let s', c' = add_half_adder net ppij s in
          new_sums := s' :: !new_sums;
          new_carries := c' :: !new_carries
        | None, None ->
          new_sums := ppij :: !new_sums)
      row;
    sums := List.rev !new_sums;
    carries := List.rev !new_carries
  done;
  (* Final carry-propagate stage over remaining sums and carries. *)
  (match !sums with
   | low :: rest ->
     product := low :: !product;
     sums := rest
   | [] -> assert false);
  let final_sums = Array.of_list !sums in
  let final_carries = Array.of_list !carries in
  let carry = ref None in
  for i = 0 to Array.length final_sums - 1 do
    let s = final_sums.(i) in
    let c = if i < Array.length final_carries then Some final_carries.(i) else None in
    let bit, next =
      match c, !carry with
      | None, None -> (s, None)
      | Some x, None | None, Some x ->
        let s', c' = add_half_adder net s x in
        (s', Some c')
      | Some x, Some y ->
        let s', c' = add_full_adder net s x y in
        (s', Some c')
    in
    product := bit :: !product;
    carry := next
  done;
  (match !carry with
   | Some c -> product := c :: !product
   | None ->
     (* width bookkeeping: pad with constant zero product bit *)
     let zero = Network.add_logic net (Bexpr.const false) [||] in
     product := zero :: !product);
  let bits = List.rev !product in
  List.iteri (fun i bit -> Network.add_po net (Printf.sprintf "p%d" i) bit) bits;
  net

let parity n =
  let net = Network.create ~name:(Printf.sprintf "parity%d" n) () in
  let xs = declare_vector net "x" n in
  let rec reduce = function
    | [] -> invalid_arg "parity"
    | [ x ] -> x
    | xs ->
      let rec pair = function
        | [] -> []
        | [ x ] -> [ x ]
        | x :: y :: rest ->
          Network.add_logic net Bexpr.(xor2 (v 0) (v 1)) [| x; y |] :: pair rest
      in
      reduce (pair xs)
  in
  Network.add_po net "par" (reduce (Array.to_list xs));
  net

let mux_tree k =
  let net = Network.create ~name:(Printf.sprintf "mux%d" k) () in
  let data = declare_vector net "d" (1 lsl k) in
  let sel = declare_vector net "s" k in
  let rec build level signals =
    match signals with
    | [ x ] -> x
    | signals ->
      let s = sel.(level) in
      let rec pair = function
        | [] -> []
        | [ x ] -> [ x ]
        | x :: y :: rest ->
          Network.add_logic net
            Bexpr.(or2 (and2 (not_ (v 0)) (v 1)) (and2 (v 0) (v 2)))
            [| s; x; y |]
          :: pair rest
      in
      build (level + 1) (pair signals)
  in
  Network.add_po net "out" (build 0 (Array.to_list data));
  net

let decoder k =
  let net = Network.create ~name:(Printf.sprintf "dec%d" k) () in
  let xs = declare_vector net "x" k in
  for m = 0 to (1 lsl k) - 1 do
    let expr =
      Bexpr.and_list
        (List.init k (fun i ->
             if m land (1 lsl i) <> 0 then v i else Bexpr.not_ (v i)))
    in
    let node = Network.add_logic net expr xs in
    Network.add_po net (Printf.sprintf "y%d" m) node
  done;
  net

let comparator n =
  let net = Network.create ~name:(Printf.sprintf "cmp%d" n) () in
  let a = declare_vector net "a" n in
  let b = declare_vector net "b" n in
  (* eq and lt by MSB-first recursion:
     eq_i over bits [i..n-1]; lt similarly. *)
  let eq = ref None and lt = ref None in
  for i = n - 1 downto 0 do
    let bit_eq =
      Network.add_logic net Bexpr.(not_ (xor2 (v 0) (v 1))) [| a.(i); b.(i) |]
    in
    let bit_lt =
      Network.add_logic net Bexpr.(and2 (not_ (v 0)) (v 1)) [| a.(i); b.(i) |]
    in
    (match !eq, !lt with
     | None, None ->
       eq := Some bit_eq;
       lt := Some bit_lt
     | Some e, Some l ->
       let lt' =
         Network.add_logic net
           Bexpr.(or2 (v 0) (and2 (v 1) (v 2)))
           [| l; e; bit_lt |]
       in
       let eq' = Network.add_logic net Bexpr.(and2 (v 0) (v 1)) [| e; bit_eq |] in
       eq := Some eq';
       lt := Some lt'
     | _ -> assert false)
  done;
  Network.add_po net "eq" (Option.get !eq);
  Network.add_po net "lt" (Option.get !lt);
  net

let alu n =
  let net = Network.create ~name:(Printf.sprintf "alu%d" n) () in
  let a = declare_vector net "a" n in
  let b = declare_vector net "b" n in
  let op0 = Network.add_pi net "op0" in
  let op1 = Network.add_pi net "op1" in
  let carry = ref None in
  for i = 0 to n - 1 do
    let sum, co =
      match !carry with
      | None -> add_half_adder net a.(i) b.(i)
      | Some c -> add_full_adder net a.(i) b.(i) c
    in
    carry := Some co;
    let and_n = Network.add_logic net Bexpr.(and2 (v 0) (v 1)) [| a.(i); b.(i) |] in
    let or_n = Network.add_logic net Bexpr.(or2 (v 0) (v 1)) [| a.(i); b.(i) |] in
    let xor_n = Network.add_logic net Bexpr.(xor2 (v 0) (v 1)) [| a.(i); b.(i) |] in
    (* 4:1 mux on (op1 op0): 00 sum, 01 and, 10 or, 11 xor *)
    let r =
      Network.add_logic net
        Bexpr.(
          or_list
            [ and_list [ not_ (v 0); not_ (v 1); v 2 ];
              and_list [ not_ (v 0); v 1; v 3 ];
              and_list [ v 0; not_ (v 1); v 4 ];
              and_list [ v 0; v 1; v 5 ] ])
        [| op1; op0; sum; and_n; or_n; xor_n |]
    in
    Network.add_po net (Printf.sprintf "r%d" i) r
  done;
  Network.add_po net "cout" (Option.get !carry);
  net

(* ------------------------------------------------------------------ *)
(* Random reconvergent logic                                           *)
(* ------------------------------------------------------------------ *)

let random_function st arity =
  match arity, Random.State.int st 8 with
  | 2, 0 -> Bexpr.(and2 (v 0) (v 1))
  | 2, 1 -> Bexpr.(or2 (v 0) (v 1))
  | 2, 2 -> Bexpr.(not_ (and2 (v 0) (v 1)))
  | 2, 3 -> Bexpr.(not_ (or2 (v 0) (v 1)))
  | 2, 4 | 2, 5 -> Bexpr.(xor2 (v 0) (v 1))
  | 2, _ -> Bexpr.(and2 (not_ (v 0)) (v 1))
  | 3, 0 -> Bexpr.(or2 (and2 (v 0) (v 1)) (v 2))                  (* ao21 *)
  | 3, 1 -> Bexpr.(not_ (or2 (and2 (v 0) (v 1)) (v 2)))          (* aoi21 *)
  | 3, 2 -> Bexpr.(and2 (or2 (v 0) (v 1)) (v 2))                 (* oa21 *)
  | 3, 3 -> Bexpr.(or2 (and2 (v 0) (v 1)) (and2 (v 1) (v 2)))    (* partial maj *)
  | 3, 4 -> full_sum
  | 3, 5 -> full_carry
  | 3, 6 -> Bexpr.(or2 (and2 (v 0) (v 1)) (and2 (not_ (v 0)) (v 2))) (* mux *)
  | 3, _ -> Bexpr.(and_list [ v 0; v 1; v 2 ])
  | 4, 0 -> Bexpr.(or2 (and2 (v 0) (v 1)) (and2 (v 2) (v 3)))    (* ao22 *)
  | 4, 1 -> Bexpr.(not_ (or2 (and2 (v 0) (v 1)) (and2 (v 2) (v 3)))) (* aoi22 *)
  | 4, 2 -> Bexpr.(and2 (or2 (v 0) (v 1)) (or2 (v 2) (v 3)))
  | 4, 3 -> Bexpr.(and_list [ v 0; v 1; v 2; v 3 ])
  | 4, 4 -> Bexpr.(or_list [ v 0; v 1; v 2; v 3 ])
  | 4, 5 -> Bexpr.(not_ (and_list [ v 0; v 1; v 2; v 3 ]))
  | 4, 6 -> Bexpr.(xor2 (xor2 (v 0) (v 1)) (xor2 (v 2) (v 3)))
  | 4, _ -> Bexpr.(or2 (xor2 (v 0) (v 1)) (and2 (v 2) (v 3)))
  | _ -> invalid_arg "random_function"

let random_dag ?(seed = 1) ?(inputs = 32) ?(outputs = 16) ~nodes () =
  let st = Random.State.make [| seed; nodes; inputs |] in
  let net = Network.create ~name:(Printf.sprintf "rand%d_%d" seed nodes) () in
  let pis = declare_vector net "x" inputs in
  let pool = ref (Array.to_list pis) in
  let pool_arr = ref pis in
  let created = ref [] in
  for _ = 1 to nodes do
    let arr = !pool_arr in
    let len = Array.length arr in
    let arity = 2 + Random.State.int st 3 in
    (* Recency bias: half the fanins from the most recent quarter. *)
    let pick () =
      if Random.State.bool st && len > 8 then
        arr.(len - 1 - Random.State.int st (len / 4))
      else arr.(Random.State.int st len)
    in
    let rec distinct_fanins acc k guard =
      if k = 0 || guard > 20 then acc
      else
        let f = pick () in
        if List.mem f acc then distinct_fanins acc k (guard + 1)
        else distinct_fanins (f :: acc) (k - 1) guard
    in
    let fanins = distinct_fanins [] arity 0 in
    let arity = List.length fanins in
    if arity >= 2 then begin
      let expr = random_function st arity in
      let id = Network.add_logic net expr (Array.of_list fanins) in
      created := id :: !created;
      pool := id :: !pool;
      pool_arr := Array.of_list !pool
    end
  done;
  (* Outputs: the most recent signals plus random picks, unique. *)
  let chosen = Hashtbl.create 16 in
  let emit id =
    if not (Hashtbl.mem chosen id) then begin
      Hashtbl.replace chosen id ();
      Network.add_po net (Printf.sprintf "o%d" (Hashtbl.length chosen)) id
    end
  in
  let created_arr = Array.of_list !created in
  let n_created = Array.length created_arr in
  let rec fill k guard =
    if k > 0 && guard < 10 * outputs then begin
      let id =
        if k mod 2 = 0 then created_arr.(Random.State.int st n_created)
        else created_arr.(Random.State.int st (max 1 (n_created / 4)))
      in
      let before = Hashtbl.length chosen in
      emit id;
      fill (if Hashtbl.length chosen > before then k - 1 else k) (guard + 1)
    end
  in
  if n_created > 0 then fill (min outputs n_created) 0;
  net

let nand_chain n =
  (* NAND (not NOT) links: an inverter chain would collapse under the
     subject builder's inverter-pair cancellation, while NAND(prev, x)
     nodes are all structurally distinct — network depth survives into
     the subject/arena, which is what the stack-safety tests need. *)
  let net = Network.create ~name:(Printf.sprintf "chain%d" n) () in
  let x = Network.add_pi net "x" in
  let prev = ref x in
  for _ = 1 to n do
    prev := Network.add_logic net Bexpr.(not_ (and2 (v 0) (v 1))) [| !prev; x |]
  done;
  Network.add_po net "o" !prev;
  net

(* ------------------------------------------------------------------ *)
(* Huge-tier synthetic SoC                                             *)
(* ------------------------------------------------------------------ *)

(* A single connected flat netlist shaped like an SoC datapath region:
   ranks of heterogeneous blocks (adder/multiplier slices, muxes,
   decoders, comparators, parity trees, random glue) whose inputs come
   from the previous rank with occasional PI and long skip
   connections. Rank-local wiring keeps depth O(ranks) no matter how
   many nodes are requested, so million-node instances stay mappable
   and parallelizable; the repeated block shapes give the match cache
   something to hit, like real SoCs do. Exactly [nodes] logic nodes
   are created (glue blocks absorb each rank's remainder), and
   everything is driven by Random.State, so a seed fully determines
   the circuit — the test suite asserts byte-identical BLIF. *)

let soc_ranks nodes = max 1 (min 24 (nodes / 48))

let synthetic_soc ?(seed = 1) ~nodes () =
  if nodes < 1 then invalid_arg "Generators.synthetic_soc";
  let st = Random.State.make [| 0x50C; seed; nodes |] in
  let net = Network.create ~name:(Printf.sprintf "soc%d_%d" seed nodes) () in
  let n_pis = min 512 (max 16 (nodes / 2048)) in
  let pis = declare_vector net "x" n_pis in
  let ranks = soc_ranks nodes in
  let prev_rank = ref pis in
  (* Reservoir of older signals for skip connections. *)
  let older = ref pis in
  let pick () =
    let from arr = arr.(Random.State.int st (Array.length arr)) in
    let r = Random.State.int st 100 in
    if r < 80 then from !prev_rank
    else if r < 92 then from pis
    else from !older
  in
  let logic_nodes () = Network.num_nodes net - n_pis in
  (* Block builders append their outputs to [outs]; each creates a
     statically-known number of logic nodes. *)
  let outs = ref [] in
  let emit id = outs := id :: !outs in
  let blk_add () =
    (* 4-bit ripple slice: 17 nodes, 5 outputs. *)
    let cin = pick () in
    let carry = ref cin in
    for _ = 0 to 3 do
      let s, co = add_full_adder net (pick ()) (pick ()) !carry in
      emit s;
      carry := co
    done;
    emit !carry
  in
  let blk_mux () =
    (* 4:1 mux tree: 3 nodes, 1 output. *)
    let mux a b s =
      Network.add_logic net
        Bexpr.(or2 (and2 (v 2) (v 0)) (and2 (not_ (v 2)) (v 1)))
        [| a; b; s |]
    in
    let m0 = mux (pick ()) (pick ()) (pick ()) in
    let m1 = mux (pick ()) (pick ()) (pick ()) in
    emit (mux m0 m1 (pick ()))
  in
  let blk_parity () =
    (* 8-input XOR tree: 7 nodes, 1 output. *)
    let layer xs =
      let rec go = function
        | a :: b :: rest ->
          Network.add_logic net half_sum [| a; b |] :: go rest
        | rest -> rest
      in
      go xs
    in
    let rec reduce = function
      | [ x ] -> x
      | xs -> reduce (layer xs)
    in
    emit (reduce (List.init 8 (fun _ -> pick ())))
  in
  let blk_decode () =
    (* 3:8 one-hot decoder: 8 nodes, 8 outputs. *)
    let a = pick () and b = pick () and c = pick () in
    for k = 0 to 7 do
      let lit i on = if on then Bexpr.var i else Bexpr.not_ (Bexpr.var i) in
      let expr =
        Bexpr.and_list
          [ lit 0 (k land 1 <> 0); lit 1 (k land 2 <> 0); lit 2 (k land 4 <> 0) ]
      in
      emit (Network.add_logic net expr [| a; b; c |])
    done
  in
  let blk_cmp () =
    (* 4-bit equality + less-than: 11 nodes, 2 outputs. *)
    let picked n =
      let arr = Array.make n pis.(0) in
      for i = 0 to n - 1 do
        arr.(i) <- pick ()
      done;
      arr
    in
    let a = picked 4 in
    let b = picked 4 in
    let eqs =
      Array.map2
        (fun x y -> Network.add_logic net Bexpr.(not_ (xor2 (v 0) (v 1))) [| x; y |])
        a b
    in
    emit
      (Network.add_logic net
         (Bexpr.and_list (List.init 4 Bexpr.var))
         eqs);
    let lt = ref (Network.add_logic net Bexpr.(and2 (not_ (v 0)) (v 1)) [| a.(0); b.(0) |]) in
    for i = 1 to 3 do
      (* lt' = (!a & b) | (a==b) & lt *)
      lt :=
        Network.add_logic net
          Bexpr.(or2 (and2 (not_ (v 0)) (v 1)) (and2 (v 2) (v 3)))
          [| a.(i); b.(i); eqs.(i); !lt |]
    done;
    emit !lt
  in
  let blk_glue count =
    (* Exactly [count] random-function nodes chained loosely. *)
    let recent = ref [] in
    for _ = 1 to count do
      let arity = 2 + Random.State.int st 3 in
      let fanins = Array.make arity pis.(0) in
      for i = 0 to arity - 1 do
        fanins.(i) <-
          (match !recent with
           | r :: _ when i = 0 && Random.State.bool st -> r
           | _ -> pick ())
      done;
      let id = Network.add_logic net (random_function st arity) fanins in
      recent := id :: !recent;
      match !recent with
      | a :: b :: c :: d :: _ -> recent := [ a; b; c; d ]; emit a
      | _ -> emit id
    done
  in
  let spine = ref pis.(0) in
  let per_rank = nodes / ranks in
  for rank = 0 to ranks - 1 do
    outs := [];
    let budget =
      if rank = ranks - 1 then nodes - logic_nodes () else per_rank
    in
    let floor = logic_nodes () in
    (* Guaranteed depth spine: one node chaining through every rank. *)
    if budget > 0 then begin
      spine :=
        Network.add_logic net Bexpr.(xor2 (v 0) (v 1)) [| !spine; pick () |];
      emit !spine
    end;
    let remaining () = budget - (logic_nodes () - floor) in
    while remaining () >= 20 do
      match Random.State.int st 5 with
      | 0 -> blk_add ()
      | 1 -> blk_mux ()
      | 2 -> blk_parity ()
      | 3 -> blk_decode ()
      | _ -> blk_cmp ()
    done;
    let r = remaining () in
    if r > 0 then blk_glue r;
    let rank_outs = Array.of_list (List.rev !outs) in
    if Array.length rank_outs > 0 then begin
      (* Refresh the skip reservoir with a sample of this rank. *)
      let n_sample = min 64 (Array.length rank_outs) in
      let sample = Array.make n_sample rank_outs.(0) in
      for i = 0 to n_sample - 1 do
        sample.(i) <- rank_outs.(Random.State.int st (Array.length rank_outs))
      done;
      older := Array.append (if Array.length !older > 512 then sample else !older) sample;
      prev_rank := rank_outs
    end
  done;
  (* Outputs: the last rank's signals (capped), plus the spine. *)
  let chosen = Hashtbl.create 64 in
  let n_out = ref 0 in
  let emit_po id =
    if not (Hashtbl.mem chosen id) then begin
      Hashtbl.replace chosen id ();
      Network.add_po net (Printf.sprintf "o%d" !n_out) id;
      incr n_out
    end
  in
  emit_po !spine;
  Array.iter (fun id -> if !n_out < 256 then emit_po id) !prev_rank;
  net

let combine ~name parts =
  let net = Network.create ~name () in
  List.iteri
    (fun pi part ->
      let prefix = Printf.sprintf "u%d_" pi in
      let remap = Array.make (Network.num_nodes part) (-1) in
      List.iter
        (fun id ->
          let n = Network.node part id in
          remap.(id) <- Network.add_pi net (prefix ^ n.Network.name))
        (Network.pis part);
      (* Latches in parts are not supported by this combinator. *)
      assert (Network.latches part = []);
      List.iter
        (fun id ->
          let n = Network.node part id in
          match n.Network.kind with
          | Network.Pi | Network.Latch_out -> ()
          | Network.Logic ->
            let fanins = Array.map (fun f -> remap.(f)) n.Network.fanins in
            remap.(id) <-
              Network.add_logic net ~name:(prefix ^ n.Network.name)
                n.Network.expr fanins)
        (Network.topological_order part);
      List.iter
        (fun (po, id) -> Network.add_po net (prefix ^ po) remap.(id))
        (Network.pos part))
    parts;
  net

let lfsr n =
  if n < 3 then invalid_arg "lfsr";
  let net = Network.create ~name:(Printf.sprintf "lfsr%d" n) () in
  let enable = Network.add_pi net "enable" in
  (* State latches form a shift ring with an XOR feedback of the two
     highest taps, gated by enable. *)
  let state =
    Array.init n (fun i ->
        Network.add_latch_output net ~name:(Printf.sprintf "q%d" i) ())
  in
  let feedback =
    Network.add_logic net Bexpr.(xor2 (v 0) (v 1))
      [| state.(n - 1); state.(n - 2) |]
  in
  let next i =
    let src = if i = 0 then feedback else state.(i - 1) in
    (* enable ? src : hold *)
    Network.add_logic net
      Bexpr.(or2 (and2 (v 0) (v 1)) (and2 (not_ (v 0)) (v 2)))
      [| enable; src; state.(i) |]
  in
  Array.iteri
    (fun i q ->
      Network.set_latch_input net ~latch_output:q (next i);
      Network.add_po net (Printf.sprintf "o%d" i) q)
    state;
  net

let pipelined_parity n stages =
  if n < 2 || stages < 1 then invalid_arg "pipelined_parity";
  let net = Network.create ~name:(Printf.sprintf "pparity%d_%d" n stages) () in
  let xs = declare_vector net "x" n in
  let rec reduce = function
    | [] -> invalid_arg "pipelined_parity"
    | [ x ] -> x
    | xs ->
      let rec pair = function
        | [] -> []
        | [ x ] -> [ x ]
        | x :: y :: rest ->
          Network.add_logic net Bexpr.(xor2 (v 0) (v 1)) [| x; y |] :: pair rest
      in
      reduce (pair xs)
  in
  let root = reduce (Array.to_list xs) in
  (* All latch ranks stacked at the output: depth 0 after the last
     rank, full tree depth before the first — retiming spreads them
     back through the tree. *)
  let rec stack src k =
    if k = 0 then src else stack (Network.add_latch net src) (k - 1)
  in
  Network.add_po net "par" (stack root stages);
  net

(* Parallel-prefix (Kogge-Stone) adder: generate/propagate pairs
   combined with the prefix operator (g, p) o (g', p') =
   (g | p & g', p & p'). Every prefix level fans out to the next, so
   the graph is rich in reconvergent multi-fanout — the structure
   where DAG covering shines. *)
let kogge_stone_adder n =
  let net = Network.create ~name:(Printf.sprintf "ks%d" n) () in
  let a = declare_vector net "a" n in
  let b = declare_vector net "b" n in
  let cin = Network.add_pi net "cin" in
  let g0 = Array.map2 (fun x y -> Network.add_logic net half_carry [| x; y |]) a b in
  let p0 = Array.map2 (fun x y -> Network.add_logic net half_sum [| x; y |]) a b in
  (* Prefix combine: g = g_hi | p_hi & g_lo ; p = p_hi & p_lo. *)
  let combine (g_hi, p_hi) (g_lo, p_lo) =
    let g =
      Network.add_logic net
        Bexpr.(or2 (v 0) (and2 (v 1) (v 2)))
        [| g_hi; p_hi; g_lo |]
    in
    let p = Network.add_logic net Bexpr.(and2 (v 0) (v 1)) [| p_hi; p_lo |] in
    (g, p)
  in
  let current = ref (Array.init n (fun i -> (g0.(i), p0.(i)))) in
  let dist = ref 1 in
  while !dist < n do
    let next =
      Array.mapi
        (fun i gp -> if i >= !dist then combine gp !current.(i - !dist) else gp)
        !current
    in
    current := next;
    dist := !dist * 2
  done;
  (* Carry into bit i: prefix(i-1).g | prefix(i-1).p & cin. *)
  let carry_into i =
    if i = 0 then cin
    else
      let g, p = !current.(i - 1) in
      Network.add_logic net
        Bexpr.(or2 (v 0) (and2 (v 1) (v 2)))
        [| g; p; cin |]
  in
  for i = 0 to n - 1 do
    let s = Network.add_logic net half_sum [| p0.(i); carry_into i |] in
    Network.add_po net (Printf.sprintf "s%d" i) s
  done;
  Network.add_po net "cout" (carry_into n);
  net

(* Wallace-style multiplier: all partial products first, then
   level-wise 3:2 compression of each bit column until at most two
   rows remain, then a ripple carry-propagate stage. *)
let wallace_multiplier n =
  let net = Network.create ~name:(Printf.sprintf "wmult%d" n) () in
  let a = declare_vector net "a" n in
  let b = declare_vector net "b" n in
  let width = 2 * n in
  (* columns.(w) = list of bits of weight w awaiting compression *)
  let columns = Array.make width [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let pp =
        Network.add_logic net Bexpr.(and2 (v 0) (v 1)) [| a.(i); b.(j) |]
      in
      columns.(i + j) <- pp :: columns.(i + j)
    done
  done;
  let more_than_two = ref true in
  while !more_than_two do
    more_than_two := false;
    let next = Array.make width [] in
    for w = 0 to width - 1 do
      let rec compress = function
        | x :: y :: z :: rest ->
          let s, c = add_full_adder net x y z in
          next.(w) <- s :: next.(w);
          if w + 1 < width then next.(w + 1) <- c :: next.(w + 1);
          compress rest
        | [ x; y ] when List.length columns.(w) > 2 ->
          (* half-adder only when the column shrinks this level *)
          let s, c = add_half_adder net x y in
          next.(w) <- s :: next.(w);
          if w + 1 < width then next.(w + 1) <- c :: next.(w + 1)
        | rest -> next.(w) <- rest @ next.(w)
      in
      compress columns.(w)
    done;
    Array.blit next 0 columns 0 width;
    Array.iter (fun col -> if List.length col > 2 then more_than_two := true) columns
  done;
  (* Final carry-propagate with a parallel-prefix (Kogge-Stone)
     stage, keeping the whole multiplier at logarithmic depth. *)
  let zero = lazy (Network.add_logic net (Bexpr.const false) [||]) in
  let gp =
    Array.init width (fun w ->
        match columns.(w) with
        | [ x; y ] ->
          (Network.add_logic net half_carry [| x; y |],
           Network.add_logic net half_sum [| x; y |])
        | [ x ] -> (Lazy.force zero, x)
        | [] -> (Lazy.force zero, Lazy.force zero)
        | _ -> assert false)
  in
  let combine (g_hi, p_hi) (g_lo, p_lo) =
    let g =
      Network.add_logic net
        Bexpr.(or2 (v 0) (and2 (v 1) (v 2)))
        [| g_hi; p_hi; g_lo |]
    in
    let p = Network.add_logic net Bexpr.(and2 (v 0) (v 1)) [| p_hi; p_lo |] in
    (g, p)
  in
  let prefix = ref (Array.copy gp) in
  let dist = ref 1 in
  while !dist < width do
    let next =
      Array.mapi
        (fun i x -> if i >= !dist then combine x !prefix.(i - !dist) else x)
        !prefix
    in
    prefix := next;
    dist := !dist * 2
  done;
  for w = 0 to width - 1 do
    let _, p_w = gp.(w) in
    let bit =
      if w = 0 then p_w
      else
        let carry_in, _ = !prefix.(w - 1) in
        Network.add_logic net half_sum [| p_w; carry_in |]
    in
    Network.add_po net (Printf.sprintf "p%d" w) bit
  done;
  net

let barrel_shifter n =
  if n land (n - 1) <> 0 || n < 2 then
    invalid_arg "barrel_shifter: n must be a power of two";
  let net = Network.create ~name:(Printf.sprintf "bshift%d" n) () in
  let xs = declare_vector net "x" n in
  let log_n =
    let rec go k acc = if 1 lsl k >= n then k + acc else go (k + 1) acc in
    go 0 0
  in
  let sel = declare_vector net "s" log_n in
  let stage signals level =
    let shift = 1 lsl level in
    Array.mapi
      (fun i x ->
        (* y_i = sel ? (i >= shift ? x_(i-shift) : 0) : x_i *)
        if i >= shift then
          Network.add_logic net
            Bexpr.(or2 (and2 (not_ (v 0)) (v 1)) (and2 (v 0) (v 2)))
            [| sel.(level); x; signals.(i - shift) |]
        else
          Network.add_logic net
            Bexpr.(and2 (not_ (v 0)) (v 1))
            [| sel.(level); x |])
      signals
  in
  let out = ref xs in
  for level = 0 to log_n - 1 do
    out := stage !out level
  done;
  Array.iteri
    (fun i y -> Network.add_po net (Printf.sprintf "y%d" i) y)
    !out;
  net
