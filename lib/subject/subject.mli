(** Subject graphs: NAND2-INV decompositions of Boolean networks.

    The subject graph is the canonical matching substrate of
    Keutzer-style technology mapping. Nodes are primary inputs,
    two-input NANDs or inverters; construction performs structural
    hashing (identical NANDs are shared) and inverter-pair
    cancellation, and folds constants away. Latch boundaries become
    pseudo-PIs (latch outputs) and pseudo-POs (latch inputs) so the
    combinational core can be mapped, as in the paper's Section 4. *)

open Dagmap_logic

type kind =
  | Spi                 (** primary input or latch output *)
  | Snand of int * int  (** two-input NAND of earlier nodes *)
  | Sinv of int         (** inverter over an earlier node *)

type output = {
  out_name : string;
  out_node : int;       (** subject node driving this output *)
}

type t = private {
  kinds : kind array;          (** indices are topologically ordered *)
  names : string array;        (** PI names; synthesized for internal *)
  outputs : output list;       (** POs, then latch data inputs *)
  const_outputs : (string * bool) list;
      (** outputs whose function folded to a constant *)
  num_pis : int;
  n_latches : int;             (** trailing [n_latches] outputs and PIs
                                   are latch boundaries, in order *)
}

type style =
  | Balanced    (** n-ary AND/OR chains reduced as balanced trees *)
  | Left_skew   (** ((a op b) op c) op d — chains *)
  | Right_skew  (** a op (b op (c op d)) *)

val of_network : ?style:style -> Network.t -> t
(** Decompose every logic node into NAND2-INV form (De Morgan on the
    node expressions, XOR in SOP form). [style] (default {!Balanced})
    chooses how n-ary AND/OR chains in the node expressions are
    re-associated — the paper (§4, discussing Lehman et al.) notes
    that mapping optimality is relative to this arbitrary initial
    choice; the harness measures the sensitivity. Subject PI order is
    the network's PI declaration order followed by latch outputs in
    latch order. *)

val num_nodes : t -> int
val kind : t -> int -> kind
val fanout_counts : t -> int array
(** Fanout per node; each output reference counts as one fanout. *)

val fanins : t -> int -> int list

val depth : t -> int
(** Unit-delay depth (NAND and INV each count 1). *)

val levels : t -> int array

val by_level : t -> int array array
(** Node ids grouped by level, ascending node id within each group;
    [by_level g] has [max-level + 1] groups and every node appears
    exactly once. A node's fanins always live at strictly
    smaller levels, so the groups are the parallelization fronts of
    any topological-order DP (see {!Dagmap_core.Parmap}). *)

val pi_ids : t -> int list
(** Subject ids of the PIs, in order. *)

val eval : t -> bool array -> (string * bool) list
(** Evaluate all outputs under a PI assignment (indexed in PI order);
    includes constant outputs. *)

val stats : t -> string
val to_dot : t -> string

(** Low-level builder, used by tests and by the Figure 1 / Figure 2
    constructions in the benchmark harness. *)
module Builder : sig
  type graph = t
  type t

  val create : unit -> t
  val pi : t -> string -> int
  val nand : t -> int -> int -> int
  (** Structurally hashed (commutative); [nand x x] folds to
      [inv x]. *)

  val inv : t -> int -> int
  (** Cancels inverter pairs. *)

  val raw_nand : t -> int -> int -> int
  val raw_inv : t -> int -> int
  (** Non-hashing, non-cancelling variants: create a fresh node
      unconditionally (for building specific test topologies). *)

  val output : t -> string -> int -> unit
  val const_output : t -> string -> bool -> unit
  val finish : ?n_latches:int -> t -> graph
end
