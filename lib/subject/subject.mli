(** Subject graphs: NAND2-INV decompositions of Boolean networks.

    The subject graph is the canonical matching substrate of
    Keutzer-style technology mapping. Nodes are primary inputs,
    two-input NANDs or inverters; construction performs structural
    hashing (identical NANDs are shared) and inverter-pair
    cancellation, and folds constants away. Latch boundaries become
    pseudo-PIs (latch outputs) and pseudo-POs (latch inputs) so the
    combinational core can be mapped, as in the paper's Section 4. *)

open Dagmap_logic

type kind =
  | Spi                 (** primary input or latch output *)
  | Snand of int * int  (** two-input NAND of earlier nodes *)
  | Sinv of int         (** inverter over an earlier node *)

type output = {
  out_name : string;
  out_node : int;       (** subject node driving this output *)
}

type t = private {
  kinds : kind array;          (** indices are topologically ordered *)
  names : string array;        (** PI names; synthesized for internal *)
  outputs : output list;       (** POs, then latch data inputs *)
  const_outputs : (string * bool) list;
      (** outputs whose function folded to a constant *)
  num_pis : int;
  n_latches : int;             (** trailing [n_latches] outputs and PIs
                                   are latch boundaries, in order *)
}

type style =
  | Balanced    (** n-ary AND/OR chains reduced as balanced trees *)
  | Left_skew   (** ((a op b) op c) op d — chains *)
  | Right_skew  (** a op (b op (c op d)) *)

val of_network : ?style:style -> Network.t -> t
(** Decompose every logic node into NAND2-INV form (De Morgan on the
    node expressions, XOR in SOP form). [style] (default {!Balanced})
    chooses how n-ary AND/OR chains in the node expressions are
    re-associated — the paper (§4, discussing Lehman et al.) notes
    that mapping optimality is relative to this arbitrary initial
    choice; the harness measures the sensitivity. Subject PI order is
    the network's PI declaration order followed by latch outputs in
    latch order. *)

val of_parts :
  kinds:kind array ->
  names:string array ->
  outputs:output list ->
  const_outputs:(string * bool) list ->
  num_pis:int ->
  n_latches:int ->
  t
(** Assemble a subject graph from pre-built flat parts (used by the
    arena conversion boundary in [Dagmap_core.Arena]). Validates the
    topological fanin invariant (every fanin strictly precedes its
    node) and the PI count; raises [Invalid_argument] otherwise. *)

val restyle : style -> Bexpr.t -> Bexpr.t
(** Re-associate n-ary AND/OR chains in an expression per the style;
    exposed so alternate decomposition backends share it. *)

(** Builder operations the De Morgan decomposition needs; implemented
    by {!Builder} and by arena builders. *)
module type BUILD_OPS = sig
  type b

  val pi : b -> string -> int
  val inv : b -> int -> int
  val nand : b -> int -> int -> int
  val output : b -> string -> int -> unit
  val const_output : b -> string -> bool -> unit
end

(** The NAND2-INV decomposition, generic over the node store. Two
    backends driven through [Decompose] with equivalent [BUILD_OPS]
    produce structurally identical graphs — this is the contract the
    arena differential suite locks down. *)
module Decompose (B : BUILD_OPS) : sig
  val run : ?style:style -> B.b -> Network.t -> unit
  (** Decompose [net] into [b]: PIs (declaration order, then latch
      outputs), logic in topological order, then outputs (POs, then
      [$latch_in<i>] pseudo-outputs). The caller finishes the builder
      itself (latch count = [List.length (Network.latches net)]). *)
end

val num_nodes : t -> int
val kind : t -> int -> kind
val fanout_counts : t -> int array
(** Fanout per node; each output reference counts as one fanout. *)

val fanins : t -> int -> int list

val depth : t -> int
(** Unit-delay depth (NAND and INV each count 1). *)

val levels : t -> int array

val by_level : t -> int array array
(** Node ids grouped by level, ascending node id within each group;
    [by_level g] has [max-level + 1] groups and every node appears
    exactly once. A node's fanins always live at strictly
    smaller levels, so the groups are the parallelization fronts of
    any topological-order DP (see {!Dagmap_core.Parmap}). *)

val pi_ids : t -> int list
(** Subject ids of the PIs, in order. *)

val eval : t -> bool array -> (string * bool) list
(** Evaluate all outputs under a PI assignment (indexed in PI order);
    includes constant outputs. *)

val stats : t -> string
val to_dot : t -> string

(** Low-level builder, used by tests and by the Figure 1 / Figure 2
    constructions in the benchmark harness. *)
module Builder : sig
  type graph = t
  type t

  val create : unit -> t
  val pi : t -> string -> int
  val nand : t -> int -> int -> int
  (** Structurally hashed (commutative); [nand x x] folds to
      [inv x]. *)

  val inv : t -> int -> int
  (** Cancels inverter pairs. *)

  val raw_nand : t -> int -> int -> int
  val raw_inv : t -> int -> int
  (** Non-hashing, non-cancelling variants: create a fresh node
      unconditionally (for building specific test topologies). *)

  val output : t -> string -> int -> unit
  val const_output : t -> string -> bool -> unit
  val finish : ?n_latches:int -> t -> graph
end
