open Dagmap_logic

type kind =
  | Spi
  | Snand of int * int
  | Sinv of int

type output = { out_name : string; out_node : int }

type t = {
  kinds : kind array;
  names : string array;
  outputs : output list;
  const_outputs : (string * bool) list;
  num_pis : int;
  n_latches : int;
}

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

module Builder = struct
  type graph = t

  type t = {
    mutable kinds_rev : kind list;
    mutable names_rev : string list;
    mutable count : int;
    mutable pis : int;
    mutable outs_rev : output list;
    mutable consts_rev : (string * bool) list;
    hash : (kind, int) Hashtbl.t;
    by_index : (int, kind) Hashtbl.t;
  }

  let create () =
    { kinds_rev = []; names_rev = []; count = 0; pis = 0; outs_rev = [];
      consts_rev = []; hash = Hashtbl.create 64; by_index = Hashtbl.create 64 }

  let push b k name =
    let id = b.count in
    b.count <- id + 1;
    b.kinds_rev <- k :: b.kinds_rev;
    b.names_rev <- name :: b.names_rev;
    Hashtbl.add b.by_index id k;
    id

  let pi b name =
    b.pis <- b.pis + 1;
    push b Spi name

  let check b i =
    if i < 0 || i >= b.count then invalid_arg "Subject.Builder: bad node id"

  let hashed b k name =
    match Hashtbl.find_opt b.hash k with
    | Some id -> id
    | None ->
      let id = push b k name in
      Hashtbl.add b.hash k id;
      id

  let inv b x =
    check b x;
    match Hashtbl.find b.by_index x with
    | Sinv y -> y
    | Spi | Snand _ -> hashed b (Sinv x) (Printf.sprintf "g%d" b.count)

  (* nand(x, x) = !x: folding it keeps every node matchable under the
     one-to-one (standard) match class, where a NAND with coincident
     fanins could otherwise only match via extended matches. *)
  let nand b x y =
    check b x;
    check b y;
    if x = y then inv b x
    else
      let x, y = if x <= y then (x, y) else (y, x) in
      hashed b (Snand (x, y)) (Printf.sprintf "g%d" b.count)

  let raw_nand b x y =
    check b x;
    check b y;
    push b (Snand (x, y)) (Printf.sprintf "g%d" b.count)

  let raw_inv b x =
    check b x;
    push b (Sinv x) (Printf.sprintf "g%d" b.count)

  let output b name node =
    check b node;
    b.outs_rev <- { out_name = name; out_node = node } :: b.outs_rev

  let const_output b name value = b.consts_rev <- (name, value) :: b.consts_rev

  let finish ?(n_latches = 0) b =
    { kinds = Array.of_list (List.rev b.kinds_rev);
      names = Array.of_list (List.rev b.names_rev);
      outputs = List.rev b.outs_rev;
      const_outputs = List.rev b.consts_rev;
      num_pis = b.pis;
      n_latches }
end

(* ------------------------------------------------------------------ *)
(* Decomposition                                                       *)
(* ------------------------------------------------------------------ *)

type style =
  | Balanced
  | Left_skew
  | Right_skew

(* Re-associate n-ary AND/OR chains per the requested style. The
   expressions reaching us are binary trees; flatten same-operator
   chains and rebuild. *)
let rec restyle style (e : Bexpr.t) : Bexpr.t =
  let rebuild op operands =
    let operands = List.map (restyle style) operands in
    match style, operands with
    | _, [] -> assert false
    | _, [ x ] -> x
    | Balanced, operands ->
      let rec reduce = function
        | [ x ] -> x
        | xs ->
          let rec pair = function
            | [] -> []
            | [ x ] -> [ x ]
            | a :: b :: rest -> op a b :: pair rest
          in
          reduce (pair xs)
      in
      reduce operands
    | Left_skew, first :: rest -> List.fold_left op first rest
    | Right_skew, operands ->
      let rec fold = function
        | [ x ] -> x
        | x :: rest -> op x (fold rest)
        | [] -> assert false
      in
      fold operands
  in
  match e with
  | Bexpr.Const _ | Bexpr.Var _ -> e
  | Bexpr.Not a -> Bexpr.Not (restyle style a)
  | Bexpr.Xor (a, b) -> Bexpr.Xor (restyle style a, restyle style b)
  | Bexpr.And _ ->
    let rec collect = function
      | Bexpr.And (a, b) -> collect a @ collect b
      | e -> [ e ]
    in
    rebuild (fun a b -> Bexpr.And (a, b)) (collect e)
  | Bexpr.Or _ ->
    let rec collect = function
      | Bexpr.Or (a, b) -> collect a @ collect b
      | e -> [ e ]
    in
    rebuild (fun a b -> Bexpr.Or (a, b)) (collect e)

(* The decomposition is generic over the builder so alternate node
   stores (the flat arena in [Dagmap_core.Arena]) reuse the exact same
   De Morgan walk and produce structurally identical subject graphs. *)
module type BUILD_OPS = sig
  type b

  val pi : b -> string -> int
  val inv : b -> int -> int
  val nand : b -> int -> int -> int
  val output : b -> string -> int -> unit
  val const_output : b -> string -> bool -> unit
end

module Decompose (B : BUILD_OPS) = struct
  (* Signals during decomposition: a subject literal or a constant.
     Literals carry a phase so De Morgan transfers inversions to where
     they are absorbed by NAND inputs. *)
  type signal =
    | Sig_const of bool
    | Sig_lit of int * bool   (* node, inverted? *)

  let neg = function
    | Sig_const b -> Sig_const (not b)
    | Sig_lit (n, ph) -> Sig_lit (n, not ph)

  let materialize b = function
    | Sig_const _ -> invalid_arg "Subject: constant feeds a gate"
    | Sig_lit (n, false) -> n
    | Sig_lit (n, true) -> B.inv b n

  (* NAND of two signals with constant folding:
     nand(0, _) = 1;  nand(1, x) = !x. *)
  let sig_nand b x y =
    match x, y with
    | Sig_const false, _ | _, Sig_const false -> Sig_const true
    | Sig_const true, s | s, Sig_const true -> neg s
    | (Sig_lit _ as sx), (Sig_lit _ as sy) ->
      Sig_lit (B.nand b (materialize b sx) (materialize b sy), false)

  let rec build b env complement (e : Bexpr.t) : signal =
    match e with
    | Bexpr.Const c -> Sig_const (c <> complement)
    | Bexpr.Var i ->
      let s = env i in
      if complement then neg s else s
    | Bexpr.Not a -> build b env (not complement) a
    | Bexpr.And (x, y) ->
      let n = sig_nand b (build b env false x) (build b env false y) in
      if complement then n else neg n
    | Bexpr.Or (x, y) ->
      let n = sig_nand b (build b env true x) (build b env true y) in
      if complement then neg n else n
    | Bexpr.Xor (x, y) -> begin
      let sx = build b env false x in
      let sy = build b env false y in
      match sx, sy with
      | Sig_const c, s | s, Sig_const c ->
        let r = if c then neg s else s in
        if complement then neg r else r
      | Sig_lit _, Sig_lit _ ->
        (* SOP form nand(nand(x,!y), nand(!x,y)) — the shape SIS-style
           SOP decomposition produces. (The shared four-NAND form is
           smaller but its internal fanout blocks larger tree-pattern
           matches under the one-to-one match classes.) *)
        let r = sig_nand b (sig_nand b sx (neg sy)) (sig_nand b (neg sx) sy) in
        if complement then neg r else r
    end

  let run ?(style = Balanced) b net =
    let signal_of = Array.make (Network.num_nodes net) (Sig_const false) in
    (* Subject PI order contract: network PIs in declaration order,
       then latch outputs in latch order (consumers such as simulation
       and equivalence checking rely on this). *)
    List.iter
      (fun id ->
        let n = Network.node net id in
        signal_of.(id) <- Sig_lit (B.pi b n.Network.name, false))
      (Network.pis net);
    List.iter
      (fun l ->
        let n = Network.node net l.Network.latch_output in
        signal_of.(l.Network.latch_output) <-
          Sig_lit (B.pi b n.Network.name, false))
      (Network.latches net);
    List.iter
      (fun id ->
        let n = Network.node net id in
        match n.Network.kind with
        | Network.Pi | Network.Latch_out -> ()
        | Network.Logic ->
          let env i = signal_of.(n.Network.fanins.(i)) in
          signal_of.(id) <- build b env false (restyle style n.Network.expr))
      (Network.topological_order net);
    let emit name id =
      match signal_of.(id) with
      | Sig_const c -> B.const_output b name c
      | Sig_lit _ as s -> B.output b name (materialize b s)
    in
    List.iter (fun (po_name, id) -> emit po_name id) (Network.pos net);
    List.iteri
      (fun i l ->
        emit (Printf.sprintf "$latch_in%d" i) l.Network.latch_input)
      (Network.latches net)
end

module Builder_decompose = Decompose (struct
  type b = Builder.t

  let pi = Builder.pi
  let inv = Builder.inv
  let nand = Builder.nand
  let output = Builder.output
  let const_output = Builder.const_output
end)

let of_network ?style net =
  let b = Builder.create () in
  Builder_decompose.run ?style b net;
  Builder.finish ~n_latches:(List.length (Network.latches net)) b

(* Assembly from pre-validated flat parts (the arena conversion
   boundary). Fanins must point at strictly earlier nodes — the same
   topological invariant [Builder] maintains by construction. *)
let of_parts ~kinds ~names ~outputs ~const_outputs ~num_pis ~n_latches =
  let n = Array.length kinds in
  if Array.length names <> n then
    invalid_arg "Subject.of_parts: names/kinds length mismatch";
  let pis = ref 0 in
  Array.iteri
    (fun i k ->
      match k with
      | Spi -> incr pis
      | Sinv x ->
        if x < 0 || x >= i then invalid_arg "Subject.of_parts: fanin order"
      | Snand (x, y) ->
        if x < 0 || x >= i || y < 0 || y >= i then
          invalid_arg "Subject.of_parts: fanin order")
    kinds;
  if !pis <> num_pis then invalid_arg "Subject.of_parts: num_pis mismatch";
  List.iter
    (fun o ->
      if o.out_node < 0 || o.out_node >= n then
        invalid_arg "Subject.of_parts: output node out of range")
    outputs;
  if n_latches < 0 || n_latches > List.length outputs then
    invalid_arg "Subject.of_parts: n_latches out of range";
  { kinds; names; outputs; const_outputs; num_pis; n_latches }

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let num_nodes g = Array.length g.kinds

let kind g i = g.kinds.(i)

let fanins g i =
  match g.kinds.(i) with
  | Spi -> []
  | Sinv x -> [ x ]
  | Snand (x, y) -> [ x; y ]

let fanout_counts g =
  let counts = Array.make (num_nodes g) 0 in
  Array.iter
    (function
      | Spi -> ()
      | Sinv x -> counts.(x) <- counts.(x) + 1
      | Snand (x, y) ->
        counts.(x) <- counts.(x) + 1;
        counts.(y) <- counts.(y) + 1)
    g.kinds;
  List.iter (fun o -> counts.(o.out_node) <- counts.(o.out_node) + 1) g.outputs;
  counts

let levels g =
  let lv = Array.make (num_nodes g) 0 in
  Array.iteri
    (fun i k ->
      lv.(i) <-
        (match k with
         | Spi -> 0
         | Sinv x -> lv.(x) + 1
         | Snand (x, y) -> 1 + max lv.(x) lv.(y)))
    g.kinds;
  lv

let depth g =
  let lv = levels g in
  List.fold_left (fun acc o -> max acc lv.(o.out_node)) 0 g.outputs

let by_level g =
  let lv = levels g in
  let maxl = Array.fold_left max 0 lv in
  let counts = Array.make (maxl + 1) 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) lv;
  let groups = Array.init (maxl + 1) (fun l -> Array.make counts.(l) 0) in
  let fill = Array.make (maxl + 1) 0 in
  Array.iteri
    (fun node l ->
      groups.(l).(fill.(l)) <- node;
      fill.(l) <- fill.(l) + 1)
    lv;
  groups

let pi_ids g =
  let ids = ref [] in
  Array.iteri (fun i k -> if k = Spi then ids := i :: !ids) g.kinds;
  List.rev !ids

let eval g assignment =
  let pis = pi_ids g in
  if Array.length assignment < List.length pis then invalid_arg "Subject.eval";
  let value = Array.make (num_nodes g) false in
  List.iteri (fun order id -> value.(id) <- assignment.(order)) pis;
  Array.iteri
    (fun i k ->
      match k with
      | Spi -> ()
      | Sinv x -> value.(i) <- not value.(x)
      | Snand (x, y) -> value.(i) <- not (value.(x) && value.(y)))
    g.kinds;
  List.map (fun o -> (o.out_name, value.(o.out_node))) g.outputs
  @ g.const_outputs

let stats g =
  let nands = ref 0 and invs = ref 0 in
  Array.iter
    (function
      | Spi -> ()
      | Snand _ -> incr nands
      | Sinv _ -> incr invs)
    g.kinds;
  Printf.sprintf "subject: pi=%d out=%d nand=%d inv=%d depth=%d" g.num_pis
    (List.length g.outputs) !nands !invs (depth g)

let to_dot g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph subject {\n  rankdir=LR;\n";
  Array.iteri
    (fun i k ->
      let label, shape =
        match k with
        | Spi -> (g.names.(i), "triangle")
        | Snand _ -> ("nand", "ellipse")
        | Sinv _ -> ("inv", "diamond")
      in
      Buffer.add_string buf
        (Printf.sprintf "  s%d [label=\"%s:%d\" shape=%s];\n" i label i shape);
      List.iter
        (fun f -> Buffer.add_string buf (Printf.sprintf "  s%d -> s%d;\n" f i))
        (fanins g i))
    g.kinds;
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "  o_%s [label=%S shape=invtriangle];\n  s%d -> o_%s;\n"
           o.out_name o.out_name o.out_node o.out_name))
    g.outputs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
