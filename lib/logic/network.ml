type kind = Pi | Latch_out | Logic

type node = {
  id : int;
  name : string;
  kind : kind;
  mutable expr : Bexpr.t;
  mutable fanins : int array;
}

type latch = {
  mutable latch_input : int;
  latch_output : int;
  latch_init : bool;
}

type t = {
  net_name : string;
  mutable nodes : node array;
  mutable count : int;
  mutable rev_pis : int list;
  mutable rev_pos : (string * int) list;
  mutable rev_latches : latch list;
}

let create ?(name = "network") () =
  { net_name = name; nodes = [||]; count = 0; rev_pis = []; rev_pos = [];
    rev_latches = [] }

let name net = net.net_name

let dummy_node =
  { id = -1; name = ""; kind = Pi; expr = Bexpr.Const false; fanins = [||] }

let grow net =
  if net.count = Array.length net.nodes then begin
    let capacity = max 16 (2 * Array.length net.nodes) in
    let nodes = Array.make capacity dummy_node in
    Array.blit net.nodes 0 nodes 0 net.count;
    net.nodes <- nodes
  end

let add_node net ~name ~kind ~expr ~fanins =
  grow net;
  let id = net.count in
  net.nodes.(id) <- { id; name; kind; expr; fanins };
  net.count <- id + 1;
  id

let node net id =
  if id < 0 || id >= net.count then invalid_arg "Network.node";
  net.nodes.(id)

let num_nodes net = net.count

let add_pi net pi_name =
  let id =
    add_node net ~name:pi_name ~kind:Pi ~expr:(Bexpr.Const false) ~fanins:[||]
  in
  net.rev_pis <- id :: net.rev_pis;
  id

let add_logic net ?name expr fanins =
  Array.iter
    (fun f ->
      if f < 0 || f >= net.count then invalid_arg "Network.add_logic: bad fanin")
    fanins;
  if Bexpr.num_vars expr > Array.length fanins then
    invalid_arg "Network.add_logic: expression references missing fanin";
  let node_name =
    match name with Some n -> n | None -> Printf.sprintf "n%d" net.count
  in
  add_node net ~name:node_name ~kind:Logic ~expr ~fanins

let add_latch_output net ?name ?(init = false) () =
  let out_name =
    match name with Some n -> n | None -> Printf.sprintf "latch%d" net.count
  in
  let out =
    add_node net ~name:out_name ~kind:Latch_out ~expr:(Bexpr.Const false)
      ~fanins:[||]
  in
  net.rev_latches <-
    { latch_input = -1; latch_output = out; latch_init = init }
    :: net.rev_latches;
  out

let set_latch_input net ~latch_output d =
  if d < 0 || d >= net.count then invalid_arg "Network.set_latch_input";
  match
    List.find_opt (fun l -> l.latch_output = latch_output) net.rev_latches
  with
  | None -> invalid_arg "Network.set_latch_input: no such latch"
  | Some l -> l.latch_input <- d

let add_latch net ?name ?(init = false) d =
  if d < 0 || d >= net.count then invalid_arg "Network.add_latch";
  let out = add_latch_output net ?name ~init () in
  set_latch_input net ~latch_output:out d;
  out

let add_po net po_name id =
  if id < 0 || id >= net.count then invalid_arg "Network.add_po";
  net.rev_pos <- (po_name, id) :: net.rev_pos

let pis net = List.rev net.rev_pis
let pos net = List.rev net.rev_pos
let latches net = List.rev net.rev_latches

let fanout_counts net =
  let counts = Array.make net.count 0 in
  for id = 0 to net.count - 1 do
    Array.iter (fun f -> counts.(f) <- counts.(f) + 1) net.nodes.(id).fanins
  done;
  List.iter (fun (_, id) -> counts.(id) <- counts.(id) + 1) (pos net);
  List.iter
    (fun l ->
      if l.latch_input >= 0 then
        counts.(l.latch_input) <- counts.(l.latch_input) + 1)
    (latches net);
  counts

let topological_order net =
  (* DFS with a cycle check via colors, on an explicit stack: the
     native runtime grows fibers on demand, but bytecode and other
     backends overflow on recursion depth, and chains here are
     unbounded (100k-deep networks are tested). Each node is pushed
     as an enter frame and again as an exit frame; grey = entered but
     not exited = on the current DFS path, so popping an enter frame
     for a grey node is exactly the recursive version's back edge. *)
  let white = 0 and grey = 1 and black = 2 in
  let color = Array.make net.count white in
  let order = ref [] in
  let stack = Stack.create () in
  for root = net.count - 1 downto 0 do
    Stack.push (root, false) stack
  done;
  while not (Stack.is_empty stack) do
    let id, exit = Stack.pop stack in
    if exit then begin
      color.(id) <- black;
      order := id :: !order
    end
    else if color.(id) = grey then failwith "Network: combinational cycle"
    else if color.(id) = white then begin
      color.(id) <- grey;
      Stack.push (id, true) stack;
      let fanins = net.nodes.(id).fanins in
      for i = Array.length fanins - 1 downto 0 do
        Stack.push (fanins.(i), false) stack
      done
    end
  done;
  List.rev !order

let level net =
  let levels = Array.make net.count 0 in
  List.iter
    (fun id ->
      let n = net.nodes.(id) in
      match n.kind with
      | Pi | Latch_out -> levels.(id) <- 0
      | Logic ->
        let m = Array.fold_left (fun acc f -> max acc levels.(f)) (-1) n.fanins in
        levels.(id) <- m + 1)
    (topological_order net);
  levels

let depth net =
  let levels = level net in
  let d = ref 0 in
  List.iter (fun (_, id) -> d := max !d levels.(id)) (pos net);
  List.iter
    (fun l -> if l.latch_input >= 0 then d := max !d levels.(l.latch_input))
    (latches net);
  !d

let node_truth net id =
  let n = node net id in
  match n.kind with
  | Pi | Latch_out -> invalid_arg "Network.node_truth: leaf node"
  | Logic -> Bexpr.to_truth (Array.length n.fanins) n.expr

let iter_nodes net f =
  for id = 0 to net.count - 1 do
    f net.nodes.(id)
  done

let is_k_bounded net k =
  let ok = ref true in
  iter_nodes net (fun n ->
      if n.kind = Logic && Array.length n.fanins > k then ok := false);
  !ok

let find_by_name net target =
  let found = ref None in
  (try
     iter_nodes net (fun n ->
         if String.equal n.name target then begin
           found := Some n.id;
           raise Exit
         end)
   with Exit -> ());
  !found

let stats net =
  let n_logic = ref 0 in
  iter_nodes net (fun n -> if n.kind = Logic then incr n_logic);
  Printf.sprintf "%s: pi=%d po=%d logic=%d latch=%d depth=%d"
    net.net_name
    (List.length (pis net))
    (List.length (pos net))
    !n_logic
    (List.length (latches net))
    (depth net)

let to_dot net =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=LR;\n" net.net_name);
  iter_nodes net (fun n ->
      let shape =
        match n.kind with
        | Pi -> "triangle"
        | Latch_out -> "box"
        | Logic -> "ellipse"
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=%S shape=%s];\n" n.id n.name shape);
      Array.iter
        (fun f -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" f n.id))
        n.fanins);
  List.iter
    (fun (po_name, id) ->
      Buffer.add_string buf
        (Printf.sprintf "  out_%s [label=%S shape=invtriangle];\n  n%d -> out_%s;\n"
           po_name po_name id po_name))
    (pos net);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let validate net =
  iter_nodes net (fun n ->
      Array.iter
        (fun f ->
          if f < 0 || f >= net.count then
            failwith (Printf.sprintf "node %d: fanin %d out of range" n.id f))
        n.fanins;
      match n.kind with
      | Logic ->
        if Bexpr.num_vars n.expr > Array.length n.fanins then
          failwith (Printf.sprintf "node %d: expression exceeds fanins" n.id)
      | Pi | Latch_out ->
        if Array.length n.fanins <> 0 then
          failwith (Printf.sprintf "leaf node %d has fanins" n.id));
  List.iter
    (fun (po_name, id) ->
      if id < 0 || id >= net.count then
        failwith (Printf.sprintf "output %s: bad driver" po_name))
    (pos net);
  List.iter
    (fun l ->
      if l.latch_input < 0 then
        failwith
          (Printf.sprintf "latch with output node %d has no data input"
             l.latch_output))
    (latches net);
  ignore (topological_order net)
