(** Truth tables for Boolean functions of up to 16 variables.

    A table over [n] variables stores [2^n] bits packed into 64-bit
    words. Variable 0 is the lowest-order variable: minterm index
    [m] assigns variable [i] the value of bit [i] of [m]. *)

type t

val max_vars : int
(** Largest supported variable count (16). *)

exception Too_many_vars of int
(** Raised by constructors when asked for more than {!max_vars}. *)

val num_vars : t -> int
(** Number of variables of the table's domain. *)

val const : int -> bool -> t
(** [const n b] is the constant-[b] function of [n] variables. *)

val var : int -> int -> t
(** [var n i] is the projection onto variable [i] ([0 <= i < n]). *)

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognand : t -> t -> t
val lognor : t -> t -> t
val logxnor : t -> t -> t
(** Bitwise connectives; both arguments must have the same arity. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val is_const : t -> bool option
(** [Some b] when the function is constant [b], [None] otherwise. *)

val eval : t -> bool array -> bool
(** [eval tt assignment] evaluates the function; [assignment] must
    supply a value for each variable. *)

val get_bit : t -> int -> bool
(** [get_bit tt m] is the function value on minterm [m]. *)

val set_bit : t -> int -> bool -> t
(** Functional update of one minterm. *)

val cofactor : t -> int -> bool -> t
(** [cofactor tt i b] is the cofactor with variable [i] fixed to [b]
    (result keeps the same arity; it no longer depends on [i]). *)

val depends_on : t -> int -> bool
(** Whether the function depends on variable [i]. *)

val support : t -> int list
(** Variables the function actually depends on, ascending. *)

val permute : t -> int array -> t
(** [permute tt perm] renames variables: variable [i] of the input
    becomes variable [perm.(i)] of the result. [perm] must be a
    permutation of [0 .. num_vars - 1]. *)

val expand : t -> int -> int array -> t
(** [expand tt n placement] embeds a [num_vars tt]-variable function
    into an [n]-variable domain, mapping old variable [i] to new
    variable [placement.(i)]. *)

val project : t -> int array -> t
(** [project tt kept] restricts the function to the variables listed
    in [kept] (which must include the full support): the result has
    [Array.length kept] variables, with old variable [kept.(i)]
    becoming new variable [i]. Variables outside [kept] are fixed to
    false (irrelevant when [kept] covers the support). *)

val count_ones : t -> int
(** Number of satisfying minterms. *)

val of_minterms : int -> int list -> t
(** [of_minterms n ms] is the function of [n] variables that is true
    exactly on the minterm indices [ms]. *)

val to_hex : t -> string
(** Hexadecimal dump, most significant word first. *)

val to_bits : t -> int64
(** The packed table of a function of at most 6 variables — the whole
    table fits one word, so flat stores (the arena cut buffers) can
    keep functions off-heap. Bits above [2^nvars] are zero.
    @raise Invalid_argument past 6 variables. *)

val of_bits : int -> int64 -> t
(** [of_bits n bits] rebuilds an [n]-variable function ([n <= 6]) from
    its packed table; inverse of {!to_bits} (stray high bits are
    masked off, so [equal (of_bits n (to_bits t)) t] always holds). *)

val pp : Format.formatter -> t -> unit
