(* Truth tables packed into int64 words. For n <= 6 a single word is
   used and the bits above 2^n are kept zero-extended so that equality
   and hashing can work word-wise. *)

type t = { nvars : int; words : int64 array }

let max_vars = 16

exception Too_many_vars of int

let check_nvars n =
  if n < 0 || n > max_vars then raise (Too_many_vars n)

let num_vars tt = tt.nvars

let word_count n = if n <= 6 then 1 else 1 lsl (n - 6)

(* Mask selecting the valid bits of the last word. *)
let tail_mask n =
  if n >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L

let normalize tt =
  let words = tt.words in
  let last = Array.length words - 1 in
  words.(last) <- Int64.logand words.(last) (tail_mask tt.nvars);
  tt

let const n b =
  check_nvars n;
  let fill = if b then -1L else 0L in
  normalize { nvars = n; words = Array.make (word_count n) fill }

(* Periodic pattern of variable [i] within one 64-bit word, valid for
   i <= 5; e.g. variable 0 is 0xAAAA...A. *)
let var_word i =
  match i with
  | 0 -> 0xAAAAAAAAAAAAAAAAL
  | 1 -> 0xCCCCCCCCCCCCCCCCL
  | 2 -> 0xF0F0F0F0F0F0F0F0L
  | 3 -> 0xFF00FF00FF00FF00L
  | 4 -> 0xFFFF0000FFFF0000L
  | 5 -> 0xFFFFFFFF00000000L
  | _ -> invalid_arg "Truth.var_word"

let var n i =
  check_nvars n;
  if i < 0 || i >= n then invalid_arg "Truth.var";
  let w = word_count n in
  let words =
    if i <= 5 then Array.make w (var_word i)
    else
      (* Word j holds minterms [j*64, (j+1)*64): variable i is set when
         bit (i - 6) of j is set. *)
      Array.init w (fun j -> if j land (1 lsl (i - 6)) <> 0 then -1L else 0L)
  in
  normalize { nvars = n; words }

let map2 op a b =
  if a.nvars <> b.nvars then invalid_arg "Truth: arity mismatch";
  normalize
    { nvars = a.nvars; words = Array.map2 op a.words b.words }

let lognot a =
  normalize { nvars = a.nvars; words = Array.map Int64.lognot a.words }

let logand = map2 Int64.logand
let logor = map2 Int64.logor
let logxor = map2 Int64.logxor
let lognand a b = lognot (logand a b)
let lognor a b = lognot (logor a b)
let logxnor a b = lognot (logxor a b)

let equal a b = a.nvars = b.nvars && a.words = b.words
let compare a b = Stdlib.compare (a.nvars, a.words) (b.nvars, b.words)

let hash a =
  let h = ref (Hashtbl.hash a.nvars) in
  Array.iter
    (fun w -> h := (!h * 1000003) lxor Int64.to_int w lxor (Int64.to_int (Int64.shift_right_logical w 32)))
    a.words;
  !h land max_int

let is_const a =
  let ones = tail_mask a.nvars in
  let last = Array.length a.words - 1 in
  let all p = Array.for_all (fun w -> Int64.equal w p) (Array.sub a.words 0 last) in
  if Int64.equal a.words.(last) 0L && all 0L then Some false
  else if Int64.equal a.words.(last) ones && all (-1L) then Some true
  else None

let get_bit a m =
  if m < 0 || m >= 1 lsl a.nvars then invalid_arg "Truth.get_bit";
  let w = a.words.(m lsr 6) in
  Int64.logand (Int64.shift_right_logical w (m land 63)) 1L <> 0L

let set_bit a m b =
  if m < 0 || m >= 1 lsl a.nvars then invalid_arg "Truth.set_bit";
  let words = Array.copy a.words in
  let mask = Int64.shift_left 1L (m land 63) in
  words.(m lsr 6) <-
    (if b then Int64.logor words.(m lsr 6) mask
     else Int64.logand words.(m lsr 6) (Int64.lognot mask));
  normalize { nvars = a.nvars; words }

let eval a assignment =
  if Array.length assignment < a.nvars then invalid_arg "Truth.eval";
  let m = ref 0 in
  for i = a.nvars - 1 downto 0 do
    m := (!m lsl 1) lor (if assignment.(i) then 1 else 0)
  done;
  if a.nvars = 0 then get_bit a 0 else get_bit a !m

let cofactor a i b =
  if i < 0 || i >= a.nvars then invalid_arg "Truth.cofactor";
  let vi = var a.nvars i in
  if i <= 5 then begin
    let shift = 1 lsl i in
    let words =
      Array.map
        (fun w ->
          if b then
            let hi = Int64.logand w (var_word i) in
            Int64.logor hi (Int64.shift_right_logical hi shift)
          else
            let lo = Int64.logand w (Int64.lognot (var_word i)) in
            Int64.logor lo (Int64.shift_left lo shift))
        a.words
    in
    normalize { nvars = a.nvars; words }
  end
  else begin
    (* Copy whole words from the selected half into both halves. *)
    let stride = 1 lsl (i - 6) in
    let words = Array.copy a.words in
    let n = Array.length words in
    let j = ref 0 in
    while !j < n do
      for kk = 0 to stride - 1 do
        let lo = !j + kk and hi = !j + stride + kk in
        let src = if b then hi else lo in
        words.(lo) <- a.words.(src);
        words.(hi) <- a.words.(src)
      done;
      j := !j + (2 * stride)
    done;
    ignore vi;
    normalize { nvars = a.nvars; words }
  end

let depends_on a i = not (equal (cofactor a i false) (cofactor a i true))

let support a =
  List.filter (depends_on a) (List.init a.nvars (fun i -> i))

let of_minterms n ms =
  check_nvars n;
  List.fold_left (fun acc m -> set_bit acc m true) (const n false) ms

let count_ones a =
  let pop w =
    let c = ref 0 in
    for i = 0 to 63 do
      if Int64.logand (Int64.shift_right_logical w i) 1L <> 0L then incr c
    done;
    !c
  in
  Array.fold_left (fun acc w -> acc + pop w) 0 a.words

let permute a perm =
  if Array.length perm <> a.nvars then invalid_arg "Truth.permute";
  let n = a.nvars in
  let result = ref (const n false) in
  for m = 0 to (1 lsl n) - 1 do
    if get_bit a m then begin
      let m' = ref 0 in
      for i = 0 to n - 1 do
        if m land (1 lsl i) <> 0 then m' := !m' lor (1 lsl perm.(i))
      done;
      result := set_bit !result !m' true
    end
  done;
  !result

let expand a n placement =
  check_nvars n;
  if Array.length placement <> a.nvars then invalid_arg "Truth.expand";
  (* Build by substitution: evaluate the function with each old
     variable replaced by the projection of its new slot. *)
  let rec go i acc_vars =
    if i = a.nvars then acc_vars
    else go (i + 1) (var n placement.(i) :: acc_vars)
  in
  let vars = Array.of_list (List.rev (go 0 [])) in
  (* Shannon-style composition over minterms of the small function. *)
  let result = ref (const n false) in
  for m = 0 to (1 lsl a.nvars) - 1 do
    if get_bit a m then begin
      let cube = ref (const n true) in
      for i = 0 to a.nvars - 1 do
        let lit = if m land (1 lsl i) <> 0 then vars.(i) else lognot vars.(i) in
        cube := logand !cube lit
      done;
      result := logor !result !cube
    end
  done;
  !result

let project a kept =
  let s = Array.length kept in
  check_nvars s;
  let result = ref (const s false) in
  for m = 0 to (1 lsl s) - 1 do
    let big = ref 0 in
    Array.iteri
      (fun i v -> if m land (1 lsl i) <> 0 then big := !big lor (1 lsl v))
      kept;
    if get_bit a !big then result := set_bit !result m true
  done;
  !result

let to_bits a =
  if a.nvars > 6 then invalid_arg "Truth.to_bits: more than 6 variables";
  a.words.(0)

let of_bits n bits =
  check_nvars n;
  if n > 6 then invalid_arg "Truth.of_bits: more than 6 variables";
  normalize { nvars = n; words = [| bits |] }

let to_hex a =
  let buf = Buffer.create (Array.length a.words * 16) in
  for j = Array.length a.words - 1 downto 0 do
    Buffer.add_string buf (Printf.sprintf "%016Lx" a.words.(j))
  done;
  Buffer.contents buf

let pp ppf a = Format.fprintf ppf "%d'h%s" (1 lsl a.nvars) (to_hex a)
