(** Priority-cut mapping on the flat {!Arena} — the huge-tier cut
    engine.

    Per-node cut sets live in preallocated flat buffers (leaves in an
    int Bigarray slice per node, functions as packed truth-table
    words, widths as bytes), written once by the labeling sweep and
    read only by strictly higher levels. The sweep runs level by
    level over the dense {!Arena.level_ranges} slices and fans wide
    levels across a {!Parmap} domain pool with the shared
    work-stealing protocol; each node is evaluated by the same
    {!Cut_mapper.eval_node} kernel as the boxed mapper.

    Determinism: labels, stored cut sets, per-node choices, the
    netlist and [matches_evaluated] are {e bit-identical} to
    [Cut_mapper.map] — and across all job counts — because each
    node's evaluation is a pure function of its fanins' stored cuts
    and lower-level labels, and the flat encoding round-trips cuts
    exactly. The test suite asserts the three-way parity
    (boxed / arena sequential / arena parallel). *)

open Dagmap_subject
open Dagmap_core

val map :
  ?jobs:int ->
  ?k:int ->
  ?priority:int ->
  ?pi_arrival:(int -> float) ->
  ?subject:Subject.t ->
  Boolean_match.t ->
  Arena.t ->
  Cut_mapper.result * Parmap.par_stats
(** [map db a] labels the arena and covers backward from the outputs.
    Defaults match {!Cut_mapper.map} ([k] = 5 clamped to the
    library's widest gate, [priority] = 50, [pi_arrival] constant
    0.0); [jobs] defaults to 1 (sequential on the calling domain).
    [subject] avoids a redundant {!Arena.to_subject} for the cover
    when the caller already holds the boxed view; it must describe
    the same graph. Raises {!Mapper.Unmappable} exactly when the
    sequential mapper would. *)
