(** Priority k-feasible cut enumeration with cut functions.

    This is the modern (ABC-style) alternative substrate to pattern
    matching: instead of matching library structure against the
    subject graph, enumerate for every node a bounded set of
    k-feasible cuts together with the Boolean function of the node in
    terms of the cut leaves, and let a Boolean matcher find gates.

    Cuts are shrunk to their true support and deduplicated; each
    node's list always contains its trivial cut (the node itself, for
    use by its fanouts) and always retains the direct-fanin cut, so a
    downstream mapper can rely on NAND2/INV fallbacks. *)

open Dagmap_logic
open Dagmap_subject

type cut = {
  leaves : int array;   (** sorted subject node ids *)
  func : Truth.t;       (** node function over [leaves] *)
  depth : int;          (** max unit level among the leaves *)
}

val is_trivial : cut -> bool
(** The singleton cut of the node itself. *)

val enumerate : ?k:int -> ?priority:int -> Subject.t -> cut list array
(** [enumerate g] computes, for every node, its trivial cut plus up
    to [priority] (default 8) non-trivial cuts of at most [k]
    (default 5) leaves, best-first by (leaf depth, size). [k] must be
    between 2 and 6. *)

val trivial : levels:int array -> int -> cut
(** The singleton cut of a node ([levels] = [Subject.levels]). *)

val merged_for_node :
  k:int -> levels:int array -> Subject.t -> int -> cut list array -> cut list
(** All (unpruned, deduplicated, support-shrunk) k-feasible cuts of a
    non-PI node obtained by merging its fanins' stored cut lists —
    the building block mappers use to interleave enumeration with
    labeling so they can prune by arrival rather than by level. *)

val merged_generic :
  k:int ->
  int array ->
  (Truth.t array -> Truth.t) ->
  cut list list ->
  cut list
(** [merged_generic ~k levels combine fanin_cuts] is
    {!merged_for_node} without the boxed subject: merge one or two
    fanins' cut lists through the node operator [combine]. The result
    order is a deterministic function of the input lists alone, which
    is what lets the arena enumerator reproduce the boxed mapper's
    cut sets bit-for-bit. *)

val keep :
  priority:int ->
  rank:(cut -> float * int) ->
  fanins:int list ->
  cut list ->
  cut list
(** Keep the [priority] best cuts by the given rank (ascending),
    always retaining the direct-fanin cut via {!retain_fallback}. *)

val retain_fallback :
  fanins:int list ->
  leaves_of:('a -> int array) ->
  all:'a list ->
  'a list ->
  'a list
(** [retain_fallback ~fanins ~leaves_of ~all kept] enforces the
    fallback invariant every cut-set consumer relies on: if [kept]
    lacks the direct-fanin cut (leaves = the sorted distinct fanins),
    append it from [all] — or, when support shrinking ate it, its
    shrunk descendant (a strict subset of the fanin leaves). A mere
    subset-of-fanins cut in [kept] (e.g. a single trivial fanin cut)
    does {e not} satisfy the invariant. Shared by {!keep} and the
    boxed/arena cut mappers so the retention rule cannot drift. *)

val cut_cone : Subject.t -> int -> cut -> int list
(** Subject nodes strictly inside the cut (between leaves and root,
    root included). *)

val check : ?rounds:int -> Subject.t -> int -> cut -> bool
(** Validate a cut in circuit: over random primary-input vectors
    (default 16 rounds of 64), the node's simulated value always
    equals [func] applied to the leaves' simulated values. Note the
    composed function is only guaranteed on {e feasible} leaf
    valuations — leaves can be logically correlated (e.g. a signal
    and its inverse), in which case the table's value on infeasible
    assignments is an artifact of the composition, exactly as in
    conventional cut-based mappers. Mapping correctness only needs
    the feasible ones, which is what this checks. *)
