open Dagmap_logic
open Dagmap_subject

type cut = {
  leaves : int array;
  func : Truth.t;
  depth : int;
}

let is_trivial c = Array.length c.leaves = 1 && Truth.equal c.func (Truth.var 1 0)

(* Sorted-array union; None if the union exceeds [k]. *)
let union_leaves k a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let rec go i j n =
    if n > k then None
    else if i = la && j = lb then Some (Array.sub out 0 n)
    else if i = la then begin
      out.(n) <- b.(j);
      go i (j + 1) (n + 1)
    end
    else if j = lb then begin
      out.(n) <- a.(i);
      go (i + 1) j (n + 1)
    end
    else if a.(i) = b.(j) then begin
      out.(n) <- a.(i);
      go (i + 1) (j + 1) (n + 1)
    end
    else if a.(i) < b.(j) then begin
      out.(n) <- a.(i);
      go (i + 1) j (n + 1)
    end
    else begin
      out.(n) <- b.(j);
      go i (j + 1) (n + 1)
    end
  in
  go 0 0 0

(* Position of each element of [sub] within [super] (both sorted). *)
let placement sub super =
  Array.map
    (fun x ->
      let rec find i = if super.(i) = x then i else find (i + 1) in
      find 0)
    sub

(* Shrink a cut to the function's true support. *)
let shrink leaves func depth_of =
  let support = Truth.support func in
  if List.length support = Array.length leaves then
    (leaves, func)
  else begin
    let kept = Array.of_list support in
    let leaves' = Array.map (fun i -> leaves.(i)) kept in
    let func' = Truth.project func kept in
    ignore depth_of;
    (leaves', func')
  end

let cut_depth levels leaves =
  Array.fold_left (fun acc l -> max acc levels.(l)) 0 leaves

(* The fallback-retention invariant, stated once for every consumer
   (the level-synchronous enumerator below, the boxed cut mapper, the
   arena cut enumerator): after priority pruning, the kept list must
   still contain the direct-fanin cut — exactly when present, else
   its support-shrunk descendant (redundant nodes can shrink the
   fanin cut, and a subset-of-fanins cut that is {e not} derived from
   the fanin merge, e.g. a lone trivial fanin cut, does not satisfy
   the invariant). [leaves_of] projects a list element to its cut
   leaves so mappers can retain (cut, score) pairs without
   repackaging. *)
let retain_fallback ~fanins ~leaves_of ~all kept =
  let fanin_leaves = Array.of_list (List.sort_uniq compare fanins) in
  let is_fanin_derived leaves =
    (* the cut obtained from the trivial fanin cuts, possibly shrunk *)
    Array.for_all (fun l -> Array.mem l fanin_leaves) leaves
    && Array.length leaves <= Array.length fanin_leaves
    && (leaves = fanin_leaves || Array.length leaves < Array.length fanin_leaves)
  in
  if List.exists (fun c -> leaves_of c = fanin_leaves) kept then kept
  else
    match List.filter (fun c -> leaves_of c = fanin_leaves) all with
    | [] ->
      (* the fanin cut shrank; keep its shrunk descendant *)
      (match List.filter (fun c -> is_fanin_derived (leaves_of c)) all with
       | [] -> kept
       | shrunk -> kept @ [ List.hd shrunk ])
    | fanin_cuts -> kept @ [ List.hd fanin_cuts ]

(* Priority selection under a caller-supplied rank; the direct-fanin
   cut is always retained as the mapper's fallback. *)
let keep ~priority ~rank ~fanins merged =
  let sorted =
    List.sort (fun a b -> compare (rank a) (rank b)) merged
  in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | c :: rest -> c :: take (n - 1) rest
  in
  let kept = take priority sorted in
  retain_fallback ~fanins ~leaves_of:(fun c -> c.leaves) ~all:merged kept

let select ~priority ~fanins merged =
  keep ~priority
    ~rank:(fun c -> (float_of_int c.depth, Array.length c.leaves))
    ~fanins merged

let trivial ~levels node =
  { leaves = [| node |]; func = Truth.var 1 0; depth = levels.(node) }

(* Merge the cut lists of the fanins through the node's operator. *)
let merged_generic ~k levels combine fanin_cuts =
  let mk leaves func =
    let leaves, func = shrink leaves func levels in
    { leaves; func; depth = cut_depth levels leaves }
  in
  let results = Hashtbl.create 32 in
  let add c =
    let key = Array.to_list c.leaves in
    if not (Hashtbl.mem results key) then Hashtbl.add results key c
  in
  (match fanin_cuts with
   | [ cx ] ->
     List.iter
       (fun (c : cut) -> add (mk c.leaves (combine [| c.func |])))
       cx
   | [ cx; cy ] ->
     List.iter
       (fun (c1 : cut) ->
         List.iter
           (fun (c2 : cut) ->
             match union_leaves k c1.leaves c2.leaves with
             | None -> ()
             | Some leaves ->
               let w = Array.length leaves in
               let f1 = Truth.expand c1.func w (placement c1.leaves leaves) in
               let f2 = Truth.expand c2.func w (placement c2.leaves leaves) in
               add (mk leaves (combine [| f1; f2 |])))
           cy)
       cx
   | _ -> invalid_arg "Cuts: arity");
  Hashtbl.fold (fun _ c acc -> c :: acc) results []

let merged_for_node ~k ~levels g node stored =
  match Subject.kind g node with
  | Spi -> invalid_arg "Cuts.merged_for_node: PI"
  | Sinv x ->
    merged_generic ~k levels (fun fs -> Truth.lognot fs.(0)) [ stored.(x) ]
  | Snand (x, y) ->
    merged_generic ~k levels
      (fun fs -> Truth.lognand fs.(0) fs.(1))
      [ stored.(x); stored.(y) ]

let enumerate ?(k = 5) ?(priority = 8) g =
  if k < 2 || k > 6 then invalid_arg "Cuts.enumerate: k must be in 2..6";
  let n = Subject.num_nodes g in
  let levels = Subject.levels g in
  let cuts = Array.make n [] in
  for node = 0 to n - 1 do
    match Subject.kind g node with
    | Spi -> cuts.(node) <- [ trivial ~levels node ]
    | Sinv x ->
      let merged = merged_for_node ~k ~levels g node cuts in
      cuts.(node) <-
        select ~priority ~fanins:[ x ] merged @ [ trivial ~levels node ]
    | Snand (x, y) ->
      let merged = merged_for_node ~k ~levels g node cuts in
      cuts.(node) <-
        select ~priority ~fanins:[ x; y ] merged @ [ trivial ~levels node ]
  done;
  cuts

let cut_cone g node c =
  let leaf = Hashtbl.create 8 in
  Array.iter (fun l -> Hashtbl.replace leaf l ()) c.leaves;
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec visit u =
    if (not (Hashtbl.mem leaf u)) && not (Hashtbl.mem seen u) then begin
      Hashtbl.replace seen u ();
      List.iter visit (Subject.fanins g u);
      acc := u :: !acc
    end
  in
  visit node;
  !acc

let check ?(rounds = 16) g node c =
  let pis = Subject.pi_ids g in
  let n_pi = List.length pis in
  let st = Random.State.make [| 0xc07; node |] in
  let ok = ref true in
  let one_round words =
    (* Word-parallel subject simulation. *)
    let value = Array.make (Subject.num_nodes g) 0L in
    List.iteri (fun i id -> value.(id) <- words.(i)) pis;
    for u = 0 to Subject.num_nodes g - 1 do
      match Subject.kind g u with
      | Subject.Spi -> ()
      | Subject.Sinv x -> value.(u) <- Int64.lognot value.(x)
      | Subject.Snand (x, y) ->
        value.(u) <- Int64.lognot (Int64.logand value.(x) value.(y))
    done;
    for lane = 0 to 63 do
      let bit w = Int64.logand (Int64.shift_right_logical w lane) 1L = 1L in
      let leaf_values = Array.map (fun l -> bit value.(l)) c.leaves in
      if Truth.eval c.func leaf_values <> bit value.(node) then ok := false
    done
  in
  one_round (Array.make (max n_pi 1) 0L);
  one_round (Array.make (max n_pi 1) (-1L));
  for _ = 1 to rounds do
    one_round
      (Array.init (max n_pi 1) (fun _ ->
           Int64.logxor
             (Int64.shift_left (Int64.of_int (Random.State.bits st)) 40)
             (Int64.logxor
                (Int64.shift_left (Int64.of_int (Random.State.bits st)) 20)
                (Int64.of_int (Random.State.bits st)))))
  done;
  !ok
