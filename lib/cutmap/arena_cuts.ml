open Dagmap_logic
open Dagmap_obs
open Dagmap_core

(* Flat-arena priority-cut enumeration and labeling.

   The cut store is three preallocated flat buffers indexed by slot
   [node * slot_cap + i] (slot_cap = priority + 2: up to [priority]
   kept cuts, one appended fallback, one trivial cut):

     leaves : int Bigarray, [k] ints per slot (cut leaves, sorted)
     funcs  : int64 Bigarray, one word per slot (Truth.to_bits; cut
              width <= 6 so one word always suffices)
     widths : Bytes, one byte per slot (leaf count, 0 for a cut that
              shrank to a constant)
     counts : cuts stored per node

   A node's slots are written by exactly one worker and read only by
   strictly higher levels (after the level barrier), so the sweep
   parallelizes over the dense {!Arena.level_ranges} slices through
   the same work-stealing protocol as {!Parmap.label_arena}. Each
   node's evaluation is {!Cut_mapper.eval_node} on the reconstructed
   fanin cut lists — a pure function of lower-level state, and
   [Truth.of_bits w (Truth.to_bits f)] is exact — so labels, cut
   sets, choices and netlist are bit-identical to the sequential
   {!Cut_mapper.map} for every job count. *)

let unmappable node =
  Mapper.Unmappable
    { node;
      description =
        Printf.sprintf "no Boolean match for any cut of subject node %d" node }

let map ?(jobs = 1) ?(k = 5) ?(priority = 50) ?(pi_arrival = fun _ -> 0.0)
    ?subject db a =
  let jobs = max 1 jobs in
  (* Same clamp as [Cut_mapper.map]: cuts wider than the widest
     library gate can never match (and the widest gate has <= 6 pins,
     so every stored function fits one truth-table word). *)
  let k = max 2 (min k (Boolean_match.max_arity db)) in
  let n = Arena.num_nodes a in
  let levels = Arena.levels a in
  let order, starts = Arena.level_ranges a in
  let num_levels = Array.length starts - 1 in
  let slot_cap = priority + 2 in
  let leaves =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout
      (max 1 (n * slot_cap * k))
  in
  let funcs =
    Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout
      (max 1 (n * slot_cap))
  in
  let widths = Bytes.make (max 1 (n * slot_cap)) '\000' in
  let counts = Array.make (max 1 n) 0 in
  let labels = Array.make (max 1 n) 0.0 in
  let chosen : Cut_mapper.choice option array = Array.make (max 1 n) None in
  let const_node : bool option array = Array.make (max 1 n) None in
  let evaluated = Array.make jobs 0 in
  let matched = Array.make jobs 0 in
  let store_node node cuts =
    let base = node * slot_cap in
    let ct = ref 0 in
    List.iter
      (fun (c : Cuts.cut) ->
        if !ct >= slot_cap then
          invalid_arg "Arena_cuts: cut list exceeds slot capacity";
        let s = base + !ct in
        let w = Array.length c.Cuts.leaves in
        Bytes.unsafe_set widths s (Char.unsafe_chr w);
        Bigarray.Array1.unsafe_set funcs s (Truth.to_bits c.Cuts.func);
        let lbase = s * k in
        for j = 0 to w - 1 do
          Bigarray.Array1.unsafe_set leaves (lbase + j) c.Cuts.leaves.(j)
        done;
        incr ct)
      cuts;
    counts.(node) <- !ct
  in
  (* Rebuild a node's stored cut list in stored order; depths are
     recomputed from [levels] exactly as the boxed enumerator computed
     them, and [Truth.of_bits] restores the normalized table. *)
  let stored_of x =
    let base = x * slot_cap in
    let rec build i acc =
      if i < 0 then acc
      else
        let s = base + i in
        let w = Char.code (Bytes.unsafe_get widths s) in
        let lbase = s * k in
        let lv =
          Array.init w (fun j -> Bigarray.Array1.unsafe_get leaves (lbase + j))
        in
        let func = Truth.of_bits w (Bigarray.Array1.unsafe_get funcs s) in
        let depth = Array.fold_left (fun acc l -> max acc levels.(l)) 0 lv in
        build (i - 1) ({ Cuts.leaves = lv; func; depth } :: acc)
    in
    build (counts.(x) - 1) []
  in
  let label l = labels.(l) in
  let process w node =
    if Arena.is_pi a node then begin
      labels.(node) <- pi_arrival node;
      store_node node [ Cuts.trivial ~levels node ]
    end
    else begin
      let st, verdict, ev =
        Cut_mapper.eval_node ~k ~priority ~levels ~label db (Arena.kind a node)
          ~stored_of node
      in
      store_node node st;
      evaluated.(w) <- evaluated.(w) + ev;
      match verdict with
      | Cut_mapper.Vconst b -> const_node.(node) <- Some b
      | Cut_mapper.Vmatched (arrival, c) ->
        chosen.(node) <- Some c;
        labels.(node) <- arrival;
        matched.(w) <- matched.(w) + 1
      | Cut_mapper.Vnone -> raise (unmappable node)
    end
  in
  let level_seconds = Array.make num_levels 0.0 in
  let parallel_levels = ref 0 in
  let chunks_claimed = Atomic.make 0 in
  let failure : exn option Atomic.t = Atomic.make None in
  let pool = if jobs > 1 then Some (Parmap.make_pool (jobs - 1)) else None in
  Fun.protect
    ~finally:(fun () -> Option.iter Parmap.shutdown_pool pool)
    (fun () ->
      for li = 0 to num_levels - 1 do
        let t0 = Clock.now () in
        let lo = starts.(li) and hi = starts.(li + 1) in
        let len = hi - lo in
        (match pool with
         | Some pool when len >= Parmap.fanout_threshold jobs ->
           incr parallel_levels;
           let cursor = Atomic.make lo in
           let chunk = Parmap.chunk_for ~jobs len in
           Parmap.run_pool pool (fun w ->
               try
                 Parmap.steal_chunks ~cursor ~chunks_claimed ~chunk ~hi
                   (fun i -> process w order.(i))
               with e ->
                 ignore (Atomic.compare_and_set failure None (Some e)));
           (match Atomic.get failure with
            | Some e -> raise e
            | None -> ())
         | _ ->
           for i = lo to hi - 1 do
             process (jobs - 1) order.(i)
           done);
        level_seconds.(li) <- Clock.now () -. t0
      done);
  let widest_level = ref 0 in
  for l = 0 to num_levels - 1 do
    widest_level := max !widest_level (starts.(l + 1) - starts.(l))
  done;
  Metrics.Counter.add (Metrics.counter "arena_cuts.chunks")
    (Atomic.get chunks_claimed);
  Metrics.Counter.add
    (Metrics.counter "arena_cuts.parallel_levels")
    !parallel_levels;
  let stats =
    { Parmap.domains = jobs;
      levels = num_levels;
      widest_level = !widest_level;
      level_seconds;
      parallel_levels = !parallel_levels;
      chunks = Atomic.get chunks_claimed }
  in
  let g =
    match subject with
    | Some g -> g
    | None -> Arena.to_subject a
  in
  let netlist = Cut_mapper.cover g ~chosen ~const_node in
  ( { Cut_mapper.netlist;
      labels;
      chosen;
      matched_nodes = Array.fold_left ( + ) 0 matched;
      matches_evaluated = Array.fold_left ( + ) 0 evaluated },
    stats )
