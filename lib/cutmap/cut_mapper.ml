open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core

type choice = {
  cut : Cuts.cut;
  entry : Boolean_match.entry;
}

type result = {
  netlist : Netlist.t;
  labels : float array;
  chosen : choice option array;
  matched_nodes : int;
  matches_evaluated : int;
}

(* Worst leaf arrival through the entry's gate pins. Starts at
   [neg_infinity] so negative leaf labels (early external arrivals)
   are never clamped to zero — the same fix PR 3 applied to
   [Mapper.match_arrival]; a [ref 0.0] max-fold here silently floored
   every negative arrival. *)
let choice_arrival label (c : choice) =
  let gate = c.entry.Boolean_match.gate in
  let worst = ref neg_infinity in
  Array.iteri
    (fun j leaf ->
      let pin = c.entry.Boolean_match.pin_of_input.(j) in
      worst := Float.max !worst (label leaf +. Gate.intrinsic_delay gate pin))
    c.cut.Cuts.leaves;
  if !worst = neg_infinity then 0.0 else !worst

let unmatched_penalty =
  (* roughly one gate delay *)
  1.0

(* The per-node label verdict. *)
type verdict =
  | Vconst of bool                (** some cut folded to a constant *)
  | Vmatched of float * choice    (** best realized arrival + choice *)
  | Vnone                         (** no cut matched: unmappable *)

(* Evaluate one non-PI node: merge the fanins' stored cut sets
   through the node's operator, score every merged cut against the
   Boolean index, keep the [priority] best plus the direct-fanin
   fallback and the trivial cut, and label from the best over ALL
   evaluated cuts (search all, not just kept, so the label is as
   tight as the cut set allows).

   Enumeration is interleaved with labeling so priority pruning can
   rank cuts by what they actually achieve: a matched cut ranks by
   its realized arrival; an unmatched cut (still useful as a building
   block for wider parent cuts) ranks by its worst leaf label plus a
   penalty that sorts it behind matched cuts of similar depth.

   The whole evaluation is a pure function of the node kind, the
   fanins' stored cut lists and strictly lower labels — which is what
   lets {!Arena_cuts} replay it level-parallel on the flat arena with
   bit-identical results. *)
let eval_node ~k ~priority ~levels ~label db (kind : Subject.kind) ~stored_of
    node =
  let merged, fanins =
    match kind with
    | Spi -> invalid_arg "Cut_mapper.eval_node: PI"
    | Sinv x ->
      ( Cuts.merged_generic ~k levels
          (fun fs -> Truth.lognot fs.(0))
          [ stored_of x ],
        [ x ] )
    | Snand (x, y) ->
      ( Cuts.merged_generic ~k levels
          (fun fs -> Truth.lognand fs.(0) fs.(1))
          [ stored_of x; stored_of y ],
        [ x; y ] )
  in
  let matches_evaluated = ref 0 in
  (* Evaluate every merged cut once; remember its best match. *)
  let evaluated =
    List.map
      (fun (cut : Cuts.cut) ->
        match Truth.is_const cut.Cuts.func with
        | Some b -> (cut, `Const b)
        | None ->
          let best = ref None in
          List.iter
            (fun entry ->
              incr matches_evaluated;
              let c = { cut; entry } in
              let arrival = choice_arrival label c in
              let area = entry.Boolean_match.gate.Gate.area in
              match !best with
              | Some (a, ar, _)
                when arrival > a +. 1e-12
                     || (arrival > a -. 1e-12 && area >= ar) -> ()
              | Some _ | None -> best := Some (arrival, area, c))
            (Boolean_match.lookup db cut.Cuts.func);
          (match !best with
           | Some (arrival, area, c) -> (cut, `Matched (arrival, area, c))
           | None ->
             (* Same neg_infinity start as [choice_arrival]: the
                unmatched score must track genuinely negative leaf
                labels too. *)
             let worst = ref neg_infinity in
             Array.iter
               (fun l -> worst := Float.max !worst (label l))
               cut.Cuts.leaves;
             let worst = if !worst = neg_infinity then 0.0 else !worst in
             (cut, `Unmatched worst)))
      merged
  in
  let score = function
    | _, `Const _ -> (neg_infinity, 0)
    | cut, `Matched (arrival, _, _) -> (arrival, Array.length cut.Cuts.leaves)
    | cut, `Unmatched worst ->
      (worst +. unmatched_penalty, Array.length cut.Cuts.leaves)
  in
  let sorted =
    List.sort (fun a b -> compare (score a) (score b)) evaluated
  in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let kept = take priority sorted in
  (* One retention rule, shared with [Cuts.keep]: the direct-fanin
     cut (or its support-shrunk descendant) always survives pruning.
     The old inline check accepted any subset-of-fanins cut — a lone
     trivial fanin cut could satisfy it — and never appended the
     shrunk form, so a pruned node could lose its only matchable
     cut. *)
  let kept =
    Cuts.retain_fallback ~fanins
      ~leaves_of:(fun ((c : Cuts.cut), _) -> c.Cuts.leaves)
      ~all:evaluated kept
  in
  let stored = List.map fst kept @ [ Cuts.trivial ~levels node ] in
  let const_v = ref None in
  let best = ref None in
  List.iter
    (fun e ->
      match e with
      | _, `Const b -> const_v := Some b
      | _, `Matched (arrival, area, c) -> begin
        match !best with
        | Some (a, ar, _)
          when arrival > a +. 1e-12 || (arrival > a -. 1e-12 && area >= ar) ->
          ()
        | Some _ | None -> best := Some (arrival, area, c)
      end
      | _, `Unmatched _ -> ())
    evaluated;
  let verdict =
    match !const_v, !best with
    | Some b, _ -> Vconst b
    | None, Some (arrival, _, c) -> Vmatched (arrival, c)
    | None, None -> Vnone
  in
  (stored, verdict, !matches_evaluated)

(* Cover construction with free duplication, as in the paper. Shared
   with {!Arena_cuts}, which hands in its own [chosen]/[const_node]
   arrays. *)
let cover g ~(chosen : choice option array) ~(const_node : bool option array)
    =
  let needed = Hashtbl.create 64 in
  let queue = Queue.create () in
  let require node =
    match Subject.kind g node with
    | Spi -> ()
    | Snand _ | Sinv _ ->
      if const_node.(node) = None && not (Hashtbl.mem needed node) then begin
        Hashtbl.add needed node ();
        Queue.add node queue
      end
  in
  List.iter (fun o -> require o.Subject.out_node) g.Subject.outputs;
  let picked = ref [] in
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    match chosen.(node) with
    | None -> assert false
    | Some c ->
      picked := (node, c) :: !picked;
      Array.iter require c.cut.Cuts.leaves
  done;
  let index = Hashtbl.create 64 in
  List.iteri (fun i (node, _) -> Hashtbl.replace index node i) !picked;
  let driver_of node =
    match const_node.(node) with
    | Some b -> Netlist.D_const b
    | None -> begin
      match Subject.kind g node with
      | Spi -> Netlist.D_pi node
      | Snand _ | Sinv _ -> Netlist.D_gate (Hashtbl.find index node)
    end
  in
  let instances =
    Array.of_list
      (List.mapi
         (fun i (node, c) ->
           let gate = c.entry.Boolean_match.gate in
           let inputs = Array.make (Gate.num_pins gate) (Netlist.D_const false) in
           Array.iteri
             (fun j leaf ->
               inputs.(c.entry.Boolean_match.pin_of_input.(j)) <- driver_of leaf)
             c.cut.Cuts.leaves;
           let covers = Array.of_list (Cuts.cut_cone g node c.cut) in
           { Netlist.inst_id = i; gate; inputs; subject_root = node; covers })
         !picked)
  in
  let outputs =
    List.map
      (fun o -> (o.Subject.out_name, driver_of o.Subject.out_node))
      g.Subject.outputs
    @ List.map (fun (name, b) -> (name, Netlist.D_const b)) g.Subject.const_outputs
  in
  { Netlist.source = g; instances; outputs }

let map ?(k = 5) ?(priority = 50) ?(pi_arrival = fun _ -> 0.0) db g =
  (* Cuts wider than the widest library gate can never match. *)
  let k = max 2 (min k (Boolean_match.max_arity db)) in
  let n = Subject.num_nodes g in
  let levels = Subject.levels g in
  let labels = Array.make n 0.0 in
  let chosen : choice option array = Array.make n None in
  let const_node : bool option array = Array.make n None in
  let matched = ref 0 in
  let matches_evaluated = ref 0 in
  let stored : Cuts.cut list array = Array.make n [] in
  let label l = labels.(l) in
  let stored_of x = stored.(x) in
  for node = 0 to n - 1 do
    match Subject.kind g node with
    | Spi ->
      labels.(node) <- pi_arrival node;
      stored.(node) <- [ Cuts.trivial ~levels node ]
    | (Snand _ | Sinv _) as kind ->
      let st, verdict, ev =
        eval_node ~k ~priority ~levels ~label db kind ~stored_of node
      in
      stored.(node) <- st;
      matches_evaluated := !matches_evaluated + ev;
      (match verdict with
       | Vconst b ->
         const_node.(node) <- Some b;
         labels.(node) <- 0.0
       | Vmatched (arrival, c) ->
         chosen.(node) <- Some c;
         labels.(node) <- arrival;
         incr matched
       | Vnone ->
         raise
           (Mapper.Unmappable
              { node;
                description =
                  Printf.sprintf
                    "no Boolean match for any cut of subject node %d" node }))
  done;
  { netlist = cover g ~chosen ~const_node;
    labels;
    chosen;
    matched_nodes = !matched;
    matches_evaluated = !matches_evaluated }

let optimal_delay r =
  List.fold_left
    (fun acc o -> Float.max acc r.labels.(o.Subject.out_node))
    0.0 r.netlist.Netlist.source.Subject.outputs

let predicted_arrivals r =
  let g = r.netlist.Netlist.source in
  List.map
    (fun o -> (o.Subject.out_name, r.labels.(o.Subject.out_node)))
    g.Subject.outputs
  @ List.map (fun (name, _) -> (name, 0.0)) g.Subject.const_outputs
