(** Cut-based delay-oriented technology mapping with Boolean
    matching — the modern (ABC-style) engine, built here as a
    comparison point for the paper's structural DAG covering.

    Like the paper's algorithm it labels nodes in topological order
    and covers backward from the outputs with free duplication; the
    difference is the match generator: bounded priority-cut
    enumeration plus exact Boolean matching instead of pattern-graph
    matching. Because the cut set is pruned (priority cuts), the
    result is a strong heuristic rather than delay-optimal; the
    benchmark harness compares both engines.

    The per-node evaluation kernel ({!eval_node}) is a pure function
    of the node kind, the fanins' stored cut lists, and lower-level
    labels; {!Arena_cuts} replays the same kernel over the flat arena
    in level order (optionally parallel) with bit-identical results. *)

open Dagmap_subject
open Dagmap_core

type choice = {
  cut : Cuts.cut;
  entry : Boolean_match.entry;
}

type result = {
  netlist : Netlist.t;
  labels : float array;
  chosen : choice option array;   (** per needed subject node *)
  matched_nodes : int;            (** nodes with a non-fallback match *)
  matches_evaluated : int;        (** (cut, library entry) pairs scored *)
}

val map :
  ?k:int ->
  ?priority:int ->
  ?pi_arrival:(int -> float) ->
  Boolean_match.t ->
  Subject.t ->
  result
(** [map db g] maps [g]; [k] (default 5, clamped to the library's
    widest matchable gate) bounds cut width, [priority] (default 50)
    bounds cuts kept per node — quality converges to the structural
    mapper's as the budget grows (the harness sweeps this).
    [pi_arrival] gives each primary input's external arrival time
    (default 0.0 for all, matching {!Mapper.map}); negative arrivals
    are honored, not clamped. Raises [Mapper.Unmappable] if some node
    has no matchable cut (cannot happen when the library contains INV
    and NAND2). *)

val choice_arrival : (int -> float) -> choice -> float
(** Realized arrival of a choice under the given leaf-label function:
    worst leaf label plus the matched gate's pin delay, with correct
    handling of negative labels. *)

type verdict =
  | Vconst of bool                (** some cut folded to a constant *)
  | Vmatched of float * choice    (** best realized arrival + choice *)
  | Vnone                         (** no cut matched: unmappable *)

val eval_node :
  k:int ->
  priority:int ->
  levels:int array ->
  label:(int -> float) ->
  Boolean_match.t ->
  Subject.kind ->
  stored_of:(int -> Cuts.cut list) ->
  int ->
  Cuts.cut list * verdict * int
(** Evaluate one non-PI node from its fanins' stored cut lists and
    labels: returns the cut list to store for the node (priority-kept
    plus fallback plus trivial), the label verdict, and the number of
    (cut, entry) pairs scored. Deterministic: depends only on the
    arguments, never on traversal order — the contract {!Arena_cuts}
    relies on for bit-identical parallel replay. Raises
    [Invalid_argument] on a PI kind. *)

val cover :
  Subject.t ->
  chosen:choice option array ->
  const_node:bool option array ->
  Netlist.t
(** Backward cover from the outputs with free duplication, using the
    per-node best choices (and constant verdicts) computed by the
    labeling pass. Shared by {!map} and {!Arena_cuts.map}. *)

val optimal_delay : result -> float
(** Worst label over the primary outputs. *)

val predicted_arrivals : result -> (string * float) list
(** Per-output predicted arrivals in [Check.audit] form: each output
    name with the label at its driver (0.0 for constant outputs) —
    the cut-mapper analogue of {!Mapper.predicted_arrivals}. *)
