(** Process resource readings for the observability layer.

    One number for now: the peak resident set size, the high-water
    mark the bench harness records per run so the arena core's memory
    footprint is visible in the benchmark trajectory alongside wall
    and CPU time. The reading is process-wide and monotone — it never
    decreases over the life of the process — so per-run values in a
    multi-run harness reflect the largest phase seen so far, not the
    marginal cost of one run; interpret deltas, or run phases in
    ascending size order (as [bench json] does: quick rows before the
    huge tier). *)

val peak_rss_bytes : unit -> int
(** Peak resident set size in bytes; [0] when the platform offers no
    reading. Prefers [/proc/self/status] ([VmHWM]) and falls back to
    [getrusage] ([ru_maxrss]) via a C stub, so it works both on Linux
    and macOS. *)
