(** Clocks for the observability layer.

    Two distinct time bases, chosen per use:

    - {b monotonic wall time} ([CLOCK_MONOTONIC] via a C stub, since
      OCaml 5.1's [Unix] does not expose [clock_gettime] and the repo
      vendors no external clock package): never steps backwards, not
      affected by NTP slew or [settimeofday]; the only clock valid
      for measuring durations, and the time base of every span and
      phase timing in the mapper stack.
    - {b process CPU time} ([CLOCK_PROCESS_CPUTIME_ID]): total CPU
      consumed by all domains of the process. On a parallel run it
      exceeds wall time; the bench harness reports both so the
      paper's CPU-seconds columns and parallel speedups stay
      distinguishable.

    Calendar time ({!epoch}, {!stamp}) is exposed only for stamping
    artifacts — durations must never be derived from it. *)

val monotonic_ns : unit -> int64
(** Raw monotonic reading in nanoseconds. The origin is arbitrary
    (typically boot); only differences are meaningful. *)

val cputime_ns : unit -> int64
(** Raw process-CPU reading in nanoseconds (all domains summed). *)

val now : unit -> float
(** Monotonic wall time in seconds. *)

val cpu : unit -> float
(** Process CPU time in seconds. *)

val since : float -> float
(** [since t0] = [now () -. t0]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the monotonic
    wall-clock duration. *)

val time_wall_cpu : (unit -> 'a) -> 'a * float * float
(** Like {!time} but returns [(result, wall seconds, cpu seconds)]. *)

val epoch : unit -> float
(** Seconds since the Unix epoch — calendar time, for stamping
    artifacts only. *)

val stamp : unit -> string
(** Local calendar time as ["YYYYMMDD_HHMMSS"], for artifact file
    names such as [BENCH_<stamp>.json]. *)
