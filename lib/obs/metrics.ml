module Counter = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let incr t = ignore (Atomic.fetch_and_add t 1)
  let add t n = ignore (Atomic.fetch_and_add t n)
  let value t = Atomic.get t
  let reset t = Atomic.set t 0
end

module Gauge = struct
  type t = float Atomic.t

  let create ?(init = 0.0) () = Atomic.make init
  let set t x = Atomic.set t x
  let value t = Atomic.get t
  let reset t = Atomic.set t 0.0

  let rec add t dx =
    let cur = Atomic.get t in
    if not (Atomic.compare_and_set t cur (cur +. dx)) then add t dx

  let rec max_update t x =
    let cur = Atomic.get t in
    if x > cur && not (Atomic.compare_and_set t cur x) then max_update t x
end

module Histogram = struct
  type t = {
    bounds : float array;      (* ascending upper bounds *)
    buckets : Counter.t array; (* length = |bounds| + 1 (overflow) *)
    sum : Gauge.t;
    count : Counter.t;
    hmax : Gauge.t;
  }

  (* Log-spaced second buckets spanning 1us .. ~100s: phase and level
     timings all land in this range. *)
  let default_bounds =
    Array.init 9 (fun i -> 1e-6 *. (10.0 ** float_of_int i))

  let create ?(bounds = default_bounds) () =
    { bounds;
      buckets = Array.init (Array.length bounds + 1) (fun _ -> Counter.create ());
      sum = Gauge.create ();
      count = Counter.create ();
      hmax = Gauge.create () }

  let observe t x =
    let i = ref 0 in
    while !i < Array.length t.bounds && x > t.bounds.(!i) do
      incr i
    done;
    Counter.incr t.buckets.(!i);
    Gauge.add t.sum x;
    Counter.incr t.count;
    Gauge.max_update t.hmax x

  let count t = Counter.value t.count
  let sum t = Gauge.value t.sum
  let max_value t = Gauge.value t.hmax

  let mean t =
    let n = count t in
    if n = 0 then 0.0 else sum t /. float_of_int n

  let reset t =
    Array.iter Counter.reset t.buckets;
    Gauge.reset t.sum;
    Counter.reset t.count;
    Gauge.reset t.hmax
end

(* ------------------------------------------------------------------ *)
(* Process-global registry                                             *)
(* ------------------------------------------------------------------ *)

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

(* Registration is rare and mutex-guarded; the metrics themselves are
   lock-free atomics, so domains hammer counters without contending
   on the registry. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let find_or_create name make classify =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
        match classify m with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %s already registered with another type"
               name))
      | None ->
        let m, v = make () in
        Hashtbl.replace registry name m;
        v)

let counter name =
  find_or_create name
    (fun () ->
      let c = Counter.create () in
      (M_counter c, c))
    (function M_counter c -> Some c | _ -> None)

let gauge name =
  find_or_create name
    (fun () ->
      let g = Gauge.create () in
      (M_gauge g, g))
    (function M_gauge g -> Some g | _ -> None)

let histogram ?bounds name =
  find_or_create name
    (fun () ->
      let h = Histogram.create ?bounds () in
      (M_histogram h, h))
    (function M_histogram h -> Some h | _ -> None)

let reset_all () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | M_counter c -> Counter.reset c
          | M_gauge g -> Gauge.reset g
          | M_histogram h -> Histogram.reset h)
        registry)

let names () =
  with_registry (fun () ->
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry []))

let counter_value name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (M_counter c) -> Some (Counter.value c)
      | _ -> None)

let gauge_value name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (M_gauge g) -> Some (Gauge.value g)
      | _ -> None)

let json_of_metric = function
  | M_counter c -> Json.Int (Counter.value c)
  | M_gauge g -> Json.Float (Gauge.value g)
  | M_histogram h ->
    Json.Obj
      [ ("count", Json.Int (Histogram.count h));
        ("sum", Json.Float (Histogram.sum h));
        ("mean", Json.Float (Histogram.mean h));
        ("max", Json.Float (Histogram.max_value h));
        ( "buckets",
          Json.List
            (Array.to_list
               (Array.mapi
                  (fun i c ->
                    let le =
                      if i < Array.length h.Histogram.bounds then
                        Json.Float h.Histogram.bounds.(i)
                      else Json.String "inf"
                    in
                    Json.Obj
                      [ ("le", le); ("n", Json.Int (Counter.value c)) ])
                  h.Histogram.buckets)) ) ]

let to_json () =
  with_registry (fun () ->
      let items =
        List.sort compare (Hashtbl.fold (fun k m acc -> (k, m) :: acc) registry [])
      in
      Json.Obj (List.map (fun (k, m) -> (k, json_of_metric m)) items))

let dump () =
  let rec flat prefix = function
    | Json.Obj fields ->
      List.concat_map
        (fun (k, v) ->
          flat (if prefix = "" then k else prefix ^ "." ^ k) v)
        fields
    | v -> [ (prefix, Json.to_string v) ]
  in
  String.concat "\n"
    (List.map (fun (k, v) -> Printf.sprintf "%-40s %s" k v)
       (flat "" (to_json ())))
