external maxrss_bytes : unit -> int64 = "dagmap_obs_maxrss_bytes"

(* VmHWM in /proc/self/status is the kernel's own high-water mark in
   kB; parse it without materialising the file. *)
let proc_vmhwm_bytes () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec scan () =
          match input_line ic with
          | exception End_of_file -> None
          | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              let digits =
                String.to_seq (String.sub line 6 (String.length line - 6))
                |> Seq.filter (fun c -> c >= '0' && c <= '9')
                |> String.of_seq
              in
              match int_of_string_opt digits with
              | Some kb -> Some (kb * 1024)
              | None -> None
            else scan ()
        in
        scan ())

let peak_rss_bytes () =
  match proc_vmhwm_bytes () with
  | Some bytes -> bytes
  | None -> Int64.to_int (maxrss_bytes ())
