type event = {
  ev_name : string;
  ev_cat : string;
  ev_tid : int;       (* Domain.self of the recording domain *)
  ev_ts_ns : int64;   (* monotonic start *)
  ev_dur_ns : int64;
}

(* Collection is off by default so the mapper's hot paths pay one
   atomic load per phase; [techmap --trace-out] flips it on for the
   run. Spans never influence results either way — [with_span] calls
   its thunk unconditionally and timing is observation-only (the test
   suite asserts bit-identical covers with observability on and
   off). *)
let enabled = Atomic.make false

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let buffer : event list ref = ref []
let buffer_mutex = Mutex.create ()

let record ev =
  Mutex.lock buffer_mutex;
  buffer := ev :: !buffer;
  Mutex.unlock buffer_mutex

let reset () =
  Mutex.lock buffer_mutex;
  buffer := [];
  Mutex.unlock buffer_mutex

let with_span ?(cat = "phase") name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let t0 = Clock.monotonic_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.monotonic_ns () in
        record
          { ev_name = name;
            ev_cat = cat;
            ev_tid = (Domain.self () :> int);
            ev_ts_ns = t0;
            ev_dur_ns = Int64.sub t1 t0 })
      f
  end

let events () =
  Mutex.lock buffer_mutex;
  let evs = !buffer in
  Mutex.unlock buffer_mutex;
  List.sort
    (fun a b ->
      let c = Int64.compare a.ev_ts_ns b.ev_ts_ns in
      if c <> 0 then c else Int64.compare b.ev_dur_ns a.ev_dur_ns)
    evs

let us_of_ns ns = Int64.to_float ns /. 1e3

(* Chrome trace-event format (chrome://tracing, Perfetto): an object
   with a [traceEvents] list of complete ("ph": "X") events,
   timestamps and durations in microseconds. *)
let export_chrome () =
  Json.Obj
    [ ( "traceEvents",
        Json.List
          (List.map
             (fun ev ->
               Json.Obj
                 [ ("name", Json.String ev.ev_name);
                   ("cat", Json.String ev.ev_cat);
                   ("ph", Json.String "X");
                   ("pid", Json.Int 1);
                   ("tid", Json.Int ev.ev_tid);
                   ("ts", Json.Float (us_of_ns ev.ev_ts_ns));
                   ("dur", Json.Float (us_of_ns ev.ev_dur_ns)) ])
             (events ())) );
      ("displayTimeUnit", Json.String "ms") ]

let write_chrome path =
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true (export_chrome ()));
  close_out oc
