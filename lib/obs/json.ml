type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity literals; clamp rather than emit an
   unparseable document (durations are never NaN in practice). *)
let float_repr x =
  if Float.is_nan x then "0"
  else if x = infinity then "1e308"
  else if x = neg_infinity then "-1e308"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else
    let s = Printf.sprintf "%.12g" x in
    s

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> Buffer.add_string buf (float_repr x)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          if pretty then begin
            Buffer.add_char buf '\n';
            indent (depth + 1)
          end;
          go (depth + 1) item)
        items;
      if pretty then begin
        Buffer.add_char buf '\n';
        indent depth
      end;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          if pretty then begin
            Buffer.add_char buf '\n';
            indent (depth + 1)
          end;
          escape buf k;
          Buffer.add_char buf ':';
          if pretty then Buffer.add_char buf ' ';
          go (depth + 1) item)
        fields;
      if pretty then begin
        Buffer.add_char buf '\n';
        indent depth
      end;
      Buffer.add_char buf '}'
  in
  go 0 v;
  if pretty then Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of { pos : int; message : string }

let describe = function
  | Parse_error { pos; message } ->
    Printf.sprintf "JSON parse error at offset %d: %s" pos message
  | e -> raise e

(* Recursive-descent parser over the input string. Depth is bounded
   by the document's nesting, which for every document this library
   emits is a small constant. *)
let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail message = raise (Parse_error { pos = !pos; message }) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> begin
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code =
               try int_of_string ("0x" ^ hex)
               with _ -> fail "bad \\u escape"
             in
             (* Code points above 0xFF round-trip as '?': none of our
                emitters produce them. *)
             Buffer.add_char buf
               (if code < 0x100 then Char.chr code else '?')
           | _ -> fail "unknown escape");
          go ()
        end
        | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing characters after document";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_number = function
  | Int i -> Some (float_of_int i)
  | Float x -> Some x
  | _ -> None

let to_string_value = function String s -> Some s | _ -> None
