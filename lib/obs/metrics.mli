(** Domain-safe counters, gauges and histograms with a process-global
    registry.

    Every primitive is backed by [Atomic.t], so increments from
    concurrent {!Dagmap_core.Parmap} worker domains never lose
    updates — the invariant that motivated this module is
    [lookups = hits + misses] on the match-cache counters, which
    plain [mutable int] fields violated under parallel labeling.
    The registry maps stable dotted names
    (e.g. ["matchdb.cache.hits"]) to metrics; registration is
    find-or-create and mutex-guarded, while the metrics themselves
    are lock-free. *)

module Counter : sig
  type t

  val create : unit -> t
  (** A fresh unregistered counter (zero). Use {!val-counter} for a
      registry-backed one. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Gauge : sig
  type t

  val create : ?init:float -> unit -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  (** Atomic accumulate (CAS loop). *)

  val max_update : t -> float -> unit
  (** Atomic running maximum. *)

  val value : t -> float
  val reset : t -> unit
end

module Histogram : sig
  type t

  val default_bounds : float array
  (** Log-spaced seconds, 1e-6 .. 1e2. *)

  val create : ?bounds:float array -> unit -> t
  (** [bounds] are ascending upper bounds; an overflow bucket is
      added automatically. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val max_value : t -> float
  val reset : t -> unit
end

(** {1 Registry} *)

val counter : string -> Counter.t
(** Find or create the named counter. Raises [Invalid_argument] if
    the name is registered as a different metric type. *)

val gauge : string -> Gauge.t
val histogram : ?bounds:float array -> string -> Histogram.t

val counter_value : string -> int option
(** Read a registered counter by name ([None] if absent or not a
    counter). *)

val gauge_value : string -> float option

val names : unit -> string list
(** Registered names, sorted. *)

val reset_all : unit -> unit
(** Zero every registered metric (metrics stay registered). Tests and
    per-run exports use this to scope counters to one run. *)

val to_json : unit -> Json.t
(** Snapshot of the whole registry as one JSON object, fields sorted
    by name. Counters export as integers, gauges as floats,
    histograms as [{count, sum, mean, max, buckets}]. *)

val dump : unit -> string
(** Human-readable one-line-per-metric rendering of {!to_json}. *)
