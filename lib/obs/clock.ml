external monotonic_ns : unit -> int64 = "dagmap_obs_monotonic_ns"
external cputime_ns : unit -> int64 = "dagmap_obs_cputime_ns"

let now () = 1e-9 *. Int64.to_float (monotonic_ns ())
let cpu () = 1e-9 *. Int64.to_float (cputime_ns ())
let since t0 = now () -. t0

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

let time_wall_cpu f =
  let w0 = now () in
  let c0 = cpu () in
  let r = f () in
  let c1 = cpu () in
  let w1 = now () in
  (r, w1 -. w0, c1 -. c0)

(* Calendar time lives here so that nothing outside lib/obs needs
   Unix.gettimeofday: it is only for stamping artifacts (file names,
   "generated at" fields), never for measuring durations. *)
let epoch () = Unix.gettimeofday ()

let stamp () =
  let t = Unix.localtime (epoch ()) in
  Printf.sprintf "%04d%02d%02d_%02d%02d%02d" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec
