(** A minimal JSON tree, printer and parser.

    The observability exports (Chrome traces, metrics summaries,
    bench trajectories) are plain JSON; the container ships no JSON
    package, so this module is the single JSON surface of the repo —
    the exporters build {!t} values and the test suite re-parses
    their output with {!parse} to assert well-formedness. It is a
    complete implementation of the JSON grammar except that [\uXXXX]
    escapes above [0xFF] parse as ['?'] (no emitter here produces
    them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize. [pretty] (default false) adds newlines and two-space
    indentation. Non-finite floats are clamped to parseable values
    (JSON has no [NaN]/[Infinity] literals). *)

exception Parse_error of { pos : int; message : string }

val describe : exn -> string
(** Human-readable rendering of a {!Parse_error} (re-raises other
    exceptions). *)

val parse : string -> t
(** Parse a complete JSON document. Raises {!Parse_error} on
    malformed input or trailing characters. *)

val member : string -> t -> t option
(** Field lookup on an [Obj] ([None] on other constructors). *)

val to_list : t -> t list option
val to_number : t -> float option
(** [Int] and [Float] both read as numbers. *)

val to_string_value : t -> string option
