/* Monotonic and per-process CPU clocks for Dagmap_obs.Clock.

   OCaml 5.1's Unix library does not expose clock_gettime, and the
   repo policy is no new opam packages (Mtime would be the natural
   choice), so these two stubs are the whole native surface: raw
   nanosecond readings of CLOCK_MONOTONIC and
   CLOCK_PROCESS_CPUTIME_ID.  Both are [@@noalloc]-unfriendly only in
   that they box an int64; neither takes the runtime lock beyond the
   allocation. */

#include <time.h>
#include <sys/resource.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

static int64_t ns_of(clockid_t id)
{
  struct timespec ts;
  if (clock_gettime(id, &ts) != 0)
    return 0;
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

CAMLprim value dagmap_obs_monotonic_ns(value unit)
{
  (void)unit;
  return caml_copy_int64(ns_of(CLOCK_MONOTONIC));
}

CAMLprim value dagmap_obs_cputime_ns(value unit)
{
  (void)unit;
#ifdef CLOCK_PROCESS_CPUTIME_ID
  return caml_copy_int64(ns_of(CLOCK_PROCESS_CPUTIME_ID));
#else
  return caml_copy_int64((int64_t)(clock() * (1000000000.0 / CLOCKS_PER_SEC)));
#endif
}

/* Peak resident set size of the process, in bytes; 0 if unavailable.
   getrusage reports ru_maxrss in kilobytes on Linux and in bytes on
   macOS.  Resource.peak_rss_bytes prefers /proc/self/status (whose
   VmHWM has the same definition) and uses this as the portable
   fallback. */
CAMLprim value dagmap_obs_maxrss_bytes(value unit)
{
  (void)unit;
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0)
    return caml_copy_int64(0);
#ifdef __APPLE__
  return caml_copy_int64((int64_t)ru.ru_maxrss);
#else
  return caml_copy_int64((int64_t)ru.ru_maxrss * 1024);
#endif
}
