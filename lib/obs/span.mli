(** Nested phase spans with a Chrome trace-event exporter.

    A span is one timed region (match/label/cover, a parallel level,
    a bench phase), recorded with monotonic start and duration plus
    the recording domain's id. Collection is disabled by default —
    {!with_span} then runs its thunk with no recording and one atomic
    load of overhead — and enabled for a run by
    [techmap --trace-out]. Spans are observation-only: enabling them
    never changes mapping results, which the test suite asserts
    (bit-identical covers with observability on and off).

    Because spans are recorded by lexically nested {!with_span}
    calls, the intervals of any one domain properly nest — the
    qcheck export test re-parses the trace and checks exactly that,
    along with timestamp monotonicity. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_tid : int;       (** recording domain's [Domain.self] *)
  ev_ts_ns : int64;   (** monotonic start ({!Clock.monotonic_ns}) *)
  ev_dur_ns : int64;
}

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and, when collection is enabled,
    records its monotonic start/duration under [name] (category
    [cat], default ["phase"]). The span is recorded even when [f]
    raises. Safe to call concurrently from multiple domains. *)

val events : unit -> event list
(** Recorded events, sorted by start time (ties: longer first, so a
    parent precedes the child it encloses). *)

val reset : unit -> unit
(** Drop all recorded events. *)

val export_chrome : unit -> Json.t
(** The recorded spans as a Chrome trace-event document
    ([{"traceEvents": [...]}], "ph":"X" complete events, microsecond
    units) loadable in chrome://tracing or Perfetto. *)

val write_chrome : string -> unit
(** Write {!export_chrome} (pretty-printed) to a file. *)
