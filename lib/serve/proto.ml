open Dagmap_obs

type verb = Ping | Map | Check | Sta | Stats | Shutdown

let verb_name = function
  | Ping -> "ping"
  | Map -> "map"
  | Check -> "check"
  | Sta -> "sta"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let verb_of_string = function
  | "ping" -> Some Ping
  | "map" -> Some Map
  | "check" -> Some Check
  | "sta" -> Some Sta
  | "stats" -> Some Stats
  | "shutdown" -> Some Shutdown
  | _ -> None

type request = {
  verb : verb;
  id : string option;
  circuit : string option;
  payload : int option;
  lib : string option;
  mode : string option;
  cache : bool;
  audit : bool;
  want_blif : bool;
  metrics : bool;
  deadline_ms : int option;
}

let request verb =
  { verb; id = None; circuit = None; payload = None; lib = None;
    mode = None; cache = true; audit = false; want_blif = false;
    metrics = false; deadline_ms = None }

let max_header = 4096
let max_payload = 16 * 1024 * 1024

type parse_error = { code : string; message : string; fatal : bool }

let err ?(fatal = false) code message = Error { code; message; fatal }

(* Key=value pairs: the value is everything after the first '='
   (values may contain further '='s, e.g. base64-ish ids); keys are
   lowercase ASCII identifiers. A flag value is "1"/"true" or
   "0"/"false". *)
let bool_value key v =
  match v with
  | "1" | "true" -> Ok true
  | "0" | "false" -> Ok false
  | _ -> err "bad_request" (Printf.sprintf "%s=%s: want 0/1" key v)

let parse_request line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\n' then String.sub line 0 (n - 1) else line
  in
  if String.length line + 1 > max_header then
    err ~fatal:true "header_too_long"
      (Printf.sprintf "header exceeds %d bytes" max_header)
  else
    let tokens =
      List.filter (fun t -> t <> "") (String.split_on_char ' ' line)
    in
    match tokens with
    | [] -> err "bad_request" "empty request line"
    | verb_s :: pairs -> (
      (* Parse the pairs first: a bad payload length is fatal even
         under an unknown verb, because the stream position after the
         header is then unknowable. *)
      let rec fold req = function
        | [] -> Ok req
        | pair :: rest -> (
          match String.index_opt pair '=' with
          | None | Some 0 ->
            err "bad_request" (Printf.sprintf "malformed pair %S" pair)
          | Some i -> (
            let key = String.sub pair 0 i in
            let v = String.sub pair (i + 1) (String.length pair - i - 1) in
            match key with
            | "id" -> fold { req with id = Some v } rest
            | "circuit" -> fold { req with circuit = Some v } rest
            | "lib" -> fold { req with lib = Some v } rest
            | "mode" -> fold { req with mode = Some v } rest
            | "payload" -> (
              match int_of_string_opt v with
              | Some n when n >= 0 && n <= max_payload ->
                fold { req with payload = Some n } rest
              | Some n when n > max_payload ->
                err ~fatal:true "payload_too_large"
                  (Printf.sprintf "payload %d exceeds %d bytes" n max_payload)
              | _ ->
                err ~fatal:true "bad_request"
                  (Printf.sprintf "payload=%s: not a byte count" v))
            | "cache" -> (
              match bool_value key v with
              | Ok b -> fold { req with cache = b } rest
              | Error e -> Error e)
            | "audit" -> (
              match bool_value key v with
              | Ok b -> fold { req with audit = b } rest
              | Error e -> Error e)
            | "blif" -> (
              match bool_value key v with
              | Ok b -> fold { req with want_blif = b } rest
              | Error e -> Error e)
            | "metrics" -> (
              match bool_value key v with
              | Ok b -> fold { req with metrics = b } rest
              | Error e -> Error e)
            | "deadline_ms" -> (
              match int_of_string_opt v with
              | Some ms when ms > 0 ->
                fold { req with deadline_ms = Some ms } rest
              | _ ->
                err "bad_request"
                  (Printf.sprintf "deadline_ms=%s: want a positive ms count" v))
            | _ -> fold req rest (* unknown keys: forward compatibility *)))
      in
      match fold (request Ping) pairs with
      | Error e -> Error e
      | Ok parsed -> (
        match verb_of_string verb_s with
        | Some verb -> Ok { parsed with verb }
        | None ->
          (* With a pending payload the next request boundary is past
             bytes we refuse to interpret for an unknown verb. *)
          err
            ~fatal:(parsed.payload <> None && parsed.payload <> Some 0)
            "unknown_verb"
            (Printf.sprintf "unknown verb %S" verb_s)))

let check_value what v =
  String.iter
    (fun c ->
      if c = ' ' || c = '\n' || c = '\r' then
        invalid_arg (Printf.sprintf "Proto.encode_request: %s value %S" what v))
    v

let encode_request r =
  let b = Buffer.create 64 in
  Buffer.add_string b (verb_name r.verb);
  let add key v =
    check_value key v;
    Buffer.add_char b ' ';
    Buffer.add_string b key;
    Buffer.add_char b '=';
    Buffer.add_string b v
  in
  Option.iter (add "id") r.id;
  Option.iter (add "circuit") r.circuit;
  Option.iter (add "lib") r.lib;
  Option.iter (add "mode") r.mode;
  Option.iter (fun n -> add "payload" (string_of_int n)) r.payload;
  if not r.cache then add "cache" "0";
  if r.audit then add "audit" "1";
  if r.want_blif then add "blif" "1";
  if r.metrics then add "metrics" "1";
  Option.iter (fun ms -> add "deadline_ms" (string_of_int ms)) r.deadline_ms;
  Buffer.add_char b '\n';
  Buffer.contents b

let id_field = function
  | None -> []
  | Some id -> [ ("id", Json.String id) ]

let error_json ?id ~code message =
  Json.Obj
    (id_field id
    @ [ ("status", Json.String "error");
        ("code", Json.String code);
        ("message", Json.String message) ])

let busy_json ?id ~depth ~limit () =
  Json.Obj
    (id_field id
    @ [ ("status", Json.String "busy");
        ("queue_depth", Json.Int depth);
        ("queue_max", Json.Int limit) ])

let deadline_json ?id ~elapsed_ms ~deadline_ms () =
  Json.Obj
    (id_field id
    @ [ ("status", Json.String "error");
        ("code", Json.String "deadline_exceeded");
        ("message", Json.String "request deadline exceeded");
        ("elapsed_ms", Json.Int elapsed_ms);
        ("deadline_ms", Json.Int deadline_ms) ])
