(** Minimal blocking client for the {!Proto} wire protocol.

    One connection, synchronous request/reply — enough for the CLI
    [techmap client], the load-generator bench and the tests. Each
    {!request} writes the encoded header (plus payload bytes, which
    must match the header's [payload] length) and reads exactly one
    LF-terminated JSON reply line. *)

open Dagmap_obs

type t

val connect : string -> t
(** Connect to the daemon's Unix socket path. Raises
    [Unix.Unix_error] if nothing is listening. *)

val close : t -> unit
(** Idempotent. *)

val request : t -> ?payload:string -> Proto.request -> Json.t
(** Send one request and block for its reply. When [payload] is
    given, the request's [payload] field is overridden with its
    length. Raises [Failure] on EOF before a reply or on a reply that
    is not valid JSON. *)

val half_close : t -> unit
(** Shut down the send side only — the daemon sees EOF (or a
    truncated payload) but can still deliver replies. Test helper for
    the premature-close catalog. *)

val read_reply : t -> Json.t
(** Read one more reply line without sending anything (e.g. after
    {!half_close}). Raises [Failure] on EOF. *)

val send_raw : t -> string -> unit
(** Write bytes verbatim — the malformed-request tests speak
    deliberately broken protocol. *)
