(** Minimal blocking client for the {!Proto} wire protocol.

    One connection, synchronous request/reply — enough for the CLI
    [techmap client], the load-generator bench and the tests. Each
    {!request} writes the encoded header (plus payload bytes, which
    must match the header's [payload] length) and reads exactly one
    LF-terminated JSON reply line, all select-bounded by the
    connection's [timeout_s] so a silent server surfaces as
    {!Timeout} instead of a hung process.

    On top of that, {!session}/{!call} add the retry layer: capped
    exponential backoff with decorrelated jitter on [busy] replies
    and on transient failures (dropped connection, unparseable
    reply, socket error, timeout), reconnecting between attempts and
    counting what happened. [deadline_exceeded] errors are returned
    as final — the request's budget is spent; retrying cannot
    un-spend it. *)

open Dagmap_obs

exception Timeout
(** The per-request I/O budget ([timeout_s]) elapsed while waiting to
    write or for a reply. *)

type t

val connect : ?timeout_s:float -> string -> t
(** Connect to the daemon's Unix socket path. [timeout_s] bounds each
    subsequent {!request} end to end (default [0.] = unbounded, the
    historical blocking behavior). Raises [Unix.Unix_error] if
    nothing is listening. *)

val close : t -> unit
(** Idempotent. *)

val request : t -> ?payload:string -> Proto.request -> Json.t
(** Send one request and block for its reply. When [payload] is
    given, the request's [payload] field is overridden with its
    length. Raises [Failure] on EOF before a reply or on a reply that
    is not valid JSON; {!Timeout} if the connection's budget elapses
    first. *)

val half_close : t -> unit
(** Shut down the send side only — the daemon sees EOF (or a
    truncated payload) but can still deliver replies. Test helper for
    the premature-close catalog. *)

val read_reply : t -> Json.t
(** Read one more reply line without sending anything (e.g. after
    {!half_close}). Raises [Failure] on EOF, {!Timeout} on budget
    expiry. *)

val send_raw : t -> string -> unit
(** Write bytes verbatim — the malformed-request tests speak
    deliberately broken protocol. *)

(** {1 Retrying sessions} *)

type retry = {
  attempts : int;       (** total tries per call, >= 1 *)
  base_delay_s : float; (** first backoff sleep *)
  max_delay_s : float;  (** backoff cap *)
  overall_s : float;    (** whole-call budget across retries; [0.] = none *)
}

val default_retry : retry
(** 6 attempts, 5ms base, 500ms cap, no overall budget. *)

type retry_counters = {
  calls : int;              (** {!call} invocations *)
  retried_busy : int;       (** retries caused by [busy] replies *)
  retried_transient : int;
      (** retries caused by dropped connections, garbled replies,
          socket errors or timeouts *)
  gave_up : int;            (** calls that exhausted their attempts *)
}

type session

val session :
  ?timeout_s:float -> ?retry:retry -> ?seed:int -> string -> session
(** A reconnecting session against a socket path. [timeout_s] is the
    per-attempt I/O budget. [seed] (default 0) seeds the session's
    {e private} jitter PRNG: backoff delays never touch the global
    [Random] state, so a session's retry schedule is a pure function
    of its seed even when many sessions run on concurrent threads
    (the load-generator bench gives thread [k] seed [base + k] and
    chaos runs replay per seed). No connection is made until the
    first {!call}. *)

val jitter : Random.State.t -> retry -> prev:float -> float
(** One decorrelated-jitter draw from [rng]: uniform in
    [[base_delay_s, max base_delay_s (3 * prev)]], capped at
    [max_delay_s]. This is the function {!call} sleeps on between
    attempts, exposed so tests can pin the schedule. *)

val next_backoff : session -> prev:float -> float
(** Draw the session's next backoff delay (advancing its private
    PRNG) — the reproducibility regression tests use this to assert
    that equal seeds give equal schedules and that interleaved global
    [Random] draws cannot perturb them. *)

val call :
  session -> ?payload:string -> Proto.request -> (Json.t, string) result
(** One request with retries. [Ok] carries the final reply (which may
    be a structured error — only [busy] and transport-level failures
    are retried); [Error] is a give-up diagnostic after the attempt
    or overall budget ran out. *)

val counters : session -> retry_counters
(** Snapshot of what the retry machinery has done so far. *)

val end_session : session -> unit
(** Close the underlying connection, if any. The session may be
    reused; the next {!call} reconnects. *)
