open Dagmap_obs

(* Fault plans: deliberately injected failures for the chaos suite.

   Decisions come from one seeded Random.State behind a mutex: the
   server consults the plan from connection threads and pool workers
   concurrently, and Random.State is not thread-safe. The sequence of
   draws therefore depends on thread interleaving, but a fixed seed
   keeps the *distribution* and rough fault mix reproducible, which
   is what a chaos gate needs (the correctness assertions never
   depend on which request a fault lands on). *)

type fault = {
  f_name : string;
  f_prob : float;                (* in [0,1] *)
  f_delay : float;               (* seconds; 0 for instantaneous faults *)
  f_count : int Atomic.t;        (* injections so far *)
}

type t = {
  seed : int;
  rng : Random.State.t;
  rng_mu : Mutex.t;
  crash : fault option;
  delay : fault option;
  drop : fault option;
  garble : fault option;
  stall : fault option;
}

let none =
  { seed = 0;
    rng = Random.State.make [| 0 |];
    rng_mu = Mutex.create ();
    crash = None;
    delay = None;
    drop = None;
    garble = None;
    stall = None }

let is_active t =
  t.crash <> None || t.delay <> None || t.drop <> None || t.garble <> None
  || t.stall <> None

let fault name ?(delay = 0.0) prob =
  Some { f_name = name; f_prob = prob; f_delay = delay;
         f_count = Atomic.make 0 }

let parse spec =
  let entries =
    List.filter (fun s -> s <> "") (String.split_on_char ',' spec)
  in
  let prob what s =
    match float_of_string_opt s with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok p
    | _ -> Error (Printf.sprintf "%s: probability %S not in [0,1]" what s)
  in
  let millis what s =
    match int_of_string_opt s with
    | Some ms when ms > 0 -> Ok (float_of_int ms /. 1e3)
    | _ -> Error (Printf.sprintf "%s: duration %S not a positive ms count" what s)
  in
  let rec fold acc = function
    | [] -> Ok acc
    | e :: rest -> (
      match String.split_on_char ':' e with
      | [ "seed"; n ] -> (
        match int_of_string_opt n with
        | Some s -> fold { acc with seed = s } rest
        | None -> Error (Printf.sprintf "seed: %S not an integer" n))
      | [ "crash_job"; p ] -> (
        match prob "crash_job" p with
        | Ok p -> fold { acc with crash = fault "crash_job" p } rest
        | Error m -> Error m)
      | [ "delay_job"; ms; p ] -> (
        match millis "delay_job" ms, prob "delay_job" p with
        | Ok d, Ok p ->
          fold { acc with delay = fault "delay_job" ~delay:d p } rest
        | Error m, _ | _, Error m -> Error m)
      | [ "drop_conn"; p ] -> (
        match prob "drop_conn" p with
        | Ok p -> fold { acc with drop = fault "drop_conn" p } rest
        | Error m -> Error m)
      | [ "garble_reply"; p ] -> (
        match prob "garble_reply" p with
        | Ok p -> fold { acc with garble = fault "garble_reply" p } rest
        | Error m -> Error m)
      | [ "stall_read"; ms; p ] -> (
        match millis "stall_read" ms, prob "stall_read" p with
        | Ok d, Ok p ->
          fold { acc with stall = fault "stall_read" ~delay:d p } rest
        | Error m, _ | _, Error m -> Error m)
      | _ ->
        Error
          (Printf.sprintf
             "unknown fault entry %S (crash_job:p, delay_job:ms:p, \
              drop_conn:p, garble_reply:p, stall_read:ms:p, seed:n)"
             e))
  in
  match fold { none with seed = 1; rng_mu = Mutex.create () } entries with
  | Error m -> Error m
  | Ok t ->
    if not (is_active t) then Ok none
    else Ok { t with rng = Random.State.make [| t.seed |] }

let parse_exn spec =
  match parse spec with
  | Ok t -> t
  | Error m -> failwith ("fault plan: " ^ m)

let to_string t =
  if not (is_active t) then ""
  else
    let entry f render = Option.map render f in
    String.concat ","
      (List.filter_map Fun.id
         [ entry t.crash (fun f -> Printf.sprintf "crash_job:%g" f.f_prob);
           entry t.delay (fun f ->
               Printf.sprintf "delay_job:%.0f:%g" (f.f_delay *. 1e3) f.f_prob);
           entry t.drop (fun f -> Printf.sprintf "drop_conn:%g" f.f_prob);
           entry t.garble (fun f ->
               Printf.sprintf "garble_reply:%g" f.f_prob);
           entry t.stall (fun f ->
               Printf.sprintf "stall_read:%.0f:%g" (f.f_delay *. 1e3) f.f_prob);
           Some (Printf.sprintf "seed:%d" t.seed) ])

(* One decision: draw under the mutex, count + mirror to metrics when
   the fault fires. *)
let decide t = function
  | None -> false
  | Some f ->
    Mutex.lock t.rng_mu;
    let x = Random.State.float t.rng 1.0 in
    Mutex.unlock t.rng_mu;
    let fire = x < f.f_prob in
    if fire then begin
      Atomic.incr f.f_count;
      Metrics.Counter.incr (Metrics.counter ("serve.faults." ^ f.f_name))
    end;
    fire

let crash_job t = decide t t.crash
let drop_conn t = decide t t.drop
let garble_reply t = decide t t.garble

let timed t f =
  if decide t f then Option.map (fun f -> f.f_delay) f else None

let delay_job t = timed t t.delay
let stall_read t = timed t t.stall

let injected t =
  List.filter_map
    (Option.map (fun f -> (f.f_name, Atomic.get f.f_count)))
    [ t.crash; t.delay; t.drop; t.garble; t.stall ]
