open Dagmap_obs

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read past the last reply line *)
  chunk : Bytes.t;
  mutable open_ : bool;
}

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; buf = Buffer.create 256; chunk = Bytes.create 8192; open_ = true }

let close c =
  if c.open_ then begin
    c.open_ <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let half_close c =
  try Unix.shutdown c.fd Unix.SHUTDOWN_SEND
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let rec write_all fd s pos len =
  if len > 0 then begin
    match Unix.write_substring fd s pos len with
    | n -> write_all fd s (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s pos len
  end

let send_raw c s = write_all c.fd s 0 (String.length s)

(* Replies are one line each; anything read past the first LF stays
   buffered for the next call. *)
let read_line c =
  let rec go () =
    let s = Buffer.contents c.buf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear c.buf;
      Buffer.add_string c.buf (String.sub s (i + 1) (String.length s - i - 1));
      String.sub s 0 i
    | None -> (
      match Unix.read c.fd c.chunk 0 (Bytes.length c.chunk) with
      | 0 -> failwith "techmapd client: connection closed before a reply"
      | n ->
        Buffer.add_subbytes c.buf c.chunk 0 n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let read_reply c =
  let line = read_line c in
  match Json.parse line with
  | j -> j
  | exception e ->
    failwith
      (Printf.sprintf "techmapd client: bad reply %S (%s)" line
         (Json.describe e))

let request c ?payload req =
  let req =
    match payload with
    | None -> req
    | Some p -> { req with Proto.payload = Some (String.length p) }
  in
  send_raw c (Proto.encode_request req);
  Option.iter (send_raw c) payload;
  read_reply c
