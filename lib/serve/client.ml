open Dagmap_obs

exception Timeout

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read past the last reply line *)
  chunk : Bytes.t;
  mutable open_ : bool;
  timeout_s : float;  (* per-request I/O budget; 0. = unbounded *)
}

let connect ?(timeout_s = 0.0) path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd;
    buf = Buffer.create 256;
    chunk = Bytes.create 8192;
    open_ = true;
    timeout_s }

let close c =
  if c.open_ then begin
    c.open_ <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let half_close c =
  try Unix.shutdown c.fd Unix.SHUTDOWN_SEND
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let deadline_of c =
  if c.timeout_s > 0.0 then Clock.now () +. c.timeout_s else infinity

(* EINTR: retry immediately at the same position. EAGAIN/EWOULDBLOCK:
   wait for writability via select (never a busy loop) and resume at
   the current position so request framing survives partial writes;
   the wait — and, with a finite deadline, every write — is bounded. *)
let write_all ~deadline fd s pos len =
  let rec wait_writable () =
    if Clock.now () >= deadline then raise Timeout;
    let slice = min 1.0 (deadline -. Clock.now ()) in
    match Unix.select [] [ fd ] [] slice with
    | _, _ :: _, _ -> ()
    | _ -> wait_writable ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_writable ()
  in
  let rec go pos len =
    if len > 0 then begin
      if deadline < infinity then wait_writable ();
      match Unix.write_substring fd s pos len with
      | n -> go (pos + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
        wait_writable ();
        go pos len
    end
  in
  go pos len

let send_raw c s = write_all ~deadline:(deadline_of c) c.fd s 0 (String.length s)

(* Replies are one line each; anything read past the first LF stays
   buffered for the next call. Reads go through select so a reply
   that never arrives surfaces as [Timeout] instead of a hung
   process. *)
let read_line_by c ~deadline =
  let rec wait_readable () =
    if Clock.now () >= deadline then raise Timeout;
    let slice = min 1.0 (deadline -. Clock.now ()) in
    match Unix.select [ c.fd ] [] [] slice with
    | _ :: _, _, _ -> ()
    | _ -> wait_readable ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable ()
  in
  let rec go () =
    let s = Buffer.contents c.buf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear c.buf;
      Buffer.add_string c.buf (String.sub s (i + 1) (String.length s - i - 1));
      String.sub s 0 i
    | None -> (
      if deadline < infinity then wait_readable ();
      match Unix.read c.fd c.chunk 0 (Bytes.length c.chunk) with
      | 0 -> failwith "techmapd client: connection closed before a reply"
      | n ->
        Buffer.add_subbytes c.buf c.chunk 0 n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let read_reply_by c ~deadline =
  let line = read_line_by c ~deadline in
  match Json.parse line with
  | j -> j
  | exception e ->
    failwith
      (Printf.sprintf "techmapd client: bad reply %S (%s)" line
         (Json.describe e))

let read_reply c = read_reply_by c ~deadline:(deadline_of c)

let request c ?payload req =
  let req =
    match payload with
    | None -> req
    | Some p -> { req with Proto.payload = Some (String.length p) }
  in
  (* One budget for the whole exchange: header, payload, reply. *)
  let deadline = deadline_of c in
  let header = Proto.encode_request req in
  write_all ~deadline c.fd header 0 (String.length header);
  Option.iter (fun p -> write_all ~deadline c.fd p 0 (String.length p)) payload;
  read_reply_by c ~deadline

(* ------------------------------------------------------------------ *)
(* Retrying sessions                                                   *)
(* ------------------------------------------------------------------ *)

type retry = {
  attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  overall_s : float;
}

let default_retry =
  { attempts = 6; base_delay_s = 0.005; max_delay_s = 0.5; overall_s = 0.0 }

type retry_counters = {
  calls : int;
  retried_busy : int;
  retried_transient : int;
  gave_up : int;
}

type session = {
  s_path : string;
  s_timeout : float;
  s_retry : retry;
  s_rng : Random.State.t;
  mutable s_conn : t option;
  mutable s_calls : int;
  mutable s_busy : int;
  mutable s_transient : int;
  mutable s_giveups : int;
}

let session ?(timeout_s = 0.0) ?(retry = default_retry) ?(seed = 0) path =
  if retry.attempts < 1 then invalid_arg "Client.session: attempts < 1";
  { s_path = path;
    s_timeout = timeout_s;
    s_retry = retry;
    s_rng = Random.State.make [| seed; 0x7ec4 |];
    s_conn = None;
    s_calls = 0;
    s_busy = 0;
    s_transient = 0;
    s_giveups = 0 }

let counters s =
  { calls = s.s_calls;
    retried_busy = s.s_busy;
    retried_transient = s.s_transient;
    gave_up = s.s_giveups }

let disconnect s =
  (match s.s_conn with Some c -> close c | None -> ());
  s.s_conn <- None

let end_session = disconnect

(* Decorrelated jitter: each sleep is uniform in [base, 3 * previous],
   capped — consecutive retries spread out instead of thundering in
   lockstep, and the cap bounds the worst wait. Draws come from the
   session's private PRNG, never the global [Random] state: sessions
   on concurrent load-generator threads would otherwise interleave
   draws through the shared state and make per-seed chaos runs
   unreproducible (and OCaml's global Random is domain-local but not
   systhread-safe). *)
let jitter rng r ~prev =
  let hi = Float.max r.base_delay_s (prev *. 3.0) in
  let d = r.base_delay_s +. Random.State.float rng (hi -. r.base_delay_s) in
  Float.min r.max_delay_s d

let backoff s prev = jitter s.s_rng s.s_retry ~prev

let next_backoff s ~prev = backoff s prev

let call s ?payload req =
  let r = s.s_retry in
  let t_end =
    if r.overall_s > 0.0 then Clock.now () +. r.overall_s else infinity
  in
  s.s_calls <- s.s_calls + 1;
  let rec attempt n prev_delay =
    let outcome =
      match
        let conn =
          match s.s_conn with
          | Some conn -> conn
          | None ->
            let conn = connect ~timeout_s:s.s_timeout s.s_path in
            s.s_conn <- Some conn;
            conn
        in
        request conn ?payload req
      with
      | Json.Obj fields as j -> (
        match List.assoc_opt "status" fields with
        | Some (Json.String "busy") -> `Retry_busy
        | _ -> `Final j
        (* deadline_exceeded is a final error by design: the budget
           is spent, retrying cannot un-spend it. *))
      | j -> `Final j
      | exception Timeout ->
        disconnect s;
        `Retry_transient "request timed out"
      | exception Unix.Unix_error (e, _, _) ->
        disconnect s;
        `Retry_transient (Unix.error_message e)
      | exception Failure m ->
        (* EOF before a reply (dropped connection) or an unparseable
           (garbled) reply line: both are detectably broken, never
           silently wrong — reconnect and retry. *)
        disconnect s;
        `Retry_transient m
    in
    match outcome with
    | `Final j -> Ok j
    | (`Retry_busy | `Retry_transient _) as why ->
      (match why with
       | `Retry_busy -> s.s_busy <- s.s_busy + 1
       | `Retry_transient _ -> s.s_transient <- s.s_transient + 1);
      let d = backoff s prev_delay in
      if n + 1 >= r.attempts || Clock.now () +. d >= t_end then begin
        s.s_giveups <- s.s_giveups + 1;
        Error
          (match why with
           | `Retry_busy ->
             Printf.sprintf "gave up after %d attempts: server busy" (n + 1)
           | `Retry_transient m ->
             Printf.sprintf "gave up after %d attempts: %s" (n + 1) m)
      end
      else begin
        Unix.sleepf d;
        attempt (n + 1) d
      end
  in
  attempt 0 r.base_delay_s
