(** Fault-injection plans for the techmapd chaos harness.

    A plan is parsed from a compact spec string (CLI flag or
    [TECHMAPD_FAULTS] env var) and threaded through {!Server} hooks;
    every injection site consults the plan with one of the decision
    functions below. Decisions are driven by a seeded, mutex-guarded
    PRNG so a chaos run is reproducible up to thread interleaving;
    the number of injections per fault kind is counted in the plan
    {e and} mirrored into the ["serve.faults.*"] metrics registry.

    Spec grammar (comma-separated, order-free):

    {v
    plan   = entry *( "," entry )
    entry  = "crash_job:" P          ; job raises before mapping
           | "delay_job:" MS ":" P   ; job sleeps MS milliseconds first
           | "drop_conn:" P          ; reply withheld, connection cut
           | "garble_reply:" P       ; reply bytes corrupted (unparseable)
           | "stall_read:" MS ":" P  ; server stalls MS before reading
           | "seed:" N               ; PRNG seed (default 1)
    v}

    with [P] a probability in [0,1] and [MS] a positive duration in
    milliseconds. The empty string parses to {!none}. *)

type t

val none : t
(** The inert plan: every decision answers "no fault", nothing is
    counted. Servers run with [none] unless chaos is requested. *)

val is_active : t -> bool
(** [false] exactly for plans with no fault entries ({!none} and the
    empty spec). *)

val parse : string -> (t, string) result
(** Parse a spec string; [Error] carries a human diagnostic naming
    the offending entry. *)

val parse_exn : string -> t
(** {!parse}, raising [Failure] — for CLI plumbing. *)

val to_string : t -> string
(** Canonical spec rendering (entries in fixed order, seed included
    when any fault is present); [""] for {!none}. *)

(** {1 Decision points} — each call consumes PRNG state and, when it
    fires, bumps the fault's injection counter. *)

val crash_job : t -> bool
(** The job should raise instead of mapping. *)

val delay_job : t -> float option
(** [Some seconds] when the job should sleep before mapping. *)

val drop_conn : t -> bool
(** The reply should be withheld and the connection cut. *)

val garble_reply : t -> bool
(** The reply line should be corrupted beyond JSON parseability. *)

val stall_read : t -> float option
(** [Some seconds] when the server should stall before reading the
    next request. *)

val injected : t -> (string * int) list
(** Injection counts so far, one [(fault, count)] pair per fault kind
    configured in the plan (fixed order, zero counts included). *)
