(* Signal hygiene: SIGPIPE-safe writes and flush-on-termination.

   The hooks list is mutex-guarded because the daemon registers
   cleanups from connection threads while the handler may fire on the
   main thread. Handlers installed through Sys.set_signal run at
   OCaml safepoints, so arbitrary OCaml code (including exit) is
   legal in them — "async-safe" here means "fast and non-blocking",
   not the C rules. *)

let ignore_sigpipe () =
  (* Windows has no SIGPIPE; Sys.set_signal raises there. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let mu = Mutex.create ()
let hooks : (unit -> unit) list ref = ref []

let add_cleanup f =
  Mutex.lock mu;
  hooks := f :: !hooks;
  Mutex.unlock mu

let run_cleanups () =
  Mutex.lock mu;
  let hs = !hooks in
  hooks := [];
  Mutex.unlock mu;
  List.iter (fun f -> try f () with _ -> ()) hs

let install handler =
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle handler)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

let install_default () =
  install (fun signo ->
      run_cleanups ();
      exit (128 + signo))
