(** The [techmapd] wire protocol: newline-delimited request headers
    with length-prefixed BLIF payloads, one-line JSON responses.

    Dependency-free by construction — the only moving parts are an
    ASCII header line and {!Dagmap_obs.Json}. The full grammar lives
    in DESIGN.md §13; the shape is:

    {v
    request  = verb *( SP key "=" value ) LF [ payload ]
    payload  = exactly N bytes of BLIF, N = value of the "payload" key
    response = one line of JSON, LF-terminated
    v}

    A header line is at most {!max_header} bytes; a payload at most
    {!max_payload}. Unknown keys are ignored (forward
    compatibility); unknown verbs, malformed pairs and out-of-range
    payload lengths are structured {!parse_error}s. Errors that
    leave the stream position undefined (an unreadable payload
    length) are [fatal]: the server replies and then closes the
    connection, since it cannot find the next request boundary. *)

type verb = Ping | Map | Check | Sta | Stats | Shutdown

val verb_name : verb -> string
val verb_of_string : string -> verb option

type request = {
  verb : verb;
  id : string option;       (** client tag, echoed verbatim in the reply *)
  circuit : string option;  (** named circuit spec (server-side resolution) *)
  payload : int option;     (** declared BLIF payload length in bytes *)
  lib : string option;      (** preloaded library name (default: first) *)
  mode : string option;     (** tree | dag | dag-extended (default dag) *)
  cache : bool;             (** match cache (default true) *)
  audit : bool;             (** run the full lib/check audit on map replies *)
  want_blif : bool;         (** include the mapped netlist BLIF in the reply *)
  metrics : bool;           (** include the metrics registry in stats replies *)
  deadline_ms : int option;
      (** end-to-end budget in milliseconds, measured by the server
          from admission; an expired request gets a structured
          ["deadline_exceeded"] error instead of a result *)
}

val request : verb -> request
(** A request with every optional field at its default. *)

val max_header : int
(** Header line cap in bytes, terminator included (4096). *)

val max_payload : int
(** Payload cap in bytes (16 MiB). *)

type parse_error = {
  code : string;     (** stable machine code, e.g. ["bad_request"] *)
  message : string;  (** human diagnostic *)
  fatal : bool;      (** the connection cannot be resynchronized *)
}

val parse_request : string -> (request, parse_error) result
(** Parse one header line (with or without the trailing LF). *)

val encode_request : request -> string
(** Render the header line, trailing LF included. Only non-default
    fields are emitted, so [parse_request (encode_request r) = Ok r].
    Raises [Invalid_argument] if a field value contains a space,
    ["="]-in-key ambiguity never arises (values may contain ["="]),
    or a newline — such values cannot be framed. *)

val error_json :
  ?id:string -> code:string -> string -> Dagmap_obs.Json.t
(** [{"status":"error","code":code,"message":...}] plus the echoed
    id, ready for one-line serialization. *)

val busy_json : ?id:string -> depth:int -> limit:int -> unit -> Dagmap_obs.Json.t
(** The backpressure reply: [{"status":"busy",...}] with the queue
    depth that triggered it and the configured high-water mark. *)

val deadline_json :
  ?id:string -> elapsed_ms:int -> deadline_ms:int -> unit -> Dagmap_obs.Json.t
(** The structured deadline miss:
    [{"status":"error","code":"deadline_exceeded",...}] carrying how
    long the request had been in the server against its budget.
    Clients must {e not} retry these — the budget is spent. *)
