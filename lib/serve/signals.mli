(** Signal hygiene shared by the batch CLI and the [techmapd] daemon.

    Two concerns, both prerequisites for long-lived socket servers
    and for batch runs that stream artifacts to disk:

    - {b SIGPIPE}: the default disposition kills the process the
      moment a peer closes its end of a socket or pipe mid-write.
      {!ignore_sigpipe} turns that into a [Unix.EPIPE] error the
      writer can handle per-connection.
    - {b SIGINT/SIGTERM}: the default disposition dies instantly,
      losing whatever metrics/trace output the run had promised.
      {!install_default} runs registered cleanup hooks (flush the
      span buffer, write the metrics registry) and then exits with
      the conventional [128 + signo] status. The daemon replaces
      this with its own graceful-drain handler via {!install}. *)

val ignore_sigpipe : unit -> unit
(** Set SIGPIPE to [Signal_ignore] so writes to a closed socket
    raise [Unix.Unix_error (EPIPE, _, _)] instead of killing the
    process. No-op on platforms without SIGPIPE. *)

val add_cleanup : (unit -> unit) -> unit
(** Register a hook for the termination path. Hooks run at most once
    (the list is cleared as it is taken), newest first; a raising
    hook is ignored and the rest still run. They only fire on a
    signal — a run that completes normally writes its artifacts
    itself. *)

val run_cleanups : unit -> unit
(** Run and clear the registered hooks now (the termination handler
    calls this; exposed for tests). *)

val install_default : unit -> unit
(** Install the default SIGINT/SIGTERM handler: run cleanups, then
    [exit (128 + signo)]. *)

val install : (int -> unit) -> unit
(** Install a custom SIGINT/SIGTERM handler (the daemon's drain
    trigger), replacing any previous one. The handler receives the
    signal number and must be async-safe-ish: set a flag, poke a
    pipe, return. *)
