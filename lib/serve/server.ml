(* techmapd: mapping-as-a-service over a Unix domain socket.

   Thread/domain layout: the run-thread owns accept; one systhread
   per connection frames requests and writes replies (blocking I/O
   drops the runtime lock, so connection threads are cheap and
   I/O-concurrent on domain 0); the CPU-bound request bodies are
   submitted to a Parmap pool in service mode, one job per request,
   so mapping runs genuinely parallel across worker domains while
   each job is the plain sequential Mapper (many small jobs, not one
   big one).

   Failure containment: everything a request can raise — BLIF parse
   errors, unknown libraries, Mapper.Unmappable, plain bugs — is
   trapped at the job boundary and becomes a structured error reply
   on that connection only. Framing errors that lose the request
   boundary (unreadable payload length, truncated payload) get a
   final error reply and the connection is closed; the daemon
   itself never exits for a request's sake. *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_timing
open Dagmap_check
open Dagmap_obs

type config = {
  socket_path : string;
  jobs : int;
  queue_max : int;
  libraries : (string * Libraries.t) list;
  resolve_circuit : (string -> Network.t) option;
  verbose : bool;
}

type lib_entry = { lib : Libraries.t; db : Matchdb.t }

(* Ring size for the recent-latency window behind stats p50/p99. *)
let lat_ring = 4096

type t = {
  cfg : config;
  libs : (string * lib_entry) list;
  default_lib : string;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stopping : bool Atomic.t;
  pool : Parmap.pool;
  in_flight : int Atomic.t;
  served : int Atomic.t;
  errored : int Atomic.t;
  busied : int Atomic.t;
  mu : Mutex.t;  (* guards conns and the latency ring *)
  mutable conns : Unix.file_descr list;
  mutable threads : Thread.t list;  (* run-thread only *)
  lat : float array;
  mutable lat_n : int;
  t0 : float;
}

let log t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.verbose then Printf.eprintf "techmapd: %s\n%!" s)
    fmt

(* ------------------------------------------------------------------ *)
(* Small concurrency helpers                                           *)
(* ------------------------------------------------------------------ *)

type 'a ivar = {
  iv_mu : Mutex.t;
  iv_cond : Condition.t;
  mutable iv_v : 'a option;
}

let ivar () =
  { iv_mu = Mutex.create (); iv_cond = Condition.create (); iv_v = None }

let ivar_fill iv x =
  Mutex.lock iv.iv_mu;
  iv.iv_v <- Some x;
  Condition.signal iv.iv_cond;
  Mutex.unlock iv.iv_mu

let ivar_await iv =
  Mutex.lock iv.iv_mu;
  while iv.iv_v = None do
    Condition.wait iv.iv_cond iv.iv_mu
  done;
  let x = Option.get iv.iv_v in
  Mutex.unlock iv.iv_mu;
  x

(* ------------------------------------------------------------------ *)
(* Buffered connection reader                                          *)
(* ------------------------------------------------------------------ *)

module Reader = struct
  type r = {
    fd : Unix.file_descr;
    buf : Bytes.t;
    mutable pos : int;
    mutable len : int;
  }

  let create fd = { fd; buf = Bytes.create 8192; pos = 0; len = 0 }

  (* Returns bytes now available, 0 at EOF. Connection-level failures
     (peer reset, descriptor shut down under us) read as EOF: the
     connection is over either way. *)
  let refill r =
    if r.pos < r.len then r.len - r.pos
    else begin
      let rec go () =
        match Unix.read r.fd r.buf 0 (Bytes.length r.buf) with
        | n ->
          r.pos <- 0;
          r.len <- n;
          n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> 0
      in
      go ()
    end

  (* One header line, LF-terminated, at most Proto.max_header bytes.
     [`Line s] excludes the LF. [`Truncated] is data-then-EOF without
     a terminator; [`Too_long] consumed max_header bytes without one
     (the rest of the stream is unframeable). *)
  let read_line r =
    let b = Buffer.create 128 in
    let rec go () =
      if refill r = 0 then
        if Buffer.length b = 0 then `Eof else `Truncated
      else begin
        match Bytes.index_from_opt r.buf r.pos '\n' with
        | Some i when i < r.len ->
          Buffer.add_subbytes b r.buf r.pos (i - r.pos);
          r.pos <- i + 1;
          if Buffer.length b + 1 > Proto.max_header then `Too_long
          else `Line (Buffer.contents b)
        | _ ->
          Buffer.add_subbytes b r.buf r.pos (r.len - r.pos);
          r.pos <- r.len;
          if Buffer.length b >= Proto.max_header then `Too_long else go ()
      end
    in
    go ()

  (* Exactly [n] payload bytes; [None] on EOF before that. *)
  let read_exact r n =
    let out = Bytes.create n in
    let rec go filled =
      if filled = n then Some (Bytes.unsafe_to_string out)
      else if refill r = 0 then None
      else begin
        let take = min (n - filled) (r.len - r.pos) in
        Bytes.blit r.buf r.pos out filled take;
        r.pos <- r.pos + take;
        go (filled + take)
      end
    in
    go 0
end

let rec write_all fd s pos len =
  if len > 0 then begin
    match Unix.write_substring fd s pos len with
    | n -> write_all fd s (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s pos len
  end

(* A reply that cannot be delivered (peer vanished mid-write) is not
   a daemon problem; SIGPIPE is ignored so this surfaces as EPIPE. *)
let send fd doc =
  let s = Json.to_string doc ^ "\n" in
  try write_all fd s 0 (String.length s) with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Request execution (runs on a pool worker domain)                    *)
(* ------------------------------------------------------------------ *)

exception Reply_error of string * string  (* code, message *)

let resolve_lib t name =
  let name = Option.value ~default:t.default_lib name in
  match List.assoc_opt name t.libs with
  | Some e -> e
  | None ->
    raise
      (Reply_error
         ( "unknown_lib",
           Printf.sprintf "library %S not loaded (have %s)" name
             (String.concat "/" (List.map fst t.libs)) ))

let resolve_mode = function
  | None | Some "dag" -> Mapper.Dag
  | Some "tree" -> Mapper.Tree
  | Some "dag-extended" -> Mapper.Dag_extended
  | Some m ->
    raise
      (Reply_error
         ("unknown_mode", Printf.sprintf "mode %S (tree/dag/dag-extended)" m))

let load_network t (req : Proto.request) payload =
  match payload, req.Proto.circuit with
  | Some blif, _ -> (
    try Dagmap_blif.Blif.read_string ~file:"<payload>" blif
    with Dagmap_blif.Blif.Parse_error _ as e ->
      raise (Reply_error ("blif_parse", Dagmap_blif.Blif.describe e)))
  | None, Some spec -> (
    match t.cfg.resolve_circuit with
    | None ->
      raise
        (Reply_error
           ("no_circuit_resolver", "this daemon only accepts BLIF payloads"))
    | Some f -> (
      try f spec with
      | Failure m -> raise (Reply_error ("unknown_circuit", m))
      | Dagmap_blif.Blif.Parse_error _ as e ->
        raise (Reply_error ("blif_parse", Dagmap_blif.Blif.describe e))))
  | None, None ->
    raise
      (Reply_error
         ("bad_request", "map/check/sta need a payload or a circuit= spec"))

let issue_strings issues =
  Json.List
    (List.map
       (fun i -> Json.String (Format.asprintf "%a" Check.pp_issue i))
       issues)

let map_and_subject t req payload =
  let net = load_network t req payload in
  let entry = resolve_lib t req.Proto.lib in
  let mode = resolve_mode req.Proto.mode in
  let sg = Subject.of_network net in
  let result = Mapper.map ~cache:req.Proto.cache mode entry.db sg in
  (sg, result)

let netlist_fields nl =
  [ ("delay", Json.Float (Netlist.delay nl));
    ("area", Json.Float (Netlist.area nl));
    ("gates", Json.Int (Netlist.num_gates nl));
    ("duplicated", Json.Int (Netlist.duplication nl)) ]

let exec_map t req payload =
  let sg, result = map_and_subject t req payload in
  let nl = result.Mapper.netlist in
  let audit =
    if not req.Proto.audit then []
    else begin
      match Check.audit_result sg result with
      | [] -> [ ("audit", Json.String "ok") ]
      | issues ->
        [ ("audit", Json.String "failed"); ("audit_issues", issue_strings issues) ]
    end
  in
  let blif =
    if req.Proto.want_blif then
      [ ("blif", Json.String (Dagmap_blif.Blif.write_netlist nl)) ]
    else []
  in
  [ ("subject_nodes", Json.Int (Subject.num_nodes sg)) ]
  @ netlist_fields nl
  @ [ ("matches_tried", Json.Int result.Mapper.run.Mapper.matches_tried) ]
  @ audit @ blif

let exec_check t req payload =
  let sg, result = map_and_subject t req payload in
  let issues = Check.audit_result sg result in
  netlist_fields result.Mapper.netlist
  @ [ ("clean", Json.Bool (issues = [])); ("issues", issue_strings issues) ]

let exec_sta t req payload =
  let _, result = map_and_subject t req payload in
  let report = Sta.analyze result.Mapper.netlist in
  let path =
    Json.List
      (List.map
         (fun pe ->
           Json.Obj
             [ ("gate", Json.String pe.Sta.pe_gate);
               ("pin", Json.Int pe.Sta.pe_through_pin);
               ("arrival", Json.Float pe.Sta.pe_arrival) ])
         report.Sta.critical_path)
  in
  netlist_fields result.Mapper.netlist
  @ [ ("critical_output", Json.String report.Sta.critical_output);
      ("worst_delay", Json.Float report.Sta.worst_delay);
      ("critical_path", path) ]

let exec t (req : Proto.request) payload =
  Span.with_span ~cat:"serve" ("req:" ^ Proto.verb_name req.Proto.verb)
    (fun () ->
      match req.Proto.verb with
      | Proto.Map -> exec_map t req payload
      | Proto.Check -> exec_check t req payload
      | Proto.Sta -> exec_sta t req payload
      | Proto.Ping | Proto.Stats | Proto.Shutdown -> assert false)

(* ------------------------------------------------------------------ *)
(* Stats (served inline on the connection thread)                      *)
(* ------------------------------------------------------------------ *)

let record_latency t dt =
  Metrics.Histogram.observe (Metrics.histogram "serve.latency_seconds") dt;
  Mutex.lock t.mu;
  t.lat.(t.lat_n mod lat_ring) <- dt;
  t.lat_n <- t.lat_n + 1;
  Mutex.unlock t.mu

let latency_json t =
  Mutex.lock t.mu;
  let n = min t.lat_n lat_ring in
  let a = Array.sub t.lat 0 n in
  Mutex.unlock t.mu;
  Array.sort compare a;
  let q p =
    if n = 0 then 0.0
    else a.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let mean =
    if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n
  in
  Json.Obj
    [ ("window", Json.Int n);
      ("mean_ms", Json.Float (mean *. 1e3));
      ("p50_ms", Json.Float (q 0.50 *. 1e3));
      ("p90_ms", Json.Float (q 0.90 *. 1e3));
      ("p99_ms", Json.Float (q 0.99 *. 1e3));
      ("max_ms", Json.Float (q 1.0 *. 1e3)) ]

let stats_fields t (req : Proto.request) =
  [ ("uptime_seconds", Json.Float (Clock.since t.t0));
    ("served", Json.Int (Atomic.get t.served));
    ("errors", Json.Int (Atomic.get t.errored));
    ("busy", Json.Int (Atomic.get t.busied));
    ("in_flight", Json.Int (Atomic.get t.in_flight));
    ("queue_max", Json.Int t.cfg.queue_max);
    ("jobs", Json.Int (Parmap.pool_size t.pool));
    ("libraries",
     Json.List (List.map (fun (n, _) -> Json.String n) t.libs));
    ("latency", latency_json t) ]
  @ if req.Proto.metrics then [ ("metrics", Metrics.to_json ()) ] else []

(* ------------------------------------------------------------------ *)
(* Connection handling                                                 *)
(* ------------------------------------------------------------------ *)

let ok_json ?id fields =
  Json.Obj
    ((match id with None -> [] | Some id -> [ ("id", Json.String id) ])
    @ [ ("status", Json.String "ok") ]
    @ fields)

let verb_counter verb =
  Metrics.counter ("serve.requests." ^ Proto.verb_name verb)

let reply t fd doc =
  Atomic.incr t.served;
  Metrics.Counter.incr (Metrics.counter "serve.requests");
  send fd doc

let reply_error t fd ?id ~code message =
  Atomic.incr t.errored;
  Metrics.Counter.incr (Metrics.counter "serve.errors");
  reply t fd (Proto.error_json ?id ~code message)

let stop t =
  if not (Atomic.exchange t.stopping true) then
    try ignore (Unix.write_substring t.wake_w "x" 0 1)
    with Unix.Unix_error _ -> ()

(* Dispatch one framed request. [`Keep] continues the session;
   [`Close] ends it (framing no longer trustworthy). *)
let dispatch t fd (req : Proto.request) payload =
  let id = req.Proto.id in
  Metrics.Counter.incr (verb_counter req.Proto.verb);
  match req.Proto.verb with
  | Proto.Ping ->
    reply t fd (ok_json ?id [ ("reply", Json.String "pong") ]);
    `Keep
  | Proto.Stats ->
    reply t fd (ok_json ?id (stats_fields t req));
    `Keep
  | Proto.Shutdown ->
    reply t fd (ok_json ?id [ ("draining", Json.Bool true) ]);
    stop t;
    `Keep
  | Proto.Map | Proto.Check | Proto.Sta ->
    (* Backpressure: a bounded in-flight count (queued + running).
       fetch_and_add makes the admission decision atomic — overload
       turns into an immediate busy reply, never an unbounded queue. *)
    let depth = Atomic.fetch_and_add t.in_flight 1 in
    if depth >= t.cfg.queue_max then begin
      Atomic.decr t.in_flight;
      Atomic.incr t.busied;
      Metrics.Counter.incr (Metrics.counter "serve.busy");
      reply t fd (Proto.busy_json ?id ~depth ~limit:t.cfg.queue_max ());
      `Keep
    end
    else begin
      let iv = ivar () in
      let t_start = Clock.now () in
      let job () =
        let outcome =
          try Ok (exec t req payload) with
          | Reply_error (code, m) -> Error (code, m)
          | Mapper.Unmappable { description; _ } ->
            Error ("unmappable", description)
          | Failure m -> Error ("failed", m)
          | Invalid_argument m -> Error ("failed", m)
          | e -> Error ("exception", Printexc.to_string e)
        in
        Atomic.decr t.in_flight;
        ivar_fill iv outcome
      in
      if not (Parmap.submit t.pool job) then begin
        Atomic.decr t.in_flight;
        reply_error t fd ?id ~code:"draining" "daemon is shutting down"
      end
      else begin
        match ivar_await iv with
        | Ok fields ->
          let dt = Clock.since t_start in
          record_latency t dt;
          reply t fd
            (ok_json ?id
               (fields @ [ ("micros", Json.Int (int_of_float (dt *. 1e6))) ]))
        | Error (code, m) -> reply_error t fd ?id ~code m
      end;
      `Keep
    end

let handle_conn t fd =
  let r = Reader.create fd in
  let rec loop () =
    match Reader.read_line r with
    | `Eof -> ()
    | `Truncated ->
      reply_error t fd ~code:"truncated_header"
        "connection closed mid-header"
    | `Too_long ->
      reply_error t fd ~code:"header_too_long"
        (Printf.sprintf "header exceeds %d bytes" Proto.max_header)
    | `Line line -> (
      match Proto.parse_request line with
      | Error e ->
        reply_error t fd ~code:e.Proto.code e.Proto.message;
        if e.Proto.fatal then () else loop ()
      | Ok req -> (
        let payload =
          match req.Proto.payload with
          | None | Some 0 -> Ok None
          | Some n -> (
            match Reader.read_exact r n with
            | Some s -> Ok (Some s)
            | None -> Error ())
        in
        match payload with
        | Error () ->
          (* The peer may have half-closed (shutdown SEND) — the
             reply still flushes on its open receive side. *)
          reply_error t fd ~code:"truncated_payload"
            (Printf.sprintf "connection closed before %d payload bytes"
               (Option.value ~default:0 req.Proto.payload))
        | Ok payload -> (
          match dispatch t fd req payload with
          | `Keep -> loop ()
          | `Close -> ())))
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let claim_socket path =
  if Sys.file_exists path then begin
    (* A connectable socket means another daemon is live; a stale
       file from a dead one is replaced. *)
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      failwith (Printf.sprintf "%s: a daemon is already serving here" path);
    try Sys.remove path with Sys_error _ -> ()
  end

let create cfg =
  if cfg.libraries = [] then failwith "techmapd: no libraries to serve";
  if cfg.jobs < 1 then failwith "techmapd: need at least one worker domain";
  if cfg.queue_max < 1 then failwith "techmapd: queue_max must be >= 1";
  Signals.ignore_sigpipe ();
  claim_socket cfg.socket_path;
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  let libs =
    List.map
      (fun (name, lib) -> (name, { lib; db = Matchdb.prepare lib }))
      cfg.libraries
  in
  let t =
    { cfg;
      libs;
      default_lib = fst (List.hd libs);
      listen_fd;
      wake_r;
      wake_w;
      stopping = Atomic.make false;
      pool = Parmap.make_pool cfg.jobs;
      in_flight = Atomic.make 0;
      served = Atomic.make 0;
      errored = Atomic.make 0;
      busied = Atomic.make 0;
      mu = Mutex.create ();
      conns = [];
      threads = [];
      lat = Array.make lat_ring 0.0;
      lat_n = 0;
      t0 = Clock.now () }
  in
  log t "serving %s (%d worker domains, queue %d, libraries %s)"
    cfg.socket_path cfg.jobs cfg.queue_max
    (String.concat "/" (List.map fst libs));
  t

let conn_thread t fd =
  (try handle_conn t fd with _ -> ());
  Mutex.lock t.mu;
  t.conns <- List.filter (fun c -> c <> fd) t.conns;
  Mutex.unlock t.mu;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Graceful drain: stop accepting, wake idle readers by shutting the
   receive side only (in-flight jobs still complete and their replies
   flush on the open send side), join every connection thread, then
   quiesce and retire the worker pool. *)
let drain t =
  log t "draining (%d requests served)" (Atomic.get t.served);
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove t.cfg.socket_path with Sys_error _ -> ());
  Mutex.lock t.mu;
  let conns = t.conns in
  Mutex.unlock t.mu;
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ | Invalid_argument _ -> ())
    conns;
  List.iter Thread.join t.threads;
  Parmap.drain t.pool;
  Parmap.shutdown_pool t.pool;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  log t "drained cleanly"

let run t =
  let rec accept_loop () =
    if Atomic.get t.stopping then ()
    else begin
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | ready, _, _ ->
        if List.mem t.wake_r ready || Atomic.get t.stopping then ()
        else begin
          (match Unix.accept ~cloexec:true t.listen_fd with
           | exception
               Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
             ()
           | fd, _ ->
             Mutex.lock t.mu;
             t.conns <- fd :: t.conns;
             Mutex.unlock t.mu;
             t.threads <- Thread.create (fun () -> conn_thread t fd) () :: t.threads);
          accept_loop ()
        end
    end
  in
  accept_loop ();
  drain t

let requests_served t = Atomic.get t.served
