(* techmapd: mapping-as-a-service over a Unix domain socket.

   Thread/domain layout: the run-thread owns accept; one systhread
   per connection frames requests and writes replies (blocking I/O
   drops the runtime lock, so connection threads are cheap and
   I/O-concurrent on domain 0); the CPU-bound request bodies are
   submitted to a Parmap pool in service mode, one job per request,
   so mapping runs genuinely parallel across worker domains while
   each job is the plain sequential Mapper (many small jobs, not one
   big one).

   Failure containment: everything a request can raise — BLIF parse
   errors, unknown libraries, Mapper.Unmappable, plain bugs — is
   trapped at the job boundary and becomes a structured error reply
   on that connection only. Framing errors that lose the request
   boundary (unreadable payload length, truncated payload) get a
   final error reply and the connection is closed; the daemon
   itself never exits for a request's sake.

   Resilience: a request may carry an end-to-end budget
   (deadline_ms=), enforced at admission, while it waits for a
   worker, and while its payload is still arriving; every in-flight
   request is registered in a pending table that a watchdog thread
   scans, settling expired entries with structured deadline_exceeded
   replies. The same watchdog detects jobs overrunning the
   job_budget_s wall budget: it fails the stuck request, marks the
   pool unhealthy, and hands the pool to a background restarter
   while new requests are served inline on the connection thread
   with degraded=true. All socket reads and reply writes go through
   select so a slow or half-open peer can only stall its own
   connection, and only up to io_timeout_s; fully idle connections
   are reaped by a sweeper in the accept loop after idle_timeout_s.
   A Faultplan threads injected faults (crash/delay/drop/garble/
   stall) through all of the above for the chaos suite. *)

open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core
open Dagmap_timing
open Dagmap_check
open Dagmap_obs

type config = {
  socket_path : string;
  jobs : int;
  queue_max : int;
  libraries : (string * Libraries.t) list;
  resolve_circuit : (string -> Network.t) option;
  verbose : bool;
  io_timeout_s : float;
  idle_timeout_s : float;
  job_budget_s : float;
  faults : Faultplan.t;
}

type lib_entry = { lib : Libraries.t; db : Matchdb.t }

(* Ring size for the recent-latency window behind stats p50/p99. *)
let lat_ring = 4096

(* ------------------------------------------------------------------ *)
(* Small concurrency helpers                                           *)
(* ------------------------------------------------------------------ *)

type 'a ivar = {
  iv_mu : Mutex.t;
  iv_cond : Condition.t;
  mutable iv_v : 'a option;
}

let ivar () =
  { iv_mu = Mutex.create (); iv_cond = Condition.create (); iv_v = None }

let ivar_fill iv x =
  Mutex.lock iv.iv_mu;
  iv.iv_v <- Some x;
  Condition.signal iv.iv_cond;
  Mutex.unlock iv.iv_mu

let ivar_await iv =
  Mutex.lock iv.iv_mu;
  while iv.iv_v = None do
    Condition.wait iv.iv_cond iv.iv_mu
  done;
  let x = Option.get iv.iv_v in
  Mutex.unlock iv.iv_mu;
  x

(* How a registered request ends. Exactly one of these reaches the
   connection thread, whichever of job / watchdog / drain settles the
   pending record first. *)
type outcome =
  | O_ok of (string * Json.t) list
  | O_error of string * string
  | O_busy
  | O_deadline

(* One registered in-flight request. Settling is first-wins on
   [p_settled]: the job publishes its result, the watchdog publishes a
   deadline miss or a watchdog_timeout, the restarter publishes busy
   for queued jobs it is about to drop — whoever wins the CAS owns
   the reply. *)
type pending = {
  p_iv : outcome ivar;
  p_settled : bool Atomic.t;
  p_deadline : float;  (* absolute Clock time; infinity when unset *)
  p_started : float option Atomic.t;
  p_gen : int;         (* pool generation the job was submitted to *)
}

type conn = {
  c_fd : Unix.file_descr;
  c_last : float ref;
      (* last moment the connection was seen idle-at-the-top-of-loop;
         infinity while a request is being processed, so the idle
         sweeper never cuts a working connection *)
}

type t = {
  cfg : config;
  libs : (string * lib_entry) list;
  default_lib : string;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stopping : bool Atomic.t;
  mutable pool : Parmap.pool;  (* guarded by mu *)
  mutable pool_gen : int;      (* guarded by mu *)
  healthy : bool Atomic.t;
  in_flight : int Atomic.t;
  served : int Atomic.t;
  errored : int Atomic.t;
  busied : int Atomic.t;
  deadlined : int Atomic.t;
  degraded : int Atomic.t;
  restarts : int Atomic.t;
  reaped : int Atomic.t;
  mu : Mutex.t;  (* guards conns, pending, reapers, pool, latency ring *)
  mutable conns : conn list;
  mutable pending : pending list;
  mutable threads : Thread.t list;  (* run-thread only *)
  mutable reapers : Thread.t list;
  mutable watchdog : Thread.t option;
  lat : float array;
  mutable lat_n : int;
  t0 : float;
}

let log t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.verbose then Printf.eprintf "techmapd: %s\n%!" s)
    fmt

let register t ~deadline =
  Mutex.lock t.mu;
  let p =
    { p_iv = ivar ();
      p_settled = Atomic.make false;
      p_deadline = deadline;
      p_started = Atomic.make None;
      p_gen = t.pool_gen }
  in
  t.pending <- p :: t.pending;
  let pool = t.pool in
  Mutex.unlock t.mu;
  (p, pool)

let settle t p outcome =
  if Atomic.compare_and_set p.p_settled false true then begin
    Mutex.lock t.mu;
    t.pending <- List.filter (fun q -> q != p) t.pending;
    Mutex.unlock t.mu;
    Atomic.decr t.in_flight;
    ivar_fill p.p_iv outcome
  end

(* ------------------------------------------------------------------ *)
(* Buffered connection reader (select-bounded)                         *)
(* ------------------------------------------------------------------ *)

module Reader = struct
  type r = {
    fd : Unix.file_descr;
    buf : Bytes.t;
    mutable pos : int;
    mutable len : int;
  }

  let create fd = { fd; buf = Bytes.create 8192; pos = 0; len = 0 }

  (* Make bytes available, waiting via select so the wait is bounded
     by [deadline] (infinity = wait forever, in 1s slices that stay
     responsive to a shutdown of the descriptor). Connection-level
     failures (peer reset, descriptor shut down under us) read as
     EOF: the connection is over either way. *)
  let refill r ~deadline =
    if r.pos < r.len then `Data
    else begin
      let rec wait () =
        if Clock.now () >= deadline then `Timeout
        else begin
          let slice = min 1.0 (deadline -. Clock.now ()) in
          match Unix.select [ r.fd ] [] [] slice with
          | [], _, _ -> wait ()
          | _ -> read_once ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
          | exception Unix.Unix_error _ -> `Eof
        end
      and read_once () =
        match Unix.read r.fd r.buf 0 (Bytes.length r.buf) with
        | 0 -> `Eof
        | n ->
          r.pos <- 0;
          r.len <- n;
          `Data
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          wait ()
        | exception Unix.Unix_error _ -> `Eof
      in
      wait ()
    end

  (* One header line, LF-terminated, at most Proto.max_header bytes.
     [`Line s] excludes the LF. [`Truncated] is data-then-EOF without
     a terminator; [`Too_long] consumed max_header bytes without one
     (the rest of the stream is unframeable). Waiting for the *first*
     byte is unbounded (idle keep-alive is the sweeper's business);
     once a partial header exists, every further refill must arrive
     within [io_timeout] or the read times out — a slowloris peer
     trickling a header cannot pin the thread. *)
  let read_line r ~io_timeout =
    let b = Buffer.create 128 in
    let rec go () =
      let deadline =
        if Buffer.length b > 0 && io_timeout > 0.0 then
          Clock.now () +. io_timeout
        else infinity
      in
      match refill r ~deadline with
      | `Timeout -> `Timeout
      | `Eof -> if Buffer.length b = 0 then `Eof else `Truncated
      | `Data -> (
        match Bytes.index_from_opt r.buf r.pos '\n' with
        | Some i when i < r.len ->
          Buffer.add_subbytes b r.buf r.pos (i - r.pos);
          r.pos <- i + 1;
          if Buffer.length b + 1 > Proto.max_header then `Too_long
          else `Line (Buffer.contents b)
        | _ ->
          Buffer.add_subbytes b r.buf r.pos (r.len - r.pos);
          r.pos <- r.len;
          if Buffer.length b >= Proto.max_header then `Too_long else go ())
    in
    go ()

  (* Exactly [n] payload bytes. Each refill must make progress within
     [io_timeout], and the whole read is additionally bounded by the
     request's absolute [deadline]. *)
  let read_exact r n ~io_timeout ~deadline =
    let out = Bytes.create n in
    let rec go filled =
      if filled = n then `Payload (Bytes.unsafe_to_string out)
      else begin
        let d =
          if io_timeout > 0.0 then Clock.now () +. io_timeout else infinity
        in
        match refill r ~deadline:(min d deadline) with
        | `Timeout -> `Timeout
        | `Eof -> `Eof
        | `Data ->
          let take = min (n - filled) (r.len - r.pos) in
          Bytes.blit r.buf r.pos out filled take;
          r.pos <- r.pos + take;
          go (filled + take)
      end
    in
    go 0
end

exception Io_timeout

(* EINTR: retry immediately at the same position. EAGAIN/EWOULDBLOCK
   (nonblocking descriptor, or a kernel buffer momentarily full):
   wait for writability via select — never a busy loop — and resume
   at the current position, so reply framing survives partial writes.
   With a finite [deadline] every write is preceded by a bounded
   writability wait, so a peer that stops reading can stall this
   reply for at most the deadline before Io_timeout. *)
let write_all ?(deadline = infinity) fd s pos len =
  let rec wait_writable () =
    if Clock.now () >= deadline then raise Io_timeout;
    let slice = min 1.0 (deadline -. Clock.now ()) in
    match Unix.select [] [ fd ] [] slice with
    | _, _ :: _, _ -> ()
    | _ -> wait_writable ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_writable ()
  in
  let rec go pos len =
    if len > 0 then begin
      if deadline < infinity then wait_writable ();
      match Unix.write_substring fd s pos len with
      | n -> go (pos + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
        wait_writable ();
        go pos len
    end
  in
  go pos len

(* A reply that cannot be delivered (peer vanished mid-write) is not
   a daemon problem; SIGPIPE is ignored so this surfaces as EPIPE. *)
let send ?deadline fd doc =
  let s = Json.to_string doc ^ "\n" in
  try write_all ?deadline fd s 0 (String.length s)
  with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Request execution (runs on a pool worker domain)                    *)
(* ------------------------------------------------------------------ *)

exception Reply_error of string * string  (* code, message *)

let resolve_lib t name =
  let name = Option.value ~default:t.default_lib name in
  match List.assoc_opt name t.libs with
  | Some e -> e
  | None ->
    raise
      (Reply_error
         ( "unknown_lib",
           Printf.sprintf "library %S not loaded (have %s)" name
             (String.concat "/" (List.map fst t.libs)) ))

let resolve_mode = function
  | None | Some "dag" -> Mapper.Dag
  | Some "tree" -> Mapper.Tree
  | Some "dag-extended" -> Mapper.Dag_extended
  | Some m ->
    raise
      (Reply_error
         ("unknown_mode", Printf.sprintf "mode %S (tree/dag/dag-extended)" m))

let load_network t (req : Proto.request) payload =
  match payload, req.Proto.circuit with
  | Some blif, _ -> (
    try Dagmap_blif.Blif.read_string ~file:"<payload>" blif
    with Dagmap_blif.Blif.Parse_error _ as e ->
      raise (Reply_error ("blif_parse", Dagmap_blif.Blif.describe e)))
  | None, Some spec -> (
    match t.cfg.resolve_circuit with
    | None ->
      raise
        (Reply_error
           ("no_circuit_resolver", "this daemon only accepts BLIF payloads"))
    | Some f -> (
      try f spec with
      | Failure m -> raise (Reply_error ("unknown_circuit", m))
      | Dagmap_blif.Blif.Parse_error _ as e ->
        raise (Reply_error ("blif_parse", Dagmap_blif.Blif.describe e))))
  | None, None ->
    raise
      (Reply_error
         ("bad_request", "map/check/sta need a payload or a circuit= spec"))

let issue_strings issues =
  Json.List
    (List.map
       (fun i -> Json.String (Format.asprintf "%a" Check.pp_issue i))
       issues)

let map_and_subject t req payload =
  let net = load_network t req payload in
  let entry = resolve_lib t req.Proto.lib in
  let mode = resolve_mode req.Proto.mode in
  let sg = Subject.of_network net in
  let result = Mapper.map ~cache:req.Proto.cache mode entry.db sg in
  (sg, result)

let netlist_fields nl =
  [ ("delay", Json.Float (Netlist.delay nl));
    ("area", Json.Float (Netlist.area nl));
    ("gates", Json.Int (Netlist.num_gates nl));
    ("duplicated", Json.Int (Netlist.duplication nl)) ]

let exec_map t req payload =
  let sg, result = map_and_subject t req payload in
  let nl = result.Mapper.netlist in
  let audit =
    if not req.Proto.audit then []
    else begin
      match Check.audit_result sg result with
      | [] -> [ ("audit", Json.String "ok") ]
      | issues ->
        [ ("audit", Json.String "failed"); ("audit_issues", issue_strings issues) ]
    end
  in
  let blif =
    if req.Proto.want_blif then
      [ ("blif", Json.String (Dagmap_blif.Blif.write_netlist nl)) ]
    else []
  in
  [ ("subject_nodes", Json.Int (Subject.num_nodes sg)) ]
  @ netlist_fields nl
  @ [ ("matches_tried", Json.Int result.Mapper.run.Mapper.matches_tried) ]
  @ audit @ blif

let exec_check t req payload =
  let sg, result = map_and_subject t req payload in
  let issues = Check.audit_result sg result in
  netlist_fields result.Mapper.netlist
  @ [ ("clean", Json.Bool (issues = [])); ("issues", issue_strings issues) ]

let exec_sta t req payload =
  let _, result = map_and_subject t req payload in
  let report = Sta.analyze result.Mapper.netlist in
  let path =
    Json.List
      (List.map
         (fun pe ->
           Json.Obj
             [ ("gate", Json.String pe.Sta.pe_gate);
               ("pin", Json.Int pe.Sta.pe_through_pin);
               ("arrival", Json.Float pe.Sta.pe_arrival) ])
         report.Sta.critical_path)
  in
  netlist_fields result.Mapper.netlist
  @ [ ("critical_output", Json.String report.Sta.critical_output);
      ("worst_delay", Json.Float report.Sta.worst_delay);
      ("critical_path", path) ]

let exec t (req : Proto.request) payload =
  Span.with_span ~cat:"serve" ("req:" ^ Proto.verb_name req.Proto.verb)
    (fun () ->
      match req.Proto.verb with
      | Proto.Map -> exec_map t req payload
      | Proto.Check -> exec_check t req payload
      | Proto.Sta -> exec_sta t req payload
      | Proto.Ping | Proto.Stats | Proto.Shutdown -> assert false)

(* The request body with fault hooks, trapped to an outcome. Runs on
   a pool worker normally, on the connection thread when degraded. *)
let trap_body t req payload =
  try
    (match Faultplan.delay_job t.cfg.faults with
     | Some d -> Unix.sleepf d
     | None -> ());
    if Faultplan.crash_job t.cfg.faults then
      raise (Reply_error ("injected_fault", "crash_job fault injected"));
    O_ok (exec t req payload)
  with
  | Reply_error (code, m) -> O_error (code, m)
  | Mapper.Unmappable { description; _ } -> O_error ("unmappable", description)
  | Failure m -> O_error ("failed", m)
  | Invalid_argument m -> O_error ("failed", m)
  | e -> O_error ("exception", Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Stats (served inline on the connection thread)                      *)
(* ------------------------------------------------------------------ *)

let record_latency t dt =
  Metrics.Histogram.observe (Metrics.histogram "serve.latency_seconds") dt;
  Mutex.lock t.mu;
  t.lat.(t.lat_n mod lat_ring) <- dt;
  t.lat_n <- t.lat_n + 1;
  Mutex.unlock t.mu

let latency_json t =
  Mutex.lock t.mu;
  let n = min t.lat_n lat_ring in
  let a = Array.sub t.lat 0 n in
  Mutex.unlock t.mu;
  Array.sort compare a;
  let q p =
    if n = 0 then 0.0
    else a.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let mean =
    if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n
  in
  Json.Obj
    [ ("window", Json.Int n);
      ("mean_ms", Json.Float (mean *. 1e3));
      ("p50_ms", Json.Float (q 0.50 *. 1e3));
      ("p90_ms", Json.Float (q 0.90 *. 1e3));
      ("p99_ms", Json.Float (q 0.99 *. 1e3));
      ("max_ms", Json.Float (q 1.0 *. 1e3)) ]

let faults_json t =
  let f = t.cfg.faults in
  if not (Faultplan.is_active f) then Json.Obj []
  else
    Json.Obj
      (("plan", Json.String (Faultplan.to_string f))
      :: List.map (fun (n, c) -> (n, Json.Int c)) (Faultplan.injected f))

let stats_fields t (req : Proto.request) =
  Mutex.lock t.mu;
  let pool = t.pool in
  Mutex.unlock t.mu;
  [ ("uptime_seconds", Json.Float (Clock.since t.t0));
    ("served", Json.Int (Atomic.get t.served));
    ("errors", Json.Int (Atomic.get t.errored));
    ("busy", Json.Int (Atomic.get t.busied));
    ("deadline_exceeded", Json.Int (Atomic.get t.deadlined));
    ("degraded", Json.Int (Atomic.get t.degraded));
    ("watchdog_restarts", Json.Int (Atomic.get t.restarts));
    ("idle_reaped", Json.Int (Atomic.get t.reaped));
    ("healthy", Json.Bool (Atomic.get t.healthy));
    ("in_flight", Json.Int (Atomic.get t.in_flight));
    ("queue_max", Json.Int t.cfg.queue_max);
    ("jobs", Json.Int (Parmap.pool_size pool));
    ("libraries",
     Json.List (List.map (fun (n, _) -> Json.String n) t.libs));
    ("faults", faults_json t);
    ("latency", latency_json t) ]
  @ if req.Proto.metrics then [ ("metrics", Metrics.to_json ()) ] else []

(* ------------------------------------------------------------------ *)
(* Replies (with fault hooks and bounded writes)                       *)
(* ------------------------------------------------------------------ *)

let ok_json ?id fields =
  Json.Obj
    ((match id with None -> [] | Some id -> [ ("id", Json.String id) ])
    @ [ ("status", Json.String "ok") ]
    @ fields)

let verb_counter verb =
  Metrics.counter ("serve.requests." ^ Proto.verb_name verb)

let io_deadline t =
  if t.cfg.io_timeout_s > 0.0 then Clock.now () +. t.cfg.io_timeout_s
  else infinity

let reply t fd doc =
  Atomic.incr t.served;
  Metrics.Counter.incr (Metrics.counter "serve.requests");
  if Faultplan.drop_conn t.cfg.faults then begin
    (* Reply withheld, connection cut: the client sees a clean EOF in
       place of its reply and treats it as transient. *)
    try Unix.shutdown fd Unix.SHUTDOWN_ALL
    with Unix.Unix_error _ | Invalid_argument _ -> ()
  end
  else if Faultplan.garble_reply t.cfg.faults then begin
    (* Corrupt beyond JSON parseability but keep the LF framing: a
       garbled reply must be *detectably* broken, never a plausible
       wrong answer the client would accept. *)
    let s = Json.to_string doc in
    let g = "!garbled " ^ s ^ "\n" in
    try write_all ~deadline:(io_deadline t) fd g 0 (String.length g)
    with Unix.Unix_error _ -> ()
  end
  else send ~deadline:(io_deadline t) fd doc

let reply_error t fd ?id ~code message =
  Atomic.incr t.errored;
  Metrics.Counter.incr (Metrics.counter "serve.errors");
  reply t fd (Proto.error_json ?id ~code message)

let reply_deadline t fd ?id ~t_admit ~deadline_ms () =
  Atomic.incr t.deadlined;
  Metrics.Counter.incr (Metrics.counter "serve.deadline_exceeded");
  let elapsed_ms = int_of_float (Clock.since t_admit *. 1e3) in
  reply t fd (Proto.deadline_json ?id ~elapsed_ms ~deadline_ms ())

let stop t =
  if not (Atomic.exchange t.stopping true) then
    try ignore (Unix.write_substring t.wake_w "x" 0 1)
    with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Watchdog: deadline settlement + stuck-pool restart                  *)
(* ------------------------------------------------------------------ *)

let watchdog_tick = 0.02

(* Retire the generation-[gen] pool in the background: shutdown joins
   the worker domains, which returns once the stuck job's wall time
   actually elapses (a domain cannot be killed, only outwaited) —
   meanwhile the accept path serves degraded, so the daemon never
   blocks on the wedge. *)
let restart_pool t gen stuck queued =
  Atomic.incr t.restarts;
  Metrics.Counter.incr (Metrics.counter "serve.watchdog_restarts");
  List.iter
    (fun p ->
      settle t p
        (O_error
           ( "watchdog_timeout",
             Printf.sprintf
               "job exceeded the %.3fs wall budget; worker pool restarted"
               t.cfg.job_budget_s )))
    stuck;
  (* Queued-unstarted jobs on the doomed pool would be dropped by its
     shutdown with their ivars never filled: settle them busy so the
     clients retry instead of hanging. *)
  List.iter (fun p -> settle t p O_busy) queued;
  let th =
    Thread.create
      (fun () ->
        Mutex.lock t.mu;
        let old = t.pool in
        Mutex.unlock t.mu;
        Parmap.shutdown_pool old;
        let fresh = Parmap.make_pool t.cfg.jobs in
        Mutex.lock t.mu;
        t.pool <- fresh;
        t.pool_gen <- gen + 1;
        Mutex.unlock t.mu;
        Atomic.set t.healthy true;
        log t "watchdog: worker pool restarted (generation %d)" (gen + 1))
      ()
  in
  Mutex.lock t.mu;
  t.reapers <- th :: t.reapers;
  Mutex.unlock t.mu

let watchdog_scan t =
  let now = Clock.now () in
  Mutex.lock t.mu;
  let ps = t.pending in
  let gen = t.pool_gen in
  Mutex.unlock t.mu;
  List.iter
    (fun p -> if now >= p.p_deadline then settle t p O_deadline)
    ps;
  if t.cfg.job_budget_s > 0.0 && Atomic.get t.healthy then begin
    let stuck =
      List.filter
        (fun p ->
          p.p_gen = gen
          && (not (Atomic.get p.p_settled))
          && (match Atomic.get p.p_started with
             | Some s -> now -. s > t.cfg.job_budget_s
             | None -> false))
        ps
    in
    if stuck <> [] && Atomic.compare_and_set t.healthy true false then begin
      let queued =
        List.filter
          (fun p -> p.p_gen = gen && Atomic.get p.p_started = None)
          ps
      in
      log t "watchdog: %d job(s) past the %.3fs budget; restarting pool"
        (List.length stuck) t.cfg.job_budget_s;
      restart_pool t gen stuck queued
    end
  end

let watchdog_loop t =
  while not (Atomic.get t.stopping) do
    Unix.sleepf watchdog_tick;
    if not (Atomic.get t.stopping) then watchdog_scan t
  done

(* Idle-connection sweeper, run from the accept loop: a connection
   idle past idle_timeout_s (no request in progress — c_last is
   infinity while one is) gets its descriptor shut down, which wakes
   its reader as EOF. Slowloris half-open connections die here. *)
let sweep t =
  if t.cfg.idle_timeout_s > 0.0 then begin
    let now = Clock.now () in
    Mutex.lock t.mu;
    let idle =
      List.filter (fun c -> !(c.c_last) < now -. t.cfg.idle_timeout_s) t.conns
    in
    (* Mark before shutting down so the next sweep doesn't count the
       same (not-yet-closed) connection again. *)
    List.iter (fun c -> c.c_last := infinity) idle;
    Mutex.unlock t.mu;
    List.iter
      (fun c ->
        Atomic.incr t.reaped;
        Metrics.Counter.incr (Metrics.counter "serve.idle_reaped");
        log t "reaping idle connection";
        try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ | Invalid_argument _ -> ())
      idle
  end

(* ------------------------------------------------------------------ *)
(* Connection handling                                                 *)
(* ------------------------------------------------------------------ *)

(* Deliver a settled outcome on the connection. [degraded] tags
   replies produced on the sequential fallback path. *)
let finish t fd ?id ~t_admit ~(req : Proto.request) ~degraded outcome =
  let tag doc =
    if not degraded then doc
    else
      match doc with
      | Json.Obj fields -> Json.Obj (fields @ [ ("degraded", Json.Bool true) ])
      | other -> other
  in
  match outcome with
  | O_ok fields ->
    let dt = Clock.since t_admit in
    record_latency t dt;
    reply t fd
      (tag
         (ok_json ?id
            (fields @ [ ("micros", Json.Int (int_of_float (dt *. 1e6))) ])))
  | O_error (code, m) ->
    Atomic.incr t.errored;
    Metrics.Counter.incr (Metrics.counter "serve.errors");
    reply t fd (tag (Proto.error_json ?id ~code m))
  | O_busy ->
    Atomic.incr t.busied;
    Metrics.Counter.incr (Metrics.counter "serve.busy");
    reply t fd
      (Proto.busy_json ?id ~depth:(Atomic.get t.in_flight)
         ~limit:t.cfg.queue_max ())
  | O_deadline ->
    reply_deadline t fd ?id ~t_admit
      ~deadline_ms:(Option.value ~default:0 req.Proto.deadline_ms) ()

(* Dispatch one framed request. [`Keep] continues the session;
   [`Close] ends it (framing no longer trustworthy). *)
let dispatch t fd ~t_admit (req : Proto.request) payload =
  let id = req.Proto.id in
  Metrics.Counter.incr (verb_counter req.Proto.verb);
  match req.Proto.verb with
  | Proto.Ping ->
    reply t fd (ok_json ?id [ ("reply", Json.String "pong") ]);
    `Keep
  | Proto.Stats ->
    reply t fd (ok_json ?id (stats_fields t req));
    `Keep
  | Proto.Shutdown ->
    reply t fd (ok_json ?id [ ("draining", Json.Bool true) ]);
    stop t;
    `Keep
  | Proto.Map | Proto.Check | Proto.Sta ->
    let deadline =
      match req.Proto.deadline_ms with
      | Some ms -> t_admit +. (float_of_int ms /. 1e3)
      | None -> infinity
    in
    if Clock.now () >= deadline then begin
      (* Admission check: the budget was spent while the request was
         still arriving — fail it before it costs a queue slot. *)
      reply_deadline t fd ?id ~t_admit
        ~deadline_ms:(Option.value ~default:0 req.Proto.deadline_ms) ();
      `Keep
    end
    else begin
      (* Backpressure: a bounded in-flight count (queued + running).
         fetch_and_add makes the admission decision atomic — overload
         turns into an immediate busy reply, never an unbounded
         queue. *)
      let depth = Atomic.fetch_and_add t.in_flight 1 in
      if depth >= t.cfg.queue_max then begin
        Atomic.decr t.in_flight;
        Atomic.incr t.busied;
        Metrics.Counter.incr (Metrics.counter "serve.busy");
        reply t fd (Proto.busy_json ?id ~depth ~limit:t.cfg.queue_max ());
        `Keep
      end
      else if not (Atomic.get t.healthy) then begin
        (* Degraded path: the pool is being restarted; run the body
           sequentially on this connection thread so service
           continues, and say so in the reply. *)
        Atomic.incr t.degraded;
        Metrics.Counter.incr (Metrics.counter "serve.degraded");
        let outcome =
          if Clock.now () >= deadline then O_deadline
          else trap_body t req payload
        in
        Atomic.decr t.in_flight;
        finish t fd ?id ~t_admit ~req ~degraded:true outcome;
        `Keep
      end
      else begin
        let p, pool = register t ~deadline in
        let job () =
          (* A record the watchdog already settled (deadline miss,
             pool restart) is dead: don't burn a worker on it. *)
          if not (Atomic.get p.p_settled) then begin
            Atomic.set p.p_started (Some (Clock.now ()));
            if Clock.now () >= p.p_deadline then settle t p O_deadline
            else settle t p (trap_body t req payload)
          end
        in
        if not (Parmap.submit pool job) then
          (* The pool shut down between register and submit (restart
             or drain race): busy → the client retries. *)
          settle t p
            (if Atomic.get t.stopping then
               O_error ("draining", "daemon is shutting down")
             else O_busy);
        let outcome = ivar_await p.p_iv in
        finish t fd ?id ~t_admit ~req ~degraded:false outcome;
        `Keep
      end
    end

let handle_conn t (c : conn) =
  let fd = c.c_fd in
  let r = Reader.create fd in
  let io = t.cfg.io_timeout_s in
  let rec loop () =
    c.c_last := Clock.now ();
    (match Faultplan.stall_read t.cfg.faults with
     | Some d -> Unix.sleepf d
     | None -> ());
    match Reader.read_line r ~io_timeout:io with
    | `Eof -> ()
    | `Timeout ->
      reply_error t fd ~code:"io_timeout"
        (Printf.sprintf "no header progress within %.3fs" io)
    | `Truncated ->
      reply_error t fd ~code:"truncated_header"
        "connection closed mid-header"
    | `Too_long ->
      reply_error t fd ~code:"header_too_long"
        (Printf.sprintf "header exceeds %d bytes" Proto.max_header)
    | `Line line -> (
      c.c_last := infinity;
      let t_admit = Clock.now () in
      match Proto.parse_request line with
      | Error e ->
        reply_error t fd ~code:e.Proto.code e.Proto.message;
        if e.Proto.fatal then () else loop ()
      | Ok req -> (
        let deadline =
          match req.Proto.deadline_ms with
          | Some ms -> t_admit +. (float_of_int ms /. 1e3)
          | None -> infinity
        in
        let payload =
          match req.Proto.payload with
          | None | Some 0 -> `Payload_none
          | Some n -> Reader.read_exact r n ~io_timeout:io ~deadline
        in
        match payload with
        | `Eof ->
          (* The peer may have half-closed (shutdown SEND) — the
             reply still flushes on its open receive side. *)
          reply_error t fd ?id:req.Proto.id ~code:"truncated_payload"
            (Printf.sprintf "connection closed before %d payload bytes"
               (Option.value ~default:0 req.Proto.payload))
        | `Timeout ->
          (* Stream position is lost mid-payload either way: reply
             and close. The deadline miss takes precedence over the
             per-read progress bound. *)
          if Clock.now () >= deadline then
            reply_deadline t fd ?id:req.Proto.id ~t_admit
              ~deadline_ms:(Option.value ~default:0 req.Proto.deadline_ms) ()
          else
            reply_error t fd ?id:req.Proto.id ~code:"io_timeout"
              (Printf.sprintf "no payload progress within %.3fs" io)
        | (`Payload_none | `Payload _) as p -> (
          let payload =
            match p with `Payload s -> Some s | `Payload_none -> None
          in
          match dispatch t fd ~t_admit req payload with
          | `Keep -> loop ()
          | `Close -> ())))
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let claim_socket path =
  if Sys.file_exists path then begin
    (* A connectable socket means another daemon is live; a stale
       file from a dead one is replaced. *)
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      failwith (Printf.sprintf "%s: a daemon is already serving here" path);
    try Sys.remove path with Sys_error _ -> ()
  end

let create cfg =
  if cfg.libraries = [] then failwith "techmapd: no libraries to serve";
  if cfg.jobs < 1 then failwith "techmapd: need at least one worker domain";
  if cfg.queue_max < 1 then failwith "techmapd: queue_max must be >= 1";
  Signals.ignore_sigpipe ();
  claim_socket cfg.socket_path;
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  let libs =
    List.map
      (fun (name, lib) -> (name, { lib; db = Matchdb.prepare lib }))
      cfg.libraries
  in
  let t =
    { cfg;
      libs;
      default_lib = fst (List.hd libs);
      listen_fd;
      wake_r;
      wake_w;
      stopping = Atomic.make false;
      pool = Parmap.make_pool cfg.jobs;
      pool_gen = 0;
      healthy = Atomic.make true;
      in_flight = Atomic.make 0;
      served = Atomic.make 0;
      errored = Atomic.make 0;
      busied = Atomic.make 0;
      deadlined = Atomic.make 0;
      degraded = Atomic.make 0;
      restarts = Atomic.make 0;
      reaped = Atomic.make 0;
      mu = Mutex.create ();
      conns = [];
      pending = [];
      threads = [];
      reapers = [];
      watchdog = None;
      lat = Array.make lat_ring 0.0;
      lat_n = 0;
      t0 = Clock.now () }
  in
  log t "serving %s (%d worker domains, queue %d, libraries %s%s)"
    cfg.socket_path cfg.jobs cfg.queue_max
    (String.concat "/" (List.map fst libs))
    (if Faultplan.is_active cfg.faults then
       ", faults " ^ Faultplan.to_string cfg.faults
     else "");
  t

let conn_thread t c =
  (try handle_conn t c with _ -> ());
  Mutex.lock t.mu;
  t.conns <- List.filter (fun c' -> c' != c) t.conns;
  Mutex.unlock t.mu;
  try Unix.close c.c_fd with Unix.Unix_error _ -> ()

(* Graceful drain: stop accepting, wake idle readers by shutting the
   receive side only (in-flight jobs still complete and their replies
   flush on the open send side), join every connection thread, the
   watchdog and any pool restarters, then quiesce and retire the
   worker pool — with a bound, so a wedged job delays shutdown by at
   most its own remaining wall time plus 5s, never forever. *)
let drain t =
  log t "draining (%d requests served)" (Atomic.get t.served);
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove t.cfg.socket_path with Sys_error _ -> ());
  Mutex.lock t.mu;
  let conns = t.conns in
  Mutex.unlock t.mu;
  List.iter
    (fun c ->
      try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ | Invalid_argument _ -> ())
    conns;
  List.iter Thread.join t.threads;
  Option.iter Thread.join t.watchdog;
  Mutex.lock t.mu;
  let reapers = t.reapers in
  Mutex.unlock t.mu;
  List.iter Thread.join reapers;
  Mutex.lock t.mu;
  let pool = t.pool in
  Mutex.unlock t.mu;
  if not (Parmap.drain_for pool ~seconds:5.0) then
    log t "pool did not quiesce within 5s; shutting down anyway";
  Parmap.shutdown_pool pool;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  log t "drained cleanly"

let run t =
  t.watchdog <- Some (Thread.create (fun () -> watchdog_loop t) ());
  let tick =
    if t.cfg.idle_timeout_s > 0.0 then max 0.05 (t.cfg.idle_timeout_s /. 4.0)
    else -1.0
  in
  let rec accept_loop () =
    if Atomic.get t.stopping then ()
    else begin
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] tick with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | [], _, _ ->
        sweep t;
        accept_loop ()
      | ready, _, _ ->
        if List.mem t.wake_r ready || Atomic.get t.stopping then ()
        else begin
          (match Unix.accept ~cloexec:true t.listen_fd with
           | exception
               Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
             ()
           | fd, _ ->
             let c = { c_fd = fd; c_last = ref (Clock.now ()) } in
             Mutex.lock t.mu;
             t.conns <- c :: t.conns;
             Mutex.unlock t.mu;
             t.threads <-
               Thread.create (fun () -> conn_thread t c) () :: t.threads);
          sweep t;
          accept_loop ()
        end
    end
  in
  accept_loop ();
  drain t

let requests_served t = Atomic.get t.served
