(** [techmapd]: the mapping-as-a-service daemon.

    A long-lived Unix-domain-socket server that loads gate libraries
    (and their prepared pattern databases) once at startup, then
    serves concurrent [map] / [check] / [sta] / [stats] requests in
    the {!Proto} line protocol. The concurrency model:

    - the thread calling {!run} owns [accept]; each connection gets a
      lightweight systhread that frames requests and writes replies
      (blocking I/O releases the OCaml runtime lock, so many
      connections coexist on one domain);
    - CPU-bound work (mapping, auditing, STA) is submitted to a
      persistent {!Dagmap_core.Parmap} pool in service mode, one
      worker domain per [jobs], so requests run truly in parallel
      while each individual job labels sequentially;
    - backpressure is a bounded in-flight count: past [queue_max] the
      server replies [busy] immediately instead of queueing
      (429-style), and the client retries;
    - per-job isolation: any exception a job raises becomes a
      structured [error] reply on that connection — the daemon never
      dies for a request's sake.

    Shutdown (SIGTERM/SIGINT routed to {!stop}, or a [shutdown]
    request) is a graceful drain: stop accepting, wake idle
    connection readers, let in-flight jobs finish and their replies
    flush, join every thread and worker domain, remove the socket
    file.

    Resilience (DESIGN.md §14): requests may carry a [deadline_ms=]
    budget enforced at admission, during the wait for a worker, and
    while the payload is still arriving — misses get structured
    [deadline_exceeded] errors. All reads and reply writes are
    select-bounded by [io_timeout_s]; connections idle past
    [idle_timeout_s] are reaped by a sweeper in the accept loop. A
    watchdog thread detects jobs overrunning [job_budget_s], fails
    the stuck request, restarts the worker pool in the background,
    and serves requests inline ([degraded=true] in replies) until the
    fresh pool is up. A {!Faultplan} injects crash/delay/drop/
    garble/stall faults through all of these paths for the chaos
    suite.

    Instrumented end-to-end with {!Dagmap_obs}: per-request latency
    histograms and per-verb counters in the metrics registry
    (["serve.*"] names), per-request spans when span collection is
    enabled, and a ring of recent latencies backing the p50/p99 in
    [stats] replies. *)

open Dagmap_genlib
open Dagmap_logic

type config = {
  socket_path : string;
  jobs : int;  (** worker domains (>= 1) mapping requests in parallel *)
  queue_max : int;
      (** in-flight request cap (queued + running) before [busy] *)
  libraries : (string * Libraries.t) list;
      (** preloaded libraries; the first is the default for requests
          that name none. Pattern databases are prepared once here. *)
  resolve_circuit : (string -> Network.t) option;
      (** resolver for [circuit=] requests (named benchmarks,
          generator specs); [None] restricts clients to BLIF
          payloads *)
  verbose : bool;  (** log one line per connection/drain to stderr *)
  io_timeout_s : float;
      (** per-read/-write progress bound once a request is in flight
          on a connection (partial header, payload, reply write);
          [0.] disables. Does not limit idle keep-alive waits — that
          is [idle_timeout_s]'s job. *)
  idle_timeout_s : float;
      (** reap connections with no request in progress after this
          long ([serve.idle_reaped]); [0.] disables *)
  job_budget_s : float;
      (** watchdog wall budget per job; a job past it is failed with
          [watchdog_timeout] and the pool is restarted
          ([serve.watchdog_restarts]); [0.] disables *)
  faults : Faultplan.t;
      (** injected-fault plan for chaos testing; {!Faultplan.none}
          in production *)
}

type t

val create : config -> t
(** Bind and listen on [socket_path] and spawn the worker pool. A
    stale socket file from a dead daemon is replaced; a live one
    (something accepts connections) raises [Failure]. Also ignores
    SIGPIPE — a daemon cannot afford the default disposition. *)

val run : t -> unit
(** Accept/serve until {!stop} (or a [shutdown] request) triggers the
    drain; returns after the drain completes. Call from the thread
    that should own the accept loop. *)

val stop : t -> unit
(** Trigger a graceful drain from any thread or a signal handler:
    async-safe (one atomic store and a pipe write). Idempotent. *)

val requests_served : t -> int
(** Total requests answered with any status (monotone; readable
    while running). *)
