(** FlowMap: depth-optimal technology mapping for k-LUT FPGAs
    (Cong & Ding 1994) — the algorithm the paper generalizes to
    library-based mapping. Operates on NAND2-INV subject graphs
    (which are 2-bounded, hence k-bounded for any k >= 2).

    The labeling procedure computes each node's optimal depth: the
    label is [p] if a k-feasible cut of height [p - 1] exists in the
    node's fanin cone (decided by max-flow on the node-split cone
    with all label-[p] nodes collapsed into the sink) and [p + 1]
    otherwise. LUTs are then generated backward from the outputs,
    duplicating logic exactly as DAG covering does. *)

open Dagmap_logic
open Dagmap_subject

type lut = {
  lut_root : int;        (** subject node implemented by this LUT *)
  lut_inputs : int array; (** subject nodes feeding the LUT (the cut) *)
  lut_func : Truth.t;    (** function over [lut_inputs] *)
}

type cover = {
  graph : Subject.t;
  k : int;
  labels : int array;    (** optimal depth per subject node *)
  luts : lut list;
  lut_outputs : (string * int) list;
      (** output name -> subject node (a LUT root or a PI) *)
}

val map : k:int -> Subject.t -> cover
(** Depth-optimal k-LUT mapping. Raises [Invalid_argument] for
    [k < 2]. *)

val label_arena : k:int -> Dagmap_core.Arena.t -> int array
(** The labeling phase of {!map} run directly on the flat arena's int
    fanin vectors — no boxed kinds, no [Subject.t]. Shares the cone
    walk and max-flow construction with {!map} (both are parameterized
    over the same fanin accessors), so on [Arena.of_subject g] the
    result equals [(map ~k g).labels] element-for-element, which
    [test/test_flowmap.ml] locks down. *)

val depth : cover -> int
(** Worst output label (number of LUT levels on the critical path). *)

val num_luts : cover -> int

val eval : cover -> bool array -> (string * bool) list
(** Evaluate the LUT network under a PI assignment (subject PI
    order); used by the equivalence tests. *)

val to_network : cover -> Network.t
(** Export the LUT cover as a Boolean network (one logic node per
    LUT, functions from the LUT truth tables) — ready for BLIF or
    Verilog export, or for re-mapping. PI names are preserved. *)

val check_labels_optimal : cover -> bool
(** Sanity invariant used by tests: every LUT realizes its root's
    label, i.e. [label root = 1 + max label over cut inputs] and no
    label exceeds its fanin-implied bound. *)
