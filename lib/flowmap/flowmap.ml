open Dagmap_logic
open Dagmap_subject

type lut = {
  lut_root : int;
  lut_inputs : int array;
  lut_func : Truth.t;
}

type cover = {
  graph : Subject.t;
  k : int;
  labels : int array;
  luts : lut list;
  lut_outputs : (string * int) list;
}

(* The cone walk and the flow construction only need fanin lists and a
   leaf test, so they are parameterized over those two functions: the
   boxed [Subject.t] path and the flat [Arena.t] path share them
   exactly, which is what makes [label_arena] equal to [map]'s labels
   by construction. *)

(* Fanin cone of [t] (inclusive), using timestamped marks to avoid
   re-allocating visited arrays per node. Explicit enter/exit stack
   (not recursion): cones are as deep as the subject graph, which is
   unbounded. The emitted order is the recursive post-order reversed
   — t first — and feeds the flow-network construction, so it must
   stay byte-stable for the cut choice to stay deterministic. *)
let cone_of ~fanins marks stamp t =
  let acc = ref [] in
  let stack = Stack.create () in
  Stack.push (t, false) stack;
  while not (Stack.is_empty stack) do
    let u, exit = Stack.pop stack in
    if exit then acc := u :: !acc
    else if marks.(u) <> stamp then begin
      marks.(u) <- stamp;
      Stack.push (u, true) stack;
      List.iter (fun f -> Stack.push (f, false) stack) (List.rev (fanins u))
    end
  done;
  !acc

(* Decide whether the cone of [t] admits a k-feasible cut of height
   [p - 1], i.e. with all label-p nodes (and t) collapsed into the
   sink; returns the cut as subject nodes if it exists. *)
let feasible_cut ~fanins ~is_pi labels k cone t p =
  let collapsed u = u = t || labels.(u) = p in
  let locals = List.filter (fun u -> not (collapsed u)) cone in
  let index = Hashtbl.create 64 in
  List.iteri (fun i u -> Hashtbl.replace index u i) locals;
  let n_local = List.length locals in
  let source = 0 and sink = 1 in
  let v_in i = 2 + (2 * i) and v_out i = 3 + (2 * i) in
  let net = Maxflow.create (2 + (2 * n_local)) in
  List.iter
    (fun u ->
      let i = Hashtbl.find index u in
      Maxflow.add_edge net (v_in i) (v_out i) 1;
      if is_pi u then
        Maxflow.add_edge net source (v_in i) Maxflow.infinite)
    locals;
  (* Edges of the cone. Every cone node except PIs has its fanins in
     the cone by construction. *)
  List.iter
    (fun u ->
      let targets = if collapsed u then [ sink ] else [ v_in (Hashtbl.find index u) ] in
      List.iter
        (fun f ->
          let src =
            if collapsed f then None (* collapsed -> collapsed: internal *)
            else Some (v_out (Hashtbl.find index f))
          in
          match src with
          | None -> ()
          | Some s -> List.iter (fun tgt -> Maxflow.add_edge net s tgt Maxflow.infinite) targets)
        (fanins u))
    cone;
  let flow = Maxflow.max_flow_bounded net ~source ~sink ~bound:k in
  if flow > k then None
  else begin
    let side = Maxflow.min_cut_side net ~source in
    let cut =
      List.filter
        (fun u ->
          let i = Hashtbl.find index u in
          side.(v_in i) && not side.(v_out i))
        locals
    in
    (* PIs whose in-vertex is unreachable cannot occur: source feeds
       them with infinite capacity, so side always contains v_in. *)
    Some (Array.of_list cut)
  end

let map ~k g =
  if k < 2 then invalid_arg "Flowmap.map: k must be >= 2";
  let n = Subject.num_nodes g in
  let fanins u = Subject.fanins g u in
  let is_pi u = Subject.kind g u = Subject.Spi in
  let labels = Array.make n 0 in
  let cuts = Array.make n [||] in
  let marks = Array.make n (-1) in
  for t = 0 to n - 1 do
    match Subject.kind g t with
    | Spi -> labels.(t) <- 0
    | Snand _ | Sinv _ ->
      let cone = cone_of ~fanins marks t t in
      let p =
        List.fold_left
          (fun acc u -> if u = t then acc else max acc labels.(u))
          0 cone
      in
      let direct = Array.of_list (fanins t) in
      if p = 0 then begin
        (* Whole cone is PIs: the direct fanins are the only cut. *)
        labels.(t) <- 1;
        cuts.(t) <- direct
      end
      else begin
        match feasible_cut ~fanins ~is_pi labels k cone t p with
        | Some cut ->
          labels.(t) <- p;
          cuts.(t) <- cut
        | None ->
          labels.(t) <- p + 1;
          cuts.(t) <- direct
      end
  done;
  (* LUT generation backward from the outputs (duplication implicit). *)
  let needed = Hashtbl.create 64 in
  let queue = Queue.create () in
  let require u =
    match Subject.kind g u with
    | Spi -> ()
    | Snand _ | Sinv _ ->
      if not (Hashtbl.mem needed u) then begin
        Hashtbl.add needed u ();
        Queue.add u queue
      end
  in
  List.iter (fun o -> require o.Subject.out_node) g.Subject.outputs;
  let luts = ref [] in
  while not (Queue.is_empty queue) do
    let t = Queue.pop queue in
    let cut = cuts.(t) in
    Array.iter require cut;
    (* Function of the region between [cut] and [t]. *)
    let input_index = Hashtbl.create 8 in
    Array.iteri (fun i u -> Hashtbl.replace input_index u i) cut;
    let w = Array.length cut in
    let func = ref (Truth.const w false) in
    let stack = Stack.create () in
    for m = 0 to (1 lsl w) - 1 do
      let memo = Hashtbl.create 16 in
      let lookup u =
        match Hashtbl.find_opt input_index u with
        | Some i -> Some (m land (1 lsl i) <> 0)
        | None -> Hashtbl.find_opt memo u
      in
      (* Memoized region evaluation on an explicit stack (regions can
         be chain-deep): a node stays on the stack until its fanins
         resolve, then computes in one step. *)
      let value t =
        Stack.push t stack;
        while not (Stack.is_empty stack) do
          let u = Stack.top stack in
          if lookup u <> None then ignore (Stack.pop stack)
          else begin
            let deps =
              match Subject.kind g u with
              | Subject.Spi ->
                (* A PI inside the region but not on the cut cannot
                   happen: cuts separate PIs from the root. *)
                assert false
              | Subject.Sinv x -> [ x ]
              | Subject.Snand (x, y) -> [ x; y ]
            in
            match List.filter (fun d -> lookup d = None) deps with
            | [] ->
              let get d = Option.get (lookup d) in
              let v =
                match Subject.kind g u with
                | Subject.Spi -> assert false
                | Subject.Sinv x -> not (get x)
                | Subject.Snand (x, y) -> not (get x && get y)
              in
              Hashtbl.replace memo u v;
              ignore (Stack.pop stack)
            | pending ->
              List.iter (fun d -> Stack.push d stack) (List.rev pending)
          end
        done;
        Option.get (lookup t)
      in
      if value t then func := Truth.set_bit !func m true
    done;
    luts := { lut_root = t; lut_inputs = cut; lut_func = !func } :: !luts
  done;
  let lut_outputs =
    List.map (fun o -> (o.Subject.out_name, o.Subject.out_node)) g.Subject.outputs
  in
  { graph = g; k; labels; luts = List.rev !luts; lut_outputs }

let depth cover =
  List.fold_left
    (fun acc (_, node) -> max acc cover.labels.(node))
    0 cover.lut_outputs

let num_luts cover = List.length cover.luts

let eval cover assignment =
  let g = cover.graph in
  let pis = Subject.pi_ids g in
  let value = Hashtbl.create 64 in
  List.iteri (fun i id -> Hashtbl.replace value id assignment.(i)) pis;
  let by_root = Hashtbl.create 64 in
  List.iter (fun lut -> Hashtbl.replace by_root lut.lut_root lut) cover.luts;
  (* LUT-network evaluation on an explicit stack: LUT chains are as
     deep as the cover's depth, which is unbounded. *)
  let stack = Stack.create () in
  let node_value target =
    Stack.push target stack;
    while not (Stack.is_empty stack) do
      let u = Stack.top stack in
      if Hashtbl.mem value u then ignore (Stack.pop stack)
      else begin
        let lut = Hashtbl.find by_root u in
        match
          List.filter
            (fun d -> not (Hashtbl.mem value d))
            (Array.to_list lut.lut_inputs)
        with
        | [] ->
          let inputs = Array.map (Hashtbl.find value) lut.lut_inputs in
          Hashtbl.replace value u (Truth.eval lut.lut_func inputs);
          ignore (Stack.pop stack)
        | pending ->
          List.iter (fun d -> Stack.push d stack) (List.rev pending)
      end
    done;
    Hashtbl.find value target
  in
  List.map (fun (name, node) -> (name, node_value node)) cover.lut_outputs
  @ List.map (fun (name, b) -> (name, b)) g.Subject.const_outputs

let to_network cover =
  let g = cover.graph in
  let net = Network.create ~name:"lut_cover" () in
  let node_of = Hashtbl.create 64 in
  List.iter
    (fun id ->
      Hashtbl.replace node_of id (Network.add_pi net g.Subject.names.(id)))
    (Subject.pi_ids g);
  (* LUTs are discovered outputs-first; create them in dependency
     order. *)
  let by_root = Hashtbl.create 64 in
  List.iter (fun lut -> Hashtbl.replace by_root lut.lut_root lut) cover.luts;
  (* Explicit stack, like [eval]: a LUT materializes once all its
     inputs exist, so creation order (hence node numbering in the
     emitted network) matches the recursive left-to-right DFS. *)
  let stack = Stack.create () in
  let materialize root =
    Stack.push root stack;
    while not (Stack.is_empty stack) do
      let r = Stack.top stack in
      if Hashtbl.mem node_of r then ignore (Stack.pop stack)
      else begin
        let lut = Hashtbl.find by_root r in
        match
          List.filter
            (fun d -> not (Hashtbl.mem node_of d))
            (Array.to_list lut.lut_inputs)
        with
        | [] ->
          let fanins = Array.map (Hashtbl.find node_of) lut.lut_inputs in
          let w = Array.length lut.lut_inputs in
          (* Truth table to SOP expression over the LUT inputs. *)
          let minterms = ref [] in
          for m = 0 to (1 lsl w) - 1 do
            if Truth.get_bit lut.lut_func m then
              minterms :=
                List.init w (fun i -> (i, m land (1 lsl i) <> 0)) :: !minterms
          done;
          let expr = Bexpr.of_cubes !minterms in
          let id =
            Network.add_logic net ~name:(Printf.sprintf "lut%d" r) expr fanins
          in
          Hashtbl.replace node_of r id;
          ignore (Stack.pop stack)
        | pending ->
          List.iter (fun d -> Stack.push d stack) (List.rev pending)
      end
    done;
    Hashtbl.find node_of root
  in
  List.iter
    (fun (name, node) -> Network.add_po net name (materialize node))
    cover.lut_outputs;
  List.iter
    (fun (name, b) ->
      let id = Network.add_logic net (Bexpr.const b) [||] in
      Network.add_po net name id)
    g.Subject.const_outputs;
  net

let label_arena ~k a =
  if k < 2 then invalid_arg "Flowmap.label_arena: k must be >= 2";
  let open Dagmap_core in
  let n = Arena.num_nodes a in
  let fanins u =
    let f0 = Arena.fanin0 a u in
    if f0 < 0 then []
    else
      let f1 = Arena.fanin1 a u in
      if f1 < 0 then [ f0 ] else [ f0; f1 ]
  in
  let is_pi u = Arena.is_pi a u in
  let labels = Array.make n 0 in
  let marks = Array.make n (-1) in
  for t = 0 to n - 1 do
    if not (is_pi t) then begin
      let cone = cone_of ~fanins marks t t in
      let p =
        List.fold_left
          (fun acc u -> if u = t then acc else max acc labels.(u))
          0 cone
      in
      if p = 0 then labels.(t) <- 1
      else begin
        match feasible_cut ~fanins ~is_pi labels k cone t p with
        | Some _ -> labels.(t) <- p
        | None -> labels.(t) <- p + 1
      end
    end
  done;
  labels

let check_labels_optimal cover =
  let g = cover.graph in
  let ok = ref true in
  (* Each stored LUT must realize its root's label. *)
  List.iter
    (fun lut ->
      let h =
        Array.fold_left (fun acc u -> max acc cover.labels.(u)) 0 lut.lut_inputs
      in
      if cover.labels.(lut.lut_root) <> h + 1 then ok := false;
      if Array.length lut.lut_inputs > cover.k then ok := false)
    cover.luts;
  (* Labels must respect the direct-fanin bound. *)
  for t = 0 to Subject.num_nodes g - 1 do
    match Subject.kind g t with
    | Subject.Spi -> if cover.labels.(t) <> 0 then ok := false
    | Subject.Snand _ | Subject.Sinv _ ->
      let bound =
        1 + List.fold_left (fun acc f -> max acc cover.labels.(f)) 0 (Subject.fanins g t)
      in
      if cover.labels.(t) > bound || cover.labels.(t) < 1 then ok := false
  done;
  !ok
