open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject
open Dagmap_core

exception Parse_error of { file : string option; line : int; message : string }

let error ?file line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { file; line; message })) fmt

let describe = function
  | Parse_error { file; line; message } ->
    Printf.sprintf "%s:%d: %s"
      (Option.value ~default:"<string>" file)
      line message
  | e -> Printexc.to_string e

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

(* Logical lines: strip comments, join continuations, keep line
   numbers for messages. *)
let logical_lines source =
  let raw = String.split_on_char '\n' source in
  let rec join acc pending pending_line lineno = function
    | [] ->
      let acc =
        match pending with
        | Some text -> (pending_line, text) :: acc
        | None -> acc
      in
      List.rev acc
    | line :: rest ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      let continued = String.length line > 0 && line.[String.length line - 1] = '\\' in
      let body = if continued then String.sub line 0 (String.length line - 1) else line in
      let text, first_line =
        match pending with
        | Some prefix -> (prefix ^ " " ^ body, pending_line)
        | None -> (body, lineno)
      in
      if continued then join acc (Some text) first_line (lineno + 1) rest
      else if String.trim text = "" then join acc None 0 (lineno + 1) rest
      else join ((first_line, text) :: acc) None 0 (lineno + 1) rest
  in
  join [] None 0 1 raw

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

type raw_names = {
  rn_line : int;
  rn_inputs : string list;
  rn_output : string;
  mutable rn_cubes : (string * char) list;  (* input part, output value *)
}

type raw_latch = {
  rl_line : int;
  rl_input : string;
  rl_output : string;
  rl_init : bool;
}

let parse_structure ?file lines =
  let model = ref "blif" in
  let inputs = ref [] and outputs = ref [] in
  let names : raw_names list ref = ref [] in
  let latches : raw_latch list ref = ref [] in
  let current : raw_names option ref = ref None in
  let finish_current () = current := None in
  List.iter
    (fun (line, text) ->
      match words text with
      | [] -> ()
      | cmd :: args when String.length cmd > 0 && cmd.[0] = '.' -> begin
        finish_current ();
        match cmd, args with
        | ".model", [ m ] -> model := m
        | ".model", _ -> error ?file line "malformed .model"
        | ".inputs", args ->
          inputs := !inputs @ List.map (fun a -> (line, a)) args
        | ".outputs", args ->
          outputs := !outputs @ List.map (fun a -> (line, a)) args
        | ".names", args -> begin
          match List.rev args with
          | out :: rev_ins ->
            let rn =
              { rn_line = line; rn_inputs = List.rev rev_ins;
                rn_output = out; rn_cubes = [] }
            in
            names := rn :: !names;
            current := Some rn
          | [] -> error ?file line ".names needs at least an output"
        end
        | ".latch", (input :: output :: rest) ->
          let init =
            match List.rev rest with
            | "1" :: _ -> true
            | _ -> false
          in
          latches :=
            { rl_line = line; rl_input = input; rl_output = output;
              rl_init = init }
            :: !latches
        | ".latch", _ -> error ?file line "malformed .latch"
        | ".end", _ -> ()
        | ".exdc", _ -> error ?file line ".exdc is not supported"
        | _, _ ->
          (* Unknown dot-commands (.clock, .default_input_arrival...)
             are ignored, as SIS does for unknown extensions. *)
          ()
      end
      | ws -> begin
        match !current, ws with
        | Some rn, [ cube; out ] ->
          if String.length out <> 1 || (out.[0] <> '0' && out.[0] <> '1') then
            error ?file line "cube output must be 0 or 1 in %S" text;
          rn.rn_cubes <- (cube, out.[0]) :: rn.rn_cubes
        | Some rn, [ single ] ->
          (* Constant: a .names with no inputs has cubes of just "1"/"0". *)
          if rn.rn_inputs <> [] then
            error ?file line
              "cube line %S needs both an input part and an output value"
              single
          else if single = "1" then rn.rn_cubes <- ("", '1') :: rn.rn_cubes
          else if single = "0" then rn.rn_cubes <- ("", '0') :: rn.rn_cubes
          else error ?file line "malformed constant line %S" single
        | Some _, _ -> error ?file line "malformed cube line %S" text
        | None, _ ->
          error ?file line "unexpected line %S outside a .names block" text
      end)
    lines;
  (!model, !inputs, !outputs, List.rev !names, List.rev !latches)

let expr_of_cubes ?file rn =
  let arity = List.length rn.rn_inputs in
  let cube_expr (cube, _) =
    if String.length cube <> arity then
      error ?file rn.rn_line "cube width %d does not match %d inputs"
        (String.length cube) arity;
    let lits = ref [] in
    String.iteri
      (fun i c ->
        match c with
        | '1' -> lits := (i, true) :: !lits
        | '0' -> lits := (i, false) :: !lits
        | '-' -> ()
        | c -> error ?file rn.rn_line "bad cube character %C" c)
      cube;
    List.rev !lits
  in
  match rn.rn_cubes with
  | [] -> Bexpr.const false
  | cubes ->
    let zeros, ones = List.partition (fun (_, v) -> v = '0') cubes in
    (match zeros, ones with
     | [], ones -> Bexpr.of_cubes (List.map cube_expr ones)
     | zeros, [] -> Bexpr.not_ (Bexpr.of_cubes (List.map cube_expr zeros))
     | _ -> error ?file rn.rn_line "mixed on-set and off-set cubes")

let read_string ?file source =
  let model, inputs, outputs, names, latches =
    parse_structure ?file (logical_lines source)
  in
  let net = Network.create ~name:model () in
  let id_of = Hashtbl.create 64 in
  List.iter
    (fun (line, pi) ->
      if Hashtbl.mem id_of pi then error ?file line "duplicate input %s" pi;
      Hashtbl.replace id_of pi (Network.add_pi net pi))
    inputs;
  let by_output = Hashtbl.create 64 in
  List.iter
    (fun rn ->
      if Hashtbl.mem by_output rn.rn_output then
        error ?file rn.rn_line "signal %s defined twice" rn.rn_output;
      Hashtbl.replace by_output rn.rn_output rn)
    names;
  (* Latch outputs are combinational leaves; create them up front so
     logic may reference them, and bind their data inputs after the
     logic is elaborated. *)
  List.iter
    (fun rl ->
      if Hashtbl.mem id_of rl.rl_output then
        error ?file rl.rl_line "latch output %s already defined" rl.rl_output;
      let id =
        Network.add_latch_output net ~name:rl.rl_output ~init:rl.rl_init ()
      in
      Hashtbl.replace id_of rl.rl_output id)
    latches;
  let visiting = Hashtbl.create 64 in
  (* [line] is the location of the construct referencing [name], so an
     undefined signal is reported where it is used. *)
  let rec elaborate line name =
    match Hashtbl.find_opt id_of name with
    | Some id -> id
    | None -> begin
      match Hashtbl.find_opt by_output name with
      | None -> error ?file line "undefined signal %s" name
      | Some rn ->
        if Hashtbl.mem visiting name then
          error ?file rn.rn_line "combinational cycle through %s" name;
        Hashtbl.replace visiting name ();
        let fanins =
          Array.of_list (List.map (elaborate rn.rn_line) rn.rn_inputs)
        in
        let expr = expr_of_cubes ?file rn in
        let id = Network.add_logic net ~name expr fanins in
        Hashtbl.remove visiting name;
        Hashtbl.replace id_of name id;
        id
    end
  in
  List.iter (fun (line, po) -> ignore (elaborate line po)) outputs;
  List.iter
    (fun rl ->
      let data_id = elaborate rl.rl_line rl.rl_input in
      Network.set_latch_input net
        ~latch_output:(Hashtbl.find id_of rl.rl_output)
        data_id)
    latches;
  List.iter
    (fun (_, po) -> Network.add_po net po (Hashtbl.find id_of po))
    outputs;
  Network.validate net;
  net

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let source = really_input_string ic len in
  close_in ic;
  read_string ~file:path source

(* ------------------------------------------------------------------ *)
(* Writers                                                             *)
(* ------------------------------------------------------------------ *)

let write_network net =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" (Network.name net));
  let pi_names =
    List.map (fun id -> (Network.node net id).Network.name) (Network.pis net)
  in
  Buffer.add_string buf (".inputs " ^ String.concat " " pi_names ^ "\n");
  Buffer.add_string buf
    (".outputs " ^ String.concat " " (List.map fst (Network.pos net)) ^ "\n");
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf ".latch %s %s %d\n"
           (Network.node net l.Network.latch_input).Network.name
           (Network.node net l.Network.latch_output).Network.name
           (if l.Network.latch_init then 1 else 0)))
    (Network.latches net);
  Network.iter_nodes net (fun n ->
      match n.Network.kind with
      | Network.Pi | Network.Latch_out -> ()
      | Network.Logic ->
        let fanin_names =
          Array.to_list
            (Array.map (fun f -> (Network.node net f).Network.name) n.Network.fanins)
        in
        Buffer.add_string buf
          (".names " ^ String.concat " " (fanin_names @ [ n.Network.name ]) ^ "\n");
        let arity = Array.length n.Network.fanins in
        let tt = Bexpr.to_truth arity n.Network.expr in
        (match Truth.is_const tt with
         | Some true -> Buffer.add_string buf "1\n"
         | Some false -> ()
         | None ->
           (* Minimized cover keeps the file compact. *)
           List.iter
             (fun cube ->
               for i = 0 to arity - 1 do
                 Buffer.add_char buf
                   (if cube.Sop.mask land (1 lsl i) = 0 then '-'
                    else if cube.Sop.value land (1 lsl i) <> 0 then '1'
                    else '0')
               done;
               Buffer.add_string buf " 1\n")
             (Sop.minimize tt)));
  (* Primary outputs whose name differs from their driving node need
     an alias buffer. *)
  List.iter
    (fun (po_name, id) ->
      let driver = (Network.node net id).Network.name in
      if not (String.equal driver po_name) then
        Buffer.add_string buf
          (Printf.sprintf ".names %s %s\n1 1\n" driver po_name))
    (Network.pos net);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_netlist nl =
  let g = nl.Netlist.source in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf ".model mapped\n";
  let pi_name id = Printf.sprintf "%s" g.Subject.names.(id) in
  let pis = Subject.pi_ids g in
  Buffer.add_string buf
    (".inputs " ^ String.concat " " (List.map pi_name pis) ^ "\n");
  Buffer.add_string buf
    (".outputs "
    ^ String.concat " " (List.map fst nl.Netlist.outputs)
    ^ "\n");
  let net_of = function
    | Netlist.D_pi id -> pi_name id
    | Netlist.D_gate j -> Printf.sprintf "w%d" j
    | Netlist.D_const b -> if b then "$const1" else "$const0"
  in
  let consts = Hashtbl.create 4 in
  let note_const = function
    | Netlist.D_const b -> Hashtbl.replace consts b ()
    | Netlist.D_pi _ | Netlist.D_gate _ -> ()
  in
  Array.iter
    (fun inst -> Array.iter note_const inst.Netlist.inputs)
    nl.Netlist.instances;
  List.iter (fun (_, d) -> note_const d) nl.Netlist.outputs;
  Hashtbl.iter
    (fun b () ->
      Buffer.add_string buf
        (Printf.sprintf ".names $const%d\n%s" (if b then 1 else 0)
           (if b then "1\n" else "")))
    consts;
  Array.iter
    (fun inst ->
      let gate = inst.Netlist.gate in
      let formals =
        Array.to_list
          (Array.mapi
             (fun pin d ->
               Printf.sprintf "%s=%s" gate.Gate.pins.(pin).Gate.pin_name
                 (net_of d))
             inst.Netlist.inputs)
      in
      Buffer.add_string buf
        (Printf.sprintf ".gate %s %s %s=w%d\n" gate.Gate.gate_name
           (String.concat " " formals) gate.Gate.output_name inst.Netlist.inst_id))
    nl.Netlist.instances;
  (* Output aliases. *)
  List.iter
    (fun (name, d) ->
      let src = net_of d in
      if not (String.equal src name) then
        Buffer.add_string buf (Printf.sprintf ".names %s %s\n1 1\n" src name))
    nl.Netlist.outputs;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf
