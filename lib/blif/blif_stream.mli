(** Streaming BLIF reader.

    [Blif.read_file] slurps the whole file into one string, splits it
    into a line list, and only then parses — three transient copies of
    the text before the first token is looked at, which at
    million-node BLIF sizes costs hundreds of megabytes of peak heap.
    This reader consumes a line source instead: each raw line is
    comment-stripped, trimmed and continuation-joined as it arrives,
    and directive/cube state is accumulated incrementally, so the
    textual netlist is never materialised — peak extra memory is one
    logical line. Elaboration into the {!Dagmap_logic.Network} is the
    same demand-driven DFS from the outputs as the legacy reader
    (node-id parity requires it; forward references make single-pass
    elaboration impossible in BLIF anyway).

    Contract, locked by [test/test_blif_stream.ml]: for every input —
    well-formed or malformed — this reader and {!Blif.read_string}
    produce identical networks or raise {!Blif.Parse_error} with
    identical [file]/[line]/[message] payloads. *)

open Dagmap_logic

val read_lines : ?file:string -> (unit -> string option) -> Network.t
(** Parse from a raw-line source ([None] = end of input; lines are
    without their trailing newline, as [input_line] yields them).
    Raises {!Blif.Parse_error}. *)

val read_channel : ?file:string -> in_channel -> Network.t
(** Parse a channel line-by-line without slurping it. *)

val read_file : string -> Network.t
(** [read_channel] over the named file. *)

val read_string : ?file:string -> string -> Network.t
(** Parse from an in-memory string through the same streaming path
    (test convenience; does not slurp anything beyond the argument
    itself). *)
