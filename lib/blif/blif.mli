(** BLIF (Berkeley Logic Interchange Format) reader and writer.

    Supported constructs: [.model], [.inputs], [.outputs], [.names]
    (single-output cover with [0/1/-] cubes, both on-set and off-set
    covers), [.latch] (edge-triggered, optional clock ignored),
    [.end], [#] comments, [\ ] line continuations.

    Mapped netlists are written with SIS-style [.gate] statements. *)

open Dagmap_logic
open Dagmap_core

exception Parse_error of { file : string option; line : int; message : string }
(** Every reader diagnostic — malformed constructs, bad cubes,
    duplicate or undefined signals, combinational cycles — carries
    the 1-based source line and, when reading a file, its name. *)

val describe : exn -> string
(** Render a {!Parse_error} as ["file:line: message"] (["<string>"]
    when parsing an in-memory string), any other exception via
    [Printexc]. Mirrors {!Dagmap_genlib.Genlib_parser.describe}. *)

val read_string : ?file:string -> string -> Network.t
(** Parse BLIF source text. Raises {!Parse_error}; [file] only
    decorates the diagnostics. *)

val read_file : string -> Network.t
(** Like {!read_string}, with errors carrying the file name. *)

val write_network : Network.t -> string
(** Logic nodes are emitted as minterm covers of their expressions. *)

val write_netlist : Netlist.t -> string
(** Emit a mapped netlist using [.gate] statements
    ([.gate <gate> <pin>=<net> ... O=<net>]). *)
