open Dagmap_logic

(* An independent streaming counterpart of the reader in blif.ml. The
   two implementations are deliberately separate — the differential
   test compares them line-for-line on diagnostics as well as on
   results — so any semantic change must be made to both. Errors are
   raised as Blif.Parse_error with byte-identical messages. *)

let error ?file line fmt =
  Printf.ksprintf
    (fun message -> raise (Blif.Parse_error { file; line; message }))
    fmt

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

type raw_names = {
  rn_line : int;
  rn_inputs : string list;
  rn_output : string;
  mutable rn_cubes : (string * char) list;
}

type raw_latch = {
  rl_line : int;
  rl_input : string;
  rl_output : string;
  rl_init : bool;
}

(* Incremental structure accumulator: one logical line at a time, with
   the directive lists held reversed (the legacy reader's repeated
   list append on .inputs/.outputs was quadratic in the directive
   count; the final order is identical). *)
type acc = {
  mutable model : string;
  mutable inputs_rev : (int * string) list;
  mutable outputs_rev : (int * string) list;
  mutable names_rev : raw_names list;
  mutable latches_rev : raw_latch list;
  mutable current : raw_names option;
}

let acc_create () =
  { model = "blif";
    inputs_rev = [];
    outputs_rev = [];
    names_rev = [];
    latches_rev = [];
    current = None }

let acc_line ?file acc line text =
  match words text with
  | [] -> ()
  | cmd :: args when String.length cmd > 0 && cmd.[0] = '.' -> begin
    acc.current <- None;
    match cmd, args with
    | ".model", [ m ] -> acc.model <- m
    | ".model", _ -> error ?file line "malformed .model"
    | ".inputs", args ->
      List.iter (fun a -> acc.inputs_rev <- (line, a) :: acc.inputs_rev) args
    | ".outputs", args ->
      List.iter (fun a -> acc.outputs_rev <- (line, a) :: acc.outputs_rev) args
    | ".names", args -> begin
      match List.rev args with
      | out :: rev_ins ->
        let rn =
          { rn_line = line; rn_inputs = List.rev rev_ins; rn_output = out;
            rn_cubes = [] }
        in
        acc.names_rev <- rn :: acc.names_rev;
        acc.current <- Some rn
      | [] -> error ?file line ".names needs at least an output"
    end
    | ".latch", (input :: output :: rest) ->
      let init =
        match List.rev rest with
        | "1" :: _ -> true
        | _ -> false
      in
      acc.latches_rev <-
        { rl_line = line; rl_input = input; rl_output = output; rl_init = init }
        :: acc.latches_rev
    | ".latch", _ -> error ?file line "malformed .latch"
    | ".end", _ -> ()
    | ".exdc", _ -> error ?file line ".exdc is not supported"
    | _, _ -> ()
  end
  | ws -> begin
    match acc.current, ws with
    | Some rn, [ cube; out ] ->
      if String.length out <> 1 || (out.[0] <> '0' && out.[0] <> '1') then
        error ?file line "cube output must be 0 or 1 in %S" text;
      rn.rn_cubes <- (cube, out.[0]) :: rn.rn_cubes
    | Some rn, [ single ] ->
      if rn.rn_inputs <> [] then
        error ?file line
          "cube line %S needs both an input part and an output value" single
      else if single = "1" then rn.rn_cubes <- ("", '1') :: rn.rn_cubes
      else if single = "0" then rn.rn_cubes <- ("", '0') :: rn.rn_cubes
      else error ?file line "malformed constant line %S" single
    | Some _, _ -> error ?file line "malformed cube line %S" text
    | None, _ -> error ?file line "unexpected line %S outside a .names block" text
  end

(* Streaming logical-line scanner: comment strip, trim, trailing-'\'
   continuation joining, 1-based line numbers attributed to the first
   raw line of a joined group — the same observable behaviour as the
   legacy [logical_lines], applied per line as it is read. *)
let scan next_line emit =
  let pending = ref None in
  let pending_line = ref 0 in
  let lineno = ref 1 in
  let step line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let line = String.trim line in
    let continued =
      String.length line > 0 && line.[String.length line - 1] = '\\'
    in
    let body =
      if continued then String.sub line 0 (String.length line - 1) else line
    in
    let text, first_line =
      match !pending with
      | Some prefix -> (prefix ^ " " ^ body, !pending_line)
      | None -> (body, !lineno)
    in
    if continued then begin
      pending := Some text;
      pending_line := first_line
    end
    else begin
      pending := None;
      if String.trim text <> "" then emit first_line text
    end;
    incr lineno
  in
  let rec loop () =
    match next_line () with
    | Some line ->
      step line;
      loop ()
    | None -> (
      match !pending with
      | Some text -> emit !pending_line text
      | None -> ())
  in
  loop ()

let expr_of_cubes ?file rn =
  let arity = List.length rn.rn_inputs in
  let cube_expr (cube, _) =
    if String.length cube <> arity then
      error ?file rn.rn_line "cube width %d does not match %d inputs"
        (String.length cube) arity;
    let lits = ref [] in
    String.iteri
      (fun i c ->
        match c with
        | '1' -> lits := (i, true) :: !lits
        | '0' -> lits := (i, false) :: !lits
        | '-' -> ()
        | c -> error ?file rn.rn_line "bad cube character %C" c)
      cube;
    List.rev !lits
  in
  match rn.rn_cubes with
  | [] -> Bexpr.const false
  | cubes ->
    let zeros, ones = List.partition (fun (_, v) -> v = '0') cubes in
    (match zeros, ones with
     | [], ones -> Bexpr.of_cubes (List.map cube_expr ones)
     | zeros, [] -> Bexpr.not_ (Bexpr.of_cubes (List.map cube_expr zeros))
     | _ -> error ?file rn.rn_line "mixed on-set and off-set cubes")

let elaborate ?file acc =
  let inputs = List.rev acc.inputs_rev in
  let outputs = List.rev acc.outputs_rev in
  let names = List.rev acc.names_rev in
  let latches = List.rev acc.latches_rev in
  let net = Network.create ~name:acc.model () in
  let id_of = Hashtbl.create 64 in
  List.iter
    (fun (line, pi) ->
      if Hashtbl.mem id_of pi then error ?file line "duplicate input %s" pi;
      Hashtbl.replace id_of pi (Network.add_pi net pi))
    inputs;
  let by_output = Hashtbl.create 64 in
  List.iter
    (fun rn ->
      if Hashtbl.mem by_output rn.rn_output then
        error ?file rn.rn_line "signal %s defined twice" rn.rn_output;
      Hashtbl.replace by_output rn.rn_output rn)
    names;
  List.iter
    (fun rl ->
      if Hashtbl.mem id_of rl.rl_output then
        error ?file rl.rl_line "latch output %s already defined" rl.rl_output;
      let id =
        Network.add_latch_output net ~name:rl.rl_output ~init:rl.rl_init ()
      in
      Hashtbl.replace id_of rl.rl_output id)
    latches;
  let visiting = Hashtbl.create 64 in
  (* Demand-driven, but on an explicit stack: the legacy reader
     recurses over fanins, which would overflow on the million-node
     deep inputs this reader exists for. Frames are (line, name,
     enter?); node creation order — and therefore every network id —
     matches the recursive version exactly, because children are
     pushed left-to-right above their parent's exit frame. *)
  let stack = Stack.create () in
  let elaborate line name =
    Stack.push (line, name, true) stack;
    while not (Stack.is_empty stack) do
      let line, name, enter = Stack.pop stack in
      if enter then begin
        match Hashtbl.find_opt id_of name with
        | Some _ -> ()
        | None -> begin
          match Hashtbl.find_opt by_output name with
          | None -> error ?file line "undefined signal %s" name
          | Some rn ->
            if Hashtbl.mem visiting name then
              error ?file rn.rn_line "combinational cycle through %s" name;
            Hashtbl.replace visiting name ();
            Stack.push (line, name, false) stack;
            List.iter
              (fun dep -> Stack.push (rn.rn_line, dep, true) stack)
              (List.rev rn.rn_inputs)
        end
      end
      else begin
        let rn = Hashtbl.find by_output name in
        let fanins =
          Array.of_list
            (List.map (fun dep -> Hashtbl.find id_of dep) rn.rn_inputs)
        in
        let expr = expr_of_cubes ?file rn in
        let id = Network.add_logic net ~name expr fanins in
        Hashtbl.remove visiting name;
        Hashtbl.replace id_of name id
      end
    done
  in
  List.iter (fun (line, po) -> elaborate line po) outputs;
  List.iter
    (fun rl ->
      elaborate rl.rl_line rl.rl_input;
      Network.set_latch_input net
        ~latch_output:(Hashtbl.find id_of rl.rl_output)
        (Hashtbl.find id_of rl.rl_input))
    latches;
  List.iter
    (fun (_, po) -> Network.add_po net po (Hashtbl.find id_of po))
    outputs;
  Network.validate net;
  net

let read_lines ?file next_line =
  let acc = acc_create () in
  scan next_line (fun line text -> acc_line ?file acc line text);
  elaborate ?file acc

(* The legacy reader splits on '\n', so a source ending in a newline
   contributes a final empty segment — which matters when the last
   real line carries a continuation backslash (the pending text is
   then flushed by joining with that empty segment, not by end of
   input, which is observable in %S diagnostics). Both channel and
   string sources below reproduce split_on_char's segmentation
   exactly; [input_line] would drop that final segment. *)
let read_channel ?file ic =
  let chunk = Bytes.create 65536 in
  let chunk_len = ref 0 in
  let chunk_pos = ref 0 in
  let eof = ref false in
  let finished = ref false in
  let buf = Buffer.create 256 in
  let next_line () =
    if !finished then None
    else begin
      let result = ref None in
      while !result = None && not !finished do
        if !chunk_pos >= !chunk_len && not !eof then begin
          chunk_len := input ic chunk 0 (Bytes.length chunk);
          chunk_pos := 0;
          if !chunk_len = 0 then eof := true
        end;
        if !eof then begin
          finished := true;
          result := Some (Buffer.contents buf)
        end
        else begin
          let nl = ref (-1) in
          let i = ref !chunk_pos in
          while !nl < 0 && !i < !chunk_len do
            if Bytes.unsafe_get chunk !i = '\n' then nl := !i;
            incr i
          done;
          if !nl < 0 then begin
            Buffer.add_subbytes buf chunk !chunk_pos (!chunk_len - !chunk_pos);
            chunk_pos := !chunk_len
          end
          else begin
            Buffer.add_subbytes buf chunk !chunk_pos (!nl - !chunk_pos);
            chunk_pos := !nl + 1;
            result := Some (Buffer.contents buf);
            Buffer.clear buf
          end
        end
      done;
      !result
    end
  in
  read_lines ?file next_line

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> read_channel ~file:path ic)

let read_string ?file source =
  let pos = ref 0 in
  let len = String.length source in
  read_lines ?file (fun () ->
      if !pos > len then None
      else begin
        let stop =
          match String.index_from_opt source !pos '\n' with
          | Some i -> i
          | None -> len
        in
        let line = String.sub source !pos (stop - !pos) in
        pos := stop + 1;
        Some line
      end)
