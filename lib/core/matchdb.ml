open Dagmap_genlib
open Dagmap_subject
open Dagmap_obs

(* Category of a pattern node as seen from its parent: a leaf matches
   any subject node; inverters and NANDs must match like kinds. *)
type cat = Cl | Ci | Cn

let cat_of_pnode p i =
  match p.Pattern.nodes.(i) with
  | Pattern.Pleaf _ -> Cl
  | Pattern.Pinv _ -> Ci
  | Pattern.Pnand _ -> Cn

let cat_matches cat (k : Subject.kind) =
  match cat, k with
  | Cl, _ -> true
  | Ci, Sinv _ -> true
  | Cn, Snand _ -> true
  | (Ci | Cn), _ -> false

type t = {
  lib : Libraries.t;
  (* NAND-rooted patterns bucketed by the unordered pair of child
     categories; INV-rooted by the single child category. *)
  nand_buckets : Pattern.t list array array; (* [cat][cat], cat_a <= cat_b *)
  inv_buckets : Pattern.t list array;
  max_depth : int;  (* deepest pattern, in edges; bounds every cone *)
  mutable boolean_memo : Boolean_match.t option;
      (* lazily-built Boolean index over the same library (incl. any
         supergates), shared by the cut mappers — see [boolean] *)
}

let cat_index = function Cl -> 0 | Ci -> 1 | Cn -> 2

let prepare lib =
  let nand_buckets = Array.make_matrix 3 3 [] in
  let inv_buckets = Array.make 3 [] in
  let max_depth = ref 1 in
  List.iter
    (fun p ->
      max_depth := max !max_depth p.Pattern.depth;
      match p.Pattern.nodes.(p.Pattern.root) with
      | Pattern.Pleaf _ ->
        (* Wire/buffer patterns cannot root a cover. *)
        ()
      | Pattern.Pinv c ->
        let i = cat_index (cat_of_pnode p c) in
        inv_buckets.(i) <- p :: inv_buckets.(i)
      | Pattern.Pnand (a, b) ->
        let ia = cat_index (cat_of_pnode p a) in
        let ib = cat_index (cat_of_pnode p b) in
        let lo, hi = if ia <= ib then (ia, ib) else (ib, ia) in
        nand_buckets.(lo).(hi) <- p :: nand_buckets.(lo).(hi))
    lib.Libraries.patterns;
  { lib; nand_buckets; inv_buckets; max_depth = !max_depth;
    boolean_memo = None }

let library db = db.lib

(* One Boolean index per prepared library, built on first use: the
   structural and cut mappers then share a single permutation-variant
   table instead of each consumer re-running [Boolean_match.prepare].
   The memo write is a single pointer store; a concurrent race at
   worst builds the index twice with identical contents (same benign
   pattern as [Arena.levels_memo]). *)
let boolean db =
  match db.boolean_memo with
  | Some b -> b
  | None ->
    let b = Boolean_match.prepare db.lib in
    db.boolean_memo <- Some b;
    b

let num_patterns db = List.length db.lib.Libraries.patterns

let max_depth db = db.max_depth
let inv_bucket db i = db.inv_buckets.(i)
let nand_bucket db lo hi = db.nand_buckets.(lo).(hi)

let cats = [| Cl; Ci; Cn |]

let enumerate db cls g ~fanouts ~levels node f =
  let try_pattern p =
    if p.Pattern.depth <= levels.(node) then
      Matcher.for_each_match cls g ~fanouts p node f
  in
  match Subject.kind g node with
  | Spi -> ()
  | Sinv x ->
    let kx = Subject.kind g x in
    Array.iteri
      (fun i cat ->
        if cat_matches cat kx then List.iter try_pattern db.inv_buckets.(i))
      cats
  | Snand (x, y) ->
    let kx = Subject.kind g x and ky = Subject.kind g y in
    for lo = 0 to 2 do
      for hi = lo to 2 do
        let a = cats.(lo) and b = cats.(hi) in
        let compatible =
          (cat_matches a kx && cat_matches b ky)
          || (cat_matches a ky && cat_matches b kx)
        in
        if compatible then List.iter try_pattern db.nand_buckets.(lo).(hi)
      done
    done

(* ------------------------------------------------------------------ *)
(* Canonical-signature match cache                                     *)
(* ------------------------------------------------------------------ *)

(* The labeling pass enumerates matches at every subject node, but
   ISCAS-like circuits are full of repeated local shapes (adder cells,
   compressor rows, decoder slices). Whether a pattern matches at a
   node depends only on the depth-bounded cone under that node — every
   binding made by the matcher lands within [max_depth] edges of the
   root — so isomorphic cones have isomorphic match sets. We key each
   node by a canonical signature of that cone and replay the match set
   through the isomorphism instead of re-running the backtracking
   search. This is the structural analogue of the NPN-canonical cut
   caching used by Boolean matchers: NPN classes would under-split
   (structural matching distinguishes decompositions of the same
   function), so the key is the canonical local DAG itself.

   The signature is built by a breadth-first enumeration from the
   root: local ids are assigned in first-visit order, nodes first seen
   at depth [max_depth] are recorded as opaque frontier leaves (only
   pattern leaves can bind there), and sharing is captured by child
   references to already-assigned local ids. Equal signatures
   therefore guarantee an isomorphism of everything the matcher can
   observe: kinds, sharing/injectivity structure, the root's
   depth-prune level and — for the exact class — fanout counts of
   interior nodes. Matches are stored with pins/covered translated to
   local ids and translated back on a hit, preserving enumeration
   order, so cached and uncached lookups return identical lists. *)

type centry = {
  c_pattern : Pattern.t;
  c_pins : int array;     (* local cone ids; -1 for an unused pin *)
  c_covered : int array;  (* local cone ids *)
}

type cache = {
  table : (string, centry list) Hashtbl.t;
  (* Counters are [Obs.Metrics] atomics: the per-cache totals feed
     Mapper.stats, and every bump is mirrored into the process-global
     registry counters below, which are shared by all caches across
     all Parmap domains. The former [mutable int] fields lost updates
     whenever a cache (or the aggregate) was read or written from
     more than one domain. *)
  hits : Metrics.Counter.t;
  misses : Metrics.Counter.t;
  lookups : Metrics.Counter.t;
  mutable disabled : bool;
  (* Scratch state reused across lookups (single-threaded per cache;
     parallel labeling gives each worker domain its own cache). *)
  mutable cone : int array;        (* local id -> subject id *)
  mutable cone_len : int;
  local_of : (int, int) Hashtbl.t; (* subject id -> local id *)
  buf : Buffer.t;
}

(* Process-global aggregates over every cache in every domain. The
   conservation law [lookups = hits + misses] holds on these exactly
   because each counter is atomic — the multi-domain test in
   test_matchcache.ml locks this down. *)
let global_hits = Metrics.counter "matchdb.cache.hits"
let global_misses = Metrics.counter "matchdb.cache.misses"
let global_lookups = Metrics.counter "matchdb.cache.lookups"

let create_cache _db =
  { table = Hashtbl.create 1024;
    hits = Metrics.Counter.create ();
    misses = Metrics.Counter.create ();
    lookups = Metrics.Counter.create ();
    disabled = false;
    cone = Array.make 64 0;
    cone_len = 0;
    local_of = Hashtbl.create 64;
    buf = Buffer.create 256 }

let cache_hits c = Metrics.Counter.value c.hits
let cache_misses c = Metrics.Counter.value c.misses
let cache_lookups c = Metrics.Counter.value c.lookups
let cache_retired c = c.disabled

let count_hit c =
  Metrics.Counter.incr c.hits;
  Metrics.Counter.incr global_hits

let count_miss c =
  Metrics.Counter.incr c.misses;
  Metrics.Counter.incr global_misses

let count_lookup c =
  Metrics.Counter.incr c.lookups;
  Metrics.Counter.incr global_lookups

let reset_counters c =
  Metrics.Counter.reset c.hits;
  Metrics.Counter.reset c.misses;
  Metrics.Counter.reset c.lookups

(* Beyond this cone size the signature itself gets expensive and
   shapes stop repeating; bypass the cache (still deterministic). *)
let cone_budget = 512

(* Caching only pays on circuits with repeated local shapes. On
   shape-diverse subjects (seeded random logic) signature+store
   overhead exceeds the savings, so a cache that keeps missing turns
   itself off: after [probation] lookups, if the hit rate is below
   1/2^[min_hit_shift], further lookups bypass the cache (and
   are not counted — the hits/misses/lookups invariant is preserved
   on whatever was actually looked up). *)
let probation = 2048
let min_hit_shift = 2 (* hits < lookups/2^2, i.e. < 25 % *)

let maybe_retire c =
  if
    cache_lookups c >= probation
    && cache_hits c < cache_lookups c asr min_hit_shift
  then begin
    c.disabled <- true;
    Hashtbl.reset c.table
  end

let push_cone c sid =
  let id = c.cone_len in
  if id = Array.length c.cone then begin
    let grown = Array.make (2 * id) 0 in
    Array.blit c.cone 0 grown 0 id;
    c.cone <- grown
  end;
  c.cone.(id) <- sid;
  c.cone_len <- id + 1;
  Hashtbl.replace c.local_of sid id;
  id

(* Local ids fit 16 bits (cone_budget + transient slack << 65536). *)
let add_id buf i = Buffer.add_int16_ne buf i

(* Build the canonical cone signature rooted at [node]; fills
   [c.cone]/[c.local_of] with the local enumeration and returns the
   key, or [None] if the cone exceeds the budget. *)
let cone_key c db cls g ~fanouts ~levels node =
  c.cone_len <- 0;
  Hashtbl.reset c.local_of;
  let buf = c.buf in
  Buffer.clear buf;
  Buffer.add_char buf
    (match cls with
     | Matcher.Standard -> 's'
     | Matcher.Exact -> 'e'
     | Matcher.Extended -> 'x');
  Buffer.add_int8 buf (min levels.(node) db.max_depth);
  let exact = cls = Matcher.Exact in
  (* Breadth-first so that first-visit depth equals min-depth: a node
     expanded once is expandable from every occurrence. *)
  let q = Queue.create () in
  ignore (push_cone c node);
  Queue.add (node, 0) q;
  let ok = ref true in
  while !ok && not (Queue.is_empty q) do
    let sid, d = Queue.pop q in
    if c.cone_len > cone_budget then ok := false
    else begin
      let child x =
        match Hashtbl.find_opt c.local_of x with
        | Some l -> l
        | None ->
          let l = push_cone c x in
          Queue.add (x, d + 1) q;
          l
      in
      (if d >= db.max_depth then Buffer.add_char buf 'f'
       else
         match Subject.kind g sid with
         | Subject.Spi -> Buffer.add_char buf 'p'
         | Subject.Sinv x ->
           Buffer.add_char buf 'i';
           add_id buf (child x)
         | Subject.Snand (x, y) ->
           Buffer.add_char buf 'n';
           let lx = child x in
           let ly = child y in
           add_id buf lx;
           add_id buf ly);
      (* The exact class compares subject fanouts against pattern
         fanouts, which are tiny; every count >= 255 is equivalent, so
         one clamped byte keeps the key injective where it matters. *)
      if exact && d > 0 && d < db.max_depth then
        Buffer.add_int8 buf (min fanouts.(sid) 255)
    end
  done;
  if !ok then Some (Buffer.contents buf) else None

let translate c (e : centry) =
  let pins =
    Array.map (fun l -> if l >= 0 then c.cone.(l) else -1) e.c_pins
  in
  let covered = Array.map (fun l -> c.cone.(l)) e.c_covered in
  (* The matcher reports covered nodes sorted by subject id; keep the
     translated match bit-identical to a fresh enumeration. *)
  Array.sort compare covered;
  { Matcher.pattern = e.c_pattern; pins; covered }

let intern c (m : Matcher.mtch) =
  { c_pattern = m.Matcher.pattern;
    c_pins =
      Array.map
        (fun s -> if s >= 0 then Hashtbl.find c.local_of s else -1)
        m.Matcher.pins;
    c_covered = Array.map (fun s -> Hashtbl.find c.local_of s) m.Matcher.covered }

let for_each_node_match ?cache db cls g ~fanouts ~levels node f =
  match cache, Subject.kind g node with
  | None, _ | _, Spi -> enumerate db cls g ~fanouts ~levels node f
  | Some c, (Snand _ | Sinv _) when c.disabled ->
    enumerate db cls g ~fanouts ~levels node f
  | Some c, (Snand _ | Sinv _) -> begin
    count_lookup c;
    match cone_key c db cls g ~fanouts ~levels node with
    | None ->
      (* Over-budget cone: charge a miss, don't store. *)
      count_miss c;
      maybe_retire c;
      enumerate db cls g ~fanouts ~levels node f
    | Some key -> begin
      match Hashtbl.find_opt c.table key with
      | Some entries ->
        count_hit c;
        List.iter (fun e -> f (translate c e)) entries
      | None ->
        count_miss c;
        maybe_retire c;
        let acc = ref [] in
        enumerate db cls g ~fanouts ~levels node (fun m ->
            acc := intern c m :: !acc;
            f m);
        if not c.disabled then Hashtbl.replace c.table key (List.rev !acc)
    end
  end

let node_matches ?cache db cls g ~fanouts ~levels node =
  let acc = ref [] in
  for_each_node_match ?cache db cls g ~fanouts ~levels node (fun m ->
      acc := m :: !acc);
  List.rev !acc
