open Dagmap_genlib
open Dagmap_subject
open Dagmap_obs

type mode = Tree | Dag | Dag_extended

let mode_name = function
  | Tree -> "tree"
  | Dag -> "dag"
  | Dag_extended -> "dag-extended"

let mode_class = function
  | Tree -> Matcher.Exact
  | Dag -> Matcher.Standard
  | Dag_extended -> Matcher.Extended

exception Unmappable of { node : int; description : string }

type stats = {
  label_seconds : float;
  cover_seconds : float;
  matches_tried : int;
  super_matches_tried : int;
  cache_hits : int;
  cache_misses : int;
  cache_lookups : int;
  super_gates_used : int;
}

type result = {
  netlist : Netlist.t;
  labels : float array;
  best : Matcher.mtch option array;
  run : stats;
}

(* Fault-injection hook for the check layer: added to every pin delay
   the labeling pass sees, so predictions drift from the netlist's
   STA and the delay audit must fire. 0.0 outside those tests. *)
let test_pin_delay_skew = ref 0.0

(* Arrival time a match would realize given the labels of its pin
   nodes: max over used pins of label + intrinsic pin delay. A match
   using no pins at all (a constant gate) is available at time 0.
   Starting from neg_infinity rather than 0 keeps negative labels
   meaningful — with latch-injected [pi_arrival] values a pin arriving
   before 0 must not be clamped. *)
let match_arrival labels (m : Matcher.mtch) =
  let g = Matcher.gate m in
  let worst = ref neg_infinity in
  Array.iteri
    (fun pin node ->
      if node >= 0 then
        worst :=
          Float.max !worst
            (labels.(node) +. Gate.intrinsic_delay g pin
            +. !test_pin_delay_skew))
    m.Matcher.pins;
  if !worst = neg_infinity then 0.0 else !worst

(* Strictly-better comparison: smaller arrival, then smaller area,
   then fewer gate pins (cheapest equivalent). *)
let better arrival area pins (best_arrival, best_area, best_pins) =
  arrival < best_arrival -. 1e-12
  || (arrival < best_arrival +. 1e-12
      && (area < best_area -. 1e-9
          || (area < best_area +. 1e-9 && pins < best_pins)))

(* The DP kernel: compute one gate node's optimal label and best
   match. Reads only labels of fanin-cone nodes (strictly smaller
   levels), writes only [labels.(node)] and [best.(node)] — which is
   what lets Parmap run a whole topological level of these calls
   concurrently. Returns the number of matches considered. *)
let label_node ?cache cls db g ~fanouts ~levels ~labels ~best node =
  let tried = ref 0 in
  let super_tried = ref 0 in
  let best_cost = ref (infinity, infinity, max_int) in
  Matchdb.for_each_node_match ?cache db cls g ~fanouts ~levels node (fun m ->
      incr tried;
      let gate = Matcher.gate m in
      if Gate.is_super gate then incr super_tried;
      let arrival = match_arrival labels m in
      let area = gate.Gate.area in
      let pins = Gate.num_pins gate in
      if better arrival area pins !best_cost then begin
        best_cost := (arrival, area, pins);
        best.(node) <- Some m
      end);
  (match best.(node) with
   | Some _ ->
     let arrival, _, _ = !best_cost in
     labels.(node) <- arrival
   | None ->
     raise
       (Unmappable
          { node;
            description =
              Printf.sprintf "no %s match for subject node %d"
                (Matcher.class_name cls) node }));
  (!tried, !super_tried)

let label ?(pi_arrival = fun _ -> 0.0) ?cache mode db g =
  let cls = mode_class mode in
  let n = Subject.num_nodes g in
  let fanouts = Subject.fanout_counts g in
  let levels = Subject.levels g in
  let labels = Array.make n 0.0 in
  let best : Matcher.mtch option array = Array.make n None in
  let tried = ref 0 in
  let super_tried = ref 0 in
  for node = 0 to n - 1 do
    match Subject.kind g node with
    | Spi -> labels.(node) <- pi_arrival node
    | Snand _ | Sinv _ ->
      let t, st = label_node ?cache cls db g ~fanouts ~levels ~labels ~best node in
      tried := !tried + t;
      super_tried := !super_tried + st
  done;
  (labels, best, (!tried, !super_tried))

(* Cover construction (paper §3.3): a queue seeded with the output
   drivers; each popped node contributes one gate instance whose
   inputs are the subject nodes bound to the match pins. Nodes inside
   a match need no instance of their own unless some other match (or
   output) exposes them — that is exactly where DAG covering
   duplicates logic. *)
let cover g (best : Matcher.mtch option array) =
  let needed : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let require node =
    match Subject.kind g node with
    | Spi -> ()
    | Snand _ | Sinv _ ->
      if not (Hashtbl.mem needed node) then begin
        Hashtbl.add needed node ();
        Queue.add node queue
      end
  in
  List.iter (fun o -> require o.Subject.out_node) g.Subject.outputs;
  let chosen = ref [] in
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    match best.(node) with
    | None -> assert false (* label pass guarantees a match *)
    | Some m ->
      chosen := (node, m) :: !chosen;
      Array.iter (fun pin_node -> if pin_node >= 0 then require pin_node) m.Matcher.pins
  done;
  (* Assign instance indices, then wire (handles forward references
     between instances created in queue order). *)
  let index = Hashtbl.create 64 in
  List.iteri (fun i (node, _) -> Hashtbl.replace index node i) !chosen;
  let driver_of node =
    match Subject.kind g node with
    | Spi -> Netlist.D_pi node
    | Snand _ | Sinv _ -> Netlist.D_gate (Hashtbl.find index node)
  in
  let instances =
    Array.of_list
      (List.mapi
         (fun i (node, m) ->
           let gate = Matcher.gate m in
           let inputs =
             Array.map
               (fun pin_node ->
                 if pin_node >= 0 then driver_of pin_node
                 else
                   (* Unused pin: tie to constant false. *)
                   Netlist.D_const false)
               m.Matcher.pins
           in
           { Netlist.inst_id = i; gate; inputs; subject_root = node;
             covers = m.Matcher.covered })
         !chosen)
  in
  let outputs =
    List.map (fun o -> (o.Subject.out_name, driver_of o.Subject.out_node)) g.Subject.outputs
    @ List.map (fun (name, b) -> (name, Netlist.D_const b)) g.Subject.const_outputs
  in
  { Netlist.source = g; instances; outputs }

let super_gates_in netlist =
  Array.fold_left
    (fun acc i -> if Gate.is_super i.Netlist.gate then acc + 1 else acc)
    0 netlist.Netlist.instances

(* Phase timings use the monotonic wall clock. They used to be
   [Sys.time] (process CPU), which callers then compared against the
   wall-clock numbers of Parmap and the bench harness — mixing two
   incompatible time bases. [Obs.Clock] is the single source of truth
   now; CPU seconds are still available to callers that want them
   via [Clock.time_wall_cpu]. *)
let map ?(cache = true) mode db g =
  let cache = if cache then Some (Matchdb.create_cache db) else None in
  let t0 = Clock.now () in
  let labels, best, (tried, super_tried) =
    Span.with_span ~cat:"mapper" "label" (fun () -> label ?cache mode db g)
  in
  let t1 = Clock.now () in
  let netlist = Span.with_span ~cat:"mapper" "cover" (fun () -> cover g best) in
  let t2 = Clock.now () in
  Metrics.Histogram.observe (Metrics.histogram "mapper.label_seconds") (t1 -. t0);
  Metrics.Histogram.observe (Metrics.histogram "mapper.cover_seconds") (t2 -. t1);
  Metrics.Counter.incr (Metrics.counter "mapper.maps");
  Metrics.Counter.add (Metrics.counter "mapper.matches_tried") tried;
  let ch, cm, cl =
    match cache with
    | None -> (0, 0, 0)
    | Some c ->
      (Matchdb.cache_hits c, Matchdb.cache_misses c, Matchdb.cache_lookups c)
  in
  { netlist;
    labels;
    best;
    run =
      { label_seconds = t1 -. t0; cover_seconds = t2 -. t1;
        matches_tried = tried; super_matches_tried = super_tried;
        cache_hits = ch; cache_misses = cm; cache_lookups = cl;
        super_gates_used = super_gates_in netlist } }

let optimal_delay r =
  List.fold_left
    (fun acc o -> Float.max acc r.labels.(o.Subject.out_node))
    0.0 r.netlist.Netlist.source.Subject.outputs

let predicted_arrivals r =
  let g = r.netlist.Netlist.source in
  List.map
    (fun o -> (o.Subject.out_name, r.labels.(o.Subject.out_node)))
    g.Subject.outputs
  @ List.map (fun (name, _) -> (name, 0.0)) g.Subject.const_outputs
