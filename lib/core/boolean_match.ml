open Dagmap_logic
open Dagmap_genlib

type entry = {
  gate : Gate.t;
  pin_of_input : int array;
}

(* Keyed directly on the truth table (nvars + packed words) instead of
   a formatted hex string: lookup is the cut mapper's innermost
   operation and the sprintf key allocated on every probe. *)
module Tbl = Hashtbl.Make (struct
  type t = Truth.t

  let equal = Truth.equal
  let hash = Truth.hash
end)

type t = {
  table : entry list Tbl.t;  (* function -> matching wirings *)
  mutable count : int;
  mutable super_count : int;
}

let add db tt entry =
  let existing = Option.value ~default:[] (Tbl.find_opt db.table tt) in
  (* Keep one entry per gate per function; different wirings of the
     same gate to the same function are interchangeable. *)
  if
    not
      (List.exists
         (fun e ->
           String.equal e.gate.Gate.gate_name entry.gate.Gate.gate_name)
         existing)
  then begin
    Tbl.replace db.table tt (entry :: existing);
    db.count <- db.count + 1;
    if Gate.is_super entry.gate then db.super_count <- db.super_count + 1
  end

let prepare ?(max_arity = 6) lib =
  let db = { table = Tbl.create 1024; count = 0; super_count = 0 } in
  List.iter
    (fun gate ->
      let p = Gate.num_pins gate in
      if p >= 1 && p <= max_arity && Gate.is_constant gate = None then
        List.iter
          (fun (variant, perm) ->
            (* variant = func permuted so original pin i feeds input
               position perm.(i); hence input position j is fed by
               pin with perm(pin) = j. *)
            let pin_of_input = Array.make p 0 in
            Array.iteri (fun pin pos -> pin_of_input.(pos) <- pin) perm;
            add db variant { gate; pin_of_input })
          (Npn.p_variants gate.Gate.func))
    lib.Libraries.gates;
  db

let lookup db tt = Option.value ~default:[] (Tbl.find_opt db.table tt)

let num_entries db = db.count

let num_super_entries db = db.super_count

let max_arity db =
  Tbl.fold (fun tt _ acc -> max acc (Truth.num_vars tt)) db.table 1

let arity_histogram db =
  let counts = Hashtbl.create 8 in
  Tbl.iter
    (fun tt entries ->
      let arity = Truth.num_vars tt in
      Hashtbl.replace counts arity
        (List.length entries
        + Option.value ~default:0 (Hashtbl.find_opt counts arity)))
    db.table;
  Hashtbl.fold (fun a c acc -> (a, c) :: acc) counts []
  |> List.sort compare
