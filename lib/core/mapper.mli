(** Delay-oriented technology mapping by graph covering.

    One dynamic program serves both mappers, parameterized by the
    match class:

    - {!Tree}: exact matches only — matches never cross multi-fanout
      points and never require duplication; this is conventional
      tree covering (Keutzer / Rudell / SIS) expressed as a DP over
      the whole graph.
    - {!Dag}: standard matches — the paper's contribution. The
      labeling pass computes, in topological order, each node's
      optimal arrival time over all matches rooted there; the cover
      pass walks back from the outputs, duplicating subject nodes as
      needed (paper §3.1, §3.3).
    - {!Dag_extended}: extended matches (Definition 3); the paper's
      footnote 3 reports no quality difference vs. standard, which
      our ablation benchmark checks.

    Under the load-independent delay model the DAG modes are
    delay-optimal with respect to the subject graph and the pattern
    set. *)

open Dagmap_subject

type mode = Tree | Dag | Dag_extended

val mode_name : mode -> string
val mode_class : mode -> Matcher.match_class

exception Unmappable of { node : int; description : string }
(** Raised when some subject node has no match at all (cannot happen
    when the library contains INV and NAND2). *)

type stats = {
  label_seconds : float;
      (** monotonic wall seconds of the labeling pass
          ({!Dagmap_obs.Clock.now}) — same time base as {!Parmap} and
          the bench harness, so phase timings are directly comparable
          (these fields were process-CPU [Sys.time] once, which
          understated parallel phases and mixed clocks) *)
  cover_seconds : float;  (** monotonic wall seconds of the cover pass *)
  matches_tried : int;   (** successful matches considered while labeling *)
  super_matches_tried : int;
      (** subset of [matches_tried] whose gate is a supergate
          ({!Dagmap_genlib.Gate.is_super}) *)
  cache_hits : int;      (** match-cache hits (0 when caching is off) *)
  cache_misses : int;
  cache_lookups : int;   (** = hits + misses *)
  super_gates_used : int;
      (** supergate instances in the final cover netlist *)
}

type result = {
  netlist : Netlist.t;
  labels : float array;  (** optimal arrival per subject node *)
  best : Matcher.mtch option array;
  run : stats;
}

val map : ?cache:bool -> mode -> Matchdb.t -> Subject.t -> result
(** [cache] (default [true]) enables the {!Matchdb} match cache for
    the labeling pass. Caching never changes the result — cached and
    uncached enumeration return identical match lists — it only skips
    redundant backtracking searches on repeated local shapes. *)

val label :
  ?pi_arrival:(int -> float) ->
  ?cache:Matchdb.cache ->
  mode ->
  Matchdb.t ->
  Subject.t ->
  float array * Matcher.mtch option array * (int * int)
(** Labeling pass only: optimal arrival and best match per node,
    plus [(matches tried, supergate matches tried)]. [pi_arrival]
    overrides the arrival time of a PI node (default 0 everywhere) —
    the sequential extension uses it to inject latch-output
    arrivals. *)

val label_node :
  ?cache:Matchdb.cache ->
  Matcher.match_class ->
  Matchdb.t ->
  Subject.t ->
  fanouts:int array ->
  levels:int array ->
  labels:float array ->
  best:Matcher.mtch option array ->
  int ->
  int * int
(** The DP kernel for one NAND/INV node: fills [labels.(node)] and
    [best.(node)] from the labels of its fanin cone and returns
    [(matches considered, supergate matches considered)]. Raises
    {!Unmappable} if the node
    has no match. Reads only strictly-lower-level entries of
    [labels], so calls within one topological level are independent —
    {!Parmap} relies on exactly this. Do not call on a PI node. *)

val super_gates_in : Netlist.t -> int
(** Number of supergate instances in a netlist (the
    [super_gates_used] statistic). *)

val cover : Subject.t -> Matcher.mtch option array -> Netlist.t
(** Cover construction (paper §3.3) from a completed [best] array:
    walk back from the outputs, instantiating each needed node's best
    match and duplicating subject logic where matches overlap. *)

val optimal_delay : result -> float
(** Worst label over the subject outputs (equals
    [Netlist.delay result.netlist]; the test suite asserts this). *)

val predicted_arrivals : result -> (string * float) list
(** Per-output predicted arrival: each subject output paired with the
    label of its driving node (constant outputs arrive at 0). Under
    the intrinsic delay model these must equal the mapped netlist's
    STA arrivals output-by-output — the {!Dagmap_check} delay audit
    asserts exactly this. *)

val test_pin_delay_skew : float ref
(** Fault-injection hook for the verification layer's own tests: a
    delay added to every pin delay seen by {e labeling only}, so
    predictions drift from the netlist's true arrivals. Must be [0.0]
    (the default) outside check-layer tests. *)
