open Dagmap_logic
open Dagmap_genlib
open Dagmap_subject

type driver =
  | D_pi of int
  | D_gate of int
  | D_const of bool

type instance = {
  inst_id : int;
  gate : Gate.t;
  inputs : driver array;
  subject_root : int;
  covers : int array;
}

type t = {
  source : Subject.t;
  instances : instance array;
  outputs : (string * driver) list;
}

let area nl =
  Array.fold_left (fun acc i -> acc +. i.gate.Gate.area) 0.0 nl.instances

let num_gates nl = Array.length nl.instances

(* Instances are not necessarily stored topologically (cover
   construction emits them outputs-first), so order them explicitly.
   Explicit stack: instance chains can be deeper than the OCaml call
   stack allows. A gray (pre- but not post-visited) fanin seen while
   expanding a node is a back edge, i.e. a cycle. *)
let topological_instances nl =
  let n = Array.length nl.instances in
  let state = Array.make n 0 in
  let order = ref [] in
  let stack = Stack.create () in
  for root = 0 to n - 1 do
    if state.(root) = 0 then begin
      Stack.push (root, false) stack;
      while not (Stack.is_empty stack) do
        let i, post = Stack.pop stack in
        if post then begin
          state.(i) <- 2;
          order := i :: !order
        end
        else if state.(i) = 0 then begin
          state.(i) <- 1;
          Stack.push (i, true) stack;
          Array.iter
            (function
              | D_gate j ->
                if state.(j) = 1 then failwith "Netlist: instance cycle"
                else if state.(j) = 0 then Stack.push (j, false) stack
              | D_pi _ | D_const _ -> ())
            nl.instances.(i).inputs
        end
      done
    end
  done;
  List.rev !order

let arrival_times nl =
  let arrival = Array.make (Array.length nl.instances) 0.0 in
  List.iter
    (fun i ->
      let inst = nl.instances.(i) in
      let worst = ref 0.0 in
      Array.iteri
        (fun pin d ->
          let input_arrival =
            match d with
            | D_pi _ | D_const _ -> 0.0
            | D_gate j -> arrival.(j)
          in
          worst :=
            Float.max !worst (input_arrival +. Gate.intrinsic_delay inst.gate pin))
        inst.inputs;
      arrival.(i) <- !worst)
    (topological_instances nl);
  arrival

let driver_arrival arrival = function
  | D_pi _ | D_const _ -> 0.0
  | D_gate j -> arrival.(j)

let output_arrivals nl =
  let arrival = arrival_times nl in
  List.map (fun (name, d) -> (name, driver_arrival arrival d)) nl.outputs

let delay nl =
  List.fold_left (fun acc (_, a) -> Float.max acc a) 0.0 (output_arrivals nl)

let gate_histogram nl =
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      let name = i.gate.Gate.gate_name in
      Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name)))
    nl.instances;
  Hashtbl.fold (fun name c acc -> (name, c) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let duplication nl =
  let distinct = Hashtbl.create 64 in
  let total = ref 0 in
  Array.iter
    (fun i ->
      total := !total + Array.length i.covers;
      Array.iter (fun node -> Hashtbl.replace distinct node ()) i.covers)
    nl.instances;
  !total - Hashtbl.length distinct

let eval nl assignment =
  let pi_value = Hashtbl.create 16 in
  List.iteri
    (fun order id -> Hashtbl.replace pi_value id assignment.(order))
    (Subject.pi_ids nl.source);
  let value = Array.make (Array.length nl.instances) false in
  let driver_value = function
    | D_const b -> b
    | D_pi id -> Hashtbl.find pi_value id
    | D_gate j -> value.(j)
  in
  List.iter
    (fun i ->
      let inst = nl.instances.(i) in
      let inputs = Array.map driver_value inst.inputs in
      value.(i) <- Truth.eval inst.gate.Gate.func inputs)
    (topological_instances nl);
  List.map (fun (name, d) -> (name, driver_value d)) nl.outputs

let max_fanout nl =
  let counts = Hashtbl.create 64 in
  let bump d =
    match d with
    | D_const _ -> ()
    | D_pi _ | D_gate _ ->
      Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d))
  in
  Array.iter (fun i -> Array.iter bump i.inputs) nl.instances;
  List.iter (fun (_, d) -> bump d) nl.outputs;
  Hashtbl.fold (fun _ c acc -> max c acc) counts 0

let lint nl =
  let issues = ref [] in
  let report fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
  let n = Array.length nl.instances in
  let pi_set = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace pi_set id ()) (Subject.pi_ids nl.source);
  let check_driver context = function
    | D_const _ -> ()
    | D_pi id ->
      if not (Hashtbl.mem pi_set id) then
        report "%s: D_pi %d is not a subject PI" context id
    | D_gate j ->
      if j < 0 || j >= n then report "%s: D_gate %d out of range" context j
  in
  Array.iteri
    (fun idx inst ->
      if inst.inst_id <> idx then
        report "instance %d: inst_id %d does not match its index" idx
          inst.inst_id;
      if Array.length inst.inputs <> Gate.num_pins inst.gate then
        report "instance %d (%s): %d inputs for a %d-pin gate" idx
          inst.gate.Gate.gate_name
          (Array.length inst.inputs)
          (Gate.num_pins inst.gate);
      Array.iter (check_driver (Printf.sprintf "instance %d" idx)) inst.inputs)
    nl.instances;
  List.iter (fun (name, d) -> check_driver ("output " ^ name) d) nl.outputs;
  (* Cycle check only once the drivers are known to be in range. *)
  if !issues = [] then begin
    match topological_instances nl with
    | (_ : int list) -> ()
    | exception Failure m -> report "%s" m
  end;
  List.rev !issues

let validate nl =
  match lint nl with [] -> () | issue :: _ -> failwith issue

let pp_report ppf nl =
  Format.fprintf ppf "gates=%d area=%.0f delay=%.2f duplicated=%d@\n"
    (num_gates nl) (area nl) (delay nl) (duplication nl);
  List.iter
    (fun (name, c) -> Format.fprintf ppf "  %-12s %d@\n" name c)
    (gate_histogram nl)
