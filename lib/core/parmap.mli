(** Multicore labeling: the paper's DP, level-parallel on OCaml 5
    domains.

    A node's optimal label depends only on nodes at strictly smaller
    {!Subject.levels}, so each topological level is an independent
    front: the sweep runs level by level, fanning the nodes of a
    level across a domain pool with work-stealing chunks and a
    spawn/join barrier between levels. Labels, best matches, netlist
    and delay are {e bit-identical} to the sequential {!Mapper} —
    each label is a pure function of lower-level labels and every
    node is written by exactly one worker — which the test suite
    asserts for 1, 2 and 4 domains.

    Each worker owns a private {!Matchdb.cache}; aggregate hit/miss
    counters are summed into the returned {!Mapper.stats} (the split
    between workers depends on the stealing schedule, the totals'
    invariants do not). *)

open Dagmap_subject

type par_stats = {
  domains : int;            (** domains actually used (>= 1) *)
  levels : int;             (** topological levels swept *)
  widest_level : int;       (** nodes in the widest level *)
  level_seconds : float array;
      (** monotonic wall-clock per level ({!Dagmap_obs.Clock}) *)
  parallel_levels : int;
      (** levels wide enough to fan across the pool (the rest ran on
          the calling domain) *)
  chunks : int;
      (** work-stealing chunks handed out by the atomic cursor across
          all parallel levels *)
}

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val chunk_min : int
(** Minimum work-stealing chunk: a worker never claims fewer than
    this many nodes per trip through the atomic cursor, and a level
    under [jobs * chunk_min] nodes is labeled on the calling domain
    instead of fanning out (one contended fetch_and_add per node
    costs more than the matching it schedules). Exported so the
    scheduling regression tests can state their bounds in terms of
    the real policy. *)

val fanout_threshold : int -> int
(** [fanout_threshold jobs = jobs * chunk_min]: below this many nodes
    a level runs on the calling domain. Exported so other
    level-synchronous sweeps (the arena cut enumerator) apply the
    same fall-back policy. *)

val chunk_for : jobs:int -> int -> int
(** Chunk size for a level of the given width, floored at
    {!chunk_min}. *)

val steal_chunks :
  cursor:int Atomic.t ->
  chunks_claimed:int Atomic.t ->
  chunk:int ->
  hi:int ->
  (int -> unit) ->
  unit
(** Claim dense [chunk]-sized slices of positions below [hi] through
    [cursor] (pre-set by the caller to the first position) and apply
    the callback to each claimed position — the work-stealing
    protocol shared by every level-parallel sweep (boxed labeler,
    arena labeler, arena cut enumerator). Callbacks must not raise;
    trap exceptions into an [Atomic.t] and re-raise after the
    barrier, as {!label} does. *)

(** {1 Persistent domain pool}

    The pool that backs the level sweep, exported for other
    fan-out/barrier workloads (supergate enumeration uses it) and, in
    service mode, for the [techmapd] request scheduler. A pool of
    size [s] keeps [s] worker domains alive and serves two request
    protocols:

    - {b barrier mode} ({!run_pool}): one task per worker {e and} on
      the calling domain, so a task sees worker indices [0 .. s]
      ([s] = the caller). Tasks must not raise — trap exceptions into
      an [Atomic.t] and re-raise after the barrier, as {!label} does.
    - {b service mode} ({!submit}/{!drain}): independent fire-and-
      forget jobs picked up by any idle worker; exceptions escaping a
      job are swallowed (trap them in the closure if the outcome
      matters). The calling domain does not participate.

    Dedicate a pool to one protocol at a time — barriers and queued
    jobs share the worker loop but their interleaving is unspecified. *)

type pool

val make_pool : int -> pool
(** [make_pool s] spawns [s] worker domains (the caller is worker
    [s], so [make_pool (jobs - 1)] gives [jobs]-way parallelism in
    barrier mode). If a spawn fails mid-way (domain limit), the
    domains already started are shut down and joined before the
    exception propagates — repeated init/teardown never leaks
    domains. *)

val pool_size : pool -> int
(** Worker domains in the pool (the caller is not counted). *)

val run_pool : pool -> (int -> unit) -> unit
(** [run_pool p task] runs [task w] for every [w] in [0 .. s] and
    returns when all have finished. Not reentrant. *)

val submit : pool -> (unit -> unit) -> bool
(** [submit p job] enqueues [job] for any idle worker and returns
    immediately; [false] (job dropped) if the pool is shut down or
    has no workers. Unbounded — callers wanting backpressure bound
    their own in-flight count, as the daemon does. *)

val drain : pool -> unit
(** Block until no submitted job is queued or running. Quiescence,
    not shutdown: the pool is reusable afterwards. *)

val drain_for : pool -> seconds:float -> bool
(** Like {!drain}, but give up after [seconds]: [true] means the pool
    quiesced, [false] that jobs were still queued or running at the
    deadline (the pool is untouched either way). Supervisors use this
    so a wedged job cannot pin a shutdown path forever. *)

val pending : pool -> int * int
(** [(queued, running)] service-mode jobs right now — a snapshot for
    health monitoring; both counts move concurrently. *)

val shutdown_pool : pool -> unit
(** Joins the worker domains; queued-but-unstarted jobs are dropped
    (call {!drain} first for a graceful stop). Idempotent — extra
    calls, including concurrent ones, are no-ops. The pool must not
    be used afterwards. *)

val label :
  ?jobs:int ->
  ?cache:bool ->
  ?pi_arrival:(int -> float) ->
  Mapper.mode ->
  Matchdb.t ->
  Subject.t ->
  float array
  * Matcher.mtch option array
  * (int * int * int * int * int)
  * par_stats
(** Parallel labeling pass. [jobs] defaults to {!recommended_jobs};
    [cache] (default true) enables per-worker match caches. The int
    quintuple is (matches tried, supergate matches tried, cache
    hits, cache misses, cache lookups). Raises {!Mapper.Unmappable}
    exactly when the sequential pass would. *)

val map :
  ?jobs:int ->
  ?cache:bool ->
  Mapper.mode ->
  Matchdb.t ->
  Subject.t ->
  Mapper.result * par_stats
(** Parallel labeling + (sequential, output-driven) cover
    construction. The {!Mapper.result} is bit-identical to
    [Mapper.map mode db g]; timings in [run] are monotonic wall
    seconds from the same {!Dagmap_obs.Clock} the sequential mapper
    uses, so 1-vs-N-domain comparisons are on one time base. *)

(** {1 Arena-native labeling}

    The same level-synchronous sweep running directly on the flat
    {!Arena}: parallel fronts are dense index ranges of the
    counting-sorted {!Arena.level_ranges} order array (workers claim
    contiguous [int] slices through the atomic cursor — no per-level
    boxed node lists, no allocation on the claim path), and arrival
    labels land in the off-heap {!Arena_map.labels} vector. This is
    the million-node hot path: [techmap map --arena --jobs N] and the
    huge bench tier label here. *)

val label_arena :
  ?jobs:int ->
  ?cache:bool ->
  ?pi_arrival:(int -> float) ->
  Mapper.mode ->
  Matchdb.t ->
  Arena.t ->
  Arena_map.labels
  * Matcher.mtch option array
  * (int * int * int * int * int)
  * par_stats
(** Parallel arena labeling pass; mirrors {!label} ([cache] enables
    one private {!Arena_map.cache} per worker). Bit-identical to the
    sequential {!Arena_map.label} — same labels, best matches and
    matches-tried counts — for every [jobs]; raises
    {!Mapper.Unmappable} exactly when it would. *)

val map_arena :
  ?jobs:int ->
  ?cache:bool ->
  ?subject:Subject.t ->
  Mapper.mode ->
  Matchdb.t ->
  Arena.t ->
  Mapper.result * par_stats
(** Parallel arena labeling + sequential {!Arena_map.cover},
    returning a plain {!Mapper.result} like {!Arena_map.map} (which
    it is bit-identical to, jobs notwithstanding). [subject] avoids a
    redundant {!Arena.to_subject} when the caller already holds the
    boxed view; it must describe the same graph. *)
